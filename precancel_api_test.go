package kplex_test

// Dead-on-arrival context contract for the public batch entry points: a
// context cancelled before the call must return immediately with
// context.Canceled, no results, and no callback deliveries (the internal
// engine pre-checks are pinned in internal/kplex/precancel_test.go; these
// tests pin that the public wrappers do not re-introduce work before them).

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	kplex "repro"
)

func deadCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestEnumerateBatchPreCancelled(t *testing.T) {
	g := kplex.GNP(150, 0.15, 7)
	var fired atomic.Int64
	opts := []kplex.Options{kplex.NewOptions(2, 6), kplex.NewOptions(2, 8)}
	for i := range opts {
		opts[i].OnPlex = func([]int) { fired.Add(1) }
	}
	res, err := kplex.EnumerateBatch(deadCtx(), g, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("pre-cancelled EnumerateBatch returned %d results", len(res))
	}
	if fired.Load() != 0 {
		t.Errorf("OnPlex fired %d times on a dead context", fired.Load())
	}
}

func TestEnumerateBatchQueriesPreCancelled(t *testing.T) {
	g := kplex.GNP(150, 0.15, 7)
	queries := []kplex.BatchQuery{
		{Opts: kplex.NewOptions(2, 6), Mode: kplex.BatchTopK, TopN: 3},
		{Opts: kplex.NewOptions(2, 8), Mode: kplex.BatchHistogram},
	}
	res, err := kplex.EnumerateBatchQueries(deadCtx(), g, queries)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("pre-cancelled EnumerateBatchQueries returned %d results", len(res))
	}
}
