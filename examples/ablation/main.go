// Ablation walk-through: how each of the paper's pruning techniques
// (upper bounding, sub-task bound R1, vertex-pair rules R2) shrinks the
// search, shown through the engine's statistics counters.
//
//	go run ./examples/ablation
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	kplex "repro"
)

func run(name string, g *kplex.Graph, opts kplex.Options) kplex.Result {
	res, err := kplex.Enumerate(context.Background(), g, opts)
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats
	fmt.Printf("%-12s %10v  count=%-8d tasks=%-7d prunedR1=%-6d branches=%-9d ubPruned=%d\n",
		name, res.Elapsed.Round(time.Millisecond), res.Count,
		st.Tasks, st.TasksPrunedR1, st.Branches, st.UBPruned)
	return res
}

func main() {
	g := kplex.ChungLu(2000, 22, 2.2, 5)
	fmt.Printf("graph: %v\n", kplex.ComputeGraphStats(g))
	const k, q = 4, 24
	fmt.Printf("k=%d q=%d\n\n", k, q)

	// Basic: the branch-and-bound framework with upper bounding but no R1
	// and no R2 — the baseline of the paper's Table 6.
	basic := run("Basic", g, kplex.BasicOptions(k, q))

	// Basic+R1: prune initial sub-tasks whose Theorem 5.7 bound is < q.
	r1 := kplex.BasicOptions(k, q)
	r1.UseSubtaskBound = true
	run("Basic+R1", g, r1)

	// Basic+R2: the vertex-pair compatibility matrix (Thms 5.13-5.15).
	r2 := kplex.BasicOptions(k, q)
	r2.UsePairPruning = true
	run("Basic+R2", g, r2)

	// Ours: everything on.
	ours := run("Ours", g, kplex.NewOptions(k, q))

	// Ours without any upper bound (Table 5's Ours\ub).
	noUB := kplex.NewOptions(k, q)
	noUB.UpperBound = kplex.UBNone
	run("Ours\\ub", g, noUB)

	// Ours with the FP-style sorted bound (Table 5's Ours\ub+fp).
	fpUB := kplex.NewOptions(k, q)
	fpUB.UpperBound = kplex.UBSortFP
	run("Ours\\ub+fp", g, fpUB)

	if basic.Count != ours.Count {
		log.Fatalf("ablation variants disagree: %d vs %d", basic.Count, ours.Count)
	}
	fmt.Printf("\nall variants report the same %d maximal k-plexes; only the amount of search differs\n", ours.Count)
}
