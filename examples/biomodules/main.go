// Command biomodules demonstrates the protein-complex use case from the
// paper's introduction: interaction networks contain dense functional
// modules that are rarely perfect cliques (missed interactions look like
// missing edges), so they surface as large k-plexes. The example builds a
// stochastic block model standing in for a noisy interaction network,
// retrieves the top modules with bounded memory via EnumerateTopK, and
// scores how well the k-plexes recover the planted blocks.
package main

import (
	"context"
	"fmt"
	"log"

	kplex "repro"
)

func main() {
	// Five "complexes" of 14 proteins each over a 300-protein network.
	// Within-complex interaction probability 0.85 — some edges are missing,
	// which is exactly why cliques under-recover and k-plexes are needed.
	// Background proteins are modelled as singleton blocks so only the
	// cross-block probability applies among them.
	const (
		numComplexes = 5
		complexSize  = 14
		nProteins    = 300
	)
	sizes := make([]int, 0, numComplexes+nProteins-numComplexes*complexSize)
	for i := 0; i < numComplexes; i++ {
		sizes = append(sizes, complexSize)
	}
	for i := numComplexes * complexSize; i < nProteins; i++ {
		sizes = append(sizes, 1)
	}
	g := kplex.SBM(kplex.SBMConfig{BlockSizes: sizes, PIn: 0.85, POut: 0.01, Seed: 42})

	stats := kplex.ComputeGraphStats(g)
	fmt.Printf("interaction network: %s\n", stats)

	// Large 2-plexes with at least 8 proteins; keep only the top 60.
	k, q, topN := 2, 8, 60
	opts := kplex.NewOptions(k, q)
	top, res, err := kplex.EnumerateTopK(context.Background(), g, opts, topN)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d maximal %d-plexes with >= %d vertices; top %d:\n",
		res.Count, k, q, len(top))

	for i, p := range top {
		if i >= 10 {
			fmt.Printf("  ... and %d more\n", len(top)-i)
			break
		}
		block, frac := dominantBlock(p, complexSize, numComplexes)
		fmt.Printf("  #%d size=%d dominant-complex=%d purity=%.2f\n", i+1, len(p), block, frac)
	}

	// Recovery score: for each planted complex, the best Jaccard overlap
	// among the reported modules.
	fmt.Println("per-complex recovery (best Jaccard):")
	for b := 0; b < numComplexes; b++ {
		best := 0.0
		for _, p := range top {
			if j := jaccardWithBlock(p, b, complexSize); j > best {
				best = j
			}
		}
		fmt.Printf("  complex %d: %.2f\n", b, best)
	}
}

// dominantBlock returns the planted block holding the plurality of p's
// vertices, and the fraction it holds. Blocks 0..numBlocks-1 occupy vertex
// ranges [b*size, (b+1)*size); everything beyond is background (-1).
func dominantBlock(p []int, size, numBlocks int) (int, float64) {
	counts := make(map[int]int)
	for _, v := range p {
		b := v / size
		if b >= numBlocks {
			b = -1
		}
		counts[b]++
	}
	bestBlock, bestCount := -1, 0
	for b, c := range counts {
		if c > bestCount {
			bestBlock, bestCount = b, c
		}
	}
	return bestBlock, float64(bestCount) / float64(len(p))
}

// jaccardWithBlock returns |p ∩ block| / |p ∪ block|.
func jaccardWithBlock(p []int, block, size int) float64 {
	lo, hi := block*size, (block+1)*size
	inter := 0
	for _, v := range p {
		if v >= lo && v < hi {
			inter++
		}
	}
	union := len(p) + size - inter
	return float64(inter) / float64(union)
}
