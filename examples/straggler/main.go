// Command straggler demonstrates the Section 6 machinery: a workload with
// a few huge seed subgraphs (planted overlapping communities) creates
// straggler tasks that serialise a naive parallel run. The example sweeps
// the τ_time task-split threshold, prints the split counts alongside the
// wall-clock times, and contrasts the paper's stage-based scheduler with
// the single-global-queue strawman and the barrier-free work-stealing
// scheduler (SchedulerSteal).
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	kplex "repro"
)

func main() {
	// Overlapping planted communities produce seed subgraphs of very
	// different sizes — the straggler scenario.
	g := kplex.Planted(kplex.PlantedConfig{
		N: 3000, BackgroundP: 0.002, Communities: 30,
		CommSize: 24, DropPerV: 2, Overlap: 6, Seed: 11,
	})
	const k, q = 3, 9
	threads := runtime.GOMAXPROCS(0)
	if threads > 8 {
		threads = 8
	}
	fmt.Printf("graph: %s, %d threads, k=%d q=%d\n",
		kplex.ComputeGraphStats(g), threads, k, q)

	run := func(label string, tau time.Duration, sched kplex.SchedulerStyle) {
		opts := kplex.NewOptions(k, q)
		opts.Threads = threads
		opts.TaskTimeout = tau
		opts.Scheduler = sched
		res, err := kplex.Enumerate(context.Background(), g, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-26s %8.3fs  count=%d tasks=%d splits=%d steals=%d\n",
			label, res.Elapsed.Seconds(), res.Count, res.Stats.Tasks,
			res.Stats.Splits, res.Stats.Steals)
	}

	fmt.Println("τ_time sweep (stage scheduler):")
	run("no splitting (τ=∞)", 0, kplex.SchedulerStages)
	for _, tau := range []time.Duration{
		10 * time.Millisecond, time.Millisecond, 100 * time.Microsecond, 10 * time.Microsecond,
	} {
		run(fmt.Sprintf("τ=%v", tau), tau, kplex.SchedulerStages)
	}

	fmt.Println("scheduler comparison (τ=0.1ms, the paper's default):")
	run("stage barriers", 100*time.Microsecond, kplex.SchedulerStages)
	run("single global queue", 100*time.Microsecond, kplex.SchedulerGlobal)
	run("work stealing (steal-half)", 100*time.Microsecond, kplex.SchedulerSteal)
}
