// Command formats demonstrates the graph I/O layer: generate a dataset,
// write it in every supported on-disk format, read each file back
// (auto-detecting where possible), verify the round trips agree, and run
// the enumerator on the reloaded graph to show the pipeline end to end.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	kplex "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "kplex-formats")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	g := kplex.ChungLu(1500, 14, 2.3, 7)
	fmt.Printf("generated: %s\n", kplex.ComputeGraphStats(g))

	formats := []struct {
		name string
		f    kplex.GraphFormat
		auto bool // auto-detection supported
	}{
		{"edgelist", kplex.FormatEdgeList, true},
		{"dimacs", kplex.FormatDIMACS, true},
		{"metis", kplex.FormatMETIS, false},
		{"matrixmarket", kplex.FormatMatrixMarket, true},
		{"binary", kplex.FormatBinary, true},
	}

	for _, fc := range formats {
		path := filepath.Join(dir, "graph."+fc.name)
		if err := kplex.WriteGraphFormatFile(path, g, fc.f); err != nil {
			log.Fatalf("write %s: %v", fc.name, err)
		}
		info, err := os.Stat(path)
		if err != nil {
			log.Fatal(err)
		}

		readAs := fc.f
		how := "explicit"
		if fc.auto {
			readAs = kplex.FormatAuto
			how = "auto-detected"
		}
		back, err := kplex.ReadGraphFormatFile(path, readAs)
		if err != nil {
			log.Fatalf("read %s: %v", fc.name, err)
		}
		if back.M() != g.M() {
			log.Fatalf("%s: round trip mismatch (m=%d, want m=%d)", fc.name, back.M(), g.M())
		}
		note := ""
		if back.N() != g.N() {
			// Edge lists carry no vertex count, so isolated vertices are
			// not representable; every other format preserves them.
			note = fmt.Sprintf("  (%d isolated vertices dropped)", g.N()-back.N())
		}
		fmt.Printf("  %-13s %8d bytes  round-trip ok (%s)%s\n", fc.name, info.Size(), how, note)
	}

	// Enumerate on the binary-format reload to close the loop.
	back, err := kplex.ReadGraphFormatFile(filepath.Join(dir, "graph.binary"), kplex.FormatAuto)
	if err != nil {
		log.Fatal(err)
	}
	res, err := kplex.Enumerate(context.Background(), back, kplex.NewOptions(2, 8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enumeration on reloaded graph: %d maximal 2-plexes (>= 8 vertices) in %v\n",
		res.Count, res.Elapsed.Round(1000000))
}
