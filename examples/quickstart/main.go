// Quickstart: build a small graph, enumerate its maximal k-plexes, and
// print them. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	kplex "repro"
)

func main() {
	// The toy graph from the paper's Figure 3: seven vertices where
	// {v1..v5} form a dense near-clique and v6, v7 hang off it.
	var b kplex.Builder
	edges := [][2]int{
		{1, 2}, {1, 5}, {1, 7}, {2, 3}, {2, 5}, {2, 7},
		{3, 5}, {3, 4}, {4, 5}, {4, 6}, {5, 7}, {6, 7},
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build(8) // vertex 0 is isolated and plays no role
	if err != nil {
		log.Fatal(err)
	}

	// Every vertex of a 2-plex may miss up to 2 in-set links (itself
	// included), i.e. one real missing edge. q = 4 asks for plexes with at
	// least 4 vertices; q >= 2k-1 is required.
	const k, q = 2, 4
	plexes, res, err := kplex.EnumerateAll(context.Background(), g, kplex.NewOptions(k, q))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: %v\n", kplex.ComputeGraphStats(g))
	fmt.Printf("found %d maximal %d-plexes with >= %d vertices in %v:\n",
		res.Count, k, q, res.Elapsed)
	for _, p := range plexes {
		fmt.Printf("  %v (verified: %v)\n", p, kplex.IsMaximalKPlex(g, p, k))
	}

	// Counting without materialising: use Enumerate with no callback.
	big := kplex.GNP(500, 0.1, 42)
	res2, err := kplex.Enumerate(context.Background(), big, kplex.NewOptions(2, 5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGNP(500, 0.1): %d maximal 2-plexes with >= 5 vertices in %v\n",
		res2.Count, res2.Elapsed)
}
