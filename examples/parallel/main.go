// Parallel enumeration: scale-up across worker threads and the effect of
// the τ_time straggler-splitting threshold from Section 6 of the paper.
//
//	go run ./examples/parallel
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	kplex "repro"
)

func main() {
	// A power-law graph big enough that parallelism matters but small
	// enough for a demo run.
	g := kplex.ChungLu(20000, 18, 2.2, 17)
	fmt.Printf("graph: %v\n", kplex.ComputeGraphStats(g))

	const k, q = 2, 12

	// Thread sweep with the paper's default τ_time = 0.1 ms.
	maxThreads := runtime.GOMAXPROCS(0)
	if maxThreads > 16 {
		maxThreads = 16
	}
	var base time.Duration
	fmt.Printf("\n%8s %12s %9s %8s\n", "threads", "time", "speedup", "splits")
	for threads := 1; threads <= maxThreads; threads *= 2 {
		opts := kplex.NewOptions(k, q)
		opts.Threads = threads
		if threads > 1 {
			opts.TaskTimeout = 100 * time.Microsecond
		}
		res, err := kplex.Enumerate(context.Background(), g, opts)
		if err != nil {
			log.Fatal(err)
		}
		if threads == 1 {
			base = res.Elapsed
		}
		fmt.Printf("%8d %12v %8.2fx %8d  (count=%d)\n",
			threads, res.Elapsed.Round(time.Millisecond),
			float64(base)/float64(res.Elapsed), res.Stats.Splits, res.Count)
	}

	// τ_time sweep at full threads: too-large values leave stragglers on a
	// single worker, too-small values pay task-materialisation overhead.
	fmt.Printf("\nτ_time sweep (%d threads):\n%12s %12s %9s\n", maxThreads, "τ", "time", "splits")
	for _, tau := range []time.Duration{
		time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	} {
		opts := kplex.NewOptions(k, q)
		opts.Threads = maxThreads
		opts.TaskTimeout = tau
		res, err := kplex.Enumerate(context.Background(), g, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12v %12v %9d\n", tau, res.Elapsed.Round(time.Millisecond), res.Stats.Splits)
	}

	// Scheduler comparison at full threads: the paper's stage barriers, the
	// global-queue strawman, and the barrier-free work-stealing scheme.
	fmt.Printf("\nscheduler comparison (%d threads, τ=0.1ms):\n%14s %12s %9s %9s\n",
		maxThreads, "scheduler", "time", "splits", "steals")
	for _, sched := range []kplex.SchedulerStyle{
		kplex.SchedulerStages, kplex.SchedulerGlobal, kplex.SchedulerSteal,
	} {
		opts := kplex.NewOptions(k, q)
		opts.Threads = maxThreads
		opts.TaskTimeout = 100 * time.Microsecond
		opts.Scheduler = sched
		res, err := kplex.Enumerate(context.Background(), g, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%14v %12v %9d %9d\n", sched,
			res.Elapsed.Round(time.Millisecond), res.Stats.Splits, res.Stats.Steals)
	}
}
