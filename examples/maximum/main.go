// Maximum k-plex: find the single largest k-plex rather than enumerating
// all of them — the companion problem of the BS/kPlexS line of work the
// paper reviews, solved here by binary search over the size threshold with
// first-hit enumeration queries.
//
//	go run ./examples/maximum
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	kplex "repro"
)

func main() {
	// Plant one oversized community so the maximum is known by design.
	g := kplex.Planted(kplex.PlantedConfig{
		N: 3000, BackgroundP: 0.005,
		Communities: 8, CommSize: 16, DropPerV: 1,
		Overlap: 0, Seed: 7,
	})
	fmt.Printf("graph: %v\n", kplex.ComputeGraphStats(g))

	for k := 1; k <= 3; k++ {
		start := time.Now()
		p, err := kplex.FindMaximumKPlex(context.Background(), g, k)
		if err != nil {
			log.Fatal(err)
		}
		if p == nil {
			fmt.Printf("k=%d: no k-plex with >= %d vertices\n", k, 2*k-1)
			continue
		}
		fmt.Printf("k=%d: maximum k-plex has %d vertices (%v): %v\n",
			k, len(p), time.Since(start).Round(time.Millisecond), p)
		if !kplex.IsMaximalKPlex(g, p, k) {
			log.Fatalf("k=%d: reported maximum is not even maximal", k)
		}
	}

	// Relaxing k grows the achievable size: each planted community is a
	// 2-plex of 16 vertices, so k=2 must reach at least 16 while k=1
	// (cliques) is stuck below it because of the dropped edges.
}
