// Community detection: the use case that motivates k-plexes in the paper's
// introduction. We plant dense communities (each a k-plex by construction)
// into a sparse background, enumerate large maximal k-plexes, and check
// how well the plexes recover the planted communities.
//
//	go run ./examples/community
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	kplex "repro"
)

func main() {
	const (
		n          = 2000
		comms      = 12
		commSize   = 18
		dropPerV   = 2 // every community is a 3-plex but NOT a clique
		background = 0.004
	)
	cfg := kplex.PlantedConfig{
		N: n, BackgroundP: background, Communities: comms,
		CommSize: commSize, DropPerV: dropPerV, Overlap: 0, Seed: 99,
	}
	g := kplex.Planted(cfg)
	fmt.Printf("planted graph: %v\n", kplex.ComputeGraphStats(g))

	// A clique-based search (k=1) misses the noisy communities; k=3
	// tolerates the dropped edges. q is set just below the community size
	// so only statistically significant plexes surface.
	const k, q = dropPerV + 1, commSize - 2
	plexes, res, err := kplex.EnumerateAll(context.Background(), g, kplex.NewOptions(k, q))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d maximal %d-plexes with >= %d vertices in %v\n",
		res.Count, k, q, res.Elapsed)

	// Compare with k=1 (maximal cliques): data noise hides communities
	// from the stricter model, which is the paper's core motivation.
	cliqueRes, err := kplex.Enumerate(context.Background(), g, kplex.NewOptions(1, q))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("for contrast, maximal cliques (k=1) with >= %d vertices: %d\n",
		q, cliqueRes.Count)

	// Score recovery: a community counts as recovered if some reported
	// plex contains at least 90%% of its members.
	step := commSize // no overlap
	recovered := 0
	for c := 0; c < comms; c++ {
		base := (c * step) % (n - commSize)
		members := map[int]bool{}
		for i := 0; i < commSize; i++ {
			members[base+i] = true
		}
		bestCover := 0
		for _, p := range plexes {
			cover := 0
			for _, v := range p {
				if members[v] {
					cover++
				}
			}
			if cover > bestCover {
				bestCover = cover
			}
		}
		if bestCover*10 >= commSize*9 {
			recovered++
		}
		fmt.Printf("community %2d (vertices %4d..%4d): best plex covers %2d/%2d members\n",
			c, base, base+commSize-1, bestCover, commSize)
	}
	fmt.Printf("recovered %d/%d planted communities\n", recovered, comms)

	// Show the largest few plexes.
	sort.Slice(plexes, func(i, j int) bool { return len(plexes[i]) > len(plexes[j]) })
	for i := 0; i < len(plexes) && i < 3; i++ {
		fmt.Printf("top plex %d (size %d): %v\n", i+1, len(plexes[i]), plexes[i])
	}
}
