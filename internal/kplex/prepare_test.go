package kplex

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/gen"
)

// plexKey canonicalises one plex for set comparison.
func plexKey(p []int) string { return fmt.Sprint(p) }

// collectSet enumerates sequentially and returns the result set keyed
// canonically, so differential tests compare sets, not orderings.
func collectSet(t *testing.T, run func(Options) (Result, error), opts Options) (map[string]bool, Result) {
	t.Helper()
	set := make(map[string]bool)
	opts.Threads = 1
	opts.OnPlex = func(p []int) { set[plexKey(p)] = true }
	res, err := run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(set)) != res.Count {
		t.Fatalf("collected %d distinct plexes, Result.Count=%d", len(set), res.Count)
	}
	return set, res
}

// TestRunPreparedMatchesRun pins RunPrepared to Run over a grid of graphs,
// (k, q) cells and all three parallel schedulers: one shared Prepared
// handle must reproduce exactly the result set and count of the one-shot
// path, sequentially and in parallel.
func TestRunPreparedMatchesRun(t *testing.T) {
	for _, cg := range gen.Corpus()[:4] {
		cg := cg
		g := cg.Build()
		for _, kq := range [][2]int{{2, 5}, {3, 6}} {
			k, q := kq[0], kq[1]
			t.Run(fmt.Sprintf("%s/k%d_q%d", cg.Name, k, q), func(t *testing.T) {
				t.Parallel()
				opts := NewOptions(k, q)
				p, err := Prepare(g, opts)
				if err != nil {
					t.Fatal(err)
				}

				wantSet, wantRes := collectSet(t, func(o Options) (Result, error) {
					return Run(context.Background(), g, o)
				}, opts)
				gotSet, gotRes := collectSet(t, func(o Options) (Result, error) {
					return RunPrepared(context.Background(), p, o)
				}, opts)
				if gotRes.Count != wantRes.Count {
					t.Fatalf("RunPrepared count %d, Run count %d", gotRes.Count, wantRes.Count)
				}
				for key := range wantSet {
					if !gotSet[key] {
						t.Fatalf("RunPrepared missing plex %s", key)
					}
				}

				// Every scheduler over the same shared handle must agree.
				for _, sched := range []SchedulerStyle{SchedulerStages, SchedulerGlobalQueue, SchedulerSteal} {
					po := NewOptions(k, q)
					po.Threads = 4
					po.Scheduler = sched
					res, err := RunPrepared(context.Background(), p, po)
					if err != nil {
						t.Fatalf("scheduler %v: %v", sched, err)
					}
					if res.Count != wantRes.Count {
						t.Fatalf("scheduler %v on prepared handle: count %d, want %d", sched, res.Count, wantRes.Count)
					}
				}
			})
		}
	}
}

// TestPreparedHandleConcurrentReuse runs many enumerations over one handle
// at once; the handle is immutable, so they must all succeed and agree.
func TestPreparedHandleConcurrentReuse(t *testing.T) {
	g := gen.GNP(120, 0.15, 11)
	opts := NewOptions(2, 5)
	p, err := Prepare(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunPrepared(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := NewOptions(2, 5)
			o.Threads = 1 + i%3
			o.Scheduler = SchedulerStyle(i % 3)
			res, err := RunPrepared(context.Background(), p, o)
			if err != nil {
				errs <- err
				return
			}
			if res.Count != want.Count {
				errs <- fmt.Errorf("worker %d: count %d, want %d", i, res.Count, want.Count)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPreparedMismatchRejected pins the guard that keeps checkpoint seed
// ids meaningful: running options whose reduction cell differs from the
// handle's must fail loudly, never silently enumerate a different space.
func TestPreparedMismatchRejected(t *testing.T) {
	g := gen.GNP(60, 0.2, 3)
	p, err := Prepare(g, NewOptions(2, 6))
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Options{
		NewOptions(3, 6),
		NewOptions(2, 7),
		func() Options { o := NewOptions(2, 6); o.UseCTCP = true; return o }(),
	} {
		if _, err := RunPrepared(context.Background(), p, bad); err == nil {
			t.Fatalf("RunPrepared accepted mismatched options K=%d Q=%d UseCTCP=%v", bad.K, bad.Q, bad.UseCTCP)
		}
		if _, _, err := EnumerateTopKPrepared(context.Background(), p, bad, 5); err == nil {
			t.Fatalf("EnumerateTopKPrepared accepted mismatched options")
		}
		if _, _, err := SizeHistogramPrepared(context.Background(), p, bad); err == nil {
			t.Fatalf("SizeHistogramPrepared accepted mismatched options")
		}
	}
}

// TestPreparedSeedSpaceMatchesSeedSpace pins the wrapper contract: the
// handle's seed space and the one-shot SeedSpace must agree, with and
// without the CTCP reduction.
func TestPreparedSeedSpaceMatchesSeedSpace(t *testing.T) {
	g := gen.GNP(150, 0.1, 5)
	for _, ctcp := range []bool{false, true} {
		opts := NewOptions(2, 6)
		opts.UseCTCP = ctcp
		want, err := SeedSpace(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Prepare(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.SeedSpace(); got != want {
			t.Fatalf("ctcp=%v: Prepared.SeedSpace=%d, SeedSpace=%d", ctcp, got, want)
		}
		if p.K() != 2 || p.Q() != 6 || p.UseCTCP() != ctcp {
			t.Fatalf("ctcp=%v: handle reports K=%d Q=%d UseCTCP=%v", ctcp, p.K(), p.Q(), p.UseCTCP())
		}
	}
}

// TestGoldenCorpusPrepared re-verifies every committed golden cell through
// the prepared path: the (count, max size, plex-set hash) triple must come
// out identical to the one-shot enumeration the files were recorded from.
func TestGoldenCorpusPrepared(t *testing.T) {
	for _, cg := range gen.Corpus() {
		for _, kq := range goldenCombos(cg.Name) {
			cg, k, q := cg, kq[0], kq[1]
			t.Run(fmt.Sprintf("%s/k%d_q%d", cg.Name, k, q), func(t *testing.T) {
				t.Parallel()
				g := cg.Build()
				opts := NewOptions(k, q)
				p, err := Prepare(g, opts)
				if err != nil {
					t.Fatal(err)
				}
				var plexes [][]int
				opts.OnPlex = func(pl []int) { plexes = append(plexes, append([]int(nil), pl...)) }
				res, err := RunPrepared(context.Background(), p, opts)
				if err != nil {
					t.Fatal(err)
				}
				got := goldenCase{
					Graph:   cg.Name,
					K:       k,
					Q:       q,
					Count:   res.Count,
					MaxSize: int(res.Stats.MaxPlexSize),
					SHA256:  canonicalHash(plexes),
				}
				want := readGoldenCase(t, got)
				if got != want {
					t.Errorf("prepared-path golden mismatch\n got: %+v\nwant: %+v", got, want)
				}
			})
		}
	}
}
