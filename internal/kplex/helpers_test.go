package kplex_test

import "time"

func microseconds(n int) time.Duration { return time.Duration(n) * time.Microsecond }
