package kplex

// Top-N retrieval of the largest maximal k-plexes. Community-detection
// pipelines (the paper's motivating application) usually inspect only the
// few largest structures, while the full enumeration can return billions;
// this wrapper keeps a bounded min-heap over the stream of results so
// memory stays O(N * plex size) regardless of the result-set size.

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
)

// plexHeap is a min-heap on (size, lexicographic order), so the root is
// always the weakest member and eviction is O(log N).
type plexHeap [][]int

func (h plexHeap) Len() int { return len(h) }
func (h plexHeap) Less(i, j int) bool {
	if len(h[i]) != len(h[j]) {
		return len(h[i]) < len(h[j])
	}
	return lexGreater(h[i], h[j]) // among equal sizes, evict the largest lexicographically
}
func (h plexHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *plexHeap) Push(x any)   { *h = append(*h, x.([]int)) }
func (h *plexHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func lexGreater(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return len(a) > len(b)
}

// EnumerateTopK returns the topN largest maximal k-plexes with at least q
// vertices, sorted by decreasing size (ties by ascending vertex sequence).
// The run uses opts as given except for OnPlex, which EnumerateTopK owns;
// the returned Result carries the full enumeration counters (Count is the
// total number of maximal k-plexes seen, not topN).
func EnumerateTopK(ctx context.Context, g graph.CSR, opts Options, topN int) ([][]int, Result, error) {
	if topN < 1 {
		return nil, Result{}, fmt.Errorf("kplex: topN must be >= 1, got %d", topN)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, Result{}, err
		}
	}
	p, err := Prepare(g, opts)
	if err != nil {
		return nil, Result{}, err
	}
	return EnumerateTopKPrepared(ctx, p, opts, topN)
}

// topkOffer folds one plex into a bounded min-heap keeping the topN
// largest (ties kept lexicographically smallest). Shared by EnumerateTopK
// and the batch layer so the two paths keep identical tie semantics.
func (h *plexHeap) topkOffer(p []int, topN int) {
	if len(*h) < topN {
		heap.Push(h, append([]int(nil), p...))
		return
	}
	if len(p) > len((*h)[0]) || (len(p) == len((*h)[0]) && lexGreater((*h)[0], p)) {
		(*h)[0] = append([]int(nil), p...)
		heap.Fix(h, 0)
	}
}

// topkSorted returns the heap's contents in reporting order: size
// descending, ties by ascending vertex sequence. The heap is consumed.
func (h plexHeap) topkSorted() [][]int {
	out := [][]int(h)
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return lexGreater(out[j], out[i])
	})
	return out
}

// EnumerateTopKPrepared is EnumerateTopK against a Prepared handle,
// skipping the run prologue.
func EnumerateTopKPrepared(ctx context.Context, p *Prepared, opts Options, topN int) ([][]int, Result, error) {
	if topN < 1 {
		return nil, Result{}, fmt.Errorf("kplex: topN must be >= 1, got %d", topN)
	}
	h := make(plexHeap, 0, topN)
	var mu sync.Mutex
	opts.OnPlex = func(p []int) {
		mu.Lock()
		defer mu.Unlock()
		h.topkOffer(p, topN)
	}
	res, err := RunPrepared(ctx, p, opts)
	if err != nil {
		return nil, res, err
	}
	return h.topkSorted(), res, nil
}
