package kplex

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// engine drives one enumeration run over a prepared (CTCP-reduced,
// (q-k)-core-restricted, degeneracy-relabelled) view of the input graph.
type engine struct {
	opts    Options
	g       *graph.Graph    // relabelled working graph
	prep    *graph.Prepared // nil only in narrow unit tests
	toInput []int32         // relabelled id -> input graph id

	// sgPool recycles seedStorage between groups: a group's storage is
	// returned the moment its last task retires, so the steady-state seed
	// pipeline performs no heap allocation at all.
	sgPool sync.Pool

	queues  []*taskQueue  // stage / global-queue schedulers
	deques  []*stealDeque // SchedulerSteal only (nil otherwise)
	pending atomic.Int64  // tasks pushed but not yet finished
	seeding atomic.Int64  // workers still generating tasks this stage
	stop    atomic.Bool
	// extStop, when non-nil, is an additional stop flag owned by the
	// caller (Options.earlyStop). Unlike context cancellation, which is
	// mirrored into stop by a watcher goroutine, a store to extStop is
	// observed synchronously by the very next cancellation check — the
	// batch layer's top-k saturation uses it so a deterministic sequential
	// walk stops before the next seed rather than a scheduling quantum
	// later.
	extStop *atomic.Bool
}

func (e *engine) cancelled() bool {
	return e.stop.Load() || (e.extStop != nil && e.extStop.Load())
}

// getStorage takes a recycled seedStorage from the pool (or a fresh one).
func (e *engine) getStorage() *seedStorage {
	if st, ok := e.sgPool.Get().(*seedStorage); ok {
		return st
	}
	return &seedStorage{}
}

// releaseSeed drops one reference to the group and recycles its storage
// once no task references it any more.
func (e *engine) releaseSeed(sg *seedGraph) {
	if sg.release() {
		e.sgPool.Put(sg.store)
	}
}

// Run enumerates all maximal k-plexes of g with at least opts.Q vertices.
// See Options for the knobs; the returned Result carries the count and the
// search statistics. The context cancels the run early (the partial count
// is returned along with ctx.Err()).
//
// Run is a thin wrapper over Prepare + RunPrepared. Callers issuing many
// runs over one graph (a query service, a resumable job) should Prepare
// once and reuse the handle, which skips the O(n+m) prologue on every run
// after the first.
func Run(ctx context.Context, g graph.CSR, opts Options) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	// A context that is already dead must not start any work — not even
	// the prologue, which is a full O(n+m) pass on its own.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	p, err := Prepare(g, opts)
	if err != nil {
		return Result{}, err
	}
	return RunPrepared(ctx, p, opts)
}

// processSeed builds and enumerates one seed group on worker w, honouring
// the resume skip set and the seed-completion hooks; emit receives the
// generated tasks (schedulers queue them, the sequential path runs them
// inline). It is the single choke point all four run paths share, so skip
// and checkpoint semantics cannot drift between schedulers.
func (e *engine) processSeed(w *worker, s int, emit func(*task)) {
	if e.skipSeed(s) {
		return
	}
	if w.sc == nil {
		w.sc = newSeedScratch(e.g.N())
	}
	st := e.getStorage()
	var buildStart time.Time
	if e.opts.PhaseTimers {
		buildStart = time.Now()
	}
	sg := w.sc.build(e.g, e.prep, s, &e.opts, st, &w.stats)
	if e.opts.PhaseTimers {
		w.stats.SeedBuildNS += time.Since(buildStart).Nanoseconds()
	}
	if sg == nil {
		// Pruned before any task existed: the group is trivially complete
		// and its untouched storage goes straight back to the pool.
		e.sgPool.Put(st)
		e.seedDoneEmpty(s)
		return
	}
	if e.opts.OnSeedDone != nil {
		// One outstanding unit for the generation phase; emitted tasks add
		// theirs inside generateTasks before they become stealable.
		sg.track = &seedTracker{seed: s, outstanding: 1}
	}
	w.stats.Seeds++
	e.generateTasks(w, sg, emit)
	if sg.track != nil {
		w.settleRelease(sg.track)
	}
	e.releaseSeed(sg) // the generation phase's reference
}

// runSequential processes every seed group in order on the calling
// goroutine, executing tasks as they are generated.
func (e *engine) runSequential(ctx context.Context) Stats {
	w := &worker{eng: e}
	done := watchContext(ctx, e)
	defer done()
	for s := 0; s < e.g.N(); s++ {
		if e.cancelled() {
			break
		}
		e.processSeed(w, s, func(t *task) { w.runTask(t) })
	}
	return w.stats
}

// runParallel implements the Section 6 scheme: stages of M seeds, one per
// worker; each worker fills its own queue with its seed's sub-tasks and
// drains it LIFO, stealing FIFO from other queues once empty. The timeout
// mechanism inside Branch feeds long-running tasks back into the owner's
// queue where they become stealable.
func (e *engine) runParallel(ctx context.Context, threads int) Stats {
	done := watchContext(ctx, e)
	defer done()

	workers := make([]*worker, threads)
	e.queues = make([]*taskQueue, threads)
	for i := range workers {
		workers[i] = &worker{id: i, eng: e, splitting: e.opts.TaskTimeout > 0}
		e.queues[i] = &taskQueue{}
	}

	n := e.g.N()
	var wg sync.WaitGroup
	for stage := 0; stage*threads < n && !e.cancelled(); stage++ {
		base := stage * threads
		e.seeding.Store(int64(threads))
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(w *worker, seed int) {
				defer wg.Done()
				if seed < n && !e.cancelled() {
					e.processSeed(w, seed, func(t *task) {
						e.pending.Add(1)
						e.queues[w.id].push(t)
					})
				}
				e.seeding.Add(-1)
				e.drain(w)
			}(workers[i], base+i)
		}
		wg.Wait()
		// Stage barrier: all queues are empty here; the seed subgraphs of
		// this stage become garbage, bounding memory as in the paper.
	}

	var total Stats
	for _, w := range workers {
		total.Add(w.stats)
	}
	return total
}

// drain processes tasks until the stage has no pending work left.
func (e *engine) drain(w *worker) {
	myQ := e.queues[w.id]
	idleSpins := 0
	for {
		if e.cancelled() {
			return
		}
		if t := myQ.popBack(); t != nil {
			w.runTask(t)
			e.pending.Add(-1)
			idleSpins = 0
			continue
		}
		// Steal FIFO from another queue (oldest tasks first: they are the
		// roots of the largest remaining subtrees).
		stolen := false
		for off := 1; off < len(e.queues); off++ {
			q := e.queues[(w.id+off)%len(e.queues)]
			if t := q.popFront(); t != nil {
				w.runTask(t)
				e.pending.Add(-1)
				stolen = true
				break
			}
		}
		if stolen {
			idleSpins = 0
			continue
		}
		if e.pending.Load() == 0 && e.seeding.Load() == 0 {
			return
		}
		idleSpins++
		if idleSpins > 64 {
			time.Sleep(20 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
}

// pushTask enqueues a timeout-split task on the worker's own queue (which
// is the single shared queue under SchedulerGlobalQueue, and the worker's
// bounded deque under SchedulerSteal).
func (e *engine) pushTask(w *worker, t *task) {
	// Register the split's storage reference before it becomes stealable;
	// the currently running task still holds one, so the group cannot be
	// recycled between this increment and the push.
	t.sg.retain()
	if tr := t.sg.track; tr != nil {
		// Same ordering argument for the seed-completion tracker.
		tr.addTask()
	}
	if e.deques != nil {
		e.enqueueLocal(w, t)
		return
	}
	e.pending.Add(1)
	e.queues[w.id].push(t)
}

// runGlobalQueue is the SchedulerGlobalQueue ablation: every worker pulls
// seeds from one shared counter and tasks from one shared queue. There are
// no stages and no thread-local queues, so each core keeps switching
// between unrelated seed subgraphs — the locality cost the stage scheme
// avoids — and all pushes and pops contend on one lock.
func (e *engine) runGlobalQueue(ctx context.Context, threads int) Stats {
	done := watchContext(ctx, e)
	defer done()

	global := &taskQueue{}
	e.queues = []*taskQueue{global}
	var nextSeed atomic.Int64
	n := e.g.N()

	workers := make([]*worker, threads)
	var wg sync.WaitGroup
	for i := range workers {
		// Every worker targets queue 0, the shared queue.
		workers[i] = &worker{id: 0, eng: e, splitting: e.opts.TaskTimeout > 0}
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			idleSpins := 0
			for !e.cancelled() {
				if t := global.popBack(); t != nil {
					w.runTask(t)
					e.pending.Add(-1)
					idleSpins = 0
					continue
				}
				s := int(nextSeed.Add(1)) - 1
				if s < n {
					e.processSeed(w, s, func(t *task) {
						e.pending.Add(1)
						global.push(t)
					})
					idleSpins = 0
					continue
				}
				if e.pending.Load() == 0 {
					return
				}
				idleSpins++
				if idleSpins > 64 {
					time.Sleep(20 * time.Microsecond)
				} else {
					runtime.Gosched()
				}
			}
		}(workers[i])
	}
	wg.Wait()

	var total Stats
	for _, w := range workers {
		total.Add(w.stats)
	}
	return total
}

// watchContext mirrors ctx cancellation into the engine's stop flag without
// polluting the hot path with channel operations. The returned func must be
// called to release the watcher goroutine.
func watchContext(ctx context.Context, e *engine) (cleanup func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	// Synchronous fast path: if ctx is already cancelled, set the flag
	// before any worker starts instead of racing the watcher goroutine.
	if ctx.Err() != nil {
		e.stop.Store(true)
		return func() {}
	}
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			e.stop.Store(true)
		case <-stop:
		}
	}()
	return func() { close(stop) }
}

// generateTasks performs Algorithm 2 lines 7-10 for one seed group: the
// set-enumeration of S ⊆ N²_{G_i}(v_i) with |S| ≤ k-1, applying pair rule
// R2 to the enumeration frontier (Theorem 5.13) and to C_S (Theorem 5.14),
// and the sub-task bound R1 (Theorem 5.7).
func (e *engine) generateTasks(w *worker, sg *seedGraph, emit func(*task)) {
	k, q := e.opts.K, e.opts.Q
	w.prepare(sg)
	// Each initial task holds one reference to the group's pooled storage
	// (and, when the seed-completion hook is on, one unit of the tracker's
	// outstanding work), registered before the scheduler's emit can make it
	// stealable.
	inner := emit
	emit = func(t *task) {
		sg.retain()
		if sg.track != nil {
			sg.track.addTask()
		}
		inner(t)
	}

	if e.opts.Partition == PartitionWhole2Hop {
		// FP-style: a single task whose candidates are the whole later
		// 2-hop neighbourhood; only earlier vertices are exclusive.
		P0 := bitset.New(sg.nAll)
		P0.Add(0)
		C0 := sg.nbrSeed.Clone()
		C0.Or(sg.hop2Set)
		emit(&task{sg: sg, P: P0, C: C0, X: sg.xBase.Clone(), sizeP: 1})
		return
	}

	// S = ∅ task.
	P0 := bitset.New(sg.nAll)
	P0.Add(0)
	C0 := sg.nbrSeed.Clone()
	X0 := sg.xBase.Clone()
	X0.Or(sg.hop2Set)
	emit(&task{sg: sg, P: P0, C: C0, X: X0, sizeP: 1})

	if k < 2 || len(sg.hop2) == 0 {
		return
	}

	// Recursive set-enumeration over the N² pool in ascending local id.
	// state per level: S (local ids), CS (candidate set after R2), allowed
	// (N² vertices that may still extend S, after R2).
	var sBuf []int
	var rec func(startIdx int, CS, allowed *bitset.Set)
	rec = func(startIdx int, CS, allowed *bitset.Set) {
		for idx := startIdx; idx < len(sg.hop2); idx++ {
			u := sg.hop2[idx]
			if !allowed.Contains(u) {
				continue
			}
			// P_S ∪ {u} must itself be a k-plex (hereditary: otherwise the
			// whole subtree is dead). d̄ within {v_i} ∪ S ∪ {u}: every
			// member counts itself and v_i (non-adjacent to all of N²).
			sBuf = append(sBuf, u)
			if !validSeedSet(sg, sBuf, k) {
				sBuf = sBuf[:len(sBuf)-1]
				continue
			}

			CSu := CS.Clone()
			allowedU := allowed.Clone()
			if sg.pair != nil {
				CSu.And(sg.pair[u])      // Theorem 5.14 via T
				allowedU.And(sg.pair[u]) // Theorem 5.13 via T
			}

			P := bitset.New(sg.nAll)
			P.Add(0)
			for _, v := range sBuf {
				P.Add(v)
			}
			sizeP := 1 + len(sBuf)

			pruned := false
			if e.opts.UseSubtaskBound {
				// R1 needs d_P over P ∪ C; P is tiny, so compute directly.
				degP := w.degP
				P.ForEach(func(v int) { degP[v] = sg.adj[v].IntersectionCount(P) })
				CSu.ForEach(func(v int) { degP[v] = sg.adj[v].IntersectionCount(P) })
				if w.bs.subtaskBound(sg, k, sizeP, P, CSu, degP) < q {
					w.stats.TasksPrunedR1++
					pruned = true
				}
			}
			if !pruned {
				X := sg.xBase.Clone()
				X.Or(sg.hop2Set)
				for _, v := range sBuf {
					X.Remove(v)
				}
				emit(&task{sg: sg, P: P, C: CSu.Clone(), X: X, sizeP: sizeP})
			}

			if len(sBuf) < k-1 {
				rec(idx+1, CSu, allowedU)
			}
			sBuf = sBuf[:len(sBuf)-1]
		}
	}
	rec(0, sg.nbrSeed.Clone(), sg.hop2Set.Clone())
}

// validSeedSet reports whether {v_i} ∪ S is a k-plex. Every member of S is
// non-adjacent to v_i (it is 2 hops away), so v_i's deficiency is 1+|S| and
// each s ∈ S starts at 2 (itself plus v_i) plus its non-neighbours in S.
func validSeedSet(sg *seedGraph, S []int, k int) bool {
	if 1+len(S) > k {
		return false
	}
	for i, u := range S {
		non := 2 // u itself and the seed
		for j, v := range S {
			if i != j && !sg.adj[u].Contains(v) {
				non++
			}
		}
		if non > k {
			return false
		}
	}
	return true
}

// taskQueue is a mutex-guarded deque. Owners pop from the back (LIFO keeps
// the working set cache-hot); thieves pop from the front (FIFO hands over
// the largest remaining subtrees).
type taskQueue struct {
	mu    sync.Mutex
	tasks []*task
}

func (q *taskQueue) push(t *task) {
	q.mu.Lock()
	q.tasks = append(q.tasks, t)
	q.mu.Unlock()
}

func (q *taskQueue) popBack() *task {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tasks) == 0 {
		return nil
	}
	t := q.tasks[len(q.tasks)-1]
	q.tasks = q.tasks[:len(q.tasks)-1]
	return t
}

func (q *taskQueue) popFront() *task {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tasks) == 0 {
		return nil
	}
	t := q.tasks[0]
	q.tasks = q.tasks[1:]
	return t
}
