package kplex_test

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/gen"
	"repro/internal/kplex"
)

// TestQuickEngineMatchesOracle drives testing/quick over random graph
// parameters: for every sampled (n, p, k, q) the engine must agree with the
// plain Bron-Kerbosch oracle.
func TestQuickEngineMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(8)
		p := 0.25 + 0.5*rng.Float64()
		k := 1 + rng.Intn(3)
		q := 2*k - 1 + rng.Intn(3)
		g := gen.GNP(n, p, seed)

		want := baseline.NaiveEnumerate(g, k, q)

		var got int
		opts := kplex.NewOptions(k, q)
		opts.OnPlex = func([]int) { got++ }
		res, err := kplex.Run(context.Background(), g, opts)
		if err != nil {
			return false
		}
		return int64(got) == res.Count && got == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHereditaryInvariant samples emitted plexes and checks the
// hereditary property the algorithm relies on: every subset obtained by
// dropping one vertex is still a k-plex.
func TestQuickHereditaryInvariant(t *testing.T) {
	g := gen.ChungLu(500, 14, 2.3, 77)
	const k, q = 2, 6
	var plexes [][]int
	opts := kplex.NewOptions(k, q)
	opts.OnPlex = func(p []int) {
		if len(plexes) < 50 {
			plexes = append(plexes, append([]int(nil), p...))
		}
	}
	if _, err := kplex.Run(context.Background(), g, opts); err != nil {
		t.Fatal(err)
	}
	if len(plexes) == 0 {
		t.Skip("no plexes at this setting")
	}
	for _, p := range plexes {
		for drop := range p {
			sub := append(append([]int(nil), p[:drop]...), p[drop+1:]...)
			if !kplex.IsKPlex(g, sub, k) {
				t.Fatalf("hereditary violation: %v minus %d is not a k-plex", p, p[drop])
			}
		}
	}
}

// TestQuickCoreContainment checks Theorem 3.5 empirically: every emitted
// plex must survive the (q-k)-core reduction.
func TestQuickCoreContainment(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(40)
		g := gen.GNP(n, 0.3, seed)
		k := 1 + rng.Intn(2)
		q := 2*k - 1 + rng.Intn(2)

		ok := true
		opts := kplex.NewOptions(k, q)
		opts.OnPlex = func(p []int) {
			// Each member needs >= q-k neighbours inside the plex, hence
			// >= q-k in the whole graph.
			for _, v := range p {
				if g.Degree(v) < q-k {
					ok = false
				}
			}
		}
		if _, err := kplex.Run(context.Background(), g, opts); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
