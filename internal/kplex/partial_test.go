package kplex

// Deadline-partial grid (an ISSUE 10 satellite): across all three
// schedulers, a run cancelled mid-flight must leave the Collector with a
// true lower bound of the exact golden count, and resuming with
// SkipSeeds = the collector's done-set must produce exactly the remainder
// — count, histogram and max-size all reassembling the exact answer.

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/gen"
)

func TestDeadlinePartialGrid(t *testing.T) {
	schedulers := []struct {
		name  string
		style SchedulerStyle
	}{
		{"stages", SchedulerStages},
		{"global-queue", SchedulerGlobalQueue},
		{"steal", SchedulerSteal},
	}
	cells := []struct {
		graph string
		k, q  int
	}{
		{"planted-a", 2, 6},
		{"chunglu-tail", 3, 8},
	}
	for _, sc := range schedulers {
		for _, cell := range cells {
			t.Run(sc.name+"/"+cell.graph, func(t *testing.T) {
				want := readGoldenCase(t, goldenCase{Graph: cell.graph, K: cell.k, Q: cell.q})
				cg := gen.CorpusGraphByName(cell.graph)
				g := cg.Build()

				opts := NewOptions(cell.k, cell.q)
				opts.Threads = 4
				opts.Scheduler = sc.style
				p, err := Prepare(g, opts)
				if err != nil {
					t.Fatal(err)
				}
				total := p.SeedSpace()

				// Cancel once a third of the seed groups have committed —
				// mid-flight, so some groups are abandoned incomplete.
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				stopAfter := int64(total / 3)
				var committed atomic.Int64
				opts.OnSeedDone = func(int, Stats) {
					if committed.Add(1) == stopAfter {
						cancel()
					}
				}
				col := NewCollector()
				col.Install(&opts)

				_, runErr := RunPrepared(ctx, p, opts)
				if stopAfter > 0 && runErr == nil {
					t.Fatalf("run completed despite cancellation after %d commits", stopAfter)
				}

				// The committed prefix is a true lower bound.
				if col.Count() > want.Count {
					t.Fatalf("partial count %d exceeds exact %d", col.Count(), want.Count)
				}
				if col.MaxSize() > want.MaxSize {
					t.Fatalf("partial max size %d exceeds exact %d", col.MaxSize(), want.MaxSize)
				}
				done := col.SeedsDone()
				if done > total {
					t.Fatalf("seedsDone %d exceeds seed space %d", done, total)
				}
				if doneSet := col.DoneSeeds(); doneSet.Len() != done {
					t.Fatalf("done-set size %d != SeedsDone %d", doneSet.Len(), done)
				}

				// Resume from the done-set: the remainder must reassemble
				// the exact answer.
				opts2 := NewOptions(cell.k, cell.q)
				opts2.Threads = 4
				opts2.Scheduler = sc.style
				opts2.SkipSeeds = col.DoneSeeds()
				col2 := NewCollector()
				col2.Install(&opts2)
				if _, err := RunPrepared(context.Background(), p, opts2); err != nil {
					t.Fatalf("resume run: %v", err)
				}

				if got := col.Count() + col2.Count(); got != want.Count {
					t.Errorf("partial %d + remainder %d = %d, want exact %d",
						col.Count(), col2.Count(), got, want.Count)
				}
				if got := col.SeedsDone() + col2.SeedsDone(); got != total {
					t.Errorf("seedsDone %d + %d = %d, want seed space %d",
						col.SeedsDone(), col2.SeedsDone(), got, total)
				}
				if got := max(col.MaxSize(), col2.MaxSize()); got != want.MaxSize {
					t.Errorf("max size %d, want %d", got, want.MaxSize)
				}
				merged := col.Histogram()
				for size, n := range col2.Histogram() {
					merged[size] += n
				}
				var histSum int64
				for _, n := range merged {
					histSum += n
				}
				if histSum != want.Count {
					t.Errorf("merged histogram sums to %d, want %d", histSum, want.Count)
				}
			})
		}
	}
}

// TestCollectorCommitDiscipline checks the buffering rules directly:
// plexes count only after their seed's OnSeedDone, duplicate completions
// are ignored, and an empty seed group still marks done.
func TestCollectorCommitDiscipline(t *testing.T) {
	col := NewCollector()
	var opts Options
	col.Install(&opts)

	opts.OnPlexSeed(7, []int{1, 2, 3})
	opts.OnPlexSeed(7, []int{1, 2, 3, 4})
	if col.Count() != 0 || col.SeedsDone() != 0 {
		t.Fatalf("uncommitted seed already visible: count=%d done=%d", col.Count(), col.SeedsDone())
	}
	opts.OnSeedDone(7, Stats{Seeds: 1})
	if col.Count() != 2 || col.MaxSize() != 4 || col.SeedsDone() != 1 {
		t.Fatalf("after commit: count=%d max=%d done=%d", col.Count(), col.MaxSize(), col.SeedsDone())
	}
	if h := col.Histogram(); h[3] != 1 || h[4] != 1 {
		t.Fatalf("histogram %v", h)
	}
	if s := col.Stats(); s.Seeds != 1 {
		t.Fatalf("stats %+v", s)
	}

	// Duplicate completion: no double count.
	opts.OnSeedDone(7, Stats{Seeds: 1})
	if col.SeedsDone() != 1 || col.Stats().Seeds != 1 {
		t.Fatal("duplicate OnSeedDone committed twice")
	}

	// Empty group: done advances, totals do not.
	opts.OnSeedDone(9, Stats{})
	if col.SeedsDone() != 2 || col.Count() != 2 {
		t.Fatalf("empty group: done=%d count=%d", col.SeedsDone(), col.Count())
	}
	if !col.DoneSeeds().Contains(9) {
		t.Fatal("done-set missing empty group")
	}
}

// TestCollectorChainsHooks verifies Install preserves hooks already set.
func TestCollectorChainsHooks(t *testing.T) {
	var plexes, dones int
	opts := Options{
		OnPlexSeed: func(int, []int) { plexes++ },
		OnSeedDone: func(int, Stats) { dones++ },
	}
	col := NewCollector()
	col.Install(&opts)
	opts.OnPlexSeed(1, []int{1, 2})
	opts.OnSeedDone(1, Stats{})
	if plexes != 1 || dones != 1 {
		t.Fatalf("chained hooks fired %d/%d times, want 1/1", plexes, dones)
	}
	if col.Count() != 1 {
		t.Fatalf("collector count %d", col.Count())
	}
}
