package kplex

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/gen"
)

// testSchedulers enumerates the execution strategies the checkpoint hooks
// must behave identically under.
var testSchedulers = []struct {
	name    string
	apply   func(*Options)
	threads int
}{
	{"sequential", func(o *Options) {}, 1},
	{"stages", func(o *Options) { o.Scheduler = SchedulerStages }, 4},
	{"global-queue", func(o *Options) { o.Scheduler = SchedulerGlobalQueue }, 4},
	{"steal", func(o *Options) { o.Scheduler = SchedulerSteal }, 4},
}

func TestSeedSetBasics(t *testing.T) {
	s := NewSeedSet(3, 70, 3)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(3) || !s.Contains(70) || s.Contains(4) || s.Contains(-1) {
		t.Fatal("membership wrong")
	}
	if s.Max() != 70 {
		t.Fatalf("Max = %d, want 70", s.Max())
	}
	if got := s.Seeds(); len(got) != 2 || got[0] != 3 || got[1] != 70 {
		t.Fatalf("Seeds = %v", got)
	}
	var empty *SeedSet
	if empty.Len() != 0 || empty.Max() != -1 || empty.Contains(0) {
		t.Fatal("nil set must behave as empty")
	}
	if NewSeedSet(1).digest() == NewSeedSet(2).digest() {
		t.Fatal("distinct sets share a digest")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) must panic")
		}
	}()
	s.Add(-1)
}

func TestValidateSeedHookCombinations(t *testing.T) {
	o := NewOptions(2, 6)
	o.FirstOnly = true
	o.OnSeedDone = func(int, Stats) {}
	if err := o.Validate(); err == nil {
		t.Error("OnSeedDone+FirstOnly must be rejected")
	}
	o = NewOptions(2, 6)
	o.FirstOnly = true
	o.OnPlexSeed = func(int, []int) {}
	if err := o.Validate(); err == nil {
		t.Error("OnPlexSeed+FirstOnly must be rejected")
	}
	o = NewOptions(2, 6)
	o.SkipSeeds = NewSeedSet(1, 2)
	if err := o.Validate(); err == nil {
		t.Error("SkipSeeds without any hook must be rejected")
	}
	o.OnSeedDone = func(int, Stats) {}
	if err := o.Validate(); err != nil {
		t.Errorf("SkipSeeds with OnSeedDone: %v", err)
	}
}

func TestSkipSeedsOutOfRange(t *testing.T) {
	g := gen.Planted(gen.PlantedConfig{N: 60, BackgroundP: 0.02, Communities: 2, CommSize: 10, DropPerV: 1, Seed: 7})
	total, err := SeedSpace(g, NewOptions(2, 6))
	if err != nil {
		t.Fatal(err)
	}
	o := NewOptions(2, 6)
	o.SkipSeeds = NewSeedSet(total) // first invalid id
	o.OnSeedDone = func(int, Stats) {}
	if _, err := Run(context.Background(), g, o); err == nil {
		t.Fatalf("SkipSeeds entry %d >= SeedSpace %d must fail the run", total, total)
	}
}

func TestResultKeyReflectsSkipSeeds(t *testing.T) {
	a := NewOptions(2, 6)
	b := NewOptions(2, 6)
	b.SkipSeeds = NewSeedSet(5)
	c := NewOptions(2, 6)
	c.SkipSeeds = NewSeedSet(6)
	if a.ResultKey() == b.ResultKey() || b.ResultKey() == c.ResultKey() {
		t.Fatalf("ResultKey must distinguish skip sets: %q %q %q",
			a.ResultKey(), b.ResultKey(), c.ResultKey())
	}
}

// seedRecorder collects the per-seed observations of one hooked run.
type seedRecorder struct {
	mu       sync.Mutex
	partials map[int]Stats
	plexes   map[int]int64
	repeats  int // OnSeedDone fired twice for a seed (always a bug)
}

func newSeedRecorder() *seedRecorder {
	return &seedRecorder{partials: make(map[int]Stats), plexes: make(map[int]int64)}
}

func (r *seedRecorder) install(o *Options) {
	o.OnSeedDone = func(seed int, partial Stats) {
		r.mu.Lock()
		if _, dup := r.partials[seed]; dup {
			r.repeats++
		}
		r.partials[seed] = partial
		r.mu.Unlock()
	}
	o.OnPlexSeed = func(seed int, _ []int) {
		r.mu.Lock()
		r.plexes[seed]++
		r.mu.Unlock()
	}
}

// TestSeedHooksAccounting pins the core contract on every scheduler:
// OnSeedDone fires exactly once per seed, the per-seed Emitted counters sum
// to the run's count, and OnPlexSeed deliveries agree with them seed by
// seed.
func TestSeedHooksAccounting(t *testing.T) {
	g := gen.Planted(gen.PlantedConfig{N: 120, BackgroundP: 0.02, Communities: 4, CommSize: 12, DropPerV: 1, Overlap: 2, Seed: 41})
	base := NewOptions(2, 6)
	total, err := SeedSpace(g, base)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(context.Background(), g, base)
	if err != nil {
		t.Fatal(err)
	}

	for _, sc := range testSchedulers {
		t.Run(sc.name, func(t *testing.T) {
			opts := NewOptions(2, 6)
			sc.apply(&opts)
			opts.Threads = sc.threads
			rec := newSeedRecorder()
			rec.install(&opts)
			res, err := Run(context.Background(), g, opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != ref.Count {
				t.Fatalf("count %d, want %d", res.Count, ref.Count)
			}
			if rec.repeats != 0 {
				t.Fatalf("OnSeedDone fired more than once for %d seeds", rec.repeats)
			}
			if len(rec.partials) != total {
				t.Fatalf("OnSeedDone reported %d seeds, SeedSpace is %d", len(rec.partials), total)
			}
			var emitted, maxSize int64
			for seed, p := range rec.partials {
				emitted += p.Emitted
				if p.MaxPlexSize > maxSize {
					maxSize = p.MaxPlexSize
				}
				if p.Emitted != rec.plexes[seed] {
					t.Fatalf("seed %d: partial.Emitted=%d but OnPlexSeed delivered %d", seed, p.Emitted, rec.plexes[seed])
				}
			}
			if emitted != ref.Count {
				t.Fatalf("sum of per-seed Emitted = %d, want %d", emitted, ref.Count)
			}
			if maxSize != ref.Stats.MaxPlexSize {
				t.Fatalf("max of per-seed MaxPlexSize = %d, want %d", maxSize, ref.Stats.MaxPlexSize)
			}
		})
	}
}

// TestSeedHooksWithSplitting forces the timeout splitter on so split tasks
// exercise the outstanding-count path (a split must keep its group open
// until the stolen half finishes too).
func TestSeedHooksWithSplitting(t *testing.T) {
	g := gen.Planted(gen.PlantedConfig{N: 150, BackgroundP: 0.015, Communities: 6, CommSize: 10, DropPerV: 2, Overlap: 3, Seed: 42})
	ref, err := Run(context.Background(), g, NewOptions(2, 6))
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []SchedulerStyle{SchedulerStages, SchedulerGlobalQueue, SchedulerSteal} {
		opts := NewOptions(2, 6)
		opts.Threads = 4
		opts.Scheduler = sched
		opts.TaskTimeout = 1 // nanosecond: split at every opportunity
		rec := newSeedRecorder()
		rec.install(&opts)
		res, err := Run(context.Background(), g, opts)
		if err != nil {
			t.Fatal(err)
		}
		var emitted int64
		for _, p := range rec.partials {
			emitted += p.Emitted
		}
		if res.Count != ref.Count || emitted != ref.Count {
			t.Fatalf("%v: count=%d, per-seed sum=%d, want %d", sched, res.Count, emitted, ref.Count)
		}
	}
}

// TestCancelledRunReportsOnlyCompleteSeeds pins the crash-safety half of
// the OnSeedDone contract: a run cancelled mid-flight may under-report
// seeds (they re-run on resume), but every seed it DOES report must carry
// its complete contribution — a truncated group reported as done would
// silently lose plexes forever. The cancel lands at a random point via an
// OnPlexSeed trigger; several rounds push it into different phases.
func TestCancelledRunReportsOnlyCompleteSeeds(t *testing.T) {
	g := gen.Planted(gen.PlantedConfig{N: 150, BackgroundP: 0.015, Communities: 6, CommSize: 10, DropPerV: 2, Overlap: 3, Seed: 42})

	// Ground truth per-seed counts.
	full := NewOptions(2, 6)
	fullRec := newSeedRecorder()
	fullRec.install(&full)
	if _, err := Run(context.Background(), g, full); err != nil {
		t.Fatal(err)
	}

	for _, sc := range testSchedulers {
		t.Run(sc.name, func(t *testing.T) {
			for round := 0; round < 5; round++ {
				opts := NewOptions(2, 6)
				sc.apply(&opts)
				opts.Threads = sc.threads
				opts.TaskTimeout = 1 // maximise in-flight tasks per group
				rec := newSeedRecorder()
				rec.install(&opts)
				ctx, cancel := context.WithCancel(context.Background())
				var plexes atomic.Int64
				after := int64(1 + round*7)
				prev := opts.OnPlexSeed
				opts.OnPlexSeed = func(seed int, p []int) {
					prev(seed, p)
					if plexes.Add(1) == after {
						cancel()
					}
				}
				_, err := Run(ctx, g, opts)
				cancel()
				if err == nil {
					// The run finished before the trigger; still a valid
					// round (all seeds complete).
					continue
				}
				for seed, partial := range rec.partials {
					if want := fullRec.partials[seed].Emitted; partial.Emitted != want {
						t.Fatalf("round %d: cancelled run reported seed %d with %d plexes, complete group has %d",
							round, seed, partial.Emitted, want)
					}
				}
			}
		})
	}
}

// TestSkipSeedsPartition splits the seed space in two and checks that the
// two complementary runs partition the full result set exactly — the
// property resume correctness rests on.
func TestSkipSeedsPartition(t *testing.T) {
	g := gen.SBM(gen.SBMConfig{BlockSizes: []int{25, 30, 35}, PIn: 0.45, POut: 0.04, Seed: 43})
	base := NewOptions(2, 6)
	total, err := SeedSpace(g, base)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: per-seed emitted counts of a full run.
	full := NewOptions(2, 6)
	fullRec := newSeedRecorder()
	fullRec.install(&full)
	fullRes, err := Run(context.Background(), g, full)
	if err != nil {
		t.Fatal(err)
	}

	evens, odds := NewSeedSet(), NewSeedSet()
	for s := 0; s < total; s++ {
		if s%2 == 0 {
			evens.Add(s)
		} else {
			odds.Add(s)
		}
	}

	for _, sc := range testSchedulers {
		t.Run(sc.name, func(t *testing.T) {
			runHalf := func(skip *SeedSet) (int64, map[int]Stats) {
				opts := NewOptions(2, 6)
				sc.apply(&opts)
				opts.Threads = sc.threads
				opts.SkipSeeds = skip
				rec := newSeedRecorder()
				rec.install(&opts)
				res, err := Run(context.Background(), g, opts)
				if err != nil {
					t.Fatal(err)
				}
				return res.Count, rec.partials
			}
			cEven, pEven := runHalf(evens) // ran the odd seeds
			cOdd, pOdd := runHalf(odds)    // ran the even seeds
			if cEven+cOdd != fullRes.Count {
				t.Fatalf("halves sum to %d, full run found %d", cEven+cOdd, fullRes.Count)
			}
			if len(pEven)+len(pOdd) != total {
				t.Fatalf("halves reported %d+%d seeds, want %d", len(pEven), len(pOdd), total)
			}
			for seed, p := range fullRec.partials {
				var got Stats
				var ok bool
				if seed%2 == 0 {
					got, ok = pOdd[seed]
				} else {
					got, ok = pEven[seed]
				}
				if !ok {
					t.Fatalf("seed %d missing from its half", seed)
				}
				if got.Emitted != p.Emitted {
					t.Fatalf("seed %d: half emitted %d, full run %d", seed, got.Emitted, p.Emitted)
				}
			}
		})
	}
}
