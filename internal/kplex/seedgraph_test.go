package kplex

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// buildFor is a test helper that constructs the seed graph of seed s on a
// degeneracy-relabelled copy of g.
func buildFor(t *testing.T, g *graph.Graph, s int, opts Options) (*seedGraph, *graph.Graph) {
	t.Helper()
	relab, _ := graph.DegeneracyOrderedCopy(g)
	return buildSeedGraph(relab, s, &opts), relab
}

func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	var b graph.Builder
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	g, err := b.Build(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSeedGraphNilWhenTooSmall(t *testing.T) {
	// A path has no large k-plexes: every seed group must be rejected for
	// q beyond the path's tiny plexes.
	g := pathGraph(t, 10)
	opts := NewOptions(2, 6)
	for s := 0; s < g.N(); s++ {
		if sg, _ := buildFor(t, g, s, opts); sg != nil {
			t.Fatalf("seed %d: expected nil seed graph on a path with q=6", s)
		}
	}
}

func TestSeedGraphStructure(t *testing.T) {
	// Complete graph K8: for the first seed in degeneracy order the later
	// neighbourhood is everything, there are no 2-hop vertices, and no
	// earlier vertices.
	var b graph.Builder
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			b.AddEdge(i, j)
		}
	}
	g, _ := b.Build(8)
	opts := NewOptions(2, 5)
	sg, _ := buildFor(t, g, 0, opts)
	if sg == nil {
		t.Fatal("seed graph unexpectedly nil on K8")
	}
	if sg.nv != 8 || sg.nAll != 8 {
		t.Fatalf("nv=%d nAll=%d, want 8/8", sg.nv, sg.nAll)
	}
	if len(sg.hop2) != 0 {
		t.Fatalf("hop2 = %v, want empty on a clique", sg.hop2)
	}
	if got := sg.nbrSeed.Count(); got != 7 {
		t.Fatalf("|N¹| = %d, want 7", got)
	}
	// Adjacency rows must be symmetric within the candidate space.
	for u := 0; u < sg.nv; u++ {
		for v := 0; v < sg.nv; v++ {
			if u != v && sg.adj[u].Contains(v) != sg.adj[v].Contains(u) {
				t.Fatalf("asymmetric adjacency %d/%d", u, v)
			}
		}
		if sg.adj[u].Contains(u) {
			t.Fatalf("self-loop at %d", u)
		}
	}
	// degGi on a clique is n-1 for everyone.
	for u := 0; u < sg.nv; u++ {
		if sg.degGi[u] != 7 {
			t.Fatalf("degGi[%d] = %d, want 7", u, sg.degGi[u])
		}
	}
}

func TestSeedGraphLaterSeedsHaveEarlierX(t *testing.T) {
	// On K8, any later seed s has s earlier neighbours, all of which must
	// appear as X-only vertices (they witness non-maximality of any plex
	// skipping them).
	var b graph.Builder
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			b.AddEdge(i, j)
		}
	}
	g, _ := b.Build(8)
	opts := NewOptions(2, 5)
	sg, _ := buildFor(t, g, 3, opts)
	if sg == nil {
		t.Skip("seed group pruned — acceptable for a later clique seed")
	}
	if got := sg.nAll - sg.nv; got != 3 {
		t.Fatalf("|V'| = %d, want 3 earlier vertices", got)
	}
	// Each X vertex on a clique is adjacent to every candidate vertex.
	for x := sg.nv; x < sg.nAll; x++ {
		for v := 0; v < sg.nv; v++ {
			if v != x && !sg.adj[x].Contains(v) {
				t.Fatalf("X vertex %d missing edge to %d", x, v)
			}
		}
	}
}

func TestSeedGraphHop2(t *testing.T) {
	// Star-of-triangles: seed 0 adjacent to 1 and 2; vertex 3 adjacent to
	// 1 and 2 (two hops from 0 via two common neighbours).
	var b graph.Builder
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}} {
		b.AddEdge(e[0], e[1])
	}
	g, _ := b.Build(4)
	opts := NewOptions(2, 3) // q=3: thresholds small enough to keep hop2
	relab, orig := graph.DegeneracyOrderedCopy(g)
	// Find the relabelled id of vertex 0.
	var s int
	for i, o := range orig {
		if o == 0 {
			s = i
		}
	}
	sg := buildSeedGraph(relab, s, &opts)
	if sg == nil {
		t.Skip("seed 0 is late in degeneracy order on this tiny graph")
	}
	// The 2-hop pool must contain only vertices later than the seed and
	// non-adjacent to it, each with >= q-2k+2 = 1 common neighbours.
	for _, h := range sg.hop2 {
		if sg.adj[0].Contains(h) {
			t.Fatalf("hop2 vertex %d adjacent to the seed", h)
		}
		if sg.adj[h].IntersectionCount(sg.nbrSeed) < 1 {
			t.Fatalf("hop2 vertex %d has no common neighbour with seed", h)
		}
	}
}

func TestPairMatrixSymmetricAndSound(t *testing.T) {
	g := gen.GNP(60, 0.4, 3)
	opts := NewOptions(2, 6)
	relab, _ := graph.DegeneracyOrderedCopy(g)
	checked := 0
	for s := 0; s < relab.N(); s++ {
		sg := buildSeedGraph(relab, s, &opts)
		if sg == nil || sg.pair == nil {
			continue
		}
		checked++
		for u := 0; u < sg.nv; u++ {
			for v := 0; v < sg.nv; v++ {
				if u == v {
					continue
				}
				if sg.pair[u].Contains(v) != sg.pair[v].Contains(u) {
					t.Fatalf("seed %d: pair matrix asymmetric at (%d,%d)", s, u, v)
				}
			}
			// V' bits must be all ones so X intersection is a no-op.
			for x := sg.nv; x < sg.nAll; x++ {
				if !sg.pair[u].Contains(x) {
					t.Fatalf("seed %d: pair row %d clears X-range bit %d", s, u, x)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no seed graphs built; test graph too sparse")
	}
}

// TestPairPruningIsConservative verifies rule R2's soundness directly: on
// random graphs, enumerate with and without pair pruning and compare counts
// (the full result-set comparison lives in engine_test.go; this pins the
// blame on the pair matrix when it fires).
func TestPairPruningIsConservative(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := gen.GNP(40, 0.5, 100+seed)
		for _, kq := range []struct{ k, q int }{{2, 5}, {3, 6}} {
			with := NewOptions(kq.k, kq.q)
			without := NewOptions(kq.k, kq.q)
			without.UsePairPruning = false
			rw := mustRun(t, g, with)
			ro := mustRun(t, g, without)
			if rw.Count != ro.Count {
				t.Fatalf("seed %d k=%d q=%d: pair pruning changed count %d -> %d",
					seed, kq.k, kq.q, ro.Count, rw.Count)
			}
		}
	}
}
