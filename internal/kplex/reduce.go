package kplex

import (
	"repro/internal/graph"
)

// ReduceCTCP applies the core-truss co-pruning style reduction that kPlexS
// (Chang, Xu, Strash; VLDB 2022) introduced for maximum k-plex search,
// adapted here to size-constrained enumeration. Two rules run to a joint
// fixed point:
//
//   - vertex rule (Theorem 3.5): drop v when d(v) < q-k;
//   - edge rule (Theorem 5.1(ii)): drop edge (u,v) when
//     |N(u) ∩ N(v)| < q-2k, because two adjacent vertices of any k-plex P
//     with |P| >= q share at least q-2k common neighbours inside P.
//
// Soundness for enumeration (not just optimisation): by induction over the
// deletion sequence, every vertex and every edge inside a valid k-plex of
// size >= q survives, and so does every maximality witness P ∪ {x} (it is
// itself a valid k-plex of size >= q). The returned graph shares g's vertex
// id space; pruned vertices simply become isolated and fall out of the
// (q-k)-core that Run applies next.
//
// The reduction subsumes repeated k-core peeling and never changes the
// result set; it is an optional preprocessing step (Options.UseCTCP)
// because its O(sum of deg(u)+deg(v) per edge) pass only pays off on
// graphs with many low-support edges. It accepts any CSR source (the rows
// it shrinks are copied out of the source up front) and returns a CSR: the
// input itself when no rule can fire, a rebuilt in-memory graph otherwise.
func ReduceCTCP(g graph.CSR, k, q int) graph.CSR {
	n := g.N()
	if n == 0 || q-2*k < 1 {
		// An edge threshold of q-2k <= 0 never fires, and plain k-core
		// pruning is already done by Run; nothing to do.
		return g
	}
	// Adjacency as sorted slices we can shrink. alive[v] tracks vertices.
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		adj[v] = append([]int32(nil), g.Neighbors(v)...)
	}
	degMin := q - k
	cnMin := q - 2*k

	removeEdge := func(u int, v int32) {
		row := adj[u]
		for i, w := range row {
			if w == v {
				adj[u] = append(row[:i], row[i+1:]...)
				return
			}
		}
	}

	for changed := true; changed; {
		changed = false
		// Vertex rule: clearing a row deletes all incident edges.
		for v := 0; v < n; v++ {
			if len(adj[v]) > 0 && len(adj[v]) < degMin {
				for _, u := range adj[v] {
					removeEdge(int(u), int32(v))
				}
				adj[v] = adj[v][:0]
				changed = true
			}
		}
		// Edge rule.
		for u := 0; u < n; u++ {
			row := adj[u]
			for i := 0; i < len(row); {
				v := row[i]
				if int(v) > u && graph.CountCommon(adj[u], adj[int(v)]) < cnMin {
					adj[u] = append(adj[u][:i], adj[u][i+1:]...)
					row = adj[u]
					removeEdge(int(v), int32(u))
					changed = true
					continue
				}
				i++
			}
		}
	}

	var b graph.Builder
	for v := 0; v < n; v++ {
		for _, u := range adj[v] {
			if int32(v) < u {
				b.AddEdge(v, int(u))
			}
		}
	}
	reduced, err := b.Build(n)
	if err != nil {
		panic("kplex: ctcp rebuild: " + err.Error())
	}
	return reduced
}
