package kplex

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Theorem 3.2 (hereditariness): every subset of a k-plex is a k-plex.
// Checked on random subsets of plexes the enumerator emits.
func TestQuickTheorem32Hereditary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNP(20+rng.Intn(20), 0.4, seed)
		k := 1 + rng.Intn(3)
		q := 2*k - 1
		var plexes [][]int
		opts := NewOptions(k, q)
		opts.OnPlex = func(p []int) { plexes = append(plexes, append([]int(nil), p...)) }
		if _, err := Run(context.Background(), g, opts); err != nil {
			return false
		}
		for _, p := range plexes {
			// Drop a random subset of members; the rest must stay a k-plex.
			var sub []int
			for _, v := range p {
				if rng.Intn(2) == 0 {
					sub = append(sub, v)
				}
			}
			if len(sub) > 0 && !IsKPlex(g, sub, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 3.3 boundary: two disjoint (k-1)-cliques form a k-plex with
// 2k-2 vertices that is disconnected — the counterexample the paper gives
// for why q >= 2k-1 is required.
func TestTheorem33BoundaryDisconnectedPlex(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5} {
		size := k - 1
		var b graph.Builder
		// Clique A on [0, size), clique B on [size, 2*size).
		for c := 0; c < 2; c++ {
			base := c * size
			for i := 0; i < size; i++ {
				for j := i + 1; j < size; j++ {
					b.AddEdge(base+i, base+j)
				}
			}
		}
		g, err := b.Build(2 * size)
		if err != nil {
			t.Fatal(err)
		}
		all := make([]int, 2*size)
		for i := range all {
			all[i] = i
		}
		if !IsKPlex(g, all, k) {
			t.Errorf("k=%d: two disjoint %d-cliques should form a k-plex of size %d",
				k, size, 2*size)
		}
		if _, comps := graph.ConnectedComponents(g); k >= 3 && comps != 2 {
			t.Errorf("k=%d: expected 2 components, got %d", k, comps)
		}
	}
}

// Theorem 3.3: with q >= 2k-1, every emitted plex has induced diameter at
// most 2 (and in particular is connected).
func TestEmittedPlexesHaveDiameterTwo(t *testing.T) {
	g := gen.Planted(gen.PlantedConfig{
		N: 120, BackgroundP: 0.03, Communities: 6, CommSize: 10,
		DropPerV: 2, Overlap: 2, Seed: 31,
	})
	for _, k := range []int{2, 3} {
		q := 2*k - 1
		var plexes [][]int
		opts := NewOptions(k, q)
		opts.OnPlex = func(p []int) { plexes = append(plexes, append([]int(nil), p...)) }
		if _, err := Run(context.Background(), g, opts); err != nil {
			t.Fatal(err)
		}
		if len(plexes) == 0 {
			t.Fatalf("k=%d: no plexes found", k)
		}
		for _, p := range plexes {
			if d := graph.InducedDiameter(g, p); d > 2 || d < 0 {
				t.Errorf("k=%d: plex %v has induced diameter %d, want <= 2", k, p, d)
			}
		}
	}
}

// Theorem 3.5: enumerating the (q-k)-core reduction of g by hand gives the
// same counts as enumerating g (Run applies the reduction internally, so
// this checks idempotence of the reduction path).
func TestTheorem35CoreReductionPreservesResults(t *testing.T) {
	g := gen.ChungLu(300, 10, 2.3, 32)
	k, q := 2, 8
	want, err := Run(context.Background(), g, NewOptions(k, q))
	if err != nil {
		t.Fatal(err)
	}
	core, origID := graph.KCore(g, q-k)
	res, err := Run(context.Background(), core, NewOptions(k, q))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want.Count {
		t.Errorf("core-reduced count %d != direct count %d", res.Count, want.Count)
	}
	_ = origID
}
