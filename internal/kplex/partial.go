package kplex

// Deadline-bounded partial answers. A Collector buffers per-seed results
// through the OnPlexSeed hook and commits a seed's contribution only when
// its OnSeedDone fires — the same commit discipline the durable-jobs WAL
// uses. Because the engine suppresses OnSeedDone for groups interrupted by
// cancellation (and delivers every OnPlexSeed of a group before its
// OnSeedDone), the collector's totals after a deadline-cancelled run count
// exactly the fully-enumerated seed groups: a true lower bound of the
// exact answer, with a done-set that resumes (via Options.SkipSeeds) to
// precisely the remainder.

import "sync"

// seedTally is one in-flight seed group's buffered contribution.
type seedTally struct {
	count   int64
	maxSize int
	hist    map[int]int64
}

// Collector accumulates committed per-seed results. Install wires it into
// an Options value (chaining any hooks already present); all accessors are
// safe to call after the run returns, or concurrently with it.
type Collector struct {
	mu      sync.Mutex
	pending map[int]*seedTally
	done    *SeedSet
	count   int64
	maxSize int
	hist    map[int]int64
	stats   Stats
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{
		pending: make(map[int]*seedTally),
		done:    NewSeedSet(),
		hist:    make(map[int]int64),
	}
}

// Install chains the collector's buffering into o's OnPlexSeed and
// OnSeedDone hooks, preserving any hooks already set (they run after the
// collector records the event).
func (c *Collector) Install(o *Options) {
	prevPlex := o.OnPlexSeed
	o.OnPlexSeed = func(seed int, plex []int) {
		c.onPlex(seed, len(plex))
		if prevPlex != nil {
			prevPlex(seed, plex)
		}
	}
	prevDone := o.OnSeedDone
	o.OnSeedDone = func(seed int, partial Stats) {
		c.onSeedDone(seed, partial)
		if prevDone != nil {
			prevDone(seed, partial)
		}
	}
}

func (c *Collector) onPlex(seed, size int) {
	c.mu.Lock()
	t := c.pending[seed]
	if t == nil {
		t = &seedTally{hist: make(map[int]int64)}
		c.pending[seed] = t
	}
	t.count++
	t.hist[size]++
	if size > t.maxSize {
		t.maxSize = size
	}
	c.mu.Unlock()
}

func (c *Collector) onSeedDone(seed int, partial Stats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done.Contains(seed) {
		return
	}
	c.done.Add(seed)
	c.stats.Add(partial)
	t := c.pending[seed]
	if t == nil {
		return // seed group finished empty
	}
	delete(c.pending, seed)
	c.count += t.count
	for size, n := range t.hist {
		c.hist[size] += n
	}
	if t.maxSize > c.maxSize {
		c.maxSize = t.maxSize
	}
}

// Count is the number of plexes in committed (fully enumerated) seed
// groups — a lower bound of the exact count while the run is unfinished.
func (c *Collector) Count() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// MaxSize is the largest committed plex (0 when none).
func (c *Collector) MaxSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxSize
}

// Histogram returns a copy of the committed size histogram.
func (c *Collector) Histogram() map[int]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := make(map[int]int64, len(c.hist))
	for k, v := range c.hist {
		h[k] = v
	}
	return h
}

// Stats returns the accumulated engine counters of committed seed groups.
func (c *Collector) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// SeedsDone is the number of committed seed groups.
func (c *Collector) SeedsDone() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done.Len()
}

// DoneSeeds returns a copy of the committed seed set — exactly the seeds a
// resumed run should skip.
func (c *Collector) DoneSeeds() *SeedSet {
	c.mu.Lock()
	defer c.mu.Unlock()
	return NewSeedSet(c.done.Seeds()...)
}
