package kplex

// Regression tests for the dead-on-arrival context contract on the entry
// points added after the original Run fix: a context cancelled before the
// call must return ctx.Err() without executing any prefix of the search —
// no seed built, no branch taken, no result delivered. The observable bar
// is Stats.Seeds == 0 and an OnPlex hook that never fires; the asynchronous
// watcher alone used to let an arbitrary prefix run before the first poll.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/gen"
)

func preCancelled() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestRunPreparedPreCancelled(t *testing.T) {
	g := gen.GNP(300, 0.25, 9)
	opts := NewOptions(3, 6)
	p, err := Prepare(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	opts.OnPlex = func([]int) { fired.Add(1) }
	res, err := RunPrepared(preCancelled(), p, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Count != 0 || res.Stats.Seeds != 0 || res.Stats.Branches != 0 {
		t.Errorf("pre-cancelled RunPrepared did work: %+v", res.Stats)
	}
	if fired.Load() != 0 {
		t.Errorf("OnPlex fired %d times on a dead context", fired.Load())
	}
}

func TestRunStreamPreparedPreCancelled(t *testing.T) {
	g := gen.GNP(300, 0.25, 9)
	opts := NewOptions(3, 6)
	p, err := Prepare(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	h, err := RunStreamPrepared(preCancelled(), p, opts)
	if err != nil {
		t.Fatal(err) // the handle contract: errors arrive via Wait
	}
	n := 0
	for range h.C() {
		n++
	}
	res, err := h.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v, want context.Canceled", err)
	}
	if n != 0 {
		t.Errorf("pre-cancelled stream delivered %d plexes", n)
	}
	if res.Stats.Seeds != 0 || res.Stats.Branches != 0 {
		t.Errorf("pre-cancelled stream did work: %+v", res.Stats)
	}
}

func TestRunBatchPreCancelled(t *testing.T) {
	g := gen.GNP(200, 0.2, 11)
	var fired atomic.Int64
	mk := func(q int) BatchQuery {
		o := NewOptions(2, q)
		o.OnPlex = func([]int) { fired.Add(1) }
		return BatchQuery{Opts: o, Mode: BatchCount}
	}
	res, err := RunBatch(preCancelled(), g, []BatchQuery{mk(6), mk(8)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("pre-cancelled batch returned results: %v", res)
	}
	if fired.Load() != 0 {
		t.Errorf("OnPlex fired %d times on a dead context", fired.Load())
	}
}

// TestRunBatchCancelledBetweenGroups pins the mid-batch gap: a context that
// dies while group 1 runs must stop the batch before group 2's prologue is
// paid (runGroup used to call Prepare before its first cancellation check).
func TestRunBatchCancelledBetweenGroups(t *testing.T) {
	g := gen.GNP(200, 0.2, 11)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Two groups: k=2 and k=3 cannot share a walk. Cancel as soon as the
	// first group's results land.
	queries := []BatchQuery{
		{Opts: NewOptions(2, 6), Mode: BatchCount},
		{Opts: NewOptions(3, 7), Mode: BatchCount},
	}
	var prepared atomic.Int64
	br := &BatchRunner{
		Prepare: func(cell Options) (*Prepared, error) {
			prepared.Add(1)
			return Prepare(g, cell)
		},
		OnResult: func(i int, r *BatchResult) { cancel() },
	}
	_, err := br.Run(ctx, g, queries)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := prepared.Load(); n != 1 {
		t.Errorf("cancelled batch prepared %d groups, want 1 (second group's prologue must not start)", n)
	}
}
