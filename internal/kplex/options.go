// Package kplex implements the paper's branch-and-bound algorithm for
// enumerating all maximal k-plexes with at least q vertices: search-space
// partitioning into seed-subgraph sub-tasks (Algorithm 2), the pivot-based
// Branch procedure (Algorithm 3), the upper bounds of Theorems 5.3/5.5/5.7,
// the vertex-pair pruning rules of Theorems 5.13-5.15, the Ours_P branching
// variant (Eq 4-6), and the stage-based parallel engine with timeout task
// splitting (Section 6).
package kplex

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// UpperBoundStyle selects how the include-branch upper bound (Algorithm 3
// line 17) is computed. The ablation in the paper's Table 5 compares these.
type UpperBoundStyle int

const (
	// UBNone disables upper-bound pruning entirely ("Ours\ub").
	UBNone UpperBoundStyle = iota
	// UBOurs is the paper's bound: Eq (3), the min of the support bound
	// (Theorem 5.5 / Algorithm 4) and the degree bound (Theorem 5.3).
	UBOurs
	// UBSortFP is the FP-style bound ("Ours\ub+fp"): the same support
	// accounting but over candidates sorted by non-neighbour count, costing
	// an O(|C| log |C|) sort per recursion as FP's bound does.
	UBSortFP
	// UBColor is the graph-coloring bound of the Maplex line of work
	// reviewed in Section 2 ("Ours\ub+color"): greedily color G[C] and
	// charge at most k vertices per color class. An extension beyond the
	// paper's own bound, provided for the ablation harness.
	UBColor
)

func (s UpperBoundStyle) String() string {
	switch s {
	case UBNone:
		return "none"
	case UBOurs:
		return "ours"
	case UBSortFP:
		return "fp-sort"
	case UBColor:
		return "color"
	default:
		return fmt.Sprintf("UpperBoundStyle(%d)", int(s))
	}
}

// BranchingStyle selects what happens when the pivot of Algorithm 3 lines
// 7-10 lands in P.
type BranchingStyle int

const (
	// BranchRepick re-picks a pivot from the C non-neighbours of the P
	// pivot (Algorithm 3 lines 15-16); this is the paper's default "Ours".
	BranchRepick BranchingStyle = iota
	// BranchFaPlexen applies the FaPlexen multi-way branching of Eq (4)-(6)
	// instead; this is the "Ours_P" variant (and what ListPlex uses).
	BranchFaPlexen
)

func (s BranchingStyle) String() string {
	switch s {
	case BranchRepick:
		return "repick"
	case BranchFaPlexen:
		return "faplexen"
	default:
		return fmt.Sprintf("BranchingStyle(%d)", int(s))
	}
}

// PartitionStyle selects how each seed's search space is split into tasks.
type PartitionStyle int

const (
	// PartitionSubtasks is the paper's scheme: one task per subset
	// S ⊆ N²(v_i) with |S| ≤ k-1, candidates restricted to N(v_i). This is
	// what gives the O(n r1^k r2 γ_k^D) complexity.
	PartitionSubtasks PartitionStyle = iota
	// PartitionWhole2Hop is the FP-style scheme: a single task per seed
	// whose candidate set is the entire later 2-hop neighbourhood, giving
	// the looser O(γ_k^|C|) branch count the paper improves on.
	PartitionWhole2Hop
)

func (s PartitionStyle) String() string {
	switch s {
	case PartitionSubtasks:
		return "subtasks"
	case PartitionWhole2Hop:
		return "whole-2hop"
	default:
		return fmt.Sprintf("PartitionStyle(%d)", int(s))
	}
}

// SchedulerStyle selects how parallel workers obtain work (Section 6).
type SchedulerStyle int

const (
	// SchedulerStages is the paper's scheme: stages of M seeds, one per
	// worker, each worker draining its own LIFO queue and stealing FIFO
	// from others. Maximises cache locality on the shared seed subgraphs
	// while stage barriers bound memory.
	SchedulerStages SchedulerStyle = iota
	// SchedulerGlobalQueue is the strawman ablation: one shared task queue
	// that every worker pushes to and pops from. Load balancing is perfect
	// but tasks from many different seed subgraphs interleave on each core,
	// defeating the cache-locality argument of Section 6 and contending on
	// a single lock.
	SchedulerGlobalQueue
	// SchedulerSteal is the barrier-free work-stealing scheme: per-worker
	// bounded deques with LIFO local pops and batched FIFO steal-half from
	// random victims, seeds claimed from a shared counter on demand. It
	// keeps the stage scheme's cache locality (workers run their own seed's
	// tasks back-to-front) while removing the stage barrier that leaves
	// cores idle on straggler-heavy inputs. See steal.go.
	SchedulerSteal
)

func (s SchedulerStyle) String() string {
	switch s {
	case SchedulerStages:
		return "stages"
	case SchedulerGlobalQueue:
		return "global-queue"
	case SchedulerSteal:
		return "steal"
	default:
		return fmt.Sprintf("SchedulerStyle(%d)", int(s))
	}
}

// Options configures one enumeration run. The zero value is not valid; use
// NewOptions or fill K and Q explicitly. The ablation variants of the
// paper's Tables 5-6 are expressed by toggling UpperBound, UseSubtaskBound
// (R1) and UsePairPruning (R2).
type Options struct {
	// K is the k-plex relaxation parameter (k >= 1).
	K int
	// Q is the minimum size of reported k-plexes; must satisfy Q >= 2K-1 so
	// that the diameter-2 seed decomposition (Theorem 3.3) is sound.
	Q int

	// UpperBound selects the include-branch bound (Algorithm 3 line 17).
	UpperBound UpperBoundStyle
	// UseSubtaskBound enables rule R1: pruning initial sub-tasks whose
	// Theorem 5.7 bound is below Q.
	UseSubtaskBound bool
	// UsePairPruning enables rule R2: the vertex-pair compatibility matrix
	// of Theorems 5.13-5.15.
	UsePairPruning bool
	// Branching selects Ours (repick) vs Ours_P (FaPlexen Eq 4-6).
	Branching BranchingStyle
	// Partition selects the task decomposition (see PartitionStyle).
	Partition PartitionStyle
	// SerializeSeedBuild is a deprecated no-op, kept so existing presets
	// keep compiling. It used to force seed-subgraph construction through a
	// global lock as a workaround for allocation pressure in parallel runs
	// (reproducing the bottleneck of FP's parallel implementation that the
	// paper's Table 4 discussion calls out); the seed pipeline now builds
	// from per-worker scratch and pooled storage without heap allocation,
	// so there is no contention left to serialise away.
	SerializeSeedBuild bool

	// Threads is the number of workers; values < 1 mean 1 (sequential).
	Threads int
	// Scheduler selects the parallel work-distribution scheme; the zero
	// value is the paper's stage-based scheme (see SchedulerStyle).
	Scheduler SchedulerStyle
	// TaskTimeout is τ_time from Section 6: once a task has run this long,
	// further branches are materialised as new tasks for other workers to
	// steal. Zero disables splitting (tasks run to completion), which is
	// also the sequential default.
	TaskTimeout time.Duration
	// StealQueueBound caps each worker's deque under SchedulerSteal; when a
	// deque is full the owner runs overflow tasks inline, bounding queued
	// memory at Threads × StealQueueBound tasks. Zero means the default
	// (4096); it has no effect under the other schedulers.
	StealQueueBound int

	// DenseCrossover is the N¹-size ceiling under which seed-graph
	// construction takes the dense bit-parallel path: the Corollary 5.2
	// peel runs over a row-major adjacency matrix with word-parallel
	// AND/popcount kernels instead of per-vertex sorted merges. Above the
	// ceiling the merge-based path is used (the matrix is Θ(|N¹|²) bits, so
	// huge hub seeds would pay more to build it than it saves). Zero means
	// the built-in default (see DefaultDenseCrossover); negative disables
	// the dense path entirely. Execution-only: both paths reach the same
	// fixed point, so this knob never changes the result set and does not
	// participate in ResultKey.
	DenseCrossover int

	// StreamBuffer is the result-channel capacity of the streaming path
	// (RunStream / EnumerateStream): once this many plexes are queued and
	// unread, enumeration workers block until the consumer catches up.
	// Zero means DefaultStreamBuffer; it has no effect on Run.
	StreamBuffer int

	// UseCTCP enables the kPlexS-style core-truss co-pruning preprocessing
	// (see ReduceCTCP). Off by default — the paper's algorithm does not
	// use it; it is provided as the natural extension from the related
	// work and never changes the result set.
	UseCTCP bool

	// FirstOnly stops the run as soon as one maximal k-plex has been
	// reported. Used for existence queries (see FindMaximumKPlex); the
	// Result count may be slightly above 1 in parallel runs because
	// concurrent workers can emit before observing the stop flag.
	FirstOnly bool

	// OnPlex, when non-nil, receives every maximal k-plex as a sorted slice
	// of vertex ids of the input graph. It may be called concurrently from
	// multiple workers and must not retain the slice.
	OnPlex func(plex []int)

	// OnPlexSeed is the seed-attributed variant of OnPlex: it additionally
	// carries the id of the seed group (in [0, SeedSpace)) whose subproblem
	// produced the plex, so callers checkpointing at seed granularity can
	// buffer contributions per seed and commit them only when OnSeedDone
	// confirms the group is complete. Both callbacks fire when both are set.
	// Same contract as OnPlex: may be called concurrently, must not retain
	// the slice.
	OnPlexSeed func(seed int, plex []int)

	// OnSeedDone, when non-nil, fires exactly once per seed group the run
	// fully completes (including groups pruned to nothing, which report a
	// zero Stats), with the search counters accrued by that group. Every
	// OnPlexSeed delivery of the group happens before its OnSeedDone. Groups
	// interrupted by cancellation never report, which is what makes the
	// callback a safe commit point for crash recovery. Calls may arrive
	// concurrently from different workers for different seeds. Incompatible
	// with FirstOnly (an early stop abandons groups mid-flight). Enabling
	// the hook adds per-task bookkeeping; see BENCH_jobs.json for the
	// measured overhead.
	OnSeedDone func(seed int, partial Stats)

	// earlyStop, when non-nil, is an additional engine stop flag the caller
	// owns: storing true halts the run at the next cancellation check,
	// without the goroutine hop a context cancellation takes to reach the
	// engine's internal flag. Package-internal — the batch layer sets it
	// from its top-k saturation hook so the shared walk stops
	// deterministically (a sequential walk never starts another seed after
	// saturating).
	earlyStop *atomic.Bool

	// SkipSeeds names seed groups to skip entirely, without reporting them
	// to OnSeedDone: the resume path for a run whose listed seeds were
	// already enumerated and persisted. Seed ids refer to the deterministic
	// reduced decomposition (see SeedSpace); entries outside [0, SeedSpace)
	// fail the run. A non-empty skip set changes the reported result set,
	// and ResultKey reflects that.
	SkipSeeds *SeedSet

	// PhaseTimers enables per-phase wall-clock accounting: with it set,
	// Stats.SeedBuildNS and Stats.BranchNS report where enumeration time
	// went (seed-subgraph construction vs. branch-and-bound search). An
	// execution knob like Threads: it never changes the result set and
	// does not participate in ResultKey. Off by default so the hot path
	// pays nothing — the cost when enabled is two monotonic clock reads
	// per seed build and one per task, with no allocation.
	PhaseTimers bool
}

// DefaultDenseCrossover is the N¹-size ceiling for the dense bit-parallel
// seed build when Options.DenseCrossover is zero. Chosen from the
// BENCH_kernels grid: below it the Θ(|N¹|²/64)-word matrix peel beats the
// merge path comfortably; above it matrix construction starts to dominate
// on sparse hubs.
const DefaultDenseCrossover = 256

// denseCrossover resolves the knob: the effective ceiling, with 0 meaning
// disabled (so `len(n1) <= o.denseCrossover()` reads naturally).
func (o *Options) denseCrossover() int {
	switch {
	case o.DenseCrossover < 0:
		return 0
	case o.DenseCrossover == 0:
		return DefaultDenseCrossover
	}
	return o.DenseCrossover
}

// NewOptions returns the paper's default configuration ("Ours"): full upper
// bounding, R1+R2 pruning, repick branching, sequential.
func NewOptions(k, q int) Options {
	return Options{
		K:               k,
		Q:               q,
		UpperBound:      UBOurs,
		UseSubtaskBound: true,
		UsePairPruning:  true,
		Branching:       BranchRepick,
		Threads:         1,
	}
}

// BasicOptions returns the "Basic" ablation variant of Table 6: the full
// framework with upper bounding but without R1 and R2.
func BasicOptions(k, q int) Options {
	o := NewOptions(k, q)
	o.UseSubtaskBound = false
	o.UsePairPruning = false
	return o
}

// Validate reports whether the options describe a well-formed run.
func (o *Options) Validate() error {
	if o.K < 1 {
		return fmt.Errorf("kplex: K must be >= 1, got %d", o.K)
	}
	if o.Q < 2*o.K-1 {
		return fmt.Errorf("kplex: Q must be >= 2K-1 = %d for the diameter-2 decomposition, got %d", 2*o.K-1, o.Q)
	}
	if o.TaskTimeout < 0 {
		return errors.New("kplex: TaskTimeout must be >= 0")
	}
	switch o.Scheduler {
	case SchedulerStages, SchedulerGlobalQueue, SchedulerSteal:
	default:
		return fmt.Errorf("kplex: unknown Scheduler %d", int(o.Scheduler))
	}
	if o.StealQueueBound < 0 {
		return errors.New("kplex: StealQueueBound must be >= 0")
	}
	if o.StreamBuffer < 0 {
		return errors.New("kplex: StreamBuffer must be >= 0")
	}
	if o.OnSeedDone != nil && o.FirstOnly {
		return errors.New("kplex: OnSeedDone is incompatible with FirstOnly: an early stop abandons seed groups mid-flight, so completion callbacks would be meaningless")
	}
	if o.OnPlexSeed != nil && o.FirstOnly {
		return errors.New("kplex: OnPlexSeed is incompatible with FirstOnly: use OnPlex for existence queries")
	}
	if o.SkipSeeds.Len() > 0 && o.OnSeedDone == nil && o.OnPlex == nil && o.OnPlexSeed == nil {
		// A silent partial enumeration with no way to observe which part ran
		// is always a caller bug (typically a resume path that forgot to
		// re-install its hooks).
		return errors.New("kplex: SkipSeeds without OnSeedDone, OnPlex or OnPlexSeed would silently drop results; install a hook or clear the skip set")
	}
	return nil
}

// ValidateBatchMember reports whether the options may serve as one member
// of a shared-traversal batch (see RunBatch). On top of Validate, it
// rejects every per-query knob whose semantics are tied to owning the
// traversal: inside a batch, one walk at the group's loosest (k, q) cell
// serves every member, so a member-level FirstOnly would stop the walk for
// everyone, a member-level SkipSeeds names seed ids of the member's own
// (k, q) decomposition — not the group's — and the seed hooks
// (OnSeedDone / OnPlexSeed) would report the group cell's seed space,
// corrupting any member-level checkpoint built from them. OnPlex remains
// allowed: it receives exactly the member's own result set.
func (o *Options) ValidateBatchMember() error {
	if err := o.Validate(); err != nil {
		return err
	}
	switch {
	case o.FirstOnly:
		return errors.New("kplex: FirstOnly is not allowed on a batch member: the shared traversal serves every member, so one member's early stop would truncate the others' result sets; issue the existence query on its own")
	case o.SkipSeeds.Len() > 0:
		return errors.New("kplex: SkipSeeds is not allowed on a batch member: seed ids are defined by the member's own (K, Q, UseCTCP) decomposition, but the batch walks the group's loosest cell, so the skip set would silently skip the wrong subproblems; resume with a dedicated run")
	case o.OnSeedDone != nil:
		return errors.New("kplex: OnSeedDone is not allowed on a batch member: completion callbacks would carry seed ids of the shared group cell, not the member's own decomposition; checkpoint batches through the jobs layer instead")
	case o.OnPlexSeed != nil:
		return errors.New("kplex: OnPlexSeed is not allowed on a batch member: seed attribution refers to the shared group cell, not the member's own decomposition; use OnPlex for per-member delivery")
	}
	return nil
}

// ResultKey returns the canonical identity of the run's *result set*: the
// parameters that determine which maximal k-plexes are reported, with
// everything that only changes how the search is executed (bound style,
// pruning rules, branching, partition, scheduler, threads, timeouts,
// buffers) normalized away — the differential tests in this package pin
// down that those knobs never change the result set. Result caches key on
// (graph digest, ResultKey); two queries that differ only in execution
// strategy share one cache entry.
func (o *Options) ResultKey() string {
	key := fmt.Sprintf("k=%d,q=%d", o.K, o.Q)
	if o.FirstOnly {
		// FirstOnly runs report an arbitrary nonempty prefix of the result
		// set, so they are never interchangeable with full enumerations.
		key += ",first-only"
	}
	if o.SkipSeeds.Len() > 0 {
		// A resumed run reports only the complement of the skip set; it must
		// never share a cache entry with a full enumeration.
		key += ",skip=" + o.SkipSeeds.digest()
	}
	return key
}

// Stats are cumulative search counters, useful for the ablation analysis and
// for tests asserting that pruning rules actually fire.
type Stats struct {
	Seeds         int64 // task groups (seed subgraphs) built
	Tasks         int64 // (v_i, S) sub-tasks started
	TasksPrunedR1 int64 // sub-tasks pruned by Theorem 5.7 before starting
	Branches      int64 // Branch invocations (Algorithm 3 recursion bodies)
	UBPruned      int64 // include-branches cut by the Eq (3) bound
	Collapses     int64 // subtrees closed by the P∪C k-plex shortcut (lines 11-14)
	Repicks       int64 // pivots re-picked from C after landing in P (lines 15-16)
	Splits        int64 // tasks materialised by the timeout mechanism
	Steals        int64 // tasks transferred by steal-half batches (SchedulerSteal)
	StealMisses   int64 // steal rounds that found every deque empty while tasks were in flight (SchedulerSteal)
	Emitted       int64 // maximal k-plexes reported
	MaxPlexSize   int64 // largest reported k-plex (0 when none)
	DenseBuilds   int64 // seed groups whose peel took the dense bit-matrix path
	SeedBuildNS   int64 // ns spent building seed subgraphs (Options.PhaseTimers only; else 0)
	BranchNS      int64 // ns spent in branch-and-bound tasks (Options.PhaseTimers only; else 0)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Seeds += other.Seeds
	s.Tasks += other.Tasks
	s.TasksPrunedR1 += other.TasksPrunedR1
	s.Branches += other.Branches
	s.UBPruned += other.UBPruned
	s.Collapses += other.Collapses
	s.Repicks += other.Repicks
	s.Splits += other.Splits
	s.Steals += other.Steals
	s.StealMisses += other.StealMisses
	s.Emitted += other.Emitted
	s.DenseBuilds += other.DenseBuilds
	s.SeedBuildNS += other.SeedBuildNS
	s.BranchNS += other.BranchNS
	if other.MaxPlexSize > s.MaxPlexSize {
		s.MaxPlexSize = other.MaxPlexSize
	}
}

// Result summarises one enumeration run.
type Result struct {
	// Count is the number of maximal k-plexes with at least Q vertices.
	Count int64
	// Stats holds the search counters accumulated across all workers.
	Stats Stats
	// Elapsed is the wall-clock enumeration time (excluding graph loading,
	// matching the paper's measurement convention; core decomposition and
	// subgraph construction are included).
	Elapsed time.Duration
}
