package kplex

import (
	"context"
	"testing"

	"repro/internal/graph"
)

// mustRun runs the engine and fails the test on error. Lives in the
// internal test package so white-box tests can share it.
func mustRun(t *testing.T, g *graph.Graph, opts Options) Result {
	t.Helper()
	res, err := Run(context.Background(), g, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}
