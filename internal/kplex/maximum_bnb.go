package kplex

// Incumbent-driven maximum k-plex search, the dedicated branch-and-bound
// formulation of the BS/kPlexS line of work (Section 2 of the paper).
// Unlike FindMaximumKPlex — which answers a sequence of independent
// existence queries — this runs one pass over the seed decomposition with a
// global incumbent: every seed subgraph is built against the threshold
// q = |best|+1 current at that moment, so improvements found early shrink
// every later seed graph, and inside the search the Eq (3) upper bound
// prunes against the incumbent instead of a fixed q.

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// GreedyKPlex returns a (usually good) k-plex found greedily: vertices are
// scanned in reverse degeneracy order (densest first) and added whenever
// the set stays a k-plex. Used as the warm-start incumbent of
// FindMaximumKPlexBnB; also a useful standalone heuristic.
func GreedyKPlex(g *graph.Graph, k int) []int {
	if g.N() == 0 || k < 1 {
		return nil
	}
	cd := graph.Cores(g)
	var P []int
	degP := make(map[int]int) // degree into P for members and frontier
	for i := g.N() - 1; i >= 0; i-- {
		v := int(cd.Order[i])
		// P ∪ {v} is a k-plex iff v misses at most k-1 members and no
		// member's budget overflows.
		dv := 0
		for _, u := range g.Neighbors(v) {
			if _, in := degP[int(u)]; in {
				dv++
			}
		}
		if len(P)+1-dv > k {
			continue
		}
		ok := true
		for _, u := range P {
			du := degP[u]
			if !g.HasEdge(u, v) && len(P)+1-du > k {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, u := range P {
			if g.HasEdge(u, v) {
				degP[u]++
			}
		}
		degP[v] = dv
		P = append(P, v)
	}
	return P
}

// maxSearch carries the incumbent state of one FindMaximumKPlexBnB run.
type maxSearch struct {
	g       *graph.Graph // relabelled working graph
	k       int
	toInput []int32
	best    []int // input-space ids of the incumbent (nil if none)

	// Scratch, re-sized per seed graph.
	scratchN int
	degP     []int
	degPC    []int
	sat      *bitset.Set
	pc       *bitset.Set
	bs       boundScratch

	nodes int64 // search-tree nodes, for tests and diagnostics
}

// targetQ is the size every surviving branch must be able to reach.
func (ms *maxSearch) targetQ() int {
	if t := len(ms.best) + 1; t > 2*ms.k-1 {
		return t
	}
	return 2*ms.k - 1
}

// FindMaximumKPlexBnB returns a maximum-cardinality k-plex of g among those
// with at least 2k-1 vertices (nil when none exists), using a single
// incumbent-pruned branch-and-bound pass. It computes the same answer size
// as FindMaximumKPlex; the tie choice may differ.
func FindMaximumKPlexBnB(ctx context.Context, g *graph.Graph, k int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("kplex: k must be >= 1, got %d", k)
	}
	ms := &maxSearch{k: k}
	if warm := GreedyKPlex(g, k); len(warm) >= 2*k-1 {
		ms.best = warm
	}

	// Reduce once against the weakest threshold this run will ever use;
	// later improvements tighten per-seed construction instead.
	prep := graph.Prepare(g, ms.targetQ()-k)
	relab := prep.G()
	ms.g = relab
	ms.toInput = prep.ToInputIDs()

	// One scratch and one storage serve every seed: the seed graph never
	// outlives its loop iteration here, so the storage is recycled without
	// any refcounting.
	sc := newSeedScratch(relab.N())
	st := &seedStorage{}
	for s := 0; s < relab.N(); s++ {
		if ctx != nil && ctx.Err() != nil {
			return ms.best, ctx.Err()
		}
		opts := NewOptions(k, ms.targetQ())
		sg := sc.build(relab, prep, s, &opts, st, nil)
		if sg == nil {
			continue
		}
		ms.prepare(sg)
		ms.searchSeed(sg)
	}
	return ms.best, nil
}

func (ms *maxSearch) prepare(sg *seedGraph) {
	if ms.scratchN == sg.nAll && ms.sat != nil {
		return
	}
	n := sg.nAll
	ms.scratchN = n
	ms.degP = make([]int, n)
	ms.degPC = make([]int, n)
	ms.sat = bitset.New(n)
	ms.pc = bitset.New(n)
	ms.bs = boundScratch{}
	ms.bs.resize(n)
}

// record stores P (local ids of sg) as the new incumbent if it is larger.
func (ms *maxSearch) record(sg *seedGraph, P *bitset.Set, sizeP int) {
	if sizeP <= len(ms.best) || sizeP < 2*ms.k-1 {
		return
	}
	out := make([]int, 0, sizeP)
	P.ForEach(func(v int) {
		out = append(out, int(ms.toInput[sg.orig[v]]))
	})
	ms.best = out
}

// searchSeed mirrors the engine's generateTasks: the S = ∅ task plus the
// set-enumeration of S ⊆ N²(v_i) with |S| ≤ k-1, each branch pruned against
// the incumbent-driven targetQ.
func (ms *maxSearch) searchSeed(sg *seedGraph) {
	k := ms.k
	P0 := bitset.New(sg.nAll)
	P0.Add(0)
	ms.branch(sg, P0, sg.nbrSeed.Clone(), 1)

	if k < 2 || len(sg.hop2) == 0 {
		return
	}
	var sBuf []int
	var rec func(startIdx int, CS, allowed *bitset.Set)
	rec = func(startIdx int, CS, allowed *bitset.Set) {
		for idx := startIdx; idx < len(sg.hop2); idx++ {
			u := sg.hop2[idx]
			if !allowed.Contains(u) {
				continue
			}
			sBuf = append(sBuf, u)
			if !validSeedSet(sg, sBuf, k) {
				sBuf = sBuf[:len(sBuf)-1]
				continue
			}
			CSu := CS.Clone()
			allowedU := allowed.Clone()
			if sg.pair != nil {
				CSu.And(sg.pair[u])
				allowedU.And(sg.pair[u])
			}
			P := bitset.New(sg.nAll)
			P.Add(0)
			for _, v := range sBuf {
				P.Add(v)
			}
			sizeP := 1 + len(sBuf)

			// R1 against the current incumbent target.
			degP := ms.degP
			P.ForEach(func(v int) { degP[v] = sg.adj[v].IntersectionCount(P) })
			CSu.ForEach(func(v int) { degP[v] = sg.adj[v].IntersectionCount(P) })
			if ms.bs.subtaskBound(sg, k, sizeP, P, CSu, degP) >= ms.targetQ() {
				ms.branch(sg, P, CSu.Clone(), sizeP)
			}
			if len(sBuf) < k-1 {
				rec(idx+1, CSu, allowedU)
			}
			sBuf = sBuf[:len(sBuf)-1]
		}
	}
	rec(0, sg.nbrSeed.Clone(), sg.hop2Set.Clone())
}

// branch is the incumbent-pruned Algorithm 3 without an exclusive set:
// maximum search does not need maximality certificates, only sizes.
func (ms *maxSearch) branch(sg *seedGraph, P, C *bitset.Set, sizeP int) {
	k := ms.k
	adj := sg.adj
	pw := sg.pWords

	for {
		ms.nodes++

		// Refine C; also validate P (multi-vertex seeds can be invalid).
		ms.sat.Clear()
		validP := true
		P.ForEach(func(u int) {
			d := adj[u].IntersectionCountPrefix(P, pw)
			ms.degP[u] = d
			switch {
			case d < sizeP-k:
				validP = false
			case d == sizeP-k:
				ms.sat.Add(u)
			}
		})
		if !validP {
			return
		}
		minNeed := sizeP + 1 - k
		C.ForEach(func(v int) {
			d := adj[v].IntersectionCountPrefix(P, pw)
			if d < minNeed || !ms.sat.IsSubsetPrefix(adj[v], pw) {
				C.Remove(v)
				return
			}
			ms.degP[v] = d
		})

		sizeC := C.Count()
		// The whole branch cannot beat the incumbent: prune.
		if sizeP+sizeC < ms.targetQ() {
			// P itself may still be a record (only when C dried up
			// naturally, which record() re-checks against 2k-1).
			ms.record(sg, P, sizeP)
			return
		}
		if sizeC == 0 {
			ms.record(sg, P, sizeP)
			return
		}

		// Pivot selection (minimum degree in G[P ∪ C]).
		ms.pc.Copy(P)
		ms.pc.Or(C)
		sizePC := sizeP + sizeC
		minDeg := sizePC
		ms.pc.ForEach(func(v int) {
			d := adj[v].IntersectionCountPrefix(ms.pc, pw)
			ms.degPC[v] = d
			if d < minDeg {
				minDeg = d
			}
		})
		if minDeg >= sizePC-k {
			// P ∪ C collapses into one k-plex.
			ms.record(sg, ms.pc, sizePC)
			return
		}
		vp0, vp0InP, bestNon := -1, false, -1
		ms.pc.ForEach(func(v int) {
			if ms.degPC[v] != minDeg {
				return
			}
			inP := P.Contains(v)
			non := sizeP - ms.degP[v]
			if vp0 == -1 || non > bestNon || (non == bestNon && inP && !vp0InP) {
				vp0, vp0InP, bestNon = v, inP, non
			}
		})
		vp := vp0
		if vp0InP {
			vp = ms.repick(sg, C, sizeP, vp0)
		}

		// Include branch, pruned against the incumbent.
		ub := ms.bs.supportBound(sg, k, sizeP, P, C, ms.degP, vp, false)
		if d := ms.degPC[vp0] + k; d < ub {
			ub = d
		}
		if ub >= ms.targetQ() {
			newP := P.Clone()
			newP.Add(vp)
			newC := C.Clone()
			newC.Remove(vp)
			if sg.pair != nil && vp < sg.nv {
				newC.And(sg.pair[vp])
			}
			ms.branch(sg, newP, newC, sizeP+1)
		}

		// Exclude branch in this frame.
		C.Remove(vp)
	}
}

// repick chooses a C pivot among the non-neighbours of the P-pivot, same
// rules as the enumerator.
func (ms *maxSearch) repick(sg *seedGraph, C *bitset.Set, sizeP, vp0 int) int {
	best, bestDeg, bestNon := -1, 0, -1
	avp := sg.adj[vp0]
	C.ForEach(func(v int) {
		if avp.Contains(v) {
			return
		}
		d := ms.degPC[v]
		non := sizeP - ms.degP[v]
		if best == -1 || d < bestDeg || (d == bestDeg && non > bestNon) {
			best, bestDeg, bestNon = v, d, non
		}
	})
	if best == -1 {
		best = C.Any()
	}
	return best
}
