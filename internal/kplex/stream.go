package kplex

// The streaming result path. Run delivers plexes through the OnPlex
// callback, which forces the caller to either materialise the result set
// ([][]int — unusable at the paper's result-set sizes) or to hand-roll the
// concurrency around a callback invoked from many workers. RunStream
// instead returns a bounded channel fed by all schedulers' workers, with
// two-way cancellation:
//
//   - ctx cancellation (a dropped HTTP client, a deadline) stops the
//     engine through the usual stop-flag path AND unblocks any worker
//     parked in a channel send, so a run on an abandoned stream never
//     leaks goroutines;
//   - conversely, the engine finishing (or failing) closes the channel,
//     which is the consumer's end-of-stream signal.
//
// The channel's bound (Options.StreamBuffer) is the backpressure knob: a
// slow consumer eventually blocks the enumeration workers rather than
// forcing the engine to buffer results, keeping memory flat no matter how
// large the result set is.

import (
	"context"

	"repro/internal/graph"
	"repro/internal/sink"
)

// DefaultStreamBuffer is the channel capacity used when
// Options.StreamBuffer is zero. Large enough that the enumeration workers
// rarely block on a consumer that is merely momentarily busy, small enough
// that an abandoned stream pins only a few KiB of plexes.
const DefaultStreamBuffer = 256

// StreamHandle is a live streaming enumeration run.
type StreamHandle struct {
	c    <-chan []int
	res  *Result
	st   *sink.Stream
	done chan struct{} // closed once Run has returned and res/err are set
	err  error
}

// C returns the result channel. It yields each maximal k-plex as a sorted
// slice of input-graph vertex ids (one consumer owns each slice; it is not
// reused) and is closed when the run completes, fails, or is cancelled.
func (h *StreamHandle) C() <-chan []int { return h.c }

// Result returns a pointer that is populated with the run's Result before
// the channel closes. Reading it is racy until C has been closed (or Wait
// has returned).
func (h *StreamHandle) Result() *Result { return h.res }

// Wait blocks until the run has fully terminated and returns its Result
// and terminal error (nil for a complete enumeration, ctx.Err() for a
// cancelled one). The caller must be draining C — or have cancelled the
// context — or Wait can deadlock behind a full channel.
func (h *StreamHandle) Wait() (Result, error) {
	<-h.done
	return *h.res, h.err
}

// RunStream starts an enumeration whose results are delivered over a
// bounded channel instead of the OnPlex callback. Validation errors are
// returned synchronously; after that the run proceeds on background
// goroutines under all the same scheduler options as Run (sequential,
// stages, global-queue, steal). Cancelling ctx stops the engine and closes
// the channel promptly even if the consumer has stopped receiving.
//
// opts.OnPlex must be nil: the streaming path owns result delivery.
//
// RunStream is a thin wrapper over Prepare + RunStreamPrepared; callers
// streaming repeatedly over one graph should reuse a Prepared handle.
func RunStream(ctx context.Context, g graph.CSR, opts Options) (*StreamHandle, error) {
	if opts.OnPlex != nil {
		return nil, errStreamOnPlex
	}
	// Prepare validates against the stream's own OnPlex being installed
	// later, so a resumed run's SkipSeeds must not be rejected here. A
	// dead context keeps its contract — a handle whose channel closes
	// immediately with Wait() == ctx.Err() — but must not pay the O(n+m)
	// prologue, so it prepares the empty graph instead (RunPrepared
	// returns ctx.Err() before touching it).
	prepOpts := opts
	prepOpts.SkipSeeds = nil
	var target graph.CSR = g
	if ctx != nil && ctx.Err() != nil {
		target = &graph.Graph{}
	}
	p, err := Prepare(target, prepOpts)
	if err != nil {
		return nil, err
	}
	return RunStreamPrepared(ctx, p, opts)
}

// RunStreamPrepared is RunStream against a Prepared handle: the bounded-
// channel delivery and two-way cancellation of the streaming path without
// re-running the prologue.
func RunStreamPrepared(ctx context.Context, p *Prepared, opts Options) (*StreamHandle, error) {
	if opts.OnPlex != nil {
		return nil, errStreamOnPlex
	}
	buf := opts.StreamBuffer
	if buf <= 0 {
		buf = DefaultStreamBuffer
	}
	if ctx == nil {
		ctx = context.Background()
	}

	st := sink.NewStream(buf)
	runCtx, cancel := context.WithCancel(ctx)
	opts.OnPlex = func(p []int) {
		if !st.Emit(p) {
			// Consumer gone: fold the stream cancellation into the engine's
			// normal context path so every scheduler stops the same way.
			cancel()
		}
	}
	// Validate with the stream's own OnPlex installed, so rules that need a
	// result observer (a resumed run's SkipSeeds) accept the streaming path.
	if err := opts.Validate(); err != nil {
		cancel()
		return nil, err
	}

	h := &StreamHandle{c: st.C(), res: new(Result), st: st, done: make(chan struct{})}

	// Watcher: a cancelled context must unblock workers parked in Emit.
	// It exits when the run goroutine below calls cancel().
	go func() {
		<-runCtx.Done()
		st.Cancel()
	}()

	go func() {
		defer cancel()
		res, err := RunPrepared(runCtx, p, opts)
		*h.res = res
		h.err = err
		st.Close(err) // happens-before the channel close observed by the consumer
		close(h.done)
	}()
	return h, nil
}

// errStreamOnPlex rejects RunStream calls that also set OnPlex; the two
// delivery mechanisms are mutually exclusive.
var errStreamOnPlex = errValidation("kplex: RunStream owns Options.OnPlex; leave it nil")

type errValidation string

func (e errValidation) Error() string { return string(e) }
