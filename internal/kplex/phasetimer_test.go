package kplex_test

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/kplex"
)

// TestPhaseTimers pins the Options.PhaseTimers contract: off (the
// default) the phase counters stay exactly zero — the hot path must not
// pay for them — and on, both phases report non-zero wall time on a
// non-trivial graph while the result set stays byte-identical.
func TestPhaseTimers(t *testing.T) {
	g := gen.ChungLu(400, 12, 2.4, 7)
	base := kplex.NewOptions(2, 5)

	off, err := kplex.Run(context.Background(), g, base)
	if err != nil {
		t.Fatal(err)
	}
	if off.Stats.SeedBuildNS != 0 || off.Stats.BranchNS != 0 {
		t.Fatalf("PhaseTimers off must report zero phase time, got build=%d branch=%d",
			off.Stats.SeedBuildNS, off.Stats.BranchNS)
	}

	timed := base
	timed.PhaseTimers = true
	on, err := kplex.Run(context.Background(), g, timed)
	if err != nil {
		t.Fatal(err)
	}
	if on.Count != off.Count {
		t.Fatalf("PhaseTimers changed the result: %d vs %d plexes", on.Count, off.Count)
	}
	if on.Stats.SeedBuildNS <= 0 || on.Stats.BranchNS <= 0 {
		t.Fatalf("PhaseTimers on: build=%dns branch=%dns, want both > 0",
			on.Stats.SeedBuildNS, on.Stats.BranchNS)
	}
	// Phase time is wall time inside the enumeration: each phase alone
	// must not exceed total elapsed (single-threaded run).
	if elapsed := on.Elapsed.Nanoseconds(); on.Stats.SeedBuildNS > elapsed || on.Stats.BranchNS > elapsed {
		t.Fatalf("phase time exceeds elapsed: build=%d branch=%d elapsed=%d",
			on.Stats.SeedBuildNS, on.Stats.BranchNS, elapsed)
	}

	// The knob is execution-only: it must not fork the result cache.
	if base.ResultKey() != timed.ResultKey() {
		t.Fatalf("PhaseTimers leaked into ResultKey: %q vs %q", base.ResultKey(), timed.ResultKey())
	}
}

// TestPhaseTimersParallel checks the counters accumulate across scheduler
// workers and survive Stats.Add folding.
func TestPhaseTimersParallel(t *testing.T) {
	g := gen.ChungLu(400, 12, 2.4, 7)
	for _, sched := range []kplex.SchedulerStyle{kplex.SchedulerStages, kplex.SchedulerGlobalQueue, kplex.SchedulerSteal} {
		opts := kplex.NewOptions(2, 5)
		opts.Threads = 4
		opts.Scheduler = sched
		opts.TaskTimeout = microseconds(2000)
		opts.PhaseTimers = true
		res, err := kplex.Run(context.Background(), g, opts)
		if err != nil {
			t.Fatalf("%v: %v", sched, err)
		}
		if res.Stats.SeedBuildNS <= 0 || res.Stats.BranchNS <= 0 {
			t.Fatalf("%v: build=%dns branch=%dns, want both > 0", sched, res.Stats.SeedBuildNS, res.Stats.BranchNS)
		}
	}

	var sum kplex.Stats
	sum.Add(kplex.Stats{SeedBuildNS: 3, BranchNS: 5})
	sum.Add(kplex.Stats{SeedBuildNS: 4, BranchNS: 6})
	if sum.SeedBuildNS != 7 || sum.BranchNS != 11 {
		t.Fatalf("Stats.Add dropped phase timers: %+v", sum)
	}
}
