package kplex

// Differential grid pinning the dense bit-parallel seed kernel against the
// merge kernel it replaces under DenseCrossover. Core-style peels are
// confluent — the survivor set is the unique maximal subset meeting the
// threshold — so the two paths must agree exactly: same counts, same
// canonical plex-set digests, same top-k lists, on every corpus graph,
// every (k, q) cell, and every scheduler. A dense-kernel bug that drops or
// duplicates even one plex changes a digest here before it reaches the
// committed golden files.

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/gen"
)

// denseCell is the observable signature of one enumeration run.
type denseCell struct {
	Count   int64
	MaxSize int
	SHA256  string
	TopK    [][]int
}

// runDenseCell enumerates one (graph, k, q, scheduler, crossover) cell and
// returns its signature plus the run's stats.
func runDenseCell(t *testing.T, g *gen.CorpusGraph, k, q int, sched SchedulerStyle, threads, crossover int) (denseCell, Stats) {
	t.Helper()
	opts := NewOptions(k, q)
	opts.Threads = threads
	opts.Scheduler = sched
	opts.DenseCrossover = crossover
	var mu sync.Mutex
	var plexes [][]int
	opts.OnPlex = func(p []int) {
		cp := append([]int(nil), p...)
		mu.Lock()
		plexes = append(plexes, cp)
		mu.Unlock()
	}
	res, err := Run(context.Background(), g.Build(), opts)
	if err != nil {
		t.Fatalf("%s k=%d q=%d sched=%v crossover=%d: %v", g.Name, k, q, sched, crossover, err)
	}
	var h plexHeap
	for _, p := range plexes {
		h.topkOffer(p, 5)
	}
	return denseCell{
		Count:   res.Count,
		MaxSize: int(res.Stats.MaxPlexSize),
		SHA256:  canonicalHash(plexes),
		TopK:    h.topkSorted(),
	}, res.Stats
}

// TestDenseMergeDifferentialGrid sweeps corpus × (k, q) × scheduler,
// running every cell once with the dense kernel forced on (the corpus
// graphs all sit under DefaultDenseCrossover) and once with it disabled
// (DenseCrossover = -1, merge only), and requires identical signatures.
// The (k, q) cells come from goldenCombos plus a q > 2k cell per graph so
// the Corollary 5.2 peel — the code the two kernels actually disagree on
// when buggy — is live (thrN1 = q-2k must be positive for either peel to
// run at all).
func TestDenseMergeDifferentialGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep")
	}
	for _, cg := range gen.Corpus() {
		cg := cg
		t.Run(cg.Name, func(t *testing.T) {
			t.Parallel()
			g := &cg
			cells := append(goldenCombos(cg.Name), [2]int{2, 7}) // q=7 > 2k=4: peel live
			for _, kq := range cells {
				k, q := kq[0], kq[1]
				for si, sched := range []SchedulerStyle{SchedulerStages, SchedulerGlobalQueue, SchedulerSteal} {
					threads := 1 + si // 1, 2, 3: sequential and parallel drivers
					label := fmt.Sprintf("k=%d q=%d sched=%v threads=%d", k, q, sched, threads)

					dense, denseStats := runDenseCell(t, g, k, q, sched, threads, 0)
					merge, mergeStats := runDenseCell(t, g, k, q, sched, threads, -1)

					if !reflect.DeepEqual(dense, merge) {
						t.Errorf("%s: dense and merge kernels diverge\ndense: %+v\nmerge: %+v", label, dense, merge)
					}
					if q > 2*k && denseStats.Seeds > 0 && denseStats.DenseBuilds == 0 {
						t.Errorf("%s: dense run built %d seeds through the merge path (DenseBuilds=0); the grid is not exercising the kernel", label, denseStats.Seeds)
					}
					if mergeStats.DenseBuilds != 0 {
						t.Errorf("%s: DenseCrossover=-1 still took the dense path %d times", label, mergeStats.DenseBuilds)
					}
				}
			}
		})
	}
}

// TestDenseCrossoverNotInResultKey pins that DenseCrossover is
// execution-only: two option sets differing only in kernel choice must
// share a batch group (identical ResultKey), because the kernels are
// equivalent by construction.
func TestDenseCrossoverNotInResultKey(t *testing.T) {
	a := NewOptions(2, 6)
	b := NewOptions(2, 6)
	b.DenseCrossover = -1
	if a.ResultKey() != b.ResultKey() {
		t.Fatal("DenseCrossover leaked into ResultKey; kernel routing must not change result identity")
	}
}
