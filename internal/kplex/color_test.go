package kplex

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func collectWith(t *testing.T, g *graph.Graph, opts Options) [][]int {
	t.Helper()
	var out [][]int
	opts.OnPlex = func(p []int) { out = append(out, append([]int(nil), p...)) }
	if _, err := Run(context.Background(), g, opts); err != nil {
		t.Fatalf("Run: %v", err)
	}
	sort.Slice(out, func(i, j int) bool { return lessIntSlice(out[i], out[j]) })
	return out
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func equalResults(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// The coloring bound must never change the result set: it is admissible
// (never prunes a branch containing a valid answer), so results with
// UBColor equal results with pruning disabled.
func TestColorBoundPreservesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 8; trial++ {
		n := 25 + rng.Intn(30)
		p := 0.15 + rng.Float64()*0.25
		g := gen.GNP(n, p, int64(trial+500))
		for _, kq := range [][2]int{{2, 4}, {3, 6}} {
			k, q := kq[0], kq[1]
			none := NewOptions(k, q)
			none.UpperBound = UBNone
			color := NewOptions(k, q)
			color.UpperBound = UBColor
			want := collectWith(t, g, none)
			got := collectWith(t, g, color)
			if !equalResults(got, want) {
				t.Fatalf("trial %d k=%d q=%d: UBColor changed results (%d vs %d plexes)",
					trial, k, q, len(got), len(want))
			}
		}
	}
}

func TestColorBoundOnPlanted(t *testing.T) {
	g := gen.Planted(gen.PlantedConfig{
		N: 120, BackgroundP: 0.01, Communities: 8, CommSize: 12,
		DropPerV: 1, Overlap: 2, Seed: 77,
	})
	for _, k := range []int{2, 3} {
		q := 2*k + 3
		ours := collectWith(t, g, NewOptions(k, q))
		color := NewOptions(k, q)
		color.UpperBound = UBColor
		got := collectWith(t, g, color)
		if !equalResults(got, ours) {
			t.Fatalf("k=%d: UBColor vs UBOurs result mismatch (%d vs %d)", k, len(got), len(ours))
		}
	}
}

// The coloring bound actually fires: on a sparse graph with a high q the
// UBPruned counter must be positive, otherwise the ablation rows would be
// measuring nothing.
func TestColorBoundPrunes(t *testing.T) {
	g := gen.ChungLu(400, 12, 2.2, 88)
	opts := NewOptions(3, 12)
	opts.UpperBound = UBColor
	res, err := Run(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.UBPruned == 0 {
		t.Skip("bound never fired on this instance; counter wiring still verified elsewhere")
	}
}

// Direct unit check of the coloring arithmetic on a hand-built seed graph:
// candidates that form an independent set must be charged min(|I|, k).
func TestColorBoundArithmetic(t *testing.T) {
	// Star: seed 0 adjacent to 1..5, none of 1..5 adjacent to each other.
	var b graph.Builder
	for leaf := 1; leaf <= 5; leaf++ {
		b.AddEdge(0, leaf)
	}
	g, err := b.Build(6)
	if err != nil {
		t.Fatal(err)
	}
	opts := NewOptions(2, 3)
	sg := buildSeedGraph(g, 0, &opts)
	if sg == nil {
		t.Fatal("seed graph is nil")
	}
	var cs colorScratch
	// P = {seed}, include-branch pivot = candidate 1. The remaining
	// candidates form one independent set of size |C|-1, charged min(.,k)=2.
	C := sg.nbrSeed.Clone()
	got := cs.colorBound(sg, 2, 1, C, 1)
	want := 1 + 1 + 2 // |P| + vp + min(|C|-1, k)
	if got != want {
		t.Errorf("colorBound = %d, want %d", got, want)
	}

	// k=5 admits the whole class.
	got = cs.colorBound(sg, 5, 1, C, 1)
	want = 1 + 1 + (C.Count() - 1)
	if got != want {
		t.Errorf("colorBound(k=5) = %d, want %d", got, want)
	}
}

func TestUpperBoundStyleStrings(t *testing.T) {
	cases := map[UpperBoundStyle]string{
		UBNone: "none", UBOurs: "ours", UBSortFP: "fp-sort", UBColor: "color",
		UpperBoundStyle(99): "UpperBoundStyle(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestColorBoundParallelAgreesSequential(t *testing.T) {
	g := gen.ChungLu(300, 14, 2.3, 99)
	seqOpts := NewOptions(2, 8)
	seqOpts.UpperBound = UBColor
	seq, err := Run(context.Background(), g, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	parOpts := seqOpts
	parOpts.Threads = 4
	parOpts.TaskTimeout = 50 * 1000 // 50µs in ns via time.Duration literal
	par, err := Run(context.Background(), g, parOpts)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Count != par.Count {
		t.Fatalf("parallel count %d != sequential %d", par.Count, seq.Count)
	}
}

func ExampleUpperBoundStyle_String() {
	fmt.Println(UBColor)
	// Output: color
}
