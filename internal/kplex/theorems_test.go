package kplex_test

// Tests that re-verify the paper's structural theorems on the enumerator's
// real output rather than trusting the derivations: Theorem 3.3 (diameter),
// Theorem 5.1 (second-order property) and Theorem 3.2 (hereditariness is
// covered in quick_test.go).

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kplex"
)

func emittedPlexes(t *testing.T, g *graph.Graph, k, q, cap int) [][]int {
	t.Helper()
	var out [][]int
	opts := kplex.NewOptions(k, q)
	opts.OnPlex = func(p []int) {
		if len(out) < cap {
			out = append(out, append([]int(nil), p...))
		}
	}
	if _, err := kplex.Run(context.Background(), g, opts); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTheorem33DiameterAtMostTwo: every k-plex with |P| >= 2k-1 is
// connected with diameter <= 2.
func TestTheorem33DiameterAtMostTwo(t *testing.T) {
	g := gen.ChungLu(600, 16, 2.25, 61)
	for _, kc := range []struct{ k, q int }{{2, 6}, {3, 8}, {4, 10}} {
		plexes := emittedPlexes(t, g, kc.k, kc.q, 300)
		if len(plexes) == 0 {
			continue
		}
		for _, p := range plexes {
			d := graph.InducedDiameter(g, p)
			if d == -1 {
				t.Fatalf("k=%d q=%d: plex %v is disconnected", kc.k, kc.q, p)
			}
			if d > 2 {
				t.Fatalf("k=%d q=%d: plex %v has diameter %d > 2", kc.k, kc.q, p, d)
			}
		}
	}
}

// TestTheorem51SecondOrderProperty: for any two members of an emitted plex
// P with |P| >= q, non-adjacent pairs share >= q-2k+2 common neighbours
// inside P and adjacent pairs share >= q-2k (thresholds clamp at zero).
func TestTheorem51SecondOrderProperty(t *testing.T) {
	g := gen.ChungLu(600, 16, 2.25, 62)
	for _, kc := range []struct{ k, q int }{{2, 7}, {3, 9}} {
		plexes := emittedPlexes(t, g, kc.k, kc.q, 150)
		for _, p := range plexes {
			in := make(map[int]bool, len(p))
			for _, v := range p {
				in[v] = true
			}
			commonInP := func(u, v int) int {
				c := 0
				for _, w := range g.Neighbors(u) {
					if in[int(w)] && g.HasEdge(v, int(w)) {
						c++
					}
				}
				return c
			}
			for i, u := range p {
				for _, v := range p[i+1:] {
					cn := commonInP(u, v)
					thr := len(p) - 2*kc.k // adjacent case, using |P| >= q
					if !g.HasEdge(u, v) {
						thr = len(p) - 2*kc.k + 2
					}
					if thr > 0 && cn < thr {
						t.Fatalf("k=%d q=%d: pair (%d,%d) in %v has %d common members, theorem requires >= %d",
							kc.k, kc.q, u, v, p, cn, thr)
					}
				}
			}
		}
	}
}

// TestGammaConstants pins the branching-factor constants the paper quotes
// for Lemma 5.10 (γ1 ≈ 1.618, γ2 ≈ 1.839, γ3 ≈ 1.928): the largest real
// root of x^{k+2} - 2x^{k+1} + 1 = 0.
func TestGammaConstants(t *testing.T) {
	root := func(k int) float64 {
		f := func(x float64) float64 {
			// x^{k+2} - 2x^{k+1} + 1
			p := 1.0
			for i := 0; i < k+1; i++ {
				p *= x
			}
			return p*x - 2*p + 1
		}
		lo, hi := 1.0+1e-9, 2.0-1e-12
		for i := 0; i < 200; i++ {
			mid := (lo + hi) / 2
			if f(mid) > 0 {
				hi = mid
			} else {
				lo = mid
			}
		}
		return (lo + hi) / 2
	}
	want := map[int]float64{1: 1.618, 2: 1.839, 3: 1.928}
	for k, w := range want {
		got := root(k)
		if got < w-0.002 || got > w+0.002 {
			t.Errorf("γ_%d = %.4f, paper says %.3f", k, got, w)
		}
		if got >= 2 {
			t.Errorf("γ_%d = %.4f must be < 2", k, got)
		}
	}
}
