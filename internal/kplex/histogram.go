package kplex

import (
	"context"
	"sync"

	"repro/internal/graph"
)

// SizeHistogram enumerates like Run and returns the distribution of
// maximal k-plex sizes: hist[s] is the number of maximal k-plexes with
// exactly s vertices. The histogram is how the evaluation datasets are
// calibrated (a dataset whose plex sizes hug q exercises the bounds;
// one with a long tail exercises the collapse shortcut). opts.OnPlex is
// owned by SizeHistogram.
func SizeHistogram(ctx context.Context, g graph.CSR, opts Options) (map[int]int64, Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, Result{}, err
		}
	}
	p, err := Prepare(g, opts)
	if err != nil {
		return nil, Result{}, err
	}
	return SizeHistogramPrepared(ctx, p, opts)
}

// SizeHistogramPrepared is SizeHistogram against a Prepared handle,
// skipping the run prologue.
func SizeHistogramPrepared(ctx context.Context, p *Prepared, opts Options) (map[int]int64, Result, error) {
	hist := make(map[int]int64)
	var mu sync.Mutex
	opts.OnPlex = func(pl []int) {
		mu.Lock()
		hist[len(pl)]++
		mu.Unlock()
	}
	res, err := RunPrepared(ctx, p, opts)
	return hist, res, err
}
