package kplex

import "repro/internal/graph"

// The k-plex predicates moved to internal/graph (they are pure graph
// properties, and internal/sink needs them without depending on the
// engine). These wrappers keep the package's historical API for the many
// tests and callers that verify enumeration output from here.

// IsKPlex reports whether the vertex set P is a k-plex of g: every member
// has at least |P|-k neighbours inside P. The empty set and singletons are
// k-plexes for every k >= 1.
func IsKPlex(g *graph.Graph, P []int, k int) bool { return graph.IsKPlex(g, P, k) }

// CanExtend reports whether some vertex outside P can be added to P while
// keeping it a k-plex. A k-plex is maximal iff this is false.
func CanExtend(g *graph.Graph, P []int, k int) bool { return graph.CanExtendKPlex(g, P, k) }

// IsMaximalKPlex reports whether P is a k-plex that no vertex of g extends.
func IsMaximalKPlex(g *graph.Graph, P []int, k int) bool { return graph.IsMaximalKPlex(g, P, k) }
