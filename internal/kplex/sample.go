package kplex

// Seed-space sampling: enumerate a deterministic uniform subset of the
// seed ids and estimate the exact answer from it. Seed groups partition
// the maximal k-plexes (every maximal plex is found from exactly one
// seed), so per-seed plex counts are i.i.d. draws under simple random
// sampling of seeds and the classic survey estimator applies — the total
// is N × (sample mean) with a finite-population-corrected standard error.
//
// Membership is a pure function of (seed id, salt, rate): seed s is kept
// iff splitmix64(salt ^ s·φ) < rate·2⁶⁴. The same salt therefore always
// selects the same subset — sampled results are cacheable and
// singleflight-safe — while different salts give independent samples.

import (
	"fmt"
	"math"
)

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed
// 64-bit mixing function (Steele et al.), used here to turn (salt, seed)
// into an effectively uniform 64-bit value.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// DefaultMinSampleSeeds is the sample-size floor EffectiveSampleRate
// applies: below a few dozen enumerated seeds the normal-approximation
// interval is not trustworthy (a skewed population easily yields an
// all-zero sample with a zero-width CI), and a seed space that small is
// cheap to enumerate exactly anyway.
const DefaultMinSampleSeeds = 32

// EffectiveSampleRate raises rate so the expected sample size is at least
// minSeeds (DefaultMinSampleSeeds when minSeeds <= 0): the requested rate
// governs large seed spaces — where sampling pays — while small spaces
// degrade toward a census instead of an untrustworthy estimate. Returns 1
// (full enumeration) when the whole space is within the floor.
func EffectiveSampleRate(total int, rate float64, minSeeds int) float64 {
	if minSeeds <= 0 {
		minSeeds = DefaultMinSampleSeeds
	}
	if total <= minSeeds {
		return 1
	}
	if floor := float64(minSeeds) / float64(total); rate < floor {
		return floor
	}
	return rate
}

// SampleSeeds deterministically selects each seed in [0, total) with
// probability rate, keyed by salt, and returns the complement as a skip
// set (ready for Options.SkipSeeds) plus the kept count. rate must be in
// (0, 1]; rate 1 keeps every seed (empty skip set).
func SampleSeeds(total int, rate float64, salt uint64) (*SeedSet, int, error) {
	if total < 0 {
		return nil, 0, fmt.Errorf("sample: negative seed space %d", total)
	}
	if rate <= 0 || rate > 1 || math.IsNaN(rate) {
		return nil, 0, fmt.Errorf("sample: rate %v outside (0, 1]", rate)
	}
	skip := NewSeedSet()
	if rate == 1 {
		return skip, total, nil
	}
	// Threshold in the full uint64 range; rate < 1 keeps this below 2⁶⁴.
	thresh := uint64(rate * math.Exp2(64))
	kept := 0
	for s := 0; s < total; s++ {
		if splitmix64(salt^(uint64(s)*0x9E3779B97F4A7C15)) < thresh {
			kept++
		} else {
			skip.Add(s)
		}
	}
	return skip, kept, nil
}

// SampleEstimate is the scaled-up answer from a seed-sampled run, with a
// normal-approximation 95% confidence interval (Student-t critical value
// for small samples, finite-population corrected).
type SampleEstimate struct {
	Rate         float64 `json:"rate"`         // requested sampling rate
	TotalSeeds   int     `json:"totalSeeds"`   // seed-space size N
	SampledSeeds int     `json:"sampledSeeds"` // seeds actually enumerated n
	RawCount     int64   `json:"rawCount"`     // plexes found in the sample
	Count        float64 `json:"estimatedCount"`
	StdErr       float64 `json:"stdErr"`
	CI95Lo       float64 `json:"ci95Lo"`
	CI95Hi       float64 `json:"ci95Hi"`
}

// EstimateCount forms the simple-random-sampling estimate of the exact
// plex count from the per-seed counts of the n enumerated seeds out of a
// space of totalSeeds. The estimator N·x̄ is unbiased; its standard error
// uses the sample variance with the finite-population correction
// (1 − n/N), and the interval uses the two-sided 95% Student-t critical
// value at n−1 degrees of freedom, so reported coverage stays honest for
// the small samples a low rate on a modest seed space produces. The lower
// bound is clamped at the raw sample count — the answer can never be
// below what was already found.
func EstimateCount(totalSeeds int, perSeed []int64, rate float64) SampleEstimate {
	n := len(perSeed)
	est := SampleEstimate{Rate: rate, TotalSeeds: totalSeeds, SampledSeeds: n}
	if n == 0 || totalSeeds == 0 {
		return est
	}
	var sum int64
	for _, c := range perSeed {
		sum += c
	}
	est.RawCount = sum
	N := float64(totalSeeds)
	mean := float64(sum) / float64(n)
	est.Count = N * mean
	if n > 1 && n < totalSeeds {
		var s2 float64
		for _, c := range perSeed {
			d := float64(c) - mean
			s2 += d * d
		}
		s2 /= float64(n - 1)
		fpc := 1 - float64(n)/N
		est.StdErr = N * math.Sqrt(s2/float64(n)*fpc)
	}
	half := tCrit95(n-1) * est.StdErr
	est.CI95Lo = max(est.Count-half, float64(sum))
	est.CI95Hi = est.Count + half
	return est
}

// tCrit95 is the two-sided 95% Student-t critical value at df degrees of
// freedom (t₀.₉₇₅). Exact to three decimals through df 30, then the
// standard coarse steps down to the normal limit 1.960.
func tCrit95(df int) float64 {
	table := [...]float64{
		1:  12.706,
		2:  4.303,
		3:  3.182,
		4:  2.776,
		5:  2.571,
		6:  2.447,
		7:  2.365,
		8:  2.306,
		9:  2.262,
		10: 2.228,
		11: 2.201,
		12: 2.179,
		13: 2.160,
		14: 2.145,
		15: 2.131,
		16: 2.120,
		17: 2.110,
		18: 2.101,
		19: 2.093,
		20: 2.086,
		21: 2.080,
		22: 2.074,
		23: 2.069,
		24: 2.064,
		25: 2.060,
		26: 2.056,
		27: 2.052,
		28: 2.048,
		29: 2.045,
		30: 2.042,
	}
	switch {
	case df < 1:
		return 0 // no variance estimate exists; StdErr is 0 too
	case df <= 30:
		return table[df]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}
