package kplex

// Batched multi-query execution over shared Prepared handles. Parameter
// sweeps — the same graph queried at many (k, q) cells for histograms,
// dashboards and calibration — dominate production traffic against a
// query service, and PR 4's prepared-graph layer only amortizes the
// O(n+m) prologue *within* one (k, q) cell. The seed-vertex decomposition
// makes the traversal itself shareable: every maximal k-plex with at
// least q' >= q vertices is, by definition, reported by an enumeration at
// the looser threshold q, so one walk of the seed space at the group's
// loosest cell can answer every member query whose (k, q') it subsumes by
// fanning each discovered plex out to the members whose threshold it
// meets.
//
// Sharing is only sound along the q axis. Two queries with different k
// enumerate different objects: a maximal k'-plex (k' < k) need not be a
// maximal k-plex — it can be strictly contained in a larger k-plex — so
// filtering one enumeration cannot recover the other. Queries therefore
// group by (K, UseCTCP); each group prepares once at (K, min Q) and walks
// the seed space once.
//
// Early exit: a group whose members are all top-k queries can finish
// before the walk does. Any plex reported by seed s has at most
// k + |laterNeighbors(s)| vertices (the plex contains the seed, at most
// k-1 vertices non-adjacent to it, and otherwise only later neighbours),
// so once every member's heap is full and its weakest entry is strictly
// larger than the bound of every unfinished seed, no remaining subproblem
// can change any member's answer and the shared walk is cancelled. The
// strict inequality keeps results byte-identical to the sequential path:
// a tie could still swap in a lexicographically smaller plex.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// BatchMode selects what one batch member reports.
type BatchMode int

const (
	// BatchCount reports the member's plex count (and MaxSize).
	BatchCount BatchMode = iota
	// BatchTopK reports the member's TopN largest plexes.
	BatchTopK
	// BatchHistogram reports the member's size histogram.
	BatchHistogram
)

func (m BatchMode) String() string {
	switch m {
	case BatchCount:
		return "count"
	case BatchTopK:
		return "topk"
	case BatchHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("BatchMode(%d)", int(m))
	}
}

// BatchQuery is one member of a batch: an options cell plus the reporting
// mode. Opts must pass Options.ValidateBatchMember — per-query knobs that
// assume ownership of the traversal (FirstOnly, SkipSeeds, the seed
// hooks) are rejected; Opts.OnPlex is honoured and receives exactly the
// member's own result set.
type BatchQuery struct {
	Opts Options
	Mode BatchMode
	// TopN bounds a BatchTopK member (required >= 1 for that mode, must be
	// zero otherwise).
	TopN int
}

// validate checks the member in isolation.
func (q *BatchQuery) validate() error {
	if err := q.Opts.ValidateBatchMember(); err != nil {
		return err
	}
	switch q.Mode {
	case BatchCount, BatchHistogram:
		if q.TopN != 0 {
			return fmt.Errorf("kplex: TopN is only meaningful for BatchTopK members, got %d on a %s member", q.TopN, q.Mode)
		}
	case BatchTopK:
		if q.TopN < 1 {
			return fmt.Errorf("kplex: BatchTopK members need TopN >= 1, got %d", q.TopN)
		}
	default:
		return fmt.Errorf("kplex: unknown BatchMode %d", int(q.Mode))
	}
	return nil
}

// BatchResult is one member's answer. Count, MaxSize and the mode payload
// (TopK / Histogram) are exactly what the equivalent standalone query
// would report — except when Saturated is set: an all-top-k group that
// stopped its walk early reports exact TopK lists (that is what the
// saturation condition guarantees) but Count/MaxSize/Stats cover only the
// walked prefix, so they are lower bounds. Stats are the shared walk's
// counters with Emitted and MaxPlexSize rewritten to the member's own
// values — the walk is joint property of the group, so search counters
// (branches, prunes, steals) are shared by construction. Elapsed is the
// group walk's wall clock.
type BatchResult struct {
	Count     int64
	MaxSize   int
	TopK      [][]int       // BatchTopK only
	Histogram map[int]int64 // BatchHistogram only
	Stats     Stats
	Elapsed   time.Duration
	// Group is the index of the shared-traversal group that answered this
	// member (members with equal Group shared one walk).
	Group int
	// Saturated reports that the group's walk stopped early because no
	// unfinished seed could change any member's top-k answer. Possible
	// only for groups whose members are all top-k without OnPlex hooks (a
	// hooked member is promised its complete result set, so it disables
	// the early exit). TopK is exact; Count is a lower bound. Callers
	// caching results keyed as full enumerations must skip saturated ones.
	Saturated bool
}

// BatchGroup is one shared traversal: the cell it runs at and the queries
// it answers. Cell carries the group's K and UseCTCP, the loosest
// (minimum) Q of the members, and the execution knobs of the member with
// the most threads (hooks and resume knobs cleared) — so the widest
// member's parallelism serves the whole group.
type BatchGroup struct {
	Cell    Options
	Members []int // indices into the query slice, in submission order
}

// GroupBatch validates queries and partitions them into shared-traversal
// groups, keyed by (K, UseCTCP) in order of first appearance. Exposed so
// hosts that drive the walk themselves (the jobs layer checkpoints it
// seed by seed) share one grouping rule with RunBatch.
func GroupBatch(queries []BatchQuery) ([]BatchGroup, error) {
	type key struct {
		k    int
		ctcp bool
	}
	index := make(map[key]int)
	var groups []BatchGroup
	for i := range queries {
		q := &queries[i]
		if err := q.validate(); err != nil {
			return nil, fmt.Errorf("batch query %d: %w", i, err)
		}
		kk := key{q.Opts.K, q.Opts.UseCTCP}
		gi, ok := index[kk]
		if !ok {
			gi = len(groups)
			index[kk] = gi
			groups = append(groups, BatchGroup{Cell: q.Opts})
		}
		g := &groups[gi]
		g.Members = append(g.Members, i)
		if q.Opts.Q < g.Cell.Q {
			g.Cell.Q = q.Opts.Q
		}
		if q.Opts.Threads > g.Cell.Threads {
			// Adopt the widest member's execution knobs wholesale (scheduler,
			// timeout, bounds) so the group runs one coherent configuration.
			qq := g.Cell.Q
			g.Cell = q.Opts
			g.Cell.Q = qq
		}
	}
	for gi := range groups {
		c := &groups[gi].Cell
		c.OnPlex, c.OnPlexSeed, c.OnSeedDone = nil, nil, nil
		c.SkipSeeds, c.FirstOnly = nil, false
	}
	return groups, nil
}

// BatchRunner executes batches with host-supplied hooks. The zero value
// is valid (RunBatch uses it).
type BatchRunner struct {
	// Prepare, when non-nil, resolves each group's prologue handle — hosts
	// wire their prepared-graph cache here so a batch warms (and is warmed
	// by) the single-query cache. The options are the group's Cell; when
	// nil, the runner prepares directly from the graph.
	Prepare func(cell Options) (*Prepared, error)
	// OnResult, when non-nil, receives each member's result as soon as its
	// group's walk completes (members of one group land together, in
	// submission order). Called from the batch goroutine, never
	// concurrently.
	OnResult func(i int, r *BatchResult)
}

// RunBatch evaluates a set of queries against one graph, sharing a single
// seed-space traversal among every compatible group (see GroupBatch).
// Results are positionally aligned with queries. Each member's result is
// identical to what the equivalent standalone Run / EnumerateTopK /
// SizeHistogram call would report; the differential grid in batch_test.go
// pins that equivalence across the corpus and all three schedulers.
func RunBatch(ctx context.Context, g graph.CSR, queries []BatchQuery) ([]BatchResult, error) {
	return (&BatchRunner{}).Run(ctx, g, queries)
}

// Run executes queries against g. Groups run one after another (each
// group's walk is internally parallel up to its Cell.Threads), so a batch
// never holds more than one group's working set.
func (br *BatchRunner) Run(ctx context.Context, g graph.CSR, queries []BatchQuery) ([]BatchResult, error) {
	groups, err := GroupBatch(queries)
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	results := make([]BatchResult, len(queries))
	for gi := range groups {
		if err := br.runGroup(ctx, g, gi, &groups[gi], queries, results); err != nil {
			return nil, err
		}
		if br.OnResult != nil {
			for _, mi := range groups[gi].Members {
				br.OnResult(mi, &results[mi])
			}
		}
	}
	return results, nil
}

// batchMember is the accumulation state of one member during its group's
// walk. The mutex serialises the mode payload (heap / histogram); count
// and maxSize are atomics, so count-only members stay lock-free on the
// fan-out hot path.
type batchMember struct {
	q      int
	mode   BatchMode
	topN   int
	onPlex func([]int)

	count   atomic.Int64
	maxSize atomic.Int64
	mu      sync.Mutex
	heap    plexHeap
	hist    map[int]int64
	done    atomic.Bool // top-k saturation: no remaining seed can change the answer
}

// add folds one discovered plex (already known to meet the member's
// threshold) into the member's aggregate. Called concurrently by the
// walk's workers.
func (m *batchMember) add(p []int) {
	m.count.Add(1)
	if m.onPlex != nil {
		m.onPlex(p)
	}
	for n := int64(len(p)); ; {
		cur := m.maxSize.Load()
		if n <= cur || m.maxSize.CompareAndSwap(cur, n) {
			break
		}
	}
	switch m.mode {
	case BatchTopK:
		m.mu.Lock()
		m.heap.topkOffer(p, m.topN)
		m.mu.Unlock()
	case BatchHistogram:
		m.mu.Lock()
		m.hist[len(p)]++
		m.mu.Unlock()
	}
}

// saturated reports whether a top-k member can no longer change: its heap
// is full and its weakest entry is strictly larger than maxRemaining, the
// size bound of every unfinished seed. Strict: a tie could still replace
// the weakest entry with a lexicographically smaller plex.
func (m *batchMember) saturated(maxRemaining int) bool {
	if m.mode != BatchTopK {
		return false
	}
	if m.done.Load() {
		return true
	}
	m.mu.Lock()
	sat := len(m.heap) == m.topN && len(m.heap[0]) > maxRemaining
	m.mu.Unlock()
	if sat {
		m.done.Store(true)
	}
	return sat
}

// seedBounds is the saturation bookkeeping of one group walk: bucket
// counts of unfinished seeds by their size bound, and the running
// maximum. Only built for all-top-k groups — it needs the OnSeedDone hook,
// whose per-task bookkeeping the other modes should not pay for.
type seedBounds struct {
	mu      sync.Mutex
	buckets []int // buckets[b] = unfinished seeds with bound b
	maxB    int   // largest b with buckets[b] > 0 (-1 when none)
	bound   []int // per-seed size bound: k + |laterNeighbors(seed)|
}

func newSeedBounds(p *Prepared) *seedBounds {
	n := p.pg.N()
	sb := &seedBounds{bound: make([]int, n), maxB: -1}
	for s := 0; s < n; s++ {
		b := p.k + len(p.pg.LaterNeighbors(s))
		sb.bound[s] = b
		if b >= len(sb.buckets) {
			sb.buckets = append(sb.buckets, make([]int, b+1-len(sb.buckets))...)
		}
		sb.buckets[b]++
		if b > sb.maxB {
			sb.maxB = b
		}
	}
	return sb
}

// seedDone retires one seed and returns the new maximum bound over the
// seeds still unfinished (-1 when all are done).
func (sb *seedBounds) seedDone(seed int) int {
	sb.mu.Lock()
	sb.buckets[sb.bound[seed]]--
	for sb.maxB >= 0 && sb.buckets[sb.maxB] == 0 {
		sb.maxB--
	}
	m := sb.maxB
	sb.mu.Unlock()
	return m
}

// errBatchSaturated is the internal cancel cause of a walk every top-k
// member of which has saturated; it never escapes to callers.
var errBatchSaturated = errValidation("kplex: batch group saturated")

// runGroup prepares (or resolves) the group's handle and walks its seed
// space once, fanning every discovered plex out to the members whose
// threshold it meets.
func (br *BatchRunner) runGroup(ctx context.Context, g graph.CSR, gi int, grp *BatchGroup, queries []BatchQuery, results []BatchResult) error {
	// Cancellation between groups must not start the next group's prologue:
	// Prepare is a full O(n+m) pass, and RunPrepared's own pre-check only
	// fires after it has been paid.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	var (
		p   *Prepared
		err error
	)
	if br.Prepare != nil {
		p, err = br.Prepare(grp.Cell)
	} else {
		p, err = Prepare(g, grp.Cell)
	}
	if err != nil {
		return err
	}

	members := make([]*batchMember, len(grp.Members))
	allTopK := true
	for idx, mi := range grp.Members {
		q := &queries[mi]
		m := &batchMember{q: q.Opts.Q, mode: q.Mode, topN: q.TopN, onPlex: q.Opts.OnPlex}
		switch q.Mode {
		case BatchHistogram:
			m.hist = make(map[int]int64)
			allTopK = false
		case BatchTopK:
			m.heap = make(plexHeap, 0, q.TopN)
		default:
			allTopK = false
		}
		if q.Opts.OnPlex != nil {
			// The member's callback is promised the complete result set; a
			// saturated stop would silently truncate it, so such a member
			// disables the early exit for its group.
			allTopK = false
		}
		members[idx] = m
	}

	if ctx == nil {
		ctx = context.Background()
	}
	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	opts := grp.Cell
	opts.OnPlex = func(pl []int) {
		for _, m := range members {
			if len(pl) >= m.q {
				m.add(pl)
			}
		}
	}
	if allTopK {
		sb := newSeedBounds(p)
		// The flag stops the walk synchronously (the next cancellation
		// check observes it); the context cancel records the cause so the
		// saturated stop is distinguishable from a real cancellation.
		stop := new(atomic.Bool)
		opts.earlyStop = stop
		opts.OnSeedDone = func(seed int, _ Stats) {
			maxRemaining := sb.seedDone(seed)
			for _, m := range members {
				if !m.saturated(maxRemaining) {
					return
				}
			}
			cancel(errBatchSaturated)
			stop.Store(true)
		}
	}

	start := time.Now()
	res, runErr := RunPrepared(runCtx, p, opts)
	elapsed := time.Since(start)
	saturated := false
	if runErr != nil {
		if context.Cause(runCtx) != errBatchSaturated {
			// A real cancellation (caller's ctx, deadline): the members'
			// partial aggregates are not any query's answer.
			return runErr
		}
		// Saturated stop: every member's top-k answer is already final,
		// but the walked prefix undercounts the full enumeration.
		saturated = true
	}

	for idx, mi := range grp.Members {
		m := members[idx]
		r := BatchResult{
			Count:     m.count.Load(),
			MaxSize:   int(m.maxSize.Load()),
			Stats:     res.Stats,
			Elapsed:   elapsed,
			Group:     gi,
			Saturated: saturated,
		}
		r.Stats.Emitted = r.Count
		r.Stats.MaxPlexSize = int64(r.MaxSize)
		switch m.mode {
		case BatchTopK:
			r.TopK = m.heap.topkSorted()
		case BatchHistogram:
			r.Histogram = m.hist
		}
		results[mi] = r
	}
	return nil
}
