package kplex

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Options)
		wantErr string
	}{
		{"default ok", func(o *Options) {}, ""},
		{"k zero", func(o *Options) { o.K = 0 }, "K must be"},
		{"k negative", func(o *Options) { o.K = -2 }, "K must be"},
		{"q below 2k-1", func(o *Options) { o.K = 3; o.Q = 4 }, "Q must be"},
		{"q exactly 2k-1", func(o *Options) { o.K = 3; o.Q = 5 }, ""},
		{"negative timeout", func(o *Options) { o.TaskTimeout = -time.Second }, "TaskTimeout"},
	}
	for _, c := range cases {
		o := NewOptions(2, 5)
		c.mutate(&o)
		err := o.Validate()
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
}

func TestRunRejectsInvalidOptions(t *testing.T) {
	g := gen.GNP(10, 0.5, 1)
	if _, err := Run(context.Background(), g, Options{K: 2, Q: 1}); err == nil {
		t.Fatal("Run accepted Q < 2K-1")
	}
}

func TestEnumConstantsString(t *testing.T) {
	pairs := []struct {
		got, want string
	}{
		{UBNone.String(), "none"},
		{UBOurs.String(), "ours"},
		{UBSortFP.String(), "fp-sort"},
		{UpperBoundStyle(99).String(), "UpperBoundStyle(99)"},
		{BranchRepick.String(), "repick"},
		{BranchFaPlexen.String(), "faplexen"},
		{BranchingStyle(7).String(), "BranchingStyle(7)"},
		{PartitionSubtasks.String(), "subtasks"},
		{PartitionWhole2Hop.String(), "whole-2hop"},
		{PartitionStyle(7).String(), "PartitionStyle(7)"},
	}
	for _, p := range pairs {
		if p.got != p.want {
			t.Errorf("String() = %q, want %q", p.got, p.want)
		}
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Seeds: 1, Tasks: 2, TasksPrunedR1: 3, Branches: 4, UBPruned: 5, Splits: 6, Emitted: 7}
	b := a
	a.Add(b)
	if a.Seeds != 2 || a.Tasks != 4 || a.TasksPrunedR1 != 6 || a.Branches != 8 ||
		a.UBPruned != 10 || a.Splits != 12 || a.Emitted != 14 {
		t.Fatalf("Add produced %+v", a)
	}
}

func TestContextCancellation(t *testing.T) {
	// A dense graph with a large result set: cancel immediately and expect
	// an early, error-bearing return.
	g := gen.GNP(300, 0.25, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := NewOptions(3, 6)
	start := time.Now()
	_, err := Run(ctx, g, opts)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("cancelled run took %v", time.Since(start))
	}
}

func TestContextCancellationParallel(t *testing.T) {
	g := gen.GNP(300, 0.25, 9)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	opts := NewOptions(3, 6)
	opts.Threads = 4
	opts.TaskTimeout = 100 * time.Microsecond
	start := time.Now()
	_, err := Run(ctx, g, opts)
	if err == nil {
		// The run may legitimately finish under 50ms on a fast machine;
		// only fail if it clearly ignored the deadline.
		if time.Since(start) > 10*time.Second {
			t.Fatal("parallel run ignored context deadline")
		}
		return
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("cancelled parallel run took %v", time.Since(start))
	}
}

func TestMaxPlexSizeStat(t *testing.T) {
	// Planted community of 12 as a 2-plex: the stat must report 12.
	g := gen.Planted(gen.PlantedConfig{
		N: 200, BackgroundP: 0.02, Communities: 1, CommSize: 12, DropPerV: 1, Seed: 8,
	})
	res := mustRun(t, g, NewOptions(2, 5))
	if res.Stats.MaxPlexSize < 12 {
		t.Fatalf("MaxPlexSize = %d, want >= 12", res.Stats.MaxPlexSize)
	}
	none := mustRun(t, g, NewOptions(2, 50))
	if none.Stats.MaxPlexSize != 0 || none.Count != 0 {
		t.Fatalf("empty result should leave MaxPlexSize 0, got %d", none.Stats.MaxPlexSize)
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		g := gen.GNP(n, 1, 1) // complete graph on n vertices
		res := mustRun(t, g, NewOptions(2, 3))
		want := int64(0)
		if n == 3 {
			want = 1 // the triangle itself
		}
		if res.Count != want {
			t.Fatalf("n=%d: count = %d, want %d", n, res.Count, want)
		}
	}
}
