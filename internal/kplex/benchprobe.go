package kplex

// Benchmark probes for the harness in internal/bench. They live here (and
// are exported) because the quantities they measure — steady-state
// allocations of the scratch-based seed builder — are internals no outside
// package can reach, yet the BENCH_prepare.json snapshot and its CI guard
// must track them release over release.

import (
	"runtime"
	"time"

	"repro/internal/graph"
)

// SeedBuildAllocsPerOp measures the steady-state heap allocations of one
// seed-graph build over the prepared working graph of (g, opts), driving
// the builder exactly as an engine worker does: one scratch, one recycled
// storage, seeds round-robin. A first full pass warms the buffers; the
// reported figure is the post-warm-up average, which the zero-allocation
// pipeline pins at exactly 0. The measurement mirrors
// testing.AllocsPerRun (single-proc loop over Mallocs deltas) without
// linking the testing framework into serving binaries. Runs under the
// race detector inflate the number (the race runtime allocates); the CI
// guard runs uninstrumented.
func SeedBuildAllocsPerOp(g graph.CSR, opts Options) (float64, error) {
	p, err := Prepare(g, opts)
	if err != nil {
		return 0, err
	}
	relab := p.pg.G()
	if relab.N() == 0 {
		// The reduction emptied the graph: there are no builds to measure
		// and, trivially, no allocations.
		return 0, nil
	}
	sc := newSeedScratch(relab.N())
	st := &seedStorage{}
	for s := 0; s < relab.N(); s++ {
		sc.build(relab, p.pg, s, &opts, st, nil)
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	const runs = 200
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	s := 0
	for i := 0; i < runs; i++ {
		sc.build(relab, p.pg, s, &opts, st, nil)
		if s++; s == relab.N() {
			s = 0
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / runs, nil
}

// SeedBuildPass measures one full seed-build pass — every seed of the
// prepared working graph of (g, opts), built through the same scratch and
// recycled storage an engine worker uses — and reports the minimum
// wall-clock duration over reps timed passes (after one untimed warm-up
// pass that sizes the buffers), together with the number of non-nil builds
// and how many builds took the dense bit-parallel peel. This is the probe
// behind BENCH_kernels.json: the dense-vs-merge kernel choice only touches
// seed construction, so comparing passes under different DenseCrossover
// settings isolates the kernel delta from enumeration noise.
func SeedBuildPass(g graph.CSR, opts Options, reps int) (minPass time.Duration, builds int, denseBuilds int64, err error) {
	p, err := Prepare(g, opts)
	if err != nil {
		return 0, 0, 0, err
	}
	relab := p.pg.G()
	if relab.N() == 0 {
		return 0, 0, 0, nil
	}
	sc := newSeedScratch(relab.N())
	st := &seedStorage{}
	var stats Stats
	for s := 0; s < relab.N(); s++ {
		if sg := sc.build(relab, p.pg, s, &opts, st, &stats); sg != nil {
			builds++
		}
	}
	denseBuilds = stats.DenseBuilds

	if reps < 1 {
		reps = 1
	}
	minPass = time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		for s := 0; s < relab.N(); s++ {
			sc.build(relab, p.pg, s, &opts, st, nil)
		}
		if d := time.Since(t0); d < minPass {
			minPass = d
		}
	}
	return minPass, builds, denseBuilds, nil
}
