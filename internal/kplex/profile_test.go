package kplex

import (
	"context"
	"testing"

	"repro/internal/gen"
)

// BenchmarkEngineChungLu is the internal profiling benchmark used to tune
// the hot path (run with -cpuprofile / -memprofile).
func BenchmarkEngineChungLu(b *testing.B) {
	g := gen.ChungLu(2000, 22, 2.2, 41)
	opts := NewOptions(3, 16)
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), g, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Count), "plexes")
	}
}

// BenchmarkEnginePlanted exercises the planted-community workload where
// collapse detection (Algorithm 3 lines 11-14) dominates.
func BenchmarkEnginePlanted(b *testing.B) {
	g := gen.Planted(gen.PlantedConfig{
		N: 3000, BackgroundP: 0.001, Communities: 60,
		CommSize: 14, DropPerV: 2, Overlap: 3, Seed: 42,
	})
	opts := NewOptions(3, 10)
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), g, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Count), "plexes")
	}
}
