package kplex

import (
	"context"
	"testing"

	"repro/internal/gen"
)

func TestSizeHistogramSumsToCount(t *testing.T) {
	g := gen.Planted(gen.PlantedConfig{
		N: 150, BackgroundP: 0.02, Communities: 8, CommSize: 11,
		DropPerV: 1, Overlap: 2, Seed: 21,
	})
	hist, res, err := SizeHistogram(context.Background(), g, NewOptions(2, 6))
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	maxSize := 0
	for s, c := range hist {
		if s < 6 {
			t.Errorf("histogram bucket %d below q", s)
		}
		if c <= 0 {
			t.Errorf("bucket %d has non-positive count %d", s, c)
		}
		sum += c
		if s > maxSize {
			maxSize = s
		}
	}
	if sum != res.Count {
		t.Errorf("histogram sums to %d, Count = %d", sum, res.Count)
	}
	if int64(maxSize) != res.Stats.MaxPlexSize {
		t.Errorf("max bucket %d != Stats.MaxPlexSize %d", maxSize, res.Stats.MaxPlexSize)
	}
}

func TestSizeHistogramParallelMatchesSequential(t *testing.T) {
	g := gen.ChungLu(400, 14, 2.3, 22)
	seqH, seqR, err := SizeHistogram(context.Background(), g, NewOptions(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	opts := NewOptions(2, 8)
	opts.Threads = 4
	opts.TaskTimeout = 50000 // 50µs
	parH, parR, err := SizeHistogram(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seqR.Count != parR.Count || len(seqH) != len(parH) {
		t.Fatalf("parallel/sequential disagree: %d vs %d plexes", parR.Count, seqR.Count)
	}
	for s, c := range seqH {
		if parH[s] != c {
			t.Errorf("size %d: %d (seq) vs %d (par)", s, c, parH[s])
		}
	}
}

func TestSizeHistogramInvalidOptions(t *testing.T) {
	g := gen.GNP(10, 0.5, 1)
	if _, _, err := SizeHistogram(context.Background(), g, NewOptions(0, 5)); err == nil {
		t.Error("expected validation error")
	}
}
