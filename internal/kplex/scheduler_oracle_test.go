package kplex_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kplex"
)

// TestSchedulersMatchOracle is the differential grid of the scheduler
// ablation: for Planted and SBM graphs × (k, q) × every scheduler × both
// partition styles, the engine must return exactly the plex set of the
// naive Bron-Kerbosch oracle — identical counts and identical sorted sets.
// The scheduler decides who runs a task, never what it computes, so any
// divergence here is a lost or duplicated task.
// allSchedulers is the full scheduler grid for the differential tests.
var allSchedulers = []kplex.SchedulerStyle{
	kplex.SchedulerStages, kplex.SchedulerGlobalQueue, kplex.SchedulerSteal,
}

func TestSchedulersMatchOracle(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"planted", gen.Planted(gen.PlantedConfig{
			N: 70, BackgroundP: 0.04, Communities: 4, CommSize: 9,
			DropPerV: 1, Overlap: 2, Seed: 71,
		})},
		{"sbm", gen.SBM(gen.SBMConfig{
			BlockSizes: []int{18, 16, 14}, PIn: 0.7, POut: 0.06, Seed: 72,
		})},
	}
	kqs := []struct{ k, q int }{{2, 4}, {3, 5}}
	if testing.Short() {
		kqs = kqs[:1]
	}
	for _, gc := range graphs {
		for _, kq := range kqs {
			want := baseline.NaiveEnumerate(gc.g, kq.k, kq.q)
			canonicalize(want)
			for _, part := range []kplex.PartitionStyle{kplex.PartitionSubtasks, kplex.PartitionWhole2Hop} {
				for _, sched := range allSchedulers {
					name := fmt.Sprintf("%s/k%dq%d/%v/%v", gc.name, kq.k, kq.q, part, sched)
					t.Run(name, func(t *testing.T) {
						opts := kplex.NewOptions(kq.k, kq.q)
						opts.Threads = 3
						opts.TaskTimeout = 30 * time.Microsecond
						opts.Partition = part
						opts.Scheduler = sched
						got := collect(t, gc.g, opts)
						if len(got) != len(want) {
							t.Fatalf("count %d, oracle %d", len(got), len(want))
						}
						if !equalSets(got, want) {
							t.Fatalf("plex set diverges from oracle")
						}
					})
				}
			}
		}
	}
}

// TestSchedulersAgreeOnLargerGraph cross-checks the three schedulers
// against each other (and the sequential run) on a graph too big for the
// oracle: identical counts and identical sorted plex sets across thread
// counts and timeout settings.
func TestSchedulersAgreeOnLargerGraph(t *testing.T) {
	n := 600
	if testing.Short() {
		n = 220
	}
	g := gen.ChungLu(n, 16, 2.2, 55)
	const k, q = 2, 8

	want := collect(t, g, kplex.NewOptions(k, q))
	if len(want) == 0 {
		t.Fatal("test graph has no results")
	}

	threadGrid := []int{2, 4}
	tauGrid := []time.Duration{0, 50 * time.Microsecond}
	if testing.Short() {
		threadGrid = threadGrid[1:]
	}
	for _, threads := range threadGrid {
		for _, tau := range tauGrid {
			for _, sched := range allSchedulers {
				opts := kplex.NewOptions(k, q)
				opts.Threads = threads
				opts.TaskTimeout = tau
				opts.Scheduler = sched
				got := collect(t, g, opts)
				if !equalSets(got, want) {
					t.Errorf("threads=%d tau=%v sched=%v: plex set diverges (got %d, want %d)",
						threads, tau, sched, len(got), len(want))
				}
			}
		}
	}
}
