package kplex

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/graph"
)

// Serialized Prepared handles. The catalog persists warm run prologues
// across restarts keyed by source-graph digest × (K, Q, UseCTCP); this
// file defines the frame: magic, version, the options cell, the source
// digest, the graph-layer payload, and a trailing CRC-32C over everything
// before it. Loading a prologue is pure I/O plus validation — no O(n+m)
// recompute — which is what turns a kplexd restart into a warm start.

var preparedMagic = [8]byte{'K', 'P', 'L', 'X', 'P', 'R', 'P', '1'}

const preparedVersion = 1

var preparedCRCTable = crc32.MakeTable(crc32.Castagnoli)

// MarshalPrepared serialises a handle together with the digest of the
// source graph it was prepared from.
func MarshalPrepared(p *Prepared, sourceDigest [32]byte) []byte {
	out := make([]byte, 0, 1<<16)
	out = append(out, preparedMagic[:]...)
	var buf [binary.MaxVarintLen64]byte
	for _, v := range []uint64{preparedVersion, uint64(p.k), uint64(p.q)} {
		w := binary.PutUvarint(buf[:], v)
		out = append(out, buf[:w]...)
	}
	if p.useCTCP {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = append(out, sourceDigest[:]...)
	out = graph.EncodePrepared(out, p.pg)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(out, preparedCRCTable))
	return append(out, crc[:]...)
}

// UnmarshalPrepared parses a serialized handle, returning it along with
// the source-graph digest it was prepared from. The caller (the catalog
// path) must check the digest against the graph it intends to serve —
// a prologue for different graph content silently enumerates a different
// decomposition.
func UnmarshalPrepared(data []byte) (*Prepared, [32]byte, error) {
	var zero [32]byte
	if len(data) < len(preparedMagic)+4 {
		return nil, zero, fmt.Errorf("kplex: prepared file too short (%d bytes)", len(data))
	}
	if [8]byte(data[:8]) != preparedMagic {
		return nil, zero, fmt.Errorf("kplex: not a prepared-prologue file (magic %q)", data[:8])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.Checksum(body, preparedCRCTable); got != want {
		return nil, zero, fmt.Errorf("kplex: prepared file CRC mismatch (file %08x, computed %08x)", got, want)
	}
	pos := 8
	read := func() (uint64, error) {
		v, w := binary.Uvarint(body[pos:])
		if w <= 0 {
			return 0, fmt.Errorf("kplex: prepared file truncated at byte %d", pos)
		}
		pos += w
		return v, nil
	}
	ver, err := read()
	if err != nil {
		return nil, zero, err
	}
	if ver != preparedVersion {
		return nil, zero, fmt.Errorf("kplex: prepared file version %d unsupported (have %d)", ver, preparedVersion)
	}
	k64, err := read()
	if err != nil {
		return nil, zero, err
	}
	q64, err := read()
	if err != nil {
		return nil, zero, err
	}
	if pos+1+32 > len(body) {
		return nil, zero, fmt.Errorf("kplex: prepared file truncated in header")
	}
	ctcp := body[pos] != 0
	pos++
	var digest [32]byte
	copy(digest[:], body[pos:pos+32])
	pos += 32
	pg, err := graph.DecodePrepared(body[pos:])
	if err != nil {
		return nil, zero, err
	}
	p := &Prepared{k: int(k64), q: int(q64), useCTCP: ctcp, pg: pg}
	opts := Options{K: p.k, Q: p.q}
	if err := opts.Validate(); err != nil {
		return nil, zero, fmt.Errorf("kplex: prepared file carries invalid options cell: %w", err)
	}
	return p, digest, nil
}
