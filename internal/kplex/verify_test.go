package kplex

import (
	"testing"

	"repro/internal/graph"
)

func tinyGraph(t *testing.T, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	var b graph.Builder
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIsKPlexBasics(t *testing.T) {
	g := tinyGraph(t, 5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}})
	cases := []struct {
		P    []int
		k    int
		want bool
	}{
		{nil, 1, true},            // empty set
		{[]int{2}, 1, true},       // singleton
		{[]int{0, 1, 2}, 1, true}, // triangle is a clique
		{[]int{0, 1, 2, 3}, 1, false},
		// Vertex 3 is adjacent only to 2 inside {0,1,2,3}: d_P(3) = 1 is
		// below |P|-k = 2, so the set is not a 2-plex.
		{[]int{0, 1, 2, 3}, 2, false},
	}
	for _, c := range cases {
		if got := IsKPlex(g, c.P, c.k); got != c.want {
			t.Errorf("IsKPlex(%v, k=%d) = %v, want %v", c.P, c.k, got, c.want)
		}
	}
	// k=3 admits it: vertex 3 misses 0, 1 and itself (3 = k).
	if !IsKPlex(g, []int{0, 1, 2, 3}, 3) {
		t.Error("IsKPlex({0,1,2,3}, k=3) = false, want true")
	}
}

func TestIsKPlexRejectsBadInput(t *testing.T) {
	g := tinyGraph(t, 3, [][2]int{{0, 1}, {1, 2}})
	if IsKPlex(g, []int{0, 0}, 2) {
		t.Error("duplicate vertices accepted")
	}
	if IsKPlex(g, []int{0, 5}, 2) {
		t.Error("out-of-range vertex accepted")
	}
	if IsKPlex(g, []int{-1}, 2) {
		t.Error("negative vertex accepted")
	}
}

func TestCanExtendAndMaximal(t *testing.T) {
	// Path 0-1-2-3.
	g := tinyGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	// {0,1} as a 1-plex (edge/clique): extendable? Adding 2 gives a path of
	// 3 which is not a clique; so {0,1} is maximal as a clique... vertex 2
	// adjacent to 1 but not 0.
	if CanExtend(g, []int{0, 1}, 1) {
		t.Error("{0,1} should be a maximal clique")
	}
	// {1,2} as a 2-plex: {0,1,2} is a 2-plex (0 misses 2 + itself = 2),
	// so {1,2} is extendable.
	if !CanExtend(g, []int{1, 2}, 2) {
		t.Error("{1,2} should be extendable under k=2")
	}
	if !IsMaximalKPlex(g, []int{0, 1}, 1) {
		t.Error("{0,1} should be a maximal 1-plex")
	}
	if IsMaximalKPlex(g, []int{1, 2}, 2) {
		t.Error("{1,2} should not be maximal under k=2")
	}
	if IsMaximalKPlex(g, []int{0, 3}, 1) {
		t.Error("{0,3} is not even a 1-plex")
	}
}

func TestCanExtendSmallPBranch(t *testing.T) {
	// With |P| <= k, extenders may be non-adjacent to all of P; the
	// whole-graph scan branch must find them. Graph: two isolated vertices
	// plus an edge. P={0} with k=2 extends with the isolated vertex 3
	// ({0,3} is a 2-plex: each misses the other + itself = 2).
	g := tinyGraph(t, 4, [][2]int{{0, 1}})
	if !CanExtend(g, []int{0}, 2) {
		t.Error("singleton should extend under k=2 even via non-neighbours")
	}
}
