package kplex

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sink"
)

// collectAll is the EnumerateAll ground truth: a sequential run whose
// OnPlex appends every plex.
func collectAll(t *testing.T, g *graph.Graph, k, q int) [][]int {
	t.Helper()
	var out [][]int
	opts := NewOptions(k, q)
	opts.OnPlex = func(p []int) { out = append(out, append([]int(nil), p...)) }
	if _, err := Run(context.Background(), g, opts); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStreamMatchesEnumerateAll is the differential test for the streaming
// path: across all three schedulers (plus the pure sequential path),
// RunStream must yield exactly the plex set of the callback-based
// enumeration — same sets, same multiplicity, order free.
func TestStreamMatchesEnumerateAll(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"planted", gen.Planted(gen.PlantedConfig{
			N: 120, BackgroundP: 0.02, Communities: 4, CommSize: 12,
			DropPerV: 1, Overlap: 2, Seed: 41,
		})},
		{"chunglu", gen.ChungLu(200, 12, 2.3, 46)},
	}
	schedulers := []struct {
		name    string
		threads int
		sched   SchedulerStyle
	}{
		{"sequential", 1, SchedulerStages},
		{"stages", 4, SchedulerStages},
		{"global-queue", 4, SchedulerGlobalQueue},
		{"steal", 4, SchedulerSteal},
	}
	const k, q = 2, 6
	for _, tg := range graphs {
		want := collectAll(t, tg.g, k, q)
		for _, sc := range schedulers {
			t.Run(tg.name+"/"+sc.name, func(t *testing.T) {
				opts := NewOptions(k, q)
				opts.Threads = sc.threads
				opts.Scheduler = sc.sched
				if sc.threads > 1 {
					opts.TaskTimeout = 50 * time.Microsecond // exercise splitting
				}
				opts.StreamBuffer = 8 // small: force worker backpressure
				h, err := RunStream(context.Background(), tg.g, opts)
				if err != nil {
					t.Fatal(err)
				}
				var got [][]int
				for p := range h.C() {
					got = append(got, p)
				}
				res, err := h.Wait()
				if err != nil {
					t.Fatal(err)
				}
				if int64(len(got)) != res.Count {
					t.Errorf("streamed %d plexes, Result.Count=%d", len(got), res.Count)
				}
				if !sink.Equal(got, want) {
					t.Errorf("stream yielded %d plexes, EnumerateAll %d; sets differ",
						len(got), len(want))
				}
			})
		}
	}
}

// waitGoroutines polls until the goroutine count drops back to within
// slack of base, failing after a deadline. The retry loop absorbs runtime
// bookkeeping goroutines that exit asynchronously.
func waitGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d goroutines, baseline %d (+%d slack)\n%s",
				n, base, slack, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamCancelMidStream abandons a stream after a handful of results:
// the channel must close promptly, Wait must report the context error, and
// no engine goroutine may survive — with every scheduler.
func TestStreamCancelMidStream(t *testing.T) {
	g := gen.ChungLu(200, 12, 2.3, 46) // 6683 plexes at k=3 q=8: plenty to abandon
	for _, sc := range []struct {
		name    string
		threads int
		sched   SchedulerStyle
	}{
		{"sequential", 1, SchedulerStages},
		{"stages", 4, SchedulerStages},
		{"global-queue", 4, SchedulerGlobalQueue},
		{"steal", 4, SchedulerSteal},
	} {
		t.Run(sc.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			opts := NewOptions(3, 8)
			opts.Threads = sc.threads
			opts.Scheduler = sc.sched
			opts.StreamBuffer = 2 // keep workers blocked on the channel
			h, err := RunStream(ctx, g, opts)
			if err != nil {
				t.Fatal(err)
			}
			got := 0
			for range h.C() {
				got++
				if got == 10 {
					cancel()
					break
				}
			}
			if got < 10 {
				t.Fatalf("stream closed after %d plexes, wanted at least 10", got)
			}
			// Stop reading entirely: the engine must still unwind.
			if _, err := h.Wait(); err == nil {
				t.Error("cancelled stream reported a nil run error")
			}
			cancel()
			waitGoroutines(t, base, 2)
			// The channel must be closed (drain whatever was buffered).
			deadline := time.After(2 * time.Second)
			for {
				select {
				case _, ok := <-h.C():
					if !ok {
						return
					}
				case <-deadline:
					t.Fatal("channel not closed after cancellation")
				}
			}
		})
	}
}

// TestStreamPreCancelled starts a stream under an already-dead context:
// no plex may be delivered and the channel must close immediately.
func TestStreamPreCancelled(t *testing.T) {
	g := gen.GNP(70, 0.22, 44)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h, err := RunStream(ctx, g, NewOptions(2, 6))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range h.C() {
		n++
	}
	if n != 0 {
		t.Errorf("pre-cancelled stream delivered %d plexes", n)
	}
	if _, err := h.Wait(); err != context.Canceled {
		t.Errorf("Wait error = %v, want context.Canceled", err)
	}
}

// TestStreamValidation: option errors are synchronous, and OnPlex is
// rejected because the streaming path owns it.
func TestStreamValidation(t *testing.T) {
	g := gen.GNP(20, 0.2, 1)
	if _, err := RunStream(context.Background(), g, NewOptions(0, 5)); err == nil {
		t.Error("invalid options accepted")
	}
	opts := NewOptions(2, 6)
	opts.StreamBuffer = -1
	if _, err := RunStream(context.Background(), g, opts); err == nil {
		t.Error("negative StreamBuffer accepted")
	}
	opts = NewOptions(2, 6)
	opts.OnPlex = func([]int) {}
	if _, err := RunStream(context.Background(), g, opts); err == nil {
		t.Error("OnPlex accepted on the streaming path")
	}
}
