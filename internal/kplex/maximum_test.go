package kplex

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestFindMaximumKPlexOnKnownGraphs(t *testing.T) {
	// K6: the maximum k-plex is the whole graph for every k.
	var b graph.Builder
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(i, j)
		}
	}
	k6, _ := b.Build(6)
	for k := 1; k <= 2; k++ {
		p, err := FindMaximumKPlex(context.Background(), k6, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(p) != 6 {
			t.Fatalf("k=%d: max plex size %d, want 6", k, len(p))
		}
		if !IsKPlex(k6, p, k) {
			t.Fatalf("k=%d: returned set is not a k-plex", k)
		}
	}

	// A path: the largest 2-plex with >= 3 vertices is a sub-path of 3
	// vertices (middle vertex adjacent to both ends; ends miss each other
	// plus themselves = 2).
	var pb graph.Builder
	for i := 0; i < 5; i++ {
		pb.AddEdge(i, i+1)
	}
	path, _ := pb.Build(6)
	p, err := FindMaximumKPlex(context.Background(), path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 {
		t.Fatalf("path max 2-plex size = %d (%v), want 3", len(p), p)
	}
}

// TestFindMaximumMatchesBruteForce cross-checks against the oracle: the
// maximum size over all maximal k-plexes with q = 2k-1.
func TestFindMaximumMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := gen.GNP(16, 0.45, 700+seed)
		for k := 1; k <= 3; k++ {
			relabelledBest := 0
			all := naiveAll(t, g, k, 2*k-1)
			for _, p := range all {
				if len(p) > relabelledBest {
					relabelledBest = len(p)
				}
			}
			got, err := FindMaximumKPlex(context.Background(), g, k)
			if err != nil {
				t.Fatal(err)
			}
			gotSize := len(got)
			if relabelledBest == 0 {
				if gotSize != 0 {
					t.Fatalf("seed=%d k=%d: found %v, oracle says none", seed, k, got)
				}
				continue
			}
			if gotSize != relabelledBest {
				t.Fatalf("seed=%d k=%d: max size %d, oracle %d", seed, k, gotSize, relabelledBest)
			}
			if !IsKPlex(g, got, k) {
				t.Fatalf("seed=%d k=%d: result is not a k-plex", seed, k)
			}
		}
	}
}

// naiveAll enumerates maximal k-plexes >= q with the engine itself in its
// most conservative configuration (all variants are oracle-verified
// elsewhere); using it here keeps this test fast.
func naiveAll(t *testing.T, g *graph.Graph, k, q int) [][]int {
	t.Helper()
	var out [][]int
	opts := BasicOptions(k, q)
	opts.OnPlex = func(p []int) { out = append(out, append([]int(nil), p...)) }
	if _, err := Run(context.Background(), g, opts); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFindMaximumRejectsBadK(t *testing.T) {
	g := gen.GNP(5, 0.5, 1)
	if _, err := FindMaximumKPlex(context.Background(), g, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestFirstOnlyStopsEarly(t *testing.T) {
	g := gen.ChungLu(1500, 20, 2.2, 51)
	full := mustRun(t, g, NewOptions(2, 8))
	opts := NewOptions(2, 8)
	opts.FirstOnly = true
	first := mustRun(t, g, opts)
	if first.Count < 1 {
		t.Fatal("FirstOnly found nothing although plexes exist")
	}
	if full.Count > 100 && first.Stats.Branches >= full.Stats.Branches {
		t.Fatalf("FirstOnly did not stop early: %d branches vs %d",
			first.Stats.Branches, full.Stats.Branches)
	}
}
