package kplex

import (
	"testing"

	"repro/internal/bitset"
)

// figure3ExactSeedGraph reconstructs the paper's Figure 3 so that all three
// worked examples hold simultaneously (the reconstruction in bound_test.go
// predates Example 4.1's constraints):
//
//   - Example 5.4 needs d_Gi(v1) = 3 and d_Gi(v3) = 2;
//   - Example 4.1 needs M0 = {v3} in G[P∪C] and N̄_C(v3) = {v5, v7},
//     so v3 is adjacent to v2 (and one vertex outside P∪C: v4);
//   - Example 4.1's re-pick must choose v7, so v5 needs a higher degree in
//     G[P∪C] than v7: v5 is adjacent to v1, v2 and v7; v7 to v1 and v5;
//   - Example 5.6 needs N̄_P(v7) = {v3}, N_C(v7) = {v5}, N̄_P(v5) = {v3}.
//
// Local ids: v1=0, v2=1, v3=2, v4=3, v5=4, v6=5, v7=6.
func figure3ExactSeedGraph() *seedGraph {
	const n = 7
	sg := &seedGraph{nv: n, pWords: (n + 63) / 64, nAll: n, orig: make([]int32, n)}
	sg.adj = make([]*bitset.Set, n)
	for i := range sg.adj {
		sg.adj[i] = bitset.New(n)
	}
	edge := func(a, b int) {
		sg.adj[a].Add(b)
		sg.adj[b].Add(a)
	}
	edge(0, 1) // v1-v2
	edge(0, 4) // v1-v5
	edge(0, 6) // v1-v7
	edge(1, 2) // v2-v3
	edge(1, 4) // v2-v5
	edge(2, 3) // v3-v4
	edge(4, 6) // v5-v7
	sg.degGi = make([]int, n)
	for i := 0; i < n; i++ {
		sg.degGi[i] = sg.adj[i].Count()
	}
	return sg
}

// TestExample41PivotSelection walks the paper's Example 4.1 with k = 2,
// P = {v1, v3}, C = {v2, v5, v7}: the minimum-degree pivot lands on v3 ∈ P
// (M0 = M = {v3}), and the re-pick among v3's C non-neighbours {v5, v7}
// must select v7.
func TestExample41PivotSelection(t *testing.T) {
	sg := figure3ExactSeedGraph()
	const k, sizeP = 2, 2

	P := bitset.New(sg.nAll)
	P.Add(0) // v1
	P.Add(2) // v3
	C := bitset.New(sg.nAll)
	C.Add(1) // v2
	C.Add(4) // v5
	C.Add(6) // v7

	w := &worker{eng: &engine{opts: NewOptions(k, 3)}}
	w.prepare(sg)

	// Fill the degree state exactly as branch() does before pivoting.
	pc := P.Clone()
	pc.Or(C)
	minDeg, argMin := sg.nAll, -1
	pc.ForEach(func(v int) {
		w.degP[v] = sg.adj[v].IntersectionCount(P)
		w.degPC[v] = sg.adj[v].IntersectionCount(pc)
		if w.degPC[v] < minDeg {
			minDeg, argMin = w.degPC[v], v
		}
	})

	// Lines 7-9: the unique minimum-degree vertex is v3 (local 2), in P.
	if argMin != 2 {
		t.Fatalf("M0 pivot = local %d, want 2 (v3)", argMin)
	}
	count := 0
	pc.ForEach(func(v int) {
		if w.degPC[v] == minDeg {
			count++
		}
	})
	if count != 1 {
		t.Fatalf("M0 has %d vertices, want exactly {v3}", count)
	}

	// Line 16: re-pick from N̄_C(v3) = {v5, v7} (v2 is v3's neighbour).
	if sg.adj[2].Contains(4) || sg.adj[2].Contains(6) || !sg.adj[2].Contains(1) {
		t.Fatal("reconstruction broken: N̄_C(v3) should be {v5, v7}")
	}
	if got := w.repick(sg, C, P, sizeP, 2); got != 6 {
		t.Fatalf("re-picked pivot = local %d, want 6 (v7)", got)
	}
}

// The exact reconstruction must also satisfy Examples 5.4 and 5.6, pinning
// all three worked examples to one graph.
func TestFigure3ExactSatisfiesBoundExamples(t *testing.T) {
	sg := figure3ExactSeedGraph()
	const k = 2

	// Example 5.4: min(d(v1), d(v3)) + k = min(3, 2) + 2 = 4.
	if sg.degGi[0] != 3 || sg.degGi[2] != 2 {
		t.Fatalf("degrees d(v1)=%d d(v3)=%d, want 3 and 2", sg.degGi[0], sg.degGi[2])
	}

	// Example 5.6: support bound for pivot v7 is |P| + sup(v7) + |K| = 3.
	P := bitset.New(sg.nAll)
	P.Add(0)
	P.Add(2)
	C := bitset.New(sg.nAll)
	C.Add(1)
	C.Add(4)
	C.Add(6)
	degP := make([]int, sg.nAll)
	for _, v := range []int{0, 1, 2, 4, 6} {
		degP[v] = sg.adj[v].IntersectionCount(P)
	}
	var bs boundScratch
	if ub := bs.supportBound(sg, k, 2, P, C, degP, 6, false); ub != 3 {
		t.Fatalf("Example 5.6 bound on exact graph = %d, want 3", ub)
	}
}
