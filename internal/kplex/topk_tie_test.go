package kplex

// Tie-semantics grid for top-k reporting. EnumerateTopK and the batch
// layer share topkOffer/topkSorted, and this file pins the semantics both
// depend on: among size-tied plexes the lexicographically smallest vertex
// sequences are kept, reported size-descending then ascending — and the
// answer is invariant to discovery order. That invariance is what lets the
// dense-kernel seed path, the merge path, and all three schedulers (each
// of which permutes discovery order) report byte-identical top-k lists.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/gen"
)

// TestTopkOfferOrderInvariance feeds a crafted, heavily size-tied plex set
// to topkOffer in many shuffled discovery orders and requires the same
// topkSorted answer every time.
func TestTopkOfferOrderInvariance(t *testing.T) {
	// 12 sets: four sizes × three size-tied members each.
	var plexes [][]int
	for size := 3; size <= 6; size++ {
		for v := 0; v < 3; v++ {
			p := make([]int, size)
			for i := range p {
				p[i] = v*10 + i
			}
			plexes = append(plexes, p)
		}
	}
	for _, topN := range []int{1, 2, 4, 5, 11, 12, 20} {
		var want [][]int
		r := rand.New(rand.NewSource(42))
		for trial := 0; trial < 50; trial++ {
			order := r.Perm(len(plexes))
			h := make(plexHeap, 0, topN)
			for _, idx := range order {
				h.topkOffer(plexes[idx], topN)
			}
			got := h.topkSorted()
			if want == nil {
				want = got
				// Sanity: sizes descending, ties ascending lexicographically.
				for i := 1; i < len(want); i++ {
					a, b := want[i-1], want[i]
					if len(a) < len(b) || (len(a) == len(b) && lexGreater(a, b)) {
						t.Fatalf("topN=%d: unsorted output at %d: %v before %v", topN, i, a, b)
					}
				}
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("topN=%d trial %d: discovery order changed the answer:\ngot  %v\nwant %v", topN, trial, got, want)
			}
		}
	}
}

// TestTopKTieGrid is the end-to-end grid: corpus graphs × (k, q) × the
// three schedulers × dense/merge seed kernels, each compared member-wise
// against the batch path. regular-flat and ws-ring produce many size-tied
// plexes by construction, so a tie-order drift in any execution path shows
// up as a list mismatch here.
func TestTopKTieGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep")
	}
	graphs := []string{"regular-flat", "ws-ring", "gnp-dense"}
	cells := [][2]int{{2, 5}, {3, 7}}
	const topN = 8

	for _, name := range graphs {
		g := gen.CorpusGraphByName(name).Build()
		for _, cell := range cells {
			k, q := cell[0], cell[1]
			var want [][]int
			for _, sched := range []SchedulerStyle{SchedulerStages, SchedulerGlobalQueue, SchedulerSteal} {
				for _, crossover := range []int{0, -1} { // dense default vs merge-only
					label := fmt.Sprintf("%s k=%d q=%d sched=%v crossover=%d", name, k, q, sched, crossover)
					opts := NewOptions(k, q)
					opts.Threads = 4
					opts.Scheduler = sched
					opts.TaskTimeout = 100 * time.Microsecond // force splitting so order really varies
					opts.DenseCrossover = crossover
					top, _, err := EnumerateTopK(context.Background(), g, opts, topN)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if want == nil {
						want = top
					} else if !reflect.DeepEqual(top, want) {
						t.Fatalf("%s: top-k drifted:\ngot  %v\nwant %v", label, top, want)
					}

					// Batch path over the same cell must agree exactly.
					bopts := NewOptions(k, q)
					bopts.Threads = 4
					bopts.Scheduler = sched
					bopts.DenseCrossover = crossover
					res, err := RunBatch(context.Background(), g, []BatchQuery{
						{Opts: bopts, Mode: BatchTopK, TopN: topN},
					})
					if err != nil {
						t.Fatalf("%s batch: %v", label, err)
					}
					if !reflect.DeepEqual(res[0].TopK, want) {
						t.Fatalf("%s: batch top-k disagrees with EnumerateTopK:\ngot  %v\nwant %v", label, res[0].TopK, want)
					}
				}
			}
		}
	}
}
