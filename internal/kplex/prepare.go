package kplex

// The prepared-graph layer. Every enumeration run begins with the same
// O(n+m) prologue — the optional CTCP reduction, the (q-k)-core
// restriction (Theorem 3.5) and the degeneracy relabelling — and the
// result depends only on the graph content and the result-defining options
// (K, Q, UseCTCP). Prepare computes that prologue once into an immutable
// handle; RunPrepared (and the streaming / top-k / histogram variants)
// enumerate against the handle, so a service answering repeated queries
// over resident graphs pays the prologue once per (graph, K, Q, UseCTCP)
// cell instead of once per query. Run, RunStream, SeedSpace and friends
// are thin wrappers over this layer, which is what guarantees checkpoint
// seed ids can never drift between the one-shot and the prepared paths.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/graph"
)

// Prepared is the reusable prologue of an enumeration run: the reduced,
// degeneracy-relabelled working graph together with the options cell it
// was built for. A handle is immutable and safe for concurrent use by any
// number of runs. Obtain one with Prepare.
type Prepared struct {
	k       int
	q       int
	useCTCP bool
	pg      *graph.Prepared

	// Cost-model summary, computed lazily (see CostFeatures).
	costOnce sync.Once
	costF    CostFeatures
}

// Prepare computes the run prologue for g under opts. Only the
// result-defining reduction options matter (K, Q, UseCTCP); execution
// knobs may differ freely between the runs that later share the handle.
func Prepare(g graph.CSR, opts Options) (*Prepared, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	work := g
	if opts.UseCTCP {
		work = ReduceCTCP(g, opts.K, opts.Q)
	}
	return &Prepared{
		k:       opts.K,
		q:       opts.Q,
		useCTCP: opts.UseCTCP,
		pg:      graph.Prepare(work, opts.Q-opts.K),
	}, nil
}

// SeedSpace returns the number of seed subproblems a run over this handle
// decomposes into. Seed ids reported by Options.OnSeedDone and accepted by
// Options.SkipSeeds lie in [0, SeedSpace()).
func (p *Prepared) SeedSpace() int { return p.pg.N() }

// K returns the k the handle was prepared for.
func (p *Prepared) K() int { return p.k }

// Q returns the q the handle was prepared for.
func (p *Prepared) Q() int { return p.q }

// UseCTCP reports whether the handle includes the CTCP reduction.
func (p *Prepared) UseCTCP() bool { return p.useCTCP }

// compatible rejects run options whose reduction cell differs from the one
// the handle was prepared for — running them would silently enumerate a
// different decomposition (and corrupt any seed-id checkpoints).
func (p *Prepared) compatible(o *Options) error {
	if o.K != p.k || o.Q != p.q || o.UseCTCP != p.useCTCP {
		return fmt.Errorf("kplex: prepared for K=%d Q=%d UseCTCP=%v but run options say K=%d Q=%d UseCTCP=%v; Prepare a matching handle",
			p.k, p.q, p.useCTCP, o.K, o.Q, o.UseCTCP)
	}
	return nil
}

// RunPrepared enumerates all maximal k-plexes with at least opts.Q
// vertices against a prepared handle, skipping the run prologue entirely.
// opts must match the handle's K, Q and UseCTCP; everything else (threads,
// scheduler, bounds, hooks, skip sets) is free to vary per run.
func RunPrepared(ctx context.Context, p *Prepared, opts Options) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if err := p.compatible(&opts); err != nil {
		return Result{}, err
	}
	// A context that is already dead must not start the run at all: the
	// watcher flips the stop flag asynchronously, which would let an
	// arbitrary prefix of the enumeration execute before the first poll.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	start := time.Now()

	relab := p.pg.G()
	if m := opts.SkipSeeds.Max(); m >= relab.N() {
		return Result{}, fmt.Errorf("kplex: SkipSeeds contains seed %d but this run has only %d seed groups (was the checkpoint written against a different graph or different K/Q/UseCTCP?)", m, relab.N())
	}

	e := &engine{opts: opts, g: relab, prep: p.pg, toInput: p.pg.ToInputIDs(), extStop: opts.earlyStop}
	threads := opts.Threads
	if threads < 1 {
		threads = 1
	}
	if threads > relab.N() && relab.N() > 0 {
		threads = relab.N()
	}
	if threads < 1 {
		threads = 1
	}

	var stats Stats
	switch {
	case threads == 1 && opts.TaskTimeout == 0:
		stats = e.runSequential(ctx)
	case opts.Scheduler == SchedulerGlobalQueue:
		stats = e.runGlobalQueue(ctx, threads)
	case opts.Scheduler == SchedulerSteal:
		stats = e.runSteal(ctx, threads)
	default:
		stats = e.runParallel(ctx, threads)
	}

	res := Result{Count: stats.Emitted, Stats: stats, Elapsed: time.Since(start)}
	if ctx != nil && ctx.Err() != nil {
		return res, ctx.Err()
	}
	return res, nil
}
