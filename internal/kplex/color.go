package kplex

// Coloring-based upper bound, the natural extension from the related work
// the paper reviews (Maplex, Zhou et al. AAAI 2021; refined by RGB). A
// greedy proper coloring of G[C] partitions the candidates into independent
// sets; a k-plex T containing P can take at most k vertices from each
// independent set I, because every u ∈ I ∩ T is non-adjacent to the other
// |I ∩ T| - 1 members and to itself, forcing d̄_T(u) >= |I ∩ T| <= k.
// The bound is therefore |P ∪ {v_p}| + Σ_classes min(|class|, k).
//
// Compared with the paper's Theorem 5.5 bound it inspects pairwise
// structure among candidates rather than their support in P, so it can be
// tighter on candidate sets with large independent parts — at the cost of
// an O(|C|²/64) coloring per recursion, which is the trade-off the Table 5
// extension rows quantify.

import "repro/internal/bitset"

// colorScratch holds reusable buffers for the greedy coloring.
type colorScratch struct {
	colorOf   []int // color assigned to a candidate in the current call
	stamp     []int // stamp[c] == epoch marks color c forbidden
	classSize []int
	colored   *bitset.Set
	epoch     int
}

func (cs *colorScratch) resize(nAll int) {
	if len(cs.colorOf) < nAll {
		cs.colorOf = make([]int, nAll)
		cs.stamp = make([]int, nAll+1)
		cs.colored = bitset.New(nAll)
	}
}

// colorBound returns the coloring upper bound on the size of any k-plex
// containing P ∪ {vp}, coloring the candidates C − {vp}.
func (cs *colorScratch) colorBound(sg *seedGraph, k, sizeP int, C *bitset.Set, vp int) int {
	cs.resize(sg.nAll)
	cs.classSize = cs.classSize[:0]
	colored := cs.colored
	colored.Clear()

	C.ForEach(func(w int) {
		if w == vp {
			return
		}
		cs.epoch++
		aw := sg.adj[w]
		colored.ForEach(func(u int) {
			if aw.Contains(u) {
				cs.stamp[cs.colorOf[u]] = cs.epoch
			}
		})
		c := 0
		for c < len(cs.classSize) && cs.stamp[c] == cs.epoch {
			c++
		}
		if c == len(cs.classSize) {
			cs.classSize = append(cs.classSize, 0)
		}
		cs.classSize[c]++
		cs.colorOf[w] = c
		colored.Add(w)
	})

	sum := 0
	for _, s := range cs.classSize {
		if s > k {
			s = k
		}
		sum += s
	}
	return sizeP + 1 + sum
}
