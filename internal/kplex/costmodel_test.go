package kplex

import (
	"context"
	"fmt"
	"math"
	"os"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestCostFeatures pins the prologue summary on a hand-checkable graph: a
// 5-path 0-1-2-3-4 with k=1, q=2 reduces to itself, and the degeneracy
// orientation's later degrees are directly countable.
func TestCostFeatures(t *testing.T) {
	g := pathGraph(t, 5)
	p, err := Prepare(g, NewOptions(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	f := p.CostFeatures()
	if f.N != 5 || f.M != 4 {
		t.Fatalf("N,M = %d,%d want 5,4", f.N, f.M)
	}
	if f.K != 1 || f.Q != 2 {
		t.Fatalf("K,Q = %d,%d want 1,2", f.K, f.Q)
	}
	// Every vertex except the degeneracy-last one has at least one later
	// neighbour; need = q-k = 1.
	if f.ActiveSeeds != 4 {
		t.Fatalf("ActiveSeeds = %d want 4", f.ActiveSeeds)
	}
	if f.MaxLaterDeg < 1 || f.MaxLaterDeg > 2 {
		t.Fatalf("MaxLaterDeg = %d want 1..2", f.MaxLaterDeg)
	}
	if f.AvgLaterDeg < 1 || f.AvgLaterDeg > 2 {
		t.Fatalf("AvgLaterDeg = %v want within [1,2]", f.AvgLaterDeg)
	}
	// Memoized: second call returns the identical summary.
	if p.CostFeatures() != f {
		t.Fatal("CostFeatures not memoized")
	}
}

// TestFitCostModelRecovers fits against noise-free synthetic samples drawn
// from a known model and checks the fit reproduces its predictions.
func TestFitCostModelRecovers(t *testing.T) {
	truth := CostModel{Coef: [costFeatureDim]float64{-10, 0.9, 1.5, 0.5, 0.8, 0.2}}
	var samples []CostSample
	for n := 50; n <= 3200; n *= 2 {
		for k := 1; k <= 3; k++ {
			f := CostFeatures{
				N: n, M: n * 7, K: k, Q: 2*k + n%5,
				ActiveSeeds: n / 2, AvgLaterDeg: 6.5, MaxLaterDeg: 20,
			}
			samples = append(samples, CostSample{F: f, Elapsed: truth.Predict(f)})
		}
	}
	m, err := FitCostModel(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		got, want := m.Predict(s.F).Seconds(), s.Elapsed.Seconds()
		if r := got / want; r < 0.5 || r > 2.0 {
			t.Fatalf("fit drifted: predict %v want %v (features %+v)", got, want, s.F)
		}
	}
}

func TestFitCostModelTooFewSamples(t *testing.T) {
	if _, err := FitCostModel(make([]CostSample, costFeatureDim-1)); err == nil {
		t.Fatal("want error for underdetermined sample set")
	}
}

// TestDefaultCostModelMonotone pins the routing-relevant directions of the
// built-in model: strictly more edges, a larger k, and more q-headroom must
// each predict a longer run. These are sign constraints on the fitted
// coefficients, so the test is deterministic.
func TestDefaultCostModelMonotone(t *testing.T) {
	base := CostFeatures{N: 1000, M: 8000, K: 2, Q: 8, ActiveSeeds: 600, AvgLaterDeg: 8, MaxLaterDeg: 30}
	pb := DefaultCostModel.Predict(base)

	more := base
	more.M *= 8
	more.AvgLaterDeg *= 2
	if DefaultCostModel.Predict(more) <= pb {
		t.Fatalf("denser graph predicted cheaper: %v <= %v", DefaultCostModel.Predict(more), pb)
	}
	harderK := base
	harderK.K, harderK.Q = 3, 9 // same headroom 2K-Q as (2, 8)... K up by 1
	harderK.Q = harderK.K*2 - (base.K*2 - base.Q)
	if DefaultCostModel.Predict(harderK) <= pb {
		t.Fatalf("larger k predicted cheaper: %v <= %v", DefaultCostModel.Predict(harderK), pb)
	}
	looser := base
	looser.Q-- // more headroom, weaker pruning
	if DefaultCostModel.Predict(looser) <= pb {
		t.Fatalf("looser q predicted cheaper: %v <= %v", DefaultCostModel.Predict(looser), pb)
	}
}

// TestDefaultCostModelSane checks the built-in model orders real corpus
// workloads usefully: over a sequential sweep it must rank the most
// expensive cell above the cheapest (predictions are routing signals, so
// ordering — not absolute scale — is the quality bar).
func TestDefaultCostModelSane(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep")
	}
	type obs struct {
		pred time.Duration
		real time.Duration
	}
	var all []obs
	for _, cg := range gen.Corpus()[:4] {
		g := cg.Build()
		for _, cell := range [][2]int{{2, 6}, {2, 10}} {
			opts := NewOptions(cell[0], cell[1])
			p, err := Prepare(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			if _, err := RunPrepared(context.Background(), p, opts); err != nil {
				t.Fatal(err)
			}
			all = append(all, obs{DefaultCostModel.Predict(p.CostFeatures()), time.Since(start)})
		}
	}
	// Rank correlation between predicted and observed must be positive:
	// count concordant vs discordant pairs among pairs whose observed
	// times differ by at least 2x (closer pairs are timing noise).
	conc, disc := 0, 0
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			ri, rj := all[i].real, all[j].real
			if ri == 0 || rj == 0 {
				continue
			}
			ratio := float64(ri) / float64(rj)
			if ratio < 2 && ratio > 0.5 {
				continue
			}
			if (ri > rj) == (all[i].pred > all[j].pred) {
				conc++
			} else {
				disc++
			}
		}
	}
	if conc+disc > 0 && conc <= disc {
		t.Fatalf("model ranks corpus cells no better than chance: %d concordant, %d discordant", conc, disc)
	}
}

// TestFitDefaultCostModel is the offline fitting harness behind
// DefaultCostModel: KPLEX_FIT_COST=1 go test -run TestFitDefaultCostModel -v
// sweeps the corpus sequentially, fits, and prints the coefficient block to
// paste into costmodel.go. Skipped in normal runs (it is a tool, not a
// test).
func TestFitDefaultCostModel(t *testing.T) {
	if os.Getenv("KPLEX_FIT_COST") == "" {
		t.Skip("set KPLEX_FIT_COST=1 to run the fitting sweep")
	}
	// The corpus alone is too homogeneous in size to separate the N, M and
	// density axes, so the sweep adds a size ladder of GNP and BA graphs.
	type sweepGraph struct {
		name  string
		build func() *graph.Graph
	}
	var sweep []sweepGraph
	for _, cg := range gen.Corpus() {
		sweep = append(sweep, sweepGraph{cg.Name, cg.Build})
	}
	for _, n := range []int{150, 400, 1000, 2500} {
		n := n
		sweep = append(sweep,
			sweepGraph{fmt.Sprintf("gnp-%d", n), func() *graph.Graph { return gen.GNP(n, 18/float64(n), int64(n)) }},
			sweepGraph{fmt.Sprintf("gnp-dense-%d", n), func() *graph.Graph { return gen.GNP(n, 45/float64(n), int64(n)+1) }},
			sweepGraph{fmt.Sprintf("ba-%d", n), func() *graph.Graph { return gen.BarabasiAlbert(n, 8, int64(n)+2) }},
		)
	}
	var samples []CostSample
	for _, cg := range sweep {
		g := cg.build()
		for _, cell := range [][2]int{{1, 3}, {1, 5}, {2, 5}, {2, 6}, {2, 8}, {2, 10}, {3, 7}, {3, 9}, {3, 12}, {4, 10}, {4, 14}} {
			opts := NewOptions(cell[0], cell[1])
			p, err := Prepare(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			// Median of 3 to tame scheduling noise.
			best := time.Duration(math.MaxInt64)
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				if _, err := RunPrepared(context.Background(), p, opts); err != nil {
					t.Fatal(err)
				}
				if d := time.Since(start); d < best {
					best = d
				}
			}
			samples = append(samples, CostSample{F: p.CostFeatures(), Elapsed: best})
			t.Logf("%s k=%d q=%d: %v (features %+v)", cg.name, cell[0], cell[1], best, p.CostFeatures())
		}
	}
	m, err := FitCostModel(samples)
	if err != nil {
		t.Fatal(err)
	}
	var resid, n float64
	for _, s := range samples {
		d := math.Log(m.Predict(s.F).Seconds()) - math.Log(s.Elapsed.Seconds())
		resid += d * d
		n++
	}
	t.Logf("rms log-residual: %.3f over %d samples", math.Sqrt(resid/n), len(samples))
	out := "Coef: [costFeatureDim]float64{\n"
	for _, c := range m.Coef {
		out += fmt.Sprintf("\t%.4f,\n", c)
	}
	t.Logf("fitted model:\n%s}", out)
}
