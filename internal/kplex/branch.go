package kplex

import (
	"sort"
	"time"

	"repro/internal/bitset"
)

// task is one unit of branch-and-bound work: mine the set-enumeration
// subtree rooted at P, with candidate set C and exclusive set X, inside the
// shared seed subgraph sg. Tasks are what the parallel engine queues,
// steals, and what the timeout mechanism materialises.
type task struct {
	sg    *seedGraph
	P     *bitset.Set
	C     *bitset.Set
	X     *bitset.Set
	sizeP int
}

// worker holds the per-thread scratch state. All buffers are sized to the
// current seed graph and are only valid within a single Branch invocation
// (recursive calls reuse them after the parent is done reading).
type worker struct {
	id  int
	eng *engine

	stats Stats

	// sc is the seed-build scratch (epoch-stamped id tables, peel
	// worklists); created on the worker's first seed and reused for every
	// later one, so steady-state seed construction never allocates.
	sc *seedScratch

	// Scratch, sized to the current seed graph's nAll.
	scratchN int
	degP     []int
	degPC    []int
	sat      *bitset.Set
	pc       *bitset.Set
	satPC    *bitset.Set
	bs       boundScratch
	cs       colorScratch
	plexBuf  []int

	taskStart  time.Time
	splitting  bool // timeout splitting enabled for the current run
	branchTick int  // cancellation poll counter

	// mark is the seed-attribution watermark: the value of stats at the end
	// of the previous settled segment (one task, or one generation phase).
	// Only maintained when Options.OnSeedDone is set.
	mark Stats
}

func (w *worker) prepare(sg *seedGraph) {
	if w.scratchN == sg.nAll && w.sat != nil && w.sat.Len() == sg.nAll {
		return
	}
	n := sg.nAll
	w.scratchN = n
	w.degP = make([]int, n)
	w.degPC = make([]int, n)
	w.sat = bitset.New(n)
	w.pc = bitset.New(n)
	w.satPC = bitset.New(n)
	w.bs = boundScratch{}
	w.bs.resize(n)
}

// runTask executes one task to completion (or until the timeout mechanism
// re-queues its remaining branches).
func (w *worker) runTask(t *task) {
	w.prepare(t.sg)
	w.stats.Tasks++
	w.taskStart = time.Now()
	w.branch(t.sg, t.P, t.C, t.X, t.sizeP)
	if w.eng.opts.PhaseTimers {
		w.stats.BranchNS += time.Since(w.taskStart).Nanoseconds()
	}
	if tr := t.sg.track; tr != nil {
		w.settleRelease(tr)
	}
	// Retire the task's storage reference last: every read of the seed
	// graph (including the tracker settlement above) happens before the
	// group can be recycled.
	w.eng.releaseSeed(t.sg)
}

// recurse either descends into the child branch directly or, when the
// current task has exceeded τ_time, materialises it as a new task so that
// idle workers can steal it (Section 6's straggler elimination).
func (w *worker) recurse(sg *seedGraph, P, C, X *bitset.Set, sizeP int) {
	if w.splitting && time.Since(w.taskStart) > w.eng.opts.TaskTimeout {
		w.stats.Splits++
		w.eng.pushTask(w, &task{sg: sg, P: P, C: C, X: X, sizeP: sizeP})
		return
	}
	w.branch(sg, P, C, X, sizeP)
}

// branch is Algorithm 3. The exclude branch (line 20) is executed as a loop
// iteration rather than a recursive call: it reuses this frame's P, C and X,
// which the include branch never does (it gets clones).
func (w *worker) branch(sg *seedGraph, P, C, X *bitset.Set, sizeP int) {
	opts := &w.eng.opts
	k, q := opts.K, opts.Q
	// The heavy per-vertex operations below (refine counts, subset tests,
	// pivot degrees) run the word-slice kernels on the flat candidate-space
	// rows: rows[v] is pWords long, and the kernels truncate to the shorter
	// operand, so passing a set's full backing words keeps every count a
	// prefix count.
	rows := sg.rows()
	pBits, satBits, pcBits := P.Words(), w.sat.Words(), w.pc.Words()

	for {
		w.stats.Branches++
		w.branchTick++
		if w.branchTick&1023 == 0 && w.eng.cancelled() {
			return
		}

		// --- Lines 2-3: refine C and X to vertices v with P ∪ {v} a
		// k-plex: d_P(v) >= |P|+1-k and v adjacent to every saturated
		// member of P. Also detect an invalid P (possible after the
		// multi-vertex additions of the FaPlexen branching).
		// All P, C and P∪C bits live in the candidate-space prefix, so the
		// heavy set operations are limited to its words.
		w.sat.Clear()
		validP := true
		P.ForEach(func(u int) {
			d := bitset.AndCount(rows[u], pBits)
			w.degP[u] = d
			switch {
			case d < sizeP-k:
				validP = false
			case d == sizeP-k:
				w.sat.Add(u)
			}
		})
		if !validP {
			return
		}
		minNeed := sizeP + 1 - k
		C.ForEach(func(v int) {
			d := bitset.AndCount(rows[v], pBits)
			if d < minNeed || !bitset.Subset(satBits, rows[v]) {
				C.Remove(v)
				return
			}
			w.degP[v] = d
		})
		X.ForEach(func(v int) {
			d := bitset.AndCount(rows[v], pBits)
			if d < minNeed || !bitset.Subset(satBits, rows[v]) {
				X.Remove(v)
			}
		})

		// --- Lines 4-6: leaf.
		sizeC := C.Count()
		if sizeC == 0 {
			if sizeP >= q && X.Empty() {
				w.emit(sg, P)
			}
			return
		}

		// --- Lines 7-10: pivot selection over P ∪ C. M0 = min degree in
		// G[P∪C]; M = max d̄_P within M0; prefer a pivot from P.
		w.pc.Copy(P)
		w.pc.Or(C)
		sizePC := sizeP + sizeC
		minDeg := sizePC
		w.pc.ForEach(func(v int) {
			d := bitset.AndCount(rows[v], pcBits)
			w.degPC[v] = d
			if d < minDeg {
				minDeg = d
			}
		})
		vp0, vp0InP, bestNon := -1, false, -1
		w.pc.ForEach(func(v int) {
			if w.degPC[v] != minDeg {
				return
			}
			inP := P.Contains(v)
			non := sizeP - w.degP[v]
			// M = argmax d̄_P within M0 (line 8); within M prefer P
			// members (line 9); remaining ties go to the smallest id.
			if vp0 == -1 || non > bestNon || (non == bestNon && inP && !vp0InP) {
				vp0, vp0InP, bestNon = v, inP, non
			}
		})

		// --- Lines 11-14: if even the minimum-degree vertex meets the
		// k-plex threshold, P ∪ C is a k-plex; emit it if maximal and big
		// enough, then stop.
		if minDeg >= sizePC-k {
			w.stats.Collapses++
			w.maybeEmitCollapse(sg, X, sizePC, q)
			return
		}

		// --- Lines 15-16 / the Ours_P variant.
		vp := vp0
		if vp0InP {
			if opts.Branching == BranchFaPlexen {
				w.branchFaPlexen(sg, P, C, X, sizeP, vp0)
				return
			}
			w.stats.Repicks++
			vp = w.repick(sg, C, P, sizeP, vp0)
		}

		// --- Lines 17-19: include branch, guarded by the Eq (3) bound.
		include := true
		switch opts.UpperBound {
		case UBOurs:
			ub := w.bs.supportBound(sg, k, sizeP, P, C, w.degP, vp, false)
			if d := w.degPC[vp0] + k; d < ub {
				ub = d
			}
			include = ub >= q
		case UBSortFP:
			ub := w.bs.supportBoundSorted(sg, k, sizeP, P, C, w.degP, vp)
			if d := w.degPC[vp0] + k; d < ub {
				ub = d
			}
			include = ub >= q
		case UBColor:
			ub := w.cs.colorBound(sg, k, sizeP, C, vp)
			if d := w.degPC[vp0] + k; d < ub {
				ub = d
			}
			include = ub >= q
		}
		if include {
			newP := P.Clone()
			newP.Add(vp)
			newC := C.Clone()
			newC.Remove(vp)
			newX := X.Clone()
			w.applyPair(sg, newC, newX, vp)
			w.recurse(sg, newP, newC, newX, sizeP+1)
		} else {
			w.stats.UBPruned++
		}

		// --- Line 20: exclude branch, continued in this frame.
		C.Remove(vp)
		X.Add(vp)
	}
}

// repick implements Algorithm 3 line 16: choose a new pivot among the C
// non-neighbours of the P-pivot vp0, using the same (min degree in G[P∪C],
// then max d̄_P) rules. The set is non-empty whenever the collapse check of
// line 11 failed, but we fall back to an arbitrary candidate defensively.
func (w *worker) repick(sg *seedGraph, C, P *bitset.Set, sizeP, vp0 int) int {
	best, bestDeg, bestNon := -1, 0, -1
	avp := sg.adj[vp0]
	C.ForEach(func(v int) {
		if avp.Contains(v) {
			return
		}
		d := w.degPC[v]
		non := sizeP - w.degP[v]
		if best == -1 || d < bestDeg || (d == bestDeg && non > bestNon) {
			best, bestDeg, bestNon = v, d, non
		}
	})
	if best == -1 {
		best = C.Any()
	}
	return best
}

// applyPair intersects C and X with the pair-compatibility row of a vertex
// that just joined P (rule R2, Theorems 5.13-5.15). V'-range bits in the
// row are always set, so X-only vertices are unaffected.
func (w *worker) applyPair(sg *seedGraph, C, X *bitset.Set, added int) {
	if sg.pair == nil || added >= sg.nv {
		return
	}
	row := sg.pair[added]
	C.And(row)
	X.And(row)
}

// maybeEmitCollapse handles Algorithm 3 lines 12-13: P ∪ C (stored in w.pc
// with degrees in w.degPC) is a k-plex; emit it when it is maximal against
// X and has at least q vertices.
func (w *worker) maybeEmitCollapse(sg *seedGraph, X *bitset.Set, sizePC, q int) {
	if sizePC < q {
		return
	}
	k := w.eng.opts.K
	rows := sg.rows()
	w.satPC.Clear()
	w.pc.ForEach(func(u int) {
		if w.degPC[u] == sizePC-k {
			w.satPC.Add(u)
		}
	})
	need := sizePC + 1 - k
	pcBits, satPCBits := w.pc.Words(), w.satPC.Words()
	extendable := false
	X.ForEach(func(x int) {
		if extendable {
			return
		}
		if bitset.AndCount(rows[x], pcBits) >= need && bitset.Subset(satPCBits, rows[x]) {
			extendable = true
		}
	})
	if !extendable {
		w.emit(sg, w.pc)
	}
}

// branchFaPlexen implements the Ours_P variant: when the pivot vp lies in
// P, branch over its C non-neighbours W = {w_1 < w_2 < ... < w_l} with the
// s+1 disjoint branches of Eq (4)-(6), where s = sup_P(vp). Branch i
// includes w_1..w_{i-1} and excludes w_i; the final branch includes
// w_1..w_s and discards the rest of W (their budgets are exhausted, so the
// child's refinement would drop them; they are parked in X for safety).
func (w *worker) branchFaPlexen(sg *seedGraph, P, C, X *bitset.Set, sizeP, vp int) {
	k := w.eng.opts.K
	s := k - (sizeP - w.degP[vp]) // sup_P(vp) >= 1 here (see below)
	// wl must be a private copy: the recursive calls below reuse the
	// worker's scratch buffer.
	wl := make([]int, 0, 8)
	avp := sg.adj[vp]
	C.ForEach(func(v int) {
		if !avp.Contains(v) {
			wl = append(wl, v)
		}
	})
	// The collapse check failed, so vp has more than k non-neighbours in
	// P∪C; since P is a k-plex, at least s+1 of them are in C: len(wl) > s.
	// A saturated vp (s == 0) cannot reach here because refinement removed
	// all of its C non-neighbours. Guard anyway.
	if s < 0 {
		s = 0
	}
	if s >= len(wl) {
		s = len(wl) - 1
	}
	if len(wl) == 0 {
		return
	}

	// Branch i = 1..s: include w_1..w_{i-1}, exclude w_i.
	for i := 1; i <= s; i++ {
		newP := P.Clone()
		newC := C.Clone()
		newX := X.Clone()
		for j := 0; j < i-1; j++ {
			newP.Add(wl[j])
			newC.Remove(wl[j])
			w.applyPair(sg, newC, newX, wl[j])
		}
		newC.Remove(wl[i-1])
		newX.Add(wl[i-1])
		w.recurse(sg, newP, newC, newX, sizeP+i-1)
	}
	// Final branch: include w_1..w_s, drop w_{s+1}..w_l. Reuses the
	// caller's sets (tail position).
	for j := 0; j < s; j++ {
		P.Add(wl[j])
		C.Remove(wl[j])
		w.applyPair(sg, C, X, wl[j])
	}
	for j := s; j < len(wl); j++ {
		C.Remove(wl[j])
		X.Add(wl[j])
	}
	w.recurse(sg, P, C, X, sizeP+s)
}

// emit reports a maximal k-plex. P holds local ids; they are translated
// through the seed graph's mapping and the engine's relabel/core mappings
// back to the caller's vertex ids.
func (w *worker) emit(sg *seedGraph, P *bitset.Set) {
	w.stats.Emitted++
	if size := int64(P.Count()); size > w.stats.MaxPlexSize {
		w.stats.MaxPlexSize = size
	}
	if w.eng.opts.FirstOnly {
		defer w.eng.stop.Store(true)
	}
	cb, cbSeed := w.eng.opts.OnPlex, w.eng.opts.OnPlexSeed
	if cb == nil && cbSeed == nil {
		return
	}
	w.plexBuf = w.plexBuf[:0]
	P.ForEach(func(v int) {
		w.plexBuf = append(w.plexBuf, int(w.eng.toInput[sg.orig[v]]))
	})
	sort.Ints(w.plexBuf)
	if cb != nil {
		cb(w.plexBuf)
	}
	if cbSeed != nil {
		cbSeed(int(sg.seed), w.plexBuf)
	}
}
