package kplex

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestReduceCTCPPreservesResults(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := gen.ChungLu(800, 14, 2.3, 400+seed)
		for _, kq := range []struct{ k, q int }{{2, 8}, {3, 10}} {
			plain := mustRun(t, g, NewOptions(kq.k, kq.q))
			withCTCP := NewOptions(kq.k, kq.q)
			withCTCP.UseCTCP = true
			reduced := mustRun(t, g, withCTCP)
			if plain.Count != reduced.Count {
				t.Fatalf("seed=%d k=%d q=%d: CTCP changed count %d -> %d",
					seed, kq.k, kq.q, plain.Count, reduced.Count)
			}
		}
	}
}

func TestReduceCTCPActuallyPrunes(t *testing.T) {
	// A sparse power-law graph with q-2k = 4: most edges have fewer than 4
	// common neighbours and must disappear.
	g := gen.ChungLu(2000, 6, 2.4, 9)
	r := ReduceCTCP(g, 2, 8)
	if r.M() >= g.M() {
		t.Fatalf("no pruning: %d -> %d edges", g.M(), r.M())
	}
	if r.N() != g.N() {
		t.Fatalf("vertex id space changed: %d -> %d", g.N(), r.N())
	}
}

func TestReduceCTCPKeepsDensePlexes(t *testing.T) {
	// A clique of 12 inside noise must survive with all internal edges.
	cfg := gen.PlantedConfig{
		N: 300, BackgroundP: 0.01, Communities: 1, CommSize: 12, DropPerV: 0, Seed: 4,
	}
	g := gen.Planted(cfg)
	r := ReduceCTCP(g, 2, 10)
	for u := 0; u < 12; u++ {
		for v := u + 1; v < 12; v++ {
			if !graph.HasEdgeIn(r, u, v) {
				t.Fatalf("clique edge (%d,%d) was pruned", u, v)
			}
		}
	}
}

func TestReduceCTCPNoOpCases(t *testing.T) {
	g := gen.GNP(50, 0.3, 1)
	// q-2k <= 0: must return the graph unchanged (same pointer is fine).
	if r := ReduceCTCP(g, 3, 5); r.M() != g.M() {
		t.Fatal("threshold-free reduction changed the graph")
	}
	empty, _ := (&graph.Builder{}).Build(0)
	if r := ReduceCTCP(empty, 2, 8); r.N() != 0 {
		t.Fatal("empty graph mishandled")
	}
}
