package kplex

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// batchSchedulers is the scheduler grid every batch differential runs over.
var batchSchedulers = []struct {
	name    string
	threads int
	sched   SchedulerStyle
}{
	{"sequential", 1, SchedulerStages},
	{"stages", 4, SchedulerStages},
	{"global-queue", 4, SchedulerGlobalQueue},
	{"steal", 4, SchedulerSteal},
}

// batchGridCells returns the mixed (k, q) cells a corpus graph is probed
// at: the golden combos plus one stricter threshold, so each graph's batch
// spans at least two q values inside one k group and two k groups.
func batchGridCells(name string) [][2]int {
	switch name {
	case "gnp-dense":
		return [][2]int{{2, 6}, {2, 8}, {3, 7}}
	case "regular-flat":
		return [][2]int{{2, 4}, {2, 6}, {3, 6}}
	default:
		return [][2]int{{2, 6}, {2, 8}, {3, 8}}
	}
}

// oracleCell runs the standalone sequential engine for one cell and
// returns its result set fingerprint.
func oracleCell(t *testing.T, g *graph.Graph, k, q int) (int64, string) {
	t.Helper()
	var plexes [][]int
	opts := NewOptions(k, q)
	opts.OnPlex = func(p []int) { plexes = append(plexes, append([]int(nil), p...)) }
	res, err := Run(context.Background(), g, opts)
	if err != nil {
		t.Fatalf("oracle k=%d q=%d: %v", k, q, err)
	}
	return res.Count, canonicalHash(plexes)
}

// TestBatchDifferentialGrid is the batch layer's oracle: across the
// corpus, mixed (k, q) cells and all three schedulers, every member of
// EnumerateBatch must report exactly what the standalone sequential
// engine reports for its cell — count, canonical plex-set hash, top-k
// list and histogram alike.
func TestBatchDifferentialGrid(t *testing.T) {
	corpus := gen.Corpus()
	if testing.Short() {
		corpus = corpus[:3]
	}
	for _, cg := range corpus {
		cg := cg
		t.Run(cg.Name, func(t *testing.T) {
			t.Parallel()
			g := cg.Build()
			cells := batchGridCells(cg.Name)

			type want struct {
				count int64
				hash  string
				topk  [][]int
				hist  map[int]int64
			}
			wants := make([]want, len(cells))
			for i, kq := range cells {
				k, q := kq[0], kq[1]
				wants[i].count, wants[i].hash = oracleCell(t, g, k, q)
				var err error
				wants[i].topk, _, err = EnumerateTopK(context.Background(), g, NewOptions(k, q), 5)
				if err != nil {
					t.Fatal(err)
				}
				wants[i].hist, _, err = SizeHistogram(context.Background(), g, NewOptions(k, q))
				if err != nil {
					t.Fatal(err)
				}
			}

			for _, sc := range batchSchedulers {
				sc := sc
				t.Run(sc.name, func(t *testing.T) {
					// Three members per cell: count (with a plex collector),
					// top-k and histogram, all answered by shared walks.
					var queries []BatchQuery
					collected := make([][][]int, len(cells))
					var mu sync.Mutex
					for i, kq := range cells {
						i := i
						opts := NewOptions(kq[0], kq[1])
						opts.Threads = sc.threads
						opts.Scheduler = sc.sched
						if sc.threads > 1 {
							opts.TaskTimeout = 50 * time.Microsecond
						}
						withHook := opts
						withHook.OnPlex = func(p []int) {
							cp := append([]int(nil), p...)
							mu.Lock()
							collected[i] = append(collected[i], cp)
							mu.Unlock()
						}
						queries = append(queries,
							BatchQuery{Opts: withHook, Mode: BatchCount},
							BatchQuery{Opts: opts, Mode: BatchTopK, TopN: 5},
							BatchQuery{Opts: opts, Mode: BatchHistogram},
						)
					}
					results, err := RunBatch(context.Background(), g, queries)
					if err != nil {
						t.Fatal(err)
					}
					for i := range cells {
						w := wants[i]
						cnt, topk, hist := results[3*i], results[3*i+1], results[3*i+2]
						if cnt.Count != w.count {
							t.Errorf("cell %v: batch count %d, oracle %d", cells[i], cnt.Count, w.count)
						}
						if h := canonicalHash(collected[i]); h != w.hash {
							t.Errorf("cell %v: batch plex set hash %s, oracle %s (%d vs %d plexes)",
								cells[i], h, w.hash, len(collected[i]), w.count)
						}
						if !reflect.DeepEqual(topk.TopK, w.topk) {
							t.Errorf("cell %v: batch topk %v, oracle %v", cells[i], topk.TopK, w.topk)
						}
						if !reflect.DeepEqual(hist.Histogram, w.hist) {
							t.Errorf("cell %v: batch histogram %v, oracle %v", cells[i], hist.Histogram, w.hist)
						}
						if cnt.Stats.MaxPlexSize != topk.Stats.MaxPlexSize {
							t.Errorf("cell %v: member MaxPlexSize disagree: %d vs %d",
								cells[i], cnt.Stats.MaxPlexSize, topk.Stats.MaxPlexSize)
						}
					}
					// Members with one k must have shared a walk; distinct k
					// must not.
					for i := range queries {
						for j := range queries {
							same := queries[i].Opts.K == queries[j].Opts.K
							if (results[i].Group == results[j].Group) != same {
								t.Fatalf("queries %d and %d: group sharing mismatch (groups %d, %d)",
									i, j, results[i].Group, results[j].Group)
							}
						}
					}
				})
			}
		})
	}
}

// TestBatchPropertyRandomMixes is the quick-style randomized oracle: a
// seeded stream of random query mixes (random cells, modes, top-k sizes,
// duplicates included) over random corpus graphs, each member checked
// against its standalone run.
func TestBatchPropertyRandomMixes(t *testing.T) {
	rng := rand.New(rand.NewSource(20250727))
	corpus := gen.Corpus()
	iters := 12
	if testing.Short() {
		iters = 4
	}
	for it := 0; it < iters; it++ {
		cg := corpus[rng.Intn(len(corpus))]
		g := cg.Build()
		n := 2 + rng.Intn(5)
		queries := make([]BatchQuery, n)
		for i := range queries {
			k := 2 + rng.Intn(2)
			q := 2*k - 1 + rng.Intn(10)
			opts := NewOptions(k, q)
			opts.Threads = 1 + rng.Intn(4)
			opts.Scheduler = []SchedulerStyle{SchedulerStages, SchedulerGlobalQueue, SchedulerSteal}[rng.Intn(3)]
			if opts.Threads > 1 {
				opts.TaskTimeout = time.Duration(rng.Intn(100)) * time.Microsecond
			}
			bq := BatchQuery{Opts: opts, Mode: BatchMode(rng.Intn(3))}
			if bq.Mode == BatchTopK {
				bq.TopN = 1 + rng.Intn(8)
			}
			queries[i] = bq
		}
		results, err := RunBatch(context.Background(), g, queries)
		if err != nil {
			t.Fatalf("iter %d (%s): %v", it, cg.Name, err)
		}
		for i, bq := range queries {
			switch bq.Mode {
			case BatchCount:
				res, err := Run(context.Background(), g, NewOptions(bq.Opts.K, bq.Opts.Q))
				if err != nil {
					t.Fatal(err)
				}
				if results[i].Count != res.Count || results[i].Stats.MaxPlexSize != res.Stats.MaxPlexSize {
					t.Errorf("iter %d (%s) member %d k=%d q=%d: count/max %d/%d, oracle %d/%d",
						it, cg.Name, i, bq.Opts.K, bq.Opts.Q,
						results[i].Count, results[i].Stats.MaxPlexSize, res.Count, res.Stats.MaxPlexSize)
				}
			case BatchTopK:
				topk, res, err := EnumerateTopK(context.Background(), g, NewOptions(bq.Opts.K, bq.Opts.Q), bq.TopN)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(results[i].TopK, topk) {
					t.Errorf("iter %d (%s) member %d k=%d q=%d topn=%d: topk mismatch",
						it, cg.Name, i, bq.Opts.K, bq.Opts.Q, bq.TopN)
				}
				// An all-top-k group may stop early: the list is exact but
				// the count is a prefix. Exact count otherwise.
				if results[i].Saturated {
					if results[i].Count > res.Count {
						t.Errorf("iter %d (%s) member %d: saturated count %d exceeds full %d",
							it, cg.Name, i, results[i].Count, res.Count)
					}
				} else if results[i].Count != res.Count {
					t.Errorf("iter %d (%s) member %d k=%d q=%d: count %d, oracle %d",
						it, cg.Name, i, bq.Opts.K, bq.Opts.Q, results[i].Count, res.Count)
				}
			case BatchHistogram:
				hist, res, err := SizeHistogram(context.Background(), g, NewOptions(bq.Opts.K, bq.Opts.Q))
				if err != nil {
					t.Fatal(err)
				}
				if results[i].Count != res.Count || !reflect.DeepEqual(results[i].Histogram, hist) {
					t.Errorf("iter %d (%s) member %d k=%d q=%d: histogram mismatch",
						it, cg.Name, i, bq.Opts.K, bq.Opts.Q)
				}
			}
		}
	}
}

// TestBatchMemberRejections pins the ValidateBatchMember guard: every
// per-query knob that assumes ownership of the traversal is rejected with
// an error naming the knob, and mode/TopN misuse is caught.
func TestBatchMemberRejections(t *testing.T) {
	g := gen.GNP(30, 0.4, 7)
	base := func() Options { return NewOptions(2, 4) }
	cases := []struct {
		name string
		bq   BatchQuery
		want string
	}{
		{"first-only", BatchQuery{Opts: func() Options { o := base(); o.FirstOnly = true; return o }()}, "FirstOnly"},
		{"skip-seeds", BatchQuery{Opts: func() Options {
			o := base()
			o.SkipSeeds = NewSeedSet(0)
			o.OnPlex = func([]int) {}
			return o
		}()}, "SkipSeeds"},
		{"on-seed-done", BatchQuery{Opts: func() Options { o := base(); o.OnSeedDone = func(int, Stats) {}; return o }()}, "OnSeedDone"},
		{"on-plex-seed", BatchQuery{Opts: func() Options { o := base(); o.OnPlexSeed = func(int, []int) {}; return o }()}, "OnPlexSeed"},
		{"invalid-options", BatchQuery{Opts: NewOptions(2, 2)}, "Q must be"},
		{"topn-on-count", BatchQuery{Opts: base(), Mode: BatchCount, TopN: 5}, "TopN"},
		{"topn-missing", BatchQuery{Opts: base(), Mode: BatchTopK}, "TopN"},
		{"bad-mode", BatchQuery{Opts: base(), Mode: BatchMode(42)}, "BatchMode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := RunBatch(context.Background(), g, []BatchQuery{tc.bq})
			if err == nil {
				t.Fatalf("batch accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
	// The sanity direction: a clean member passes.
	if _, err := RunBatch(context.Background(), g, []BatchQuery{{Opts: base()}}); err != nil {
		t.Fatalf("clean member rejected: %v", err)
	}
}

// TestGroupBatchGrouping pins the grouping rule: (K, UseCTCP) keys, the
// loosest Q wins, the widest member's execution knobs are adopted, and
// traversal-owning hooks are cleared from the cell.
func TestGroupBatchGrouping(t *testing.T) {
	mk := func(k, q, threads int, sched SchedulerStyle, ctcp bool) BatchQuery {
		o := NewOptions(k, q)
		o.Threads = threads
		o.Scheduler = sched
		o.UseCTCP = ctcp
		o.OnPlex = func([]int) {}
		return BatchQuery{Opts: o}
	}
	queries := []BatchQuery{
		mk(2, 10, 1, SchedulerStages, false),
		mk(3, 8, 2, SchedulerStages, false),
		mk(2, 6, 8, SchedulerSteal, false),
		mk(2, 6, 1, SchedulerStages, true),
		mk(2, 12, 2, SchedulerGlobalQueue, false),
	}
	groups, err := GroupBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3: %+v", len(groups), groups)
	}
	g0 := groups[0] // k=2 without CTCP
	if !reflect.DeepEqual(g0.Members, []int{0, 2, 4}) {
		t.Fatalf("group 0 members %v", g0.Members)
	}
	if g0.Cell.K != 2 || g0.Cell.Q != 6 || g0.Cell.Threads != 8 || g0.Cell.Scheduler != SchedulerSteal {
		t.Fatalf("group 0 cell %+v: want K=2 Q=6 Threads=8 steal", g0.Cell)
	}
	if g0.Cell.OnPlex != nil || g0.Cell.FirstOnly || g0.Cell.SkipSeeds.Len() > 0 {
		t.Fatal("group cell retained member hooks")
	}
	if got := groups[1].Members; !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("group 1 members %v", got)
	}
	if g2 := groups[2]; !g2.Cell.UseCTCP || !reflect.DeepEqual(g2.Members, []int{3}) {
		t.Fatalf("CTCP member grouped wrongly: %+v", g2)
	}
}

// TestBatchMidCancelNoLeak cancels the batch context mid-walk under every
// scheduler: RunBatch must return the context error (no partial results)
// and no engine goroutine may survive.
func TestBatchMidCancelNoLeak(t *testing.T) {
	g := gen.ChungLu(200, 12, 2.3, 46) // thousands of plexes at k=3 q=8
	for _, sc := range batchSchedulers {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var seen int64
			var mu sync.Mutex
			opts := NewOptions(3, 8)
			opts.Threads = sc.threads
			opts.Scheduler = sc.sched
			opts.OnPlex = func([]int) {
				mu.Lock()
				seen++
				if seen == 10 {
					cancel()
				}
				mu.Unlock()
			}
			queries := []BatchQuery{
				{Opts: opts, Mode: BatchCount},
				{Opts: NewOptions(3, 10), Mode: BatchHistogram},
			}
			res, err := RunBatch(ctx, g, queries)
			if err == nil {
				t.Fatal("cancelled batch reported no error")
			}
			if res != nil {
				t.Fatalf("cancelled batch returned results: %+v", res)
			}
			waitGoroutines(t, base, 2)
		})
	}
}

// saturationGraph is a 20-clique over a sparse ring: the ring is peeled
// away by the (q-k)-core reduction, leaving exactly the clique's 20 seed
// groups, of which only the first emits the unique maximal 2-plex.
func saturationGraph(t *testing.T) *graph.Graph {
	t.Helper()
	var b graph.Builder
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			b.AddEdge(i, j)
		}
	}
	for i := 0; i < 300; i++ {
		b.AddEdge(20+i, 20+(i+1)%300)
	}
	g, err := b.Build(320)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestBatchTopKSaturation checks that an all-top-k group stops its shared
// walk once no unfinished seed can change any member's answer — and that
// the early exit never changes the reported result.
func TestBatchTopKSaturation(t *testing.T) {
	g := saturationGraph(t)
	opts := NewOptions(2, 10)

	wantTopK, full, err := EnumerateTopK(context.Background(), g, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantTopK) != 1 || len(wantTopK[0]) != 20 {
		t.Fatalf("oracle topk = %v, want the 20-clique", wantTopK)
	}

	results, err := RunBatch(context.Background(), g, []BatchQuery{{Opts: opts, Mode: BatchTopK, TopN: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results[0].TopK, wantTopK) {
		t.Fatalf("saturated batch topk %v, oracle %v", results[0].TopK, wantTopK)
	}
	if results[0].Count >= full.Count+1 {
		t.Fatalf("saturated batch count %d exceeds full %d", results[0].Count, full.Count)
	}
	if results[0].Stats.Seeds >= full.Stats.Seeds {
		t.Fatalf("saturation did not prune the walk: batch built %d seed groups, full run %d",
			results[0].Stats.Seeds, full.Stats.Seeds)
	}
	if !results[0].Saturated {
		t.Error("early-exited member does not report Saturated")
	}

	// A top-k member with an OnPlex hook is promised its complete result
	// set, so it must disable the early exit even in an all-top-k group.
	var hooked [][]int
	hookedOpts := opts
	hookedOpts.OnPlex = func(p []int) { hooked = append(hooked, append([]int(nil), p...)) }
	withHook, err := RunBatch(context.Background(), g, []BatchQuery{{Opts: hookedOpts, Mode: BatchTopK, TopN: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if withHook[0].Saturated {
		t.Error("hooked top-k member still saturated")
	}
	if withHook[0].Stats.Seeds != full.Stats.Seeds || int64(len(hooked)) != full.Count {
		t.Errorf("hooked member walked %d seed groups and saw %d plexes, want %d and %d",
			withHook[0].Stats.Seeds, len(hooked), full.Stats.Seeds, full.Count)
	}

	// A count member in the group must disable the early exit: counts are
	// only correct when the walk completes.
	mixed, err := RunBatch(context.Background(), g, []BatchQuery{
		{Opts: opts, Mode: BatchTopK, TopN: 1},
		{Opts: opts, Mode: BatchCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mixed[1].Count != full.Count {
		t.Fatalf("mixed batch count %d, want %d", mixed[1].Count, full.Count)
	}
	if mixed[1].Stats.Seeds != full.Stats.Seeds {
		t.Fatalf("mixed batch built %d seed groups, want the full %d", mixed[1].Stats.Seeds, full.Stats.Seeds)
	}
	if mixed[0].Saturated || mixed[1].Saturated {
		t.Error("complete walk reported Saturated")
	}
}

// TestSeedBoundsBookkeeping unit-tests the saturation structure: retiring
// seeds moves the running maximum down exactly when the top bucket drains.
func TestSeedBoundsBookkeeping(t *testing.T) {
	g := saturationGraph(t)
	p, err := Prepare(g, NewOptions(2, 10))
	if err != nil {
		t.Fatal(err)
	}
	sb := newSeedBounds(p)
	n := p.SeedSpace()
	if n != 20 {
		t.Fatalf("seed space %d, want the clique's 20", n)
	}
	// Bounds along the degeneracy order are k + laterDeg = 2 + (19 - i).
	prev := sb.maxB
	if prev != 21 {
		t.Fatalf("initial max bound %d, want 21", prev)
	}
	for s := 0; s < n; s++ {
		m := sb.seedDone(s)
		want := 2 + (19 - (s + 1)) // max bound among seeds s+1..19
		if s == n-1 {
			want = -1
		}
		if m != want {
			t.Fatalf("after retiring seed %d: max bound %d, want %d", s, m, want)
		}
	}
}

// TestBatchPreCancelled ensures a dead context fails fast without paying
// the prologue or the walk.
func TestBatchPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := gen.GNP(40, 0.3, 9)
	_, err := RunBatch(ctx, g, []BatchQuery{{Opts: NewOptions(2, 4)}})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestBatchEmpty pins the trivial contract: no queries, no work, no error.
func TestBatchEmpty(t *testing.T) {
	g := gen.GNP(10, 0.5, 3)
	res, err := RunBatch(context.Background(), g, nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
}
