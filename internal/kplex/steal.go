package kplex

// SchedulerSteal: a classic work-stealing runtime for the enumeration
// engine. Each worker owns a bounded deque; it pushes and pops at the back
// (LIFO keeps the current seed subgraph cache-hot, exactly as the stage
// scheme does) while thieves take from the front, where the oldest tasks —
// the roots of the largest remaining subtrees — sit. Two things distinguish
// it from runParallel's stage scheme:
//
//   - There are no stage barriers. Seeds are claimed from one shared atomic
//     counter the moment a worker runs out of local work, so cores never
//     idle waiting for the slowest seed of a stage to finish.
//   - A thief transfers *half* of the victim's deque in one locked
//     operation instead of one task per probe, amortising the
//     synchronisation cost and giving the thief a private runway before it
//     must steal again.
//
// Combined with the timeout task-splitting path (Options.TaskTimeout), a
// worker that owns a straggler subtree continuously sheds its oldest
// frontier into its deque where any idle worker can grab a batch. The deque
// bound keeps memory proportional to threads × StealQueueBound tasks: on
// overflow the owner simply runs the task inline instead of queueing it,
// which is always safe (the task tree is finite) and restores the depth-
// first memory profile of the sequential run.
//
// The scheduler decides only *who* runs a task, never what the task
// computes, so the emitted plex set and count are identical to the other
// schedulers' — the differential tests in scheduler_test.go pin this down.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// defaultStealQueueBound is the per-worker deque capacity used when
// Options.StealQueueBound is zero. At a few hundred bytes per queued task
// this bounds queue memory at well under 10 MiB per worker.
const defaultStealQueueBound = 4096

// stealDeque is a mutex-guarded bounded deque owned by one worker. The
// owner pushes and pops at the back; thieves remove batches from the front.
// A mutex (rather than a lock-free Chase-Lev deque) is deliberate: tasks
// here are coarse (one branch-and-bound subtree each), so the lock is cold,
// and steal-half moves are far simpler to get right under a lock.
type stealDeque struct {
	mu    sync.Mutex
	tasks []*task
	bound int
}

func newStealDeque(bound int) *stealDeque {
	return &stealDeque{bound: bound}
}

// push appends t at the back; it reports false when the deque is full, in
// which case the caller must run t itself.
func (d *stealDeque) push(t *task) bool {
	d.mu.Lock()
	if len(d.tasks) >= d.bound {
		d.mu.Unlock()
		return false
	}
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
	return true
}

// popBack removes and returns the newest task, or nil when empty.
func (d *stealDeque) popBack() *task {
	d.mu.Lock()
	n := len(d.tasks)
	if n == 0 {
		d.mu.Unlock()
		return nil
	}
	t := d.tasks[n-1]
	d.tasks[n-1] = nil
	d.tasks = d.tasks[:n-1]
	d.mu.Unlock()
	return t
}

// stealHalf removes the oldest ceil(n/2) tasks (capped at maxTake) and
// appends them to dst, oldest first. The remaining tasks are compacted to
// the front of the backing array so the deque's memory stays bounded.
func (d *stealDeque) stealHalf(dst []*task, maxTake int) []*task {
	d.mu.Lock()
	n := len(d.tasks)
	if n == 0 {
		d.mu.Unlock()
		return dst
	}
	k := (n + 1) / 2
	if k > maxTake {
		k = maxTake
	}
	dst = append(dst, d.tasks[:k]...)
	m := copy(d.tasks, d.tasks[k:])
	for i := m; i < n; i++ {
		d.tasks[i] = nil
	}
	d.tasks = d.tasks[:m]
	d.mu.Unlock()
	return dst
}

// runSteal is the SchedulerSteal driver. Workers prefer (1) their own deque
// back-to-front, then (2) a fresh seed from the shared counter, then (3)
// stealing half of a random victim's frontier. Termination is detected from
// three monotone conditions read in order: the seed counter is exhausted,
// no worker is inside a seed-generation section, and no task is queued or
// running.
func (e *engine) runSteal(ctx context.Context, threads int) Stats {
	done := watchContext(ctx, e)
	defer done()

	bound := e.opts.StealQueueBound
	if bound <= 0 {
		bound = defaultStealQueueBound
	}
	e.deques = make([]*stealDeque, threads)
	workers := make([]*worker, threads)
	for i := range workers {
		e.deques[i] = newStealDeque(bound)
		workers[i] = &worker{id: i, eng: e, splitting: e.opts.TaskTimeout > 0}
	}

	var nextSeed atomic.Int64
	var wg sync.WaitGroup
	for i := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			e.stealLoop(w, &nextSeed)
		}(workers[i])
	}
	wg.Wait()

	var total Stats
	for _, w := range workers {
		total.Add(w.stats)
	}
	return total
}

func (e *engine) stealLoop(w *worker, nextSeed *atomic.Int64) {
	my := e.deques[w.id]
	n := e.g.N()
	rng := stealRand(uint64(w.id) + 1)
	var loot []*task
	idleSpins := 0
	for !e.cancelled() {
		if t := my.popBack(); t != nil {
			w.runTask(t)
			e.pending.Add(-1)
			idleSpins = 0
			continue
		}

		// Local deque empty: claim a fresh seed before stealing — building
		// our own seed subgraph is cheaper than dragging someone else's
		// working set across caches. The seeding count must rise before the
		// claim so the termination check below cannot miss tasks this
		// section is about to push. The Load fast path keeps idle spinners
		// off the shared counters once seeds are exhausted (nextSeed is
		// monotone, so a stale read only delays one claim by a round).
		if nextSeed.Load() < int64(n) {
			e.seeding.Add(1)
			if s := int(nextSeed.Add(1)) - 1; s < n {
				e.processSeed(w, s, func(t *task) { e.enqueueLocal(w, t) })
				e.seeding.Add(-1)
				idleSpins = 0
				continue
			}
			e.seeding.Add(-1)
		}

		// Seeds exhausted: raid a random victim for half its frontier.
		loot = e.trySteal(w, &rng, loot[:0])
		if len(loot) > 0 {
			for _, t := range loot[1:] {
				if !my.push(t) {
					w.runTask(t)
					e.pending.Add(-1)
				}
			}
			w.runTask(loot[0])
			e.pending.Add(-1)
			idleSpins = 0
			continue
		}
		// A failed round only counts as a miss when work was actually in
		// flight somewhere — otherwise the counter would just measure how
		// long the idle spin-wait below lasted.
		if e.pending.Load() > 0 {
			w.stats.StealMisses++
		}

		// Nothing anywhere. The read order matters (see the proof sketch in
		// runSteal's comment): seeds first, then seeding, then pending.
		if nextSeed.Load() >= int64(n) && e.seeding.Load() == 0 && e.pending.Load() == 0 {
			return
		}
		idleSpins++
		if idleSpins > 64 {
			time.Sleep(20 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
}

// trySteal probes the other deques in a random rotation and moves half of
// the first non-empty victim's oldest tasks into dst, counting the
// transferred tasks as Steals. The caller scores failed rounds.
func (e *engine) trySteal(w *worker, rng *uint64, dst []*task) []*task {
	nq := len(e.deques)
	if nq < 2 {
		return dst
	}
	my := e.deques[w.id]
	start := int(nextRand(rng) % uint64(nq))
	for i := 0; i < nq; i++ {
		v := (start + i) % nq
		if v == w.id {
			continue
		}
		dst = e.deques[v].stealHalf(dst, my.bound)
		if len(dst) > 0 {
			w.stats.Steals += int64(len(dst))
			return dst
		}
	}
	return dst
}

// enqueueLocal queues t on the worker's own deque, falling back to running
// it inline when the deque is at its bound. The inline path resets the
// task-timeout clock via runTask, so an overflowing straggler keeps making
// progress depth-first rather than hammering the full deque.
//
// pending must rise BEFORE the push makes t stealable: a thief could
// otherwise run t and decrement pending past this task's never-made
// increment, letting the termination check see zero while work is still
// running and sending idle workers home early.
func (e *engine) enqueueLocal(w *worker, t *task) {
	e.pending.Add(1)
	if e.deques[w.id].push(t) {
		return
	}
	w.runTask(t)
	e.pending.Add(-1)
}

// stealRand seeds a splitmix64 stream; distinct worker ids give distinct,
// well-mixed victim rotations without any shared RNG state.
func stealRand(seed uint64) uint64 {
	return seed * 0x9E3779B97F4A7C15
}

// nextRand advances the splitmix64 state and returns the next value.
func nextRand(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
