package kplex

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/graph"
)

// This file implements maximum k-plex finding on top of the enumerator —
// the companion problem solved by the BS/kPlexS line of work the paper
// reviews in Section 2. The approach is the standard "guess the size"
// reduction: binary-search the largest q for which a k-plex with at least
// q vertices exists, answering each existence query with a first-hit
// enumeration run (Options.FirstOnly). Each query benefits from the full
// pruning stack, and a hit at size s > q immediately lifts the lower bound
// to s.

// FindMaximumKPlex returns a maximum-cardinality k-plex of g among those
// with at least 2k-1 vertices (the connectivity regime of Theorem 3.3 that
// the search decomposition requires). If no such k-plex exists it returns
// nil: smaller k-plexes always exist trivially (any k vertices form one)
// but are rarely meaningful, and finding the largest of those would need a
// different decomposition.
func FindMaximumKPlex(ctx context.Context, g *graph.Graph, k int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("kplex: k must be >= 1, got %d", k)
	}
	lo := 2*k - 1 // smallest admissible q
	// Degeneracy upper bound: a k-plex P has minimum internal degree
	// |P|-k, so G has a (|P|-k)-core and |P| <= D+k.
	hi := graph.Degeneracy(g) + k
	if hi < lo {
		return nil, nil
	}

	var best []int
	exists := func(q int) ([]int, error) {
		opts := NewOptions(k, q)
		opts.FirstOnly = true
		var mu sync.Mutex
		var found []int
		opts.OnPlex = func(p []int) {
			mu.Lock()
			if found == nil {
				found = append([]int(nil), p...)
			}
			mu.Unlock()
		}
		if _, err := Run(ctx, g, opts); err != nil {
			return nil, err
		}
		return found, nil
	}

	// Invariant: a k-plex of size len(best) is in hand (once non-nil);
	// sizes > hi are impossible. Probe the midpoint until the window
	// closes.
	for lo <= hi {
		mid := (lo + hi + 1) / 2
		if lo == hi {
			mid = lo
		}
		p, err := exists(mid)
		if err != nil {
			return best, err
		}
		if p == nil {
			hi = mid - 1
			continue
		}
		if len(p) > len(best) {
			best = p
		}
		lo = len(p) + 1
	}
	return best, nil
}
