//go:build !race

package kplex

// The zero-allocation guard of the seed pipeline. Seed-subgraph
// construction dominates enumeration cost on the paper's workloads, so the
// prepared-graph refactor moved it onto per-worker scratch and pooled
// storage; this test pins the steady state at exactly zero heap
// allocations per build so a regression (a map creeping back in, a slice
// losing its pooling) fails CI rather than silently eating the win. Race
// builds are excluded: the race runtime instruments allocations.

import (
	"testing"

	"repro/internal/gen"
)

// TestSeedBuildZeroAlloc drives the scratch-based builder exactly as an
// engine worker does — one scratch, one recycled storage — over every seed
// of a corpus-sized graph, and requires zero steady-state allocations per
// build once the first warm-up pass has grown the buffers.
func TestSeedBuildZeroAlloc(t *testing.T) {
	for _, usePair := range []bool{false, true} {
		opts := NewOptions(2, 6)
		opts.UsePairPruning = usePair

		g := gen.GNP(300, 0.08, 7)
		p, err := Prepare(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		relab := p.pg.G()
		sc := newSeedScratch(relab.N())
		st := &seedStorage{}

		// Warm-up: one full pass sizes every buffer to the run's maximum.
		built := 0
		for s := 0; s < relab.N(); s++ {
			if sg := sc.build(relab, p.pg, s, &opts, st, nil); sg != nil {
				built++
			}
		}
		if built == 0 {
			t.Fatal("no seed graphs built; test graph too sparse to exercise the builder")
		}

		s := 0
		allocs := testing.AllocsPerRun(200, func() {
			sc.build(relab, p.pg, s, &opts, st, nil)
			if s++; s == relab.N() {
				s = 0
			}
		})
		if allocs != 0 {
			t.Errorf("pair=%v: steady-state seed build allocates %.1f objects/op, want 0", usePair, allocs)
		}
	}
}

// TestSeedBuildZeroAllocDense is the same guard with the dense bit-parallel
// kernel forced on every build (a denser graph and an unbounded crossover),
// pinning that the row-major arena and the rowP row table stay pooled: the
// dense path must be exactly as allocation-free as the merge path it
// routes around.
func TestSeedBuildZeroAllocDense(t *testing.T) {
	opts := NewOptions(2, 7) // q-2k = 3 > 0: the Corollary 5.2 peel is live
	opts.DenseCrossover = 1 << 20

	g := gen.GNP(300, 0.15, 7)
	p, err := Prepare(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	relab := p.pg.G()
	sc := newSeedScratch(relab.N())
	st := &seedStorage{}

	var stats Stats
	built := 0
	for s := 0; s < relab.N(); s++ {
		if sg := sc.build(relab, p.pg, s, &opts, st, &stats); sg != nil {
			built++
		}
	}
	if built == 0 {
		t.Fatal("no seed graphs built; test graph too sparse to exercise the builder")
	}
	if stats.DenseBuilds == 0 {
		t.Fatal("warm-up pass never took the dense path; the guard is not covering the kernel")
	}

	s := 0
	allocs := testing.AllocsPerRun(200, func() {
		sc.build(relab, p.pg, s, &opts, st, nil)
		if s++; s == relab.N() {
			s = 0
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state dense seed build allocates %.1f objects/op, want 0", allocs)
	}
}
