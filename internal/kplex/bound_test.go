package kplex

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/gen"
	"repro/internal/graph"
)

// figure3SeedGraph hand-builds a seed graph matching the paper's running
// example (Figure 3 with k=2): P = {v1, v3}, C = {v2, v5, v7}, where
//
//	v1 is adjacent to v2, v5, v7 (degree 3 in G_i),
//	v3 is adjacent to v4, v6 (degree 2 in G_i), not to v1 or any of C,
//	v7 is adjacent to v1, v5, v6,
//	v5 is adjacent to v1, v4, v7,
//	v2 is adjacent to v1 only (within this fragment).
//
// Local ids: v1=0, v2=1, v3=2, v4=3, v5=4, v6=5, v7=6.
func figure3SeedGraph() *seedGraph {
	const n = 7
	sg := &seedGraph{nv: n, nAll: n, orig: make([]int32, n)}
	sg.adj = make([]*bitset.Set, n)
	for i := range sg.adj {
		sg.adj[i] = bitset.New(n)
	}
	edge := func(a, b int) {
		sg.adj[a].Add(b)
		sg.adj[b].Add(a)
	}
	edge(0, 1) // v1-v2
	edge(0, 4) // v1-v5
	edge(0, 6) // v1-v7
	edge(2, 3) // v3-v4
	edge(2, 5) // v3-v6
	edge(4, 3) // v5-v4
	edge(4, 6) // v5-v7
	edge(6, 5) // v7-v6
	sg.degGi = make([]int, n)
	for i := 0; i < n; i++ {
		sg.degGi[i] = sg.adj[i].Count()
	}
	return sg
}

// TestExample56SupportBound reproduces the paper's Example 5.6: with
// P = {v1, v3}, C = {v2, v5, v7} and pivot v7, sup_P(v7) = 1 and K = ∅, so
// the Theorem 5.5 bound is |P| + 1 + 0 = 3.
func TestExample56SupportBound(t *testing.T) {
	sg := figure3SeedGraph()
	const k = 2
	P := bitset.New(sg.nAll)
	P.Add(0) // v1
	P.Add(2) // v3
	C := bitset.New(sg.nAll)
	C.Add(1) // v2
	C.Add(4) // v5
	C.Add(6) // v7

	degP := make([]int, sg.nAll)
	for _, v := range []int{0, 2, 1, 4, 6} {
		degP[v] = sg.adj[v].IntersectionCount(P)
	}
	var bs boundScratch
	ub := bs.supportBound(sg, k, 2, P, C, degP, 6 /* v7 */, false)
	if ub != 3 {
		t.Fatalf("Example 5.6 bound = %d, want 3", ub)
	}
}

// TestExample54DegreeBound reproduces Example 5.4: the Theorem 5.3 bound
// min_{u∈P} d_Gi(u) + k = min(3, 2) + 2 = 4.
func TestExample54DegreeBound(t *testing.T) {
	sg := figure3SeedGraph()
	const k = 2
	min := sg.degGi[0]
	if sg.degGi[2] < min {
		min = sg.degGi[2]
	}
	if got := min + k; got != 4 {
		t.Fatalf("Example 5.4 bound = %d, want 4", got)
	}
}

// TestSupportBoundIsUpperBound property-checks Theorem 5.5/5.7 on real seed
// graphs: the bound must dominate the size of every k-plex (within the
// candidate space) that extends the seed.
func TestSupportBoundIsUpperBound(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := gen.GNP(14, 0.55, 300+seed)
		relab, _ := graph.DegeneracyOrderedCopy(g)
		for _, kq := range []struct{ k, q int }{{2, 3}, {3, 5}} {
			opts := NewOptions(kq.k, kq.q)
			for s := 0; s < relab.N(); s++ {
				sg := buildSeedGraph(relab, s, &opts)
				if sg == nil || sg.nv > 16 {
					continue
				}
				P := bitset.New(sg.nAll)
				P.Add(0)
				C := sg.nbrSeed.Clone()
				degP := make([]int, sg.nAll)
				for v := 0; v < sg.nAll; v++ {
					degP[v] = sg.adj[v].IntersectionCount(P)
				}
				var bs boundScratch
				ub := bs.subtaskBound(sg, kq.k, 1, P, C, degP)

				// Brute-force the true maximum: every subset of {seed}∪C
				// containing the seed.
				cands := C.Slice()
				best := 1
				for mask := 0; mask < 1<<len(cands); mask++ {
					set := []int{0}
					for i, c := range cands {
						if mask&(1<<i) != 0 {
							set = append(set, c)
						}
					}
					if len(set) <= best {
						continue
					}
					if localIsKPlex(sg, set, kq.k) {
						best = len(set)
					}
				}
				if ub < best {
					t.Fatalf("seed=%d s=%d k=%d: bound %d < achievable %d",
						seed, s, kq.k, ub, best)
				}
			}
		}
	}
}

// localIsKPlex checks the k-plex condition inside a seed graph.
func localIsKPlex(sg *seedGraph, set []int, k int) bool {
	for _, u := range set {
		d := 0
		for _, v := range set {
			if v != u && sg.adj[u].Contains(v) {
				d++
			}
		}
		if d < len(set)-k {
			return false
		}
	}
	return true
}

// TestSortedBoundNeverLooserThanNeeded: the FP-style bound must also be a
// valid upper bound and must never exceed... it may differ from the
// unsorted bound, but both must dominate the achievable maximum. Reuses
// the brute force above through the same harness.
func TestSortedBoundIsUpperBound(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := gen.GNP(13, 0.6, 500+seed)
		relab, _ := graph.DegeneracyOrderedCopy(g)
		k, q := 2, 3
		opts := NewOptions(k, q)
		for s := 0; s < relab.N(); s++ {
			sg := buildSeedGraph(relab, s, &opts)
			if sg == nil || sg.nv > 15 {
				continue
			}
			P := bitset.New(sg.nAll)
			P.Add(0)
			C := sg.nbrSeed.Clone()
			vp := C.Any()
			if vp == -1 {
				continue
			}
			C2 := C.Clone()
			C2.Remove(vp)
			degP := make([]int, sg.nAll)
			for v := 0; v < sg.nAll; v++ {
				degP[v] = sg.adj[v].IntersectionCount(P)
			}
			var bs boundScratch
			ub := bs.supportBoundSorted(sg, k, 1, P, C2, degP, vp)

			// Brute-force max k-plex containing {0, vp} within {0}∪C.
			cands := C2.Slice()
			best := 2
			if !localIsKPlex(sg, []int{0, vp}, k) {
				continue
			}
			for mask := 0; mask < 1<<len(cands); mask++ {
				set := []int{0, vp}
				for i, c := range cands {
					if mask&(1<<i) != 0 {
						set = append(set, c)
					}
				}
				if len(set) <= best {
					continue
				}
				if localIsKPlex(sg, set, k) {
					best = len(set)
				}
			}
			if ub < best {
				t.Fatalf("seed=%d s=%d: sorted bound %d < achievable %d", seed, s, ub, best)
			}
		}
	}
}
