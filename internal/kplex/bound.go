package kplex

import (
	"sort"

	"repro/internal/bitset"
)

// boundScratch holds the reusable buffers for Algorithm 4. Each worker owns
// one, resized lazily to the current seed graph. None of the buffers
// survive across Branch recursion levels.
type boundScratch struct {
	sup     []int // sup_P(u) working copy, indexed by local vertex id
	pMem    []int // members of P as a slice
	tmp     *bitset.Set
	sortBuf []sortCand
}

type sortCand struct {
	v       int
	nonNbrs int
}

func (bs *boundScratch) resize(nAll int) {
	if len(bs.sup) < nAll {
		bs.sup = make([]int, nAll)
		bs.tmp = bitset.New(nAll)
	}
}

// supportBound implements Algorithm 4: the Theorem 5.5 upper bound on the
// size of any k-plex containing P ∪ {vp}, where vp ∈ C. degP must hold
// |N(v) ∩ P| for every v ∈ P ∪ C. If vpIsSeedTask is true, the Theorem 5.7
// specialisation is applied (vp is the task's seed vertex, already in P,
// with sup(vp) forced to 0 and K computed over all of C).
func (bs *boundScratch) supportBound(sg *seedGraph, k, sizeP int, P, C *bitset.Set, degP []int, vp int, vpIsSeedTask bool) int {
	bs.resize(sg.nAll)
	bs.pMem = bs.pMem[:0]
	P.ForEach(func(u int) {
		bs.sup[u] = k - (sizeP - degP[u]) // d̄_P(u) counts u itself
		bs.pMem = append(bs.pMem, u)
	})

	var supVp int
	if vpIsSeedTask {
		supVp = 0
	} else {
		// vp ∉ P: d̄_P(vp) = |P| - d_P(vp) does not count vp itself.
		supVp = k - (sizeP - degP[vp])
	}

	// K is counted over N_C(vp) (Theorem 5.5) or all of C (Theorem 5.7,
	// where C = N(v_i) contains only neighbours of vp = v_i anyway).
	kCount := 0
	nc := bs.tmp
	nc.Copy(C)
	if !vpIsSeedTask {
		nc.And(sg.adj[vp])
	}
	nc.ForEach(func(w int) {
		// u_m = argmin sup over w's non-neighbours in P.
		um, umSup := -1, 0
		aw := sg.adj[w]
		for _, u := range bs.pMem {
			if aw.Contains(u) {
				continue
			}
			if um == -1 || bs.sup[u] < umSup {
				um, umSup = u, bs.sup[u]
			}
		}
		if um == -1 {
			// No non-neighbour in P constrains w.
			kCount++
			return
		}
		if umSup > 0 {
			bs.sup[um]--
			kCount++
		}
	})
	return sizeP + supVp + kCount
}

// supportBoundSorted is the FP-style variant used by the Ours\ub+fp
// ablation: identical accounting, but candidates are first sorted by their
// non-neighbour count in P, paying the O(|C| log |C|) sort that the paper
// identifies as the weakness of FP's bound. The sorted order can only
// tighten the greedy charge assignment, so the result remains a valid
// upper bound.
func (bs *boundScratch) supportBoundSorted(sg *seedGraph, k, sizeP int, P, C *bitset.Set, degP []int, vp int) int {
	bs.resize(sg.nAll)
	bs.pMem = bs.pMem[:0]
	P.ForEach(func(u int) {
		bs.sup[u] = k - (sizeP - degP[u])
		bs.pMem = append(bs.pMem, u)
	})
	supVp := k - (sizeP - degP[vp])

	bs.sortBuf = bs.sortBuf[:0]
	nc := bs.tmp
	nc.Copy(C)
	nc.And(sg.adj[vp])
	nc.ForEach(func(w int) {
		bs.sortBuf = append(bs.sortBuf, sortCand{w, sizeP - degP[w]})
	})
	sort.Slice(bs.sortBuf, func(i, j int) bool {
		if bs.sortBuf[i].nonNbrs != bs.sortBuf[j].nonNbrs {
			return bs.sortBuf[i].nonNbrs < bs.sortBuf[j].nonNbrs
		}
		return bs.sortBuf[i].v < bs.sortBuf[j].v
	})

	kCount := 0
	for _, cand := range bs.sortBuf {
		aw := sg.adj[cand.v]
		um, umSup := -1, 0
		for _, u := range bs.pMem {
			if aw.Contains(u) {
				continue
			}
			if um == -1 || bs.sup[u] < umSup {
				um, umSup = u, bs.sup[u]
			}
		}
		if um == -1 {
			kCount++
			continue
		}
		if umSup > 0 {
			bs.sup[um]--
			kCount++
		}
	}
	return sizeP + supVp + kCount
}

// subtaskBound implements rule R1 (Theorem 5.7): an upper bound on the size
// of any k-plex extending the initial sub-task P_S = {v_i} ∪ S with
// candidate set C ⊆ N(v_i). degP must cover P ∪ C. The returned bound is
// min(|P_S| + |K|, min_{v∈P_S} d_{G_i}(v) + k).
func (bs *boundScratch) subtaskBound(sg *seedGraph, k, sizeP int, P, C *bitset.Set, degP []int) int {
	ub := bs.supportBound(sg, k, sizeP, P, C, degP, 0, true)
	minDeg := -1
	P.ForEach(func(u int) {
		if minDeg == -1 || sg.degGi[u] < minDeg {
			minDeg = sg.degGi[u]
		}
	})
	if minDeg >= 0 && minDeg+k < ub {
		ub = minDeg + k
	}
	return ub
}
