package kplex

// The query cost model. A serving layer in front of the engine has to make
// three placement decisions per query — run it synchronously or as a
// durable job, with how many threads, under which scheduler/τ_time — and
// all three hinge on the same unknown: how long the enumeration will take.
// The prologue already computes everything a useful predictor needs (the
// reduced working graph, its degeneracy orientation), so CostFeatures
// summarises it in O(n) once per Prepared handle, and CostModel maps the
// summary to a predicted duration with a log-linear fit over the corpus
// measurements (see FitCostModel and DefaultCostModel). Predictions are
// order-of-magnitude estimates — exact enumeration cost is itself
// #P-hard — which is exactly enough to separate "answer inline" from
// "queue a job", and to pick a scheduler. kplexd additionally calibrates
// the model online against observed runtimes (see internal/server).

import (
	"fmt"
	"math"
	"time"
)

// CostFeatures is the prologue summary the cost model predicts from: the
// reduced working graph's size, the (k, q) cell, and the later-degree
// distribution of the degeneracy orientation (later degree bounds every
// seed subgraph's candidate pool, so its mass and tail govern both the
// number of non-trivial seed groups and the width of each branch tree).
type CostFeatures struct {
	N int // working-graph vertices after reduction
	M int // working-graph edges after reduction
	K int
	Q int

	ActiveSeeds int     // vertices with later degree >= q-k (groups that survive the first prune)
	AvgLaterDeg float64 // mean later degree over active seeds
	MaxLaterDeg int     // degeneracy of the working graph
}

// CostFeatures returns the handle's prologue summary, computed on first
// use and memoized (the handle is immutable, so the summary is too).
func (p *Prepared) CostFeatures() CostFeatures {
	p.costOnce.Do(func() {
		f := CostFeatures{N: p.pg.N(), M: p.pg.G().M(), K: p.k, Q: p.q}
		need := p.q - p.k
		sum := 0
		for v := 0; v < f.N; v++ {
			ld := len(p.pg.LaterNeighbors(v))
			if ld > f.MaxLaterDeg {
				f.MaxLaterDeg = ld
			}
			if ld >= need {
				f.ActiveSeeds++
				sum += ld
			}
		}
		if f.ActiveSeeds > 0 {
			f.AvgLaterDeg = float64(sum) / float64(f.ActiveSeeds)
		}
		p.costF = f
	})
	return p.costF
}

// costFeatureDim is the length of the regression vector.
const costFeatureDim = 6

// vector maps the features to the regression basis. N and M are deliberately
// absent: M = N·avgdeg/2 makes (log N, log M, log density) linearly
// dependent, which made fits of the raw-size basis unstable; the seed
// decomposition view is both better conditioned and closer to the actual
// cost structure — cost ≈ Σ_seeds branch(G_i), with |G_i| governed by the
// later-degree distribution. Counts enter as logs (cost is polynomial in
// them), k linearly (cost is exponential in k — Theorem 4.2's γ_k^D term),
// and q through the headroom 2k-q (each unit of slack beyond the Corollary
// 5.2 threshold loosens every prune).
func (f CostFeatures) vector() [costFeatureDim]float64 {
	return [costFeatureDim]float64{
		1,
		math.Log1p(float64(f.ActiveSeeds)),
		math.Log1p(f.AvgLaterDeg),
		math.Log1p(float64(f.MaxLaterDeg)),
		float64(f.K),
		float64(2*f.K - f.Q), // headroom: more positive = looser pruning
	}
}

// CostModel is a log-linear predictor: log(seconds) = coef · vector(f).
// The zero value predicts nothing useful; use DefaultCostModel or fit one
// with FitCostModel.
type CostModel struct {
	Coef [costFeatureDim]float64
}

// Predict returns the model's runtime estimate for a run over a graph with
// features f. The estimate is clamped to [1µs, 24h]: the model is a router,
// and nothing outside that range changes a routing decision.
func (m *CostModel) Predict(f CostFeatures) time.Duration {
	x := f.vector()
	logSec := 0.0
	for i, c := range m.Coef {
		logSec += c * x[i]
	}
	sec := math.Exp(logSec)
	switch {
	case sec < 1e-6:
		sec = 1e-6
	case sec > 86400:
		sec = 86400
	}
	return time.Duration(sec * float64(time.Second))
}

// CostSample is one observed (features, runtime) pair for fitting.
type CostSample struct {
	F       CostFeatures
	Elapsed time.Duration
}

// FitCostModel fits a CostModel to samples by least squares on
// log(seconds), solving the normal equations with a small ridge term for
// stability (the log-count features still co-vary on most graph families).
// It needs at least costFeatureDim samples.
func FitCostModel(samples []CostSample) (CostModel, error) {
	if len(samples) < costFeatureDim {
		return CostModel{}, fmt.Errorf("kplex: FitCostModel needs >= %d samples, got %d", costFeatureDim, len(samples))
	}
	const lambda = 1e-6
	var ata [costFeatureDim][costFeatureDim]float64
	var atb [costFeatureDim]float64
	for _, s := range samples {
		sec := s.Elapsed.Seconds()
		if sec <= 0 {
			sec = 1e-9
		}
		y := math.Log(sec)
		x := s.F.vector()
		for i := 0; i < costFeatureDim; i++ {
			for j := 0; j < costFeatureDim; j++ {
				ata[i][j] += x[i] * x[j]
			}
			atb[i] += x[i] * y
		}
	}
	for i := 0; i < costFeatureDim; i++ {
		ata[i][i] += lambda
	}

	// Gaussian elimination with partial pivoting on the small dense system.
	for col := 0; col < costFeatureDim; col++ {
		piv := col
		for r := col + 1; r < costFeatureDim; r++ {
			if math.Abs(ata[r][col]) > math.Abs(ata[piv][col]) {
				piv = r
			}
		}
		if math.Abs(ata[piv][col]) < 1e-12 {
			return CostModel{}, fmt.Errorf("kplex: FitCostModel: singular normal equations (degenerate sample set)")
		}
		ata[col], ata[piv] = ata[piv], ata[col]
		atb[col], atb[piv] = atb[piv], atb[col]
		for r := col + 1; r < costFeatureDim; r++ {
			fac := ata[r][col] / ata[col][col]
			for c := col; c < costFeatureDim; c++ {
				ata[r][c] -= fac * ata[col][c]
			}
			atb[r] -= fac * atb[col]
		}
	}
	var m CostModel
	for i := costFeatureDim - 1; i >= 0; i-- {
		v := atb[i]
		for j := i + 1; j < costFeatureDim; j++ {
			v -= ata[i][j] * m.Coef[j]
		}
		m.Coef[i] = v / ata[i][i]
	}
	return m, nil
}

// DefaultCostModel is the built-in predictor, fitted offline with
// FitCostModel over sequential corpus runs (every corpus graph × a (k, q)
// sweep; see TestDefaultCostModelSane for the pinned quality bar). The
// absolute scale is machine-dependent — kplexd's online calibration
// absorbs that — but the feature weights transfer: they encode how cost
// scales with size, k and q-headroom, which is hardware-independent.
var DefaultCostModel = CostModel{
	Coef: [costFeatureDim]float64{
		-12.8925, // intercept
		0.4508,   // log1p(active seeds)
		1.6225,   // log1p(avg later degree)
		0.3972,   // log1p(max later degree)
		0.3057,   // K
		0.6638,   // 2K-Q headroom
	},
}
