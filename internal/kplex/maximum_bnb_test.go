package kplex

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestGreedyKPlexIsValid(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		for seed := int64(0); seed < 5; seed++ {
			g := gen.GNP(40, 0.3, seed)
			p := GreedyKPlex(g, k)
			if len(p) == 0 {
				t.Fatalf("k=%d seed=%d: greedy found nothing", k, seed)
			}
			if !IsKPlex(g, p, k) {
				t.Errorf("k=%d seed=%d: greedy result %v is not a k-plex", k, seed, p)
			}
		}
	}
}

func TestGreedyKPlexEdgeCases(t *testing.T) {
	empty, _ := new(graph.Builder).Build(0)
	if p := GreedyKPlex(empty, 2); p != nil {
		t.Errorf("empty graph: got %v", p)
	}
	g := gen.GNP(10, 0.5, 1)
	if p := GreedyKPlex(g, 0); p != nil {
		t.Errorf("k=0: got %v", p)
	}
}

func TestBnBMatchesBinarySearchMaximum(t *testing.T) {
	ctx := context.Background()
	graphs := map[string]*graph.Graph{
		"gnp-40":  gen.GNP(40, 0.35, 1),
		"gnp-60":  gen.GNP(60, 0.2, 2),
		"chunglu": gen.ChungLu(120, 12, 2.2, 3),
		"planted": gen.Planted(gen.PlantedConfig{
			N: 80, BackgroundP: 0.02, Communities: 5, CommSize: 11,
			DropPerV: 1, Overlap: 2, Seed: 4,
		}),
		"ws": gen.WattsStrogatz(80, 10, 0.1, 5),
	}
	for name, g := range graphs {
		for _, k := range []int{1, 2, 3} {
			want, err := FindMaximumKPlex(ctx, g, k)
			if err != nil {
				t.Fatalf("%s k=%d: binary search: %v", name, k, err)
			}
			got, err := FindMaximumKPlexBnB(ctx, g, k)
			if err != nil {
				t.Fatalf("%s k=%d: bnb: %v", name, k, err)
			}
			if len(got) != len(want) {
				t.Errorf("%s k=%d: BnB found size %d, binary search found %d",
					name, k, len(got), len(want))
			}
			if got != nil && !IsKPlex(g, got, k) {
				t.Errorf("%s k=%d: BnB result is not a k-plex: %v", name, k, got)
			}
		}
	}
}

func TestBnBNoQualifyingPlex(t *testing.T) {
	// A single edge has no 2-plex with >= 3 vertices.
	var b graph.Builder
	b.AddEdge(0, 1)
	g, _ := b.Build(2)
	got, err := FindMaximumKPlexBnB(context.Background(), g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Errorf("expected nil, got %v", got)
	}
}

func TestBnBRejectsBadK(t *testing.T) {
	g := gen.GNP(5, 0.5, 1)
	if _, err := FindMaximumKPlexBnB(context.Background(), g, 0); err == nil {
		t.Error("expected error for k=0")
	}
}

func TestBnBHonorsContext(t *testing.T) {
	g := gen.ChungLu(2000, 30, 2.1, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FindMaximumKPlexBnB(ctx, g, 3); err == nil {
		t.Error("expected context error")
	}
}

func TestEnumerateTopK(t *testing.T) {
	g := gen.Planted(gen.PlantedConfig{
		N: 100, BackgroundP: 0.02, Communities: 6, CommSize: 10,
		DropPerV: 1, Overlap: 0, Seed: 7,
	})
	ctx := context.Background()
	k, q := 2, 5

	// Ground truth: full enumeration sorted by size.
	var all [][]int
	opts := NewOptions(k, q)
	opts.OnPlex = func(p []int) { all = append(all, append([]int(nil), p...)) }
	full, err := Run(ctx, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Count < 5 {
		t.Fatalf("test graph too sparse: only %d plexes", full.Count)
	}

	for _, topN := range []int{1, 3, int(full.Count), int(full.Count) + 10} {
		got, res, err := EnumerateTopK(ctx, g, NewOptions(k, q), topN)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != full.Count {
			t.Errorf("topN=%d: Count = %d, want %d", topN, res.Count, full.Count)
		}
		wantLen := topN
		if wantLen > int(full.Count) {
			wantLen = int(full.Count)
		}
		if len(got) != wantLen {
			t.Fatalf("topN=%d: returned %d plexes, want %d", topN, len(got), wantLen)
		}
		// Sizes must be non-increasing and match the global top sizes.
		sizes := make([]int, len(all))
		for i, p := range all {
			sizes[i] = len(p)
		}
		sortDesc(sizes)
		for i, p := range got {
			if len(p) != sizes[i] {
				t.Errorf("topN=%d: result %d has size %d, want %d", topN, i, len(p), sizes[i])
			}
			if !IsMaximalKPlex(g, p, k) {
				t.Errorf("topN=%d: result %d is not maximal", topN, i)
			}
		}
	}
}

func TestEnumerateTopKBadN(t *testing.T) {
	g := gen.GNP(10, 0.5, 1)
	if _, _, err := EnumerateTopK(context.Background(), g, NewOptions(2, 3), 0); err == nil {
		t.Error("expected error for topN=0")
	}
}

func TestEnumerateTopKParallel(t *testing.T) {
	g := gen.ChungLu(400, 16, 2.2, 8)
	seqOpts := NewOptions(2, 8)
	seq, _, err := EnumerateTopK(context.Background(), g, seqOpts, 5)
	if err != nil {
		t.Fatal(err)
	}
	parOpts := NewOptions(2, 8)
	parOpts.Threads = 4
	par, _, err := EnumerateTopK(context.Background(), g, parOpts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("parallel returned %d, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if len(seq[i]) != len(par[i]) {
			t.Errorf("rank %d: size %d (par) vs %d (seq)", i, len(par[i]), len(seq[i]))
		}
	}
}

func sortDesc(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] < v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
