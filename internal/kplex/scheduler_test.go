package kplex

import (
	"context"
	"testing"
	"time"

	"repro/internal/gen"
)

// TestStealSchedulerBoundedDeque forces tiny deque bounds so the overflow
// path (owner runs tasks inline) is exercised; results must be unaffected.
func TestStealSchedulerBoundedDeque(t *testing.T) {
	g := gen.ChungLu(400, 14, 2.2, 58)
	const k, q = 2, 7
	want := mustRun(t, g, NewOptions(k, q))
	for _, bound := range []int{1, 2, 16} {
		opts := NewOptions(k, q)
		opts.Threads = 4
		opts.TaskTimeout = time.Microsecond
		opts.Scheduler = SchedulerSteal
		opts.StealQueueBound = bound
		res := mustRun(t, g, opts)
		if res.Count != want.Count {
			t.Errorf("bound=%d: count %d, want %d", bound, res.Count, want.Count)
		}
	}
}

// TestTryStealMovesHalf drives the steal mechanics deterministically: a
// thief must take the oldest half of a victim's deque in one batch and
// score the Steals counter, and a round over empty victims must come back
// empty-handed.
func TestTryStealMovesHalf(t *testing.T) {
	e := &engine{}
	e.deques = []*stealDeque{newStealDeque(16), newStealDeque(16)}
	thief := &worker{id: 0, eng: e}
	for i := 0; i < 4; i++ {
		e.deques[1].push(&task{sizeP: i})
	}
	rng := stealRand(1)
	loot := e.trySteal(thief, &rng, nil)
	if len(loot) != 2 || loot[0].sizeP != 0 || loot[1].sizeP != 1 {
		t.Fatalf("trySteal = %v, want the two oldest tasks", loot)
	}
	if thief.stats.Steals != 2 {
		t.Fatalf("Steals = %d, want 2", thief.stats.Steals)
	}
	// Halving continues: 2 left → 1 stolen, 1 left → 1 stolen, then empty.
	for _, want := range []int{1, 1, 0} {
		if loot = e.trySteal(thief, &rng, nil); len(loot) != want {
			t.Fatalf("round stole %d, want %d", len(loot), want)
		}
	}
	if thief.stats.Steals != 4 {
		t.Fatalf("Steals = %d, want 4", thief.stats.Steals)
	}
}

// TestStealSchedulerCountersFire runs the steal scheduler on a
// straggler-heavy workload and reports the counters. Whether tasks
// actually migrate depends on host scheduling, so like the splits test
// below this logs rather than asserts the counter values; correctness of
// the count is still enforced by the differential tests.
func TestStealSchedulerCountersFire(t *testing.T) {
	n, comms := 800, 10
	if testing.Short() {
		n, comms = 300, 4
	}
	g := gen.Planted(gen.PlantedConfig{
		N: n, BackgroundP: 0.004, Communities: comms, CommSize: 22,
		DropPerV: 2, Overlap: 4, Seed: 57,
	})
	opts := NewOptions(3, 9)
	opts.Threads = 4
	opts.TaskTimeout = 20 * time.Microsecond
	opts.Scheduler = SchedulerSteal
	res, err := Run(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Steals == 0 {
		t.Log("no steals observed; every worker stayed busy with its own seeds on this host")
	}
	t.Logf("steals=%d misses=%d splits=%d", res.Stats.Steals, res.Stats.StealMisses, res.Stats.Splits)
}

func TestStealSchedulerCancellation(t *testing.T) {
	g := gen.ChungLu(3000, 25, 2.1, 56)
	opts := NewOptions(3, 9)
	opts.Threads = 4
	opts.TaskTimeout = 50 * time.Microsecond
	opts.Scheduler = SchedulerSteal
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := Run(ctx, g, opts)
	if err == nil {
		t.Skip("run finished before the deadline; nothing to assert")
	}
	if err != context.DeadlineExceeded {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

func TestStealDequeOps(t *testing.T) {
	d := newStealDeque(4)
	mk := func(i int) *task { return &task{sizeP: i} }
	for i := 0; i < 4; i++ {
		if !d.push(mk(i)) {
			t.Fatalf("push %d rejected below bound", i)
		}
	}
	if d.push(mk(99)) {
		t.Fatal("push accepted beyond bound")
	}
	if got := d.popBack(); got.sizeP != 3 {
		t.Fatalf("popBack = %d, want 3", got.sizeP)
	}
	// 3 tasks left: steal-half takes the oldest 2, leaves {2}.
	loot := d.stealHalf(nil, 100)
	if len(loot) != 2 || loot[0].sizeP != 0 || loot[1].sizeP != 1 {
		t.Fatalf("stealHalf = %v", loot)
	}
	if got := d.popBack(); got.sizeP != 2 {
		t.Fatalf("popBack after steal = %d, want 2", got.sizeP)
	}
	if d.popBack() != nil {
		t.Fatal("empty deque should return nil")
	}
	if loot := d.stealHalf(nil, 100); len(loot) != 0 {
		t.Fatalf("stealHalf on empty deque = %v", loot)
	}
	// maxTake caps the transfer.
	for i := 0; i < 4; i++ {
		d.push(mk(i))
	}
	if loot := d.stealHalf(nil, 1); len(loot) != 1 || loot[0].sizeP != 0 {
		t.Fatalf("capped stealHalf = %v", loot)
	}
}

// Both legacy schedulers must produce identical counts across thread counts
// and timeout settings; the scheduler only changes who runs a task, never
// what the task computes.
func TestGlobalQueueSchedulerMatchesStages(t *testing.T) {
	n := 600
	if testing.Short() {
		n = 250
	}
	g := gen.ChungLu(n, 16, 2.2, 55)
	const k, q = 2, 8

	want, err := Run(context.Background(), g, NewOptions(k, q))
	if err != nil {
		t.Fatal(err)
	}
	if want.Count == 0 {
		t.Fatal("test graph has no results")
	}

	for _, threads := range []int{2, 4} {
		for _, tau := range []time.Duration{0, 50 * time.Microsecond} {
			for _, sched := range []SchedulerStyle{SchedulerStages, SchedulerGlobalQueue} {
				opts := NewOptions(k, q)
				opts.Threads = threads
				opts.TaskTimeout = tau
				opts.Scheduler = sched
				res, err := Run(context.Background(), g, opts)
				if err != nil {
					t.Fatalf("threads=%d tau=%v sched=%v: %v", threads, tau, sched, err)
				}
				if res.Count != want.Count {
					t.Errorf("threads=%d tau=%v sched=%v: count %d, want %d",
						threads, tau, sched, res.Count, want.Count)
				}
			}
		}
	}
}

func TestGlobalQueueSchedulerCancellation(t *testing.T) {
	g := gen.ChungLu(3000, 25, 2.1, 56)
	opts := NewOptions(3, 9)
	opts.Threads = 4
	opts.Scheduler = SchedulerGlobalQueue
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := Run(ctx, g, opts)
	if err == nil {
		t.Skip("run finished before the deadline; nothing to assert")
	}
	if err != context.DeadlineExceeded {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

func TestSchedulerStyleString(t *testing.T) {
	cases := map[SchedulerStyle]string{
		SchedulerStages:      "stages",
		SchedulerGlobalQueue: "global-queue",
		SchedulerSteal:       "steal",
		SchedulerStyle(9):    "SchedulerStyle(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

// The timeout splitting mechanism must feed the shared queue under the
// global scheduler too (Stats.Splits > 0 on a straggler-heavy instance).
func TestGlobalQueueSchedulerSplits(t *testing.T) {
	g := gen.Planted(gen.PlantedConfig{
		N: 800, BackgroundP: 0.004, Communities: 10, CommSize: 22,
		DropPerV: 2, Overlap: 4, Seed: 57,
	})
	opts := NewOptions(3, 9)
	opts.Threads = 4
	opts.TaskTimeout = 20 * time.Microsecond
	opts.Scheduler = SchedulerGlobalQueue
	res, err := Run(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Splits == 0 {
		t.Log("no splits observed; timeout may exceed every task on this host")
	}
}
