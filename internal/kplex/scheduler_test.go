package kplex

import (
	"context"
	"testing"
	"time"

	"repro/internal/gen"
)

// Both schedulers must produce identical counts across thread counts and
// timeout settings; the scheduler only changes who runs a task, never what
// the task computes.
func TestGlobalQueueSchedulerMatchesStages(t *testing.T) {
	g := gen.ChungLu(600, 16, 2.2, 55)
	const k, q = 2, 8

	want, err := Run(context.Background(), g, NewOptions(k, q))
	if err != nil {
		t.Fatal(err)
	}
	if want.Count == 0 {
		t.Fatal("test graph has no results")
	}

	for _, threads := range []int{2, 4} {
		for _, tau := range []time.Duration{0, 50 * time.Microsecond} {
			for _, sched := range []SchedulerStyle{SchedulerStages, SchedulerGlobalQueue} {
				opts := NewOptions(k, q)
				opts.Threads = threads
				opts.TaskTimeout = tau
				opts.Scheduler = sched
				res, err := Run(context.Background(), g, opts)
				if err != nil {
					t.Fatalf("threads=%d tau=%v sched=%v: %v", threads, tau, sched, err)
				}
				if res.Count != want.Count {
					t.Errorf("threads=%d tau=%v sched=%v: count %d, want %d",
						threads, tau, sched, res.Count, want.Count)
				}
			}
		}
	}
}

func TestGlobalQueueSchedulerCancellation(t *testing.T) {
	g := gen.ChungLu(3000, 25, 2.1, 56)
	opts := NewOptions(3, 9)
	opts.Threads = 4
	opts.Scheduler = SchedulerGlobalQueue
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := Run(ctx, g, opts)
	if err == nil {
		t.Skip("run finished before the deadline; nothing to assert")
	}
	if err != context.DeadlineExceeded {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

func TestSchedulerStyleString(t *testing.T) {
	cases := map[SchedulerStyle]string{
		SchedulerStages:      "stages",
		SchedulerGlobalQueue: "global-queue",
		SchedulerStyle(9):    "SchedulerStyle(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

// The timeout splitting mechanism must feed the shared queue under the
// global scheduler too (Stats.Splits > 0 on a straggler-heavy instance).
func TestGlobalQueueSchedulerSplits(t *testing.T) {
	g := gen.Planted(gen.PlantedConfig{
		N: 800, BackgroundP: 0.004, Communities: 10, CommSize: 22,
		DropPerV: 2, Overlap: 4, Seed: 57,
	})
	opts := NewOptions(3, 9)
	opts.Threads = 4
	opts.TaskTimeout = 20 * time.Microsecond
	opts.Scheduler = SchedulerGlobalQueue
	res, err := Run(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Splits == 0 {
		t.Log("no splits observed; timeout may exceed every task on this host")
	}
}
