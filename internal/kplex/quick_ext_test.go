package kplex_test

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/gen"
	"repro/internal/kplex"
)

// Every upper-bound style, scheduler and thread count computes the same
// result count on arbitrary random graphs — the configuration space only
// trades time, never answers.
func TestQuickConfigurationsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(60)
		g := gen.GNP(n, 0.1+0.25*rng.Float64(), seed)
		k := 1 + rng.Intn(3)
		q := 2*k - 1 + rng.Intn(4)

		base, err := kplex.Run(context.Background(), g, kplex.NewOptions(k, q))
		if err != nil {
			return false
		}

		variants := []func() kplex.Options{
			func() kplex.Options {
				o := kplex.NewOptions(k, q)
				o.UpperBound = kplex.UBNone
				return o
			},
			func() kplex.Options {
				o := kplex.NewOptions(k, q)
				o.UpperBound = kplex.UBColor
				return o
			},
			func() kplex.Options {
				o := kplex.NewOptions(k, q)
				o.Branching = kplex.BranchFaPlexen
				return o
			},
			func() kplex.Options {
				o := kplex.NewOptions(k, q)
				o.Threads = 3
				o.TaskTimeout = 30 * time.Microsecond
				return o
			},
			func() kplex.Options {
				o := kplex.NewOptions(k, q)
				o.Threads = 3
				o.Scheduler = kplex.SchedulerGlobalQueue
				return o
			},
			func() kplex.Options {
				o := kplex.NewOptions(k, q)
				o.UseCTCP = true
				return o
			},
		}
		for _, mk := range variants {
			res, err := kplex.Run(context.Background(), g, mk())
			if err != nil || res.Count != base.Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// The maximum solvers agree with each other and never exceed the
// degeneracy+k upper bound; the greedy heuristic never beats them.
func TestQuickMaximumSolversConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(40)
		g := gen.GNP(n, 0.2+0.3*rng.Float64(), seed)
		k := 1 + rng.Intn(3)
		ctx := context.Background()

		bin, err := kplex.FindMaximumKPlex(ctx, g, k)
		if err != nil {
			return false
		}
		bnb, err := kplex.FindMaximumKPlexBnB(ctx, g, k)
		if err != nil {
			return false
		}
		if len(bin) != len(bnb) {
			return false
		}
		if bnb != nil && !kplex.IsKPlex(g, bnb, k) {
			return false
		}
		greedy := kplex.GreedyKPlex(g, k)
		if len(greedy) >= 2*k-1 && len(greedy) > len(bin) && bin != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// EnumerateTopK returns exactly the largest sizes of the full result set.
func TestQuickTopKSizes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNP(25+rng.Intn(30), 0.3, seed)
		k, q := 2, 4
		var sizes []int
		opts := kplex.NewOptions(k, q)
		opts.OnPlex = func(p []int) { sizes = append(sizes, len(p)) }
		if _, err := kplex.Run(context.Background(), g, opts); err != nil {
			return false
		}
		if len(sizes) == 0 {
			return true
		}
		topN := 1 + rng.Intn(len(sizes))
		top, _, err := kplex.EnumerateTopK(context.Background(), g, kplex.NewOptions(k, q), topN)
		if err != nil {
			return false
		}
		// Sort sizes descending and compare prefixes.
		for i := 1; i < len(sizes); i++ {
			for j := i; j > 0 && sizes[j-1] < sizes[j]; j-- {
				sizes[j-1], sizes[j] = sizes[j], sizes[j-1]
			}
		}
		if len(top) != topN {
			return false
		}
		for i, p := range top {
			if len(p) != sizes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
