package kplex

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestPreparedMarshalRoundTrip(t *testing.T) {
	g := gen.Planted(gen.PlantedConfig{
		N: 120, BackgroundP: 0.02, Communities: 4, CommSize: 12,
		DropPerV: 1, Overlap: 2, Seed: 41,
	})
	for _, ctcp := range []bool{false, true} {
		opts := Options{K: 2, Q: 6, UseCTCP: ctcp}
		p, err := Prepare(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		digest := graph.Digest(g)
		raw := MarshalPrepared(p, digest)
		p2, gotDigest, err := UnmarshalPrepared(raw)
		if err != nil {
			t.Fatalf("ctcp=%v: %v", ctcp, err)
		}
		if gotDigest != digest {
			t.Fatalf("ctcp=%v: source digest did not survive", ctcp)
		}
		if p2.K() != 2 || p2.Q() != 6 || p2.UseCTCP() != ctcp {
			t.Fatalf("ctcp=%v: options cell did not survive: k=%d q=%d ctcp=%v", ctcp, p2.K(), p2.Q(), p2.UseCTCP())
		}
		if p2.SeedSpace() != p.SeedSpace() {
			t.Fatalf("ctcp=%v: seed space %d != %d", ctcp, p2.SeedSpace(), p.SeedSpace())
		}
		// The deserialized handle must enumerate the same result set.
		ref, err := RunPrepared(context.Background(), p, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunPrepared(context.Background(), p2, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != ref.Count {
			t.Fatalf("ctcp=%v: deserialized handle counts %d, original %d", ctcp, got.Count, ref.Count)
		}
	}
}

func TestPreparedUnmarshalRejectsCorruption(t *testing.T) {
	g := gen.GNP(60, 0.15, 3)
	p, err := Prepare(g, Options{K: 2, Q: 5})
	if err != nil {
		t.Fatal(err)
	}
	raw := MarshalPrepared(p, graph.Digest(g))

	cases := map[string]func([]byte) []byte{
		"empty":     func(b []byte) []byte { return nil },
		"short":     func(b []byte) []byte { return b[:6] },
		"bad-magic": func(b []byte) []byte { b[0] ^= 0xff; return b },
		"truncated": func(b []byte) []byte { return b[:len(b)-9] },
		"bit-flip":  func(b []byte) []byte { b[len(b)/2] ^= 0x10; return b },
		"version":   func(b []byte) []byte { b[8] = 0x7f; return b },
		"trailing":  func(b []byte) []byte { return append(b, 0xaa) },
	}
	for name, mutate := range cases {
		buf := append([]byte(nil), raw...)
		if _, _, err := UnmarshalPrepared(mutate(buf)); err == nil {
			t.Errorf("%s: corrupt prepared file accepted", name)
		}
	}
}
