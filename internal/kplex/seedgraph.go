package kplex

import (
	"slices"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// seedGraph is the per-seed working graph G_i of Algorithm 2: the seed
// vertex v_i, its later neighbours N¹ (the candidate pool C_S), its later
// 2-hop vertices N² (the S-enumeration pool), and the earlier 2-hop
// vertices V' that only ever appear in the exclusive set X. Vertices are
// relabelled into a compact local id space:
//
//	0            — the seed v_i
//	1..|N¹|      — later neighbours, ascending global id
//	..nv-1       — later 2-hop vertices (N²), ascending global id
//	nv..nAll-1   — earlier 2-hop vertices (V'), X-only
//
// Adjacency is stored as one bitset row per local vertex over the full
// local domain. Rows of candidate-space vertices (id < nv) carry bits for
// both candidate-space and V' neighbours so that degree bookkeeping during
// branching covers X; V' rows carry candidate-space bits only (two X
// vertices are never compared against each other).
//
// All of a seedGraph's storage (the rows, the id tables, even the struct
// itself) lives in a pooled seedStorage; the engine recycles it once the
// group's last task retires, which is what keeps the steady-state seed
// pipeline allocation-free.
type seedGraph struct {
	seed   int32   // global (degeneracy-relabelled) id of v_i
	nv     int     // 1 + |N¹| + |N²|: vertices allowed in P ∪ C
	pWords int     // number of 64-bit words covering the candidate space
	nAll   int     // nv + |V'|
	orig   []int32 // local id -> global id, len nAll
	adj    []*bitset.Set
	// rowP[i] is adj[i]'s candidate-space word prefix as a raw slice into
	// the arena's contiguous store: the branch hot loops (refine counts,
	// pivot selection, the collapse subset test) run the bit-parallel
	// kernels on these flat rows instead of chasing the Set headers.
	rowP  [][]uint64
	degGi []int // degree within candidate space (d_{G_i}), len nv

	nbrSeed *bitset.Set // N¹ as a bitset (the initial C_S)
	hop2    []int       // local ids of N² vertices, ascending
	hop2Set *bitset.Set // same as a bitset
	xBase   *bitset.Set // V' vertices as a bitset (bits nv..nAll)

	// pair[u], when pair pruning is enabled, is the compatibility row of
	// Theorems 5.13-5.15: bit v is clear iff u and v provably cannot
	// co-occur in any k-plex of size >= q. Bits in the V' range are always
	// set so that X ∩= pair[u] is a no-op for X-only vertices.
	pair []*bitset.Set

	// track counts the group's outstanding tasks for the seed-completion
	// hook; nil unless Options.OnSeedDone is set (see checkpoint.go).
	track *seedTracker

	// store is the pooled backing storage; nil for test-built seed graphs
	// that bypass the engine's recycling.
	store *seedStorage
}

// seedStorage is the recyclable backing of one seedGraph: the struct
// header, the bitset arena every row is carved from, and the id tables.
// Slices only ever grow, so a storage that has seen the largest group of a
// run builds every later group without touching the heap.
type seedStorage struct {
	sg    seedGraph
	arena bitset.Arena
	orig  []int32
	adj   []*bitset.Set
	rowP  [][]uint64
	degGi []int
	hop2  []int
	pair  []*bitset.Set

	// refs counts the group's live references: one for the generation
	// phase plus one per emitted (or split) task. The worker that drops
	// the last reference hands the storage back to the engine's pool.
	refs atomic.Int32
}

// retain registers one more task referencing the seed graph. It must
// happen before the task becomes visible to other workers.
func (sg *seedGraph) retain() {
	if sg.store != nil {
		sg.store.refs.Add(1)
	}
}

// release drops one reference and reports whether the caller now owns the
// storage (and must recycle it). Test-built seed graphs have no storage
// and are left to the garbage collector.
func (sg *seedGraph) release() bool {
	return sg.store != nil && sg.store.refs.Add(-1) == 0
}

// seedScratch is per-worker working memory for seed-graph construction:
// epoch-stamped global→local id and counter tables sized to the working
// graph (a stamp equal to the current epoch marks a live entry, so no
// per-seed clearing is needed), plus the reusable worklists of the
// Corollary 5.2 peel and the 2-hop sweep. One scratch serves one worker;
// it is reused the moment build returns.
type seedScratch struct {
	n     int    // working-graph size the tables cover
	epoch uint32 // current build's stamp; 0 means "never stamped"

	mark    []uint32 // N¹ membership (== epoch while alive in the peel)
	localEp []uint32 // stamp validating localID
	localID []int32  // global id -> local id
	cntEp   []uint32 // stamp validating cnt for 2-hop candidates
	cnt     []int32  // common-neighbour counters
	seedEp  []uint32 // seed-adjacency membership

	// Dense-peel scratch. denseEp/denseID are a dedicated global→matrix-row
	// mapping: they cannot share localEp/localID because peeled-out vertices
	// would keep a live stamp into the same epoch that later validates
	// membership during adjacency construction.
	denseEp    []uint32
	denseID    []int32
	denseArena bitset.Arena

	n1      []int32 // surviving later neighbours
	queue   []int32 // Corollary 5.2 dirty worklist
	touched []int32 // 2-hop candidates with a stamped counter
	n2, xs  []int32

	adjC      []*bitset.Set // pair-matrix temp rows (N(u) ∩ C_S)
	adjCArena bitset.Arena
}

func newSeedScratch(n int) *seedScratch {
	sc := &seedScratch{}
	sc.ensure(n)
	return sc
}

// ensure grows the stamp tables to cover a working graph of n vertices.
func (sc *seedScratch) ensure(n int) {
	if n <= sc.n {
		return
	}
	sc.n = n
	sc.mark = make([]uint32, n)
	sc.localEp = make([]uint32, n)
	sc.localID = make([]int32, n)
	sc.cntEp = make([]uint32, n)
	sc.cnt = make([]int32, n)
	sc.seedEp = make([]uint32, n)
	sc.denseEp = make([]uint32, n)
	sc.denseID = make([]int32, n)
}

// bumpEpoch starts a new build generation. On the (astronomically rare)
// wrap-around every table is cleared so stale stamps can never collide
// with a live epoch; 0 stays reserved for "never stamped".
func (sc *seedScratch) bumpEpoch() {
	sc.epoch++
	if sc.epoch == 0 {
		clear(sc.mark)
		clear(sc.localEp)
		clear(sc.cntEp)
		clear(sc.seedEp)
		clear(sc.denseEp)
		sc.epoch = 1
	}
}

// grow helpers: reslice when capacity suffices, allocate only on growth.

func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growSets(s []*bitset.Set, n int) []*bitset.Set {
	if cap(s) < n {
		return make([]*bitset.Set, n)
	}
	return s[:n]
}

func growRows(s [][]uint64, n int) [][]uint64 {
	if cap(s) < n {
		return make([][]uint64, n)
	}
	return s[:n]
}

// buildSeedGraph constructs G_i for seed s over the degeneracy-relabelled
// graph g ("later" is the numeric comparison u > s), with fresh scratch and
// storage per call. Tests and the one-shot paths use it; the engine goes
// through seedScratch.build with pooled storage instead.
func buildSeedGraph(g *graph.Graph, s int, opts *Options) *seedGraph {
	return newSeedScratch(g.N()).build(g, nil, s, opts, &seedStorage{}, nil)
}

// build constructs G_i for seed s into st's recycled storage. prep, when
// non-nil, supplies the precomputed later-neighbour offsets of the working
// graph; otherwise the split is recovered from the sorted adjacency row.
// Returns nil when the pruned candidate space is too small to hold any
// q-vertex k-plex (st is then untouched and immediately reusable). The
// returned seedGraph aliases st and carries one reference (the caller's
// generation unit). stats, when non-nil, accrues build-path counters
// (currently Stats.DenseBuilds).
func (sc *seedScratch) build(g *graph.Graph, prep *graph.Prepared, s int, opts *Options, st *seedStorage, stats *Stats) *seedGraph {
	k, q := opts.K, opts.Q
	sc.ensure(g.N())
	sc.bumpEpoch()
	ep := sc.epoch

	// Later/earlier neighbour split. A q-vertex k-plex whose earliest
	// member is v_i has at least q-k of v_i's neighbours, all later than
	// v_i, so the group is empty whenever |N¹| < q-k.
	var later, earlier []int32
	if prep != nil {
		later, earlier = prep.LaterNeighbors(s), prep.EarlierNeighbors(s)
	} else {
		row := g.Neighbors(s)
		cut := len(row)
		for i, u := range row {
			if u > int32(s) {
				cut = i
				break
			}
		}
		later, earlier = row[cut:], row[:cut]
	}
	n1 := append(sc.n1[:0], later...)
	sc.n1 = n1
	if len(n1) < q-k {
		return nil
	}
	for _, u := range n1 {
		sc.mark[u] = ep
	}

	// Corollary 5.2 on N¹, peeled to a fixed point: u ∈ N¹ needs at least
	// q-2k common neighbours with v_i inside the surviving N¹. Two
	// interchangeable kernels reach the same fixed point (core-style peels
	// are confluent: the survivor set is the unique maximal subset in which
	// every vertex meets the threshold, independent of removal order):
	//
	//   - dense (|N¹| ≤ DenseCrossover): materialise the induced adjacency
	//     of N¹ as a row-major bit matrix and peel with word-parallel
	//     AND/popcount sweeps (see densePeel);
	//   - merge: counts seeded by one sorted-adjacency merge per vertex and
	//     maintained incrementally — removing u decrements its surviving
	//     neighbours, and only the ones that just crossed the threshold
	//     join the dirty worklist, so converged vertices are never
	//     rescanned.
	if thrN1 := q - 2*k; thrN1 > 0 {
		if len(n1) <= opts.denseCrossover() {
			n1 = sc.densePeel(g, n1, thrN1, ep)
			if stats != nil {
				stats.DenseBuilds++
			}
		} else {
			queue := sc.queue[:0]
			for _, u := range n1 {
				c := graph.CountCommon(g.Neighbors(int(u)), n1)
				sc.cnt[u] = int32(c)
				if c < thrN1 {
					queue = append(queue, u)
				}
			}
			for head := 0; head < len(queue); head++ {
				u := queue[head]
				if sc.mark[u] != ep {
					continue
				}
				sc.mark[u] = 0
				for _, w := range g.Neighbors(int(u)) {
					if sc.mark[w] != ep {
						continue
					}
					if sc.cnt[w]--; sc.cnt[w] == int32(thrN1)-1 {
						queue = append(queue, w)
					}
				}
			}
			sc.queue = queue
			kept := n1[:0]
			for _, u := range n1 {
				if sc.mark[u] == ep {
					kept = append(kept, u)
				}
			}
			n1 = kept
		}
		sc.n1 = n1
		if len(n1) < q-k {
			return nil
		}
	}

	// Later 2-hop vertices reached through surviving N¹, pruned by the
	// Corollary 5.2 threshold q-2k+2; and earlier 2-hop vertices V' pruned
	// by the Theorem 5.1 thresholds. Counters are epoch-stamped per
	// candidate; touched lists who got one.
	for _, u := range g.Neighbors(s) {
		sc.seedEp[u] = ep
	}
	touched := sc.touched[:0]
	for _, u := range n1 {
		for _, w := range g.Neighbors(int(u)) {
			if int(w) == s || sc.mark[w] == ep {
				continue
			}
			if sc.cntEp[w] != ep {
				sc.cntEp[w] = ep
				sc.cnt[w] = 0
				touched = append(touched, w)
			}
			sc.cnt[w]++
		}
	}
	sc.touched = touched

	thr2 := q - 2*k + 2
	n2, xs := sc.n2[:0], sc.xs[:0]
	for _, w := range touched {
		if sc.seedEp[w] == ep {
			continue // direct neighbours are not 2-hop vertices
		}
		if int(sc.cnt[w]) >= thr2 {
			if w > int32(s) {
				n2 = append(n2, w)
			} else {
				xs = append(xs, w)
			}
		}
	}
	// Earlier direct neighbours of the seed: Theorem 5.1(ii) threshold
	// q-2k (no structural requirement when it is non-positive).
	thrAdj := q - 2*k
	for _, u := range earlier {
		c := 0
		if sc.cntEp[u] == ep {
			c = int(sc.cnt[u])
		}
		if thrAdj <= 0 || c >= thrAdj {
			xs = append(xs, u)
		}
	}
	slices.Sort(n2)
	slices.Sort(xs)

	// For k=1 (maximal cliques) no 2-hop candidate can join P, and the
	// pruning threshold already removed them via |S| <= k-1 = 0; keep N²
	// empty to skip pointless S enumeration.
	if k == 1 {
		n2 = n2[:0]
	}
	sc.n2, sc.xs = n2, xs

	nv := 1 + len(n1) + len(n2)
	if nv < q {
		return nil
	}
	nAll := nv + len(xs)

	rows := nAll + 3 // adjacency + nbrSeed + hop2Set + xBase
	if opts.UsePairPruning {
		rows += nv
	}
	st.arena.Reset(nAll, rows)
	st.orig = growInt32s(st.orig, nAll)
	st.adj = growSets(st.adj, nAll)
	st.degGi = growInts(st.degGi, nv)
	st.hop2 = growInts(st.hop2, len(n2))
	st.refs.Store(1)

	sg := &st.sg
	sg.seed = int32(s)
	sg.nv = nv
	sg.pWords = (nv + 63) / 64
	sg.nAll = nAll
	sg.orig = st.orig
	sg.adj = st.adj
	sg.degGi = st.degGi
	sg.hop2 = st.hop2
	sg.pair = nil
	sg.track = nil
	sg.store = st

	sg.orig[0] = int32(s)
	sc.localEp[s] = ep
	sc.localID[s] = 0
	at := int32(1)
	for _, u := range n1 {
		sg.orig[at] = u
		sc.localEp[u] = ep
		sc.localID[u] = at
		at++
	}
	for i, u := range n2 {
		sg.orig[at] = u
		sc.localEp[u] = ep
		sc.localID[u] = at
		sg.hop2[i] = int(at)
		at++
	}
	for _, u := range xs {
		sg.orig[at] = u
		sc.localEp[u] = ep
		sc.localID[u] = at
		at++
	}

	for i := 0; i < nAll; i++ {
		sg.adj[i] = st.arena.New()
	}
	for li := 0; li < nv; li++ {
		for _, w := range g.Neighbors(int(sg.orig[li])) {
			if sc.localEp[w] == ep {
				lj := int(sc.localID[w])
				sg.adj[li].Add(lj)
				if lj >= nv {
					// Symmetric bit so V' rows can be refined against P.
					sg.adj[lj].Add(li)
				}
			}
		}
	}
	// Flat candidate-space prefixes of the adjacency rows, carved straight
	// out of the arena's contiguous store (adj rows are the first nAll
	// carved, so row i starts at word i*wpr). Branch's hot loops run the
	// bit-parallel kernels on these instead of the Set headers.
	st.rowP = growRows(st.rowP, nAll)
	sg.rowP = st.rowP
	words, wpr := st.arena.Rows(), st.arena.WordsPerRow()
	for i := 0; i < nAll; i++ {
		sg.rowP[i] = words[i*wpr : i*wpr+sg.pWords]
	}
	// The candidate space is the local-id prefix [0, nv), so d_{G_i} is a
	// prefix popcount — no mask bitset.
	for i := 0; i < nv; i++ {
		sg.degGi[i] = sg.adj[i].CountUpto(nv)
	}

	sg.nbrSeed = st.arena.New()
	for i := 1; i <= len(n1); i++ {
		sg.nbrSeed.Add(i)
	}
	sg.hop2Set = st.arena.New()
	for _, h := range sg.hop2 {
		sg.hop2Set.Add(h)
	}
	sg.xBase = st.arena.New()
	for i := nv; i < nAll; i++ {
		sg.xBase.Add(i)
	}

	if opts.UsePairPruning {
		sg.buildPairMatrix(sc, k, q)
	}
	return sg
}

// rows returns the flat candidate-space prefix rows, deriving them from
// the Set headers on first use for test-built seed graphs that bypass the
// engine's arena path (build populates rowP directly).
func (sg *seedGraph) rows() [][]uint64 {
	if sg.rowP == nil {
		sg.rowP = make([][]uint64, sg.nAll)
		for i, s := range sg.adj {
			sg.rowP[i] = s.Words()[:sg.pWords]
		}
	}
	return sg.rowP
}

// densePeel is the bit-parallel kernel of the Corollary 5.2 fixed point,
// taken when N¹ fits under Options.DenseCrossover: the induced adjacency of
// the later neighbours is materialised as a row-major bit matrix in the
// worker scratch and peeled with word-parallel AND/popcount sweeps
// (bitset.Peel). Removed vertices get their mark stamp cleared exactly as
// the merge path does — the 2-hop sweep keys on it — and the survivor
// slice reuses n1's backing, so the two kernels are interchangeable
// downstream.
func (sc *seedScratch) densePeel(g *graph.Graph, n1 []int32, thr int, ep uint32) []int32 {
	n := len(n1)
	if n == 0 {
		return n1
	}
	sc.denseArena.Reset(n, n+1) // n adjacency rows + the alive row
	stride := sc.denseArena.WordsPerRow()
	words := sc.denseArena.Rows()[: (n+1)*stride : (n+1)*stride]
	for i, u := range n1 {
		sc.denseEp[u] = ep
		sc.denseID[u] = int32(i)
	}
	for i, u := range n1 {
		row := words[i*stride : (i+1)*stride]
		for _, w := range g.Neighbors(int(u)) {
			if sc.denseEp[w] == ep {
				j := sc.denseID[w]
				row[j>>6] |= 1 << uint(j&63)
			}
		}
	}
	alive := words[n*stride:]
	for i := range alive {
		alive[i] = ^uint64(0)
	}
	if tail := n & 63; tail != 0 {
		alive[stride-1] = 1<<uint(tail) - 1
	}
	bitset.Peel(words[:n*stride], stride, n, alive, thr)
	kept := n1[:0]
	for i, u := range n1 {
		if alive[i>>6]&(1<<uint(i&63)) != 0 {
			kept = append(kept, u)
		} else {
			sc.mark[u] = 0
		}
	}
	return kept
}

// buildPairMatrix fills sg.pair with the compatibility rows of Theorems
// 5.13 (N²×N²), 5.14 (N²×N¹) and 5.15 (N¹×N¹). The common-neighbour counts
// are taken inside C_S = N¹ as the theorems require, with the theorem-
// specific exclusions of the pair's own members. Pair rows live in the
// seed storage's arena (they share the group's lifetime); the temporary
// N(u) ∩ C_S rows come from the worker scratch.
func (sg *seedGraph) buildPairMatrix(sc *seedScratch, k, q int) {
	nv, nAll := sg.nv, sg.nAll
	st := sg.store
	st.pair = growSets(st.pair, nv)
	sg.pair = st.pair
	for i := 0; i < nv; i++ {
		sg.pair[i] = st.arena.New()
		sg.pair[i].Fill()
	}

	// Per-threshold constants; a non-positive threshold never prunes.
	max0 := func(x int) int {
		if x < 0 {
			return 0
		}
		return x
	}
	thr1313Adj := q - k - 2*max0(k-2)                // 5.13, (u1,u2) ∈ E
	thr1313Non := q - k - 2*max0(k-3)                // 5.13, (u1,u2) ∉ E
	thr1514Adj := q - 2*k - max0(k-2)                // 5.14, adjacent
	thr1514Non := q - k - max0(k-2) - maxInt(k-2, 1) // 5.14, non-adjacent
	thr1515Adj := q - 3*k                            // 5.15, adjacent
	thr1515Non := q - k - 2*maxInt(k-1, 1)           // 5.15, non-adjacent

	// adjC[u] = N(u) ∩ C_S as a bitset for fast pair intersection counts.
	sc.adjCArena.Reset(nAll, nv)
	sc.adjC = growSets(sc.adjC, nv)
	adjC := sc.adjC
	for u := 1; u < nv; u++ {
		adjC[u] = sc.adjCArena.New()
		adjC[u].Copy(sg.adj[u])
		adjC[u].And(sg.nbrSeed)
	}

	n1hi := 1 + sg.nbrSeed.Count() // first N² local id
	for u := 1; u < nv; u++ {
		for v := u + 1; v < nv; v++ {
			cn := adjC[u].IntersectionCount(adjC[v])
			adj := sg.adj[u].Contains(v)
			uInC, vInC := u < n1hi, v < n1hi
			var thr int
			switch {
			case !uInC && !vInC: // both N² (Theorem 5.13)
				if adj {
					thr = thr1313Adj
				} else {
					thr = thr1313Non
				}
			case uInC != vInC: // one in N¹, one in N² (Theorem 5.14)
				// The theorem counts common neighbours in C_S minus the N¹
				// member of the pair, but a vertex is never its own
				// neighbour, so the raw intersection already excludes it.
				if adj {
					thr = thr1514Adj
				} else {
					thr = thr1514Non
				}
			default: // both N¹ (Theorem 5.15): counts in C_S − {u1, u2}
				// u, v cannot be their own common neighbours, and the
				// intersection cannot contain u or v (no self-loops), so
				// cn is already over C_S − {u, v}.
				if adj {
					thr = thr1515Adj
				} else {
					thr = thr1515Non
				}
			}
			if cn < thr {
				sg.pair[u].Remove(v)
				sg.pair[v].Remove(u)
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
