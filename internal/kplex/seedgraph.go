package kplex

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// seedGraph is the per-seed working graph G_i of Algorithm 2: the seed
// vertex v_i, its later neighbours N¹ (the candidate pool C_S), its later
// 2-hop vertices N² (the S-enumeration pool), and the earlier 2-hop
// vertices V' that only ever appear in the exclusive set X. Vertices are
// relabelled into a compact local id space:
//
//	0            — the seed v_i
//	1..|N¹|      — later neighbours, ascending global id
//	..nv-1       — later 2-hop vertices (N²), ascending global id
//	nv..nAll-1   — earlier 2-hop vertices (V'), X-only
//
// Adjacency is stored as one bitset row per local vertex over the full
// local domain. Rows of candidate-space vertices (id < nv) carry bits for
// both candidate-space and V' neighbours so that degree bookkeeping during
// branching covers X; V' rows carry candidate-space bits only (two X
// vertices are never compared against each other).
type seedGraph struct {
	seed   int32   // global (degeneracy-relabelled) id of v_i
	nv     int     // 1 + |N¹| + |N²|: vertices allowed in P ∪ C
	pWords int     // number of 64-bit words covering the candidate space
	nAll   int     // nv + |V'|
	orig   []int32 // local id -> global id, len nAll
	adj    []*bitset.Set
	degGi  []int // degree within candidate space (d_{G_i}), len nv

	nbrSeed *bitset.Set // N¹ as a bitset (the initial C_S)
	hop2    []int       // local ids of N² vertices, ascending
	hop2Set *bitset.Set // same as a bitset
	xBase   *bitset.Set // V' vertices as a bitset (bits nv..nAll)

	// pair[u], when pair pruning is enabled, is the compatibility row of
	// Theorems 5.13-5.15: bit v is clear iff u and v provably cannot
	// co-occur in any k-plex of size >= q. Bits in the V' range are always
	// set so that X ∩= pair[u] is a no-op for X-only vertices.
	pair []*bitset.Set

	// track counts the group's outstanding tasks for the seed-completion
	// hook; nil unless Options.OnSeedDone is set (see checkpoint.go).
	track *seedTracker
}

// buildSeedGraph constructs G_i for seed s over the degeneracy-relabelled
// graph g ("later" is the numeric comparison u > s). Returns nil when the
// pruned candidate space is too small to hold any q-vertex k-plex.
func buildSeedGraph(g *graph.Graph, s int, opts *Options) *seedGraph {
	k, q := opts.K, opts.Q

	// Later neighbours. A q-vertex k-plex whose earliest member is v_i has
	// at least q-k of v_i's neighbours, all later than v_i, so the group is
	// empty whenever |N¹| < q-k.
	var n1 []int32
	for _, u := range g.Neighbors(s) {
		if u > int32(s) {
			n1 = append(n1, u)
		}
	}
	if len(n1) < q-k {
		return nil
	}

	// Corollary 5.2 on N¹, iterated to a fixed point: u ∈ N¹ needs at
	// least q-2k common neighbours with v_i inside the (surviving) N¹.
	inN1 := make(map[int32]int) // global -> provisional index marker
	for _, u := range n1 {
		inN1[u] = 1
	}
	thrN1 := q - 2*k
	for changed := true; changed && thrN1 > 0; {
		changed = false
		for _, u := range n1 {
			if inN1[u] == 0 {
				continue
			}
			common := 0
			for _, w := range g.Neighbors(int(u)) {
				if inN1[w] != 0 {
					common++
				}
			}
			if common < thrN1 {
				inN1[u] = 0
				changed = true
			}
		}
	}
	kept1 := n1[:0]
	for _, u := range n1 {
		if inN1[u] != 0 {
			kept1 = append(kept1, u)
		}
	}
	n1 = kept1
	if len(n1) < q-k {
		return nil
	}

	// Later 2-hop vertices reached through surviving N¹, pruned by the
	// Corollary 5.2 threshold q-2k+2; and earlier 2-hop vertices V' pruned
	// by the Theorem 5.1 thresholds.
	n1set := make(map[int32]bool, len(n1))
	for _, u := range n1 {
		n1set[u] = true
	}
	common := make(map[int32]int) // candidate 2-hop vertex -> |N(x) ∩ N¹|
	for _, u := range n1 {
		for _, w := range g.Neighbors(int(u)) {
			if w != int32(s) && !n1set[w] {
				common[w]++
			}
		}
	}
	thr2 := q - 2*k + 2
	var n2, xs []int32
	seedNbr := make(map[int32]bool, g.Degree(s))
	for _, u := range g.Neighbors(s) {
		seedNbr[u] = true
	}
	for w, c := range common {
		if w > int32(s) {
			if c >= thr2 && !seedNbr[w] {
				n2 = append(n2, w)
			}
		} else {
			// Earlier vertex at distance 2 via N¹.
			if !seedNbr[w] && c >= thr2 {
				xs = append(xs, w)
			}
		}
	}
	// Earlier direct neighbours of the seed: Theorem 5.1(ii) threshold
	// q-2k (no structural requirement when it is non-positive).
	thrAdj := q - 2*k
	for _, u := range g.Neighbors(s) {
		if u < int32(s) {
			if thrAdj <= 0 || common[u] >= thrAdj {
				xs = append(xs, u)
			}
		}
	}
	sortInt32(n2)
	sortInt32(xs)

	// For k=1 (maximal cliques) no 2-hop candidate can join P, and the
	// pruning threshold already removed them via |S| <= k-1 = 0; keep N²
	// empty to skip pointless S enumeration.
	if k == 1 {
		n2 = nil
	}

	nv := 1 + len(n1) + len(n2)
	if nv < q {
		return nil
	}
	nAll := nv + len(xs)
	sg := &seedGraph{
		seed:   int32(s),
		nv:     nv,
		pWords: (nv + 63) / 64,
		nAll:   nAll,
		orig:   make([]int32, nAll),
	}
	localID := make(map[int32]int, nAll)
	sg.orig[0] = int32(s)
	localID[int32(s)] = 0
	at := 1
	for _, u := range n1 {
		sg.orig[at] = u
		localID[u] = at
		at++
	}
	for _, u := range n2 {
		sg.orig[at] = u
		localID[u] = at
		sg.hop2 = append(sg.hop2, at)
		at++
	}
	for _, u := range xs {
		sg.orig[at] = u
		localID[u] = at
		at++
	}

	arena := bitset.NewArena(nAll, nAll)
	sg.adj = make([]*bitset.Set, nAll)
	for i := range sg.adj {
		sg.adj[i] = arena.New()
	}
	for li := 0; li < nv; li++ {
		for _, w := range g.Neighbors(int(sg.orig[li])) {
			if lj, ok := localID[w]; ok {
				sg.adj[li].Add(lj)
				if lj >= nv {
					// Symmetric bit so V' rows can be refined against P.
					sg.adj[lj].Add(li)
				}
			}
		}
	}
	sg.degGi = make([]int, nv)
	vMask := bitset.New(nAll)
	for i := 0; i < nv; i++ {
		vMask.Add(i)
	}
	for i := 0; i < nv; i++ {
		sg.degGi[i] = sg.adj[i].IntersectionCount(vMask)
	}

	sg.nbrSeed = bitset.New(nAll)
	for i := 1; i <= len(n1); i++ {
		sg.nbrSeed.Add(i)
	}
	sg.hop2Set = bitset.New(nAll)
	for _, h := range sg.hop2 {
		sg.hop2Set.Add(h)
	}
	sg.xBase = bitset.New(nAll)
	for i := nv; i < nAll; i++ {
		sg.xBase.Add(i)
	}

	if opts.UsePairPruning {
		sg.buildPairMatrix(k, q)
	}
	return sg
}

// buildPairMatrix fills sg.pair with the compatibility rows of Theorems
// 5.13 (N²×N²), 5.14 (N²×N¹) and 5.15 (N¹×N¹). The common-neighbour counts
// are taken inside C_S = N¹ as the theorems require, with the theorem-
// specific exclusions of the pair's own members.
func (sg *seedGraph) buildPairMatrix(k, q int) {
	nv, nAll := sg.nv, sg.nAll
	arena := bitset.NewArena(nAll, nv)
	sg.pair = make([]*bitset.Set, nv)
	for i := 0; i < nv; i++ {
		sg.pair[i] = arena.New()
		sg.pair[i].Fill()
	}

	// Per-threshold constants; a non-positive threshold never prunes.
	max0 := func(x int) int {
		if x < 0 {
			return 0
		}
		return x
	}
	thr1313Adj := q - k - 2*max0(k-2)                // 5.13, (u1,u2) ∈ E
	thr1313Non := q - k - 2*max0(k-3)                // 5.13, (u1,u2) ∉ E
	thr1514Adj := q - 2*k - max0(k-2)                // 5.14, adjacent
	thr1514Non := q - k - max0(k-2) - maxInt(k-2, 1) // 5.14, non-adjacent
	thr1515Adj := q - 3*k                            // 5.15, adjacent
	thr1515Non := q - k - 2*maxInt(k-1, 1)           // 5.15, non-adjacent

	// adjC[u] = N(u) ∩ C_S as a bitset for fast pair intersection counts.
	adjC := make([]*bitset.Set, nv)
	ca := bitset.NewArena(nAll, nv)
	for u := 1; u < nv; u++ {
		adjC[u] = ca.New()
		adjC[u].Copy(sg.adj[u])
		adjC[u].And(sg.nbrSeed)
	}

	n1hi := 1 + sg.nbrSeed.Count() // first N² local id
	incompatible := func(u, v int) {
		sg.pair[u].Remove(v)
		sg.pair[v].Remove(u)
	}
	for u := 1; u < nv; u++ {
		for v := u + 1; v < nv; v++ {
			cn := adjC[u].IntersectionCount(adjC[v])
			adj := sg.adj[u].Contains(v)
			uInC, vInC := u < n1hi, v < n1hi
			var thr int
			switch {
			case !uInC && !vInC: // both N² (Theorem 5.13)
				if adj {
					thr = thr1313Adj
				} else {
					thr = thr1313Non
				}
			case uInC != vInC: // one in N¹, one in N² (Theorem 5.14)
				// The theorem counts common neighbours in C_S minus the N¹
				// member of the pair, but a vertex is never its own
				// neighbour, so the raw intersection already excludes it.
				if adj {
					thr = thr1514Adj
				} else {
					thr = thr1514Non
				}
			default: // both N¹ (Theorem 5.15): counts in C_S − {u1, u2}
				// u, v cannot be their own common neighbours, and the
				// intersection cannot contain u or v (no self-loops), so
				// cn is already over C_S − {u, v}.
				if adj {
					thr = thr1515Adj
				} else {
					thr = thr1515Non
				}
			}
			if cn < thr {
				incompatible(u, v)
			}
		}
	}
}

func sortInt32(a []int32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
