package kplex_test

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"repro/internal/baseline"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kplex"
)

// collect runs the engine with the given options and returns the result set
// in canonical form (each plex sorted, plexes sorted lexicographically).
func collect(t *testing.T, g *graph.Graph, opts kplex.Options) [][]int {
	t.Helper()
	var mu chan struct{}
	_ = mu
	var out [][]int
	opts.OnPlex = func(p []int) {
		out = append(out, append([]int(nil), p...))
	}
	if opts.Threads > 1 {
		// OnPlex must be synchronised for parallel runs.
		ch := make(chan []int, 1024)
		done := make(chan struct{})
		opts.OnPlex = func(p []int) { ch <- append([]int(nil), p...) }
		go func() {
			for p := range ch {
				out = append(out, p)
			}
			close(done)
		}()
		res, err := kplex.Run(context.Background(), g, opts)
		close(ch)
		<-done
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if int(res.Count) != len(out) {
			t.Fatalf("count %d != emitted %d", res.Count, len(out))
		}
		canonicalize(out)
		return out
	}
	res, err := kplex.Run(context.Background(), g, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if int(res.Count) != len(out) {
		t.Fatalf("count %d != emitted %d", res.Count, len(out))
	}
	canonicalize(out)
	return out
}

func canonicalize(plexes [][]int) {
	for _, p := range plexes {
		sort.Ints(p)
	}
	sort.Slice(plexes, func(i, j int) bool { return lessIntSlice(plexes[i], plexes[j]) })
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func equalSets(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func describe(plexes [][]int) string {
	s := fmt.Sprintf("%d plexes", len(plexes))
	for i, p := range plexes {
		if i >= 8 {
			return s + " ..."
		}
		s += fmt.Sprintf(" %v", p)
	}
	return s
}

// variantOptions enumerates every engine configuration that must produce
// the same result set.
func variantOptions(k, q int) map[string]kplex.Options {
	ours := kplex.NewOptions(k, q)

	oursP := kplex.NewOptions(k, q)
	oursP.Branching = kplex.BranchFaPlexen

	basic := kplex.BasicOptions(k, q)

	noUB := kplex.NewOptions(k, q)
	noUB.UpperBound = kplex.UBNone

	fpUB := kplex.NewOptions(k, q)
	fpUB.UpperBound = kplex.UBSortFP

	ctcp := kplex.NewOptions(k, q)
	ctcp.UseCTCP = true

	return map[string]kplex.Options{
		"ours":     ours,
		"ours_p":   oursP,
		"basic":    basic,
		"no_ub":    noUB,
		"fp_ub":    fpUB,
		"ctcp":     ctcp,
		"listplex": baseline.ListPlexOptions(k, q),
		"fp":       baseline.FPOptions(k, q),
	}
}

// TestAgainstNaiveOracle compares every engine variant against the plain
// Bron-Kerbosch oracle on a sweep of small random graphs.
func TestAgainstNaiveOracle(t *testing.T) {
	type cfg struct {
		n    int
		p    float64
		k, q int
	}
	cases := []cfg{
		{12, 0.5, 1, 3},
		{12, 0.5, 2, 3},
		{14, 0.4, 2, 4},
		{14, 0.6, 2, 5},
		{14, 0.7, 3, 5},
		{16, 0.5, 3, 6},
		{13, 0.8, 4, 7},
		{15, 0.3, 2, 3},
		{10, 0.9, 2, 6},
		{18, 0.35, 2, 4},
	}
	for ci, c := range cases {
		for seed := int64(0); seed < 4; seed++ {
			g := gen.GNP(c.n, c.p, 1000*int64(ci)+seed)
			want := baseline.NaiveEnumerate(g, c.k, c.q)
			canonicalize(want)
			for name, opts := range variantOptions(c.k, c.q) {
				got := collect(t, g, opts)
				if !equalSets(got, want) {
					t.Errorf("case %+v seed %d variant %s:\n got  %s\n want %s",
						c, seed, name, describe(got), describe(want))
				}
			}
		}
	}
}

// TestEmittedPlexesAreMaximal verifies the structural invariants of every
// emitted set on a mid-sized power-law graph where the oracle would be too
// slow: k-plex property, maximality, size >= q, no duplicates.
func TestEmittedPlexesAreMaximal(t *testing.T) {
	g := gen.ChungLu(400, 12, 2.4, 7)
	for _, kc := range []struct{ k, q int }{{2, 6}, {3, 7}} {
		opts := kplex.NewOptions(kc.k, kc.q)
		got := collect(t, g, opts)
		if len(got) == 0 {
			t.Fatalf("k=%d q=%d: no plexes found; test graph too sparse", kc.k, kc.q)
		}
		seen := make(map[string]bool, len(got))
		// The k-plex property is checked for every emitted set; the much
		// more expensive maximality check is sampled.
		stride := len(got)/200 + 1
		for i, p := range got {
			key := fmt.Sprint(p)
			if seen[key] {
				t.Fatalf("k=%d q=%d: duplicate plex %v", kc.k, kc.q, p)
			}
			seen[key] = true
			if len(p) < kc.q {
				t.Fatalf("k=%d q=%d: plex %v smaller than q", kc.k, kc.q, p)
			}
			if !kplex.IsKPlex(g, p, kc.k) {
				t.Fatalf("k=%d q=%d: emitted set %v is not a k-plex", kc.k, kc.q, p)
			}
			if i%stride == 0 && kplex.CanExtend(g, p, kc.k) {
				t.Fatalf("k=%d q=%d: emitted k-plex %v is not maximal", kc.k, kc.q, p)
			}
		}
	}
}

// TestVariantsAgreeOnMediumGraphs cross-checks all variants (including
// parallel configurations) on graphs big enough to exercise deep recursion,
// where the naive oracle cannot be used.
func TestVariantsAgreeOnMediumGraphs(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"chunglu": gen.ChungLu(600, 14, 2.3, 11),
		"ba":      gen.BarabasiAlbert(500, 8, 12),
		"planted": gen.Planted(gen.PlantedConfig{
			N: 300, BackgroundP: 0.02, Communities: 6, CommSize: 14,
			DropPerV: 1, Overlap: 3, Seed: 13,
		}),
	}
	for gname, g := range graphs {
		for _, kc := range []struct{ k, q int }{{2, 6}, {3, 8}} {
			ref := collect(t, g, kplex.NewOptions(kc.k, kc.q))
			for name, opts := range variantOptions(kc.k, kc.q) {
				got := collect(t, g, opts)
				if !equalSets(got, ref) {
					t.Errorf("%s k=%d q=%d variant %s: %d plexes, want %d",
						gname, kc.k, kc.q, name, len(got), len(ref))
				}
			}
		}
	}
}

// TestParallelMatchesSequential checks thread counts and timeout values.
func TestParallelMatchesSequential(t *testing.T) {
	g := gen.ChungLu(800, 16, 2.3, 3)
	k, q := 2, 6
	ref := collect(t, g, kplex.NewOptions(k, q))
	for _, threads := range []int{2, 4, 8} {
		for _, timeoutUS := range []int{0, 1, 50} {
			opts := kplex.NewOptions(k, q)
			opts.Threads = threads
			opts.TaskTimeout = microseconds(timeoutUS)
			got := collect(t, g, opts)
			if !equalSets(got, ref) {
				t.Errorf("threads=%d timeout=%dus: %d plexes, want %d",
					threads, timeoutUS, len(got), len(ref))
			}
		}
	}
}
