package kplex

// Golden regression corpus: exact enumeration outputs for the seeded
// generator graphs of gen.Corpus(), committed under testdata/golden/ as
// (count, max size, SHA-256 of the canonically sorted plex set). Future
// performance refactors diff against these files — a pruning rule that
// silently drops or duplicates plexes changes the hash even when the count
// happens to survive.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/kplex -run TestGolden -update

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/gen"
	"repro/internal/sink"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden enumeration outputs")

// goldenCase is one (graph, k, q) cell of the corpus.
type goldenCase struct {
	Graph   string `json:"graph"`
	K       int    `json:"k"`
	Q       int    `json:"q"`
	Count   int64  `json:"count"`
	MaxSize int    `json:"maxSize"`
	SHA256  string `json:"sha256"`
}

// goldenCombos returns the (k, q) pairs recorded for a corpus graph. The
// defaults probe a moderate and a strict threshold; the overrides keep
// every graph's cases non-trivial (the dense GNP and the random regular
// graph have no large plexes at the default thresholds).
func goldenCombos(name string) [][2]int {
	switch name {
	case "gnp-dense":
		return [][2]int{{2, 6}, {3, 7}}
	case "regular-flat":
		return [][2]int{{2, 4}, {3, 6}}
	default:
		return [][2]int{{2, 6}, {3, 8}}
	}
}

func goldenPath(c goldenCase) string {
	return filepath.Join("testdata", "golden",
		fmt.Sprintf("%s_k%d_q%d.json", c.Graph, c.K, c.Q))
}

// canonicalHash returns the SHA-256 of the result set in canonical order:
// each plex ascending (the OnPlex contract), the set sorted by size
// descending then lexicographically.
func canonicalHash(plexes [][]int) string {
	sink.SortPlexes(plexes)
	h := sha256.New()
	line := make([]byte, 0, 128)
	for _, p := range plexes {
		line = line[:0]
		for i, v := range p {
			if i > 0 {
				line = append(line, ' ')
			}
			line = strconv.AppendInt(line, int64(v), 10)
		}
		line = append(line, '\n')
		h.Write(line)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// enumerateGoldenCase runs the deterministic sequential enumeration for
// one cell and fills in the measured fields.
func enumerateGoldenCase(t *testing.T, cg gen.CorpusGraph, k, q int) goldenCase {
	t.Helper()
	g := cg.Build()
	var plexes [][]int
	opts := NewOptions(k, q)
	opts.OnPlex = func(p []int) { plexes = append(plexes, append([]int(nil), p...)) }
	res, err := Run(context.Background(), g, opts)
	if err != nil {
		t.Fatalf("%s k=%d q=%d: %v", cg.Name, k, q, err)
	}
	if int64(len(plexes)) != res.Count {
		t.Fatalf("%s k=%d q=%d: collected %d plexes, Result.Count=%d",
			cg.Name, k, q, len(plexes), res.Count)
	}
	return goldenCase{
		Graph:   cg.Name,
		K:       k,
		Q:       q,
		Count:   res.Count,
		MaxSize: int(res.Stats.MaxPlexSize),
		SHA256:  canonicalHash(plexes),
	}
}

// readGoldenCase loads the committed golden file matching c's cell.
func readGoldenCase(t *testing.T, c goldenCase) goldenCase {
	t.Helper()
	data, err := os.ReadFile(goldenPath(c))
	if err != nil {
		t.Fatalf("missing golden file (run TestGoldenCorpus with -update to create): %v", err)
	}
	var want goldenCase
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file %s: %v", goldenPath(c), err)
	}
	return want
}

// goldenBatch is the batch-mode golden document of one corpus graph: the
// per-cell digests of a multi-cell batch answered by shared traversals.
// Committed as testdata/golden/<graph>_batch.json; regenerate with
// -update after an intentional change.
type goldenBatch struct {
	Graph string       `json:"graph"`
	Cells []goldenCase `json:"cells"`
}

func goldenBatchPath(name string) string {
	return filepath.Join("testdata", "golden", name+"_batch.json")
}

// enumerateGoldenBatch answers every cell of batchGridCells(name) through
// one EnumerateBatch call (count members with plex collectors) and
// returns the per-cell digests.
func enumerateGoldenBatch(t *testing.T, cg gen.CorpusGraph) goldenBatch {
	t.Helper()
	g := cg.Build()
	cells := batchGridCells(cg.Name)
	queries := make([]BatchQuery, len(cells))
	plexes := make([][][]int, len(cells))
	for i, kq := range cells {
		i := i
		opts := NewOptions(kq[0], kq[1])
		opts.OnPlex = func(p []int) { plexes[i] = append(plexes[i], append([]int(nil), p...)) }
		queries[i] = BatchQuery{Opts: opts, Mode: BatchCount}
	}
	results, err := RunBatch(context.Background(), g, queries)
	if err != nil {
		t.Fatalf("%s: %v", cg.Name, err)
	}
	doc := goldenBatch{Graph: cg.Name}
	for i, kq := range cells {
		doc.Cells = append(doc.Cells, goldenCase{
			Graph:   cg.Name,
			K:       kq[0],
			Q:       kq[1],
			Count:   results[i].Count,
			MaxSize: int(results[i].Stats.MaxPlexSize),
			SHA256:  canonicalHash(plexes[i]),
		})
	}
	return doc
}

// TestGoldenCorpusBatch pins the batch path against its own committed
// digests: one shared-traversal batch per corpus graph, each cell's
// (count, max size, canonical plex-set hash) compared to
// testdata/golden/<graph>_batch.json.
func TestGoldenCorpusBatch(t *testing.T) {
	for _, cg := range gen.Corpus() {
		cg := cg
		t.Run(cg.Name, func(t *testing.T) {
			t.Parallel()
			got := enumerateGoldenBatch(t, cg)
			path := goldenBatchPath(cg.Name)
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			var want goldenBatch
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt golden file %s: %v", path, err)
			}
			if len(got.Cells) != len(want.Cells) {
				t.Fatalf("cell count %d, golden has %d", len(got.Cells), len(want.Cells))
			}
			for i := range got.Cells {
				if got.Cells[i] != want.Cells[i] {
					t.Errorf("cell %d mismatch\n got: %+v\nwant: %+v", i, got.Cells[i], want.Cells[i])
				}
			}
		})
	}
}

// TestGoldenCorpusOneElementBatch re-verifies every committed single-query
// golden file through the batch path with a 1-element batch, pinning the
// single-query and batch semantics against each other: a divergence in
// either path breaks exactly one of the two golden suites.
func TestGoldenCorpusOneElementBatch(t *testing.T) {
	for _, cg := range gen.Corpus() {
		for _, kq := range goldenCombos(cg.Name) {
			cg, k, q := cg, kq[0], kq[1]
			t.Run(fmt.Sprintf("%s/k%d_q%d", cg.Name, k, q), func(t *testing.T) {
				t.Parallel()
				g := cg.Build()
				var plexes [][]int
				opts := NewOptions(k, q)
				opts.OnPlex = func(p []int) { plexes = append(plexes, append([]int(nil), p...)) }
				results, err := RunBatch(context.Background(), g, []BatchQuery{{Opts: opts, Mode: BatchCount}})
				if err != nil {
					t.Fatal(err)
				}
				got := goldenCase{
					Graph:   cg.Name,
					K:       k,
					Q:       q,
					Count:   results[0].Count,
					MaxSize: int(results[0].Stats.MaxPlexSize),
					SHA256:  canonicalHash(plexes),
				}
				want := readGoldenCase(t, got)
				if got != want {
					t.Errorf("1-element batch diverges from the single-query golden\n got: %+v\nwant: %+v", got, want)
				}
			})
		}
	}
}

func TestGoldenCorpus(t *testing.T) {
	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, cg := range gen.Corpus() {
		for _, kq := range goldenCombos(cg.Name) {
			cg, k, q := cg, kq[0], kq[1]
			t.Run(fmt.Sprintf("%s/k%d_q%d", cg.Name, k, q), func(t *testing.T) {
				t.Parallel()
				got := enumerateGoldenCase(t, cg, k, q)
				path := goldenPath(got)
				if *updateGolden {
					data, err := json.MarshalIndent(got, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update to create): %v", err)
				}
				var want goldenCase
				if err := json.Unmarshal(data, &want); err != nil {
					t.Fatalf("corrupt golden file %s: %v", path, err)
				}
				if got != want {
					t.Errorf("golden mismatch\n got: %+v\nwant: %+v", got, want)
				}
			})
		}
	}
}
