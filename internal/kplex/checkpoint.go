package kplex

// Seed-level checkpointing support. The engine decomposes a run into one
// subproblem per seed vertex of the reduced, degeneracy-relabelled graph
// (Algorithm 2); that decomposition is deterministic given the graph
// content and the result-defining options (K, Q, UseCTCP), which makes the
// seed id a stable unit of recovery: a crashed run can be restarted with
// Options.SkipSeeds holding the seeds whose results were already persisted,
// and the engine will re-enumerate exactly the missing ones. The hooks that
// make the persistence side possible are Options.OnSeedDone (fired once per
// fully completed seed group, with the Stats accrued by that group) and
// Options.OnPlexSeed (the seed-attributed variant of OnPlex, so partial
// aggregates can be buffered per seed and committed only on completion).

import (
	"fmt"
	"hash/fnv"
	"math/bits"
	"sync"

	"repro/internal/graph"
)

// SeedSet is a bitmask over seed ids, used by Options.SkipSeeds to name the
// seed groups a resumed run must not re-enumerate. The zero value is an
// empty set ready for use. SeedSet is not safe for concurrent mutation;
// the engine only reads it during a run.
type SeedSet struct {
	words []uint64
	count int
}

// NewSeedSet returns a set holding the given seeds.
func NewSeedSet(seeds ...int) *SeedSet {
	s := &SeedSet{}
	for _, v := range seeds {
		s.Add(v)
	}
	return s
}

// Add inserts seed into the set. Negative ids panic: they can never name a
// seed group and accepting them would let a corrupted checkpoint silently
// skip nothing.
func (s *SeedSet) Add(seed int) {
	if seed < 0 {
		panic(fmt.Sprintf("kplex: negative seed id %d", seed))
	}
	w := seed >> 6
	for w >= len(s.words) {
		s.words = append(s.words, 0)
	}
	bit := uint64(1) << (seed & 63)
	if s.words[w]&bit == 0 {
		s.words[w] |= bit
		s.count++
	}
}

// Contains reports whether seed is in the set.
func (s *SeedSet) Contains(seed int) bool {
	if s == nil || seed < 0 {
		return false
	}
	w := seed >> 6
	return w < len(s.words) && s.words[w]&(1<<(seed&63)) != 0
}

// Len returns the number of seeds in the set.
func (s *SeedSet) Len() int {
	if s == nil {
		return 0
	}
	return s.count
}

// Max returns the largest seed in the set, or -1 when empty.
func (s *SeedSet) Max() int {
	if s == nil {
		return -1
	}
	for w := len(s.words) - 1; w >= 0; w-- {
		if s.words[w] != 0 {
			return w*64 + 63 - bits.LeadingZeros64(s.words[w])
		}
	}
	return -1
}

// Seeds returns the members in ascending order.
func (s *SeedSet) Seeds() []int {
	if s == nil || s.count == 0 {
		return nil
	}
	out := make([]int, 0, s.count)
	for w, word := range s.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, w*64+b)
			word &^= 1 << b
		}
	}
	return out
}

// digest returns a short content fingerprint, used by Options.ResultKey:
// two runs with different skip sets report different result sets and must
// never share a cache entry.
func (s *SeedSet) digest() string {
	h := fnv.New64a()
	var buf [8]byte
	for _, w := range s.words {
		for i := 0; i < 8; i++ {
			buf[i] = byte(w >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// seedTracker counts the outstanding work of one seed group so the engine
// can tell when the group is complete: one unit for the task-generation
// phase plus one per emitted task (including tasks materialised later by
// the timeout splitter, which share the group's seedGraph). The worker that
// retires the last unit fires Options.OnSeedDone; plex deliveries for the
// group happen-before their task's release, so the callback observes every
// contribution.
type seedTracker struct {
	seed int

	mu          sync.Mutex
	outstanding int
	partial     Stats
}

// addTask registers one more queued task of the group. It must be called
// before the task becomes runnable by other workers.
func (tr *seedTracker) addTask() {
	tr.mu.Lock()
	tr.outstanding++
	tr.mu.Unlock()
}

// release retires one unit of work, folding delta into the group's partial
// stats, and fires OnSeedDone when the group is complete. A cancelled run
// never fires: branch() returns early once it observes the stop flag, so a
// retiring task may have been truncated mid-subtree — and because the flag
// is monotone, any task that saw it in branch is guaranteed to see it
// here. Suppressing a group that happened to finish completely is safe
// (the caller simply re-enumerates it on resume); reporting a truncated
// one as done would silently drop its unexplored plexes forever.
func (tr *seedTracker) release(e *engine, delta Stats) {
	tr.mu.Lock()
	tr.partial.Add(delta)
	tr.outstanding--
	done := tr.outstanding == 0
	partial := tr.partial
	tr.mu.Unlock()
	if done && !e.cancelled() {
		e.opts.OnSeedDone(tr.seed, partial)
	}
}

// statsDelta returns after minus before for the additive counters; for
// MaxPlexSize (a running maximum) it reports after's value when it grew
// during the window and zero otherwise, so that folding deltas with
// Stats.Add reconstructs the same maximum.
func statsDelta(after, before Stats) Stats {
	d := Stats{
		Seeds:         after.Seeds - before.Seeds,
		Tasks:         after.Tasks - before.Tasks,
		TasksPrunedR1: after.TasksPrunedR1 - before.TasksPrunedR1,
		Branches:      after.Branches - before.Branches,
		UBPruned:      after.UBPruned - before.UBPruned,
		Collapses:     after.Collapses - before.Collapses,
		Repicks:       after.Repicks - before.Repicks,
		Splits:        after.Splits - before.Splits,
		Steals:        after.Steals - before.Steals,
		StealMisses:   after.StealMisses - before.StealMisses,
		Emitted:       after.Emitted - before.Emitted,
		SeedBuildNS:   after.SeedBuildNS - before.SeedBuildNS,
		BranchNS:      after.BranchNS - before.BranchNS,
	}
	if after.MaxPlexSize > before.MaxPlexSize {
		d.MaxPlexSize = after.MaxPlexSize
	}
	return d
}

// settleRelease folds the worker's stats accrued since the previous settle
// point into tr and retires one unit of the group's work. A worker's
// execution is a sequence of homogeneous segments (one seed's generation
// phase, one task), each ending in a settleRelease, so the watermark
// attributes every counter to the seed group that produced it.
func (w *worker) settleRelease(tr *seedTracker) {
	delta := statsDelta(w.stats, w.mark)
	w.mark = w.stats
	tr.release(w.eng, delta)
}

// skipSeed reports whether the resumed-run skip set covers seed s.
func (e *engine) skipSeed(s int) bool {
	return e.opts.SkipSeeds.Contains(s)
}

// seedDoneEmpty reports a seed group that produced no work at all (its
// candidate space was pruned before any task existed).
func (e *engine) seedDoneEmpty(s int) {
	if e.opts.OnSeedDone != nil {
		e.opts.OnSeedDone(s, Stats{})
	}
}

// SeedSpace returns the number of seed subproblems a Run over g with opts
// iterates: the vertex count of the reduced, relabelled working graph. The
// value is deterministic in the graph content and the result-defining
// options (K, Q, UseCTCP), so checkpoints can record it once and a resumed
// run can verify it is replaying against the same decomposition. Seed ids
// reported by OnSeedDone and accepted by SkipSeeds lie in [0, SeedSpace).
//
// SeedSpace is a thin wrapper over Prepare; callers that will also run the
// enumeration should Prepare once and use Prepared.SeedSpace, which shares
// the prologue with the run instead of computing it twice.
func SeedSpace(g graph.CSR, opts Options) (int, error) {
	p, err := Prepare(g, opts)
	if err != nil {
		return 0, err
	}
	return p.SeedSpace(), nil
}
