package kplex

// Context-cancellation coverage for the derived query APIs. Run itself has
// cancellation tests in options_test.go; these pin down that EnumerateTopK
// and SizeHistogram propagate deadlines the same way — in particular that
// a context that is dead on arrival never starts the enumeration (Run's
// synchronous pre-check; the asynchronous watcher alone used to let an
// arbitrary prefix of the search execute first).

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/gen"
)

func TestEnumerateTopKPreCancelled(t *testing.T) {
	g := gen.GNP(300, 0.25, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	top, res, err := EnumerateTopK(ctx, g, NewOptions(3, 6), 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(top) != 0 {
		t.Errorf("pre-cancelled TopK returned %d plexes", len(top))
	}
	if res.Count != 0 {
		t.Errorf("pre-cancelled TopK counted %d plexes", res.Count)
	}
}

func TestEnumerateTopKDeadline(t *testing.T) {
	g := gen.GNP(300, 0.25, 9)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	opts := NewOptions(3, 6)
	opts.Threads = 4
	opts.TaskTimeout = 100 * time.Microsecond
	start := time.Now()
	_, _, err := EnumerateTopK(ctx, g, opts, 5)
	elapsed := time.Since(start)
	if err == nil {
		// Legitimate on a fast machine only if the run beat the deadline.
		if elapsed > 10*time.Second {
			t.Fatal("TopK ignored the context deadline")
		}
		return
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancelled TopK took %v", elapsed)
	}
}

func TestSizeHistogramPreCancelled(t *testing.T) {
	g := gen.GNP(300, 0.25, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	hist, res, err := SizeHistogram(ctx, g, NewOptions(3, 6))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(hist) != 0 || res.Count != 0 {
		t.Errorf("pre-cancelled histogram: %d buckets, count %d", len(hist), res.Count)
	}
}

func TestSizeHistogramDeadline(t *testing.T) {
	g := gen.GNP(300, 0.25, 9)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	opts := NewOptions(3, 6)
	opts.Threads = 4
	opts.TaskTimeout = 100 * time.Microsecond
	start := time.Now()
	hist, res, err := SizeHistogram(ctx, g, opts)
	elapsed := time.Since(start)
	if err == nil {
		if elapsed > 10*time.Second {
			t.Fatal("histogram ignored the context deadline")
		}
		return
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
	// The partial histogram must stay consistent with the partial count.
	var sum int64
	for _, c := range hist {
		sum += c
	}
	if sum != res.Count {
		t.Errorf("partial histogram sums to %d, Result.Count=%d", sum, res.Count)
	}
}
