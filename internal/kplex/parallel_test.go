package kplex

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
)

// TestTimeoutSplittingFires checks that a tiny τ_time actually materialises
// split tasks and that the result count is unaffected.
func TestTimeoutSplittingFires(t *testing.T) {
	g := gen.ChungLu(1200, 20, 2.2, 31)
	const k, q = 2, 8
	seq := mustRun(t, g, NewOptions(k, q))

	opts := NewOptions(k, q)
	opts.Threads = 4
	opts.TaskTimeout = time.Nanosecond // split at every opportunity
	par := mustRun(t, g, opts)

	if par.Count != seq.Count {
		t.Fatalf("split run count %d != sequential %d", par.Count, seq.Count)
	}
	if par.Stats.Splits == 0 {
		t.Fatal("no tasks were split despite a 1ns τ_time")
	}
}

// TestSplitTasksAreStealable uses one very long τ versus aggressive
// splitting and verifies both modes visit the same result set while the
// aggressive mode creates strictly more tasks.
func TestSplitTasksAreStealable(t *testing.T) {
	g := gen.ChungLu(1200, 20, 2.2, 32)
	const k, q = 2, 8

	slow := NewOptions(k, q)
	slow.Threads = 4
	slow.TaskTimeout = time.Hour
	rs := mustRun(t, g, slow)

	fast := NewOptions(k, q)
	fast.Threads = 4
	fast.TaskTimeout = 5 * time.Microsecond
	rf := mustRun(t, g, fast)

	if rs.Count != rf.Count {
		t.Fatalf("counts differ: %d vs %d", rs.Count, rf.Count)
	}
	if rf.Stats.Splits <= rs.Stats.Splits {
		t.Fatalf("aggressive splitting produced %d splits vs %d", rf.Stats.Splits, rs.Stats.Splits)
	}
}

// TestPruningCountersFire ensures the R1 and upper-bound counters actually
// engage on a workload where pruning matters, so the ablation tables
// measure something real.
func TestPruningCountersFire(t *testing.T) {
	g := gen.ChungLu(1500, 22, 2.2, 33)
	res := mustRun(t, g, NewOptions(3, 16))
	if res.Stats.UBPruned == 0 {
		t.Error("upper-bound pruning never fired")
	}
	if res.Stats.TasksPrunedR1 == 0 {
		t.Error("R1 sub-task pruning never fired")
	}
	if res.Stats.Tasks == 0 || res.Stats.Branches == 0 || res.Stats.Seeds == 0 {
		t.Errorf("counters look dead: %+v", res.Stats)
	}
}

// TestPruningReducesWork compares branch counts between Basic and Ours:
// equal results, strictly less search.
func TestPruningReducesWork(t *testing.T) {
	g := gen.ChungLu(1500, 22, 2.2, 34)
	const k, q = 3, 16
	basic := mustRun(t, g, BasicOptions(k, q))
	ours := mustRun(t, g, NewOptions(k, q))
	if basic.Count != ours.Count {
		t.Fatalf("counts differ: %d vs %d", basic.Count, ours.Count)
	}
	if ours.Stats.Branches >= basic.Stats.Branches {
		t.Fatalf("pruning did not reduce branches: ours=%d basic=%d",
			ours.Stats.Branches, basic.Stats.Branches)
	}
}

// TestOnPlexParallelDelivery checks that a synchronised callback sees
// exactly Count plexes under heavy parallelism.
func TestOnPlexParallelDelivery(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 350
	}
	g := gen.ChungLu(n, 18, 2.25, 35)
	opts := NewOptions(2, 8)
	opts.Threads = 8
	opts.TaskTimeout = 20 * time.Microsecond
	var mu sync.Mutex
	var got int64
	opts.OnPlex = func(p []int) {
		if len(p) < 8 {
			t.Errorf("plex %v below q", p)
		}
		mu.Lock()
		got++
		mu.Unlock()
	}
	res, err := Run(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got != res.Count {
		t.Fatalf("callback saw %d, count is %d", got, res.Count)
	}
}

// TestManyThreadsOnTinyGraph exercises the thread-clamping path where
// Threads exceeds the vertex count.
func TestManyThreadsOnTinyGraph(t *testing.T) {
	g := gen.GNP(12, 0.7, 36)
	opts := NewOptions(2, 4)
	opts.Threads = 64
	opts.TaskTimeout = time.Microsecond
	seq := mustRun(t, g, NewOptions(2, 4))
	par := mustRun(t, g, opts)
	if seq.Count != par.Count {
		t.Fatalf("counts differ: %d vs %d", seq.Count, par.Count)
	}
}

func TestTaskQueueFIFOAndLIFO(t *testing.T) {
	q := &taskQueue{}
	mk := func(i int) *task { return &task{sizeP: i} }
	for i := 0; i < 4; i++ {
		q.push(mk(i))
	}
	if got := q.popBack(); got.sizeP != 3 {
		t.Fatalf("popBack = %d, want 3", got.sizeP)
	}
	if got := q.popFront(); got.sizeP != 0 {
		t.Fatalf("popFront = %d, want 0", got.sizeP)
	}
	if got := q.popFront(); got.sizeP != 1 {
		t.Fatalf("popFront = %d, want 1", got.sizeP)
	}
	if got := q.popBack(); got.sizeP != 2 {
		t.Fatalf("popBack = %d, want 2", got.sizeP)
	}
	if q.popBack() != nil || q.popFront() != nil {
		t.Fatal("empty queue should return nil")
	}
}
