package kplex

// Tests for the seed-sampling estimator: membership determinism, the
// partition invariant, agreement between a SkipSeeds run and the selected
// per-seed counts, and — the acceptance criterion — 95% CI coverage of the
// exact golden count on ≥ 90% of (cell, salt) estimates at rate 0.1.

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/gen"
)

func TestSampleSeedsDeterministicPartition(t *testing.T) {
	const total, salt = 500, 0xABCDEF
	skip1, kept1, err := SampleSeeds(total, 0.3, salt)
	if err != nil {
		t.Fatal(err)
	}
	skip2, kept2, err := SampleSeeds(total, 0.3, salt)
	if err != nil {
		t.Fatal(err)
	}
	if kept1 != kept2 || skip1.Len() != skip2.Len() {
		t.Fatalf("same salt, different samples: kept %d/%d skip %d/%d",
			kept1, kept2, skip1.Len(), skip2.Len())
	}
	for s := 0; s < total; s++ {
		if skip1.Contains(s) != skip2.Contains(s) {
			t.Fatalf("seed %d membership differs between identical calls", s)
		}
	}
	if kept1+skip1.Len() != total {
		t.Fatalf("partition broken: kept %d + skipped %d != %d", kept1, skip1.Len(), total)
	}
	// ~30% of 500 kept; a 5x band catches only catastrophic bias.
	if kept1 < 50 || kept1 > 300 {
		t.Errorf("kept %d of %d at rate 0.3: implausible", kept1, total)
	}

	// A different salt must select a different subset (overwhelmingly).
	skip3, _, err := SampleSeeds(total, 0.3, salt+1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for s := 0; s < total; s++ {
		if skip1.Contains(s) != skip3.Contains(s) {
			same = false
			break
		}
	}
	if same {
		t.Error("different salts selected the identical subset")
	}
}

func TestSampleSeedsEdgeCases(t *testing.T) {
	if _, _, err := SampleSeeds(10, 0, 1); err == nil {
		t.Error("rate 0 accepted")
	}
	if _, _, err := SampleSeeds(10, 1.5, 1); err == nil {
		t.Error("rate 1.5 accepted")
	}
	if _, _, err := SampleSeeds(-1, 0.5, 1); err == nil {
		t.Error("negative total accepted")
	}
	skip, kept, err := SampleSeeds(10, 1, 1)
	if err != nil || kept != 10 || skip.Len() != 0 {
		t.Errorf("rate 1: kept=%d skip=%d err=%v, want all kept", kept, skip.Len(), err)
	}
	skip, kept, err = SampleSeeds(0, 0.5, 1)
	if err != nil || kept != 0 || skip.Len() != 0 {
		t.Errorf("empty space: kept=%d skip=%d err=%v", kept, skip.Len(), err)
	}
}

func TestEstimateCountDegenerate(t *testing.T) {
	if e := EstimateCount(100, nil, 0.1); e.Count != 0 || e.StdErr != 0 {
		t.Errorf("empty sample: %+v", e)
	}
	// Full census: estimate equals the exact sum, zero error.
	e := EstimateCount(3, []int64{2, 5, 1}, 1)
	if e.Count != 8 || e.StdErr != 0 || e.CI95Lo != 8 || e.CI95Hi != 8 {
		t.Errorf("census: %+v, want exact 8 with zero-width CI", e)
	}
	// Lower bound never drops below the raw sample count.
	e = EstimateCount(1000, []int64{0, 0, 0, 0, 100}, 0.005)
	if e.CI95Lo < float64(e.RawCount) {
		t.Errorf("CI lower bound %v below raw count %d", e.CI95Lo, e.RawCount)
	}
}

// exactPerSeed enumerates one golden cell completely, returning the exact
// per-seed plex counts (indexed by seed id) and the seed-space size.
func exactPerSeed(t *testing.T, cg gen.CorpusGraph, k, q int) []int64 {
	t.Helper()
	g := cg.Build()
	opts := NewOptions(k, q)
	p, err := Prepare(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, p.SeedSpace())
	var mu sync.Mutex
	opts.OnPlexSeed = func(seed int, _ []int) {
		mu.Lock()
		counts[seed]++
		mu.Unlock()
	}
	opts.OnSeedDone = func(int, Stats) {}
	if _, err := RunPrepared(context.Background(), p, opts); err != nil {
		t.Fatal(err)
	}
	return counts
}

// TestSampleEstimateCoverage is the acceptance check: across every golden
// cell and a spread of salts, rate-0.1 estimates (after the production
// sample-size floor of EffectiveSampleRate) must cover the exact count
// within their reported 95% CI at least 90% of the time. One full
// enumeration per cell yields the exact per-seed counts; because seed
// groups are independent, a sampled run's raw counts are exactly the
// selected entries of that vector (TestSampleRunMatchesSelection pins
// that), so the sweep over salts costs no extra enumeration.
func TestSampleEstimateCoverage(t *testing.T) {
	const rate = 0.1
	salts := []uint64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987}
	covered, applicable := 0, 0
	for _, cg := range gen.Corpus() {
		for _, kq := range goldenCombos(cg.Name) {
			want := readGoldenCase(t, goldenCase{Graph: cg.Name, K: kq[0], Q: kq[1]})
			perSeed := exactPerSeed(t, cg, kq[0], kq[1])
			var exact int64
			for _, c := range perSeed {
				exact += c
			}
			if exact != want.Count {
				t.Fatalf("%s k=%d q=%d: per-seed counts sum to %d, golden %d",
					cg.Name, kq[0], kq[1], exact, want.Count)
			}
			for _, salt := range salts {
				eff := EffectiveSampleRate(len(perSeed), rate, 0)
				skip, kept, err := SampleSeeds(len(perSeed), eff, salt)
				if err != nil {
					t.Fatal(err)
				}
				sampled := make([]int64, 0, kept)
				for s := range perSeed {
					if !skip.Contains(s) {
						sampled = append(sampled, perSeed[s])
					}
				}
				est := EstimateCount(len(perSeed), sampled, eff)
				if est.SampledSeeds < 2 {
					continue // no variance estimate possible; skip the draw
				}
				applicable++
				if float64(exact) >= est.CI95Lo && float64(exact) <= est.CI95Hi {
					covered++
				}
			}
		}
	}
	if applicable == 0 {
		t.Fatal("no applicable estimates")
	}
	frac := float64(covered) / float64(applicable)
	t.Logf("coverage: %d/%d = %.3f", covered, applicable, frac)
	if frac < 0.9 {
		t.Errorf("95%% CI covered the exact count on %.1f%% of estimates, want >= 90%%", frac*100)
	}
}

// TestSampleRunMatchesSelection runs one cell with the sample's skip set
// installed and checks the enumerated raw count equals the sum of the
// exact per-seed counts over the selected seeds — the independence
// property the coverage sweep relies on.
func TestSampleRunMatchesSelection(t *testing.T) {
	cg := *gen.CorpusGraphByName("planted-a")
	perSeed := exactPerSeed(t, cg, 2, 6)

	g := cg.Build()
	opts := NewOptions(2, 6)
	p, err := Prepare(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	const salt = 42
	skip, kept, err := SampleSeeds(p.SeedSpace(), 0.25, salt)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for s, c := range perSeed {
		if !skip.Contains(s) {
			want += c
		}
	}
	opts.SkipSeeds = skip
	var got int64
	var mu sync.Mutex
	opts.OnPlexSeed = func(seed int, _ []int) {
		if skip.Contains(seed) {
			t.Errorf("skipped seed %d delivered a plex", seed)
		}
		mu.Lock()
		got++
		mu.Unlock()
	}
	res, err := RunPrepared(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got != want || res.Count != want {
		t.Errorf("sampled run: delivered %d, Result.Count %d, want %d (kept %d seeds)",
			got, res.Count, want, kept)
	}
}

func TestTCrit95Monotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		v := tCrit95(df)
		if v > prev {
			t.Fatalf("tCrit95 not non-increasing at df=%d: %v > %v", df, v, prev)
		}
		prev = v
	}
	if v := tCrit95(1000); v != 1.960 {
		t.Errorf("normal limit %v, want 1.960", v)
	}
}

func TestEffectiveSampleRate(t *testing.T) {
	cases := []struct {
		total    int
		rate     float64
		minSeeds int
		want     float64
	}{
		{10, 0.1, 32, 1},        // whole space within the floor: census
		{32, 0.5, 32, 1},        // boundary: census
		{64, 0.1, 32, 0.5},      // floor dominates
		{1000, 0.1, 32, 0.1},    // requested rate dominates
		{1000, 0.01, 32, 0.032}, // floor raises a tiny rate
		{64, 0.1, 0, 0.5},       // minSeeds 0 means the default (32)
	}
	for _, c := range cases {
		got := EffectiveSampleRate(c.total, c.rate, c.minSeeds)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("EffectiveSampleRate(%d, %v, %d) = %v, want %v",
				c.total, c.rate, c.minSeeds, got, c.want)
		}
	}
}
