// Package gen provides deterministic synthetic graph generators used as
// stand-ins for the paper's SNAP/LAW datasets (which are not redistributable
// and not reachable from this offline module). Each generator is seeded and
// reproducible, and the suite in internal/bench composes them into named
// datasets whose degree/core structure mirrors the paper's Table 2 at a
// laptop-friendly scale.
package gen

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// GNP returns an Erdős–Rényi graph G(n, p) generated with the geometric
// skipping method (O(n + m) expected time).
func GNP(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var b graph.Builder
	if p <= 0 || n < 2 {
		g, _ := b.Build(n)
		return g
	}
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdge(u, v)
			}
		}
		g, _ := b.Build(n)
		return g
	}
	logQ := math.Log(1 - p)
	// Iterate over the strict upper triangle with geometric jumps.
	v, w := 1, -1
	for v < n {
		w += 1 + int(math.Log(1-rng.Float64())/logQ)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			b.AddEdge(v, w)
		}
	}
	g, err := b.Build(n)
	if err != nil {
		panic("gen: gnp: " + err.Error())
	}
	return g
}

// BarabasiAlbert returns a preferential-attachment graph: starting from a
// clique on m+1 vertices, each new vertex attaches to m existing vertices
// chosen proportionally to degree. Produces the heavy-tailed degree
// distributions characteristic of the paper's web and social graphs.
func BarabasiAlbert(n, m int, seed int64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	if n < m+1 {
		n = m + 1
	}
	rng := rand.New(rand.NewSource(seed))
	var b graph.Builder
	b.Grow(n * m)
	// repeated holds every edge endpoint twice; uniform sampling from it is
	// degree-proportional sampling.
	repeated := make([]int, 0, 2*n*m)
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			b.AddEdge(u, v)
			repeated = append(repeated, u, v)
		}
	}
	targets := make(map[int]struct{}, m)
	targetList := make([]int, 0, m)
	for v := m + 1; v < n; v++ {
		for k := range targets {
			delete(targets, k)
		}
		for len(targets) < m {
			t := repeated[rng.Intn(len(repeated))]
			if _, dup := targets[t]; !dup {
				targets[t] = struct{}{}
				targetList = append(targetList, t)
			}
		}
		// targetList preserves draw order: iterating the map here would
		// make the edge set depend on Go's randomised map order.
		for _, t := range targetList {
			b.AddEdge(v, t)
			repeated = append(repeated, v, t)
		}
		targetList = targetList[:0]
	}
	g, err := b.Build(n)
	if err != nil {
		panic("gen: ba: " + err.Error())
	}
	return g
}

// ChungLu returns a power-law random graph with expected degree sequence
// w_i ∝ (i+1)^(-1/(gamma-1)) scaled so the expected average degree is
// avgDeg. gamma is typically in (2, 3]; smaller gamma gives heavier tails
// (higher Δ relative to n), matching the paper's social-network datasets.
func ChungLu(n int, avgDeg, gamma float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	if n < 2 {
		g, _ := (&graph.Builder{}).Build(n)
		return g
	}
	alpha := 1 / (gamma - 1)
	w := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		w[i] = math.Pow(float64(i+1), -alpha)
		sum += w[i]
	}
	scale := avgDeg * float64(n) / sum
	S := 0.0
	for i := range w {
		w[i] *= scale
		S += w[i]
	}
	var b graph.Builder
	// Chung-Lu via the Miller–Hagberg style approach: for each u walk v with
	// geometric skips under the upper bound p̄ = w_u*w_v_max/S, then accept
	// with p/p̄. Weights are non-increasing in the index, so the bound uses
	// v's predecessor weight.
	for u := 0; u < n-1; u++ {
		v := u + 1
		p := math.Min(w[u]*w[v]/S, 1)
		for v < n && p > 0 {
			if p < 1 {
				v += int(math.Log(1-rng.Float64()) / math.Log(1-p))
			}
			if v < n {
				q := math.Min(w[u]*w[v]/S, 1)
				if rng.Float64() < q/p {
					b.AddEdge(u, v)
				}
				p = q
				v++
			}
		}
	}
	g, err := b.Build(n)
	if err != nil {
		panic("gen: chunglu: " + err.Error())
	}
	return g
}

// RMAT returns a recursive-matrix graph with 2^scale vertices and
// approximately edgeFactor*2^scale edges, using the standard (a, b, c, d)
// partition probabilities. RMAT graphs exhibit the skewed community-like
// structure of the paper's web crawls.
func RMAT(scale, edgeFactor int, a, b, c float64, seed int64) *graph.Graph {
	n := 1 << uint(scale)
	rng := rand.New(rand.NewSource(seed))
	var bld graph.Builder
	bld.Grow(edgeFactor * n)
	for e := 0; e < edgeFactor*n; e++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: nothing to add
			case r < a+b:
				v |= 1 << uint(bit)
			case r < a+b+c:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		bld.AddEdge(u, v)
	}
	g, err := bld.Build(n)
	if err != nil {
		panic("gen: rmat: " + err.Error())
	}
	return g
}

// PlantedConfig describes a graph with dense planted communities on top of a
// sparse background, the workload that guarantees large maximal k-plexes
// exist (the "community detection" use case in the paper's introduction).
type PlantedConfig struct {
	N           int     // total vertices
	BackgroundP float64 // ER background edge probability
	Communities int     // number of planted communities
	CommSize    int     // vertices per community
	DropPerV    int     // edges dropped per community vertex (≤ k-1 keeps it a k-plex)
	Overlap     int     // vertices shared between consecutive communities
	Seed        int64
}

// Planted generates the configured graph. Each community is a clique of
// CommSize vertices minus a DropPerV-regular set of missing edges, so every
// community is a (DropPerV+1)-plex of size CommSize by construction.
func Planted(cfg PlantedConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var b graph.Builder
	bg := GNP(cfg.N, cfg.BackgroundP, cfg.Seed+1)
	for _, e := range bg.Edges() {
		b.AddEdge(int(e.U), int(e.V))
	}
	step := cfg.CommSize - cfg.Overlap
	if step < 1 {
		step = 1
	}
	for c := 0; c < cfg.Communities; c++ {
		base := (c * step) % max(1, cfg.N-cfg.CommSize)
		members := make([]int, cfg.CommSize)
		for i := range members {
			members[i] = base + i
		}
		addCommunity(&b, members, cfg.DropPerV, rng)
	}
	g, err := b.Build(cfg.N)
	if err != nil {
		panic("gen: planted: " + err.Error())
	}
	return g
}

// addCommunity inserts a near-clique on members: a full clique minus a
// perfect-matching-style set of dropped edges where each vertex loses at
// most dropPerV incident edges.
func addCommunity(b *graph.Builder, members []int, dropPerV int, rng *rand.Rand) {
	s := len(members)
	dropped := make(map[[2]int]bool)
	if dropPerV > 0 && s >= 4 {
		budget := make([]int, s)
		// Drop random disjoint-ish pairs while respecting each endpoint's
		// budget; this keeps the community a (dropPerV+1)-plex.
		attempts := dropPerV * s
		for t := 0; t < attempts; t++ {
			i, j := rng.Intn(s), rng.Intn(s)
			if i == j || budget[i] >= dropPerV || budget[j] >= dropPerV {
				continue
			}
			if i > j {
				i, j = j, i
			}
			key := [2]int{i, j}
			if dropped[key] {
				continue
			}
			dropped[key] = true
			budget[i]++
			budget[j]++
		}
	}
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			if !dropped[[2]int{i, j}] {
				b.AddEdge(members[i], members[j])
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
