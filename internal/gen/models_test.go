package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestSBMStructure(t *testing.T) {
	cfg := SBMConfig{
		BlockSizes: []int{30, 30, 30},
		PIn:        0.5,
		POut:       0.02,
		Seed:       1,
	}
	g := SBM(cfg)
	if g.N() != 90 {
		t.Fatalf("n = %d, want 90", g.N())
	}
	// Count within- vs cross-block edges; with this contrast the within
	// count must dominate.
	blockOf := func(v int) int { return v / 30 }
	within, cross := 0, 0
	for _, e := range g.Edges() {
		if blockOf(int(e.U)) == blockOf(int(e.V)) {
			within++
		} else {
			cross++
		}
	}
	if within <= 4*cross {
		t.Errorf("within=%d cross=%d: expected strong community contrast", within, cross)
	}
}

func TestSBMDeterministic(t *testing.T) {
	cfg := SBMConfig{BlockSizes: []int{20, 20}, PIn: 0.4, POut: 0.05, Seed: 7}
	a, b := SBM(cfg), SBM(cfg)
	if a.M() != b.M() {
		t.Errorf("same seed produced different graphs: %d vs %d edges", a.M(), b.M())
	}
}

func TestSBMEmpty(t *testing.T) {
	g := SBM(SBMConfig{Seed: 1})
	if g.N() != 0 || g.M() != 0 {
		t.Errorf("empty config should give empty graph, got n=%d m=%d", g.N(), g.M())
	}
}

func TestWattsStrogatzLattice(t *testing.T) {
	// beta = 0 keeps the pure ring lattice: every vertex has degree k.
	g := WattsStrogatz(20, 4, 0, 1)
	if g.N() != 20 {
		t.Fatalf("n = %d, want 20", g.N())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Errorf("lattice degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	// The ring lattice has high clustering.
	if cc := graph.AverageClustering(g); cc < 0.4 {
		t.Errorf("lattice clustering %v, want >= 0.4", cc)
	}
}

func TestWattsStrogatzRewiringPreservesEdgeCount(t *testing.T) {
	g0 := WattsStrogatz(50, 6, 0, 2)
	g1 := WattsStrogatz(50, 6, 0.3, 2)
	if g0.M() != g1.M() {
		t.Errorf("rewiring changed edge count: %d -> %d", g0.M(), g1.M())
	}
}

func TestWattsStrogatzTiny(t *testing.T) {
	g := WattsStrogatz(2, 2, 0.5, 3)
	if g.N() != 2 || g.M() != 0 {
		t.Errorf("tiny WS should be edgeless, got n=%d m=%d", g.N(), g.M())
	}
}

func TestRandomRegular(t *testing.T) {
	g := RandomRegular(30, 4, 5)
	if g.N() != 30 || g.M() != 60 {
		t.Fatalf("n=%d m=%d, want 30, 60", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Errorf("degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
}

func TestRandomRegularOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for odd n*d")
		}
	}()
	RandomRegular(5, 3, 1)
}

func TestRandomRegularDTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for d >= n")
		}
	}()
	RandomRegular(4, 4, 1)
}

func TestNoisyPlexIsKPlex(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		g := NoisyPlex(12, k, int64(k))
		// Every vertex must have degree >= n - k within the whole set.
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) < g.N()-k {
				t.Errorf("k=%d: degree(%d) = %d < n-k = %d", k, v, g.Degree(v), g.N()-k)
			}
		}
	}
}

func TestNoisyPlexK1IsClique(t *testing.T) {
	g := NoisyPlex(8, 1, 9)
	if g.M() != 8*7/2 {
		t.Errorf("1-plex of 8 should be K8 with 28 edges, got %d", g.M())
	}
}
