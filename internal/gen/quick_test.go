package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// Every generator must emit a simple graph: sorted adjacency, no
// self-loops, no duplicates, symmetric. The Builder enforces this, so the
// property pins that no generator bypasses it.
func simple(g *graph.Graph) bool {
	for v := 0; v < g.N(); v++ {
		nb := g.Neighbors(v)
		for i, u := range nb {
			if int(u) == v {
				return false
			}
			if i > 0 && nb[i-1] >= u {
				return false
			}
			if !g.HasEdge(int(u), v) {
				return false
			}
		}
	}
	return true
}

func TestQuickGeneratorsAreSimpleAndDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)

		builds := []func() *graph.Graph{
			func() *graph.Graph { return GNP(n, 0.1+0.3*rng.Float64(), seed) },
			func() *graph.Graph { return BarabasiAlbert(n, 1+rng.Intn(4), seed) },
			func() *graph.Graph { return ChungLu(n, 4+6*rng.Float64(), 2.1+rng.Float64(), seed) },
			func() *graph.Graph { return WattsStrogatz(n, 4, rng.Float64(), seed) },
			func() *graph.Graph {
				return SBM(SBMConfig{BlockSizes: []int{n / 2, n - n/2}, PIn: 0.3, POut: 0.05, Seed: seed})
			},
		}
		for _, build := range builds {
			a := build()
			if !simple(a) {
				return false
			}
		}
		// Determinism: same seed, same graph.
		a := GNP(n, 0.25, seed)
		b := GNP(n, 0.25, seed)
		if a.M() != b.M() {
			return false
		}
		for v := 0; v < a.N(); v++ {
			na, nb := a.Neighbors(v), b.Neighbors(v)
			if len(na) != len(nb) {
				return false
			}
			for i := range na {
				if na[i] != nb[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Planted communities must actually contain their k-plexes: every planted
// block forms a (DropPerV+1)-plex.
func TestQuickPlantedContainsPlexes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		drop := rng.Intn(3)
		size := 8 + rng.Intn(6)
		cfg := PlantedConfig{
			N: 200, BackgroundP: 0.01, Communities: 4, CommSize: size,
			DropPerV: drop, Overlap: 0, Seed: seed,
		}
		g := Planted(cfg)
		k := drop + 1
		// First community occupies vertices [0, size).
		for u := 0; u < size; u++ {
			inDeg := 0
			for _, w := range g.Neighbors(u) {
				if int(w) < size {
					inDeg++
				}
			}
			if inDeg < size-k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
