package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestGNPDeterministicAndSane(t *testing.T) {
	a := GNP(200, 0.1, 42)
	b := GNP(200, 0.1, 42)
	if a.M() != b.M() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.M(), b.M())
	}
	c := GNP(200, 0.1, 43)
	if a.M() == 0 || c.M() == 0 {
		t.Fatal("GNP produced empty graph at p=0.1")
	}
	// Expected m = p*n*(n-1)/2 = 1990; allow generous slack.
	if a.M() < 1500 || a.M() > 2500 {
		t.Fatalf("GNP m = %d, far from expectation 1990", a.M())
	}
}

func TestGNPEdgeCases(t *testing.T) {
	if g := GNP(10, 0, 1); g.M() != 0 {
		t.Fatal("p=0 must give no edges")
	}
	if g := GNP(6, 1, 1); g.M() != 15 {
		t.Fatalf("p=1 must give complete graph, got m=%d", g.M())
	}
	if g := GNP(0, 0.5, 1); g.N() != 0 {
		t.Fatal("n=0 must give empty graph")
	}
	if g := GNP(1, 0.5, 1); g.N() != 1 || g.M() != 0 {
		t.Fatal("n=1 must give single vertex")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(500, 4, 7)
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	// Each of the n-m-1 late vertices adds m edges plus the seed clique.
	wantMin := (500 - 5) * 4
	if g.M() < wantMin {
		t.Fatalf("M = %d < %d", g.M(), wantMin)
	}
	// Preferential attachment must produce a hub much above the mean.
	if g.MaxDegree() < 3*4 {
		t.Fatalf("max degree %d suspiciously small", g.MaxDegree())
	}
	// Determinism of the exact edge set, not just the edge count: an
	// earlier version iterated a map when attaching targets, which made
	// the graph differ between runs of the same binary.
	g2 := BarabasiAlbert(500, 4, 7)
	ea, eb := g.Edges(), g2.Edges()
	if len(ea) != len(eb) {
		t.Fatal("not deterministic (edge count)")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("not deterministic (edge %d: %v vs %v)", i, ea[i], eb[i])
		}
	}
}

func TestChungLu(t *testing.T) {
	g := ChungLu(1000, 10, 2.5, 3)
	if g.N() != 1000 {
		t.Fatalf("N = %d", g.N())
	}
	avg := 2 * float64(g.M()) / float64(g.N())
	if avg < 5 || avg > 20 {
		t.Fatalf("average degree %.1f far from target 10", avg)
	}
	// Heavy tail: max degree well above average.
	if float64(g.MaxDegree()) < 3*avg {
		t.Fatalf("max degree %d not heavy-tailed (avg %.1f)", g.MaxDegree(), avg)
	}
	if ChungLu(1000, 10, 2.5, 3).M() != g.M() {
		t.Fatal("not deterministic")
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 8, 0.57, 0.19, 0.19, 11)
	if g.N() != 1024 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() == 0 {
		t.Fatal("no edges")
	}
	if RMAT(10, 8, 0.57, 0.19, 0.19, 11).M() != g.M() {
		t.Fatal("not deterministic")
	}
}

func TestPlantedCommunitiesAreKPlexes(t *testing.T) {
	cfg := PlantedConfig{
		N: 400, BackgroundP: 0.01, Communities: 5, CommSize: 20,
		DropPerV: 2, Overlap: 0, Seed: 21,
	}
	g := Planted(cfg)
	// Every planted community must be a (DropPerV+1)-plex: each member
	// misses at most DropPerV community edges plus itself.
	k := cfg.DropPerV + 1
	step := cfg.CommSize - cfg.Overlap
	for c := 0; c < cfg.Communities; c++ {
		base := (c * step) % (cfg.N - cfg.CommSize)
		members := make(map[int]bool, cfg.CommSize)
		for i := 0; i < cfg.CommSize; i++ {
			members[base+i] = true
		}
		for m := range members {
			d := 0
			for _, u := range g.Neighbors(m) {
				if members[int(u)] {
					d++
				}
			}
			if d < cfg.CommSize-k {
				t.Fatalf("community %d member %d has %d internal edges, need >= %d",
					c, m, d, cfg.CommSize-k)
			}
		}
	}
}

func TestPlantedDeterministic(t *testing.T) {
	cfg := PlantedConfig{N: 200, BackgroundP: 0.02, Communities: 3, CommSize: 12, DropPerV: 1, Seed: 5}
	if Planted(cfg).M() != Planted(cfg).M() {
		t.Fatal("not deterministic")
	}
}

func TestGeneratorsProduceSimpleGraphs(t *testing.T) {
	graphs := []*graph.Graph{
		GNP(100, 0.2, 1),
		BarabasiAlbert(100, 3, 2),
		ChungLu(100, 8, 2.3, 3),
		RMAT(7, 6, 0.5, 0.2, 0.2, 4),
		Planted(PlantedConfig{N: 100, BackgroundP: 0.05, Communities: 2, CommSize: 10, DropPerV: 1, Seed: 6}),
	}
	for gi, g := range graphs {
		for v := 0; v < g.N(); v++ {
			nb := g.Neighbors(v)
			for i, u := range nb {
				if int(u) == v {
					t.Fatalf("graph %d: self-loop at %d", gi, v)
				}
				if i > 0 && nb[i-1] >= u {
					t.Fatalf("graph %d: adjacency of %d not strictly sorted", gi, v)
				}
				if !g.HasEdge(int(u), v) {
					t.Fatalf("graph %d: edge (%d,%d) not symmetric", gi, v, u)
				}
			}
		}
	}
}
