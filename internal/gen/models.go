package gen

// Additional generator models. The stochastic block model gives controllable
// community structure (sharper than Planted: k-plexes are not guaranteed,
// only density contrast), Watts-Strogatz gives high clustering with short
// paths (protein-interaction-like), and random regular graphs provide the
// degenerate workload where degree-based pruning is useless — a stress case
// for the pivot and pair rules.

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// SBMConfig parameterises a stochastic block model.
type SBMConfig struct {
	// BlockSizes lists the community sizes; the graph has sum(BlockSizes)
	// vertices, assigned to blocks in index order.
	BlockSizes []int
	// PIn is the within-block edge probability.
	PIn float64
	// POut is the cross-block edge probability.
	POut float64
	Seed int64
}

// SBM generates a stochastic block model graph.
func SBM(cfg SBMConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := 0
	block := make([]int, 0)
	for bi, s := range cfg.BlockSizes {
		for i := 0; i < s; i++ {
			block = append(block, bi)
		}
		n += s
	}
	var b graph.Builder
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := cfg.POut
			if block[u] == block[v] {
				p = cfg.PIn
			}
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	g, err := b.Build(n)
	if err != nil {
		panic("gen: sbm: " + err.Error())
	}
	return g
}

// WattsStrogatz returns a small-world graph: a ring lattice where every
// vertex is joined to its k nearest neighbours (k rounded down to even),
// with each edge rewired to a random endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, seed int64) *graph.Graph {
	if n < 3 {
		g, _ := new(graph.Builder).Build(n)
		return g
	}
	half := k / 2
	if half < 1 {
		half = 1
	}
	if half >= n/2 {
		half = (n - 1) / 2
	}
	rng := rand.New(rand.NewSource(seed))
	// Track the current edge set so rewiring avoids duplicates.
	type edge struct{ u, v int }
	has := make(map[edge]bool, n*half)
	norm := func(u, v int) edge {
		if u > v {
			u, v = v, u
		}
		return edge{u, v}
	}
	edges := make([]edge, 0, n*half)
	for u := 0; u < n; u++ {
		for d := 1; d <= half; d++ {
			e := norm(u, (u+d)%n)
			if !has[e] {
				has[e] = true
				edges = append(edges, e)
			}
		}
	}
	for i, e := range edges {
		if rng.Float64() >= beta {
			continue
		}
		// Rewire the far endpoint to a uniform non-neighbour of e.u.
		for attempt := 0; attempt < 16; attempt++ {
			w := rng.Intn(n)
			if w == e.u {
				continue
			}
			ne := norm(e.u, w)
			if has[ne] {
				continue
			}
			delete(has, e)
			has[ne] = true
			edges[i] = ne
			break
		}
	}
	var b graph.Builder
	b.Grow(len(edges))
	for _, e := range edges {
		b.AddEdge(e.u, e.v)
	}
	g, err := b.Build(n)
	if err != nil {
		panic("gen: ws: " + err.Error())
	}
	return g
}

// RandomRegular returns a d-regular graph on n vertices via the pairing
// model (n*d must be even; panics otherwise). Instead of restarting the
// whole pairing whenever a self-loop or duplicate edge appears — which
// succeeds with probability ~exp(-(d²-1)/4) per attempt and effectively
// never converges beyond d ≈ 6 — conflicting pairs are repaired locally:
// each round re-shuffles the stubs of the bad pairs together with an equal
// number of randomly chosen good pairs (the extra stubs break parity
// deadlocks such as two identical duplicate pairs). The expected number of
// conflicts shrinks geometrically, so any practical (n, d) converges in a
// handful of rounds, deterministically for a fixed seed.
func RandomRegular(n, d int, seed int64) *graph.Graph {
	if n*d%2 != 0 {
		panic("gen: regular: n*d must be even")
	}
	if d >= n {
		panic("gen: regular: need d < n")
	}
	rng := rand.New(rand.NewSource(seed))
	m := n * d / 2
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	// pairs[i] = (stubs[2i], stubs[2i+1]).
	type edge struct{ u, v int }
	seen := make(map[edge]bool, m)
	var bad []int
	for round := 0; round < 1000; round++ {
		clear(seen)
		bad = bad[:0]
		for i := 0; i < m; i++ {
			u, v := stubs[2*i], stubs[2*i+1]
			if u == v {
				bad = append(bad, i)
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[edge{u, v}] {
				bad = append(bad, i)
				continue
			}
			seen[edge{u, v}] = true
		}
		if len(bad) == 0 {
			var b graph.Builder
			b.Grow(m)
			for i := 0; i < m; i++ {
				b.AddEdge(stubs[2*i], stubs[2*i+1])
			}
			g, err := b.Build(n)
			if err != nil {
				panic("gen: regular: " + err.Error())
			}
			return g
		}
		// Re-pair the bad pairs' stubs together with as many random good
		// pairs' stubs, shuffled among themselves.
		pick := make(map[int]bool, 2*len(bad))
		for _, i := range bad {
			pick[i] = true
		}
		for len(pick) < 2*len(bad) && len(pick) < m {
			pick[rng.Intn(m)] = true
		}
		idx := make([]int, 0, len(pick))
		for i := range pick {
			idx = append(idx, i)
		}
		sort.Ints(idx) // map iteration order must not leak into the output
		pool := make([]int, 0, 2*len(idx))
		for _, i := range idx {
			pool = append(pool, stubs[2*i], stubs[2*i+1])
		}
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		for x, i := range idx {
			stubs[2*i], stubs[2*i+1] = pool[2*x], pool[2*x+1]
		}
	}
	panic("gen: regular: pairing model failed to converge")
}

// NoisyPlex returns a single k-plex "community" graph for tests: a clique
// on n vertices from which each vertex loses at most k-1 incident edges,
// so the whole vertex set is one k-plex (and, being edge-maximal among
// k-plexes on those vertices, a maximal one when embedded alone).
func NoisyPlex(n, k int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var b graph.Builder
	addCommunity(&b, identity(n), k-1, rng)
	g, err := b.Build(n)
	if err != nil {
		panic("gen: noisyplex: " + err.Error())
	}
	return g
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
