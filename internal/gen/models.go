package gen

// Additional generator models. The stochastic block model gives controllable
// community structure (sharper than Planted: k-plexes are not guaranteed,
// only density contrast), Watts-Strogatz gives high clustering with short
// paths (protein-interaction-like), and random regular graphs provide the
// degenerate workload where degree-based pruning is useless — a stress case
// for the pivot and pair rules.

import (
	"math/rand"

	"repro/internal/graph"
)

// SBMConfig parameterises a stochastic block model.
type SBMConfig struct {
	// BlockSizes lists the community sizes; the graph has sum(BlockSizes)
	// vertices, assigned to blocks in index order.
	BlockSizes []int
	// PIn is the within-block edge probability.
	PIn float64
	// POut is the cross-block edge probability.
	POut float64
	Seed int64
}

// SBM generates a stochastic block model graph.
func SBM(cfg SBMConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := 0
	block := make([]int, 0)
	for bi, s := range cfg.BlockSizes {
		for i := 0; i < s; i++ {
			block = append(block, bi)
		}
		n += s
	}
	var b graph.Builder
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := cfg.POut
			if block[u] == block[v] {
				p = cfg.PIn
			}
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	g, err := b.Build(n)
	if err != nil {
		panic("gen: sbm: " + err.Error())
	}
	return g
}

// WattsStrogatz returns a small-world graph: a ring lattice where every
// vertex is joined to its k nearest neighbours (k rounded down to even),
// with each edge rewired to a random endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, seed int64) *graph.Graph {
	if n < 3 {
		g, _ := new(graph.Builder).Build(n)
		return g
	}
	half := k / 2
	if half < 1 {
		half = 1
	}
	if half >= n/2 {
		half = (n - 1) / 2
	}
	rng := rand.New(rand.NewSource(seed))
	// Track the current edge set so rewiring avoids duplicates.
	type edge struct{ u, v int }
	has := make(map[edge]bool, n*half)
	norm := func(u, v int) edge {
		if u > v {
			u, v = v, u
		}
		return edge{u, v}
	}
	edges := make([]edge, 0, n*half)
	for u := 0; u < n; u++ {
		for d := 1; d <= half; d++ {
			e := norm(u, (u+d)%n)
			if !has[e] {
				has[e] = true
				edges = append(edges, e)
			}
		}
	}
	for i, e := range edges {
		if rng.Float64() >= beta {
			continue
		}
		// Rewire the far endpoint to a uniform non-neighbour of e.u.
		for attempt := 0; attempt < 16; attempt++ {
			w := rng.Intn(n)
			if w == e.u {
				continue
			}
			ne := norm(e.u, w)
			if has[ne] {
				continue
			}
			delete(has, e)
			has[ne] = true
			edges[i] = ne
			break
		}
	}
	var b graph.Builder
	b.Grow(len(edges))
	for _, e := range edges {
		b.AddEdge(e.u, e.v)
	}
	g, err := b.Build(n)
	if err != nil {
		panic("gen: ws: " + err.Error())
	}
	return g
}

// RandomRegular returns a d-regular graph on n vertices via the pairing
// model with restarts (n*d must be even; panics otherwise). For the small
// d, n used in tests and benches a valid pairing is found quickly.
func RandomRegular(n, d int, seed int64) *graph.Graph {
	if n*d%2 != 0 {
		panic("gen: regular: n*d must be even")
	}
	if d >= n {
		panic("gen: regular: need d < n")
	}
	rng := rand.New(rand.NewSource(seed))
	stubs := make([]int, 0, n*d)
	for restart := 0; ; restart++ {
		stubs = stubs[:0]
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		type edge struct{ u, v int }
		seen := make(map[edge]bool, n*d/2)
		ok := true
		var b graph.Builder
		b.Grow(n * d / 2)
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			if u > v {
				u, v = v, u
			}
			e := edge{u, v}
			if seen[e] {
				ok = false
				break
			}
			seen[e] = true
			b.AddEdge(u, v)
		}
		if !ok {
			if restart > 10000 {
				panic("gen: regular: pairing model failed to converge")
			}
			continue
		}
		g, err := b.Build(n)
		if err != nil {
			panic("gen: regular: " + err.Error())
		}
		return g
	}
}

// NoisyPlex returns a single k-plex "community" graph for tests: a clique
// on n vertices from which each vertex loses at most k-1 incident edges,
// so the whole vertex set is one k-plex (and, being edge-maximal among
// k-plexes on those vertices, a maximal one when embedded alone).
func NoisyPlex(n, k int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var b graph.Builder
	addCommunity(&b, identity(n), k-1, rng)
	g, err := b.Build(n)
	if err != nil {
		panic("gen: noisyplex: " + err.Error())
	}
	return g
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
