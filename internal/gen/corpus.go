package gen

import "repro/internal/graph"

// CorpusGraph is one named, seeded graph of the regression corpus.
type CorpusGraph struct {
	Name  string
	Build func() *graph.Graph
}

// Corpus returns the fixed set of seeded generator graphs shared by the
// golden regression tests (internal/kplex/testdata/golden) and the serving
// layer, which exposes each as the builtin graph "corpus:<name>". Entries
// are append-only: changing a name, a generator, or a seed invalidates the
// committed golden outputs, so add new entries instead of editing old ones.
//
// The mix is deliberate: planted communities guarantee large k-plexes
// (the paper's motivating workload), SBM gives density contrast without
// that guarantee, GNP exercises the bounds on a dense unstructured graph,
// Barabási-Albert and Chung-Lu cover heavy-tailed degree distributions,
// Watts-Strogatz covers high clustering, and a random regular graph is the
// degenerate case where degree-based pruning is useless.
func Corpus() []CorpusGraph {
	return []CorpusGraph{
		{"planted-a", func() *graph.Graph {
			return Planted(PlantedConfig{
				N: 120, BackgroundP: 0.02, Communities: 4, CommSize: 12,
				DropPerV: 1, Overlap: 2, Seed: 41,
			})
		}},
		{"planted-overlap", func() *graph.Graph {
			return Planted(PlantedConfig{
				N: 150, BackgroundP: 0.015, Communities: 6, CommSize: 10,
				DropPerV: 2, Overlap: 3, Seed: 42,
			})
		}},
		{"sbm-blocks", func() *graph.Graph {
			return SBM(SBMConfig{
				BlockSizes: []int{25, 30, 35}, PIn: 0.45, POut: 0.04, Seed: 43,
			})
		}},
		{"gnp-dense", func() *graph.Graph { return GNP(70, 0.22, 44) }},
		{"ba-hubs", func() *graph.Graph { return BarabasiAlbert(150, 6, 45) }},
		{"chunglu-tail", func() *graph.Graph { return ChungLu(200, 12, 2.3, 46) }},
		{"ws-ring", func() *graph.Graph { return WattsStrogatz(140, 10, 0.08, 47) }},
		{"regular-flat", func() *graph.Graph { return RandomRegular(90, 10, 48) }},
	}
}

// CorpusGraphByName returns the named corpus graph, or nil.
func CorpusGraphByName(name string) *CorpusGraph {
	for _, cg := range Corpus() {
		if cg.Name == name {
			cg := cg
			return &cg
		}
	}
	return nil
}
