package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/kplex"
	"repro/internal/obs"
)

// POST /batch: batched multi-query execution. A batch is a set of
// (k, q, mode) items against one graph; the server answers every item it
// can from the result cache and hands the rest to the engine's
// shared-traversal batch layer, so a q-sweep pays one prologue and one
// seed-space walk per compatible (k, useCTCP) group instead of one per
// item. Group prologues resolve through the same prepared cache and the
// per-item results land in the same result cache as single queries — a
// batch warms the single-query path and vice versa. The response is
// NDJSON: one line per item as its result becomes available (cached items
// first, then each traversal group's members as the group completes),
// then a summary line.

// batchItem is one query of a POST /batch request.
type batchItem struct {
	K int `json:"k"`
	Q int `json:"q"`
	// Mode is "count", "topk" or "histogram" ("stream" is not batchable).
	Mode string `json:"mode"`
	TopN int    `json:"topn,omitempty"`
}

// batchRequest is the body of POST /batch. Execution knobs apply to the
// whole batch.
type batchRequest struct {
	Graph     string      `json:"graph"`
	Items     []batchItem `json:"items"`
	Threads   int         `json:"threads,omitempty"`
	Scheduler string      `json:"scheduler,omitempty"`
}

// batchItemResponse is one per-item NDJSON line.
type batchItemResponse struct {
	Item      int           `json:"item"` // index into the request's items
	K         int           `json:"k"`
	Q         int           `json:"q"`
	Mode      string        `json:"mode"`
	Count     int64         `json:"count"`
	MaxSize   int           `json:"maxSize"`
	ElapsedMS float64       `json:"elapsedMs"`           // of the original execution
	Cached    bool          `json:"cached"`              // served from the result cache
	Shared    bool          `json:"shared"`              // duplicate of an earlier item in this batch
	Saturated bool          `json:"saturated,omitempty"` // top-k early exit: topk exact, count a lower bound
	Group     int           `json:"group"`               // shared-traversal group (-1 when cached/shared)
	TopK      [][]int       `json:"topk,omitempty"`      // mode "topk"
	Histogram map[int]int64 `json:"histogram,omitempty"` // mode "histogram" (same key as /query)
	Stats     *kplex.Stats  `json:"stats,omitempty"`     // executed items only
}

// batchSummary is the final NDJSON line.
type batchSummary struct {
	Done       bool    `json:"done"`
	Items      int     `json:"items"`
	CacheHits  int     `json:"cacheHits"`
	Shared     int     `json:"flightShared"`
	Executions int     `json:"executions"`
	Groups     int     `json:"groups"` // shared traversals actually walked
	ElapsedMS  float64 `json:"elapsedMs"`
	Error      string  `json:"error,omitempty"`
}

// maxBatchItems bounds one batch request; an open service needs a ceiling
// on per-request fan-out just as it does on k and threads.
const maxBatchItems = 256

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if len(req.Items) == 0 {
		s.fail(w, http.StatusBadRequest, "items must hold at least one query")
		return
	}
	if len(req.Items) > maxBatchItems {
		s.fail(w, http.StatusBadRequest, "too many items (max "+strconv.Itoa(maxBatchItems)+")")
		return
	}

	// Validate every item up front: a batch is all-or-nothing at the
	// request level, so a bad item must fail before any line is written.
	itemReqs := make([]queryRequest, len(req.Items))
	itemOpts := make([]kplex.Options, len(req.Items))
	for i, it := range req.Items {
		if it.Mode == "stream" {
			s.fail(w, http.StatusBadRequest, "item "+strconv.Itoa(i)+": stream mode is not batchable; use /stream per query")
			return
		}
		itemReqs[i] = queryRequest{
			Graph:     req.Graph,
			K:         it.K,
			Q:         it.Q,
			Mode:      it.Mode,
			TopN:      it.TopN,
			Threads:   req.Threads,
			Scheduler: req.Scheduler,
		}
		opts, err := s.parseOptions(&itemReqs[i])
		if err != nil {
			s.fail(w, http.StatusBadRequest, "item "+strconv.Itoa(i)+": "+err.Error())
			return
		}
		itemOpts[i] = opts
	}

	tenant := tenantOf(r)
	s.met.Batches.Add(1)
	s.met.Queries.Add(int64(len(req.Items))) // each item is one query
	s.tenantQueries.Add(tenant, int64(len(req.Items)))
	t := obs.FromContext(r.Context())
	started := time.Now()
	inf := s.inflight.Register("batch", req.Graph, 0, 0, "batch", t.ID())
	defer func() {
		inf.Done()
		s.hist.batch.ObserveSince(started)
		s.recordSlow(slowRecord{Kind: "batch", Graph: req.Graph, Items: len(req.Items), TraceID: t.ID()}, started)
	}()

	entry, err := s.reg.Acquire(req.Graph)
	if err != nil {
		s.fail(w, http.StatusNotFound, err.Error())
		return
	}
	defer s.reg.Release(entry)

	// Partition the items: result-cache hits answer immediately; the rest
	// dedupe by cache key (a duplicate joins its twin's execution exactly
	// like a singleflight-shared query) and go to the engine as one batch.
	type pending struct {
		item int // first item with this key
		dups []int
	}
	var (
		cachedLines []batchItemResponse
		keys        = make([]string, len(req.Items))
		order       []*pending // uncached unique items, submission order
		byKey       = make(map[string]*pending)
	)
	for i := range req.Items {
		keys[i] = cacheKey(entry.Digest, &itemOpts[i], &itemReqs[i])
		if val, ok := s.cache.get(keys[i]); ok {
			s.met.CacheHits.Add(1)
			cachedLines = append(cachedLines, batchLine(i, &itemReqs[i], val, true, false, -1, false))
			continue
		}
		s.met.CacheMisses.Add(1)
		if p, ok := byKey[keys[i]]; ok {
			p.dups = append(p.dups, i)
			continue
		}
		p := &pending{item: i}
		byKey[keys[i]] = p
		order = append(order, p)
	}

	start := time.Now()

	var release func()
	if len(order) > 0 {
		// One admission slot covers the whole batch: its groups run one
		// after another, so a batch occupies one enumeration's worth of
		// capacity however many items it answers.
		inf.SetStage("admission")
		admSpan := t.StartSpan("admission")
		release, err = s.admit(r.Context(), tenant)
		admSpan.EndErr(err)
		if err != nil {
			if isOverload(err) {
				s.reject429(w, err)
			} else {
				s.fail(w, http.StatusBadRequest, "client went away: "+err.Error())
			}
			return
		}
		defer release()

		// A twin request (batch or single query) may have filled the cache
		// while we waited for a slot — the same reason the single-query
		// path re-checks inside its flight. Items cached meanwhile answer
		// as hits (their in-batch duplicates with them) instead of paying
		// another walk.
		still := order[:0:0]
		for _, p := range order {
			val, ok := s.cache.get(keys[p.item])
			if !ok {
				still = append(still, p)
				continue
			}
			s.met.CacheHits.Add(1)
			cachedLines = append(cachedLines, batchLine(p.item, &itemReqs[p.item], val, true, false, -1, false))
			for _, d := range p.dups {
				s.met.CacheHits.Add(1)
				cachedLines = append(cachedLines, batchLine(d, &itemReqs[d], val, true, false, -1, false))
			}
		}
		order = still
	}
	summary := batchSummary{Items: len(req.Items), CacheHits: len(cachedLines)}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Graph-Digest", entry.Digest)
	flusher := ndjsonFlusher(w)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	for i := range cachedLines {
		enc.Encode(&cachedLines[i]) //nolint:errcheck // client disconnects cancel via r.Context()
	}
	flush()

	var runErr error
	if len(order) > 0 {
		inf.SetStage("enumerate")
		enumSpan := t.StartSpan("enumerate").Attr("mode", "batch").Attr("items", strconv.Itoa(len(order)))
		queries := make([]kplex.BatchQuery, len(order))
		for ui, p := range order {
			queries[ui] = batchQueryFor(&itemReqs[p.item], itemOpts[p.item])
		}
		// The batch is tied to the requesting client (it is watching the
		// NDJSON progress) and to the query time budget; items completed
		// before a disconnect are already cached for the next asker.
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
		defer cancel()
		groups := 0
		runner := &kplex.BatchRunner{
			Prepare: func(cell kplex.Options) (*kplex.Prepared, error) {
				groups++
				return s.prepared(entry.G, entry.Digest, &cell)
			},
			OnResult: func(ui int, br *kplex.BatchResult) {
				p := order[ui]
				val := &queryResult{
					Mode:       itemReqs[p.item].Mode,
					Count:      br.Count,
					MaxSize:    br.MaxSize,
					Elapsed:    br.Elapsed,
					Stats:      br.Stats,
					TopK:       br.TopK,
					Histogram:  br.Histogram,
					Digest:     entry.Digest,
					ComputedAt: time.Now(),
				}
				if val.Mode == "topk" && val.TopK == nil {
					val.TopK = [][]int{}
				}
				// A saturated all-top-k group reports exact TopK lists but a
				// prefix Count; the result cache is keyed as a full
				// enumeration (the single-query topk path stores the full
				// count), so a saturated result must not warm it.
				if !br.Saturated {
					s.cache.put(keys[p.item], val)
				}
				s.met.Executions.Add(1)
				summary.Executions++
				line := batchLine(p.item, &itemReqs[p.item], val, false, false, br.Group, br.Saturated)
				enc.Encode(&line) //nolint:errcheck
				for _, d := range p.dups {
					s.met.FlightShared.Add(1)
					summary.Shared++
					dup := batchLine(d, &itemReqs[d], val, false, true, br.Group, br.Saturated)
					enc.Encode(&dup) //nolint:errcheck
				}
				flush()
			},
		}
		_, runErr = runner.Run(ctx, entry.G, queries)
		summary.Groups = groups
		enumSpan.Attr("groups", strconv.Itoa(groups)).EndErr(runErr)
	}

	summary.Done = runErr == nil
	if runErr != nil {
		summary.Error = runErr.Error()
		s.met.Errors.Add(1)
	}
	summary.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	enc.Encode(&summary) //nolint:errcheck
	flush()
}

// batchLine renders one item's NDJSON line from a (possibly cached)
// result.
func batchLine(item int, req *queryRequest, val *queryResult, cached, shared bool, group int, saturated bool) batchItemResponse {
	line := batchItemResponse{
		Item:      item,
		K:         req.K,
		Q:         req.Q,
		Mode:      req.Mode,
		Count:     val.Count,
		MaxSize:   val.MaxSize,
		ElapsedMS: float64(val.Elapsed) / float64(time.Millisecond),
		Cached:    cached,
		Shared:    shared,
		Saturated: saturated,
		Group:     group,
		TopK:      val.TopK,
		Histogram: val.Histogram,
	}
	if !cached && !shared {
		stats := val.Stats
		line.Stats = &stats
	}
	return line
}

// batchQueryFor translates one validated item into an engine batch query.
func batchQueryFor(req *queryRequest, opts kplex.Options) kplex.BatchQuery {
	bq := kplex.BatchQuery{Opts: opts}
	switch req.Mode {
	case "topk":
		bq.Mode = kplex.BatchTopK
		bq.TopN = req.TopN
	case "histogram":
		bq.Mode = kplex.BatchHistogram
	default:
		bq.Mode = kplex.BatchCount
	}
	return bq
}
