package server

// Integration tests for the graph store and catalog in the serving layer:
// catalog warm starts (a restarted kplexd answers from persisted
// prologues without re-preparing) and registry eviction safety for
// mmap-backed graphs (eviction munmaps, but never under an in-flight
// query). CI runs this package under -race, which is what gives the
// churn test its teeth.

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/store"
)

// writeCorpusStore materialises a corpus graph as a .kpg file and returns
// the in-memory original for comparison.
func writeCorpusStore(t *testing.T, dir, file, corpusName string, blockVerts int) *graph.Graph {
	t.Helper()
	g := gen.CorpusGraphByName(corpusName).Build()
	if err := store.WriteGraphFile(filepath.Join(dir, file), g, blockVerts); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCatalogServesStoreBackedQueries pins the basic serving path: a
// catalog-registered store file answers queries with the same count and
// the same digest as the in-memory corpus graph it was written from, and
// the served digest comes from the file header, not a rehash.
func TestCatalogServesStoreBackedQueries(t *testing.T) {
	dir := t.TempDir()
	g := writeCorpusStore(t, dir, "planted-a.kpg", "planted-a", 64)
	_, hs := newTestServer(t, Config{CatalogDir: dir})

	code, mm := postQuery(t, hs.URL, `{"graph":"planted-a","k":2,"q":6,"mode":"count"}`)
	if code != 200 {
		t.Fatalf("store-backed query: status %d", code)
	}
	code, ref := postQuery(t, hs.URL, `{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}`)
	if code != 200 {
		t.Fatalf("corpus query: status %d", code)
	}
	if mm.Count != ref.Count {
		t.Fatalf("store-backed count %d != in-memory count %d", mm.Count, ref.Count)
	}
	if mm.Digest != ref.Digest || mm.Digest != graph.DigestHexOf(g) {
		t.Fatalf("digest mismatch: store %s, corpus %s, source %s",
			mm.Digest, ref.Digest, graph.DigestHexOf(g))
	}
}

// TestCatalogWarmStart is the restart contract: a second kplexd over the
// same catalog directory serves the same cell without re-running Prepare —
// the persisted prologue is loaded (prepared_warm_loads), not recomputed
// (prepared_misses stays 0) — and returns the identical count.
func TestCatalogWarmStart(t *testing.T) {
	dir := t.TempDir()
	writeCorpusStore(t, dir, "g.kpg", "planted-a", 0)

	s1, hs1 := newTestServer(t, Config{CatalogDir: dir})
	code, first := postQuery(t, hs1.URL, `{"graph":"g","k":2,"q":6,"mode":"count"}`)
	if code != 200 {
		t.Fatalf("cold query: status %d", code)
	}
	m := s1.Metrics()
	if m["prepared_misses"] != 1 || m["prepared_persists"] != 1 {
		t.Fatalf("cold server: misses=%d persists=%d, want 1/1",
			m["prepared_misses"], m["prepared_persists"])
	}
	hs1.Close()
	s1.Close()

	s2, hs2 := newTestServer(t, Config{CatalogDir: dir})
	code, again := postQuery(t, hs2.URL, `{"graph":"g","k":2,"q":6,"mode":"count"}`)
	if code != 200 {
		t.Fatalf("warm query: status %d", code)
	}
	if again.Count != first.Count || again.Digest != first.Digest {
		t.Fatalf("warm result (%d, %s) != cold result (%d, %s)",
			again.Count, again.Digest, first.Count, first.Digest)
	}
	m = s2.Metrics()
	if m["prepared_warm_loads"] != 1 {
		t.Fatalf("prepared_warm_loads = %d, want 1", m["prepared_warm_loads"])
	}
	if m["prepared_misses"] != 0 {
		t.Fatalf("prepared_misses = %d after warm start, want 0 (the prologue must come from disk)", m["prepared_misses"])
	}

	// A cell that was never persisted still computes (and persists) fresh.
	code, _ = postQuery(t, hs2.URL, `{"graph":"g","k":3,"q":8,"mode":"count"}`)
	if code != 200 {
		t.Fatalf("new cell: status %d", code)
	}
	m = s2.Metrics()
	if m["prepared_misses"] != 1 || m["prepared_persists"] != 1 {
		t.Fatalf("new cell: misses=%d persists=%d, want 1/1",
			m["prepared_misses"], m["prepared_persists"])
	}
}

// TestRegistryEvictionMunmapGuard churns a cap-1 registry with two
// mmap-backed graphs while worker goroutines hold entries and walk the
// adjacency through the mapping. Every eviction munmaps the victim, so if
// the refs==0 guard were wrong a scan would fault on an unmapped page (or
// -race would flag the close). The test asserts the data read under churn
// is right: every scan of either graph must see that graph's exact edge
// count.
func TestRegistryEvictionMunmapGuard(t *testing.T) {
	dir := t.TempDir()
	graphs := map[string]*graph.Graph{
		"a.kpg": writeCorpusStore(t, dir, "a.kpg", "planted-a", 16),
		"b.kpg": writeCorpusStore(t, dir, "b.kpg", "gnp-dense", 16),
	}
	reg := NewRegistry(1, NewLoader(dir, nil))

	const workers, iters = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"a.kpg", "b.kpg"}
			for i := 0; i < iters; i++ {
				name := names[(w+i)%2]
				e, err := reg.Acquire(name)
				if err != nil {
					errs <- err
					return
				}
				// Full adjacency walk through the mapping while other
				// workers acquire the sibling graph and force evictions.
				sum := 0
				for v := 0; v < e.G.N(); v++ {
					sum += len(e.G.Neighbors(v))
				}
				if want := 2 * graphs[name].M(); sum != want {
					errs <- fmt.Errorf("%s: scanned %d directed edges, want %d", name, sum, want)
					reg.Release(e)
					return
				}
				reg.Release(e)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := reg.Len(); n > 1 {
		t.Fatalf("registry over cap after churn: %d resident", n)
	}
}

// TestRegistryEvictClosesStoreReader pins that explicit eviction of an
// idle store-backed entry actually releases the mapping: the reader
// panics on use after Evict, which is the documented use-after-close
// behaviour of store.Reader.
func TestRegistryEvictClosesStoreReader(t *testing.T) {
	dir := t.TempDir()
	writeCorpusStore(t, dir, "g.kpg", "planted-a", 0)
	reg := NewRegistry(4, NewLoader(dir, nil))
	e, err := reg.Acquire("g.kpg")
	if err != nil {
		t.Fatal(err)
	}
	g := e.G
	reg.Release(e)
	if err := reg.Evict("g.kpg"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("evicted store reader still readable: mapping was not released")
		}
	}()
	g.Neighbors(0)
}
