package server

// End-to-end tests for the /cluster surface: real kplexd workers behind
// real HTTP listeners, driven by a real coordinator, with the distributed
// answer pinned against an in-process single-node reference.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/kplex"
)

// clusterRef computes the single-node ground truth for a corpus cell.
func clusterRef(t *testing.T, name string, k, q, topn int) *jobs.Aggregate {
	t.Helper()
	cg := gen.CorpusGraphByName(strings.TrimPrefix(name, "corpus:"))
	if cg == nil {
		t.Fatalf("unknown corpus graph %q", name)
	}
	agg := jobs.NewAggregate(topn)
	opts := kplex.NewOptions(k, q)
	opts.OnPlex = func(p []int) { agg.AddPlex(p) }
	if _, err := kplex.Run(context.Background(), cg.Build(), opts); err != nil {
		t.Fatal(err)
	}
	return agg
}

func assertClusterResult(t *testing.T, res *jobs.Result, ref *jobs.Aggregate) {
	t.Helper()
	if res.Count != ref.Count || res.MaxSize != ref.MaxSize {
		t.Errorf("result count=%d maxSize=%d, want %d/%d", res.Count, res.MaxSize, ref.Count, ref.MaxSize)
	}
	if res.PlexDigest != ref.PlexDigest() {
		t.Errorf("plex digest = %s, want %s (distributed result set differs)", res.PlexDigest, ref.PlexDigest())
	}
}

// waitClusterJob polls the coordinator until the job is terminal.
func waitClusterJob(t *testing.T, base, id string) cluster.View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var v cluster.View
		if code := getJSON(t, base+"/cluster/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("GET /cluster/jobs/%s: status %d", id, code)
		}
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s (%d/%d ranges)", id, v.State, v.RangesDone, len(v.Ranges))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestClusterCoordinatorDisabled(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, body := postJSON(t, hs.URL+"/cluster/jobs", `{"graph":"corpus:planted-a","k":2,"q":6}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit without -coordinator: status %d (%s)", resp.StatusCode, body)
	}
	if code := getJSON(t, hs.URL+"/cluster/workers", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("GET /cluster/workers without -coordinator: status %d", code)
	}
	// The worker surface stays up: every kplexd can execute leases.
	resp, _ = postJSON(t, hs.URL+"/cluster/run", `{"graph":"corpus:planted-a"}`)
	if resp.StatusCode != http.StatusBadRequest { // k missing, not 503
		t.Fatalf("POST /cluster/run on a plain worker: status %d, want 400", resp.StatusCode)
	}
}

func TestClusterRunValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"graph":"corpus:planted-a","k":0,"q":6,"totalSeeds":1,"hi":1}`, http.StatusBadRequest},
		{`{"graph":"corpus:nope","k":2,"q":6,"totalSeeds":1,"hi":1}`, http.StatusNotFound},
		// Wrong digest: the handshake refuses before any enumeration.
		{`{"graph":"corpus:planted-a","digest":"deadbeef","k":2,"q":6,"totalSeeds":1,"hi":1}`, http.StatusConflict},
		// Wrong seed-space size: coordinator/worker skew.
		{`{"graph":"corpus:planted-a","k":2,"q":6,"totalSeeds":1,"lo":0,"hi":1}`, http.StatusConflict},
	} {
		resp, body := postJSON(t, hs.URL+"/cluster/run", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("POST /cluster/run %s: status %d (%s), want %d", tc.body, resp.StatusCode, body, tc.want)
		}
	}
}

// TestClusterRunStreamsRange drives the worker endpoint directly with a
// correct handshake and checks the streamed aggregate for a full range.
func TestClusterRunStreamsRange(t *testing.T) {
	const name, k, q, topn = "planted-a", 2, 6, 5
	ref := clusterRef(t, name, k, q, topn)
	g := gen.CorpusGraphByName(name).Build()
	req := cluster.RangeRequest{
		Graph: "corpus:" + name, Digest: graph.DigestHex(g),
		K: k, Q: q, TopN: topn,
	}
	opts, err := cluster.BuildOptions(&req, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := kplex.Prepare(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	req.TotalSeeds = p.SeedSpace()
	req.Hi = req.TotalSeeds

	_, hs := newTestServer(t, Config{})
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/cluster/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var final *cluster.RangeLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		var rl cluster.RangeLine
		if err := json.Unmarshal(sc.Bytes(), &rl); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if rl.Error != "" {
			t.Fatalf("in-band error: %s", rl.Error)
		}
		if rl.Done {
			final = &rl
			break
		}
	}
	if final == nil {
		t.Fatalf("stream ended without a done line (scan err %v)", sc.Err())
	}
	if final.Agg == nil || final.Agg.Unseal() != nil {
		t.Fatal("done line has no usable aggregate")
	}
	if final.Agg.Count != ref.Count || final.Agg.PlexDigest() != ref.PlexDigest() {
		t.Errorf("range aggregate count=%d digest=%s, want %d/%s",
			final.Agg.Count, final.Agg.PlexDigest(), ref.Count, ref.PlexDigest())
	}
	if got := stats(t, hs.URL)["range_runs"]; got != 1 {
		t.Errorf("range_runs = %d, want 1", got)
	}
}

// TestDistributedJobEndToEnd runs a distributed job across two real
// worker kplexds and checks the merged result, the counters, and the
// Prometheus rendering on the coordinator.
func TestDistributedJobEndToEnd(t *testing.T) {
	const name, k, q, topn, nRanges = "corpus:planted-a", 2, 6, 5, 4
	ref := clusterRef(t, name, k, q, topn)

	_, w1 := newTestServer(t, Config{})
	_, w2 := newTestServer(t, Config{})
	_, coord := newTestServer(t, Config{
		ClusterDir:     filepath.Join(t.TempDir(), "cluster"),
		ClusterWorkers: []string{w1.URL, w2.URL},
	})

	resp, body := postJSON(t, coord.URL+"/cluster/jobs",
		fmt.Sprintf(`{"graph":%q,"k":%d,"q":%d,"topn":%d,"ranges":%d}`, name, k, q, topn, nRanges))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", resp.StatusCode, body)
	}
	var man cluster.Manifest
	if err := json.Unmarshal(body, &man); err != nil {
		t.Fatal(err)
	}

	v := waitClusterJob(t, coord.URL, man.ID)
	if v.State != jobs.StateDone {
		t.Fatalf("job state = %s (error %q), want done", v.State, v.Error)
	}
	var res jobs.Result
	if code := getJSON(t, coord.URL+"/cluster/jobs/"+man.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	assertClusterResult(t, &res, ref)

	// The interactive path on a worker answers the same cell identically.
	code, q1 := postQuery(t, w1.URL, fmt.Sprintf(`{"graph":%q,"k":%d,"q":%d,"mode":"count"}`, name, k, q))
	if code != http.StatusOK || q1.Count != res.Count {
		t.Errorf("single-node /query count = %d (status %d), distributed = %d", q1.Count, code, res.Count)
	}

	cs := stats(t, coord.URL)
	if cs["cluster_jobs_submitted"] != 1 || cs["cluster_jobs_completed"] != 1 {
		t.Errorf("coordinator counters: submitted=%d completed=%d, want 1/1",
			cs["cluster_jobs_submitted"], cs["cluster_jobs_completed"])
	}
	if cs["cluster_ranges_done"] != nRanges {
		t.Errorf("cluster_ranges_done = %d, want %d", cs["cluster_ranges_done"], nRanges)
	}
	if got := stats(t, w1.URL)["range_runs"] + stats(t, w2.URL)["range_runs"]; got != nRanges {
		t.Errorf("workers ran %d ranges, want %d", got, nRanges)
	}

	mresp, err := http.Get(coord.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(mresp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	metrics := sb.String()
	for _, want := range []string{
		"kplexd_cluster_jobs_submitted_total 1",
		"kplexd_cluster_ranges_done_total 4",
		"kplexd_cluster_jobs_running 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestClusterWorkerRegistration starts a coordinator with no workers: the
// job must sit leaseless until a worker registers at runtime, then finish.
func TestClusterWorkerRegistration(t *testing.T) {
	const name, k, q, topn = "corpus:planted-a", 2, 6, 5
	ref := clusterRef(t, name, k, q, topn)

	_, worker := newTestServer(t, Config{})
	_, coord := newTestServer(t, Config{ClusterDir: filepath.Join(t.TempDir(), "cluster")})

	resp, body := postJSON(t, coord.URL+"/cluster/jobs",
		fmt.Sprintf(`{"graph":%q,"k":%d,"q":%d,"topn":%d,"ranges":2}`, name, k, q, topn))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", resp.StatusCode, body)
	}
	var man cluster.Manifest
	if err := json.Unmarshal(body, &man); err != nil {
		t.Fatal(err)
	}

	// No workers: the job runs but cannot lease anything.
	time.Sleep(150 * time.Millisecond)
	var v cluster.View
	getJSON(t, coord.URL+"/cluster/jobs/"+man.ID, &v)
	if v.State.Terminal() {
		t.Fatalf("job reached %s with no workers registered", v.State)
	}

	resp, body = postJSON(t, coord.URL+"/cluster/workers", fmt.Sprintf(`{"url":%q}`, worker.URL))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register worker: status %d (%s)", resp.StatusCode, body)
	}
	v = waitClusterJob(t, coord.URL, man.ID)
	if v.State != jobs.StateDone {
		t.Fatalf("job state = %s (error %q), want done", v.State, v.Error)
	}
	var res jobs.Result
	if code := getJSON(t, coord.URL+"/cluster/jobs/"+man.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	assertClusterResult(t, &res, ref)

	var workers []cluster.WorkerView
	if code := getJSON(t, coord.URL+"/cluster/workers", &workers); code != http.StatusOK {
		t.Fatalf("list workers: status %d", code)
	}
	if len(workers) != 1 || workers[0].RangesDone < 2 {
		t.Errorf("workers = %+v, want the registered worker with >= 2 ranges done", workers)
	}
	// Registration is idempotent.
	resp, _ = postJSON(t, coord.URL+"/cluster/workers", fmt.Sprintf(`{"url":%q}`, worker.URL))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-register: status %d", resp.StatusCode)
	}
	getJSON(t, coord.URL+"/cluster/workers", &workers)
	if len(workers) != 1 {
		t.Errorf("re-registration duplicated the worker: %d entries", len(workers))
	}
}

// TestClusterDigestMismatchFailsJob gives coordinator and worker two
// different graphs under the same name: every lease must be refused by the
// digest handshake and the job must fail mentioning it — never merge.
func TestClusterDigestMismatchFailsJob(t *testing.T) {
	coordDir, workerDir := t.TempDir(), t.TempDir()
	if err := graph.WriteFormatFile(filepath.Join(coordDir, "g.bin"), gen.GNP(40, 0.3, 1), graph.FormatBinary); err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteFormatFile(filepath.Join(workerDir, "g.bin"), gen.GNP(40, 0.3, 2), graph.FormatBinary); err != nil {
		t.Fatal(err)
	}

	_, worker := newTestServer(t, Config{DataDir: workerDir})
	_, coord := newTestServer(t, Config{
		DataDir:                 coordDir,
		ClusterDir:              filepath.Join(t.TempDir(), "cluster"),
		ClusterWorkers:          []string{worker.URL},
		ClusterMaxRangeAttempts: 2,
	})

	resp, body := postJSON(t, coord.URL+"/cluster/jobs", `{"graph":"g.bin","k":2,"q":5,"ranges":2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", resp.StatusCode, body)
	}
	var man cluster.Manifest
	if err := json.Unmarshal(body, &man); err != nil {
		t.Fatal(err)
	}
	v := waitClusterJob(t, coord.URL, man.ID)
	if v.State != jobs.StateFailed {
		t.Fatalf("job state = %s, want failed", v.State)
	}
	if !strings.Contains(v.Error, "digest mismatch") {
		t.Errorf("failure error %q does not mention the digest handshake", v.Error)
	}
	if code := getJSON(t, coord.URL+"/cluster/jobs/"+man.ID+"/result", nil); code == http.StatusOK {
		t.Error("failed job served a result")
	}
}
