package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/jobs"
)

// The /jobs endpoints: the durable async counterpart of /query. A
// submitted job survives restarts — progress is checkpointed at seed
// granularity under Config.JobsDir and an interrupted job resumes from its
// last checkpoint when the server comes back.
//
//	POST   /jobs              submit  {"graph","k","q",...}  -> 202 + manifest
//	GET    /jobs              list all jobs
//	GET    /jobs/{id}         manifest + live progress
//	GET    /jobs/{id}/events  NDJSON progress feed until terminal
//	GET    /jobs/{id}/result  completed job's result (409 while active)
//	POST   /jobs/{id}/cancel  cancel an active job (409 if terminal)
//	DELETE /jobs/{id}         cancel an active job / delete a terminal one

func (s *Server) jobsRoutes() {
	if s.jobs == nil {
		disabled := func(w http.ResponseWriter, _ *http.Request) {
			s.fail(w, http.StatusServiceUnavailable, "job subsystem disabled: start kplexd with -jobs <dir>")
		}
		s.mux.HandleFunc("/jobs", disabled)
		s.mux.HandleFunc("/jobs/", disabled)
		return
	}
	s.mux.HandleFunc("POST /jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancelJob)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleDeleteJob)
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
		s.fail(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	// The tenant governs the job's place in the weighted-fair queue and its
	// admission identity; body value and header are both accepted, sanitized
	// the same way as interactive requests.
	if spec.Tenant != "" {
		spec.Tenant = sanitizeTenant(spec.Tenant)
	} else {
		spec.Tenant = tenantOf(r)
	}
	// The service-level ceilings that protect the interactive path protect
	// the background path too.
	if spec.K < 1 || spec.K > s.cfg.MaxK {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("k must be in [1, %d], got %d", s.cfg.MaxK, spec.K))
		return
	}
	if spec.Threads < 0 || spec.Threads > s.cfg.MaxThreads {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("threads must be in [0, %d], got %d", s.cfg.MaxThreads, spec.Threads))
		return
	}
	if spec.TopN < 0 || spec.TopN > s.cfg.MaxTopN {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("topn must be in [0, %d], got %d", s.cfg.MaxTopN, spec.TopN))
		return
	}
	// Resolve the graph eagerly so an unknown name is a 404 at submit time
	// instead of a failed job minutes later.
	if _, _, release, err := s.jobGraph(spec.Graph); err != nil {
		s.fail(w, http.StatusNotFound, err.Error())
		return
	} else {
		release()
	}
	man, err := s.jobs.Submit(spec)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, man)
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.List())
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	v, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		s.failJob(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.jobs.Result(r.PathValue("id"))
	if err != nil {
		s.failJob(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleCancelJob stops an active job and nothing else — unlike DELETE it
// can never destroy a terminal job's persisted result, so clients can use
// it without first checking the state.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.jobs.Cancel(id); err != nil {
		s.failJob(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"cancelled": id})
}

func (s *Server) handleDeleteJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// One verb, two phases: an active job is cancelled; a terminal job is
	// removed along with its directory. Two DELETEs purge an active job.
	if err := s.jobs.Cancel(id); err == nil {
		writeJSON(w, http.StatusOK, map[string]string{"cancelled": id})
		return
	} else if !errors.Is(err, jobs.ErrNotActive) {
		s.failJob(w, err)
		return
	}
	if err := s.jobs.Delete(id); err != nil {
		s.failJob(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// handleJobEvents streams NDJSON progress updates until the job reaches a
// terminal state or the client disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	ch, stop, err := s.jobs.Subscribe(r.PathValue("id"))
	if err != nil {
		s.failJob(w, err)
		return
	}
	defer stop()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher := ndjsonFlusher(w)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case p, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(p); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-time.After(15 * time.Second):
			// Keepalive so idle feeds survive proxies; an empty object is
			// ignored by clients decoding Progress lines.
			fmt.Fprintln(w, "{}")
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

// failJob maps the job manager's sentinel errors onto HTTP statuses.
func (s *Server) failJob(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		s.fail(w, http.StatusNotFound, err.Error())
	case errors.Is(err, jobs.ErrNotDone), errors.Is(err, jobs.ErrActive), errors.Is(err, jobs.ErrNotActive):
		s.fail(w, http.StatusConflict, err.Error())
	default:
		s.fail(w, http.StatusInternalServerError, err.Error())
	}
}
