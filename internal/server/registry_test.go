package server

// Regression tests for the registry's error paths: a failed or panicking
// load must clear the in-flight marker (or every later Acquire of that
// name wedges in wg.Wait forever), and the refcount must gate Evict.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestRegistryLoaderErrorAllowsRetry(t *testing.T) {
	var calls atomic.Int64
	r := NewRegistry(2, func(string) (graph.CSR, error) {
		if calls.Add(1) == 1 {
			return nil, errors.New("transient read failure")
		}
		return gen.GNP(20, 0.3, 1), nil
	})
	if _, err := r.Acquire("g"); err == nil {
		t.Fatal("first acquire did not surface the loader error")
	}
	// The failed load must not leave a marker behind: the retry loads.
	e, err := r.Acquire("g")
	if err != nil {
		t.Fatalf("acquire after failed load: %v", err)
	}
	r.Release(e)
	if got := calls.Load(); got != 2 {
		t.Errorf("loader ran %d times, want 2", got)
	}
}

func TestRegistryPanickingLoaderDoesNotWedge(t *testing.T) {
	var calls atomic.Int64
	r := NewRegistry(2, func(string) (graph.CSR, error) {
		if calls.Add(1) == 1 {
			panic("parser bug on corrupt file")
		}
		return gen.GNP(20, 0.3, 1), nil
	})
	// net/http recovers handler panics and keeps serving; simulate that.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("loader panic did not propagate")
			}
		}()
		r.Acquire("g") //nolint:errcheck
	}()

	done := make(chan error, 1)
	go func() {
		_, err := r.Acquire("g")
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("acquire after panicked load: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("acquire wedged behind the panicked load's in-flight marker")
	}
}

func TestRegistryConcurrentAcquireSingleLoad(t *testing.T) {
	var loads atomic.Int64
	r := NewRegistry(4, func(string) (graph.CSR, error) {
		loads.Add(1)
		time.Sleep(50 * time.Millisecond) // hold the herd on the marker
		return gen.GNP(20, 0.3, 1), nil
	})
	const herd = 16
	entries := make(chan *GraphEntry, herd)
	errs := make(chan error, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, err := r.Acquire("g")
			if err != nil {
				errs <- err
				return
			}
			entries <- e
		}()
	}
	wg.Wait()
	close(errs)
	close(entries)
	for err := range errs {
		t.Fatal(err)
	}
	if got := loads.Load(); got != 1 {
		t.Errorf("loader ran %d times for %d concurrent acquires, want 1", got, herd)
	}
	for e := range entries {
		r.Release(e)
	}
	if err := r.Evict("g"); err != nil {
		t.Errorf("evict after all releases: %v", err)
	}
}

func TestRegistryEvictRespectsRefcount(t *testing.T) {
	r := NewRegistry(2, func(string) (graph.CSR, error) {
		return gen.GNP(20, 0.3, 1), nil
	})
	e, err := r.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Evict("g"); !errors.Is(err, ErrInUse) {
		t.Errorf("evict of a pinned graph = %v, want ErrInUse", err)
	}
	r.Release(e)
	if err := r.Evict("g"); err != nil {
		t.Errorf("evict after release: %v", err)
	}
	if err := r.Evict("g"); !errors.Is(err, ErrNotResident) {
		t.Errorf("second evict = %v, want ErrNotResident", err)
	}
}
