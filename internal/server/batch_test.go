package server

// In-process integration tests for POST /batch: the caching invariant
// extended to batches (every batch item is one query, answered by exactly
// one of cache hit / shared duplicate / execution), the per-item NDJSON
// progress protocol, and the differential guarantee that a batch warms
// the single-query result and prepared caches (and vice versa).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// batchLineJSON mirrors batchItemResponse/batchSummary loosely: item lines
// carry "item", the summary carries "done".
type batchLineJSON struct {
	Item      *int             `json:"item"`
	K         int              `json:"k"`
	Q         int              `json:"q"`
	Mode      string           `json:"mode"`
	Count     int64            `json:"count"`
	MaxSize   int              `json:"maxSize"`
	Cached    bool             `json:"cached"`
	Shared    bool             `json:"shared"`
	Saturated bool             `json:"saturated"`
	Group     int              `json:"group"`
	TopK      [][]int          `json:"topk"`
	Histogram map[string]int64 `json:"histogram"`

	Done       *bool  `json:"done"`
	Items      int    `json:"items"`
	CacheHits  int    `json:"cacheHits"`
	SharedN    int    `json:"flightShared"`
	Executions int    `json:"executions"`
	Groups     int    `json:"groups"`
	Error      string `json:"error"`
}

// postBatch sends the body to POST /batch and returns the per-item lines
// (keyed by item index) and the summary line.
func postBatch(t *testing.T, url, body string) (map[int]batchLineJSON, batchLineJSON) {
	t.Helper()
	resp, err := http.Post(url+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /batch: status %d", resp.StatusCode)
	}
	items := make(map[int]batchLineJSON)
	var summary batchLineJSON
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if sawSummary {
			t.Fatalf("line after the summary: %s", sc.Text())
		}
		var line batchLineJSON
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Item != nil:
			if _, dup := items[*line.Item]; dup {
				t.Fatalf("item %d reported twice", *line.Item)
			}
			items[*line.Item] = line
		case line.Done != nil:
			summary = line
			sawSummary = true
		default:
			t.Fatalf("unclassifiable line: %s", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSummary {
		t.Fatal("no summary line")
	}
	return items, summary
}

// TestBatchEndToEnd answers a mixed sweep (two k groups, duplicate items,
// all three modes) and checks every item against the committed goldens,
// the NDJSON protocol, and the per-member caching invariant.
func TestBatchEndToEnd(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	g26 := readGolden(t, "planted-a", 2, 6)
	g38 := readGolden(t, "planted-a", 3, 8)

	body := `{"graph":"corpus:planted-a","items":[
		{"k":2,"q":6,"mode":"count"},
		{"k":3,"q":8,"mode":"count"},
		{"k":2,"q":6,"mode":"count"},
		{"k":2,"q":6,"mode":"topk","topn":3},
		{"k":2,"q":8,"mode":"histogram"}
	]}`
	items, summary := postBatch(t, hs.URL, body)
	if len(items) != 5 {
		t.Fatalf("got %d item lines, want 5", len(items))
	}
	if done := summary.Done; done == nil || !*done {
		t.Fatalf("summary not done: %+v", summary)
	}
	if summary.Items != 5 || summary.CacheHits != 0 || summary.Executions != 4 {
		t.Errorf("summary %+v: want items=5 cacheHits=0 executions=4", summary)
	}

	if got := items[0]; got.Count != g26.Count || got.MaxSize != g26.MaxSize || got.Cached || got.Shared {
		t.Errorf("item 0: %+v, golden %+v", got, g26)
	}
	if got := items[1]; got.Count != g38.Count || got.MaxSize != g38.MaxSize {
		t.Errorf("item 1: %+v, golden %+v", got, g38)
	}
	if got := items[2]; !got.Shared || got.Count != g26.Count {
		t.Errorf("duplicate item 2 not marked shared: %+v", got)
	}
	if got := items[3]; len(got.TopK) == 0 || len(got.TopK[0]) != g26.MaxSize {
		t.Errorf("topk item 3: %+v, want leading plex of size %d", got, g26.MaxSize)
	}
	var histSum int64
	for _, c := range items[4].Histogram {
		histSum += c
	}
	if items[4].Count != histSum {
		t.Errorf("histogram item 4 sums to %d, count %d", histSum, items[4].Count)
	}

	// Equal-k items shared one traversal; the k=3 item walked its own.
	if items[0].Group != items[3].Group || items[0].Group == items[1].Group {
		t.Errorf("traversal groups: %d %d %d (want 0/3 equal, 1 distinct)",
			items[0].Group, items[1].Group, items[3].Group)
	}
	if summary.Groups != 2 {
		t.Errorf("summary groups = %d, want 2", summary.Groups)
	}

	// The caching invariant, counted per batch member.
	m := stats(t, hs.URL)
	if m["queries"] != 5 || m["batches"] != 1 {
		t.Errorf("queries=%d batches=%d, want 5 and 1", m["queries"], m["batches"])
	}
	if got := m["cache_hits"] + m["flight_shared"] + m["executions"]; got != m["queries"] {
		t.Errorf("cache_hits(%d) + flight_shared(%d) + executions(%d) = %d, want queries=%d",
			m["cache_hits"], m["flight_shared"], m["executions"], got, m["queries"])
	}
	if m["executions"] != 4 || m["flight_shared"] != 1 {
		t.Errorf("executions=%d flight_shared=%d, want 4 and 1", m["executions"], m["flight_shared"])
	}
	// Two groups were prepared, neither from the prepared cache.
	if m["prepared_misses"] != 2 || m["prepared_hits"] != 0 {
		t.Errorf("prepared_misses=%d prepared_hits=%d, want 2 and 0", m["prepared_misses"], m["prepared_hits"])
	}
}

// TestBatchWarmsSingleQueryCaches pins the differential caching
// guarantee in both directions: a batch fills the single-query result
// cache (an identical later /query is a pure cache hit) and reuses
// results /query already cached (the batch item reports cached).
func TestBatchWarmsSingleQueryCaches(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	// Batch first: its items must warm the single-query path.
	body := `{"graph":"corpus:sbm-blocks","items":[
		{"k":2,"q":6,"mode":"count"},
		{"k":2,"q":8,"mode":"count"}
	]}`
	items, _ := postBatch(t, hs.URL, body)
	if items[0].Cached || items[1].Cached {
		t.Fatalf("cold batch reported cached items: %+v", items)
	}
	code, resp := postQuery(t, hs.URL, `{"graph":"corpus:sbm-blocks","k":2,"q":6,"mode":"count"}`)
	if code != http.StatusOK || !resp.Cached {
		t.Errorf("single query after batch: status %d cached=%v, want a cache hit", code, resp.Cached)
	}
	if resp.Count != items[0].Count {
		t.Errorf("cached single-query count %d, batch reported %d", resp.Count, items[0].Count)
	}
	m := stats(t, hs.URL)
	if m["executions"] != 2 {
		t.Errorf("executions = %d, want 2 (the single query must not re-run)", m["executions"])
	}
	// The single query's (k, q) cell equals the batch group's loosest cell,
	// so even its prologue would have been a prepared-cache hit.
	if m["prepared_misses"] != 1 {
		t.Errorf("prepared_misses = %d, want 1 (one shared group prologue)", m["prepared_misses"])
	}

	// Converse direction: a fresh cell cached by /query shows up as a
	// cache hit inside a later batch.
	code, first := postQuery(t, hs.URL, `{"graph":"corpus:sbm-blocks","k":3,"q":8,"mode":"count"}`)
	if code != http.StatusOK {
		t.Fatalf("seed query: status %d", code)
	}
	items, summary := postBatch(t, hs.URL, `{"graph":"corpus:sbm-blocks","items":[
		{"k":3,"q":8,"mode":"count"},
		{"k":3,"q":10,"mode":"count"}
	]}`)
	if !items[0].Cached || items[0].Count != first.Count {
		t.Errorf("batch item 0 should be served from the /query-filled cache: %+v", items[0])
	}
	if items[1].Cached {
		t.Errorf("batch item 1 reported cached on a cold cell")
	}
	if summary.CacheHits != 1 || summary.Executions != 1 {
		t.Errorf("summary %+v: want cacheHits=1 executions=1", summary)
	}
	m = stats(t, hs.URL)
	if got := m["cache_hits"] + m["flight_shared"] + m["executions"]; got != m["queries"] {
		t.Errorf("invariant broken: %d != queries %d", got, m["queries"])
	}
}

// TestBatchTwinRequestsShareCache fires two identical batches at a
// capacity-1 server: whichever blocks in admission must, on waking,
// re-check the result cache its twin filled and answer every item as a
// hit instead of re-walking — so the pair costs exactly one execution per
// unique item.
func TestBatchTwinRequestsShareCache(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxConcurrent: 1})
	body := `{"graph":"corpus:ba-hubs","items":[{"k":2,"q":6,"mode":"count"},{"k":2,"q":8,"mode":"count"}]}`
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, summary := postBatch(t, hs.URL, body)
			if done := summary.Done; done == nil || !*done {
				t.Errorf("twin batch not done: %+v", summary)
			}
		}()
	}
	wg.Wait()
	m := stats(t, hs.URL)
	if m["executions"] != 2 || m["cache_hits"] != 2 {
		t.Errorf("executions=%d cache_hits=%d, want 2 and 2 (the blocked twin must reuse the cache)",
			m["executions"], m["cache_hits"])
	}
	if got := m["cache_hits"] + m["flight_shared"] + m["executions"]; got != m["queries"] {
		t.Errorf("invariant broken: %d != queries %d", got, m["queries"])
	}
}

// TestBatchSaturatedTopKNotCached pins the cache-consistency rule for the
// engine's top-k saturation early exit: an all-top-k batch group that
// stops its walk early reports an exact top-k list but a prefix count, so
// its results must NOT warm the single-query result cache — a later
// /query for the same cell must run the full enumeration and report the
// full count.
func TestBatchSaturatedTopKNotCached(t *testing.T) {
	// A 20-clique over a sparse ring: the (q-k)-core cut leaves exactly
	// the clique's seeds, and with threads=1 the walk deterministically
	// saturates after the unique maximal 2-plex is found.
	dir := t.TempDir()
	var sb strings.Builder
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			fmt.Fprintf(&sb, "%d %d\n", i, j)
		}
	}
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&sb, "%d %d\n", 20+i, 20+(i+1)%300)
	}
	if err := os.WriteFile(filepath.Join(dir, "clique.txt"), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{DataDir: dir})

	items, summary := postBatch(t, hs.URL, `{"graph":"clique.txt","threads":1,"items":[{"k":2,"q":10,"mode":"topk","topn":1}]}`)
	if done := summary.Done; done == nil || !*done {
		t.Fatalf("batch not done: %+v", summary)
	}
	if len(items[0].TopK) != 1 || len(items[0].TopK[0]) != 20 {
		t.Fatalf("batch topk %v, want the 20-clique", items[0].TopK)
	}
	if !items[0].Saturated {
		t.Error("saturated item line does not carry saturated=true; the client cannot tell the count is a lower bound")
	}

	code, resp := postQuery(t, hs.URL, `{"graph":"clique.txt","k":2,"q":10,"mode":"topk","topn":1,"threads":1}`)
	if code != http.StatusOK {
		t.Fatalf("follow-up query: status %d", code)
	}
	if resp.Cached {
		t.Error("saturated batch result warmed the cache; the follow-up query must execute in full")
	}
	if resp.Count != 1 {
		t.Errorf("follow-up full count = %d, want 1 (the unique maximal 2-plex)", resp.Count)
	}
	m := stats(t, hs.URL)
	if m["executions"] != 2 {
		t.Errorf("executions = %d, want 2 (batch walk + full single query)", m["executions"])
	}
}

// TestBatchRejections pins the request-level validation: bad items fail
// the whole batch with 400 before any NDJSON is written.
func TestBatchRejections(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"no-items":    `{"graph":"corpus:planted-a","items":[]}`,
		"stream-item": `{"graph":"corpus:planted-a","items":[{"k":2,"q":6,"mode":"stream"}]}`,
		"bad-mode":    `{"graph":"corpus:planted-a","items":[{"k":2,"q":6,"mode":"nope"}]}`,
		"bad-q":       `{"graph":"corpus:planted-a","items":[{"k":2,"q":2,"mode":"count"}]}`,
		"bad-json":    `{"graph":`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(hs.URL+"/batch", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}
	resp, err := http.Post(hs.URL+"/batch", "application/json",
		strings.NewReader(`{"graph":"corpus:no-such","items":[{"k":2,"q":6,"mode":"count"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d, want 404", resp.StatusCode)
	}
}

// TestBatchSweepAcrossGraphs runs a larger sweep on every corpus graph the
// registry serves, checking count items against the committed goldens —
// the server-side differential companion of the engine's grid.
func TestBatchSweepAcrossGraphs(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for _, cell := range []struct {
		name string
		k, q int
	}{
		{"planted-overlap", 2, 6},
		{"chunglu-tail", 3, 8},
		{"ws-ring", 2, 6},
	} {
		want := readGolden(t, cell.name, cell.k, cell.q)
		body := fmt.Sprintf(`{"graph":"corpus:%s","items":[{"k":%d,"q":%d,"mode":"count"},{"k":%d,"q":%d,"mode":"topk","topn":2}]}`,
			cell.name, cell.k, cell.q, cell.k, cell.q)
		items, summary := postBatch(t, hs.URL, body)
		if done := summary.Done; done == nil || !*done {
			t.Fatalf("%s: batch not done: %+v", cell.name, summary)
		}
		if items[0].Count != want.Count || items[0].MaxSize != want.MaxSize {
			t.Errorf("%s: item count=%d maxSize=%d, golden %d/%d",
				cell.name, items[0].Count, items[0].MaxSize, want.Count, want.MaxSize)
		}
	}
	m := stats(t, hs.URL)
	if got := m["cache_hits"] + m["flight_shared"] + m["executions"]; got != m["queries"] {
		t.Errorf("invariant broken: %d != queries %d", got, m["queries"])
	}
}
