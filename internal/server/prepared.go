package server

import (
	"container/list"
	"encoding/hex"
	"strconv"
	"sync"

	"repro/internal/graph"
	"repro/internal/kplex"
)

// preparedCache is a mutex-guarded LRU over kplex.Prepared handles keyed
// by (graph content digest × reduction-relevant options). The run prologue
// — CTCP, (q-k)-core, degeneracy relabelling — is O(n+m) and identical for
// every query in one cell, so keeping the handle resident means a repeat
// query (or a resumed job) starts enumerating immediately. Handles are
// immutable and shared: a cached handle may serve any number of concurrent
// runs, and eviction only forgets the cache's reference (runs still
// holding the handle keep it alive through the GC).
type preparedCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type preparedItem struct {
	key string
	p   *kplex.Prepared
}

func newPreparedCache(capacity int) *preparedCache {
	if capacity < 1 {
		capacity = 1
	}
	return &preparedCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// preparedKey is the cache identity of a handle: the graph's content
// digest plus exactly the options that shape the reduction. Execution
// knobs (threads, scheduler, timeouts, hooks) deliberately do not appear —
// they share a handle.
func preparedKey(digest string, opts *kplex.Options) string {
	key := digest + "|k=" + strconv.Itoa(opts.K) + "|q=" + strconv.Itoa(opts.Q)
	if opts.UseCTCP {
		key += "|ctcp"
	}
	return key
}

// get returns the cached handle and marks it most recently used.
func (c *preparedCache) get(key string) (*kplex.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*preparedItem).p, true
}

// put stores a handle, evicting the least recently used beyond capacity.
func (c *preparedCache) put(key string, p *kplex.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*preparedItem).p = p
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&preparedItem{key: key, p: p})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*preparedItem).key)
	}
}

// len returns the number of cached handles.
func (c *preparedCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// prepared returns the handle for (g, digest, opts), preparing and caching
// it on first use. Concurrent first queries for one cell may prepare
// twice; both results are identical and the loser's handle is simply
// dropped — cheaper than a singleflight for an O(n+m) pure computation.
//
// When a catalog is configured, an LRU miss tries the persisted prologue
// for this cell before computing: a restarted (or eviction-churned) kplexd
// deserializes the handle in milliseconds instead of re-running the O(n+m)
// prologue. Freshly computed handles are persisted back, so every cell is
// paid for at most once per graph content across the server's lifetime.
func (s *Server) prepared(g graph.CSR, digest string, opts *kplex.Options) (*kplex.Prepared, error) {
	key := preparedKey(digest, opts)
	if p, ok := s.prep.get(key); ok {
		s.met.PreparedHits.Add(1)
		return p, nil
	}
	if p := s.loadPrologue(digest, opts); p != nil {
		s.met.PreparedWarmLoads.Add(1)
		s.prep.put(key, p)
		return p, nil
	}
	s.met.PreparedMisses.Add(1)
	p, err := kplex.Prepare(g, *opts)
	if err != nil {
		return nil, err
	}
	s.prep.put(key, p)
	s.savePrologue(digest, opts, p)
	return p, nil
}

// loadPrologue fetches and validates a persisted prologue for the cell;
// nil when there is no catalog, no stored cell, or the stored bytes fail
// any check. Validation is strict — CRC, version, and the embedded source
// digest and options must all match the request — because a wrong prologue
// would not fail loudly, it would silently enumerate a different
// decomposition.
func (s *Server) loadPrologue(digest string, opts *kplex.Options) *kplex.Prepared {
	if s.catalog == nil {
		return nil
	}
	raw, err := s.catalog.LoadPrologue(digest, opts.K, opts.Q, opts.UseCTCP)
	if err != nil || raw == nil {
		return nil
	}
	p, src, err := kplex.UnmarshalPrepared(raw)
	if err != nil {
		s.cfg.Logf(`{"level":"warn","msg":"discarding corrupt persisted prologue","digest":%q,"err":%q}`, digest, err.Error())
		s.catalog.RemovePrologue(digest, opts.K, opts.Q, opts.UseCTCP) //nolint:errcheck
		return nil
	}
	if hex.EncodeToString(src[:]) != digest || p.K() != opts.K || p.Q() != opts.Q || p.UseCTCP() != opts.UseCTCP {
		s.cfg.Logf(`{"level":"warn","msg":"persisted prologue does not match its cell, discarding","digest":%q}`, digest)
		s.catalog.RemovePrologue(digest, opts.K, opts.Q, opts.UseCTCP) //nolint:errcheck
		return nil
	}
	return p
}

// savePrologue persists a freshly computed handle; failures are logged,
// not fatal — the prologue cache is an optimization, never correctness.
func (s *Server) savePrologue(digest string, opts *kplex.Options, p *kplex.Prepared) {
	if s.catalog == nil {
		return
	}
	src, err := hex.DecodeString(digest)
	if err != nil || len(src) != 32 {
		return // non-sha256 digest (shouldn't happen); nothing to key by
	}
	var d [32]byte
	copy(d[:], src)
	if err := s.catalog.SavePrologue(digest, opts.K, opts.Q, opts.UseCTCP, kplex.MarshalPrepared(p, d)); err != nil {
		s.cfg.Logf(`{"level":"warn","msg":"persisting prologue failed","digest":%q,"err":%q}`, digest, err.Error())
		return
	}
	s.met.PreparedPersists.Add(1)
}
