package server

import (
	"container/list"
	"strconv"
	"sync"

	"repro/internal/graph"
	"repro/internal/kplex"
)

// preparedCache is a mutex-guarded LRU over kplex.Prepared handles keyed
// by (graph content digest × reduction-relevant options). The run prologue
// — CTCP, (q-k)-core, degeneracy relabelling — is O(n+m) and identical for
// every query in one cell, so keeping the handle resident means a repeat
// query (or a resumed job) starts enumerating immediately. Handles are
// immutable and shared: a cached handle may serve any number of concurrent
// runs, and eviction only forgets the cache's reference (runs still
// holding the handle keep it alive through the GC).
type preparedCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type preparedItem struct {
	key string
	p   *kplex.Prepared
}

func newPreparedCache(capacity int) *preparedCache {
	if capacity < 1 {
		capacity = 1
	}
	return &preparedCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// preparedKey is the cache identity of a handle: the graph's content
// digest plus exactly the options that shape the reduction. Execution
// knobs (threads, scheduler, timeouts, hooks) deliberately do not appear —
// they share a handle.
func preparedKey(digest string, opts *kplex.Options) string {
	key := digest + "|k=" + strconv.Itoa(opts.K) + "|q=" + strconv.Itoa(opts.Q)
	if opts.UseCTCP {
		key += "|ctcp"
	}
	return key
}

// get returns the cached handle and marks it most recently used.
func (c *preparedCache) get(key string) (*kplex.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*preparedItem).p, true
}

// put stores a handle, evicting the least recently used beyond capacity.
func (c *preparedCache) put(key string, p *kplex.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*preparedItem).p = p
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&preparedItem{key: key, p: p})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*preparedItem).key)
	}
}

// len returns the number of cached handles.
func (c *preparedCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// prepared returns the handle for (g, digest, opts), preparing and caching
// it on first use. Concurrent first queries for one cell may prepare
// twice; both results are identical and the loser's handle is simply
// dropped — cheaper than a singleflight for an O(n+m) pure computation.
func (s *Server) prepared(g *graph.Graph, digest string, opts *kplex.Options) (*kplex.Prepared, error) {
	key := preparedKey(digest, opts)
	if p, ok := s.prep.get(key); ok {
		s.met.PreparedHits.Add(1)
		return p, nil
	}
	s.met.PreparedMisses.Add(1)
	p, err := kplex.Prepare(g, *opts)
	if err != nil {
		return nil, err
	}
	s.prep.put(key, p)
	return p, nil
}
