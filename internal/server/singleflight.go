package server

import (
	"errors"
	"sync"
)

// flightGroup collapses concurrent identical queries: the first caller for
// a key executes, everyone else arriving before it finishes blocks and
// shares the one result. This is what turns a thundering herd of the same
// expensive enumeration into a single run; completed results then move to
// the LRU cache, so the group only ever holds in-flight work.
//
// (A hand-rolled x/sync/singleflight — the module has no external
// dependencies, and the needed subset is small.)
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	wg        sync.WaitGroup
	val       *queryResult
	fromCache bool
	err       error
}

// do executes fn once per key among concurrent callers. fn reports, next
// to its result, whether it was answered by the result cache rather than
// a fresh execution (the caller re-checks the cache inside fn to close
// the gap between its cache miss and the flight starting). do's returns
// are the result, fn's fromCache flag, and whether this caller shared
// another caller's call — the three feed the exact accounting invariant
// cache_hits + flight_shared + executions == queries.
func (g *flightGroup) do(key string, fn func() (*queryResult, bool, error)) (val *queryResult, fromCache, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.fromCache, true, c.err
	}
	c := new(flightCall)
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	// The cleanup is deferred so a panicking fn (net/http recovers handler
	// panics and keeps serving) cannot wedge the key: waiters get an error
	// instead of blocking forever on a flight that will never finish.
	panicked := true
	defer func() {
		if panicked {
			c.err = errFlightPanicked
		}
		c.wg.Done()
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
	}()
	c.val, c.fromCache, c.err = fn()
	panicked = false
	return c.val, c.fromCache, false, c.err
}

var errFlightPanicked = errors.New("server: query execution panicked")
