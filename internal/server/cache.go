package server

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/kplex"
)

// queryResult is one completed cacheable query: everything needed to
// answer an identical query again without touching the engine. It is
// immutable once stored — handlers serialise it, never mutate it.
type queryResult struct {
	Mode       string
	Count      int64
	MaxSize    int
	Elapsed    time.Duration // of the original execution
	Stats      kplex.Stats
	TopK       [][]int       // mode "topk" only
	Histogram  map[int]int64 // mode "histogram" only
	Digest     string
	ComputedAt time.Time
	Sample     *kplex.SampleEstimate // sample:<rate> queries only
}

// resultCache is a mutex-guarded LRU over completed query results, keyed
// by (graph digest | normalized options | mode-specific parameters) — see
// Server.cacheKey. Keying on the digest rather than the graph name means a
// graph registered under two names, or evicted and reloaded from the same
// file, keeps its cached results.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheItem struct {
	key string
	val *queryResult
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result and marks it most recently used.
func (c *resultCache) get(key string) (*queryResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// put stores (or refreshes) a result, evicting the least recently used
// entry beyond capacity.
func (c *resultCache) put(key string, val *queryResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheItem).key)
	}
}

// len returns the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
