package server

// Concurrency regressions for the query path (CI runs this package under
// -race): the cost calibrator's EWMA under concurrent observe/predict,
// and the singleflight contract that a disconnecting leader must not fail
// the followers sharing its call.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestCostRouterConcurrentObservePredict hammers the calibrator from many
// goroutines. The lock discipline is what's under test (via -race); the
// functional assertions are that no observation is lost and the bias
// never corrupts into a NaN/overflow prediction.
func TestCostRouterConcurrentObservePredict(t *testing.T) {
	cr := newCostRouter()
	const goroutines, rounds = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < rounds; n++ {
				cr.observe(routerTestFeatures, time.Duration(1+(i+n)%5)*time.Millisecond)
				if d := cr.predict(routerTestFeatures); d <= 0 || d > 24*time.Hour {
					t.Errorf("predict returned %v mid-stress", d)
					return
				}
				cr.observations()
			}
		}(i)
	}
	wg.Wait()
	if got := cr.observations(); got != goroutines*rounds {
		t.Errorf("observations = %d, want %d (lost updates)", got, goroutines*rounds)
	}
	if d := cr.predict(routerTestFeatures); d <= 0 || d > 24*time.Hour {
		t.Errorf("final prediction %v out of range", d)
	}
}

// TestSingleflightLeaderDisconnect: the first caller of an expensive query
// drops its connection mid-flight. The execution is detached from the
// leader's context, so the follower sharing the flight must still get the
// answer, exactly one execution must run, and the result must be cached.
func TestSingleflightLeaderDisconnect(t *testing.T) {
	dir := t.TempDir()
	// ~1s of enumeration single-threaded: a wide window for the follower
	// to attach and the leader to vanish.
	if err := graph.WriteFormatFile(filepath.Join(dir, "slow.bin"), gen.GNP(200, 0.3, 9), graph.FormatBinary); err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{DataDir: dir, DefaultThreads: 1})
	const body = `{"graph":"slow.bin","k":2,"q":6,"mode":"count"}`

	lctx, lcancel := context.WithCancel(context.Background())
	defer lcancel()
	lreq, err := http.NewRequestWithContext(lctx, http.MethodPost, hs.URL+"/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	lreq.Header.Set("Content-Type", "application/json")
	leaderErr := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(lreq)
		if err == nil {
			resp.Body.Close()
		}
		leaderErr <- err
	}()

	// Wait until the leader's enumeration is genuinely executing.
	deadline := time.Now().Add(10 * time.Second)
	for stats(t, hs.URL)["executions"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("leader never started executing")
		}
		time.Sleep(10 * time.Millisecond)
	}

	type answer struct {
		code  int
		count int64
		err   error
	}
	followed := make(chan answer, 1)
	go func() {
		resp, err := http.Post(hs.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			followed <- answer{err: err}
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		var out apiResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(data, &out); err != nil {
				followed <- answer{err: err}
				return
			}
		}
		followed <- answer{code: resp.StatusCode, count: out.Count}
	}()

	// Let the follower attach to the in-flight call, then kill the leader.
	time.Sleep(100 * time.Millisecond)
	lcancel()
	if err := <-leaderErr; err == nil {
		t.Fatal("leader request completed despite cancellation")
	}

	got := <-followed
	if got.err != nil {
		t.Fatalf("follower: %v", got.err)
	}
	if got.code != http.StatusOK || got.count <= 0 {
		t.Fatalf("follower got status %d count %d; the leader's disconnect failed the shared flight", got.code, got.count)
	}

	// The finished flight is cached, and the leader's disconnect caused no
	// second execution.
	code, again := postQuery(t, hs.URL, body)
	if code != http.StatusOK || again.Count != got.count {
		t.Fatalf("post-flight query: status %d count %d, follower saw %d", code, again.Count, got.count)
	}
	if !again.Cached {
		t.Error("post-flight query was not served from cache")
	}
	m := stats(t, hs.URL)
	if m["executions"] != 1 {
		t.Errorf("executions = %d, want exactly 1", m["executions"])
	}
	if m["flight_shared"] != 1 {
		t.Errorf("flight_shared = %d, want 1 (the follower)", m["flight_shared"])
	}
}
