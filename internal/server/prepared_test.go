package server

import (
	"fmt"
	"testing"

	"repro/internal/kplex"
)

// TestPreparedCacheSharedAcrossModes pins the prologue amortization
// contract: queries in one (graph, k, q) cell share a single prepared
// handle no matter the mode (count / topk / histogram all enumerate the
// same decomposition), while a different (k, q) cell prepares its own.
func TestPreparedCacheSharedAcrossModes(t *testing.T) {
	s, hs := newTestServer(t, Config{})

	query := func(body string) {
		t.Helper()
		code, _ := postQuery(t, hs.URL, body)
		if code != 200 {
			t.Fatalf("query %s: status %d", body, code)
		}
	}
	// Three modes in one cell: one miss, two hits (result cache keys
	// differ per mode, so each reaches execute).
	query(`{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}`)
	query(`{"graph":"corpus:planted-a","k":2,"q":6,"mode":"topk","topn":3}`)
	query(`{"graph":"corpus:planted-a","k":2,"q":6,"mode":"histogram"}`)

	m := s.Metrics()
	if m["prepared_misses"] != 1 {
		t.Fatalf("prepared_misses = %d, want 1 (one cell, one prologue)", m["prepared_misses"])
	}
	if m["prepared_hits"] != 2 {
		t.Fatalf("prepared_hits = %d, want 2", m["prepared_hits"])
	}
	if got := s.prep.len(); got != 1 {
		t.Fatalf("prepared cache holds %d handles, want 1", got)
	}

	// A different (k, q) cell is a different decomposition.
	query(`{"graph":"corpus:planted-a","k":3,"q":8,"mode":"count"}`)
	m = s.Metrics()
	if m["prepared_misses"] != 2 {
		t.Fatalf("prepared_misses = %d after second cell, want 2", m["prepared_misses"])
	}
	if got := s.prep.len(); got != 2 {
		t.Fatalf("prepared cache holds %d handles, want 2", got)
	}
}

// TestPreparedCacheServesStreams pins that the streaming path shares the
// same prepared handles as the cacheable modes: a stream after a count
// query in the same cell is a prepared hit.
func TestPreparedCacheServesStreams(t *testing.T) {
	s, hs := newTestServer(t, Config{})

	code, _ := postQuery(t, hs.URL, `{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}`)
	if code != 200 {
		t.Fatalf("count query: status %d", code)
	}
	resp, err := hs.Client().Get(hs.URL + "/stream?graph=corpus:planted-a&k=2&q=6")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	// Drain so the run completes.
	buf := make([]byte, 4096)
	for {
		if _, err := resp.Body.Read(buf); err != nil {
			break
		}
	}

	m := s.Metrics()
	if m["prepared_misses"] != 1 || m["prepared_hits"] != 1 {
		t.Fatalf("prepared hits/misses = %d/%d, want 1/1 (stream reuses the count query's handle)",
			m["prepared_hits"], m["prepared_misses"])
	}
}

// TestPreparedCacheLRU pins the eviction bound.
func TestPreparedCacheLRU(t *testing.T) {
	c := newPreparedCache(2)
	mk := func(i int) string { return fmt.Sprintf("digest%d", i) }
	opts := kplex.NewOptions(2, 6)
	p := &kplex.Prepared{}
	for i := 0; i < 3; i++ {
		c.put(preparedKey(mk(i), &opts), p)
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d, want cap 2", c.len())
	}
	if _, ok := c.get(preparedKey(mk(0), &opts)); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := c.get(preparedKey(mk(2), &opts)); !ok {
		t.Fatal("newest entry evicted")
	}
}
