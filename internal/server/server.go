// Package server is the kplexd query service: a long-running HTTP/JSON
// front end over the enumeration engine. It keeps parsed graphs resident
// in a refcounted, LRU-evictable registry; answers count, top-k and
// histogram queries through a result cache keyed by (graph digest,
// normalized options) with singleflight batching of concurrent identical
// queries; and serves large result sets as NDJSON streams backed by the
// engine's bounded-channel path, so a dropped client cancels the
// enumeration instead of leaking it. Admission control bounds the number
// of concurrent enumerations; excess load is turned away with 429 rather
// than queued without bound.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/kplex"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/store"
)

// Config tunes a Server. The zero value is usable: every field has a
// default chosen for a small deployment.
type Config struct {
	// DataDir is the directory graph files are served from; empty means
	// only the builtin "corpus:*" graphs are available.
	DataDir string
	// CatalogDir enables the persistent graph catalog: converted store
	// files (*.kpg) registered there are served mmap-backed — a cold open
	// reads only the 4 KiB header, so restart-to-serving is O(1) per graph
	// regardless of size — and computed run prologues are persisted
	// alongside, keyed by content digest × (k, q, ctcp), so a restarted
	// kplexd answers its first repeat query warm instead of re-running the
	// O(n+m) prologue. Empty disables both.
	CatalogDir string
	// MaxResidentGraphs caps the registry (default 8).
	MaxResidentGraphs int
	// CacheEntries caps the result cache (default 256).
	CacheEntries int
	// PreparedEntries caps the prepared-graph cache: resident run
	// prologues (CTCP + core restriction + degeneracy relabelling), keyed
	// by graph digest × reduction options, that let repeat queries and
	// resumed jobs skip straight to enumeration. Each handle holds a
	// relabelled copy comparable in size to its source graph, so the
	// default scales with the registry budget rather than being a fixed
	// count: 4 × MaxResidentGraphs (a few (k, q) cells per resident
	// graph).
	PreparedEntries int
	// MaxConcurrent bounds simultaneously running enumerations, cacheable
	// and streaming alike (default NumCPU, min 2).
	MaxConcurrent int
	// Tenants declares per-tenant QoS profiles (weights, rate quotas,
	// concurrency caps) for the admission controller; requests name their
	// tenant in the X-Kplexd-Tenant header. Tenants not listed here — and
	// every request when the list is empty — get the default profile
	// (weight 1, no quota, no cap), so an unconfigured deployment behaves
	// like a plain MaxConcurrent semaphore. See qos.ParseTenants for the
	// -tenants flag syntax.
	Tenants []qos.TenantConfig
	// AdmissionTimeout is how long a request waits for an enumeration slot
	// before being rejected with 429 (default 2s).
	AdmissionTimeout time.Duration
	// QueryTimeout bounds one cacheable enumeration (default 5m). Cacheable
	// runs are detached from the requesting client — a dropped client does
	// not abort work whose result every later identical query reuses — so
	// this is their only stop.
	QueryTimeout time.Duration
	// DefaultThreads is the engine parallelism when a query does not ask
	// for one (default NumCPU).
	DefaultThreads int
	// MaxThreads rejects queries asking for more parallelism (default
	// 4×NumCPU); like MaxK, an open service needs a ceiling — the engine
	// spawns a worker, a queue and scratch buffers per thread.
	MaxThreads int
	// MaxK rejects queries with k beyond it (default 8; enumeration cost
	// explodes with k, so an open service needs a ceiling).
	MaxK int
	// MaxTopN caps topk queries (default 1000).
	MaxTopN int
	// StreamBuffer is the per-stream channel capacity (default
	// kplex.DefaultStreamBuffer).
	StreamBuffer int

	// JobsDir enables the durable async job subsystem: long enumerations
	// submitted to POST /jobs run in the background, checkpoint seed-level
	// progress under this directory, and resume after a restart. Empty
	// disables the /jobs endpoints (they answer 503).
	JobsDir string
	// JobWorkers bounds concurrently running jobs (default 2). Each running
	// job additionally holds one MaxConcurrent admission slot while it
	// enumerates, so jobs and interactive queries share one capacity budget.
	JobWorkers int
	// JobCheckpointSeeds is the checkpoint batch size in completed seed
	// groups (default 64).
	JobCheckpointSeeds int
	// JobCheckpointInterval is the maximum age of uncheckpointed progress
	// (default 2s).
	JobCheckpointInterval time.Duration
	// JobMinCheckpointGap rate-limits checkpoint fsyncs (default 250ms,
	// negative disables; see jobs.Config.MinCheckpointGap).
	JobMinCheckpointGap time.Duration

	// RouteAsyncThreshold is the predicted-runtime cutoff of route=auto
	// queries (default 30s): above it — and only when the job subsystem is
	// enabled — the query is answered 202 with a durable job manifest
	// instead of synchronously. The prediction comes from the engine's cost
	// model, calibrated online against this server's observed runtimes (see
	// routing.go).
	RouteAsyncThreshold time.Duration

	// ClusterDir enables the distributed-enumeration coordinator: jobs
	// submitted to POST /cluster/jobs have their seed space partitioned
	// into ranges leased to the registered worker kplexds, with completed
	// ranges checkpointed under this directory. Empty disables the
	// coordinator endpoints (they answer 503); the worker endpoint POST
	// /cluster/run is always served, so any kplexd can join a cluster.
	ClusterDir string
	// ClusterWorkers seeds the coordinator's worker set with base URLs;
	// more can register at runtime via POST /cluster/workers.
	ClusterWorkers []string
	// ClusterLeaseTimeout fails a range lease whose worker stops streaming
	// for this long (default 15s; see cluster.Config.LeaseTimeout).
	ClusterLeaseTimeout time.Duration
	// ClusterStealAfter is how long a range must have been on lease before
	// an idle worker speculatively re-leases it (default 2× lease timeout).
	ClusterStealAfter time.Duration
	// ClusterRangesPerWorker sizes default partitions (default 4).
	ClusterRangesPerWorker int
	// ClusterMaxRangeAttempts fails a job once one range has lost this
	// many leases (default 8).
	ClusterMaxRangeAttempts int

	// Logf receives kplexd's structured operational log lines (admission
	// stalls, slow-query-log failures). Default log.Printf.
	Logf func(format string, args ...any)
	// TraceCapacity is how many finished traces the /debug/traces ring
	// keeps before evicting the oldest (default 256).
	TraceCapacity int
	// TraceSampleEvery traces 1 in N interactive requests (default 1:
	// trace everything; the ring bounds memory, not the sample rate).
	// Background jobs and distributed jobs are always traced — they are
	// rare and expensive, exactly the requests worth keeping.
	TraceSampleEvery int
	// SlowQueryLog is the path of the slow-query NDJSON log; empty
	// disables it. The log rotates to <path>.1 past SlowQueryLogMaxBytes.
	SlowQueryLog string
	// SlowQueryLogMaxBytes caps one slow-log generation (default 8 MiB).
	SlowQueryLogMaxBytes int64
	// SlowQueryThreshold is the wall-clock at which a query, stream or
	// batch earns a slow-query-log record (default 1s).
	SlowQueryThreshold time.Duration
	// AdmissionWarnAfter emits a structured warning once queued work (a
	// background job or a leased range) has waited this long for an
	// enumeration slot. Default ClusterLeaseTimeout when set, else 15s: a
	// leased range stalled in admission sends no heartbeats, so a wait
	// past the lease timeout is exactly when the coordinator starts
	// reassigning this worker's leases and an operator needs the signal.
	AdmissionWarnAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxResidentGraphs <= 0 {
		c.MaxResidentGraphs = 8
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.PreparedEntries <= 0 {
		c.PreparedEntries = 4 * c.MaxResidentGraphs
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = max(2, runtime.NumCPU())
	}
	if c.AdmissionTimeout <= 0 {
		c.AdmissionTimeout = 2 * time.Second
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 5 * time.Minute
	}
	if c.DefaultThreads <= 0 {
		c.DefaultThreads = runtime.NumCPU()
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 4 * runtime.NumCPU()
	}
	if c.DefaultThreads > c.MaxThreads {
		c.DefaultThreads = c.MaxThreads
	}
	if c.MaxK <= 0 {
		c.MaxK = 8
	}
	if c.MaxTopN <= 0 {
		c.MaxTopN = 1000
	}
	if c.StreamBuffer <= 0 {
		c.StreamBuffer = kplex.DefaultStreamBuffer
	}
	if c.RouteAsyncThreshold <= 0 {
		c.RouteAsyncThreshold = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.TraceCapacity <= 0 {
		c.TraceCapacity = 256
	}
	if c.TraceSampleEvery <= 0 {
		c.TraceSampleEvery = 1
	}
	if c.SlowQueryThreshold <= 0 {
		c.SlowQueryThreshold = time.Second
	}
	if c.AdmissionWarnAfter <= 0 {
		if c.ClusterLeaseTimeout > 0 {
			c.AdmissionWarnAfter = c.ClusterLeaseTimeout
		} else {
			c.AdmissionWarnAfter = 15 * time.Second
		}
	}
	return c
}

// Server is the kplexd service. Create with New, expose via Handler, and
// Close on shutdown to cancel detached executions.
type Server struct {
	cfg     Config
	reg     *Registry
	cache   *resultCache
	prep    *preparedCache
	catalog *store.Catalog // nil when Config.CatalogDir is empty
	flight  flightGroup
	qos     *qos.Controller
	met     metrics
	mux     *http.ServeMux
	router  *costRouter
	jobs    *jobs.Manager        // nil when Config.JobsDir is empty
	cluster *cluster.Coordinator // nil when Config.ClusterDir is empty
	baseCtx context.Context
	stop    context.CancelFunc

	tracer   *obs.Tracer
	inflight *obs.Inflight
	slow     *obs.SlowLog // nil when Config.SlowQueryLog is empty
	hist     serverHists

	tenantQueries *obs.CounterVec   // enumeration requests per tenant
	tenantWait    *obs.HistogramVec // admission wait per tenant
}

// New builds a Server from cfg (see Config for defaults). The only
// construction failure is the job subsystem (an unusable JobsDir or
// unrecoverable job state).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	var cat *store.Catalog
	if cfg.CatalogDir != "" {
		var err error
		if cat, err = store.OpenCatalog(cfg.CatalogDir); err != nil {
			return nil, fmt.Errorf("opening graph catalog: %w", err)
		}
	}
	s := &Server{
		cfg:      cfg,
		reg:      NewRegistry(cfg.MaxResidentGraphs, NewLoader(cfg.DataDir, cat)),
		catalog:  cat,
		cache:    newResultCache(cfg.CacheEntries),
		prep:     newPreparedCache(cfg.PreparedEntries),
		qos:      qos.NewController(cfg.MaxConcurrent, cfg.Tenants),
		mux:      http.NewServeMux(),
		router:   newCostRouter(),
		tracer:   obs.NewTracer(cfg.TraceCapacity, cfg.TraceSampleEvery),
		inflight: obs.NewInflight(),
		hist:     newServerHists(),

		tenantQueries: obs.NewCounterVec(),
		tenantWait:    obs.NewHistogramVec(obs.DefaultLatencyBuckets),
	}
	if cfg.SlowQueryLog != "" {
		sl, err := obs.NewSlowLog(cfg.SlowQueryLog, cfg.SlowQueryLogMaxBytes)
		if err != nil {
			return nil, err
		}
		s.slow = sl
	}
	s.reg.setHooks(
		func() { s.met.GraphLoads.Add(1) },
		func() { s.met.GraphEvictions.Add(1) },
	)
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	if cfg.JobsDir != "" {
		man, err := jobs.Open(jobs.Config{
			Dir:                cfg.JobsDir,
			Load:               s.jobGraph,
			Prepare:            s.jobPrepared,
			Workers:            cfg.JobWorkers,
			CheckpointSeeds:    cfg.JobCheckpointSeeds,
			CheckpointInterval: cfg.JobCheckpointInterval,
			MinCheckpointGap:   cfg.JobMinCheckpointGap,
			DefaultThreads:     cfg.DefaultThreads,
			Admit:              s.admitJob,
			TenantWeight:       tenantWeights(cfg.Tenants),
			ObserveCost:        s.observeCost,
			Tracer:             s.tracer,
			ObserveFsync:       s.hist.fsync.ObserveDuration,
			ObserveJob:         s.hist.job.ObserveDuration,
		})
		if err != nil {
			return nil, fmt.Errorf("opening job subsystem: %w", err)
		}
		s.jobs = man
	}
	if cfg.ClusterDir != "" {
		co, err := cluster.Open(cluster.Config{
			Dir:              cfg.ClusterDir,
			Load:             s.jobGraph,
			Prepare:          s.jobPrepared,
			Workers:          cfg.ClusterWorkers,
			LeaseTimeout:     cfg.ClusterLeaseTimeout,
			StealAfter:       cfg.ClusterStealAfter,
			RangesPerWorker:  cfg.ClusterRangesPerWorker,
			MaxRangeAttempts: cfg.ClusterMaxRangeAttempts,
			MaxTopN:          cfg.MaxTopN,
			Tracer:           s.tracer,
			ObserveLease:     s.hist.lease.ObserveDuration,
		})
		if err != nil {
			return nil, fmt.Errorf("opening cluster coordinator: %w", err)
		}
		s.cluster = co
	}
	s.routes()
	return s, nil
}

// Jobs exposes the job manager (tests and the preload path); nil when the
// subsystem is disabled.
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Cluster exposes the distributed-job coordinator; nil when disabled.
func (s *Server) Cluster() *cluster.Coordinator { return s.cluster }

// jobGraph adapts the graph registry to the job manager's loader: the
// graph stays pinned for the whole run.
func (s *Server) jobGraph(name string) (graph.CSR, string, func(), error) {
	e, err := s.reg.Acquire(name)
	if err != nil {
		return nil, "", nil, err
	}
	return e.G, e.Digest, func() { s.reg.Release(e) }, nil
}

// jobPrepared resolves a job's run prologue through the server's
// prepared-graph cache, so background jobs — and especially their resumed
// incarnations after a restart — share prologues with interactive queries
// instead of recomputing them.
func (s *Server) jobPrepared(g graph.CSR, digest string, opts kplex.Options) (*kplex.Prepared, error) {
	return s.prepared(g, digest, &opts)
}

// Catalog exposes the persistent graph catalog (tests and the preload
// path); nil when Config.CatalogDir is empty.
func (s *Server) Catalog() *store.Catalog { return s.catalog }

// tenantWeights builds the job scheduler's weight lookup from the declared
// tenant profiles; unknown tenants weigh 1 (the lookup returns 0 and the
// scheduler applies its default).
func tenantWeights(tenants []qos.TenantConfig) func(string) float64 {
	w := make(map[string]float64, len(tenants))
	for _, tc := range tenants {
		if tc.Weight > 0 {
			w[tc.Name] = tc.Weight
		}
	}
	return func(tenant string) float64 { return w[tenant] }
}

// admitJob takes an enumeration slot for a background job or a leased
// seed range on behalf of tenant. Unlike the interactive path there is no
// 429 and no token charge: jobs are queued, already-accepted work by
// definition, so they wait for capacity (or until the job is cancelled),
// sharing the weighted-fair queue with interactive requests. The wait is
// never silent: it feeds the admission-wait histogram, and once it crosses
// Config.AdmissionWarnAfter a structured warning is logged — a leased
// range stalled here sends no heartbeats, so a long wait is the usual
// prelude to the coordinator expiring the lease.
func (s *Server) admitJob(ctx context.Context, tenant string) (func(), error) {
	start := time.Now()
	done := make(chan struct{})
	defer close(done)
	go func() {
		warn := time.NewTimer(s.cfg.AdmissionWarnAfter)
		defer warn.Stop()
		for {
			select {
			case <-done:
				return
			case <-warn.C:
				s.cfg.Logf(`{"level":"warn","msg":"queued work waiting on admission","waitedMs":%.0f,"warnAfterMs":%.0f,"maxConcurrent":%d}`,
					float64(time.Since(start))/float64(time.Millisecond),
					float64(s.cfg.AdmissionWarnAfter)/float64(time.Millisecond),
					s.cfg.MaxConcurrent)
				warn.Reset(s.cfg.AdmissionWarnAfter)
			}
		}
	}()
	release, err := s.qos.AdmitQueued(ctx, tenant)
	s.hist.admissionWait.ObserveSince(start)
	s.tenantWait.Observe(tenant, time.Since(start).Seconds())
	return release, err
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.withObs(s.mux) }

// withObs wraps the API mux with request tracing: the enumeration
// endpoints get a (sampled) trace carried in the request context, with the
// id echoed in the X-Trace-Id response header so a caller can fetch
// /debug/traces/{id} afterwards. Everything else — health checks, listings,
// metrics — passes through untouched; tracing them would churn the ring
// without diagnostic value. The ResponseWriter is deliberately not
// wrapped: a wrapper would hide http.Flusher from the NDJSON endpoints
// (see ndjsonFlusher).
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/query", "/stream", "/batch":
		default:
			next.ServeHTTP(w, r)
			return
		}
		t := s.tracer.Start(r.Method + " " + r.URL.Path)
		if t != nil {
			w.Header().Set("X-Trace-Id", t.ID())
			r = r.WithContext(obs.ContextWith(r.Context(), t))
			defer t.Finish()
		}
		next.ServeHTTP(w, r)
	})
}

// Tracer exposes the trace ring (tests and debug tooling).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Registry exposes the graph registry (tests and the preload path).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics returns a snapshot of the server counters, including the job
// subsystem's when it is enabled.
func (s *Server) Metrics() map[string]int64 {
	snap := s.met.snapshot()
	if s.jobs != nil {
		for k, v := range s.jobs.Counters().Snapshot() {
			snap[k] = v
		}
	}
	if s.cluster != nil {
		for k, v := range s.cluster.Counters().Snapshot() {
			snap[k] = v
		}
	}
	return snap
}

// Close stops the job manager (running jobs flush a final checkpoint so
// the next start resumes them) and cancels every detached execution.
// In-flight handlers finish on their own (http.Server.Shutdown handles
// draining them).
func (s *Server) Close() {
	if s.cluster != nil {
		s.cluster.Close()
	}
	if s.jobs != nil {
		s.jobs.Close()
	}
	s.stop()
	s.slow.Close() //nolint:errcheck // diagnostic output; nothing to do on failure
}

// admit blocks until tenant is granted an enumeration slot, the client
// gives up, or the admission timeout passes. The tenant's token bucket is
// charged; a bucket denial surfaces as a *qos.QuotaError (mapped to 429
// with a computed Retry-After), and an admission-timeout expiry while the
// client is still there surfaces as errBusy. The returned release must be
// called exactly once.
func (s *Server) admit(ctx context.Context, tenant string) (release func(), err error) {
	start := time.Now()
	actx, cancel := context.WithTimeout(ctx, s.cfg.AdmissionTimeout)
	defer cancel()
	release, err = s.qos.Admit(actx, tenant)
	if err == nil {
		s.hist.admissionWait.ObserveSince(start)
		s.tenantWait.Observe(tenant, time.Since(start).Seconds())
		return release, nil
	}
	var qe *qos.QuotaError
	if errors.As(err, &qe) {
		s.met.QuotaDenied.Add(1)
		return nil, err
	}
	if actx.Err() != nil && ctx.Err() == nil {
		return nil, errBusy // the timeout fired, not the caller
	}
	return nil, err
}

// QoS exposes the admission controller (tests and introspection).
func (s *Server) QoS() *qos.Controller { return s.qos }

var errBusy = fmt.Errorf("server at capacity: all enumeration slots busy")
