package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
)

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s: %v (%s)", url, err, data)
		}
	}
	return resp.StatusCode
}

func TestJobsDisabled(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, body := postJSON(t, hs.URL+"/jobs", `{"graph":"corpus:planted-a","k":2,"q":6}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /jobs without -jobs = %d (%s), want 503", resp.StatusCode, body)
	}
}

func TestJobsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	_, hs := newTestServer(t, Config{JobsDir: dir})

	// Unknown graphs are rejected at submit time.
	resp, _ := postJSON(t, hs.URL+"/jobs", `{"graph":"corpus:nope","k":2,"q":6}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("submit with unknown graph = %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, hs.URL+"/jobs", `{"graph":"corpus:planted-a","k":99,"q":200}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("submit with k over cap = %d, want 400", resp.StatusCode)
	}

	resp, body := postJSON(t, hs.URL+"/jobs", `{"graph":"corpus:planted-a","k":2,"q":6,"topn":5}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d (%s), want 202", resp.StatusCode, body)
	}
	var man jobs.Manifest
	if err := json.Unmarshal(body, &man); err != nil || man.ID == "" {
		t.Fatalf("submit response %s: %v", body, err)
	}

	// The result endpoint answers 409 until the job completes.
	if code := getJSON(t, hs.URL+"/jobs/"+man.ID+"/result", nil); code != http.StatusConflict && code != http.StatusOK {
		t.Fatalf("result while running = %d, want 409 (or 200 if already done)", code)
	}

	// The events feed ends with a terminal state line.
	eventsResp, err := http.Get(hs.URL + "/jobs/" + man.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eventsResp.Body.Close()
	var last jobs.Progress
	sc := bufio.NewScanner(eventsResp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line == "{}" {
			continue
		}
		if err := json.Unmarshal([]byte(line), &last); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
	}
	if last.State != jobs.StateDone {
		t.Fatalf("events feed ended in state %q, want done", last.State)
	}
	if last.SeedsDone != last.TotalSeeds || last.TotalSeeds == 0 {
		t.Fatalf("final progress %d/%d seeds", last.SeedsDone, last.TotalSeeds)
	}

	var view jobs.View
	if code := getJSON(t, hs.URL+"/jobs/"+man.ID, &view); code != http.StatusOK {
		t.Fatalf("GET /jobs/{id} = %d", code)
	}
	if view.State != jobs.StateDone {
		t.Fatalf("job state = %s, want done", view.State)
	}

	var res jobs.Result
	if code := getJSON(t, hs.URL+"/jobs/"+man.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("GET result = %d", code)
	}

	// The async answer must agree with the synchronous query path.
	code, q := postQuery(t, hs.URL, `{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}`)
	if code != http.StatusOK {
		t.Fatalf("query = %d", code)
	}
	if res.Count != q.Count {
		t.Fatalf("job count %d != query count %d", res.Count, q.Count)
	}

	// Listing shows the job; Prometheus metrics expose the job counters.
	var list []jobs.View
	if code := getJSON(t, hs.URL+"/jobs", &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("GET /jobs = %d with %d entries", code, len(list))
	}
	mResp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	prom, _ := io.ReadAll(mResp.Body)
	for _, want := range []string{
		"kplexd_jobs_submitted_total 1",
		"kplexd_jobs_completed_total 1",
		"kplexd_jobs_running 0",
		"kplexd_queries_total 1",
		"# TYPE kplexd_jobs_running gauge",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// DELETE on a terminal job removes it.
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/jobs/"+man.ID, nil)
	dResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dResp.Body.Close()
	if dResp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE terminal job = %d", dResp.StatusCode)
	}
	if code := getJSON(t, hs.URL+"/jobs/"+man.ID, nil); code != http.StatusNotFound {
		t.Fatalf("GET deleted job = %d, want 404", code)
	}
}

// TestJobsSurviveServerRestart submits against one server, closes it
// mid-run, and expects a second server over the same directories to finish
// the job from its checkpoint.
func TestJobsSurviveServerRestart(t *testing.T) {
	jobsDir := t.TempDir()

	s1, err := New(Config{JobsDir: jobsDir, JobCheckpointSeeds: 2, JobMinCheckpointGap: -1})
	if err != nil {
		t.Fatal(err)
	}
	man, err := s1.Jobs().Submit(jobs.Spec{Graph: "corpus:planted-overlap", K: 2, Q: 6, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Give the job a moment to start, then shut the server down mid-run.
	// (If it already finished, the test still verifies the terminal state
	// survives the restart.)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v, err := s1.Jobs().Get(man.ID); err == nil && v.State != jobs.StateQueued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s1.Close()

	s2, err := New(Config{JobsDir: jobsDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v, err := s2.Jobs().Wait(ctx, man.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != jobs.StateDone {
		t.Fatalf("restarted job ended %s (%s)", v.State, v.Error)
	}
	res, err := s2.Jobs().Result(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count == 0 {
		t.Fatal("restarted job reported zero plexes")
	}
}
