package server

// End-to-end tests for the multi-tenant QoS surface: request-context-bound
// admission, Retry-After on 429s, per-tenant quotas, deadline-bounded
// partial answers with resume jobs, and seed-sampling estimates.

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/kplex"
	"repro/internal/qos"
)

// qosResponse decodes the QoS-era queryResponse fields.
type qosResponse struct {
	Count        int64                 `json:"count"`
	MaxSize      int                   `json:"maxSize"`
	Cached       bool                  `json:"cached"`
	Partial      bool                  `json:"partial"`
	SeedsDone    int                   `json:"seedsDone"`
	TotalSeeds   int                   `json:"totalSeeds"`
	SeedFraction float64               `json:"seedFraction"`
	ResumeJob    *jobs.Manifest        `json:"resumeJob"`
	Sample       *kplex.SampleEstimate `json:"sample"`
	Histogram    map[string]int64      `json:"histogram"`
}

func postQoS(t *testing.T, url, tenant, body string) (*http.Response, qosResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(tenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out qosResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// TestAdmissionBoundByRequestContext pins the singleflight admission fix:
// a queued query whose client goes away must abandon its admission wait
// immediately instead of sitting out the full AdmissionTimeout on the
// server's base context and then executing for nobody.
func TestAdmissionBoundByRequestContext(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxConcurrent: 1, AdmissionTimeout: 30 * time.Second})

	// Occupy the only slot so the query below queues at admission.
	release, err := s.qos.Admit(context.Background(), "blocker")
	if err != nil {
		t.Fatalf("blocker admit: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	body := `{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()

	// Wait until the request is genuinely queued behind the blocker.
	waitFor(t, 5*time.Second, "query never queued at admission", func() bool {
		for _, ts := range s.qos.Snapshot() {
			if ts.Queued > 0 {
				return true
			}
		}
		return false
	})

	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled request unexpectedly succeeded")
	}
	// The admission waiter must unwind with the client, long before the
	// 30s AdmissionTimeout.
	waitFor(t, 5*time.Second, "admission waiter survived its client", func() bool {
		for _, ts := range s.qos.Snapshot() {
			if ts.Queued > 0 {
				return false
			}
		}
		return true
	})

	// Freeing the slot must not resurrect the abandoned query.
	release()
	time.Sleep(100 * time.Millisecond)
	if got := s.met.Executions.Load(); got != 0 {
		t.Fatalf("abandoned query executed: executions = %d, want 0", got)
	}
}

func waitFor(t *testing.T, timeout time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRetryAfterOn429 checks that both overload flavours — admission
// timeout under capacity pressure and a tenant quota denial — answer 429
// with a Retry-After hint the client can act on.
func TestRetryAfterOn429(t *testing.T) {
	t.Run("capacity", func(t *testing.T) {
		s, hs := newTestServer(t, Config{MaxConcurrent: 1, AdmissionTimeout: 50 * time.Millisecond})
		release, err := s.qos.Admit(context.Background(), "blocker")
		if err != nil {
			t.Fatal(err)
		}
		defer release()
		resp, _ := postQoS(t, hs.URL, "", `{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}`)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status = %d, want 429", resp.StatusCode)
		}
		assertRetryAfter(t, resp)
	})

	t.Run("quota", func(t *testing.T) {
		_, hs := newTestServer(t, Config{
			Tenants: []qos.TenantConfig{{Name: "metered", Rate: 0.01, Burst: 1}},
		})
		// The single burst token pays for the first query; the second
		// distinct query must be refused with the refill time.
		resp, _ := postQoS(t, hs.URL, "metered", `{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("first query: status = %d, want 200", resp.StatusCode)
		}
		resp, _ = postQoS(t, hs.URL, "metered", `{"graph":"corpus:planted-a","k":3,"q":7,"mode":"count"}`)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("second query: status = %d, want 429", resp.StatusCode)
		}
		assertRetryAfter(t, resp)

		// An unlisted tenant is not throttled by the metered tenant's bucket.
		resp, _ = postQoS(t, hs.URL, "other", `{"graph":"corpus:planted-a","k":3,"q":7,"mode":"count"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("unmetered tenant: status = %d, want 200", resp.StatusCode)
		}
	})
}

func assertRetryAfter(t *testing.T, resp *http.Response) {
	t.Helper()
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", ra, err)
	}
	if secs < 1 || secs > 60 {
		t.Fatalf("Retry-After = %d, want within [1, 60]", secs)
	}
}

// TestDeadlinePartialWithResume drives the graceful-degradation path end
// to end: a deadline too short for the enumeration must yield HTTP 200
// with partial:true, a count that is a lower bound on the exact answer,
// the completed-seed fraction, and a resume job that finishes the work
// and converges on the exact result.
func TestDeadlinePartialWithResume(t *testing.T) {
	dir := t.TempDir()
	// ~1s of enumeration single-threaded; a 100ms deadline lands mid-walk.
	if err := graph.WriteFormatFile(filepath.Join(dir, "slow.bin"), gen.GNP(200, 0.3, 9), graph.FormatBinary); err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{
		DataDir:        dir,
		JobsDir:        filepath.Join(dir, "jobs"),
		DefaultThreads: 1,
	})

	resp, partial := postQoS(t, hs.URL, "gold",
		`{"graph":"slow.bin","k":2,"q":6,"mode":"count","deadlineMs":100}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline query: status = %d, want 200", resp.StatusCode)
	}
	if !partial.Partial {
		t.Fatal("deadline query completed inside 100ms; expected partial:true (graph too fast for the test)")
	}
	if partial.SeedsDone <= 0 || partial.SeedsDone >= partial.TotalSeeds {
		t.Fatalf("seedsDone = %d of %d, want strictly between", partial.SeedsDone, partial.TotalSeeds)
	}
	wantFrac := float64(partial.SeedsDone) / float64(partial.TotalSeeds)
	if math.Abs(partial.SeedFraction-wantFrac) > 1e-9 {
		t.Fatalf("seedFraction = %v, want %v", partial.SeedFraction, wantFrac)
	}
	if partial.ResumeJob == nil {
		t.Fatal("partial answer carries no resume job")
	}
	if partial.ResumeJob.SeedsDone != partial.SeedsDone || partial.ResumeJob.TotalSeeds != partial.TotalSeeds {
		t.Fatalf("resume job progress %d/%d does not match the partial answer %d/%d",
			partial.ResumeJob.SeedsDone, partial.ResumeJob.TotalSeeds, partial.SeedsDone, partial.TotalSeeds)
	}
	if partial.ResumeJob.Spec.Tenant != "gold" {
		t.Fatalf("resume job tenant = %q, want %q", partial.ResumeJob.Spec.Tenant, "gold")
	}

	// The resume job finishes the remaining seeds and lands on the exact
	// answer.
	var result jobs.Result
	waitFor(t, 60*time.Second, "resume job never reached a terminal state", func() bool {
		r, err := http.Get(hs.URL + "/jobs/" + partial.ResumeJob.ID)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var v jobs.View
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		if v.State == jobs.StateFailed || v.State == jobs.StateCancelled {
			t.Fatalf("resume job ended %s: %s", v.State, v.Error)
		}
		return v.State == jobs.StateDone
	})
	r, err := http.Get(hs.URL + "/jobs/" + partial.ResumeJob.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if err := json.NewDecoder(r.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}

	// Exact reference: the same cell without a deadline (partials never
	// warm the cache, so this runs the full enumeration).
	resp, exact := postQoS(t, hs.URL, "", `{"graph":"slow.bin","k":2,"q":6,"mode":"count"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact query: status = %d", resp.StatusCode)
	}
	if exact.Partial || exact.Cached {
		t.Fatalf("exact query partial=%v cached=%v, want fresh full run", exact.Partial, exact.Cached)
	}
	if partial.Count <= 0 || partial.Count >= exact.Count {
		t.Fatalf("partial count = %d, want a nonzero lower bound below exact %d", partial.Count, exact.Count)
	}
	if result.Count != exact.Count {
		t.Fatalf("resumed job count = %d, exact = %d", result.Count, exact.Count)
	}
	if result.MaxSize != exact.MaxSize {
		t.Fatalf("resumed job maxSize = %d, exact = %d", result.MaxSize, exact.MaxSize)
	}
}

// TestSampledQueryEstimates checks the sampling mode end to end against a
// golden cell: deterministic estimate with a self-consistent confidence
// interval, cache separation from the exact result, and an exact answer
// that stays exact afterwards.
func TestSampledQueryEstimates(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	want := readGolden(t, "planted-a", 2, 6)

	body := `{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count","sample":0.5}`
	resp, est := postQoS(t, hs.URL, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sampled query: status = %d", resp.StatusCode)
	}
	if est.Sample == nil {
		t.Fatal("sampled query returned no sample detail")
	}
	if est.Sample.Rate < 0.5 || est.Sample.Rate > 1 {
		t.Fatalf("effective rate = %v, want within [0.5, 1]", est.Sample.Rate)
	}
	if est.Sample.SampledSeeds <= 0 || est.Sample.SampledSeeds > est.Sample.TotalSeeds {
		t.Fatalf("sampledSeeds = %d of %d", est.Sample.SampledSeeds, est.Sample.TotalSeeds)
	}
	if est.Count != int64(math.Round(est.Sample.Count)) {
		t.Fatalf("count %d does not round the estimate %v", est.Count, est.Sample.Count)
	}
	if est.Sample.CI95Lo > est.Sample.Count || est.Sample.Count > est.Sample.CI95Hi {
		t.Fatalf("estimate %v outside its own CI [%v, %v]", est.Sample.Count, est.Sample.CI95Lo, est.Sample.CI95Hi)
	}
	// Half the seed space sampled: the estimate must land in the right
	// neighbourhood of the exact count (deterministic: fixed salt).
	relErr := math.Abs(est.Sample.Count-float64(want.Count)) / float64(want.Count)
	if relErr > 0.5 {
		t.Fatalf("estimate %v vs exact %d: relative error %v > 0.5", est.Sample.Count, want.Count, relErr)
	}

	// Identical sampled query: served from the cache under its own key.
	resp, again := postQoS(t, hs.URL, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat sampled query: status = %d", resp.StatusCode)
	}
	if !again.Cached || again.Count != est.Count {
		t.Fatalf("repeat sampled query cached=%v count=%d, want cached copy of %d", again.Cached, again.Count, est.Count)
	}

	// The exact query is a different cache entry and stays exact.
	resp, exact := postQoS(t, hs.URL, "", `{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact query: status = %d", resp.StatusCode)
	}
	if exact.Cached || exact.Sample != nil {
		t.Fatalf("exact query cached=%v sample=%v, want fresh exact run", exact.Cached, exact.Sample)
	}
	if exact.Count != want.Count {
		t.Fatalf("exact count = %d, golden %d", exact.Count, want.Count)
	}
}

// TestSampledHistogramEstimates checks the scaled histogram payload.
func TestSampledHistogramEstimates(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	want := readGolden(t, "planted-a", 2, 6)
	resp, est := postQoS(t, hs.URL, "",
		`{"graph":"corpus:planted-a","k":2,"q":6,"mode":"histogram","sample":0.5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if est.Sample == nil || len(est.Histogram) == 0 {
		t.Fatalf("sample=%v histogram=%v, want both populated", est.Sample, est.Histogram)
	}
	var sum int64
	for _, c := range est.Histogram {
		sum += c
	}
	// Scaled bucket counts should reconstruct the estimated total within
	// rounding slack (one unit per bucket).
	if diff := sum - est.Count; diff < -int64(len(est.Histogram)) || diff > int64(len(est.Histogram)) {
		t.Fatalf("scaled histogram sums to %d, estimate %d", sum, est.Count)
	}
	if relErr := math.Abs(float64(sum-want.Count)) / float64(want.Count); relErr > 0.5 {
		t.Fatalf("scaled histogram total %d vs exact %d: relative error %v", sum, want.Count, relErr)
	}
}

// TestSampleValidation pins the request-validation rules for sampling.
func TestSampleValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for _, bad := range []string{
		`{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count","sample":1.5}`,
		`{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count","sample":-0.1}`,
		`{"graph":"corpus:planted-a","k":2,"q":6,"mode":"topk","sample":0.5}`,
		`{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count","sample":0.5,"deadlineMs":100}`,
		`{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count","deadlineMs":-5}`,
	} {
		resp, _ := postQoS(t, hs.URL, "", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestStatsTenantSnapshot checks that /stats exposes the per-tenant QoS
// view and that header-supplied tenants are sanitized into it.
func TestStatsTenantSnapshot(t *testing.T) {
	_, hs := newTestServer(t, Config{
		Tenants: []qos.TenantConfig{{Name: "gold", Weight: 3}},
	})
	resp, _ := postQoS(t, hs.URL, "gold", `{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	resp, _ = postQoS(t, hs.URL, "has space!", `{"graph":"corpus:planted-a","k":3,"q":7,"mode":"count"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	r, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var out struct {
		Tenants []qos.TenantSnapshot `json:"tenants"`
	}
	if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	byName := map[string]qos.TenantSnapshot{}
	for _, ts := range out.Tenants {
		byName[ts.Name] = ts
	}
	gold, ok := byName["gold"]
	if !ok {
		t.Fatalf("tenant gold missing from /stats tenants: %v", out.Tenants)
	}
	if gold.Weight != 3 || gold.Admitted < 1 {
		t.Fatalf("gold snapshot = %+v, want weight 3 and at least one admission", gold)
	}
	if _, ok := byName["has_space_"]; !ok {
		t.Fatalf("sanitized tenant missing from /stats tenants: %v", out.Tenants)
	}
}

// TestTenantMetricsExposed checks the Prometheus endpoint publishes the
// per-tenant families with sanitized label values.
func TestTenantMetricsExposed(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, _ := postQoS(t, hs.URL, "acme", `{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	r, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	data, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	for _, want := range []string{
		`kplexd_tenant_queries_total{tenant="acme"} 1`,
		`kplexd_tenant_admitted_total{tenant="acme"} 1`,
		`kplexd_tenant_admission_wait_seconds_count{tenant="acme"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
