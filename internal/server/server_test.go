package server

// In-process integration tests for kplexd: a real HTTP server on a
// loopback listener, hit with concurrent identical and distinct queries.
// Correctness is pinned against the committed golden corpus
// (internal/kplex/testdata/golden) and batching/caching behaviour against
// the server's exact accounting invariant
//
//	cache_hits + flight_shared + executions == queries.
//
// CI runs this package under -race.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// goldenCase mirrors the committed golden files.
type goldenCase struct {
	Graph   string `json:"graph"`
	K       int    `json:"k"`
	Q       int    `json:"q"`
	Count   int64  `json:"count"`
	MaxSize int    `json:"maxSize"`
	SHA256  string `json:"sha256"`
}

func readGolden(t *testing.T, name string, k, q int) goldenCase {
	t.Helper()
	path := filepath.Join("..", "kplex", "testdata", "golden",
		fmt.Sprintf("%s_k%d_q%d.json", name, k, q))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden corpus missing (generate with go test ./internal/kplex -run TestGolden -update): %v", err)
	}
	var c goldenCase
	if err := json.Unmarshal(data, &c); err != nil {
		t.Fatal(err)
	}
	return c
}

// apiResponse mirrors queryResponse for decoding.
type apiResponse struct {
	Graph     string           `json:"graph"`
	Digest    string           `json:"digest"`
	Count     int64            `json:"count"`
	MaxSize   int              `json:"maxSize"`
	Cached    bool             `json:"cached"`
	Shared    bool             `json:"shared"`
	TopK      [][]int          `json:"topk"`
	Histogram map[string]int64 `json:"histogram"`
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

func postQuery(t *testing.T, url string, body string) (int, apiResponse) {
	t.Helper()
	resp, err := http.Post(url+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out apiResponse
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("bad response %s: %v", data, err)
		}
	}
	return resp.StatusCode, out
}

func stats(t *testing.T, url string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Counters
}

// TestQueryModesMatchGolden answers count, topk and histogram queries for
// golden cells and checks them against the committed outputs.
func TestQueryModesMatchGolden(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for _, cell := range []struct {
		name string
		k, q int
	}{
		{"planted-a", 2, 6},
		{"sbm-blocks", 3, 8},
		{"regular-flat", 2, 4},
	} {
		want := readGolden(t, cell.name, cell.k, cell.q)
		body := fmt.Sprintf(`{"graph":"corpus:%s","k":%d,"q":%d,"mode":"count"}`, cell.name, cell.k, cell.q)
		code, got := postQuery(t, hs.URL, body)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", cell.name, code)
		}
		if got.Count != want.Count || got.MaxSize != want.MaxSize {
			t.Errorf("%s: count=%d maxSize=%d, golden count=%d maxSize=%d",
				cell.name, got.Count, got.MaxSize, want.Count, want.MaxSize)
		}

		body = fmt.Sprintf(`{"graph":"corpus:%s","k":%d,"q":%d,"mode":"histogram"}`, cell.name, cell.k, cell.q)
		code, hist := postQuery(t, hs.URL, body)
		if code != http.StatusOK {
			t.Fatalf("%s histogram: status %d", cell.name, code)
		}
		var sum int64
		for _, c := range hist.Histogram {
			sum += c
		}
		if sum != want.Count {
			t.Errorf("%s: histogram sums to %d, golden count %d", cell.name, sum, want.Count)
		}

		body = fmt.Sprintf(`{"graph":"corpus:%s","k":%d,"q":%d,"mode":"topk","topn":3}`, cell.name, cell.k, cell.q)
		code, topk := postQuery(t, hs.URL, body)
		if code != http.StatusOK {
			t.Fatalf("%s topk: status %d", cell.name, code)
		}
		if want.Count > 0 {
			if len(topk.TopK) == 0 || len(topk.TopK[0]) != want.MaxSize {
				t.Errorf("%s: topk[0] size %d, golden maxSize %d", cell.name, len(topk.TopK), want.MaxSize)
			}
			for i := 1; i < len(topk.TopK); i++ {
				if len(topk.TopK[i]) > len(topk.TopK[i-1]) {
					t.Errorf("%s: topk not sorted by size", cell.name)
				}
			}
		}
	}
}

// TestSingleflightCollapsesDuplicates fires N concurrent identical
// queries on a cold cache: exactly one enumeration may run, everyone else
// must share it (in flight) or hit the cache it filled.
func TestSingleflightCollapsesDuplicates(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	want := readGolden(t, "chunglu-tail", 3, 8)
	const n = 16
	body := `{"graph":"corpus:chunglu-tail","k":3,"q":8,"mode":"count","threads":2}`

	var wg sync.WaitGroup
	counts := make([]int64, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = 0, apiResponse{}
			code, resp := postQuery(t, hs.URL, body)
			codes[i], counts[i] = code, resp.Count
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if counts[i] != want.Count {
			t.Errorf("request %d: count %d, golden %d", i, counts[i], want.Count)
		}
	}
	m := stats(t, hs.URL)
	if m["executions"] != 1 {
		t.Errorf("executions = %d, want 1 (singleflight failed to collapse)", m["executions"])
	}
	if m["queries"] != n {
		t.Errorf("queries = %d, want %d", m["queries"], n)
	}
	if got := m["cache_hits"] + m["flight_shared"] + m["executions"]; got != n {
		t.Errorf("cache_hits(%d) + flight_shared(%d) + executions(%d) = %d, want %d",
			m["cache_hits"], m["flight_shared"], m["executions"], got, n)
	}

	// Distinct queries must not share: a different (k, q) executes anew.
	code, resp := postQuery(t, hs.URL, `{"graph":"corpus:chunglu-tail","k":2,"q":6,"mode":"count","threads":2}`)
	if code != http.StatusOK {
		t.Fatalf("distinct query: status %d", code)
	}
	if g2 := readGolden(t, "chunglu-tail", 2, 6); resp.Count != g2.Count {
		t.Errorf("distinct query count %d, golden %d", resp.Count, g2.Count)
	}
	if m := stats(t, hs.URL); m["executions"] != 2 {
		t.Errorf("executions after distinct query = %d, want 2", m["executions"])
	}
}

// TestCacheKeyedByDigest registers the same graph content under a second
// name (a binary file in the data dir): querying it must be answered from
// the cache entry the corpus name created, because the cache keys on the
// content digest, not the name.
func TestCacheKeyedByDigest(t *testing.T) {
	dir := t.TempDir()
	g := gen.CorpusGraphByName("planted-a").Build()
	if err := graph.WriteFormatFile(filepath.Join(dir, "copy.bin"), g, graph.FormatBinary); err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{DataDir: dir})

	code, first := postQuery(t, hs.URL, `{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	code, second := postQuery(t, hs.URL, `{"graph":"copy.bin","k":2,"q":6,"mode":"count"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if first.Digest != second.Digest {
		t.Fatalf("digests differ: %s vs %s", first.Digest, second.Digest)
	}
	if !second.Cached {
		t.Error("identical content under a second name missed the cache")
	}
	if m := stats(t, hs.URL); m["executions"] != 1 {
		t.Errorf("executions = %d, want 1", m["executions"])
	}
}

// readStream consumes an NDJSON stream response: plex lines then summary.
func readStream(t *testing.T, r io.Reader, stopAfter int) (plexes [][]int, summary *streamSummary) {
	t.Helper()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if line[0] == '{' {
			summary = new(streamSummary)
			if err := json.Unmarshal(line, summary); err != nil {
				t.Fatalf("bad summary line %s: %v", line, err)
			}
			return plexes, summary
		}
		var p []int
		if err := json.Unmarshal(line, &p); err != nil {
			t.Fatalf("bad plex line %s: %v", line, err)
		}
		plexes = append(plexes, p)
		if stopAfter > 0 && len(plexes) >= stopAfter {
			return plexes, nil
		}
	}
	return plexes, nil
}

// TestStreamEndpoint streams a golden cell completely and checks count,
// validity and the final summary.
func TestStreamEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	want := readGolden(t, "ws-ring", 2, 6)
	resp, err := http.Get(hs.URL + "/stream?graph=corpus:ws-ring&k=2&q=6")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	plexes, summary := readStream(t, resp.Body, 0)
	if int64(len(plexes)) != want.Count {
		t.Errorf("streamed %d plexes, golden count %d", len(plexes), want.Count)
	}
	if summary == nil || !summary.Done || summary.Truncated || summary.Count != want.Count {
		t.Errorf("summary = %+v, want done with count %d", summary, want.Count)
	}
	g := gen.CorpusGraphByName("ws-ring").Build()
	for _, p := range plexes[:min(len(plexes), 25)] {
		if !graph.IsMaximalKPlex(g, p, 2) {
			t.Fatalf("streamed set %v is not a maximal 2-plex", p)
		}
	}
}

// TestStreamClientDisconnect abandons a stream early: the server must
// cancel the enumeration (streams_cancelled counter) and release its
// admission slot so later queries run.
func TestStreamClientDisconnect(t *testing.T) {
	dir := t.TempDir()
	// A large dense graph whose enumeration far outlasts the test's reads.
	if err := graph.WriteFormatFile(filepath.Join(dir, "big.bin"), gen.GNP(300, 0.25, 9), graph.FormatBinary); err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{
		DataDir:       dir,
		MaxConcurrent: 1,
		StreamBuffer:  4,
	})
	resp, err := http.Get(hs.URL + "/stream?graph=big.bin&k=3&q=6&threads=2")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if plexes, _ := readStream(t, resp.Body, 8); len(plexes) < 8 {
		t.Fatalf("read %d plexes before disconnecting", len(plexes))
	}
	resp.Body.Close() // drop the client mid-stream

	// The slot must come back and the cancellation must be scored.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := stats(t, hs.URL)
		if m["streams_cancelled"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream cancellation never recorded: %v", m)
		}
		time.Sleep(20 * time.Millisecond)
	}
	code, got := postQuery(t, hs.URL, `{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}`)
	if code != http.StatusOK {
		t.Fatalf("query after disconnect: status %d", code)
	}
	if want := readGolden(t, "planted-a", 2, 6); got.Count != want.Count {
		t.Errorf("count %d, golden %d", got.Count, want.Count)
	}
}

// TestAdmissionControl holds the single enumeration slot with a stream
// and expects an immediate 429 for a concurrent query, plus a 409 for
// evicting the in-use graph.
func TestAdmissionControl(t *testing.T) {
	dir := t.TempDir()
	if err := graph.WriteFormatFile(filepath.Join(dir, "big.bin"), gen.GNP(300, 0.25, 9), graph.FormatBinary); err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{
		DataDir:          dir,
		MaxConcurrent:    1,
		AdmissionTimeout: 100 * time.Millisecond,
		StreamBuffer:     2,
	})
	resp, err := http.Get(hs.URL + "/stream?graph=big.bin&k=3&q=6")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// One delivered plex proves the stream holds the slot.
	if plexes, _ := readStream(t, resp.Body, 1); len(plexes) != 1 {
		t.Fatal("stream produced nothing")
	}

	code, _ := postQuery(t, hs.URL, `{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}`)
	if code != http.StatusTooManyRequests {
		t.Errorf("query while saturated: status %d, want 429", code)
	}
	m := stats(t, hs.URL)
	if m["rejected"] < 1 {
		t.Errorf("rejected = %d, want >= 1", m["rejected"])
	}

	// The streamed graph is pinned: eviction must refuse.
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/graphs/big.bin", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusConflict {
		t.Errorf("evicting an in-use graph: status %d, want 409", dresp.StatusCode)
	}
}

// TestRegistryEviction exceeds the resident cap and checks LRU eviction
// plus the explicit eviction endpoint.
func TestRegistryEviction(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxResidentGraphs: 1})
	for _, g := range []string{"corpus:planted-a", "corpus:ws-ring"} {
		code, _ := postQuery(t, hs.URL, fmt.Sprintf(`{"graph":"%s","k":2,"q":6,"mode":"count"}`, g))
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", g, code)
		}
	}
	resp, err := http.Get(hs.URL + "/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var infos []GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Name != "corpus:ws-ring" {
		t.Fatalf("resident graphs = %+v, want only corpus:ws-ring", infos)
	}
	if m := stats(t, hs.URL); m["graph_evictions"] != 1 {
		t.Errorf("graph_evictions = %d, want 1", m["graph_evictions"])
	}

	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/graphs/corpus:ws-ring", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("explicit evict: status %d", dresp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, hs.URL+"/graphs/corpus:ws-ring", nil)
	dresp, _ = http.DefaultClient.Do(req)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("evicting absent graph: status %d, want 404", dresp.StatusCode)
	}
}

// TestBadRequests covers the validation and lookup error paths.
func TestBadRequests(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	cases := []struct {
		body string
		want int
	}{
		{`{"graph":"corpus:no-such","k":2,"q":6,"mode":"count"}`, http.StatusNotFound},
		{`{"graph":"../etc/passwd","k":2,"q":6,"mode":"count"}`, http.StatusNotFound},
		{`{"graph":"corpus:planted-a","k":0,"q":6,"mode":"count"}`, http.StatusBadRequest},
		{`{"graph":"corpus:planted-a","k":99,"q":200,"mode":"count"}`, http.StatusBadRequest},
		{`{"graph":"corpus:planted-a","k":2,"q":2,"mode":"count"}`, http.StatusBadRequest}, // q < 2k-1
		{`{"graph":"corpus:planted-a","k":2,"q":6,"mode":"nope"}`, http.StatusBadRequest},
		{`{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count","scheduler":"wat"}`, http.StatusBadRequest},
		{`{"graph":"corpus:planted-a","k":2,"q":6,"mode":"topk","topn":100000}`, http.StatusBadRequest},
		{`{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count","threads":100000000}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code, _ := postQuery(t, hs.URL, c.body); code != c.want {
			t.Errorf("%s: status %d, want %d", c.body, code, c.want)
		}
	}
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
}
