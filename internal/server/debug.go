package server

// The live introspection plane. Three JSON endpoints ride the main API
// mux — they are cheap, read-only snapshots:
//
//	GET /debug/queries      in-flight queries: kind, stage, age,
//	                        seeds done/total, predicted vs elapsed
//	GET /debug/traces       recent finished traces (?n= caps the list)
//	GET /debug/traces/{id}  one finished trace with all spans
//
// The pprof surface does NOT ride the main mux: profiles block the
// process for seconds and belong on a loopback-only listener. kplexd
// serves DebugHandler on -debug-addr for that.

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/obs"
)

func (s *Server) debugRoutes() {
	s.mux.HandleFunc("GET /debug/queries", s.handleDebugQueries)
	s.mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	s.mux.HandleFunc("GET /debug/traces/{id}", s.handleDebugTrace)
}

// DebugHandler returns the handler for the private debug listener
// (kplexd's -debug-addr): the introspection endpoints plus net/http/pprof.
// The pprof handlers are registered explicitly rather than through the
// package's DefaultServeMux side effect, so nothing here leaks onto the
// public API surface.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/queries", s.handleDebugQueries)
	mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleDebugTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleDebugQueries(w http.ResponseWriter, _ *http.Request) {
	qs := s.inflight.Snapshot()
	if qs == nil {
		qs = []obs.QueryInfo{} // encode as [] rather than null
	}
	writeJSON(w, http.StatusOK, map[string]any{"inflight": qs})
}

func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	if n <= 0 {
		n = 32
	}
	ts := s.tracer.Recent(n)
	if ts == nil {
		ts = []obs.TraceData{}
	}
	writeJSON(w, http.StatusOK, ts)
}

func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	td, ok := s.tracer.Get(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, "no such trace: evicted from the ring, not sampled, or still in flight")
		return
	}
	writeJSON(w, http.StatusOK, td)
}

// slowRecord is one line of the slow-query NDJSON log.
type slowRecord struct {
	Time      time.Time `json:"time"` // when the request started
	Kind      string    `json:"kind"` // query | stream | batch
	Graph     string    `json:"graph"`
	K         int       `json:"k,omitempty"`
	Q         int       `json:"q,omitempty"`
	Mode      string    `json:"mode,omitempty"`
	Items     int       `json:"items,omitempty"` // batch only
	TraceID   string    `json:"traceId,omitempty"`
	ElapsedMS float64   `json:"elapsedMs"`
}

// recordSlow appends rec to the slow-query log when the elapsed time since
// started crosses the threshold. Callers invoke it unconditionally on
// their completion path; the fast path is two loads and a compare.
func (s *Server) recordSlow(rec slowRecord, started time.Time) {
	elapsed := time.Since(started)
	if s.slow == nil || elapsed < s.cfg.SlowQueryThreshold {
		return
	}
	rec.Time = started
	rec.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	s.slow.Record(rec)
}
