package server

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/store"
)

// Registry keeps parsed graphs resident so queries stop paying a full
// parse per request. Entries are loaded once (concurrent first requests
// for the same graph share one load), refcounted while queries run over
// them, and evicted least-recently-used once the resident cap is
// exceeded — but only when idle, so an in-flight enumeration never loses
// its graph (Go's GC keeps the evicted *Graph alive for whoever still
// holds it; the registry merely forgets the name).
type Registry struct {
	maxResident int
	loader      func(name string) (graph.CSR, error)
	onLoad      func()
	onEvict     func()

	mu      sync.Mutex
	entries map[string]*GraphEntry
	loading map[string]*sync.WaitGroup
}

// GraphEntry is one resident graph: either a fully parsed in-memory
// *graph.Graph or an mmap-backed *store.Reader — everything downstream of
// the registry speaks graph.CSR and cannot tell the difference. Immutable
// after load except for the registry-managed refcount and timestamps.
type GraphEntry struct {
	Name   string
	G      graph.CSR
	Digest string // graph.DigestHexOf: content identity for cache keying

	refs     int
	loadedAt time.Time
	lastUse  time.Time
}

// GraphInfo is the /graphs listing row.
type GraphInfo struct {
	Name     string    `json:"name"`
	Digest   string    `json:"digest"`
	N        int       `json:"n"`
	M        int       `json:"m"`
	Refs     int       `json:"refs"`
	LoadedAt time.Time `json:"loadedAt"`
	LastUse  time.Time `json:"lastUse"`
}

// NewRegistry returns a registry holding at most maxResident graphs
// (idle ones beyond the cap are evicted LRU; pinned ones may exceed it).
// loader resolves a graph name to a parsed graph.
func NewRegistry(maxResident int, loader func(string) (graph.CSR, error)) *Registry {
	if maxResident < 1 {
		maxResident = 1
	}
	return &Registry{
		maxResident: maxResident,
		loader:      loader,
		entries:     make(map[string]*GraphEntry),
		loading:     make(map[string]*sync.WaitGroup),
	}
}

// setHooks wires the metrics callbacks (nil-safe).
func (r *Registry) setHooks(onLoad, onEvict func()) {
	r.onLoad, r.onEvict = onLoad, onEvict
}

// Acquire returns the named graph, loading it on first use, and pins it
// against eviction until the matching Release. Concurrent acquires of an
// absent graph perform one load.
func (r *Registry) Acquire(name string) (*GraphEntry, error) {
	r.mu.Lock()
	for {
		if e, ok := r.entries[name]; ok {
			e.refs++
			e.lastUse = time.Now()
			r.mu.Unlock()
			return e, nil
		}
		wg, inFlight := r.loading[name]
		if !inFlight {
			break
		}
		// Another goroutine is loading this graph; wait and re-check. If
		// its load failed we retry the load ourselves.
		r.mu.Unlock()
		wg.Wait()
		r.mu.Lock()
	}
	wg := new(sync.WaitGroup)
	wg.Add(1)
	r.loading[name] = wg
	r.mu.Unlock()

	// The in-flight marker must be cleared even if the loader panics (a
	// corrupt file tripping a parser bug, say): net/http recovers handler
	// panics and keeps serving, so a leaked marker would wedge every future
	// Acquire of this name in wg.Wait forever. The panic itself still
	// propagates; only the cleanup is deferred. On the normal paths the
	// marker is cleared below, atomically with registering the entry, so
	// waiters never observe "no entry, no load in flight" after a
	// successful load.
	loaded := false
	defer func() {
		if !loaded {
			r.mu.Lock()
			delete(r.loading, name)
			wg.Done()
			r.mu.Unlock()
		}
	}()
	g, err := r.loader(name)
	loaded = true

	r.mu.Lock()
	delete(r.loading, name)
	wg.Done()
	if err != nil {
		r.mu.Unlock()
		return nil, err
	}
	now := time.Now()
	e := &GraphEntry{
		Name:     name,
		G:        g,
		Digest:   graph.DigestHexOf(g),
		refs:     1,
		loadedAt: now,
		lastUse:  now,
	}
	r.entries[name] = e
	if r.onLoad != nil {
		r.onLoad()
	}
	r.evictOverCapLocked()
	r.mu.Unlock()
	return e, nil
}

// Release unpins an entry acquired with Acquire.
func (r *Registry) Release(e *GraphEntry) {
	r.mu.Lock()
	e.refs--
	e.lastUse = time.Now()
	r.evictOverCapLocked()
	r.mu.Unlock()
}

// evictOverCapLocked drops idle least-recently-used entries until the
// resident count fits the cap (or only pinned entries remain).
func (r *Registry) evictOverCapLocked() {
	for len(r.entries) > r.maxResident {
		var victim *GraphEntry
		for _, e := range r.entries {
			if e.refs > 0 {
				continue
			}
			if victim == nil || e.lastUse.Before(victim.lastUse) {
				victim = e
			}
		}
		if victim == nil {
			return // everything is pinned; stay over cap until releases
		}
		delete(r.entries, victim.Name)
		closeEntryGraph(victim)
		if r.onEvict != nil {
			r.onEvict()
		}
	}
}

// closeEntryGraph releases an evicted entry's backing resources. For
// in-memory graphs this is a no-op (the GC keeps the *Graph alive for any
// result or handle still referencing it); a store-backed graph holds an
// mmap, which must be released eagerly — an eviction-churned registry
// would otherwise exhaust address space and file descriptors long before
// the GC noticed. Every caller guarantees refs == 0, which is exactly the
// munmap-safety condition: no query is inside Degree/Neighbors, and the
// decoded blocks any still-held result aliases are heap copies, not mmap
// pages, so they survive the unmap.
func closeEntryGraph(e *GraphEntry) {
	if c, ok := e.G.(io.Closer); ok {
		c.Close() //nolint:errcheck // eviction is best-effort cleanup
	}
}

// Sentinel errors for Evict, so handlers can map them to status codes.
var (
	ErrNotResident = fmt.Errorf("graph is not resident")
	ErrInUse       = fmt.Errorf("graph is in use")
)

// Evict removes the named graph immediately. It fails while queries are
// running over it.
func (r *Registry) Evict(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return fmt.Errorf("graph %q: %w", name, ErrNotResident)
	}
	if e.refs > 0 {
		return fmt.Errorf("graph %q: %w (%d queries)", name, ErrInUse, e.refs)
	}
	delete(r.entries, name)
	closeEntryGraph(e)
	if r.onEvict != nil {
		r.onEvict()
	}
	return nil
}

// List returns the resident graphs sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GraphInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, GraphInfo{
			Name:     e.Name,
			Digest:   e.Digest,
			N:        e.G.N(),
			M:        e.G.M(),
			Refs:     e.refs,
			LoadedAt: e.loadedAt,
			LastUse:  e.lastUse,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of resident graphs.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// corpusPrefix names the builtin seeded generator graphs (gen.Corpus):
// "corpus:planted-a" etc. They need no data directory, which is what makes
// a kplexd useful out of the box and lets the integration tests run
// hermetically.
const corpusPrefix = "corpus:"

// NewLoader returns the standard name resolver: "corpus:<name>" builds
// the builtin corpus graph; otherwise the catalog (when configured) is
// consulted first, serving registered store files mmap-backed with the
// manifest digest verified in O(1); anything else is a file path inside
// dataDir — *.kpg opened as an mmap store, everything else parsed with
// format auto-detection. An empty dataDir with no catalog serves only the
// corpus. Paths escaping dataDir are rejected.
func NewLoader(dataDir string, cat *store.Catalog) func(string) (graph.CSR, error) {
	return func(name string) (graph.CSR, error) {
		if rest, ok := strings.CutPrefix(name, corpusPrefix); ok {
			cg := gen.CorpusGraphByName(rest)
			if cg == nil {
				return nil, fmt.Errorf("unknown corpus graph %q", rest)
			}
			return cg.Build(), nil
		}
		if cat != nil && cat.Lookup(name) != nil {
			return cat.OpenGraph(name)
		}
		if dataDir == "" {
			if cat != nil {
				return nil, fmt.Errorf("graph %q: not in the catalog and no data directory configured", name)
			}
			return nil, fmt.Errorf("graph %q: no data directory configured (only %s* names are servable)", name, corpusPrefix)
		}
		if name == "" || filepath.IsAbs(name) {
			return nil, fmt.Errorf("graph name must be a relative path, got %q", name)
		}
		clean := filepath.Clean(name)
		if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
			return nil, fmt.Errorf("graph name %q escapes the data directory", name)
		}
		path := filepath.Join(dataDir, clean)
		if strings.HasSuffix(clean, store.StoreExt) {
			return store.OpenFile(path)
		}
		rr, err := graph.ReadAnyFile(path)
		if err != nil {
			return nil, err
		}
		return rr.Graph, nil
	}
}
