package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
)

// metrics are the server's monotonic counters. They exist for operations
// (the /stats endpoint) and for the integration tests, which assert the
// batching behaviour — "N identical concurrent queries, one execution" —
// through Executions, FlightShared and CacheHits rather than by timing.
type metrics struct {
	Queries          atomic.Int64 // cacheable queries accepted (count/topk/histogram; batch items count individually)
	Batches          atomic.Int64 // POST /batch requests accepted
	Streams          atomic.Int64 // streaming queries accepted
	Executions       atomic.Int64 // enumerations actually run for cacheable queries
	CacheHits        atomic.Int64 // answered straight from the result cache
	CacheMisses      atomic.Int64 // had to consult singleflight (shared or executed)
	FlightShared     atomic.Int64 // joined an in-flight identical query
	Rejected         atomic.Int64 // turned away by admission control (429)
	Errors           atomic.Int64 // requests that ended in a 4xx/5xx other than 429
	GraphLoads       atomic.Int64 // registry loads (not cache-resident reuses)
	GraphEvictions   atomic.Int64 // registry evictions (LRU or explicit)
	StreamedPlexes   atomic.Int64 // plexes delivered over stream responses
	StreamsCancelled atomic.Int64 // streams ended by client disconnect / ctx
	PreparedHits     atomic.Int64 // runs served a resident prepared-graph handle
	PreparedMisses   atomic.Int64 // runs that had to compute the prologue
	AutoTuned        atomic.Int64 // scheduler=auto queries tuned from the cost model
	RoutedAsync      atomic.Int64 // route=auto queries converted into background jobs
	CostObservations atomic.Int64 // measured runtimes fed to the cost calibrator
	RangeRuns        atomic.Int64 // distributed seed ranges served as a cluster worker
}

// snapshot returns the counters as a plain map for JSON encoding.
func (m *metrics) snapshot() map[string]int64 {
	return map[string]int64{
		"queries":           m.Queries.Load(),
		"batches":           m.Batches.Load(),
		"streams":           m.Streams.Load(),
		"executions":        m.Executions.Load(),
		"cache_hits":        m.CacheHits.Load(),
		"cache_misses":      m.CacheMisses.Load(),
		"flight_shared":     m.FlightShared.Load(),
		"rejected":          m.Rejected.Load(),
		"errors":            m.Errors.Load(),
		"graph_loads":       m.GraphLoads.Load(),
		"graph_evictions":   m.GraphEvictions.Load(),
		"streamed_plexes":   m.StreamedPlexes.Load(),
		"streams_cancelled": m.StreamsCancelled.Load(),
		"prepared_hits":     m.PreparedHits.Load(),
		"prepared_misses":   m.PreparedMisses.Load(),
		"auto_tuned":        m.AutoTuned.Load(),
		"routed_async":      m.RoutedAsync.Load(),
		"cost_observations": m.CostObservations.Load(),
		"range_runs":        m.RangeRuns.Load(),
	}
}

// promGauges names the metrics that are instantaneous values rather than
// monotonic counters; everything else gets Prometheus counter semantics
// (and the conventional _total suffix).
var promGauges = map[string]bool{
	"cache_entries":        true,
	"resident_graphs":      true,
	"prepared_entries":     true,
	"jobs_running":         true,
	"jobs_queued":          true,
	"cluster_jobs_running": true,
	"cluster_jobs_queued":  true,
}

// handleMetricsProm serves GET /metrics in the Prometheus text exposition
// format: every /stats counter plus the occupancy gauges and, when the job
// subsystem is enabled, its counters and gauges — so the JSON endpoint
// stays for humans and scripts while scrapers get the standard format.
func (s *Server) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	snap := s.Metrics()
	snap["cache_entries"] = int64(s.cache.len())
	snap["resident_graphs"] = int64(s.reg.Len())
	snap["prepared_entries"] = int64(s.prep.len())

	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, name := range names {
		metric, kind := "kplexd_"+name+"_total", "counter"
		if promGauges[name] {
			metric, kind = "kplexd_"+name, "gauge"
		}
		fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", metric, kind, metric, snap[name])
	}
}
