package server

import "sync/atomic"

// metrics are the server's monotonic counters. They exist for operations
// (the /stats endpoint) and for the integration tests, which assert the
// batching behaviour — "N identical concurrent queries, one execution" —
// through Executions, FlightShared and CacheHits rather than by timing.
type metrics struct {
	Queries          atomic.Int64 // cacheable queries accepted (count/topk/histogram)
	Streams          atomic.Int64 // streaming queries accepted
	Executions       atomic.Int64 // enumerations actually run for cacheable queries
	CacheHits        atomic.Int64 // answered straight from the result cache
	CacheMisses      atomic.Int64 // had to consult singleflight (shared or executed)
	FlightShared     atomic.Int64 // joined an in-flight identical query
	Rejected         atomic.Int64 // turned away by admission control (429)
	Errors           atomic.Int64 // requests that ended in a 4xx/5xx other than 429
	GraphLoads       atomic.Int64 // registry loads (not cache-resident reuses)
	GraphEvictions   atomic.Int64 // registry evictions (LRU or explicit)
	StreamedPlexes   atomic.Int64 // plexes delivered over stream responses
	StreamsCancelled atomic.Int64 // streams ended by client disconnect / ctx
}

// snapshot returns the counters as a plain map for JSON encoding.
func (m *metrics) snapshot() map[string]int64 {
	return map[string]int64{
		"queries":           m.Queries.Load(),
		"streams":           m.Streams.Load(),
		"executions":        m.Executions.Load(),
		"cache_hits":        m.CacheHits.Load(),
		"cache_misses":      m.CacheMisses.Load(),
		"flight_shared":     m.FlightShared.Load(),
		"rejected":          m.Rejected.Load(),
		"errors":            m.Errors.Load(),
		"graph_loads":       m.GraphLoads.Load(),
		"graph_evictions":   m.GraphEvictions.Load(),
		"streamed_plexes":   m.StreamedPlexes.Load(),
		"streams_cancelled": m.StreamsCancelled.Load(),
	}
}
