package server

import (
	"net/http"
	"sort"
	"sync/atomic"

	"repro/internal/obs"
)

// metrics are the server's monotonic counters. They exist for operations
// (the /stats endpoint) and for the integration tests, which assert the
// batching behaviour — "N identical concurrent queries, one execution" —
// through Executions, FlightShared and CacheHits rather than by timing.
type metrics struct {
	Queries           atomic.Int64 // cacheable queries accepted (count/topk/histogram; batch items count individually)
	Batches           atomic.Int64 // POST /batch requests accepted
	Streams           atomic.Int64 // streaming queries accepted
	Executions        atomic.Int64 // enumerations actually run for cacheable queries
	CacheHits         atomic.Int64 // answered straight from the result cache
	CacheMisses       atomic.Int64 // had to consult singleflight (shared or executed)
	FlightShared      atomic.Int64 // joined an in-flight identical query
	Rejected          atomic.Int64 // turned away by admission control (429)
	Errors            atomic.Int64 // requests that ended in a 4xx/5xx other than 429
	GraphLoads        atomic.Int64 // registry loads (not cache-resident reuses)
	GraphEvictions    atomic.Int64 // registry evictions (LRU or explicit)
	StreamedPlexes    atomic.Int64 // plexes delivered over stream responses
	StreamsCancelled  atomic.Int64 // streams ended by client disconnect / ctx
	PreparedHits      atomic.Int64 // runs served a resident prepared-graph handle
	PreparedMisses    atomic.Int64 // runs that had to compute the prologue
	PreparedWarmLoads atomic.Int64 // prologues deserialized from the catalog instead of computed
	PreparedPersists  atomic.Int64 // computed prologues persisted to the catalog
	AutoTuned         atomic.Int64 // scheduler=auto queries tuned from the cost model
	RoutedAsync       atomic.Int64 // route=auto queries converted into background jobs
	CostObservations  atomic.Int64 // measured runtimes fed to the cost calibrator
	RangeRuns         atomic.Int64 // distributed seed ranges served as a cluster worker
	PartialAnswers    atomic.Int64 // deadline-bounded queries answered 200 partial:true
	SampledQueries    atomic.Int64 // queries answered from a seed sample estimate
	QuotaDenied       atomic.Int64 // admissions denied by a tenant's rate quota (subset of rejected)
}

// snapshot returns the counters as a plain map for JSON encoding.
func (m *metrics) snapshot() map[string]int64 {
	return map[string]int64{
		"queries":             m.Queries.Load(),
		"batches":             m.Batches.Load(),
		"streams":             m.Streams.Load(),
		"executions":          m.Executions.Load(),
		"cache_hits":          m.CacheHits.Load(),
		"cache_misses":        m.CacheMisses.Load(),
		"flight_shared":       m.FlightShared.Load(),
		"rejected":            m.Rejected.Load(),
		"errors":              m.Errors.Load(),
		"graph_loads":         m.GraphLoads.Load(),
		"graph_evictions":     m.GraphEvictions.Load(),
		"streamed_plexes":     m.StreamedPlexes.Load(),
		"streams_cancelled":   m.StreamsCancelled.Load(),
		"prepared_hits":       m.PreparedHits.Load(),
		"prepared_misses":     m.PreparedMisses.Load(),
		"prepared_warm_loads": m.PreparedWarmLoads.Load(),
		"prepared_persists":   m.PreparedPersists.Load(),
		"auto_tuned":          m.AutoTuned.Load(),
		"routed_async":        m.RoutedAsync.Load(),
		"cost_observations":   m.CostObservations.Load(),
		"range_runs":          m.RangeRuns.Load(),
		"partial_answers":     m.PartialAnswers.Load(),
		"sampled_queries":     m.SampledQueries.Load(),
		"quota_denied":        m.QuotaDenied.Load(),
	}
}

// promGauges names the metrics that are instantaneous values rather than
// monotonic counters; everything else gets Prometheus counter semantics
// (and the conventional _total suffix).
var promGauges = map[string]bool{
	"cache_entries":        true,
	"resident_graphs":      true,
	"prepared_entries":     true,
	"jobs_running":         true,
	"jobs_queued":          true,
	"cluster_jobs_running": true,
	"cluster_jobs_queued":  true,
}

// metricHelp is the registered help string of every counter and gauge the
// server can expose. TestMetricsHelpComplete (run as a CI lint step) fails
// if a key served by /metrics is missing here, so a new counter cannot
// ship without its metadata; the runtime fallback below is belt and
// braces, not a licence to skip registration.
var metricHelp = map[string]string{
	"queries":             "Cacheable queries accepted (count/topk/histogram; batch items count individually).",
	"batches":             "POST /batch requests accepted.",
	"streams":             "Streaming queries accepted.",
	"executions":          "Enumerations actually run for cacheable queries.",
	"cache_hits":          "Queries answered straight from the result cache.",
	"cache_misses":        "Queries that had to consult singleflight (shared or executed).",
	"flight_shared":       "Queries that joined an in-flight identical query.",
	"rejected":            "Requests turned away by admission control (429).",
	"errors":              "Requests that ended in a 4xx/5xx other than 429.",
	"graph_loads":         "Graph registry loads (not cache-resident reuses).",
	"graph_evictions":     "Graph registry evictions (LRU or explicit).",
	"streamed_plexes":     "Plexes delivered over stream responses.",
	"streams_cancelled":   "Streams ended by client disconnect or context cancellation.",
	"prepared_hits":       "Runs served a resident prepared-graph handle.",
	"prepared_misses":     "Runs that had to compute the prologue.",
	"prepared_warm_loads": "Prologues deserialized from the persistent catalog instead of computed.",
	"prepared_persists":   "Computed prologues persisted to the catalog.",
	"auto_tuned":          "scheduler=auto queries tuned from the cost model.",
	"routed_async":        "route=auto queries converted into background jobs.",
	"cost_observations":   "Measured runtimes fed to the cost calibrator.",
	"range_runs":          "Distributed seed ranges served as a cluster worker.",
	"partial_answers":     "Deadline-bounded queries answered 200 with partial:true (count is a lower bound).",
	"sampled_queries":     "Queries answered from a deterministic seed-sample estimate.",
	"quota_denied":        "Admissions denied by a tenant's rate quota (a subset of rejected).",

	"cache_entries":    "Result-cache entries currently resident.",
	"resident_graphs":  "Graphs currently resident in the registry.",
	"prepared_entries": "Prepared-graph prologues currently resident.",

	"jobs_submitted":   "Background jobs submitted.",
	"jobs_completed":   "Background jobs that finished successfully.",
	"jobs_failed":      "Background jobs that failed.",
	"jobs_cancelled":   "Background jobs cancelled.",
	"jobs_resumed":     "Background job incarnations resumed from a checkpoint.",
	"jobs_checkpoints": "Job checkpoint records appended to the WAL.",
	"jobs_seeds_done":  "Seed groups completed across all background jobs.",
	"jobs_running":     "Background jobs currently running.",
	"jobs_queued":      "Background jobs currently queued.",

	"cluster_jobs_submitted":    "Distributed jobs submitted to the coordinator.",
	"cluster_jobs_completed":    "Distributed jobs that finished successfully.",
	"cluster_jobs_failed":       "Distributed jobs that failed.",
	"cluster_jobs_cancelled":    "Distributed jobs cancelled.",
	"cluster_jobs_resumed":      "Distributed job incarnations resumed from the range WAL.",
	"cluster_jobs_queued":       "Distributed jobs currently queued.",
	"cluster_jobs_running":      "Distributed jobs currently running.",
	"cluster_ranges_done":       "Seed ranges completed across all distributed jobs.",
	"cluster_leases_reassigned": "Range leases lost to worker failure or expiry.",
	"cluster_leases_expired":    "Range leases expired by the progress watchdog.",
	"cluster_leases_stolen":     "Speculative straggler re-leases issued.",
	"cluster_double_reports":    "Range completions ignored because the range was already done.",
}

// serverHists are the server's latency histograms, one per execution
// surface plus the two durability-side timings (fsync, lease) and the cost
// model's prediction error. All are registered in histFamilies; a
// histogram outside that list never reaches /metrics.
type serverHists struct {
	query         *obs.Histogram // end-to-end cacheable /query wall-clock
	stream        *obs.Histogram // end-to-end /stream wall-clock
	batch         *obs.Histogram // end-to-end /batch wall-clock
	job           *obs.Histogram // background job enumeration wall-clock
	lease         *obs.Histogram // cluster range-lease round-trip
	fsync         *obs.Histogram // job WAL fsync
	admissionWait *obs.Histogram // wait for an enumeration slot (all paths)
	costLogError  *obs.Histogram // |ln(predicted) - ln(actual)| per observation
}

func newServerHists() serverHists {
	return serverHists{
		query:         obs.NewHistogram(obs.DefaultLatencyBuckets),
		stream:        obs.NewHistogram(obs.DefaultLatencyBuckets),
		batch:         obs.NewHistogram(obs.DefaultLatencyBuckets),
		job:           obs.NewHistogram(obs.DefaultLatencyBuckets),
		lease:         obs.NewHistogram(obs.DefaultLatencyBuckets),
		fsync:         obs.NewHistogram(obs.FsyncBuckets),
		admissionWait: obs.NewHistogram(obs.DefaultLatencyBuckets),
		costLogError:  obs.NewHistogram(obs.LogErrorBuckets),
	}
}

// histFamily pairs one histogram with its exposition metadata.
type histFamily struct {
	name, help string
	h          *obs.Histogram
}

// histFamilies lists every exposed histogram. The help strings double as
// the registration TestMetricsHelpComplete checks.
func (s *Server) histFamilies() []histFamily {
	return []histFamily{
		{"kplexd_query_duration_seconds", "End-to-end wall-clock of cacheable /query requests, cache hits included.", s.hist.query},
		{"kplexd_stream_duration_seconds", "End-to-end wall-clock of /stream responses, transfer included.", s.hist.stream},
		{"kplexd_batch_duration_seconds", "End-to-end wall-clock of /batch requests.", s.hist.batch},
		{"kplexd_job_duration_seconds", "Cumulative enumeration wall-clock of completed background jobs.", s.hist.job},
		{"kplexd_lease_duration_seconds", "Round-trip of one successful cluster range lease (dispatch to merge-ready).", s.hist.lease},
		{"kplexd_wal_fsync_duration_seconds", "Job checkpoint WAL fsync latency.", s.hist.fsync},
		{"kplexd_admission_wait_seconds", "Time spent waiting for an enumeration slot (queries, streams, batches, jobs, ranges).", s.hist.admissionWait},
		{"kplexd_cost_model_log_error", "Absolute natural-log error of the calibrated cost model per observed runtime (0.7 is roughly a factor of two).", s.hist.costLogError},
	}
}

// handleMetricsProm serves GET /metrics in the Prometheus text exposition
// format: every /stats counter plus the occupancy gauges, the job and
// cluster subsystems' counters when enabled, and the latency histograms —
// so the JSON endpoint stays for humans and scripts while scrapers get the
// standard format. All output funnels through obs.PromWriter, which emits
// a # HELP and # TYPE line per family (a scrape-parse test holds it to
// that).
func (s *Server) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	snap := s.Metrics()
	snap["cache_entries"] = int64(s.cache.len())
	snap["resident_graphs"] = int64(s.reg.Len())
	snap["prepared_entries"] = int64(s.prep.len())

	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	pw := obs.NewPromWriter(w)
	for _, name := range names {
		help := metricHelp[name]
		if help == "" {
			help = "kplexd metric " + name + " (help string not registered)."
		}
		if promGauges[name] {
			pw.Gauge("kplexd_"+name, help, snap[name])
		} else {
			pw.Counter("kplexd_"+name+"_total", help, snap[name])
		}
	}
	for _, f := range s.histFamilies() {
		pw.Histogram(f.name, f.help, f.h.Snapshot())
	}

	// Per-tenant families carry a {tenant="..."} label, so they live outside
	// the flat /stats snapshot (and its help-registration lint): the
	// controller's snapshot is the source of truth and empty families emit
	// nothing, so a single-tenant deployment's scrape is unchanged.
	running := map[string]int64{}
	queued := map[string]int64{}
	admitted := map[string]int64{}
	denied := map[string]int64{}
	for _, ts := range s.qos.Snapshot() {
		running[ts.Name] = int64(ts.Running)
		queued[ts.Name] = int64(ts.Queued)
		admitted[ts.Name] = ts.Admitted
		denied[ts.Name] = ts.QuotaDenied
	}
	pw.CounterVec("kplexd_tenant_queries_total", "Enumeration requests per tenant (queries, streams, batch items).", "tenant", s.tenantQueries.Snapshot())
	pw.CounterVec("kplexd_tenant_admitted_total", "Admissions granted per tenant.", "tenant", admitted)
	pw.CounterVec("kplexd_tenant_quota_denied_total", "Admissions denied by the tenant's rate quota.", "tenant", denied)
	pw.GaugeVec("kplexd_tenant_running", "Enumeration slots currently held per tenant.", "tenant", running)
	pw.GaugeVec("kplexd_tenant_queued", "Admissions currently waiting per tenant.", "tenant", queued)
	pw.HistogramVec("kplexd_tenant_admission_wait_seconds", "Admission wait per tenant.", "tenant", s.tenantWait.Snapshot())
}
