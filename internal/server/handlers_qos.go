package server

// Multi-tenant QoS surfaces of the query path: tenant identification, 429
// responses with a computed Retry-After, deadline-bounded partial answers
// with a durable resume token, and deterministic seed-sampling estimates.

import (
	"context"
	"errors"
	"hash/fnv"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/jobs"
	"repro/internal/kplex"
	"repro/internal/obs"
	"repro/internal/qos"
)

// tenantHeader names the request's tenant for admission control and the
// per-tenant metrics.
const tenantHeader = "X-Kplexd-Tenant"

// tenantOf resolves the request's tenant: the sanitized header value, or
// "default" when absent.
func tenantOf(r *http.Request) string {
	return sanitizeTenant(r.Header.Get(tenantHeader))
}

// sanitizeTenant clamps a client-supplied tenant name to a label-safe
// charset — the name flows verbatim into Prometheus label values, and one
// creative client must not be able to corrupt a scrape or mint unbounded
// series. Empty input means the default tenant.
func sanitizeTenant(name string) string {
	name = strings.TrimSpace(name)
	if name == "" {
		return "default"
	}
	if len(name) > 64 {
		name = name[:64]
	}
	var b strings.Builder
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// reject429 answers a denied admission with 429 and a Retry-After the
// client can act on: a quota denial carries the token bucket's own refill
// time; a capacity rejection is paced by the controller's predicted queue
// drain, falling back to the admission-wait histogram's mean when the
// controller has no hold history yet. Clamped to [1s, 60s].
func (s *Server) reject429(w http.ResponseWriter, err error) {
	retry := s.qos.PredictWait()
	var qe *qos.QuotaError
	if errors.As(err, &qe) {
		retry = qe.RetryAfter
	}
	if retry == 0 {
		if snap := s.hist.admissionWait.Snapshot(); snap.Count > 0 {
			retry = time.Duration(snap.Sum / float64(snap.Count) * float64(time.Second))
		}
	}
	retry = min(max(retry, time.Second), 60*time.Second)
	w.Header().Set("Retry-After", strconv.FormatInt(int64(math.Ceil(retry.Seconds())), 10))
	s.fail(w, http.StatusTooManyRequests, err.Error())
}

// partialAgg accumulates an enumeration into a jobs.Aggregate with the
// WAL's commit discipline: per-seed contributions buffer through
// OnPlexSeed and merge only when the seed group's OnSeedDone fires.
// Because the engine suppresses OnSeedDone for groups interrupted by
// cancellation, the committed aggregate after a deadline-cancelled run
// summarises exactly the fully-enumerated seed groups — a true lower
// bound, and (with the done-set) precisely the resume token
// jobs.SubmitResumable accepts.
type partialAgg struct {
	mu        sync.Mutex
	pending   map[int]*jobs.Aggregate
	committed *jobs.Aggregate
	done      *kplex.SeedSet
	topN      int
}

func newPartialAgg(topN int) *partialAgg {
	return &partialAgg{
		pending:   make(map[int]*jobs.Aggregate),
		committed: jobs.NewAggregate(topN),
		done:      kplex.NewSeedSet(),
		topN:      topN,
	}
}

// install chains the aggregate's buffering into o's hooks, preserving any
// hooks already set (they run after the aggregate records the event).
func (pa *partialAgg) install(o *kplex.Options) {
	prevPlex := o.OnPlexSeed
	o.OnPlexSeed = func(seed int, plex []int) {
		pa.onPlex(seed, plex)
		if prevPlex != nil {
			prevPlex(seed, plex)
		}
	}
	prevDone := o.OnSeedDone
	o.OnSeedDone = func(seed int, partial kplex.Stats) {
		pa.onDone(seed, partial)
		if prevDone != nil {
			prevDone(seed, partial)
		}
	}
}

func (pa *partialAgg) onPlex(seed int, plex []int) {
	pa.mu.Lock()
	a := pa.pending[seed]
	if a == nil {
		a = jobs.NewAggregate(pa.topN)
		pa.pending[seed] = a
	}
	a.AddPlex(plex)
	pa.mu.Unlock()
}

func (pa *partialAgg) onDone(seed int, partial kplex.Stats) {
	pa.mu.Lock()
	defer pa.mu.Unlock()
	if pa.done.Contains(seed) {
		return
	}
	pa.done.Add(seed)
	pa.committed.Stats.Add(partial)
	if a := pa.pending[seed]; a != nil {
		delete(pa.pending, seed)
		pa.committed.Merge(a) // a carries no Stats; only the engine's partial do
	}
}

// snapshot returns the committed aggregate and done-set, safe against the
// still-running enumeration.
func (pa *partialAgg) snapshot() (*jobs.Aggregate, *kplex.SeedSet) {
	pa.mu.Lock()
	defer pa.mu.Unlock()
	return pa.committed.Snapshot(), kplex.NewSeedSet(pa.done.Seeds()...)
}

// executeDeadline answers a deadlineMs-bounded query: the enumeration is
// tied to the requesting client and to the deadline, and a deadline expiry
// is not an error — the committed seed groups answer as an HTTP 200 with
// partial:true, the count a true lower bound, the completed-seed fraction,
// and (when the job subsystem is enabled) a durable resume job already
// enumerating the remainder. A run that beats its deadline caches and
// answers exactly like the synchronous path. Partial results never enter
// the result cache or the singleflight group.
func (s *Server) executeDeadline(w http.ResponseWriter, r *http.Request, t *obs.Trace, inf *obs.InflightEntry, entry *GraphEntry, req *queryRequest, opts kplex.Options, tenant, key string) {
	inf.SetStage("admission")
	admSpan := t.StartSpan("admission")
	release, err := s.admit(r.Context(), tenant)
	admSpan.EndErr(err)
	if err != nil {
		if isOverload(err) {
			s.reject429(w, err)
		} else {
			s.fail(w, http.StatusBadRequest, "client went away: "+err.Error())
		}
		return
	}
	defer release()
	s.met.Executions.Add(1)

	inf.SetStage("prepare")
	prepSpan := t.StartSpan("prepare").Attr("graph", req.Graph)
	p, err := s.prepared(entry.G, entry.Digest, &opts)
	prepSpan.EndErr(err)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	inf.SetSeedsTotal(int64(p.SeedSpace()))
	topN := 0
	if req.Mode == "topk" {
		topN = req.TopN
	}
	pa := newPartialAgg(topN)
	opts.PhaseTimers = true
	opts.OnSeedDone = func(int, kplex.Stats) { inf.SeedDone() }
	pa.install(&opts)

	deadline := time.Duration(req.DeadlineMS) * time.Millisecond
	if deadline > s.cfg.QueryTimeout {
		deadline = s.cfg.QueryTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	inf.SetStage("enumerate")
	enumSpan := t.StartSpan("enumerate").Attr("mode", req.Mode).Attr("deadlineMs", strconv.Itoa(req.DeadlineMS))
	started := time.Now()
	res, runErr := kplex.RunPrepared(ctx, p, opts)
	elapsed := time.Since(started)
	agg, doneSeeds := pa.snapshot()

	if runErr == nil {
		// Beat the deadline: the committed aggregate is the complete answer.
		enumSpan.Attr("count", strconv.FormatInt(agg.Count, 10)).End()
		val := resultFromAggregate(req, agg, entry.Digest, elapsed)
		val.Stats = res.Stats
		s.cache.put(key, val)
		s.observeCost(p.CostFeatures(), res.Elapsed)
		s.respond(w, req, entry, val, false, false)
		return
	}
	if r.Context().Err() != nil {
		enumSpan.EndStatus("cancelled")
		s.fail(w, http.StatusBadRequest, "client went away: "+runErr.Error())
		return
	}
	if !errors.Is(runErr, context.DeadlineExceeded) {
		enumSpan.EndErr(runErr)
		s.fail(w, http.StatusInternalServerError, runErr.Error())
		return
	}
	enumSpan.Attr("count", strconv.FormatInt(agg.Count, 10)).
		Attr("seedsDone", strconv.Itoa(doneSeeds.Len())).EndStatus("deadline")

	s.met.PartialAnswers.Add(1)
	resp := partialResponse(req, entry, agg, doneSeeds.Len(), p.SeedSpace(), elapsed)
	if s.jobs != nil {
		spec := jobs.Spec{Graph: req.Graph, K: req.K, Q: req.Q, Threads: req.Threads, Tenant: tenant}
		if req.Mode == "topk" {
			spec.TopN = req.TopN
		}
		if req.Scheduler != "auto" {
			spec.Scheduler = req.Scheduler
		}
		man, err := s.jobs.SubmitResumable(spec, entry.Digest, p.SeedSpace(), doneSeeds.Seeds(), agg,
			float64(elapsed)/float64(time.Millisecond))
		if err != nil {
			s.cfg.Logf(`{"level":"warn","msg":"partial answer resume submission failed","err":%q}`, err.Error())
		} else {
			resp.ResumeJob = man
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// resultFromAggregate renders a completed commit-disciplined run as a
// cacheable queryResult (mode-specific payloads only, like execute).
func resultFromAggregate(req *queryRequest, agg *jobs.Aggregate, digest string, elapsed time.Duration) *queryResult {
	val := &queryResult{
		Mode:       req.Mode,
		Count:      agg.Count,
		MaxSize:    agg.MaxSize,
		Elapsed:    elapsed,
		Digest:     digest,
		ComputedAt: time.Now(),
	}
	switch req.Mode {
	case "topk":
		val.TopK = agg.TopK
		if val.TopK == nil {
			val.TopK = [][]int{}
		}
	case "histogram":
		val.Histogram = agg.Histogram
		if val.Histogram == nil {
			val.Histogram = map[int]int64{}
		}
	}
	return val
}

// partialResponse renders the 200 partial:true body of a deadline-hit
// query.
func partialResponse(req *queryRequest, entry *GraphEntry, agg *jobs.Aggregate, seedsDone, totalSeeds int, elapsed time.Duration) *queryResponse {
	resp := &queryResponse{
		Graph:      req.Graph,
		Digest:     entry.Digest,
		K:          req.K,
		Q:          req.Q,
		Mode:       req.Mode,
		Count:      agg.Count,
		MaxSize:    agg.MaxSize,
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
		Stats:      agg.Stats,
		Partial:    true,
		SeedsDone:  seedsDone,
		TotalSeeds: totalSeeds,
	}
	if totalSeeds > 0 {
		resp.SeedFraction = float64(seedsDone) / float64(totalSeeds)
	}
	switch req.Mode {
	case "topk":
		resp.TopK = agg.TopK
		if resp.TopK == nil {
			resp.TopK = [][]int{}
		}
	case "histogram":
		resp.Histogram = agg.Histogram
		if resp.Histogram == nil {
			resp.Histogram = map[int]int64{}
		}
	}
	return resp
}

// sampleSalt derives the deterministic sampling salt of a query cell, so
// identical sampled queries (and their cache entries) select the identical
// seed subset across restarts.
func sampleSalt(digest string, k, q int, rate float64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(digest))
	h.Write([]byte{byte(k), byte(q)})
	h.Write([]byte(strconv.FormatFloat(rate, 'g', -1, 64)))
	return h.Sum64()
}

// executeSampled runs a sample:<rate> query — a deterministic uniform
// subset of seed groups — and forms the unbiased count estimate with its
// normal-approximation 95% CI. The requested rate is floored so at least
// kplex.DefaultMinSampleSeeds seed groups are enumerated (tiny seed spaces
// degrade to a census: exact, zero-width CI). Runs detached like execute:
// the estimate is cached under the sample-suffixed key.
func (s *Server) executeSampled(t *obs.Trace, inf *obs.InflightEntry, entry *GraphEntry, req *queryRequest, opts kplex.Options) (*queryResult, error) {
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.QueryTimeout)
	defer cancel()
	inf.SetStage("prepare")
	prepSpan := t.StartSpan("prepare").Attr("graph", req.Graph)
	p, err := s.prepared(entry.G, entry.Digest, &opts)
	prepSpan.EndErr(err)
	if err != nil {
		return nil, err
	}
	total := p.SeedSpace()
	rate := kplex.EffectiveSampleRate(total, req.Sample, 0)
	skip, kept, err := kplex.SampleSeeds(total, rate, sampleSalt(entry.Digest, req.K, req.Q, req.Sample))
	if err != nil {
		return nil, err
	}
	inf.SetSeedsTotal(int64(kept))

	var mu sync.Mutex
	perSeed := make(map[int]int64, kept)
	hist := make(map[int]int64)
	opts.SkipSeeds = skip
	opts.PhaseTimers = true
	opts.OnPlexSeed = func(seed int, plex []int) {
		mu.Lock()
		perSeed[seed]++
		hist[len(plex)]++
		mu.Unlock()
	}
	opts.OnSeedDone = func(int, kplex.Stats) { inf.SeedDone() }

	inf.SetStage("enumerate")
	enumSpan := t.StartSpan("enumerate").Attr("mode", req.Mode).
		Attr("sampleRate", strconv.FormatFloat(rate, 'g', -1, 64)).
		Attr("sampledSeeds", strconv.Itoa(kept))
	res, err := kplex.RunPrepared(ctx, p, opts)
	if err != nil {
		enumSpan.EndErr(err)
		return nil, err
	}
	enumSpan.Attr("rawCount", strconv.FormatInt(res.Count, 10)).End()
	s.met.SampledQueries.Add(1)

	// Every enumerated seed's count, zeros included: the estimator averages
	// over the n sampled seeds, not just the productive ones.
	counts := make([]int64, 0, kept)
	for seed := 0; seed < total; seed++ {
		if !skip.Contains(seed) {
			counts = append(counts, perSeed[seed])
		}
	}
	est := kplex.EstimateCount(total, counts, rate)
	val := &queryResult{
		Mode:       req.Mode,
		Count:      int64(math.Round(est.Count)),
		MaxSize:    int(res.Stats.MaxPlexSize),
		Elapsed:    res.Elapsed,
		Stats:      res.Stats,
		Digest:     entry.Digest,
		ComputedAt: time.Now(),
		Sample:     &est,
	}
	if req.Mode == "histogram" {
		// Per-bucket counts scale by the same unbiased N/n factor.
		val.Histogram = make(map[int]int64, len(hist))
		scale := 1.0
		if len(counts) > 0 {
			scale = float64(total) / float64(len(counts))
		}
		for size, c := range hist {
			val.Histogram[size] = int64(math.Round(float64(c) * scale))
		}
	}
	s.observeCost(p.CostFeatures(), res.Elapsed)
	return val, nil
}

// isOverload reports whether an admission error is a capacity or quota
// rejection (a 429), as opposed to the caller giving up.
func isOverload(err error) bool {
	var qe *qos.QuotaError
	return errors.Is(err, errBusy) || errors.As(err, &qe)
}
