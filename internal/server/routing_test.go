package server

// Tests for cost-based query routing: the EWMA calibrator, the
// prediction-tier tuner, request validation of scheduler=auto /
// route=auto, and the end-to-end 202-with-manifest path against a real
// job subsystem.

import (
	"encoding/json"
	"math"
	"net/http"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/kplex"
)

// routerTestFeatures is an arbitrary mid-range feature vector; the
// calibrator's behaviour must not depend on which one we pick.
var routerTestFeatures = kplex.CostFeatures{
	N: 500, M: 20000, K: 2, Q: 10,
	ActiveSeeds: 400, AvgLaterDeg: 30, MaxLaterDeg: 60,
}

// TestCostRouterCalibration: a machine that is consistently 10× slower
// than the fitted model must pull predictions up by ~10× — the first
// observation seeds the bias outright, repeats keep it there.
func TestCostRouterCalibration(t *testing.T) {
	cr := newCostRouter()
	raw := cr.model.Predict(routerTestFeatures)
	if cr.predict(routerTestFeatures) != raw.Truncate(0) && math.Abs(cr.predict(routerTestFeatures).Seconds()-raw.Seconds()) > 1e-9 {
		t.Fatalf("cold router predict %v != raw model %v", cr.predict(routerTestFeatures), raw)
	}

	for i := 0; i < 8; i++ {
		cr.observe(routerTestFeatures, time.Duration(10*raw.Seconds()*float64(time.Second)))
	}
	if got := cr.observations(); got != 8 {
		t.Fatalf("observations = %d, want 8", got)
	}
	ratio := cr.predict(routerTestFeatures).Seconds() / raw.Seconds()
	if ratio < 9 || ratio > 11 {
		t.Fatalf("calibrated/raw ratio = %.2f, want ~10", ratio)
	}

	// A different feature vector is scaled by the same learned bias: the
	// correction is a hardware offset, not a per-query memo.
	other := routerTestFeatures
	other.ActiveSeeds = 40
	otherRatio := cr.predict(other).Seconds() / cr.model.Predict(other).Seconds()
	if otherRatio < 9 || otherRatio > 11 {
		t.Fatalf("bias not shared across features: ratio %.2f", otherRatio)
	}

	// Non-positive elapsed must not produce log(0).
	cr.observe(routerTestFeatures, 0)
	if d := cr.predict(routerTestFeatures); d < time.Microsecond || d > 24*time.Hour {
		t.Fatalf("predict after zero-elapsed observation out of range: %v", d)
	}
}

func TestTuneForTiers(t *testing.T) {
	cases := []struct {
		name      string
		pred      time.Duration
		threads   int // explicit request, 0 = let the tuner pick
		wantTh    int
		wantSched kplex.SchedulerStyle
		wantTau   time.Duration
	}{
		{"cheap-sequential", 10 * time.Millisecond, 0, 1, kplex.SchedulerStages, 0},
		{"mid-stages", 500 * time.Millisecond, 0, 8, kplex.SchedulerStages, 2 * time.Millisecond},
		{"long-steal", 10 * time.Second, 0, 8, kplex.SchedulerSteal, time.Millisecond},
		{"explicit-threads-honoured", 10 * time.Millisecond, 4, 4, kplex.SchedulerStages, 2 * time.Millisecond},
		{"explicit-one-thread", 10 * time.Second, 1, 1, kplex.SchedulerSteal, 0},
	}
	for _, tc := range cases {
		opts := kplex.NewOptions(2, 8)
		opts.Threads = tc.threads
		if opts.Threads <= 0 {
			opts.Threads = 8
		}
		tuneFor(tc.pred, tc.threads, 8, &opts)
		if opts.Threads != tc.wantTh || opts.Scheduler != tc.wantSched || opts.TaskTimeout != tc.wantTau {
			t.Errorf("%s: got threads=%d sched=%v tau=%v, want %d/%v/%v",
				tc.name, opts.Threads, opts.Scheduler, opts.TaskTimeout,
				tc.wantTh, tc.wantSched, tc.wantTau)
		}
	}
}

func TestParseOptionsRouting(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ok := queryRequest{Graph: "corpus:planted-a", K: 2, Q: 6, Mode: "count", Scheduler: "auto", Route: "auto"}
	if _, err := s.parseOptions(&ok); err != nil {
		t.Fatalf("scheduler=auto route=auto rejected: %v", err)
	}
	badRoute := ok
	badRoute.Route = "maybe"
	if _, err := s.parseOptions(&badRoute); err == nil {
		t.Fatal("route=maybe accepted, want error")
	}
	streamAuto := ok
	streamAuto.Mode = "stream"
	if _, err := s.parseOptions(&streamAuto); err == nil {
		t.Fatal("route=auto with mode=stream accepted, want error")
	}
}

// TestRouteAutoAsync drives the full path: with the async threshold at
// 1ns every route=auto query is predicted-expensive, so POST /query
// answers 202 with a durable job manifest whose result matches the
// synchronous answer.
func TestRouteAutoAsync(t *testing.T) {
	s, hs := newTestServer(t, Config{JobsDir: t.TempDir(), RouteAsyncThreshold: time.Nanosecond})

	resp, body := postJSON(t, hs.URL+"/query",
		`{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count","route":"auto","scheduler":"auto"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("route=auto under 1ns threshold = %d (%s), want 202", resp.StatusCode, body)
	}
	var acc struct {
		Job         jobs.Manifest `json:"job"`
		PredictedMs float64       `json:"predictedMs"`
	}
	if err := json.Unmarshal(body, &acc); err != nil || acc.Job.ID == "" {
		t.Fatalf("202 body %s: %v", body, err)
	}
	if acc.PredictedMs <= 0 {
		t.Fatalf("predictedMs = %v, want > 0", acc.PredictedMs)
	}
	if acc.Job.Spec.Scheduler != "steal" {
		t.Fatalf("async job from scheduler=auto got scheduler %q, want steal", acc.Job.Spec.Scheduler)
	}

	v, err := s.Jobs().Wait(t.Context(), acc.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != jobs.StateDone {
		t.Fatalf("routed job ended %s (%s)", v.State, v.Error)
	}
	res, err := s.Jobs().Result(acc.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	code, q := postQuery(t, hs.URL, `{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}`)
	if code != http.StatusOK {
		t.Fatalf("sync query = %d", code)
	}
	if res.Count != q.Count {
		t.Fatalf("routed job count %d != sync count %d", res.Count, q.Count)
	}

	m := stats(t, hs.URL)
	if m["routed_async"] != 1 {
		t.Fatalf("routed_async = %d, want 1", m["routed_async"])
	}
	// The completed job and the sync query both fed the calibrator.
	if m["cost_observations"] < 2 {
		t.Fatalf("cost_observations = %d, want >= 2", m["cost_observations"])
	}
}

// TestRouteAutoFallsThroughSync: with the default (30s) threshold the
// corpus queries are predicted far cheaper, so route=auto answers
// synchronously, and scheduler=auto tunes in place instead.
func TestRouteAutoFallsThroughSync(t *testing.T) {
	_, hs := newTestServer(t, Config{JobsDir: t.TempDir()})

	code, q := postQuery(t, hs.URL,
		`{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count","route":"auto","scheduler":"auto"}`)
	if code != http.StatusOK {
		t.Fatalf("route=auto under default threshold = %d, want 200", code)
	}
	if q.Count == 0 {
		t.Fatal("sync answer has zero count")
	}
	m := stats(t, hs.URL)
	if m["routed_async"] != 0 {
		t.Fatalf("routed_async = %d, want 0", m["routed_async"])
	}
	if m["auto_tuned"] != 1 {
		t.Fatalf("auto_tuned = %d, want 1", m["auto_tuned"])
	}
	if m["cost_observations"] != 1 {
		t.Fatalf("cost_observations = %d, want 1", m["cost_observations"])
	}

	// route=auto without the job subsystem: always sync, never an error.
	_, hs2 := newTestServer(t, Config{RouteAsyncThreshold: time.Nanosecond})
	code, _ = postQuery(t, hs2.URL,
		`{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count","route":"auto"}`)
	if code != http.StatusOK {
		t.Fatalf("route=auto without jobs = %d, want 200", code)
	}
}
