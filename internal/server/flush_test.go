package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// noFlushWriter hides the underlying ResponseWriter's http.Flusher, the
// way logging/compression middleware that wraps the writer without
// forwarding optional interfaces does.
type noFlushWriter struct{ http.ResponseWriter }

// TestStreamWithoutFlusher: NDJSON endpoints behind a non-Flusher writer
// must still deliver a complete, correct response — fully buffered — and
// declare the buffering in a header instead of failing.
func TestStreamWithoutFlusher(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	inner := s.Handler()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inner.ServeHTTP(noFlushWriter{w}, r)
	}))
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/stream?graph=corpus:planted-a&k=2&q=6")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream without Flusher = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Kplexd-Buffered") != "1" {
		t.Fatal("buffered stream missing X-Kplexd-Buffered: 1")
	}

	var plexes int64
	var sum streamSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") {
			plexes++
			continue
		}
		if err := json.Unmarshal([]byte(line), &sum); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
	}
	if !sum.Done || sum.Truncated {
		t.Fatalf("summary %+v, want done and not truncated", sum)
	}
	if sum.Count != plexes || plexes == 0 {
		t.Fatalf("summary count %d, saw %d plex lines", sum.Count, plexes)
	}

	// The Flusher-capable path must not carry the warning header.
	direct := httptest.NewServer(inner)
	defer direct.Close()
	resp2, err := http.Get(direct.URL + "/stream?graph=corpus:planted-a&k=2&q=6")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-Kplexd-Buffered") != "" {
		t.Fatal("Flusher-capable stream unexpectedly marked buffered")
	}
}
