package server

// Cost-based query routing. The engine's cost model (kplex.CostModel)
// predicts a query's runtime from the prologue summary the prepared-graph
// cache already holds, and kplexd uses the prediction for the three
// placement decisions a service has to make per query:
//
//   - sync vs async: a query submitted with route=auto whose predicted
//     runtime exceeds Config.RouteAsyncThreshold is converted into a
//     durable background job (202 + manifest) instead of holding an
//     interactive slot for minutes;
//   - parallelism: scheduler=auto runs predicted-cheap queries
//     sequentially (worker startup and queue traffic dominate sub-50ms
//     enumerations) and predicted-expensive ones on the default thread
//     budget;
//   - scheduler/τ_time: mid-range queries keep the paper's stage scheme;
//     long ones switch to the barrier-free work-stealing scheduler with a
//     tighter split budget, which tolerates the skewed subtree depths that
//     long enumerations imply.
//
// The model ships with coefficients fitted offline (kplex.DefaultCostModel),
// so its absolute scale is wrong on any other machine. costRouter corrects
// that online: every observed (features, runtime) pair — interactive
// queries, streams and completed jobs alike — feeds an EWMA of the
// log-residual, and predictions are scaled by exp(bias). A constant
// hardware speed ratio is exactly a constant log-offset, so the EWMA
// converges to it regardless of which queries happen to arrive.

import (
	"math"
	"sync"
	"time"

	"repro/internal/kplex"
)

// Auto-tuning thresholds on the calibrated prediction.
const (
	// routeSequentialBelow: under this, thread startup and queue traffic
	// cost more than they save; run sequentially.
	routeSequentialBelow = 50 * time.Millisecond
	// routeStealAbove: over this, subtree-depth skew dominates and the
	// stage barrier wastes workers; switch to work stealing.
	routeStealAbove = 2 * time.Second
)

// costRouter is the calibrated predictor. Safe for concurrent use.
type costRouter struct {
	model kplex.CostModel
	alpha float64 // EWMA weight of one observation

	mu   sync.Mutex
	bias float64 // EWMA of log(observed) - log(predicted)
	obs  int64
}

func newCostRouter() *costRouter {
	return &costRouter{model: kplex.DefaultCostModel, alpha: 0.2}
}

// predict returns the model's estimate scaled by the learned bias, clamped
// to the model's own [1µs, 24h] routing range.
func (cr *costRouter) predict(f kplex.CostFeatures) time.Duration {
	raw := cr.model.Predict(f)
	cr.mu.Lock()
	bias := cr.bias
	cr.mu.Unlock()
	sec := raw.Seconds() * math.Exp(bias)
	switch {
	case sec < 1e-6:
		sec = 1e-6
	case sec > 86400:
		sec = 86400
	}
	return time.Duration(sec * float64(time.Second))
}

// observe folds one measured runtime into the calibrator. The first
// observation seeds the bias outright (a cold EWMA anchored at zero would
// take 1/alpha observations to cross a large hardware gap).
func (cr *costRouter) observe(f kplex.CostFeatures, elapsed time.Duration) {
	if elapsed <= 0 {
		elapsed = time.Microsecond
	}
	resid := math.Log(elapsed.Seconds()) - math.Log(cr.model.Predict(f).Seconds())
	cr.mu.Lock()
	if cr.obs == 0 {
		cr.bias = resid
	} else {
		cr.bias += cr.alpha * (resid - cr.bias)
	}
	cr.obs++
	cr.mu.Unlock()
}

// observations returns how many runtimes have been folded in (metrics).
func (cr *costRouter) observations() int64 {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return cr.obs
}

// observeCost feeds one completed run's measured cost into the calibrator.
// It is the single funnel for every execution path: cacheable queries,
// streams, and (wired as jobs.Config.ObserveCost) background jobs. The
// prediction error is histogrammed before the observation is folded in, so
// the metric reflects the model as it actually served — each sample scored
// against the calibration state that produced its routing decision.
func (s *Server) observeCost(f kplex.CostFeatures, elapsed time.Duration) {
	if elapsed <= 0 {
		elapsed = time.Microsecond
	}
	pred := s.router.predict(f)
	s.hist.costLogError.Observe(math.Abs(math.Log(pred.Seconds()) - math.Log(elapsed.Seconds())))
	s.router.observe(f, elapsed)
	s.met.CostObservations.Add(1)
}

// tuneFor finalizes the execution knobs of a scheduler=auto query from the
// calibrated prediction. An explicitly requested thread count (threads > 0
// in the request) is honoured; only the scheduler and τ_time are always
// chosen here. The choices are execution-only — they never change the
// result set, the cache key or the golden digests.
func tuneFor(pred time.Duration, explicitThreads, defaultThreads int, opts *kplex.Options) {
	switch {
	case pred < routeSequentialBelow:
		if explicitThreads <= 0 {
			opts.Threads = 1
		}
		opts.Scheduler = kplex.SchedulerStages
	case pred < routeStealAbove:
		if explicitThreads <= 0 {
			opts.Threads = defaultThreads
		}
		opts.Scheduler = kplex.SchedulerStages
	default:
		if explicitThreads <= 0 {
			opts.Threads = defaultThreads
		}
		opts.Scheduler = kplex.SchedulerSteal
	}
	switch {
	case opts.Threads <= 1:
		opts.TaskTimeout = 0 // no siblings to starve
	case opts.Scheduler == kplex.SchedulerSteal:
		opts.TaskTimeout = time.Millisecond // long runs: split aggressively
	default:
		opts.TaskTimeout = 2 * time.Millisecond
	}
}
