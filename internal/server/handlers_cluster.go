package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/obs"
)

// The /cluster endpoints. Every kplexd is a potential worker:
//
//	POST   /cluster/run       execute one leased seed range, streaming
//	                          NDJSON heartbeats and a final aggregate
//
// A kplexd started with -coordinator additionally serves the
// coordinator surface (503 otherwise):
//
//	POST   /cluster/workers          register a worker base URL
//	GET    /cluster/workers          list workers
//	POST   /cluster/jobs             submit a distributed job -> 202 + manifest
//	GET    /cluster/jobs             list distributed jobs
//	GET    /cluster/jobs/{id}        manifest + live progress
//	GET    /cluster/jobs/{id}/events NDJSON progress feed until terminal
//	GET    /cluster/jobs/{id}/result merged result (409 while active)
//	POST   /cluster/jobs/{id}/cancel cancel an active job
//	DELETE /cluster/jobs/{id}        cancel active / delete terminal

func (s *Server) clusterRoutes() {
	s.mux.HandleFunc("POST /cluster/run", s.handleClusterRun)
	if s.cluster == nil {
		disabled := func(w http.ResponseWriter, _ *http.Request) {
			s.fail(w, http.StatusServiceUnavailable, "cluster coordinator disabled: start kplexd with -coordinator")
		}
		s.mux.HandleFunc("/cluster/jobs", disabled)
		s.mux.HandleFunc("/cluster/jobs/", disabled)
		s.mux.HandleFunc("/cluster/workers", disabled)
		return
	}
	s.mux.HandleFunc("POST /cluster/workers", s.handleAddWorker)
	s.mux.HandleFunc("GET /cluster/workers", s.handleListWorkers)
	s.mux.HandleFunc("POST /cluster/jobs", s.handleSubmitClusterJob)
	s.mux.HandleFunc("GET /cluster/jobs", s.handleListClusterJobs)
	s.mux.HandleFunc("GET /cluster/jobs/{id}", s.handleGetClusterJob)
	s.mux.HandleFunc("GET /cluster/jobs/{id}/events", s.handleClusterJobEvents)
	s.mux.HandleFunc("GET /cluster/jobs/{id}/result", s.handleClusterJobResult)
	s.mux.HandleFunc("POST /cluster/jobs/{id}/cancel", s.handleCancelClusterJob)
	s.mux.HandleFunc("DELETE /cluster/jobs/{id}", s.handleDeleteClusterJob)
}

// handleClusterRun is the worker side of a lease: verify the digest
// handshake, resolve the prologue from the local prepared cache, and
// enumerate exactly the requested range, streaming heartbeat lines (which
// feed the coordinator's lease watchdog) and a final sealed aggregate.
func (s *Server) handleClusterRun(w http.ResponseWriter, r *http.Request) {
	var req cluster.RangeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if req.K < 1 || req.K > s.cfg.MaxK {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("k must be in [1, %d], got %d", s.cfg.MaxK, req.K))
		return
	}
	if req.Threads < 0 || req.Threads > s.cfg.MaxThreads {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("threads must be in [0, %d], got %d", s.cfg.MaxThreads, req.Threads))
		return
	}
	if req.TopN < 0 || req.TopN > s.cfg.MaxTopN {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("topn must be in [0, %d], got %d", s.cfg.MaxTopN, req.TopN))
		return
	}
	opts, err := cluster.BuildOptions(&req, s.cfg.DefaultThreads)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}

	e, err := s.reg.Acquire(req.Graph)
	if err != nil {
		s.fail(w, http.StatusNotFound, err.Error())
		return
	}
	defer s.reg.Release(e)
	// The digest-verification handshake: refusing here turns a stale or
	// divergent graph file on this node into a rejected lease the
	// coordinator reassigns, instead of a silently wrong merged result.
	if req.Digest != "" && e.Digest != req.Digest {
		s.fail(w, http.StatusConflict, fmt.Sprintf("graph %q digest mismatch: coordinator expects %s, this worker has %s", req.Graph, req.Digest, e.Digest))
		return
	}

	// A propagated Traceparent header means this lease is part of a
	// coordinator's stitched trace. The worker records its share on a
	// detached trace and ships the spans back on the Done line, rather
	// than into its own ring — there the duplicated id would shadow the
	// worker's local traces, and the coordinator is the one stitching.
	traceID, _ := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	var wt *obs.Trace
	if traceID != "" {
		wt = obs.NewTrace(fmt.Sprintf("range [%d, %d)", req.Lo, req.Hi))
	}
	rangeAttr := fmt.Sprintf("[%d, %d)", req.Lo, req.Hi)
	inf := s.inflight.Register("range", req.Graph, req.K, req.Q, "", traceID)
	defer inf.Done()

	inf.SetStage("prepare")
	prepSpan := wt.StartSpan("prepare").Attr("graph", req.Graph).Attr("range", rangeAttr)
	p, err := s.prepared(e.G, e.Digest, &opts)
	prepSpan.EndErr(err)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	if p.SeedSpace() != req.TotalSeeds {
		s.fail(w, http.StatusConflict, fmt.Sprintf("seed space mismatch: coordinator partitioned %d seeds, this worker's prologue has %d", req.TotalSeeds, p.SeedSpace()))
		return
	}
	if req.Lo < 0 || req.Hi > req.TotalSeeds || req.Lo >= req.Hi {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("range [%d, %d) outside the %d-seed space", req.Lo, req.Hi, req.TotalSeeds))
		return
	}

	// Ranges are queued work, like jobs: block for a slot rather than 429.
	// The stream has not started yet, so the coordinator's watchdog covers
	// a worker stuck here (no heartbeats until admission).
	inf.SetStage("admission")
	admSpan := wt.StartSpan("admission").Attr("range", rangeAttr)
	release, err := s.admitJob(r.Context(), tenantOf(r))
	admSpan.EndErr(err)
	if err != nil {
		return // client gone while waiting; nothing to answer
	}
	defer release()
	s.met.RangeRuns.Add(1)
	inf.SetStage("enumerate")
	inf.SetSeedsTotal(int64(req.Hi - req.Lo))

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher := ndjsonFlusher(w)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	emit := func(line *cluster.RangeLine) bool {
		if enc.Encode(line) != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	var seedsDone atomic.Int64
	start := time.Now()
	enumSpan := wt.StartSpan("enumerate").Attr("range", rangeAttr)
	type rangeOut struct {
		agg *jobs.Aggregate
		err error
	}
	outc := make(chan rangeOut, 1)
	go func() {
		agg, _, err := cluster.RunRange(r.Context(), p, opts, &req, func(n int) {
			seedsDone.Store(int64(n))
			inf.SeedDone()
		})
		outc <- rangeOut{agg, err}
	}()

	// Heartbeat cadence well under any sane lease timeout: each line
	// resets the coordinator's watchdog, so a live worker never expires
	// mid-range while a killed one breaks the stream immediately.
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	emit(&cluster.RangeLine{SeedsDone: 0})
	for {
		select {
		case out := <-outc:
			if out.err != nil {
				// The stream is underway; the error travels in-band.
				enumSpan.EndErr(out.err)
				s.met.Errors.Add(1)
				emit(&cluster.RangeLine{SeedsDone: int(seedsDone.Load()), Error: out.err.Error()})
				return
			}
			enumSpan.Attr("seeds", fmt.Sprint(req.Hi-req.Lo)).End()
			out.agg.Seal()
			emit(&cluster.RangeLine{
				SeedsDone: int(seedsDone.Load()),
				Done:      true,
				Agg:       out.agg,
				ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
				Spans:     wt.Spans(),
			})
			return
		case <-tick.C:
			if !emit(&cluster.RangeLine{SeedsDone: int(seedsDone.Load())}) {
				// Client gone: r.Context() cancellation stops the engine;
				// drain the goroutine before returning.
				enumSpan.EndStatus("cancelled")
				<-outc
				return
			}
		case <-r.Context().Done():
			enumSpan.EndStatus("cancelled")
			<-outc
			return
		}
	}
}

func (s *Server) handleAddWorker(w http.ResponseWriter, r *http.Request) {
	var body struct {
		URL string `json:"url"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&body); err != nil {
		s.fail(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	v, err := s.cluster.AddWorker(body.URL)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleListWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.cluster.Workers())
}

func (s *Server) handleSubmitClusterJob(w http.ResponseWriter, r *http.Request) {
	var spec cluster.Spec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
		s.fail(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	// The interactive ceilings apply to the distributed path too; each
	// worker re-validates, but failing at submit beats failing leases.
	if spec.K < 1 || spec.K > s.cfg.MaxK {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("k must be in [1, %d], got %d", s.cfg.MaxK, spec.K))
		return
	}
	if spec.Threads < 0 || spec.Threads > s.cfg.MaxThreads {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("threads must be in [0, %d], got %d", s.cfg.MaxThreads, spec.Threads))
		return
	}
	if spec.TopN < 0 || spec.TopN > s.cfg.MaxTopN {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("topn must be in [0, %d], got %d", s.cfg.MaxTopN, spec.TopN))
		return
	}
	// Resolve the graph eagerly: unknown names 404 at submit time.
	if _, _, release, err := s.jobGraph(spec.Graph); err != nil {
		s.fail(w, http.StatusNotFound, err.Error())
		return
	} else {
		release()
	}
	man, err := s.cluster.Submit(spec)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, man)
}

func (s *Server) handleListClusterJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.cluster.List())
}

func (s *Server) handleGetClusterJob(w http.ResponseWriter, r *http.Request) {
	v, err := s.cluster.Get(r.PathValue("id"))
	if err != nil {
		s.failJob(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleClusterJobResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.cluster.Result(r.PathValue("id"))
	if err != nil {
		s.failJob(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancelClusterJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.cluster.Cancel(id); err != nil {
		s.failJob(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"cancelled": id})
}

func (s *Server) handleDeleteClusterJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Same two-phase verb as DELETE /jobs/{id}.
	if err := s.cluster.Cancel(id); err == nil {
		writeJSON(w, http.StatusOK, map[string]string{"cancelled": id})
		return
	} else if !errors.Is(err, jobs.ErrNotActive) {
		s.failJob(w, err)
		return
	}
	if err := s.cluster.Delete(id); err != nil {
		s.failJob(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// handleClusterJobEvents streams NDJSON progress until terminal, same
// contract as /jobs/{id}/events.
func (s *Server) handleClusterJobEvents(w http.ResponseWriter, r *http.Request) {
	ch, stop, err := s.cluster.Subscribe(r.PathValue("id"))
	if err != nil {
		s.failJob(w, err)
		return
	}
	defer stop()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher := ndjsonFlusher(w)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case p, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(p); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-time.After(15 * time.Second):
			fmt.Fprintln(w, "{}")
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}
