package server

// Tests for the observability plane: Prometheus exposition well-formedness,
// the metric help-string registry (the CI lint), request tracing end to end
// — including the coordinator→worker stitched distributed trace — the
// /debug/queries in-flight snapshot, the admission-wait warning, and the
// slow-query log.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
)

// scrapeMetrics fetches /metrics and returns the raw exposition text.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// sampleFamily maps a sample line's metric name to its family: histogram
// series fold their _bucket/_sum/_count suffix away.
func sampleFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// TestMetricsPromWellFormed scrapes /metrics after real traffic and parses
// every line: each sample must belong to a family that already emitted
// # HELP and # TYPE, counters must end in _total, and histogram families
// must expose cumulative buckets whose +Inf count equals _count.
func TestMetricsPromWellFormed(t *testing.T) {
	_, hs := newTestServer(t, Config{
		JobsDir:    filepath.Join(t.TempDir(), "jobs"),
		ClusterDir: filepath.Join(t.TempDir(), "cluster"),
	})
	if code, _ := postQuery(t, hs.URL, `{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}`); code != http.StatusOK {
		t.Fatalf("seed query: status %d", code)
	}

	body := scrapeMetrics(t, hs.URL)
	helped := map[string]bool{}
	typed := map[string]string{}
	type histState struct {
		buckets []float64 // cumulative counts in order of appearance
		count   float64
		hasInf  bool
		infVal  float64
	}
	hists := map[string]*histState{}
	sawSample := map[string]bool{}

	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if name, ok := strings.CutPrefix(line, "# HELP "); ok {
			fam, help, ok := strings.Cut(name, " ")
			if !ok || strings.TrimSpace(help) == "" {
				t.Errorf("line %d: HELP without text: %q", ln+1, line)
			}
			helped[fam] = true
			continue
		}
		if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fam, typ, _ := strings.Cut(name, " ")
			typed[fam] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("line %d: unknown comment %q", ln+1, line)
			continue
		}
		// Sample line: name[{labels}] value
		nameEnd := strings.IndexAny(line, "{ ")
		if nameEnd < 0 {
			t.Errorf("line %d: unparseable sample %q", ln+1, line)
			continue
		}
		name := line[:nameEnd]
		fam := sampleFamily(name)
		sawSample[fam] = true
		if !strings.HasPrefix(fam, "kplexd_") {
			t.Errorf("line %d: metric %q not kplexd_-prefixed", ln+1, name)
		}
		if !helped[fam] {
			t.Errorf("line %d: sample %q has no preceding # HELP %s", ln+1, name, fam)
		}
		typ := typed[fam]
		if typ == "" {
			t.Errorf("line %d: sample %q has no preceding # TYPE %s", ln+1, name, fam)
			continue
		}
		valStr := line[strings.LastIndexByte(line, ' ')+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Errorf("line %d: bad value %q: %v", ln+1, valStr, err)
			continue
		}
		switch typ {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				t.Errorf("line %d: counter sample %q lacks _total suffix", ln+1, name)
			}
			if val < 0 {
				t.Errorf("line %d: negative counter %q = %v", ln+1, name, val)
			}
		case "gauge":
			// Occupancy gauges; any finite value is fine.
		case "histogram":
			h := hists[fam]
			if h == nil {
				h = &histState{}
				hists[fam] = h
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				h.buckets = append(h.buckets, val)
				if strings.Contains(line, `le="+Inf"`) {
					h.hasInf = true
					h.infVal = val
				}
			case strings.HasSuffix(name, "_count"):
				h.count = val
			}
		default:
			t.Errorf("line %d: unexpected TYPE %q for %s", ln+1, typ, fam)
		}
	}

	for fam, h := range hists {
		if !h.hasInf {
			t.Errorf("histogram %s: no +Inf bucket", fam)
		} else if h.infVal != h.count {
			t.Errorf("histogram %s: +Inf bucket %v != count %v", fam, h.infVal, h.count)
		}
		for i := 1; i < len(h.buckets); i++ {
			if h.buckets[i] < h.buckets[i-1] {
				t.Errorf("histogram %s: bucket counts not cumulative at index %d (%v < %v)",
					fam, i, h.buckets[i], h.buckets[i-1])
			}
		}
	}

	// The traffic above must show up in the right families.
	for _, fam := range []string{
		"kplexd_queries_total",
		"kplexd_query_duration_seconds",
		"kplexd_admission_wait_seconds",
		"kplexd_cost_model_log_error",
		"kplexd_wal_fsync_duration_seconds",
		"kplexd_lease_duration_seconds",
	} {
		if !sawSample[fam] {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}
	if h := hists["kplexd_query_duration_seconds"]; h == nil || h.count < 1 {
		t.Errorf("query duration histogram did not record the seed query: %+v", h)
	}
}

// TestMetricsHelpComplete is the metric help-string lint CI runs: every
// counter the server can ever report, every occupancy gauge, and every
// histogram family must carry a registered, non-empty help string — so
// handleMetricsProm's fallback text never ships for a known metric.
func TestMetricsHelpComplete(t *testing.T) {
	s, _ := newTestServer(t, Config{
		JobsDir:    filepath.Join(t.TempDir(), "jobs"),
		ClusterDir: filepath.Join(t.TempDir(), "cluster"),
	})
	snap := s.Metrics()
	snap["cache_entries"] = 0
	snap["resident_graphs"] = 0
	snap["prepared_entries"] = 0

	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if metricHelp[name] == "" {
			t.Errorf("metric %q has no registered help string (add it to metricHelp)", name)
		}
	}
	for name := range promGauges {
		if metricHelp[name] == "" {
			t.Errorf("gauge %q has no registered help string", name)
		}
	}
	for _, f := range s.histFamilies() {
		if f.help == "" {
			t.Errorf("histogram %q has no help string", f.name)
		}
		if !strings.HasPrefix(f.name, "kplexd_") {
			t.Errorf("histogram %q not kplexd_-prefixed", f.name)
		}
	}
	// Registered help for metrics the server can no longer report is rot;
	// flag it so the registry tracks the code.
	known := make(map[string]bool, len(snap))
	for _, name := range names {
		known[name] = true
	}
	for name := range metricHelp {
		if !known[name] {
			t.Errorf("metricHelp registers %q, which the server never reports", name)
		}
	}
}

// getTrace fetches one finished trace from base's introspection plane,
// polling briefly: traces are stored when the handler's deferred Finish
// runs, which can land just after the client sees the response.
func getTrace(t *testing.T, base, id string) obs.TraceData {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/debug/traces/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var td obs.TraceData
			if err := json.NewDecoder(resp.Body).Decode(&td); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return td
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never appeared in /debug/traces", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// spansNamed returns td's spans with the given name.
func spansNamed(td obs.TraceData, name string) []obs.SpanData {
	var out []obs.SpanData
	for _, sp := range td.Spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

// TestQueryTraceLifecycle runs one uncached query and walks its trace:
// the response carries X-Trace-Id, and the stored trace holds the
// singleflight, admission, prepare and enumerate spans with ok status.
func TestQueryTraceLifecycle(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, err := http.Post(hs.URL+"/query", "application/json",
		strings.NewReader(`{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Fatal("no X-Trace-Id header on /query response")
	}

	td := getTrace(t, hs.URL, id)
	if td.ID != id {
		t.Errorf("trace id %q, want %q", td.ID, id)
	}
	for _, name := range []string{"singleflight", "admission", "prepare", "enumerate"} {
		spans := spansNamed(td, name)
		if len(spans) != 1 {
			t.Errorf("span %q: %d occurrences, want 1", name, len(spans))
			continue
		}
		if spans[0].Status != "ok" {
			t.Errorf("span %q status %q, want ok", name, spans[0].Status)
		}
	}
	enum := spansNamed(td, "enumerate")
	if len(enum) == 1 {
		if enum[0].DurationMS <= 0 {
			t.Errorf("enumerate span duration %v, want > 0", enum[0].DurationMS)
		}
		if enum[0].Attrs["seedBuildMs"] == "" || enum[0].Attrs["branchMs"] == "" {
			t.Errorf("enumerate span missing phase-split attrs: %v", enum[0].Attrs)
		}
	}

	// A repeat of the same query is a cache hit: its own trace, with a
	// cache span instead of an enumeration.
	resp2, err := http.Post(hs.URL+"/query", "application/json",
		strings.NewReader(`{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	id2 := resp2.Header.Get("X-Trace-Id")
	if id2 == "" || id2 == id {
		t.Fatalf("cache-hit trace id %q (first was %q)", id2, id)
	}
	td2 := getTrace(t, hs.URL, id2)
	if hit := spansNamed(td2, "cache"); len(hit) != 1 || hit[0].Attrs["hit"] != "true" {
		t.Errorf("cache-hit trace lacks cache span: %+v", td2.Spans)
	}
	if enum := spansNamed(td2, "enumerate"); len(enum) != 0 {
		t.Errorf("cache-hit trace has %d enumerate spans, want 0", len(enum))
	}
}

// TestDistributedTracePropagation runs a 4-range job over two real worker
// processes and retrieves ONE stitched trace from the coordinator: its own
// prepare, per-range lease and merge spans plus the workers' admission,
// prepare and enumerate spans — shipped over the wire via the Traceparent
// header and the Done line — all tagged with the worker that ran them.
func TestDistributedTracePropagation(t *testing.T) {
	_, w1 := newTestServer(t, Config{})
	_, w2 := newTestServer(t, Config{})
	_, coord := newTestServer(t, Config{
		ClusterDir:     filepath.Join(t.TempDir(), "cluster"),
		ClusterWorkers: []string{w1.URL, w2.URL},
	})

	const nRanges = 4
	resp, body := postJSON(t, coord.URL+"/cluster/jobs",
		fmt.Sprintf(`{"graph":"corpus:planted-a","k":2,"q":6,"topn":5,"ranges":%d}`, nRanges))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var man cluster.Manifest
	if err := json.Unmarshal(body, &man); err != nil {
		t.Fatal(err)
	}
	view := waitClusterJob(t, coord.URL, man.ID)
	if view.State != "done" {
		t.Fatalf("job state %q: %s", view.State, view.Error)
	}
	if view.TraceID == "" {
		t.Fatal("terminal manifest has no traceId")
	}

	td := getTrace(t, coord.URL, view.TraceID)
	if td.ID != view.TraceID {
		t.Errorf("trace id %q, want %q", td.ID, view.TraceID)
	}
	if !strings.Contains(td.Name, man.ID) {
		t.Errorf("trace name %q does not reference job %s", td.Name, man.ID)
	}

	// Coordinator-side spans.
	if spans := spansNamed(td, "merge"); len(spans) != 1 {
		t.Errorf("merge spans: %d, want 1", len(spans))
	} else if spans[0].Status != "ok" {
		t.Errorf("merge span status %q", spans[0].Status)
	}
	leases := spansNamed(td, "lease")
	okLeases := 0
	for _, sp := range leases {
		if sp.Attrs["worker"] == "" {
			t.Errorf("lease span without worker attr: %+v", sp)
		}
		if sp.Status == "ok" {
			okLeases++
			if sp.DurationMS <= 0 {
				t.Errorf("ok lease span with zero duration: %+v", sp)
			}
		}
	}
	if okLeases < nRanges {
		t.Errorf("successful lease spans: %d, want >= %d", okLeases, nRanges)
	}

	// Worker-side spans, grafted into the same trace. Every grafted span
	// carries the worker attr the dispatcher stamped; the enumerate spans
	// are the ones guaranteed to take measurable time.
	workers := map[string]bool{}
	for _, name := range []string{"admission", "enumerate"} {
		grafted := 0
		for _, sp := range spansNamed(td, name) {
			if w := sp.Attrs["worker"]; w != "" {
				grafted++
				workers[w] = true
				if sp.Status != "ok" {
					t.Errorf("worker %s span status %q: %+v", name, sp.Status, sp)
				}
			}
		}
		if grafted < nRanges {
			t.Errorf("grafted worker %q spans: %d, want >= %d", name, grafted, nRanges)
		}
	}
	for _, sp := range spansNamed(td, "enumerate") {
		if sp.Attrs["worker"] != "" && sp.DurationMS <= 0 {
			t.Errorf("worker enumerate span with zero duration: %+v", sp)
		}
	}
	for _, w := range []string{w1.URL, w2.URL} {
		if !workers[w] {
			t.Logf("note: worker %s contributed no spans (all ranges landed on one worker)", w)
		}
	}
	if len(workers) == 0 {
		t.Error("no worker URL appears in any grafted span")
	}

	// The lease round-trips were histogrammed.
	if !strings.Contains(scrapeMetrics(t, coord.URL), "kplexd_lease_duration_seconds_count") {
		t.Error("lease duration histogram missing from coordinator /metrics")
	}
}

// TestStreamDisconnectTraceCancelled abandons a stream mid-flight and
// checks the trace scores the enumeration as "cancelled" — a client going
// away is not a server failure.
func TestStreamDisconnectTraceCancelled(t *testing.T) {
	dir := t.TempDir()
	if err := graph.WriteFormatFile(filepath.Join(dir, "big.bin"), gen.GNP(300, 0.25, 9), graph.FormatBinary); err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{DataDir: dir, StreamBuffer: 4})

	resp, err := http.Get(hs.URL + "/stream?graph=big.bin&k=3&q=6&threads=2")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Fatal("no X-Trace-Id header on /stream response")
	}
	if plexes, _ := readStream(t, resp.Body, 4); len(plexes) < 4 {
		t.Fatalf("read %d plexes before disconnecting", len(plexes))
	}
	resp.Body.Close() // drop the client mid-stream

	td := getTrace(t, hs.URL, id)
	enum := spansNamed(td, "enumerate")
	if len(enum) != 1 {
		t.Fatalf("enumerate spans: %d, want 1 (%+v)", len(enum), td.Spans)
	}
	if enum[0].Status != "cancelled" {
		t.Errorf("enumerate span status %q, want cancelled", enum[0].Status)
	}
	if enum[0].Status == "failed" {
		t.Error("client disconnect scored as server failure")
	}
}

// TestDebugQueriesInflight holds a stream open against a tiny buffer so
// the enumeration blocks mid-run, then snapshots /debug/queries: the
// stream must be visible with its stage, seed counts and trace id, and the
// snapshot must drain once the stream is gone.
func TestDebugQueriesInflight(t *testing.T) {
	dir := t.TempDir()
	// Big enough that the stream blocks for the snapshot, small enough
	// that the cancelled enumeration unwinds quickly under -race.
	if err := graph.WriteFormatFile(filepath.Join(dir, "big.bin"), gen.GNP(150, 0.3, 9), graph.FormatBinary); err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{DataDir: dir, StreamBuffer: 2})

	resp, err := http.Get(hs.URL + "/stream?graph=big.bin&k=3&q=6")
	if err != nil {
		t.Fatal(err)
	}
	if plexes, _ := readStream(t, resp.Body, 1); len(plexes) != 1 {
		t.Fatal("stream produced nothing")
	}

	var snap struct {
		Inflight []obs.QueryInfo `json:"inflight"`
	}
	if code := getJSON(t, hs.URL+"/debug/queries", &snap); code != http.StatusOK {
		t.Fatalf("/debug/queries status %d", code)
	}
	var entry *obs.QueryInfo
	for i := range snap.Inflight {
		if snap.Inflight[i].Kind == "stream" {
			entry = &snap.Inflight[i]
		}
	}
	if entry == nil {
		t.Fatalf("blocked stream not in /debug/queries: %+v", snap.Inflight)
	}
	if entry.Graph != "big.bin" || entry.K != 3 || entry.Q != 6 {
		t.Errorf("entry identifies wrong query: %+v", entry)
	}
	if entry.Stage != "enumerate" {
		t.Errorf("stage %q, want enumerate", entry.Stage)
	}
	if entry.SeedsTotal <= 0 {
		t.Errorf("seedsTotal %d, want > 0", entry.SeedsTotal)
	}
	if entry.TraceID == "" {
		t.Error("in-flight entry has no trace id")
	}
	if entry.AgeMS < 0 {
		t.Errorf("ageMs %v negative", entry.AgeMS)
	}

	resp.Body.Close()
	deadline := time.Now().Add(30 * time.Second) // -race slows the unwind
	for {
		var after struct {
			Inflight []obs.QueryInfo `json:"inflight"`
		}
		getJSON(t, hs.URL+"/debug/queries", &after)
		if len(after.Inflight) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("in-flight snapshot never drained: %+v", after.Inflight)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAdmissionWaitWarning saturates admission and checks that a waiter
// past Config.AdmissionWarnAfter logs a structured warning naming the wait
// — queued work must be visible, not silent — and that the wait lands in
// the admission histogram once the slot frees.
func TestAdmissionWaitWarning(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	s, err := New(Config{
		MaxConcurrent:      1,
		AdmissionWarnAfter: 20 * time.Millisecond,
		Logf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	blocker, err := s.qos.Admit(context.Background(), "blocker")
	if err != nil {
		t.Fatal(err) // one free slot: this must grant immediately
	}
	done := make(chan error, 1)
	go func() {
		release, err := s.admitJob(context.Background(), "default")
		if err == nil {
			release()
		}
		done <- err
	}()

	// The warning must arrive while the waiter is still queued.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(lines)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no admission warning logged")
		}
		time.Sleep(5 * time.Millisecond)
	}
	blocker() // free the slot
	if err := <-done; err != nil {
		t.Fatalf("admitJob after slot freed: %v", err)
	}

	mu.Lock()
	line := lines[0]
	mu.Unlock()
	var warn struct {
		Level         string  `json:"level"`
		Msg           string  `json:"msg"`
		WaitedMS      float64 `json:"waitedMs"`
		WarnAfterMS   float64 `json:"warnAfterMs"`
		MaxConcurrent int     `json:"maxConcurrent"`
	}
	if err := json.Unmarshal([]byte(line), &warn); err != nil {
		t.Fatalf("warning is not structured JSON: %q: %v", line, err)
	}
	if warn.Level != "warn" || !strings.Contains(warn.Msg, "admission") {
		t.Errorf("unexpected warning: %+v", warn)
	}
	if warn.WaitedMS < warn.WarnAfterMS {
		t.Errorf("waitedMs %v below warnAfterMs %v", warn.WaitedMS, warn.WarnAfterMS)
	}
	if warn.MaxConcurrent != 1 {
		t.Errorf("maxConcurrent %d, want 1", warn.MaxConcurrent)
	}
	if snap := s.hist.admissionWait.Snapshot(); snap.Count < 1 {
		t.Errorf("admission wait histogram count %d, want >= 1", snap.Count)
	}
}

// TestSlowQueryLog lowers the slow threshold to a nanosecond so every
// request qualifies, runs one query, and checks the NDJSON record.
func TestSlowQueryLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slow.ndjson")
	_, hs := newTestServer(t, Config{
		SlowQueryLog:       path,
		SlowQueryThreshold: time.Nanosecond,
	})
	if code, _ := postQuery(t, hs.URL, `{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}`); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}

	// The record is written by a deferred func after the response; poll.
	var rec slowRecord
	deadline := time.Now().Add(5 * time.Second)
	for {
		data, err := os.ReadFile(path)
		if err == nil {
			if line, _, ok := strings.Cut(strings.TrimSpace(string(data)), "\n"); ok || line != "" {
				if err := json.Unmarshal([]byte(line), &rec); err != nil {
					t.Fatalf("slow log line not JSON: %q: %v", line, err)
				}
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("slow-query log never written")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rec.Kind != "query" || rec.Graph != "corpus:planted-a" || rec.K != 2 || rec.Q != 6 {
		t.Errorf("slow record identifies wrong query: %+v", rec)
	}
	if rec.ElapsedMS <= 0 {
		t.Errorf("elapsedMs %v, want > 0", rec.ElapsedMS)
	}
	if rec.TraceID == "" {
		t.Error("slow record has no trace id")
	}
	if rec.Time.IsZero() {
		t.Error("slow record has no start time")
	}
}
