package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/jobs"
	"repro/internal/kplex"
	"repro/internal/obs"
)

// queryRequest is the body of POST /query (and, field for field, the URL
// parameters of GET /stream). Graph, K, Q and Mode are required; the rest
// tune execution and never change the result set.
type queryRequest struct {
	Graph string `json:"graph"`
	K     int    `json:"k"`
	Q     int    `json:"q"`
	// Mode is one of "count", "topk", "histogram", "stream".
	Mode string `json:"mode"`
	// TopN bounds a topk query (default 10).
	TopN int `json:"topn,omitempty"`
	// Threads overrides the engine parallelism (default Config.DefaultThreads).
	Threads int `json:"threads,omitempty"`
	// Scheduler is "stages", "global-queue", "steal" or "auto" (default
	// stages). "auto" lets the server pick threads, scheduler and τ_time
	// from the query's predicted cost; execution knobs only, the result set
	// and cache identity are unchanged.
	Scheduler string `json:"scheduler,omitempty"`
	// Route is "sync" (default) or "auto": with "auto", a query whose
	// predicted runtime exceeds the server's async threshold is converted
	// into a durable background job and answered 202 with the job manifest
	// (requires the job subsystem; without it every query runs sync).
	// Stream mode is incompatible with route=auto.
	Route string `json:"route,omitempty"`
	// DeadlineMS bounds the query's wall-clock. A deadline hit is not an
	// error: the reply is HTTP 200 with partial:true, the count a true
	// lower bound over the fully-enumerated seed groups, the completed-seed
	// fraction, and — when the job subsystem is enabled — a durable resume
	// job already enumerating the remainder. Cacheable modes only.
	DeadlineMS int `json:"deadlineMs,omitempty"`
	// Sample, in (0, 1), enumerates a deterministic uniform subset of seed
	// groups and answers with an unbiased estimate of the exact count (and
	// histogram) plus a 95% confidence interval, at roughly Sample times
	// the cost. Modes count and histogram only; the rate is floored so at
	// least kplex.DefaultMinSampleSeeds seed groups run (tiny seed spaces
	// degrade to an exact census).
	Sample float64 `json:"sample,omitempty"`
}

// queryResponse is the body of a completed cacheable query.
type queryResponse struct {
	Graph     string        `json:"graph"`
	Digest    string        `json:"digest"`
	K         int           `json:"k"`
	Q         int           `json:"q"`
	Mode      string        `json:"mode"`
	Count     int64         `json:"count"`
	MaxSize   int           `json:"maxSize"`
	ElapsedMS float64       `json:"elapsedMs"` // of the original execution
	Cached    bool          `json:"cached"`    // served from the result cache
	Shared    bool          `json:"shared"`    // joined an in-flight identical query
	TopK      [][]int       `json:"topk,omitempty"`
	Histogram map[int]int64 `json:"histogram,omitempty"`
	Stats     kplex.Stats   `json:"stats"`

	// Deadline-bounded partial answers (see queryRequest.DeadlineMS).
	Partial      bool           `json:"partial,omitempty"`
	SeedsDone    int            `json:"seedsDone,omitempty"`
	TotalSeeds   int            `json:"totalSeeds,omitempty"`
	SeedFraction float64        `json:"seedFraction,omitempty"`
	ResumeJob    *jobs.Manifest `json:"resumeJob,omitempty"`
	// Sample carries the estimator's detail for sample:<rate> queries;
	// Count is then the rounded unbiased estimate.
	Sample *kplex.SampleEstimate `json:"sample,omitempty"`
}

// streamSummary is the final NDJSON line of a stream response; every
// preceding line is a JSON array holding one plex.
type streamSummary struct {
	Done      bool    `json:"done"`
	Count     int64   `json:"count"`
	Truncated bool    `json:"truncated"` // the enumeration was cancelled mid-way
	ElapsedMS float64 `json:"elapsedMs"`
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetricsProm)
	s.mux.HandleFunc("GET /graphs", s.handleListGraphs)
	s.mux.HandleFunc("POST /graphs", s.handleLoadGraph)
	s.mux.HandleFunc("DELETE /graphs/{name...}", s.handleEvictGraph)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("GET /stream", s.handleStreamGet)
	s.jobsRoutes()
	s.clusterRoutes()
	s.debugRoutes()
}

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // client disconnects are not server errors
}

// ndjsonFlusher resolves w's http.Flusher before the response header is
// written. NDJSON endpoints deliver lines incrementally when they can,
// but a ResponseWriter wrapped by middleware that hides Flusher must not
// break them: the response is then fully buffered — correct, just not
// incremental — and the header tells the client not to wait on
// line-by-line delivery.
func ndjsonFlusher(w http.ResponseWriter) http.Flusher {
	f, ok := w.(http.Flusher)
	if !ok {
		w.Header().Set("X-Kplexd-Buffered", "1")
	}
	return f
}

// fail writes a JSON error and scores the right counter.
func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	if code == http.StatusTooManyRequests {
		s.met.Rejected.Add(1)
	} else {
		s.met.Errors.Add(1)
	}
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"counters":         s.Metrics(),
		"cache_entries":    s.cache.len(),
		"resident_graphs":  s.reg.Len(),
		"prepared_entries": s.prep.len(),
		"tenants":          s.qos.Snapshot(),
	})
}

func (s *Server) handleListGraphs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.List())
}

// handleLoadGraph warms the registry: {"name": "..."} loads (or touches)
// the graph and returns its listing row, so operators can pay parse cost
// ahead of the first query.
func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&body); err != nil || body.Name == "" {
		s.fail(w, http.StatusBadRequest, "body must be {\"name\": \"<graph>\"}")
		return
	}
	e, err := s.reg.Acquire(body.Name)
	if err != nil {
		s.fail(w, http.StatusNotFound, err.Error())
		return
	}
	info := GraphInfo{Name: e.Name, Digest: e.Digest, N: e.G.N(), M: e.G.M()}
	s.reg.Release(e)
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleEvictGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	switch err := s.reg.Evict(name); {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]string{"evicted": name})
	case errors.Is(err, ErrInUse):
		s.fail(w, http.StatusConflict, err.Error())
	default:
		s.fail(w, http.StatusNotFound, err.Error())
	}
}

// parseOptions validates the request and builds the engine Options.
func (s *Server) parseOptions(req *queryRequest) (kplex.Options, error) {
	if req.Graph == "" {
		return kplex.Options{}, fmt.Errorf("graph is required")
	}
	if req.K < 1 || req.K > s.cfg.MaxK {
		return kplex.Options{}, fmt.Errorf("k must be in [1, %d], got %d", s.cfg.MaxK, req.K)
	}
	switch req.Mode {
	case "count", "topk", "histogram", "stream":
	default:
		return kplex.Options{}, fmt.Errorf("mode must be count, topk, histogram or stream, got %q", req.Mode)
	}
	if req.Mode == "topk" {
		if req.TopN == 0 {
			req.TopN = 10
		}
		if req.TopN < 1 || req.TopN > s.cfg.MaxTopN {
			return kplex.Options{}, fmt.Errorf("topn must be in [1, %d], got %d", s.cfg.MaxTopN, req.TopN)
		}
	}
	if req.Threads < 0 || req.Threads > s.cfg.MaxThreads {
		return kplex.Options{}, fmt.Errorf("threads must be in [0, %d], got %d", s.cfg.MaxThreads, req.Threads)
	}
	opts := kplex.NewOptions(req.K, req.Q)
	opts.Threads = req.Threads
	if opts.Threads <= 0 {
		opts.Threads = s.cfg.DefaultThreads
	}
	switch req.Scheduler {
	case "", "stages":
		opts.Scheduler = kplex.SchedulerStages
	case "global-queue":
		opts.Scheduler = kplex.SchedulerGlobalQueue
	case "steal":
		opts.Scheduler = kplex.SchedulerSteal
	case "auto":
		// Provisional: finalized against the predicted cost once the
		// prepared prologue (and with it the cost features) is resident.
		opts.Scheduler = kplex.SchedulerStages
	default:
		return kplex.Options{}, fmt.Errorf("unknown scheduler %q", req.Scheduler)
	}
	switch req.Route {
	case "", "sync":
	case "auto":
		if req.Mode == "stream" {
			return kplex.Options{}, fmt.Errorf("route=auto applies to cacheable modes only, not stream")
		}
	default:
		return kplex.Options{}, fmt.Errorf("route must be sync or auto, got %q", req.Route)
	}
	if req.DeadlineMS < 0 {
		return kplex.Options{}, fmt.Errorf("deadlineMs must be >= 0, got %d", req.DeadlineMS)
	}
	if req.DeadlineMS > 0 && req.Mode == "stream" {
		return kplex.Options{}, fmt.Errorf("deadlineMs applies to cacheable modes only; a stream is bounded by its client")
	}
	if req.Sample != 0 {
		if req.Sample < 0 || req.Sample >= 1 {
			return kplex.Options{}, fmt.Errorf("sample must be in (0, 1), got %v", req.Sample)
		}
		if req.Mode != "count" && req.Mode != "histogram" {
			return kplex.Options{}, fmt.Errorf("sample estimates count and histogram modes only, got %q", req.Mode)
		}
		if req.DeadlineMS > 0 {
			return kplex.Options{}, fmt.Errorf("sample and deadlineMs are mutually exclusive bounded-answer modes")
		}
	}
	if opts.Threads > 1 {
		// Straggler splitting: a service must not let one deep subtree pin
		// a worker while its siblings idle (Section 6's τ_time).
		opts.TaskTimeout = 2 * time.Millisecond
	}
	if err := opts.Validate(); err != nil {
		return kplex.Options{}, err
	}
	return opts, nil
}

// cacheKey is the result-cache identity of a cacheable query: content
// digest of the graph, the normalized result-defining options, the mode,
// and the mode's own parameters.
func cacheKey(digest string, opts *kplex.Options, req *queryRequest) string {
	key := digest + "|" + opts.ResultKey() + "|" + req.Mode
	if req.Mode == "topk" {
		key += "|n=" + strconv.Itoa(req.TopN)
	}
	if req.Sample > 0 {
		// An estimate must never answer (or be answered by) an exact query.
		key += "|sample=" + strconv.FormatFloat(req.Sample, 'g', -1, 64)
	}
	return key
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	opts, err := s.parseOptions(&req)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Mode == "stream" {
		s.serveStream(w, r, &req, opts)
		return
	}
	tenant := tenantOf(r)
	s.met.Queries.Add(1)
	s.tenantQueries.Add(tenant, 1)
	t := obs.FromContext(r.Context())
	started := time.Now()
	inf := s.inflight.Register("query", req.Graph, req.K, req.Q, req.Mode, t.ID())
	defer func() {
		inf.Done()
		s.hist.query.ObserveSince(started)
		s.recordSlow(slowRecord{Kind: "query", Graph: req.Graph, K: req.K, Q: req.Q, Mode: req.Mode, TraceID: t.ID()}, started)
	}()

	entry, err := s.reg.Acquire(req.Graph)
	if err != nil {
		s.fail(w, http.StatusNotFound, err.Error())
		return
	}
	defer s.reg.Release(entry)

	key := cacheKey(entry.Digest, &opts, &req)
	if val, ok := s.cache.get(key); ok {
		s.met.CacheHits.Add(1)
		t.StartSpan("cache").Attr("hit", "true").End()
		s.respond(w, &req, entry, val, true, false)
		return
	}
	s.met.CacheMisses.Add(1)

	if req.DeadlineMS > 0 {
		// Partial results must not poison the cache or be flight-shared; the
		// deadline path runs outside both (a full-result finish still caches).
		s.executeDeadline(w, r, t, inf, entry, &req, opts, tenant, key)
		return
	}

	if req.Route == "auto" && s.jobs != nil && req.Sample == 0 {
		if man, pred, routed := s.maybeRouteAsync(entry, &req, opts, tenant); routed {
			s.met.RoutedAsync.Add(1)
			writeJSON(w, http.StatusAccepted, map[string]any{
				"job":         man,
				"predictedMs": float64(pred) / float64(time.Millisecond),
			})
			return
		}
	}

	flightSpan := t.StartSpan("singleflight")
	val, fromCache, shared, err := s.flight.do(key, func() (*queryResult, bool, error) {
		// A just-finished flight may have filled the cache between our miss
		// and this call; re-check before paying for an enumeration.
		if val, ok := s.cache.get(key); ok {
			return val, true, nil
		}
		inf.SetStage("admission")
		admSpan := t.StartSpan("admission")
		// The admission wait is bounded by the leader's request context: a
		// client that gives up while queued must free its place instead of
		// parking a server-lifetime waiter. Execution below stays detached
		// (s.baseCtx) — once a slot is held the result is cacheable and
		// worth finishing for the next identical query.
		release, err := s.admit(r.Context(), tenant)
		admSpan.EndErr(err)
		if err != nil {
			return nil, false, err
		}
		defer release()
		s.met.Executions.Add(1)
		var val *queryResult
		if req.Sample > 0 {
			val, err = s.executeSampled(t, inf, entry, &req, opts)
		} else {
			val, err = s.execute(t, inf, entry, &req, opts)
		}
		if err != nil {
			return nil, false, err
		}
		s.cache.put(key, val)
		return val, false, nil
	})
	if shared {
		flightSpan.Attr("shared", "true")
	}
	flightSpan.EndErr(err)
	if err != nil {
		switch {
		case isOverload(err):
			s.reject429(w, err)
		case errors.Is(err, context.Canceled):
			// The flight leader's client left during the admission wait; the
			// leader is gone and any followers should simply retry.
			s.fail(w, http.StatusServiceUnavailable, "query abandoned during admission: "+err.Error())
		case errors.Is(err, context.DeadlineExceeded):
			s.fail(w, http.StatusGatewayTimeout, "query exceeded the server's time budget")
		default:
			s.fail(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	// Exactly one counter per answered query: served from cache, shared an
	// in-flight call, or executed (counted inside the flight fn).
	switch {
	case fromCache:
		s.met.CacheHits.Add(1)
	case shared:
		s.met.FlightShared.Add(1)
	}
	s.respond(w, &req, entry, val, fromCache, shared)
}

// execute runs one cacheable enumeration. The context is detached from the
// requesting client: the result is cacheable, so completing it is useful
// even if the first asker is gone; Config.QueryTimeout is its bound and
// Server.Close its shutdown path. The run goes through the prepared-graph
// cache, so only the first query of a (digest, k, q) cell pays the O(n+m)
// prologue. t and inf are the executing request's trace and in-flight
// handle (both nil-safe); requests that share this execution through
// singleflight see only their own "singleflight" span.
func (s *Server) execute(t *obs.Trace, inf *obs.InflightEntry, entry *GraphEntry, req *queryRequest, opts kplex.Options) (*queryResult, error) {
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.QueryTimeout)
	defer cancel()
	inf.SetStage("prepare")
	prepSpan := t.StartSpan("prepare").Attr("graph", req.Graph)
	p, err := s.prepared(entry.G, entry.Digest, &opts)
	prepSpan.EndErr(err)
	if err != nil {
		return nil, err
	}
	inf.SetSeedsTotal(int64(p.SeedSpace()))
	inf.SetPredicted(s.router.predict(p.CostFeatures()))
	if req.Scheduler == "auto" {
		tuneFor(s.router.predict(p.CostFeatures()), req.Threads, s.cfg.DefaultThreads, &opts)
		s.met.AutoTuned.Add(1)
	}
	// Service executions always carry the phase timers and the per-seed
	// progress hook: both are execution-only (never in the cache key), and
	// their cost — two clock reads per seed build plus an atomic increment
	// per seed — is noise against the HTTP round-trip the request already
	// paid. The engine's direct API keeps its zero-overhead default.
	opts.PhaseTimers = true
	opts.OnSeedDone = func(int, kplex.Stats) { inf.SeedDone() }
	inf.SetStage("enumerate")
	enumSpan := t.StartSpan("enumerate").Attr("mode", req.Mode)
	val := &queryResult{Mode: req.Mode, Digest: entry.Digest, ComputedAt: time.Now()}
	var res kplex.Result
	switch req.Mode {
	case "count":
		res, err = kplex.RunPrepared(ctx, p, opts)
	case "topk":
		val.TopK, res, err = kplex.EnumerateTopKPrepared(ctx, p, opts, req.TopN)
		if val.TopK == nil {
			val.TopK = [][]int{} // encode as [] rather than null
		}
	case "histogram":
		val.Histogram, res, err = kplex.SizeHistogramPrepared(ctx, p, opts)
	}
	if err != nil {
		enumSpan.EndErr(err)
		return nil, err
	}
	enumSpan.Attr("count", fmt.Sprint(res.Count)).
		Attr("seedBuildMs", fmt.Sprintf("%.3f", float64(res.Stats.SeedBuildNS)/1e6)).
		Attr("branchMs", fmt.Sprintf("%.3f", float64(res.Stats.BranchNS)/1e6)).
		End()
	val.Count = res.Count
	val.MaxSize = int(res.Stats.MaxPlexSize)
	val.Elapsed = res.Elapsed
	val.Stats = res.Stats
	s.observeCost(p.CostFeatures(), res.Elapsed)
	return val, nil
}

// maybeRouteAsync converts a route=auto query into a background job when
// its calibrated predicted runtime exceeds the async threshold. A false
// return (prediction under threshold, prologue failure, submit failure)
// falls through to the synchronous path, which will surface any real error
// with proper status mapping.
func (s *Server) maybeRouteAsync(entry *GraphEntry, req *queryRequest, opts kplex.Options, tenant string) (*jobs.Manifest, time.Duration, bool) {
	p, err := s.prepared(entry.G, entry.Digest, &opts)
	if err != nil {
		return nil, 0, false
	}
	pred := s.router.predict(p.CostFeatures())
	if pred <= s.cfg.RouteAsyncThreshold {
		return nil, pred, false
	}
	spec := jobs.Spec{Graph: req.Graph, K: req.K, Q: req.Q, Threads: req.Threads, Tenant: tenant}
	if req.Mode == "topk" {
		spec.TopN = req.TopN
	}
	if req.Scheduler == "auto" {
		// Predicted past the async threshold: that is tuneFor's top tier.
		spec.Scheduler = "steal"
	} else {
		spec.Scheduler = req.Scheduler
	}
	man, err := s.jobs.Submit(spec)
	if err != nil {
		return nil, 0, false
	}
	return man, pred, true
}

func (s *Server) respond(w http.ResponseWriter, req *queryRequest, entry *GraphEntry, val *queryResult, cached, shared bool) {
	writeJSON(w, http.StatusOK, queryResponse{
		Graph:     req.Graph,
		Digest:    entry.Digest,
		K:         req.K,
		Q:         req.Q,
		Mode:      req.Mode,
		Count:     val.Count,
		MaxSize:   val.MaxSize,
		ElapsedMS: float64(val.Elapsed) / float64(time.Millisecond),
		Cached:    cached,
		Shared:    shared,
		TopK:      val.TopK,
		Histogram: val.Histogram,
		Stats:     val.Stats,
		Sample:    val.Sample,
	})
}

// handleStreamGet adapts GET /stream?graph=..&k=..&q=..[&threads=..
// &scheduler=..] to the streaming path, for clients (curl, browsers) that
// cannot POST bodies comfortably.
func (s *Server) handleStreamGet(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	atoi := func(key string) int {
		v, _ := strconv.Atoi(qs.Get(key))
		return v
	}
	req := queryRequest{
		Graph:     qs.Get("graph"),
		K:         atoi("k"),
		Q:         atoi("q"),
		Mode:      "stream",
		Threads:   atoi("threads"),
		Scheduler: qs.Get("scheduler"),
	}
	opts, err := s.parseOptions(&req)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	s.serveStream(w, r, &req, opts)
}

// serveStream answers a stream-mode query as NDJSON: one JSON array per
// plex, then a summary object. Results flow straight from the engine's
// bounded channel; a disconnecting client cancels the request context,
// which stops the enumeration (no goroutine survives an abandoned
// stream). Stream results are not cached: the transfer, not the
// enumeration, dominates them, and caching materialised result sets is
// exactly what the streaming path exists to avoid.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request, req *queryRequest, opts kplex.Options) {
	tenant := tenantOf(r)
	s.met.Streams.Add(1)
	s.tenantQueries.Add(tenant, 1)
	t := obs.FromContext(r.Context())
	started := time.Now()
	inf := s.inflight.Register("stream", req.Graph, req.K, req.Q, req.Mode, t.ID())
	defer func() {
		inf.Done()
		s.hist.stream.ObserveSince(started)
		s.recordSlow(slowRecord{Kind: "stream", Graph: req.Graph, K: req.K, Q: req.Q, Mode: req.Mode, TraceID: t.ID()}, started)
	}()
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	inf.SetStage("admission")
	admSpan := t.StartSpan("admission")
	release, err := s.admit(ctx, tenant)
	admSpan.EndErr(err)
	if err != nil {
		if isOverload(err) {
			s.reject429(w, err)
		} else {
			s.fail(w, http.StatusBadRequest, "client went away: "+err.Error())
		}
		return
	}
	defer release()

	entry, err := s.reg.Acquire(req.Graph)
	if err != nil {
		s.fail(w, http.StatusNotFound, err.Error())
		return
	}
	defer s.reg.Release(entry)

	opts.StreamBuffer = s.cfg.StreamBuffer
	inf.SetStage("prepare")
	prepSpan := t.StartSpan("prepare").Attr("graph", req.Graph)
	p, err := s.prepared(entry.G, entry.Digest, &opts)
	prepSpan.EndErr(err)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	inf.SetSeedsTotal(int64(p.SeedSpace()))
	inf.SetPredicted(s.router.predict(p.CostFeatures()))
	if req.Scheduler == "auto" {
		tuneFor(s.router.predict(p.CostFeatures()), req.Threads, s.cfg.DefaultThreads, &opts)
		s.met.AutoTuned.Add(1)
	}
	opts.PhaseTimers = true
	opts.OnSeedDone = func(int, kplex.Stats) { inf.SeedDone() }
	inf.SetStage("enumerate")
	streamSpan := t.StartSpan("enumerate").Attr("mode", "stream")
	h, err := kplex.RunStreamPrepared(ctx, p, opts)
	if err != nil {
		streamSpan.EndErr(err)
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Graph-Digest", entry.Digest)
	flusher := ndjsonFlusher(w)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	lines := 0
	lastFlush := time.Now()
	for p := range h.C() {
		if err := enc.Encode(p); err != nil {
			cancel() // writer dead: stop the engine, then drain to the close
			break
		}
		lines++
		s.met.StreamedPlexes.Add(1)
		if flusher != nil && (lines&63 == 0 || time.Since(lastFlush) > 100*time.Millisecond) {
			flusher.Flush()
			lastFlush = time.Now()
		}
	}
	res, runErr := h.Wait()
	if runErr != nil {
		s.met.StreamsCancelled.Add(1)
	} else {
		s.observeCost(p.CostFeatures(), res.Elapsed)
	}
	// A client that disconnected mid-stream cancelled the work; that is a
	// "cancelled" span, not a "failed" one — only a genuine engine error
	// marks the stream failed.
	if runErr != nil && r.Context().Err() != nil {
		streamSpan.Attr("plexes", fmt.Sprint(lines)).EndStatus("cancelled")
	} else {
		streamSpan.Attr("plexes", fmt.Sprint(lines)).EndErr(runErr)
	}
	enc.Encode(streamSummary{ //nolint:errcheck // best effort on a dying conn
		Done:      runErr == nil,
		Count:     res.Count,
		Truncated: runErr != nil,
		ElapsedMS: float64(res.Elapsed) / float64(time.Millisecond),
	})
	if flusher != nil {
		flusher.Flush()
	}
}
