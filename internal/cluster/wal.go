package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"strings"

	"repro/internal/jobs"
)

// The coordinator's per-job write-ahead log: one CRC32-prefixed NDJSON
// record per completed range, in completion order, each carrying the
// range's sealed aggregate. Unlike the jobs layer's log — whose records
// are cumulative snapshots — range aggregates are independent (ranges
// partition the seed space), so replay is simply "collect the completed
// ranges"; the merged result is reconstructed from them in range order.
// The same torn-tail rule applies: replay stops at the first line that
// fails its checksum or lacks its newline, and the intact prefix is kept.

const rangeWALName = "ranges.ndjson"

// rangeWALVersion is the schema version stamped on every record; replay
// rejects records written by a newer binary (see the jobs WAL for the
// rationale — truncating CRC-valid newer data would let a stale
// coordinator append colliding sequence numbers after it).
const rangeWALVersion = 1

type rangeRecord struct {
	Ver   int             `json:"v"`
	Seq   int             `json:"seq"`
	Range int             `json:"range"` // index into the manifest's pinned partition
	Agg   *jobs.Aggregate `json:"agg"`
	// EnumMS is the cumulative distributed wall-clock up to this record,
	// across coordinator incarnations.
	EnumMS float64 `json:"enumMs"`
}

type rangeWAL struct {
	f   *os.File
	seq int
}

func openRangeWAL(path string, lastSeq int) (*rangeWAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &rangeWAL{f: f, seq: lastSeq}, nil
}

// append writes rec with the next sequence number and fsyncs; the
// aggregate must already be sealed. A failed write truncates back to the
// pre-append size so a retry cannot weld a partial line onto the next
// record (same contract as the jobs WAL).
func (w *rangeWAL) append(rec *rangeRecord) error {
	rec.Ver = rangeWALVersion
	rec.Seq = w.seq + 1
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	st, err := w.f.Stat()
	if err != nil {
		return err
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload)
	if _, err := w.f.WriteString(line); err != nil {
		w.f.Truncate(st.Size()) //nolint:errcheck // best effort, see above
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Truncate(st.Size()) //nolint:errcheck
		return err
	}
	w.seq++
	return nil
}

func (w *rangeWAL) Close() error { return w.f.Close() }

// rangeReplay is the durable state reconstructed from a log.
type rangeReplay struct {
	aggs       map[int]*jobs.Aggregate // completed range index -> unsealed aggregate
	lastSeq    int
	enumMS     float64
	truncated  bool
	validBytes int64
}

// replayRangeWAL reads the log at path. A missing file is an empty log. A
// duplicate record for an already-replayed range is ignored (first wins —
// the in-memory idempotency rule applied once more at replay time);
// records from a newer schema version are a hard error routed to the
// job's failure path, not silently truncated.
func replayRangeWAL(path string, nRanges int) (*rangeReplay, error) {
	rep := &rangeReplay{aggs: make(map[int]*jobs.Aggregate)}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return rep, nil
	}
	if err != nil {
		return nil, err
	}

	rest := data
	for len(rest) > 0 {
		idx := bytes.IndexByte(rest, '\n')
		if idx < 0 {
			rep.truncated = true // unterminated tail
			break
		}
		line := rest[:idx]
		crcHex, payload, ok := strings.Cut(string(line), " ")
		if !ok || len(crcHex) != 8 {
			rep.truncated = true
			break
		}
		var want uint32
		if _, err := fmt.Sscanf(crcHex, "%08x", &want); err != nil {
			rep.truncated = true
			break
		}
		if crc32.ChecksumIEEE([]byte(payload)) != want {
			rep.truncated = true
			break
		}
		var rec rangeRecord
		if err := json.Unmarshal([]byte(payload), &rec); err != nil || rec.Agg == nil {
			rep.truncated = true
			break
		}
		if rec.Ver > rangeWALVersion {
			return nil, fmt.Errorf("cluster: range WAL record %d has schema version %d, but this binary understands at most %d (state dir shared with a newer coordinator?)", rec.Seq, rec.Ver, rangeWALVersion)
		}
		if rec.Seq != rep.lastSeq+1 {
			rep.truncated = true // a lost record orphans everything after it
			break
		}
		if rec.Range < 0 || rec.Range >= nRanges {
			return nil, fmt.Errorf("cluster: range WAL record %d names range %d of a %d-range partition (checkpoint from a different decomposition?)", rec.Seq, rec.Range, nRanges)
		}
		if _, dup := rep.aggs[rec.Range]; !dup {
			if err := rec.Agg.Unseal(); err != nil {
				rep.truncated = true
				break
			}
			rep.aggs[rec.Range] = rec.Agg
		}
		rep.lastSeq = rec.Seq
		rep.enumMS = rec.EnumMS
		rep.validBytes += int64(idx) + 1
		rest = rest[idx+1:]
	}
	return rep, nil
}
