// Package cluster distributes one enumeration across many kplexd
// processes. The unit of distribution is a contiguous range of the
// deterministic seed id space (kplex.SeedSpace): a coordinator partitions
// a job's seed space into ranges, leases each range to a worker kplexd,
// and merges the per-range aggregates (count, top-k, size histogram,
// XOR-of-SHA-256 plex digest) through the jobs layer's mergeable
// Aggregate. Because the seed decomposition depends only on the graph
// content and the result-defining options, and because aggregate merging
// is associative and commutative over disjoint plex sets, the merged
// result is identical — count, top-k, histogram and digest — to a
// single-node run, no matter how the ranges were partitioned, which
// worker ran each one, or how many times a range was retried.
//
// Workers are plain kplexd instances: every kplexd serves POST
// /cluster/run, which verifies the requested graph digest against its own
// copy (the digest-verification handshake), resolves the run prologue
// from its prepared-graph cache, enumerates exactly the leased range by
// running with the complement of the range as Options.SkipSeeds, and
// streams progress plus a final sealed Aggregate back as NDJSON.
//
// Failure semantics mirror the engine's intra-process work stealing one
// level up: a lease that stops reporting progress for LeaseTimeout is
// cancelled and its range returns to the pending queue; a worker whose
// connection drops mid-range loses the lease the same way; and once the
// pending queue is empty, idle workers speculatively re-lease the
// longest-running straggler ranges (range stealing), with the first
// completion winning and later reports ignored idempotently. Completed
// ranges are recorded in a CRC-guarded write-ahead log under the
// coordinator's state dir, so a coordinator restart resumes a distributed
// job without re-running finished ranges.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/jobs"
	"repro/internal/kplex"
	"repro/internal/obs"
)

// Spec is what a client submits to the coordinator: the result-defining
// query plus distribution knobs. Distributed jobs are single-query only —
// batch items fan out across ranges poorly (every member would ride every
// range) and can always be submitted as one distributed job per cell.
type Spec struct {
	Graph string `json:"graph"`
	K     int    `json:"k"`
	Q     int    `json:"q"`
	TopN  int    `json:"topn,omitempty"` // largest plexes kept (default 10)
	// Ranges is the number of seed ranges the job is split into (default
	// RangesPerWorker × registered workers). More ranges mean finer-grained
	// reassignment and stealing at the cost of more per-range prologue
	// verification round trips.
	Ranges int `json:"ranges,omitempty"`
	// Threads is the engine parallelism each worker runs its ranges with
	// (0: the worker's own default).
	Threads   int    `json:"threads,omitempty"`
	Scheduler string `json:"scheduler,omitempty"` // "", stages, global-queue, steal
}

// Range is one contiguous slice [Lo, Hi) of a job's seed id space. A
// range's identity is its index in the manifest's pinned partition.
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Manifest is the durable per-job metadata. The partition (Ranges), graph
// digest and seed-space size are pinned at first run: every later
// incarnation — and every worker — must agree on them or the per-range
// checkpoints would describe a different decomposition.
type Manifest struct {
	ID         string     `json:"id"`
	Spec       Spec       `json:"spec"`
	State      jobs.State `json:"state"`
	Digest     string     `json:"digest,omitempty"`
	TotalSeeds int        `json:"totalSeeds,omitempty"`
	Ranges     []Range    `json:"ranges,omitempty"`
	RangesDone int        `json:"rangesDone"`
	Resumes    int        `json:"resumes"`
	Error      string     `json:"error,omitempty"`
	CreatedAt  time.Time  `json:"createdAt"`
	StartedAt  time.Time  `json:"startedAt,omitzero"`
	FinishedAt time.Time  `json:"finishedAt,omitzero"`
	// EnumMS is cumulative distributed enumeration wall-clock across
	// coordinator incarnations.
	EnumMS float64 `json:"enumMs,omitempty"`
	// TraceID names the job's stitched trace in the coordinator's
	// /debug/traces ring; pinned at first run.
	TraceID string `json:"traceId,omitempty"`
}

// Progress is the live view streamed to watchers.
type Progress struct {
	State       jobs.State `json:"state"`
	RangesDone  int        `json:"rangesDone"`
	RangesTotal int        `json:"rangesTotal"`
	SeedsDone   int        `json:"seedsDone"` // completed ranges + live lease progress
	TotalSeeds  int        `json:"totalSeeds"`
	Leased      int        `json:"leased"`               // ranges currently out on lease
	Reassigned  int64      `json:"reassigned,omitempty"` // leases lost to failure or expiry
	Stolen      int64      `json:"stolen,omitempty"`     // speculative straggler re-leases
	ElapsedMS   float64    `json:"elapsedMs"`
	Error       string     `json:"error,omitempty"`
}

// View is one distributed job in listings.
type View struct {
	Manifest
	Progress Progress `json:"progress"`
}

// WorkerView is one registered worker in GET /cluster/workers listings.
type WorkerView struct {
	URL        string    `json:"url"`
	Busy       bool      `json:"busy"`
	Fails      int       `json:"fails"` // consecutive failures; reset on success
	RangesDone int64     `json:"rangesDone"`
	AddedAt    time.Time `json:"addedAt"`
	LastOK     time.Time `json:"lastOk,omitzero"`
}

// RangeRequest is the body of POST /cluster/run: one leased range. Digest
// and TotalSeeds carry the coordinator's view of the decomposition; the
// worker refuses the lease unless its own graph copy and prologue agree,
// so a stale file on one node degrades into a rejected lease instead of a
// silently wrong merge.
type RangeRequest struct {
	Graph      string `json:"graph"`
	Digest     string `json:"digest"`
	TotalSeeds int    `json:"totalSeeds"`
	K          int    `json:"k"`
	Q          int    `json:"q"`
	TopN       int    `json:"topn"`
	Threads    int    `json:"threads,omitempty"`
	Scheduler  string `json:"scheduler,omitempty"`
	Lo         int    `json:"lo"`
	Hi         int    `json:"hi"`
}

// RangeLine is one NDJSON line of a worker's range response: progress
// lines carry SeedsDone only; the final line carries Done plus the sealed
// aggregate (or Error).
type RangeLine struct {
	SeedsDone int             `json:"seedsDone"`
	Done      bool            `json:"done,omitempty"`
	Agg       *jobs.Aggregate `json:"agg,omitempty"`
	ElapsedMS float64         `json:"elapsedMs,omitempty"`
	Error     string          `json:"error,omitempty"`
	// Spans is the worker's share of a propagated trace (admission,
	// prepare, enumerate), shipped with the Done line so the coordinator
	// can stitch one distributed trace. Empty when the request carried no
	// Traceparent header.
	Spans []obs.SpanData `json:"spans,omitempty"`
}

// RunRange executes one leased range against a prepared handle: it
// enumerates exactly the seeds in [req.Lo, req.Hi) by skipping the
// complement, folds every delivered plex into a fresh aggregate, and
// reports per-seed completion through onSeed (monotonic count of range
// seeds finished). It is the worker-side core of POST /cluster/run,
// shared with in-process tests. opts must be the validated execution
// options of the (K, Q) cell the handle was prepared for.
func RunRange(ctx context.Context, p *kplex.Prepared, opts kplex.Options, req *RangeRequest, onSeed func(done int)) (*jobs.Aggregate, kplex.Result, error) {
	total := p.SeedSpace()
	if total != req.TotalSeeds {
		return nil, kplex.Result{}, fmt.Errorf("cluster: seed space disagrees: coordinator partitioned %d seeds, this worker's prologue has %d (graph content or binary version skew)", req.TotalSeeds, total)
	}
	if req.Lo < 0 || req.Hi > total || req.Lo >= req.Hi {
		return nil, kplex.Result{}, fmt.Errorf("cluster: range [%d, %d) outside the %d-seed space", req.Lo, req.Hi, total)
	}
	skip := &kplex.SeedSet{}
	for s := 0; s < total; s++ {
		if s < req.Lo || s >= req.Hi {
			skip.Add(s)
		}
	}

	// One aggregate guarded by one mutex: engine workers deliver plexes
	// concurrently, and unlike the jobs layer there is no intra-range
	// checkpoint, so per-seed buffering would buy nothing — the range is
	// all-or-nothing. Insertion order does not matter: count, histogram
	// and the XOR digest are commutative, and the bounded top-k list is a
	// selection under a strict total order over distinct plexes.
	var mu sync.Mutex
	agg := jobs.NewAggregate(req.TopN)
	done := 0
	opts.SkipSeeds = skip
	opts.OnPlex = func(plex []int) {
		mu.Lock()
		agg.AddPlex(plex)
		mu.Unlock()
	}
	opts.OnSeedDone = func(seed int, partial kplex.Stats) {
		mu.Lock()
		done++
		n := done
		mu.Unlock()
		if onSeed != nil {
			onSeed(n)
		}
	}
	res, err := kplex.RunPrepared(ctx, p, opts)
	if err != nil {
		return nil, res, err
	}
	if done != req.Hi-req.Lo {
		return nil, res, fmt.Errorf("cluster: internal accounting error: %d of %d range seeds reported done", done, req.Hi-req.Lo)
	}
	agg.Stats = res.Stats
	return agg, res, nil
}

// partition splits a seed space of total seeds into n contiguous ranges
// of near-equal size (the first total%n ranges are one seed longer). n is
// clamped to [1, total]; a zero-seed space has no ranges.
func partition(total, n int) []Range {
	if total <= 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	out := make([]Range, n)
	base, extra := total/n, total%n
	lo := 0
	for i := range out {
		size := base
		if i < extra {
			size++
		}
		out[i] = Range{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out
}

// validScheduler mirrors the jobs layer's accepted scheduler names.
func validScheduler(s string) bool {
	switch s {
	case "", "stages", "global-queue", "steal":
		return true
	}
	return false
}

// BuildOptions translates a range request into the engine options a
// worker runs it with, defaultThreads filling an unset thread count. The
// worker-side host (the kplexd handler) uses it so request → options
// translation cannot drift between coordinator and worker.
func BuildOptions(req *RangeRequest, defaultThreads int) (kplex.Options, error) {
	o := kplex.NewOptions(req.K, req.Q)
	o.Threads = req.Threads
	if o.Threads <= 0 {
		o.Threads = defaultThreads
	}
	switch req.Scheduler {
	case "", "stages":
		o.Scheduler = kplex.SchedulerStages
	case "global-queue":
		o.Scheduler = kplex.SchedulerGlobalQueue
	case "steal":
		o.Scheduler = kplex.SchedulerSteal
	default:
		return kplex.Options{}, fmt.Errorf("cluster: unknown scheduler %q", req.Scheduler)
	}
	if o.Threads > 1 {
		o.TaskTimeout = 2 * time.Millisecond
	}
	return o, nil
}

// GraphLoader is the coordinator's graph resolver; identical contract to
// jobs.GraphLoader.
type GraphLoader = jobs.GraphLoader
