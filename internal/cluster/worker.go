package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
)

// workerState is one registered worker. The URL is immutable; the mutable
// scheduling fields (busy, fails, nextTry) are guarded by the
// coordinator's mutex.
type workerState struct {
	url     string
	addedAt time.Time

	busy       bool
	fails      int       // consecutive failures, reset on success
	nextTry    time.Time // backoff gate after failures
	rangesDone int64
	lastOK     time.Time
}

// workerBackoff is how long a worker sits out after its n-th consecutive
// failure: linear up to a cap, so a flapping worker stops monopolising
// leases but a recovered one rejoins within seconds.
func workerBackoff(fails int) time.Duration {
	d := time.Duration(fails) * 500 * time.Millisecond
	if max := 5 * time.Second; d > max {
		d = max
	}
	return d
}

// callRange posts one leased range to a worker and consumes its NDJSON
// response: progress lines invoke onSeeds (monotonic count of range seeds
// the worker finished, used to feed the lease watchdog), and the final
// Done line yields the range's aggregate plus the worker's trace spans
// (when traceparent is non-empty, it is sent as the Traceparent header so
// the worker records its share of the coordinator's trace). Any transport
// error, in-band error line, or stream that ends without a Done line
// fails the lease.
func callRange(ctx context.Context, hc *http.Client, workerURL string, req *RangeRequest, traceparent string, onSeeds func(int)) (*jobs.Aggregate, []obs.SpanData, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimRight(workerURL, "/")+"/cluster/run", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		hreq.Header.Set(obs.TraceparentHeader, traceparent)
	}
	resp, err := hc.Do(hreq)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, nil, fmt.Errorf("cluster: worker %s refused range [%d, %d): %s: %s", workerURL, req.Lo, req.Hi, resp.Status, strings.TrimSpace(string(msg)))
	}

	sc := bufio.NewScanner(resp.Body)
	// The final line carries the sealed aggregate, whose top-k list can be
	// arbitrarily wide; give the scanner room well past any practical plex.
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rl RangeLine
		if err := json.Unmarshal(line, &rl); err != nil {
			return nil, nil, fmt.Errorf("cluster: worker %s sent an unparseable range line: %w", workerURL, err)
		}
		if rl.Error != "" {
			return nil, nil, fmt.Errorf("cluster: worker %s failed range [%d, %d): %s", workerURL, req.Lo, req.Hi, rl.Error)
		}
		if rl.Done {
			if rl.Agg == nil {
				return nil, nil, fmt.Errorf("cluster: worker %s completed range [%d, %d) without an aggregate", workerURL, req.Lo, req.Hi)
			}
			if err := rl.Agg.Unseal(); err != nil {
				return nil, nil, fmt.Errorf("cluster: worker %s: %w", workerURL, err)
			}
			return rl.Agg, rl.Spans, nil
		}
		if onSeeds != nil {
			onSeeds(rl.SeedsDone)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("cluster: worker %s stream broke mid-range: %w", workerURL, err)
	}
	return nil, nil, fmt.Errorf("cluster: worker %s closed the stream before completing range [%d, %d)", workerURL, req.Lo, req.Hi)
}
