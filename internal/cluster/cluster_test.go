package cluster

// Unit tests for the distribution primitives: the partitioner, the
// request → engine-options translation, and RunRange's guarantee that
// merging per-range aggregates reproduces the single-node answer.

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/kplex"
)

// testLoader resolves "corpus:<name>" against the builtin corpus, the
// same contract the coordinator's host wires in.
func testLoader(name string) (graph.CSR, string, func(), error) {
	cg := gen.CorpusGraphByName(strings.TrimPrefix(name, "corpus:"))
	if cg == nil {
		return nil, "", nil, fmt.Errorf("unknown graph %q", name)
	}
	g := cg.Build()
	return g, graph.DigestHex(g), func() {}, nil
}

// refAggregate computes the uninterrupted single-node ground truth for a
// cell through the same Aggregate arithmetic the merge uses.
func refAggregate(t *testing.T, graphName string, k, q, topn int) *jobs.Aggregate {
	t.Helper()
	g, _, release, err := testLoader(graphName)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	agg := jobs.NewAggregate(topn)
	opts := kplex.NewOptions(k, q)
	opts.OnPlex = func(p []int) { agg.AddPlex(p) }
	res, err := kplex.Run(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	agg.Stats = res.Stats
	return agg
}

// assertSameResultSet pins got to the reference bit for bit: count,
// max size, histogram, top-k and the order-independent plex digest.
func assertSameResultSet(t *testing.T, got, ref *jobs.Aggregate) {
	t.Helper()
	if got.Count != ref.Count {
		t.Errorf("count = %d, want %d", got.Count, ref.Count)
	}
	if got.MaxSize != ref.MaxSize {
		t.Errorf("maxSize = %d, want %d", got.MaxSize, ref.MaxSize)
	}
	if got.PlexDigest() != ref.PlexDigest() {
		t.Errorf("plex digest = %s, want %s (result set differs)", got.PlexDigest(), ref.PlexDigest())
	}
	if len(got.Histogram) != len(ref.Histogram) {
		t.Errorf("histogram has %d sizes, want %d", len(got.Histogram), len(ref.Histogram))
	}
	for s, c := range ref.Histogram {
		if got.Histogram[s] != c {
			t.Errorf("histogram[%d] = %d, want %d", s, got.Histogram[s], c)
		}
	}
	if len(got.TopK) != len(ref.TopK) {
		t.Fatalf("topk has %d entries, want %d", len(got.TopK), len(ref.TopK))
	}
	for i := range ref.TopK {
		if len(got.TopK[i]) != len(ref.TopK[i]) {
			t.Fatalf("topk[%d] has size %d, want %d", i, len(got.TopK[i]), len(ref.TopK[i]))
		}
		for j := range ref.TopK[i] {
			if got.TopK[i][j] != ref.TopK[i][j] {
				t.Fatalf("topk[%d] = %v, want %v", i, got.TopK[i], ref.TopK[i])
			}
		}
	}
}

func TestPartition(t *testing.T) {
	for _, tc := range []struct{ total, n, wantRanges int }{
		{10, 3, 3},
		{10, 1, 1},
		{10, 0, 1}, // clamped up
		{3, 10, 3}, // clamped down: no empty ranges
		{0, 4, 0},  // empty seed space
		{100, 7, 7},
		{1, 1, 1},
	} {
		rs := partition(tc.total, tc.n)
		if len(rs) != tc.wantRanges {
			t.Errorf("partition(%d, %d) = %d ranges, want %d", tc.total, tc.n, len(rs), tc.wantRanges)
			continue
		}
		// Ranges must tile [0, total) contiguously with near-equal sizes.
		lo := 0
		minSize, maxSize := tc.total+1, 0
		for _, r := range rs {
			if r.Lo != lo || r.Hi <= r.Lo {
				t.Fatalf("partition(%d, %d): range %+v breaks contiguity at %d", tc.total, tc.n, r, lo)
			}
			size := r.Hi - r.Lo
			if size < minSize {
				minSize = size
			}
			if size > maxSize {
				maxSize = size
			}
			lo = r.Hi
		}
		if len(rs) > 0 {
			if lo != tc.total {
				t.Errorf("partition(%d, %d) covers [0, %d)", tc.total, tc.n, lo)
			}
			if maxSize-minSize > 1 {
				t.Errorf("partition(%d, %d): sizes range %d..%d, want near-equal", tc.total, tc.n, minSize, maxSize)
			}
		}
	}
}

func TestBuildOptions(t *testing.T) {
	req := &RangeRequest{K: 2, Q: 6, Scheduler: "steal", Threads: 3}
	opts, err := BuildOptions(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Scheduler != kplex.SchedulerSteal || opts.Threads != 3 {
		t.Errorf("opts = sched %v threads %d, want steal/3", opts.Scheduler, opts.Threads)
	}
	if opts.TaskTimeout != 2*time.Millisecond {
		t.Errorf("multi-thread TaskTimeout = %v, want 2ms", opts.TaskTimeout)
	}

	req = &RangeRequest{K: 2, Q: 6} // defaults
	opts, err = BuildOptions(req, 1)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Threads != 1 || opts.TaskTimeout != 0 {
		t.Errorf("single-thread opts = threads %d tau %v, want 1/0", opts.Threads, opts.TaskTimeout)
	}

	if _, err := BuildOptions(&RangeRequest{K: 2, Q: 6, Scheduler: "lifo"}, 1); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

// TestRunRangeMergesToFullRun splits a corpus cell into ranges, runs each
// through RunRange, merges, and requires the merged aggregate to be
// identical to the uninterrupted run — for several partitionings.
func TestRunRangeMergesToFullRun(t *testing.T) {
	const graphName, k, q, topn = "corpus:planted-overlap", 2, 6, 7
	ref := refAggregate(t, graphName, k, q, topn)
	g, digest, release, err := testLoader(graphName)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	for _, nRanges := range []int{1, 3, 7} {
		t.Run(fmt.Sprintf("ranges=%d", nRanges), func(t *testing.T) {
			opts, err := BuildOptions(&RangeRequest{K: k, Q: q, Threads: 2}, 2)
			if err != nil {
				t.Fatal(err)
			}
			p, err := kplex.Prepare(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			total := p.SeedSpace()
			merged := jobs.NewAggregate(topn)
			for _, r := range partition(total, nRanges) {
				req := &RangeRequest{
					Graph: graphName, Digest: digest, TotalSeeds: total,
					K: k, Q: q, TopN: topn, Threads: 2, Lo: r.Lo, Hi: r.Hi,
				}
				// onSeed fires concurrently from engine workers; track the high
				// water mark the way the server handler does.
				var seeds atomic.Int64
				agg, _, err := RunRange(context.Background(), p, opts, req, func(n int) {
					for {
						have := seeds.Load()
						if int64(n) <= have || seeds.CompareAndSwap(have, int64(n)) {
							return
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				if got := seeds.Load(); got != int64(r.Hi-r.Lo) {
					t.Fatalf("range %+v reported %d seeds done", r, got)
				}
				merged.Merge(agg)
			}
			assertSameResultSet(t, merged, ref)
		})
	}
}

// TestRunRangeRejectsBadGeometry covers the worker-side refusals that turn
// coordinator/worker skew into failed leases instead of wrong merges.
func TestRunRangeRejectsBadGeometry(t *testing.T) {
	g, _, release, err := testLoader("corpus:planted-a")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	opts := kplex.NewOptions(2, 6)
	p, err := kplex.Prepare(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	total := p.SeedSpace()

	if _, _, err := RunRange(context.Background(), p, opts, &RangeRequest{TotalSeeds: total + 1, Lo: 0, Hi: 1}, nil); err == nil {
		t.Error("seed-space mismatch accepted")
	}
	for _, r := range []Range{{-1, 1}, {0, total + 1}, {3, 3}, {5, 2}} {
		if _, _, err := RunRange(context.Background(), p, opts, &RangeRequest{TotalSeeds: total, Lo: r.Lo, Hi: r.Hi}, nil); err == nil {
			t.Errorf("range %+v accepted", r)
		}
	}
}
