package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
)

// The dispatcher is one job's scheduling loop: it holds the range board
// (pending / leased / done), hands ranges to idle workers, watches leases
// for progress, reassigns lost ones, and steals stragglers. It is the
// distributed analogue of the engine's SchedulerSteal — ranges are the
// tasks, workers are the deques, and the first completion of a range
// wins.

type rangeStatus uint8

const (
	rangePending rangeStatus = iota
	rangeLeased
	rangeDone
)

// lease is one attempt at one range on one worker.
type lease struct {
	rid     int
	w       *workerState
	started time.Time
	stolen  bool
	cancel  context.CancelFunc
	expired atomic.Bool // set by the watchdog before cancelling
	seeds   int         // live progress, guarded by the dispatcher's mutex
}

type dispatcher struct {
	c      *Coordinator
	j      *djob
	req    RangeRequest // template; Lo/Hi filled per lease
	ranges []Range
	wal    *rangeWAL

	mu        sync.Mutex
	cond      *sync.Cond
	status    []rangeStatus
	leases    map[int][]*lease
	attempts  []int // reassignments per range; the initial lease is free
	pending   []int // FIFO of pending range ids
	aggs      []*jobs.Aggregate
	doneCount int
	inflight  int // lease goroutines not yet retired
	fatal     error

	baseEnumMS float64 // from resumed checkpoints
	started    time.Time
	lastPub    time.Time
	reassigned int64
	stolen     int64

	// trace is the job's stitched trace (nil when untraced): runLease
	// records one span per lease attempt and grafts the worker-side spans
	// shipped back on each Done line. Trace methods are internally
	// synchronised, so lease goroutines use it without d.mu.
	trace *obs.Trace
}

func newDispatcher(c *Coordinator, j *djob, spec *Spec, digest string, total int, ranges []Range, rep *rangeReplay, w *rangeWAL) *dispatcher {
	d := &dispatcher{
		c: c, j: j,
		req: RangeRequest{
			Graph: spec.Graph, Digest: digest, TotalSeeds: total,
			K: spec.K, Q: spec.Q, TopN: spec.TopN,
			Threads: spec.Threads, Scheduler: spec.Scheduler,
		},
		ranges:     ranges,
		wal:        w,
		status:     make([]rangeStatus, len(ranges)),
		leases:     make(map[int][]*lease),
		attempts:   make([]int, len(ranges)),
		aggs:       make([]*jobs.Aggregate, len(ranges)),
		baseEnumMS: rep.enumMS,
	}
	d.cond = sync.NewCond(&d.mu)
	for rid := range ranges {
		if agg, ok := rep.aggs[rid]; ok {
			d.status[rid] = rangeDone
			d.aggs[rid] = agg
			d.doneCount++
		} else {
			d.pending = append(d.pending, rid)
		}
	}
	return d
}

// wake nudges the scheduling loop (new worker registered, ticker, ctx).
func (d *dispatcher) wake() { d.cond.Broadcast() }

// enumMS is the job's cumulative distributed wall-clock.
func (d *dispatcher) enumMS() float64 {
	if d.started.IsZero() {
		return d.baseEnumMS
	}
	return d.baseEnumMS + float64(time.Since(d.started))/float64(time.Millisecond)
}

// run drives the job to completion: returns nil once every range is done,
// the fatal error once a range exhausts its attempts, or the cancellation
// cause on interruption — always after every in-flight lease goroutine
// has retired.
func (d *dispatcher) run(ctx context.Context) error {
	d.mu.Lock()
	d.started = time.Now()
	d.mu.Unlock()

	// The waker turns time into scheduling rounds: backoff gates expiring
	// and StealAfter thresholds crossing are not events the loop can block
	// on, so tick coarsely; ctx cancellation is forwarded immediately.
	tickDone := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		t := time.NewTicker(100 * time.Millisecond)
		defer t.Stop()
		cancelled := ctx.Done()
		for {
			select {
			case <-t.C:
				d.wake()
			case <-cancelled:
				d.wake()
				cancelled = nil // forward once; the ticker keeps nudging while leases drain
			case <-tickDone:
				return
			}
		}
	}()
	defer func() {
		close(tickDone)
		tickWG.Wait()
	}()

	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.doneCount == len(d.ranges) && d.inflight == 0 {
			// Success even under a late cancel: the work is already done.
			d.publishLocked(true)
			return nil
		}
		if d.fatal == nil && ctx.Err() == nil && d.doneCount < len(d.ranges) {
			if d.startLeaseLocked(ctx) {
				continue
			}
		}
		if d.inflight == 0 {
			if d.fatal != nil {
				return d.fatal
			}
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
		}
		d.cond.Wait()
	}
}

// startLeaseLocked tries to pair an idle worker with a leasable range and
// launch the lease goroutine. Reports whether one was started.
func (d *dispatcher) startLeaseLocked(ctx context.Context) bool {
	w := d.c.reserveWorker()
	if w == nil {
		return false
	}
	var rid int
	stolen := false
	if len(d.pending) > 0 {
		rid = d.pending[0]
		d.pending = d.pending[1:]
		d.status[rid] = rangeLeased
	} else {
		// Nothing pending: steal. Re-lease the oldest single-lease range
		// whose lease has been out past StealAfter and is not already on
		// this worker — the distributed answer to a straggler pinning the
		// job's tail latency.
		var victim *lease
		for vrid, ls := range d.leases {
			if d.status[vrid] != rangeLeased || len(ls) != 1 {
				continue
			}
			l := ls[0]
			if l.w == w || time.Since(l.started) < d.c.cfg.StealAfter {
				continue
			}
			if victim == nil || l.started.Before(victim.started) {
				victim = l
			}
		}
		if victim == nil {
			d.c.freeWorker(w, false, false)
			return false
		}
		rid = victim.rid
		stolen = true
		d.stolen++
		d.c.counters.Stolen.Add(1)
	}
	l := &lease{rid: rid, w: w, started: time.Now(), stolen: stolen}
	d.leases[rid] = append(d.leases[rid], l)
	d.inflight++
	go d.runLease(ctx, l)
	return true
}

// runLease executes one lease: posts the range to the worker, feeds the
// no-progress watchdog from its progress lines, and routes the outcome to
// complete or fail. Runs without the dispatcher's mutex.
func (d *dispatcher) runLease(ctx context.Context, l *lease) {
	lctx, cancel := context.WithCancel(ctx)
	l.cancel = cancel
	defer cancel()
	watchdog := time.AfterFunc(d.c.cfg.LeaseTimeout, func() {
		l.expired.Store(true)
		cancel()
	})
	req := d.req
	req.Lo, req.Hi = d.ranges[l.rid].Lo, d.ranges[l.rid].Hi
	span := d.trace.StartSpan("lease").
		Attr("range", fmt.Sprintf("[%d,%d)", req.Lo, req.Hi)).
		Attr("worker", l.w.url)
	if l.stolen {
		span.Attr("stolen", "true")
	}
	agg, spans, err := callRange(lctx, d.c.client, l.w.url, &req, obs.Traceparent(d.trace.ID()), func(n int) {
		watchdog.Reset(d.c.cfg.LeaseTimeout)
		d.noteProgress(l, n)
	})
	watchdog.Stop()
	if err == nil {
		// Tag the worker's spans with their origin before grafting; the
		// worker does not know the URL the coordinator reached it under.
		for i := range spans {
			if spans[i].Attrs == nil {
				spans[i].Attrs = make(map[string]string, 1)
			}
			spans[i].Attrs["worker"] = l.w.url
		}
		d.trace.AddSpans(spans)
		span.End()
		if d.c.cfg.ObserveLease != nil {
			d.c.cfg.ObserveLease(time.Since(l.started))
		}
		d.complete(l, agg)
	} else {
		span.EndErr(err)
		d.fail(ctx, l, err)
	}
}

// noteProgress records a lease's live seed count and republishes the
// job's progress, throttled.
func (d *dispatcher) noteProgress(l *lease, seeds int) {
	d.mu.Lock()
	if seeds > l.seeds {
		l.seeds = seeds
	}
	d.publishLocked(false)
	d.mu.Unlock()
}

// complete commits one lease's finished range: first completion wins and
// is checkpointed; a duplicate (the loser of a speculation race, or a
// worker whose cancelled stream still delivered) is dropped idempotently,
// so every range is merged exactly once.
func (d *dispatcher) complete(l *lease, agg *jobs.Aggregate) {
	d.mu.Lock()
	d.dropLeaseLocked(l)
	d.c.freeWorker(l.w, true, false)
	if d.status[l.rid] == rangeDone {
		d.c.counters.DoubleReports.Add(1)
		d.retireLocked()
		d.mu.Unlock()
		return
	}
	d.status[l.rid] = rangeDone
	d.aggs[l.rid] = agg
	d.doneCount++
	d.c.counters.RangesDone.Add(1)
	rec := &rangeRecord{Range: l.rid, Agg: agg.Snapshot(), EnumMS: d.enumMS()}
	if err := d.wal.append(rec); err != nil {
		// Not fatal: the range result is in memory and the job can finish;
		// only a restart would re-run this range.
		d.c.cfg.Logf("cluster: %s: range %d checkpoint failed (a restart would re-run it): %v", d.j.man.ID, l.rid, err)
	}
	// Cancel the speculation losers still running this range.
	for _, sib := range d.leases[l.rid] {
		if sib.cancel != nil {
			sib.cancel()
		}
	}
	done, enumMS := d.doneCount, d.enumMS()
	d.publishLocked(true)
	d.retireLocked()
	d.mu.Unlock()
	d.j.noteRangeDone(done, enumMS, d.c.cfg.Logf)
}

// fail retires a lost lease. If the range has no other lease in flight it
// returns to the pending queue (a reassignment); a range that keeps
// losing leases eventually fails the whole job.
func (d *dispatcher) fail(ctx context.Context, l *lease, err error) {
	shutdown := ctx.Err() != nil
	d.mu.Lock()
	d.dropLeaseLocked(l)
	rangeDead := d.status[l.rid] == rangeLeased && len(d.leases[l.rid]) == 0
	// Losing to a sibling's completion or to a job-level cancel is not the
	// worker's fault; a broken stream, refusal, or watchdog expiry is.
	blame := d.status[l.rid] != rangeDone && !shutdown
	d.c.freeWorker(l.w, false, blame)
	if rangeDead && !shutdown {
		d.status[l.rid] = rangePending
		d.pending = append(d.pending, l.rid)
		d.attempts[l.rid]++
		d.reassigned++
		d.c.counters.Reassigned.Add(1)
		if l.expired.Load() {
			d.c.counters.Expired.Add(1)
		}
		d.c.cfg.Logf("cluster: %s: lease on range %d [%d, %d) lost (worker %s, %d seeds in, attempt %d): %v",
			d.j.man.ID, l.rid, d.ranges[l.rid].Lo, d.ranges[l.rid].Hi, l.w.url, l.seeds, d.attempts[l.rid], err)
		if d.attempts[l.rid] >= d.c.cfg.MaxRangeAttempts && d.fatal == nil {
			d.fatal = fmt.Errorf("cluster: range %d [%d, %d) lost %d leases; last error: %w",
				l.rid, d.ranges[l.rid].Lo, d.ranges[l.rid].Hi, d.attempts[l.rid], err)
		}
		d.publishLocked(true)
	}
	if rangeDead && shutdown {
		d.status[l.rid] = rangePending // bookkeeping only; the run is exiting
	}
	d.retireLocked()
	d.mu.Unlock()
}

// dropLeaseLocked removes l from its range's lease list.
func (d *dispatcher) dropLeaseLocked(l *lease) {
	ls := d.leases[l.rid]
	for i, have := range ls {
		if have == l {
			d.leases[l.rid] = append(ls[:i], ls[i+1:]...)
			break
		}
	}
	if len(d.leases[l.rid]) == 0 {
		delete(d.leases, l.rid)
	}
}

// retireLocked retires one lease goroutine and wakes the scheduler.
func (d *dispatcher) retireLocked() {
	d.inflight--
	d.cond.Broadcast()
}

// publishLocked pushes the job's live progress to subscribers, throttled
// unless force.
func (d *dispatcher) publishLocked(force bool) {
	now := time.Now()
	if !force && now.Sub(d.lastPub) < 150*time.Millisecond {
		return
	}
	d.lastPub = now
	seeds := 0
	leased := 0
	for rid, r := range d.ranges {
		switch d.status[rid] {
		case rangeDone:
			seeds += r.Hi - r.Lo
		case rangeLeased:
			leased++
			best := 0
			for _, l := range d.leases[rid] {
				if l.seeds > best {
					best = l.seeds
				}
			}
			seeds += best
		}
	}
	p := Progress{
		State:       jobs.StateRunning,
		RangesDone:  d.doneCount,
		RangesTotal: len(d.ranges),
		SeedsDone:   seeds,
		TotalSeeds:  d.req.TotalSeeds,
		Leased:      leased,
		Reassigned:  d.reassigned,
		Stolen:      d.stolen,
		ElapsedMS:   d.enumMS(),
	}
	// Inline delivery: the djob lock is cheap, is never held while calling
	// into the dispatcher, and keeping it synchronous keeps progress
	// updates ordered.
	d.j.publish(p)
}
