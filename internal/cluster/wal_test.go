package cluster

// Tests for the coordinator's per-range write-ahead log: round trip,
// first-completion-wins dedupe, torn-tail truncation, sequence gaps, and
// the hard rejection of records from a newer schema version.

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/jobs"
)

// testAgg builds a small sealed aggregate whose content identifies which
// record it came from.
func testAgg(seed int) *jobs.Aggregate {
	a := jobs.NewAggregate(5)
	a.AddPlex([]int{seed, seed + 1, seed + 2})
	return a.Snapshot()
}

// writeRawRecord appends a correctly CRC-framed record with the exact
// fields given — the escape hatch append() doesn't offer, for forging
// versions and sequence gaps.
func writeRawRecord(t *testing.T, path string, rec *rangeRecord) {
	t.Helper()
	payload, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "%08x %s\n", crc32.ChecksumIEEE(payload), payload); err != nil {
		t.Fatal(err)
	}
}

func TestRangeWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), rangeWALName)
	w, err := openRangeWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, rid := range []int{2, 0, 1} { // completion order ≠ range order
		if err := w.append(&rangeRecord{Range: rid, Agg: testAgg(rid), EnumMS: float64(10 * (i + 1))}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	rep, err := replayRangeWAL(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.truncated || rep.lastSeq != 3 || rep.enumMS != 30 {
		t.Fatalf("replay = truncated=%v lastSeq=%d enumMS=%v", rep.truncated, rep.lastSeq, rep.enumMS)
	}
	if len(rep.aggs) != 3 {
		t.Fatalf("replayed %d ranges, want 3", len(rep.aggs))
	}
	for rid := 0; rid < 3; rid++ {
		want := testAgg(rid)
		if got := rep.aggs[rid]; got == nil || got.PlexDigest() != want.PlexDigest() {
			t.Errorf("range %d replayed digest %v, want %s", rid, got, want.PlexDigest())
		}
	}
}

func TestRangeWALDuplicateFirstWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), rangeWALName)
	w, err := openRangeWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	first, second := testAgg(0), testAgg(100)
	if err := w.append(&rangeRecord{Range: 0, Agg: first}); err != nil {
		t.Fatal(err)
	}
	if err := w.append(&rangeRecord{Range: 0, Agg: second}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	rep, err := replayRangeWAL(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.aggs) != 1 || rep.aggs[0].PlexDigest() != first.PlexDigest() {
		t.Fatalf("duplicate replay kept digest %s, want the first record's %s", rep.aggs[0].PlexDigest(), first.PlexDigest())
	}
	if rep.lastSeq != 2 {
		t.Fatalf("lastSeq = %d, want 2 (the duplicate still advances the sequence)", rep.lastSeq)
	}
}

func TestRangeWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), rangeWALName)
	w, err := openRangeWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(&rangeRecord{Range: 1, Agg: testAgg(1)}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	intact, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"v":1,"seq":2,"tor`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rep, err := replayRangeWAL(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.truncated || rep.validBytes != intact.Size() || len(rep.aggs) != 1 {
		t.Fatalf("torn replay = truncated=%v validBytes=%d (intact %d) aggs=%d",
			rep.truncated, rep.validBytes, intact.Size(), len(rep.aggs))
	}

	// The coordinator's repair path: truncate to the intact prefix, append
	// a new record, and the full log replays cleanly.
	if err := os.Truncate(path, rep.validBytes); err != nil {
		t.Fatal(err)
	}
	w2, err := openRangeWAL(path, rep.lastSeq)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.append(&rangeRecord{Range: 0, Agg: testAgg(0)}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	rep2, err := replayRangeWAL(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.truncated || len(rep2.aggs) != 2 || rep2.lastSeq != 2 {
		t.Fatalf("repaired replay = truncated=%v aggs=%d lastSeq=%d", rep2.truncated, len(rep2.aggs), rep2.lastSeq)
	}
}

func TestRangeWALSeqGapOrphansTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), rangeWALName)
	writeRawRecord(t, path, &rangeRecord{Ver: 1, Seq: 1, Range: 0, Agg: testAgg(0)})
	writeRawRecord(t, path, &rangeRecord{Ver: 1, Seq: 3, Range: 1, Agg: testAgg(1)}) // 2 lost

	rep, err := replayRangeWAL(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.truncated || len(rep.aggs) != 1 || rep.lastSeq != 1 {
		t.Fatalf("gap replay = truncated=%v aggs=%d lastSeq=%d, want the prefix only", rep.truncated, len(rep.aggs), rep.lastSeq)
	}
}

// TestRangeWALRejectsFutureVersion: a CRC-valid record stamped by a newer
// binary is a hard error (routed to job failure), never silent truncation.
func TestRangeWALRejectsFutureVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), rangeWALName)
	writeRawRecord(t, path, &rangeRecord{Ver: 1, Seq: 1, Range: 0, Agg: testAgg(0)})
	writeRawRecord(t, path, &rangeRecord{Ver: rangeWALVersion + 1, Seq: 2, Range: 1, Agg: testAgg(1)})

	if _, err := replayRangeWAL(path, 2); err == nil {
		t.Fatal("future-version record replayed without error")
	}
}

// TestRangeWALRejectsForeignRange: a record naming a range outside the
// pinned partition means the checkpoints describe a different
// decomposition; replay must refuse rather than mis-merge.
func TestRangeWALRejectsForeignRange(t *testing.T) {
	path := filepath.Join(t.TempDir(), rangeWALName)
	writeRawRecord(t, path, &rangeRecord{Ver: 1, Seq: 1, Range: 5, Agg: testAgg(5)})

	if _, err := replayRangeWAL(path, 2); err == nil {
		t.Fatal("out-of-partition record replayed without error")
	}
}
