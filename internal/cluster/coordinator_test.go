package cluster

// Coordinator tests run real dispatch against in-process fake workers:
// httptest servers speaking the /cluster/run NDJSON protocol, with an
// intercept hook for injecting crashes, stalls and gates. Every grid cell
// pins the distributed result byte-identical to the single-node reference.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/kplex"
)

// fakeWorker is a minimal kplexd stand-in: it executes ranges for real
// (through the same RunRange core the server handler uses) and counts how
// many times each range was launched, so tests can assert what re-ran.
type fakeWorker struct {
	t  *testing.T
	ts *httptest.Server

	mu   sync.Mutex
	runs map[int]int // launches per range, keyed by Lo
	// intercept, when set, sees every request first; returning true means
	// it fully handled the response.
	intercept func(w http.ResponseWriter, r *http.Request, req *RangeRequest) bool
}

func newFakeWorker(t *testing.T) *fakeWorker {
	fw := &fakeWorker{t: t, runs: make(map[int]int)}
	fw.ts = httptest.NewServer(http.HandlerFunc(fw.handle))
	t.Cleanup(fw.ts.Close)
	return fw
}

func (fw *fakeWorker) url() string { return fw.ts.URL }

func (fw *fakeWorker) setIntercept(fn func(http.ResponseWriter, *http.Request, *RangeRequest) bool) {
	fw.mu.Lock()
	fw.intercept = fn
	fw.mu.Unlock()
}

func (fw *fakeWorker) runCount(lo int) int {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.runs[lo]
}

func (fw *fakeWorker) handle(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/cluster/run" {
		http.NotFound(w, r)
		return
	}
	var req RangeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fw.mu.Lock()
	fw.runs[req.Lo]++
	icept := fw.intercept
	fw.mu.Unlock()
	if icept != nil && icept(w, r, &req) {
		return
	}
	fw.serve(w, r, &req)
}

// serve is the honest path: verify the digest, run the range, stream a
// heartbeat and the sealed aggregate — the fake twin of handleClusterRun.
func (fw *fakeWorker) serve(w http.ResponseWriter, r *http.Request, req *RangeRequest) {
	enc := json.NewEncoder(w)
	fl, _ := w.(http.Flusher)
	enc.Encode(RangeLine{SeedsDone: 0}) //nolint:errcheck
	if fl != nil {
		fl.Flush()
	}
	fail := func(err error) { enc.Encode(RangeLine{Error: err.Error()}) } //nolint:errcheck
	g, digest, release, err := testLoader(req.Graph)
	if err != nil {
		fail(err)
		return
	}
	defer release()
	if digest != req.Digest {
		fail(fmt.Errorf("digest mismatch: have %s, coordinator wants %s", digest, req.Digest))
		return
	}
	opts, err := BuildOptions(req, 2)
	if err != nil {
		fail(err)
		return
	}
	p, err := kplex.Prepare(g, opts)
	if err != nil {
		fail(err)
		return
	}
	agg, _, err := RunRange(r.Context(), p, opts, req, nil)
	if err != nil {
		fail(err)
		return
	}
	enc.Encode(RangeLine{SeedsDone: req.Hi - req.Lo, Done: true, Agg: agg.Snapshot()}) //nolint:errcheck
}

// assertResultMatchesRef pins a merged distributed result to the
// single-node reference aggregate, field by field.
func assertResultMatchesRef(t *testing.T, res *jobs.Result, ref *jobs.Aggregate) {
	t.Helper()
	if res.Count != ref.Count {
		t.Errorf("count = %d, want %d", res.Count, ref.Count)
	}
	if res.MaxSize != ref.MaxSize {
		t.Errorf("maxSize = %d, want %d", res.MaxSize, ref.MaxSize)
	}
	if res.PlexDigest != ref.PlexDigest() {
		t.Errorf("plex digest = %s, want %s (result set differs)", res.PlexDigest, ref.PlexDigest())
	}
	wantHist := ref.Histogram
	if wantHist == nil {
		wantHist = map[int]int64{}
	}
	if !reflect.DeepEqual(res.Histogram, wantHist) {
		t.Errorf("histogram = %v, want %v", res.Histogram, wantHist)
	}
	wantTopK := ref.TopK
	if wantTopK == nil {
		wantTopK = [][]int{}
	}
	if !reflect.DeepEqual(res.TopK, wantTopK) {
		t.Errorf("topk = %v, want %v", res.TopK, wantTopK)
	}
}

func waitDone(t *testing.T, c *Coordinator, id string) *View {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatalf("waiting for %s: %v", id, err)
	}
	return v
}

// TestDistributedKillWorkerMatchesSingleNode is the acceptance grid: one
// worker drops its first connection mid-stream, forcing at least one lease
// reassignment, and the merged result must still be identical to the
// single-node run — for more than one partitioning.
func TestDistributedKillWorkerMatchesSingleNode(t *testing.T) {
	const graphName, k, q, topn = "corpus:planted-overlap", 2, 6, 7
	ref := refAggregate(t, graphName, k, q, topn)

	for _, nRanges := range []int{3, 7} {
		t.Run(fmt.Sprintf("ranges=%d", nRanges), func(t *testing.T) {
			killer := newFakeWorker(t)
			var killed atomic.Bool
			killer.setIntercept(func(w http.ResponseWriter, r *http.Request, req *RangeRequest) bool {
				if killed.CompareAndSwap(false, true) {
					// One heartbeat so the lease is live, then die mid-range.
					io.WriteString(w, "{\"seedsDone\":0}\n") //nolint:errcheck
					w.(http.Flusher).Flush()
					panic(http.ErrAbortHandler)
				}
				return false
			})
			healthy := newFakeWorker(t)

			c, err := Open(Config{
				Dir:          t.TempDir(),
				Load:         testLoader,
				Workers:      []string{killer.url(), healthy.url()},
				LeaseTimeout: 10 * time.Second,
				StealAfter:   time.Hour, // isolate reassignment from stealing
				Logf:         t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(c.Close)

			man, err := c.Submit(Spec{Graph: graphName, K: k, Q: q, TopN: topn, Ranges: nRanges})
			if err != nil {
				t.Fatal(err)
			}
			v := waitDone(t, c, man.ID)
			if v.State != jobs.StateDone {
				t.Fatalf("job state = %s (error %q), want done", v.State, v.Error)
			}
			if got := c.Counters().Reassigned.Load(); got < 1 {
				t.Errorf("reassigned = %d, want >= 1 (the killed lease)", got)
			}
			if v.Progress.SeedsDone != v.TotalSeeds {
				t.Errorf("final progress reports %d/%d seeds", v.Progress.SeedsDone, v.TotalSeeds)
			}
			res, err := c.Result(man.ID)
			if err != nil {
				t.Fatal(err)
			}
			assertResultMatchesRef(t, res, ref)
			if res.Resumes != 0 {
				t.Errorf("resumes = %d, want 0", res.Resumes)
			}
		})
	}
}

// TestLeaseExpiryReassigns starves the watchdog: the worker heartbeats
// once and then goes silent, so the lease must expire, return to pending,
// and succeed on retry — with the expiry visible in the counters.
func TestLeaseExpiryReassigns(t *testing.T) {
	const graphName, k, q, topn = "corpus:planted-overlap", 2, 6, 7
	ref := refAggregate(t, graphName, k, q, topn)

	fw := newFakeWorker(t)
	var stalled atomic.Bool
	fw.setIntercept(func(w http.ResponseWriter, r *http.Request, req *RangeRequest) bool {
		if stalled.CompareAndSwap(false, true) {
			io.WriteString(w, "{\"seedsDone\":0}\n") //nolint:errcheck
			w.(http.Flusher).Flush()
			<-r.Context().Done() // no further progress: let the watchdog fire
			return true
		}
		return false
	})

	c, err := Open(Config{
		Dir:          t.TempDir(),
		Load:         testLoader,
		Workers:      []string{fw.url()},
		LeaseTimeout: 300 * time.Millisecond,
		StealAfter:   time.Hour,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	man, err := c.Submit(Spec{Graph: graphName, K: k, Q: q, TopN: topn, Ranges: 2})
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, c, man.ID)
	if v.State != jobs.StateDone {
		t.Fatalf("job state = %s (error %q), want done", v.State, v.Error)
	}
	if got := c.Counters().Expired.Load(); got < 1 {
		t.Errorf("expired = %d, want >= 1 (the silent lease)", got)
	}
	if got := c.Counters().Reassigned.Load(); got < 1 {
		t.Errorf("reassigned = %d, want >= 1", got)
	}
	res, err := c.Result(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertResultMatchesRef(t, res, ref)
}

// TestStealReassignsStraggler gives the job's only range to a worker that
// heartbeats forever without finishing. The idle second worker must steal
// the range past StealAfter and win, without failing the straggler's job.
func TestStealReassignsStraggler(t *testing.T) {
	const graphName, k, q, topn = "corpus:planted-overlap", 2, 6, 7
	ref := refAggregate(t, graphName, k, q, topn)

	straggler := newFakeWorker(t)
	straggler.setIntercept(func(w http.ResponseWriter, r *http.Request, req *RangeRequest) bool {
		enc := json.NewEncoder(w)
		fl := w.(http.Flusher)
		tick := time.NewTicker(30 * time.Millisecond)
		defer tick.Stop()
		for {
			enc.Encode(RangeLine{SeedsDone: 1}) //nolint:errcheck
			fl.Flush()
			select {
			case <-tick.C:
			case <-r.Context().Done():
				return true
			}
		}
	})
	healthy := newFakeWorker(t)

	// The straggler is listed first, so the tie-break hands it the lease.
	c, err := Open(Config{
		Dir:          t.TempDir(),
		Load:         testLoader,
		Workers:      []string{straggler.url(), healthy.url()},
		LeaseTimeout: 10 * time.Second, // heartbeats keep the watchdog quiet
		StealAfter:   200 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	man, err := c.Submit(Spec{Graph: graphName, K: k, Q: q, TopN: topn, Ranges: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, c, man.ID)
	if v.State != jobs.StateDone {
		t.Fatalf("job state = %s (error %q), want done", v.State, v.Error)
	}
	if got := c.Counters().Stolen.Load(); got < 1 {
		t.Errorf("stolen = %d, want >= 1", got)
	}
	res, err := c.Result(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertResultMatchesRef(t, res, ref)
}

// TestCoordinatorRestartResumesCompletedRanges interrupts a running job
// after two ranges are checkpointed, reopens the coordinator over the same
// state dir, and requires (a) the job to resume and finish, and (b) the
// already-completed ranges to never be launched again.
func TestCoordinatorRestartResumesCompletedRanges(t *testing.T) {
	const graphName, k, q, topn = "corpus:planted-overlap", 2, 6, 7
	ref := refAggregate(t, graphName, k, q, topn)

	fw := newFakeWorker(t)
	gate := make(chan struct{})
	var completed atomic.Int64
	fw.setIntercept(func(w http.ResponseWriter, r *http.Request, req *RangeRequest) bool {
		if completed.Load() >= 2 {
			// Later ranges stall until the gate opens (phase 2) or the
			// coordinator shuts the lease down (phase 1's interruption).
			io.WriteString(w, "{\"seedsDone\":0}\n") //nolint:errcheck
			w.(http.Flusher).Flush()
			select {
			case <-gate:
			case <-r.Context().Done():
				return true
			}
		}
		fw.serve(w, r, req)
		completed.Add(1)
		return true
	})

	dir := t.TempDir()
	cfg := Config{
		Dir:          dir,
		Load:         testLoader,
		Workers:      []string{fw.url()},
		LeaseTimeout: time.Minute,
		StealAfter:   time.Hour,
		Logf:         t.Logf,
	}
	c1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	man, err := c1.Submit(Spec{Graph: graphName, K: k, Q: q, TopN: topn, Ranges: 4})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		v, err := c1.Get(man.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.RangesDone >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no two ranges checkpointed in time (state %s, %d done)", v.State, v.RangesDone)
		}
		time.Sleep(20 * time.Millisecond)
	}
	c1.Close() // interrupts the stalled lease and parks the job

	jdir := filepath.Join(dir, man.ID)
	man1, err := readManifest(jdir)
	if err != nil {
		t.Fatal(err)
	}
	if man1.State != jobs.StateCheckpointed {
		t.Fatalf("parked state = %s, want checkpointed", man1.State)
	}
	rep, err := replayRangeWAL(filepath.Join(jdir, rangeWALName), len(man1.Ranges))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.aggs) < 2 {
		t.Fatalf("only %d ranges checkpointed at interruption", len(rep.aggs))
	}
	phase1Runs := make(map[int]int, len(rep.aggs))
	for rid := range rep.aggs {
		phase1Runs[rid] = fw.runCount(man1.Ranges[rid].Lo)
	}

	close(gate)
	c2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Close)
	if got := c2.Counters().Resumed.Load(); got != 1 {
		t.Errorf("resumed counter = %d, want 1", got)
	}
	v := waitDone(t, c2, man.ID)
	if v.State != jobs.StateDone {
		t.Fatalf("resumed job state = %s (error %q), want done", v.State, v.Error)
	}
	if v.Resumes != 1 {
		t.Errorf("manifest resumes = %d, want 1", v.Resumes)
	}
	for rid, n := range phase1Runs {
		if got := fw.runCount(man1.Ranges[rid].Lo); got != n {
			t.Errorf("checkpointed range %d was launched again after restart (%d -> %d launches)", rid, n, got)
		}
	}
	res, err := c2.Result(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertResultMatchesRef(t, res, ref)
	if res.Resumes != 1 {
		t.Errorf("result resumes = %d, want 1", res.Resumes)
	}
}

// TestDoubleCompletionIdempotent drives the dispatcher's completion path
// directly with two racing leases for the same range: the first report
// must be committed and checkpointed, the second counted and dropped, and
// the range merged exactly once.
func TestDoubleCompletionIdempotent(t *testing.T) {
	liveAgg := func(seed int) *jobs.Aggregate {
		a := jobs.NewAggregate(5)
		a.AddPlex([]int{seed, seed + 1, seed + 2})
		return a
	}

	c := &Coordinator{cfg: Config{Logf: t.Logf}.withDefaults()}
	j := &djob{
		dir:  t.TempDir(),
		man:  Manifest{ID: "dtest", State: jobs.StateRunning},
		subs: make(map[int]chan Progress),
	}
	ranges := partition(20, 2)
	walPath := filepath.Join(j.dir, rangeWALName)
	w, err := openRangeWAL(walPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := newDispatcher(c, j, &Spec{Graph: "g", K: 2, Q: 6, TopN: 5}, "digest", 20, ranges,
		&rangeReplay{aggs: make(map[int]*jobs.Aggregate)}, w)

	// Range 0 is out on two leases at once: a speculation race in flight.
	wA := &workerState{url: "http://a"}
	wB := &workerState{url: "http://b"}
	lA := &lease{rid: 0, w: wA}
	lB := &lease{rid: 0, w: wB, stolen: true}
	d.pending = d.pending[1:]
	d.status[0] = rangeLeased
	d.leases[0] = []*lease{lA, lB}
	d.inflight = 2

	aggA, aggB := liveAgg(1), liveAgg(50)
	d.complete(lA, aggA)
	d.complete(lB, aggB)

	if got := c.counters.DoubleReports.Load(); got != 1 {
		t.Errorf("double reports = %d, want 1", got)
	}
	if got := c.counters.RangesDone.Load(); got != 1 {
		t.Errorf("ranges-done counter = %d, want 1 (duplicate must not count)", got)
	}
	if d.doneCount != 1 || d.status[0] != rangeDone {
		t.Errorf("doneCount = %d status = %d, want 1/done", d.doneCount, d.status[0])
	}
	if d.aggs[0] != aggA {
		t.Error("committed aggregate is not the first report's")
	}
	if d.inflight != 0 {
		t.Errorf("inflight = %d after both leases retired, want 0", d.inflight)
	}
	j.mu.Lock()
	rangesDone := j.man.RangesDone
	j.mu.Unlock()
	if rangesDone != 1 {
		t.Errorf("manifest rangesDone = %d, want 1", rangesDone)
	}
	w.Close()
	rep, err := replayRangeWAL(walPath, len(ranges))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.aggs) != 1 {
		t.Fatalf("WAL holds %d range checkpoints, want exactly 1", len(rep.aggs))
	}
	if rep.aggs[0].PlexDigest() != aggA.PlexDigest() {
		t.Error("WAL checkpoint is not the winning report")
	}
}

func TestSubmitValidation(t *testing.T) {
	c, err := Open(Config{Dir: t.TempDir(), Load: testLoader, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for _, spec := range []Spec{
		{K: 2, Q: 6},                           // no graph
		{Graph: "g", K: 0, Q: 6},               // bad k
		{Graph: "g", K: 2, Q: 2},               // q < 2k-1
		{Graph: "g", K: 2, Q: 6, TopN: 100000}, // topn over MaxTopN
		{Graph: "g", K: 2, Q: 6, Ranges: maxSpecRanges + 1},
		{Graph: "g", K: 2, Q: 6, Threads: 300},
		{Graph: "g", K: 2, Q: 6, Scheduler: "lifo"},
	} {
		if _, err := c.Submit(spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}

// TestUnknownGraphFailsJob: a graph the coordinator cannot resolve fails
// the job at run time with a useful error, not a hang.
func TestUnknownGraphFailsJob(t *testing.T) {
	c, err := Open(Config{Dir: t.TempDir(), Load: testLoader, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	man, err := c.Submit(Spec{Graph: "corpus:no-such-graph", K: 2, Q: 6})
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, c, man.ID)
	if v.State != jobs.StateFailed || v.Error == "" {
		t.Fatalf("state = %s error = %q, want a failed job with an error", v.State, v.Error)
	}
	if c.Counters().Failed.Load() != 1 {
		t.Errorf("failed counter = %d, want 1", c.Counters().Failed.Load())
	}
}

// TestCancelAndDelete cancels a running job mid-lease, then deletes it.
func TestCancelAndDelete(t *testing.T) {
	fw := newFakeWorker(t)
	fw.setIntercept(func(w http.ResponseWriter, r *http.Request, req *RangeRequest) bool {
		enc := json.NewEncoder(w)
		fl := w.(http.Flusher)
		tick := time.NewTicker(30 * time.Millisecond)
		defer tick.Stop()
		for { // heartbeat forever; only cancellation ends the range
			enc.Encode(RangeLine{SeedsDone: 1}) //nolint:errcheck
			fl.Flush()
			select {
			case <-tick.C:
			case <-r.Context().Done():
				return true
			}
		}
	})
	c, err := Open(Config{
		Dir: t.TempDir(), Load: testLoader, Workers: []string{fw.url()},
		LeaseTimeout: 10 * time.Second, StealAfter: time.Hour, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	man, err := c.Submit(Spec{Graph: "corpus:planted-overlap", K: 2, Q: 6, Ranges: 2})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := c.Get(man.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.Progress.Leased >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no lease started (state %s)", v.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := c.Cancel(man.ID); err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, c, man.ID)
	if v.State != jobs.StateCancelled {
		t.Fatalf("state = %s, want cancelled", v.State)
	}
	if _, err := c.Result(man.ID); err == nil {
		t.Error("cancelled job served a result")
	}
	if err := c.Delete(man.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(man.ID); err != jobs.ErrNotFound {
		t.Errorf("get after delete = %v, want ErrNotFound", err)
	}
}
