package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/kplex"
	"repro/internal/obs"
)

// Config wires a Coordinator to its host.
type Config struct {
	// Dir is the coordinator state directory: one subdirectory per
	// distributed job (manifest.json, ranges.ndjson, result.json).
	Dir string
	// Load resolves a graph name, pinning it for the duration of a job
	// (the coordinator itself only needs the graph to compute the seed
	// decomposition it partitions).
	Load GraphLoader
	// Prepare resolves the run prologue, typically through the host's
	// prepared-graph cache. Nil falls back to a direct kplex.Prepare.
	Prepare func(g graph.CSR, digest string, opts kplex.Options) (*kplex.Prepared, error)
	// Workers is the initial set of worker base URLs; more can join at
	// runtime through AddWorker.
	Workers []string
	// Client issues the range requests. Nil uses a client without an
	// overall timeout (range streams are long-lived; the lease watchdog is
	// the liveness mechanism).
	Client *http.Client
	// LeaseTimeout fails a lease whose worker reports no progress for this
	// long (default 15s). Progress lines reset the clock, so a slow range
	// on a healthy worker is not a timeout.
	LeaseTimeout time.Duration
	// StealAfter is how long a range must have been on lease before an
	// idle worker may speculatively re-lease it (default 2×LeaseTimeout).
	StealAfter time.Duration
	// RangesPerWorker sizes the default partition: ranges = this ×
	// registered workers at first run (default 4 — enough surplus ranges
	// that reassignment and stealing have something to move).
	RangesPerWorker int
	// MaxRangeAttempts fails the job once a single range has lost this
	// many leases (default 8): a range that dies on every worker is a
	// poison pill, not bad luck.
	MaxRangeAttempts int
	// DefaultTopN / MaxTopN mirror the jobs layer's result-size bounds
	// (defaults 10 / 1000).
	DefaultTopN int
	MaxTopN     int
	// Logf receives operational notices (default log.Printf).
	Logf func(format string, args ...any)
	// Tracer, when non-nil, records one stitched trace per distributed
	// job: coordinator-side prepare/lease/merge spans plus the worker-side
	// spans shipped back on each range's Done line.
	Tracer *obs.Tracer
	// ObserveLease, when non-nil, receives the round-trip duration of
	// every successfully completed range lease — the feed for the host's
	// lease latency histogram.
	ObserveLease func(d time.Duration)
}

func (cfg Config) withDefaults() Config {
	if cfg.Prepare == nil {
		cfg.Prepare = func(g graph.CSR, _ string, opts kplex.Options) (*kplex.Prepared, error) {
			return kplex.Prepare(g, opts)
		}
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 15 * time.Second
	}
	if cfg.StealAfter <= 0 {
		cfg.StealAfter = 2 * cfg.LeaseTimeout
	}
	if cfg.RangesPerWorker <= 0 {
		cfg.RangesPerWorker = 4
	}
	if cfg.MaxRangeAttempts <= 0 {
		cfg.MaxRangeAttempts = 8
	}
	if cfg.DefaultTopN <= 0 {
		cfg.DefaultTopN = 10
	}
	if cfg.MaxTopN <= 0 {
		cfg.MaxTopN = 1000
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	return cfg
}

// Counters is the coordinator's monotonic metrics block, merged into the
// host's /stats like the job manager's.
type Counters struct {
	Submitted     atomic.Int64
	Completed     atomic.Int64
	Failed        atomic.Int64
	Cancelled     atomic.Int64
	Resumed       atomic.Int64
	Queued        atomic.Int64 // gauge
	Running       atomic.Int64 // gauge
	RangesDone    atomic.Int64
	Reassigned    atomic.Int64 // leases lost to failure or expiry
	Expired       atomic.Int64 // the subset of Reassigned that hit the watchdog
	Stolen        atomic.Int64 // speculative straggler re-leases
	DoubleReports atomic.Int64 // duplicate range completions ignored idempotently
}

// Snapshot renders the counters for a metrics endpoint.
func (c *Counters) Snapshot() map[string]int64 {
	return map[string]int64{
		"cluster_jobs_submitted":    c.Submitted.Load(),
		"cluster_jobs_completed":    c.Completed.Load(),
		"cluster_jobs_failed":       c.Failed.Load(),
		"cluster_jobs_cancelled":    c.Cancelled.Load(),
		"cluster_jobs_resumed":      c.Resumed.Load(),
		"cluster_jobs_queued":       c.Queued.Load(),
		"cluster_jobs_running":      c.Running.Load(),
		"cluster_ranges_done":       c.RangesDone.Load(),
		"cluster_leases_reassigned": c.Reassigned.Load(),
		"cluster_leases_expired":    c.Expired.Load(),
		"cluster_leases_stolen":     c.Stolen.Load(),
		"cluster_double_reports":    c.DoubleReports.Load(),
	}
}

var (
	errClusterShutdown  = errors.New("cluster: coordinator shutting down")
	errClusterCancelled = errors.New("cluster: cancelled by request")
)

// djob is one distributed job's in-memory state.
type djob struct {
	dir string

	mu       sync.Mutex
	man      Manifest
	progress Progress
	cancel   context.CancelCauseFunc // non-nil while running
	subs     map[int]chan Progress
	nextSub  int
}

// Coordinator runs distributed jobs one at a time (a cluster-wide job
// already saturates every worker; queueing a second would only make the
// two thrash each other's leases).
type Coordinator struct {
	cfg    Config
	client *http.Client

	ctx  context.Context
	stop context.CancelCauseFunc
	wg   sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*djob
	queue   []*djob // FIFO
	workers []*workerState
	active  *dispatcher // the running job's dispatcher, for AddWorker wakeups
	closed  bool

	counters Counters
}

// Open creates (or reopens) a coordinator over cfg.Dir, recovering jobs a
// previous process left queued or interrupted, and starts the runner.
func Open(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("cluster: Config.Dir is required")
	}
	if cfg.Load == nil {
		return nil, errors.New("cluster: Config.Load is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:    cfg,
		client: cfg.Client,
		jobs:   make(map[string]*djob),
	}
	c.cond = sync.NewCond(&c.mu)
	c.ctx, c.stop = context.WithCancelCause(context.Background())
	for _, u := range cfg.Workers {
		if _, err := c.AddWorker(u); err != nil {
			return nil, err
		}
	}
	if err := c.recover(); err != nil {
		return nil, err
	}
	c.wg.Add(1)
	go c.runLoop()
	return c, nil
}

// recover scans the state dir and re-queues every non-terminal job. Range
// checkpoints are replayed lazily when the job actually runs; recovery
// only needs the manifests. Single-threaded: the runner is not started
// yet.
func (c *Coordinator) recover() error {
	entries, err := os.ReadDir(c.cfg.Dir)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		dir := filepath.Join(c.cfg.Dir, ent.Name())
		man, err := readManifest(dir)
		if err != nil {
			c.cfg.Logf("cluster: skipping %s: %v", dir, err)
			continue
		}
		j := &djob{dir: dir, man: *man, subs: make(map[int]chan Progress)}
		switch {
		case man.State.Terminal():
			j.progress = Progress{
				State: man.State, RangesDone: man.RangesDone,
				RangesTotal: len(man.Ranges), TotalSeeds: man.TotalSeeds,
				ElapsedMS: man.EnumMS, Error: man.Error,
			}
		case man.State == jobs.StateRunning, man.State == jobs.StateCheckpointed:
			// Interrupted mid-run: completed ranges are in the WAL; requeue
			// and let the next run skip them.
			j.man.State = jobs.StateQueued
			j.man.Error = ""
			j.man.Resumes++
			if err := writeManifest(j.dir, &j.man); err != nil {
				c.cfg.Logf("cluster: %s: persisting requeue: %v", j.man.ID, err)
			}
			j.progress = Progress{State: jobs.StateQueued, RangesDone: man.RangesDone, RangesTotal: len(man.Ranges), TotalSeeds: man.TotalSeeds}
			c.counters.Resumed.Add(1)
			c.enqueueLocked(j)
		case man.State == jobs.StateQueued:
			j.progress = Progress{State: jobs.StateQueued}
			c.enqueueLocked(j)
		default:
			c.cfg.Logf("cluster: %s: unknown state %q, leaving untouched", man.ID, man.State)
		}
		c.jobs[man.ID] = j
	}
	return nil
}

// enqueueLocked appends j to the FIFO; callers hold c.mu or run before
// the runner starts.
func (c *Coordinator) enqueueLocked(j *djob) {
	c.queue = append(c.queue, j)
	c.counters.Queued.Add(1)
	c.cond.Signal()
}

// Close stops the runner. A running job is interrupted at the next lease
// boundary and parked checkpointed, so the next Open resumes it from its
// completed ranges.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.stop(errClusterShutdown)
	c.cond.Broadcast()
	c.wg.Wait()
}

// Counters exposes the coordinator's metrics block.
func (c *Coordinator) Counters() *Counters { return &c.counters }

// AddWorker registers a worker base URL (idempotent). The active job
// starts leasing to it at the next scheduling round.
func (c *Coordinator) AddWorker(raw string) (*WorkerView, error) {
	u, err := url.Parse(raw)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("cluster: worker URL must be http(s)://host[:port], got %q", raw)
	}
	norm := strings.TrimRight(raw, "/")
	c.mu.Lock()
	var w *workerState
	for _, have := range c.workers {
		if have.url == norm {
			w = have
			break
		}
	}
	if w == nil {
		w = &workerState{url: norm, addedAt: time.Now()}
		c.workers = append(c.workers, w)
	}
	v := c.workerViewLocked(w)
	active := c.active
	c.mu.Unlock()
	if active != nil {
		active.wake()
	}
	return &v, nil
}

func (c *Coordinator) workerViewLocked(w *workerState) WorkerView {
	return WorkerView{
		URL: w.url, Busy: w.busy, Fails: w.fails,
		RangesDone: w.rangesDone, AddedAt: w.addedAt, LastOK: w.lastOK,
	}
}

// Workers lists the registered workers.
func (c *Coordinator) Workers() []WorkerView {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerView, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, c.workerViewLocked(w))
	}
	return out
}

// reserveWorker claims an idle, non-backed-off worker (least recently
// successful first, a cheap spread). Nil when none is available.
func (c *Coordinator) reserveWorker() *workerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	var best *workerState
	for _, w := range c.workers {
		if w.busy || now.Before(w.nextTry) {
			continue
		}
		if best == nil || w.lastOK.Before(best.lastOK) {
			best = w
		}
	}
	if best != nil {
		best.busy = true
	}
	return best
}

// freeWorker returns a reserved worker. ok records a completed range;
// blame backs the worker off after a failure that was its fault (losing a
// speculation race or a coordinator shutdown is not).
func (c *Coordinator) freeWorker(w *workerState, ok, blame bool) {
	c.mu.Lock()
	w.busy = false
	switch {
	case ok:
		w.fails = 0
		w.rangesDone++
		w.lastOK = time.Now()
	case blame:
		w.fails++
		w.nextTry = time.Now().Add(workerBackoff(w.fails))
	}
	c.mu.Unlock()
}

// maxSpecRanges bounds a submission's partition fan-out.
const maxSpecRanges = 4096

func newClusterJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failing means the host is unusable
	}
	return "d" + hex.EncodeToString(b[:])
}

// Submit validates spec, persists a queued distributed job, and wakes the
// runner.
func (c *Coordinator) Submit(spec Spec) (*Manifest, error) {
	if spec.Graph == "" {
		return nil, errors.New("cluster: graph is required")
	}
	if spec.K < 1 {
		return nil, fmt.Errorf("cluster: k must be >= 1, got %d", spec.K)
	}
	if spec.Q < 2*spec.K-1 {
		return nil, fmt.Errorf("cluster: q must be >= 2k-1 = %d, got %d", 2*spec.K-1, spec.Q)
	}
	if spec.TopN == 0 {
		spec.TopN = c.cfg.DefaultTopN
	}
	if spec.TopN < 1 || spec.TopN > c.cfg.MaxTopN {
		return nil, fmt.Errorf("cluster: topn must be in [1, %d], got %d", c.cfg.MaxTopN, spec.TopN)
	}
	if spec.Ranges < 0 || spec.Ranges > maxSpecRanges {
		return nil, fmt.Errorf("cluster: ranges must be in [0, %d], got %d", maxSpecRanges, spec.Ranges)
	}
	if spec.Threads < 0 || spec.Threads > 256 {
		return nil, fmt.Errorf("cluster: threads must be in [0, 256], got %d", spec.Threads)
	}
	if !validScheduler(spec.Scheduler) {
		return nil, fmt.Errorf("cluster: unknown scheduler %q", spec.Scheduler)
	}

	j := &djob{
		man: Manifest{
			ID:        newClusterJobID(),
			Spec:      spec,
			State:     jobs.StateQueued,
			CreatedAt: time.Now(),
		},
		subs: make(map[int]chan Progress),
	}
	j.dir = filepath.Join(c.cfg.Dir, j.man.ID)
	j.progress = Progress{State: jobs.StateQueued}
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return nil, err
	}
	if err := writeManifest(j.dir, &j.man); err != nil {
		return nil, err
	}

	man := j.man
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		os.RemoveAll(j.dir) //nolint:errcheck // best effort on shutdown
		return nil, errClusterShutdown
	}
	c.jobs[j.man.ID] = j
	c.enqueueLocked(j)
	c.mu.Unlock()
	c.counters.Submitted.Add(1)
	return &man, nil
}

// Get returns one job's manifest plus live progress.
func (c *Coordinator) Get(id string) (*View, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return nil, jobs.ErrNotFound
	}
	j.mu.Lock()
	v := &View{Manifest: j.man, Progress: j.progress}
	j.mu.Unlock()
	return v, nil
}

// List returns every known distributed job, newest first.
func (c *Coordinator) List() []View {
	c.mu.Lock()
	all := make([]*djob, 0, len(c.jobs))
	for _, j := range c.jobs {
		all = append(all, j)
	}
	c.mu.Unlock()
	out := make([]View, 0, len(all))
	for _, j := range all {
		j.mu.Lock()
		out = append(out, View{Manifest: j.man, Progress: j.progress})
		j.mu.Unlock()
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].CreatedAt.Equal(out[k].CreatedAt) {
			return out[i].CreatedAt.After(out[k].CreatedAt)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Result returns a completed job's merged answer (the jobs layer's result
// shape, so distributed and single-node answers are interchangeable).
func (c *Coordinator) Result(id string) (*jobs.Result, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return nil, jobs.ErrNotFound
	}
	j.mu.Lock()
	state := j.man.State
	j.mu.Unlock()
	if state != jobs.StateDone {
		return nil, fmt.Errorf("%w (state %s)", jobs.ErrNotDone, state)
	}
	data, err := os.ReadFile(filepath.Join(j.dir, "result.json"))
	if err != nil {
		return nil, err
	}
	var res jobs.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Cancel stops a queued or running job.
func (c *Coordinator) Cancel(id string) error {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return jobs.ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.man.State.Terminal():
		return fmt.Errorf("%w (state %s)", jobs.ErrNotActive, j.man.State)
	case j.cancel != nil:
		j.cancel(errClusterCancelled)
		return nil
	default:
		// Still queued: mark terminal here; the runner discards it on pop.
		c.setTerminalLocked(j, jobs.StateCancelled, nil)
		c.counters.Cancelled.Add(1)
		return nil
	}
}

// Delete removes a terminal job and its directory.
func (c *Coordinator) Delete(id string) error {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return jobs.ErrNotFound
	}
	j.mu.Lock()
	terminal := j.man.State.Terminal()
	j.mu.Unlock()
	if !terminal {
		return fmt.Errorf("%w: cancel it first", jobs.ErrActive)
	}
	c.mu.Lock()
	delete(c.jobs, id)
	c.mu.Unlock()
	return os.RemoveAll(j.dir)
}

// Subscribe returns a channel of progress updates starting with the
// current snapshot; closed at the job's terminal state.
func (c *Coordinator) Subscribe(id string) (<-chan Progress, func(), error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return nil, nil, jobs.ErrNotFound
	}
	ch := make(chan Progress, 16)
	j.mu.Lock()
	ch <- j.progress
	if j.man.State.Terminal() {
		close(ch)
		j.mu.Unlock()
		return ch, func() {}, nil
	}
	idx := j.nextSub
	j.nextSub++
	j.subs[idx] = ch
	j.mu.Unlock()
	stop := func() {
		j.mu.Lock()
		if c, ok := j.subs[idx]; ok {
			delete(j.subs, idx)
			close(c)
		}
		j.mu.Unlock()
	}
	return ch, stop, nil
}

// Wait blocks until the job leaves the active states (or ctx is done).
func (c *Coordinator) Wait(ctx context.Context, id string) (*View, error) {
	ch, stop, err := c.Subscribe(id)
	if err != nil {
		return nil, err
	}
	defer stop()
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case _, ok := <-ch:
			if !ok {
				return c.Get(id)
			}
		}
	}
}

// publish stores p as the job's live progress and fans it out; dropped for
// jobs that reached a terminal state (a straggler lease reporting after
// the fact must not resurrect progress).
func (j *djob) publish(p Progress) {
	j.mu.Lock()
	if !j.man.State.Terminal() {
		p.State = j.man.State
		j.progress = p
		j.publishLocked()
	}
	j.mu.Unlock()
}

// publishLocked fans the current progress out; slow subscribers drop
// updates rather than blocking the dispatcher.
func (j *djob) publishLocked() {
	for _, ch := range j.subs {
		select {
		case ch <- j.progress:
		default:
		}
	}
}

// noteRangeDone write-through-persists per-range manifest progress.
func (j *djob) noteRangeDone(done int, enumMS float64, logf func(string, ...any)) {
	j.mu.Lock()
	j.man.RangesDone = done
	j.man.EnumMS = enumMS
	if err := writeManifest(j.dir, &j.man); err != nil {
		logf("cluster: %s: persisting range progress: %v", j.man.ID, err)
	}
	j.mu.Unlock()
}

// setTerminalLocked moves j to a terminal state, persists it and closes
// subscriber channels. Caller holds j.mu.
func (c *Coordinator) setTerminalLocked(j *djob, state jobs.State, cause error) {
	j.man.State = state
	j.man.FinishedAt = time.Now()
	j.man.Error = ""
	if cause != nil {
		j.man.Error = cause.Error()
	}
	j.progress.State = state
	j.progress.Error = j.man.Error
	if err := writeManifest(j.dir, &j.man); err != nil {
		c.cfg.Logf("cluster: %s: persisting terminal state: %v", j.man.ID, err)
	}
	j.publishLocked()
	for idx, ch := range j.subs {
		delete(j.subs, idx)
		close(ch)
	}
}

// runLoop pops queued jobs FIFO and runs them to a terminal (or parked)
// state, one at a time.
func (c *Coordinator) runLoop() {
	defer c.wg.Done()
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return // queued jobs stay durable for the next Open
		}
		j := c.queue[0]
		c.queue = c.queue[1:]
		c.counters.Queued.Add(-1)
		c.mu.Unlock()

		j.mu.Lock()
		if j.man.State.Terminal() { // cancelled while queued
			j.mu.Unlock()
			continue
		}
		jctx, cancel := context.WithCancelCause(c.ctx)
		j.cancel = cancel
		j.man.State = jobs.StateRunning
		if j.man.StartedAt.IsZero() {
			j.man.StartedAt = time.Now()
		}
		j.progress.State = jobs.StateRunning
		if err := writeManifest(j.dir, &j.man); err != nil {
			c.cfg.Logf("cluster: %s: persisting running state: %v", j.man.ID, err)
		}
		j.publishLocked()
		j.mu.Unlock()

		c.counters.Running.Add(1)
		err := c.runJob(jctx, j)
		cancel(nil)
		c.counters.Running.Add(-1)
		c.finishJob(j, err)
	}
}

// finishJob classifies runJob's outcome: success, cancellation,
// shutdown-park (resumable), or failure.
func (c *Coordinator) finishJob(j *djob, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = nil
	if j.man.State.Terminal() {
		return
	}
	switch {
	case err == nil:
		c.setTerminalLocked(j, jobs.StateDone, nil)
		c.counters.Completed.Add(1)
	case errors.Is(err, errClusterShutdown):
		// Parked, not failed: completed ranges are durable; the next Open
		// requeues and resumes.
		j.man.State = jobs.StateCheckpointed
		j.man.Error = ""
		j.progress.State = jobs.StateCheckpointed
		if werr := writeManifest(j.dir, &j.man); werr != nil {
			c.cfg.Logf("cluster: %s: parking checkpointed: %v", j.man.ID, werr)
		}
		j.publishLocked()
		for idx, ch := range j.subs {
			delete(j.subs, idx)
			close(ch)
		}
	case errors.Is(err, errClusterCancelled):
		c.setTerminalLocked(j, jobs.StateCancelled, nil)
		c.counters.Cancelled.Add(1)
	default:
		c.setTerminalLocked(j, jobs.StateFailed, err)
		c.counters.Failed.Add(1)
		c.cfg.Logf("cluster: %s failed: %v", j.man.ID, err)
	}
}

// runJob executes one distributed job: pin (or verify) the decomposition,
// replay completed ranges, dispatch the rest across the workers, merge.
func (c *Coordinator) runJob(ctx context.Context, j *djob) error {
	j.mu.Lock()
	spec := j.man.Spec
	// Pin the trace id with the manifest (persisted alongside the
	// decomposition pin below) so resumed incarnations extend one trace.
	if j.man.TraceID == "" && c.cfg.Tracer != nil {
		j.man.TraceID = obs.NewTraceID()
	}
	t := c.cfg.Tracer.StartWithID(j.man.TraceID, "cluster-job "+j.man.ID)
	j.mu.Unlock()
	defer t.Finish()

	prepSpan := t.StartSpan("prepare").Attr("graph", spec.Graph)
	g, digest, release, err := c.cfg.Load(spec.Graph)
	if err != nil {
		prepSpan.EndErr(err)
		return err
	}
	defer release()
	p, err := c.cfg.Prepare(g, digest, kplex.NewOptions(spec.K, spec.Q))
	if err != nil {
		prepSpan.EndErr(err)
		return err
	}
	total := p.SeedSpace()
	prepSpan.Attr("seeds", fmt.Sprint(total)).End()

	// Pin the decomposition on first run; later incarnations (and every
	// worker, via the request's digest/totalSeeds) must reproduce it
	// exactly or the per-range checkpoints describe a different job.
	j.mu.Lock()
	if j.man.Digest == "" {
		j.man.Digest = digest
		j.man.TotalSeeds = total
		n := spec.Ranges
		if n <= 0 {
			c.mu.Lock()
			n = c.cfg.RangesPerWorker * max(1, len(c.workers))
			c.mu.Unlock()
		}
		j.man.Ranges = partition(total, n)
		if err := writeManifest(j.dir, &j.man); err != nil {
			j.mu.Unlock()
			return fmt.Errorf("cluster: pinning decomposition: %w", err)
		}
	} else if j.man.Digest != digest || j.man.TotalSeeds != total {
		j.mu.Unlock()
		return fmt.Errorf("cluster: graph %q changed since this job's checkpoints were written (digest %s→%s, seeds %d→%d); delete and resubmit", spec.Graph, j.man.Digest, digest, j.man.TotalSeeds, total)
	}
	ranges := j.man.Ranges
	resumes := j.man.Resumes
	j.mu.Unlock()

	walPath := filepath.Join(j.dir, rangeWALName)
	rep, err := replayRangeWAL(walPath, len(ranges))
	if err != nil {
		return err
	}
	if rep.truncated {
		if terr := os.Truncate(walPath, rep.validBytes); terr != nil {
			return fmt.Errorf("cluster: repairing torn range WAL: %w", terr)
		}
	}
	w, err := openRangeWAL(walPath, rep.lastSeq)
	if err != nil {
		return err
	}
	defer w.Close()

	d := newDispatcher(c, j, &spec, digest, total, ranges, rep, w)
	d.trace = t
	c.mu.Lock()
	c.active = d
	c.mu.Unlock()
	err = d.run(ctx)
	c.mu.Lock()
	c.active = nil
	c.mu.Unlock()
	if err != nil {
		return err
	}

	// Merge in range order. Ranges partition the seed space, and aggregate
	// merging is exact over disjoint plex sets, so this reproduces the
	// single-node answer bit for bit.
	mergeSpan := t.StartSpan("merge").Attr("ranges", fmt.Sprint(len(ranges)))
	merged := jobs.NewAggregate(spec.TopN)
	for i := range ranges {
		merged.Merge(d.aggs[i])
	}
	mergeSpan.End()
	res := &jobs.Result{
		Count:      merged.Count,
		MaxSize:    merged.MaxSize,
		TopK:       merged.TopK,
		Histogram:  merged.Histogram,
		PlexDigest: merged.PlexDigest(),
		Stats:      merged.Stats,
		ElapsedMS:  d.enumMS(),
		Resumes:    resumes,
	}
	if res.TopK == nil {
		res.TopK = [][]int{}
	}
	if res.Histogram == nil {
		res.Histogram = map[int]int64{}
	}
	return writeResult(j.dir, res)
}

// readManifest / writeManifest / writeResult mirror the jobs layer's
// atomic persistence conventions (tmp + fsync + rename + dir sync).

func readManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("corrupt manifest: %w", err)
	}
	if man.ID == "" {
		return nil, errors.New("manifest has no job id")
	}
	return &man, nil
}

func writeManifest(dir string, man *Manifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(dir, "manifest.json", data)
}

func writeResult(dir string, res *jobs.Result) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(dir, "result.json", data)
}

func writeFileAtomic(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, "."+name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // best effort: not all platforms support it
		d.Close()
	}
	return nil
}
