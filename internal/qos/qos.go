// Package qos is kplexd's multi-tenant admission controller: a fixed pool
// of enumeration slots shared between tenants by stride (weighted-fair)
// scheduling, with an optional token-bucket rate quota and concurrency cap
// per tenant. It replaces the server's bare counting semaphore — under
// saturation a tenant's share of granted slots converges to its weight
// share instead of FIFO luck, one tenant cannot starve the rest, and
// rate-limited tenants are turned away with a computed Retry-After rather
// than queued without bound.
//
// The controller is deliberately small: a single mutex, per-tenant FIFO
// waiter queues, and one grant loop. Interactive admission (Admit) charges
// the tenant's token bucket and is bounded by the caller's context;
// queued-work admission (AdmitQueued) skips the bucket — background jobs
// and leased ranges are already-accepted work and must eventually run — but
// still shares the weighted-fair slot queue.
package qos

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TenantConfig declares one tenant's quality-of-service profile. The zero
// value of every field means "unconstrained": weight 1, no rate quota, no
// concurrency cap.
type TenantConfig struct {
	// Name identifies the tenant (the X-Kplexd-Tenant header value).
	Name string
	// Weight is the tenant's share of slots under contention, relative to
	// the other tenants' weights (default 1, must be > 0 when set).
	Weight float64
	// Rate is the sustained admission quota in queries per second; 0 means
	// no quota. Enforced as a token bucket: each interactive admission
	// spends one token, tokens refill at Rate up to Burst.
	Rate float64
	// Burst is the token-bucket capacity (default max(Rate, 1) when Rate
	// is set). It bounds how far above Rate a briefly-idle tenant can
	// spike.
	Burst float64
	// MaxConcurrent caps the tenant's simultaneously held slots; 0 means
	// bounded only by the pool size.
	MaxConcurrent int
}

// QuotaError reports an interactive admission denied by the tenant's token
// bucket. RetryAfter is when the bucket will next hold a full token.
type QuotaError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %q over rate quota (retry in %s)", e.Tenant, e.RetryAfter.Round(time.Millisecond))
}

// ParseTenants parses the -tenants flag syntax: semicolon-separated tenant
// entries, each "name" or "name:key=value,key=value" with keys weight,
// rate, burst and max. Example:
//
//	gold:weight=3,rate=50,burst=100;bronze:weight=1,max=2
func ParseTenants(spec string) ([]TenantConfig, error) {
	var out []TenantConfig
	seen := map[string]bool{}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, params, _ := strings.Cut(entry, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("tenants: entry %q has no name", entry)
		}
		if seen[name] {
			return nil, fmt.Errorf("tenants: duplicate tenant %q", name)
		}
		seen[name] = true
		tc := TenantConfig{Name: name}
		for _, kv := range strings.Split(params, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("tenants: %s: parameter %q is not key=value", name, kv)
			}
			f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			if err != nil || f < 0 {
				return nil, fmt.Errorf("tenants: %s: bad value %q for %s", name, val, key)
			}
			switch strings.TrimSpace(key) {
			case "weight":
				if f <= 0 {
					return nil, fmt.Errorf("tenants: %s: weight must be > 0", name)
				}
				tc.Weight = f
			case "rate":
				tc.Rate = f
			case "burst":
				tc.Burst = f
			case "max":
				tc.MaxConcurrent = int(f)
			default:
				return nil, fmt.Errorf("tenants: %s: unknown parameter %q", name, key)
			}
		}
		out = append(out, tc)
	}
	return out, nil
}

// waiter is one admission request queued on its tenant.
type waiter struct {
	t       *tenant
	ready   chan struct{}
	granted bool
}

// tenant is the controller's per-tenant state: configuration, the stride
// scheduler's virtual pass, the FIFO of waiters, the token bucket, and
// counters for introspection.
type tenant struct {
	cfg     TenantConfig
	stride  float64 // 1 / weight: virtual time one grant advances this tenant
	pass    float64 // next grant's virtual finish time
	queue   []*waiter
	running int

	tokens     float64 // token bucket level; meaningful only when cfg.Rate > 0
	lastRefill time.Time

	admitted    int64
	quotaDenied int64
}

// Controller shares a fixed pool of slots between tenants. All methods are
// safe for concurrent use.
type Controller struct {
	slots int
	now   func() time.Time // injected in tests

	mu       sync.Mutex
	free     int
	waiting  int
	vclock   float64 // global virtual time: the last granted waiter's start tag
	tenants  map[string]*tenant
	holdEWMA float64 // smoothed slot hold duration, seconds
}

// NewController builds a controller over slots enumeration slots.
// Configured tenants get their declared profile; any other tenant name is
// materialized on first use with the default profile (weight 1, no quota,
// no cap), so an unconfigured deployment behaves exactly like the old
// global semaphore.
func NewController(slots int, tenants []TenantConfig) *Controller {
	if slots < 1 {
		slots = 1
	}
	c := &Controller{
		slots:   slots,
		free:    slots,
		now:     time.Now,
		tenants: make(map[string]*tenant, len(tenants)+1),
	}
	for _, tc := range tenants {
		c.tenants[tc.Name] = newTenant(tc, c.now())
	}
	return c
}

func newTenant(tc TenantConfig, now time.Time) *tenant {
	if tc.Weight <= 0 {
		tc.Weight = 1
	}
	if tc.Rate > 0 && tc.Burst <= 0 {
		tc.Burst = max(tc.Rate, 1)
	}
	return &tenant{
		cfg:        tc,
		stride:     1 / tc.Weight,
		tokens:     tc.Burst, // a fresh tenant starts with a full bucket
		lastRefill: now,
	}
}

// Slots returns the pool size.
func (c *Controller) Slots() int { return c.slots }

// tenantLocked resolves (or lazily creates) the tenant record for name.
func (c *Controller) tenantLocked(name string) *tenant {
	t := c.tenants[name]
	if t == nil {
		t = newTenant(TenantConfig{Name: name}, c.now())
		c.tenants[name] = t
	}
	return t
}

// refillLocked advances t's token bucket to now.
func (c *Controller) refillLocked(t *tenant) {
	now := c.now()
	dt := now.Sub(t.lastRefill).Seconds()
	if dt > 0 {
		t.tokens = min(t.cfg.Burst, t.tokens+t.cfg.Rate*dt)
	}
	t.lastRefill = now
}

// Admit acquires one slot for an interactive request from tenant name,
// charging its token bucket. It returns a release function that must be
// called exactly once, a *QuotaError when the bucket is empty, or ctx's
// error when the caller gives up before a slot frees.
func (c *Controller) Admit(ctx context.Context, name string) (func(), error) {
	return c.admit(ctx, name, true)
}

// AdmitQueued acquires one slot for already-accepted queued work (a
// background job, a leased seed range) from tenant name. No token is
// charged — queued work was admitted when it was submitted and must
// eventually run — but the wait shares the weighted-fair queue, so a heavy
// tenant's jobs cannot crowd out another tenant's queries.
func (c *Controller) AdmitQueued(ctx context.Context, name string) (func(), error) {
	return c.admit(ctx, name, false)
}

func (c *Controller) admit(ctx context.Context, name string, charge bool) (func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	t := c.tenantLocked(name)
	if charge && t.cfg.Rate > 0 {
		c.refillLocked(t)
		if t.tokens < 1 {
			wait := time.Duration((1 - t.tokens) / t.cfg.Rate * float64(time.Second))
			t.quotaDenied++
			c.mu.Unlock()
			return nil, &QuotaError{Tenant: name, RetryAfter: wait}
		}
		t.tokens--
	}
	w := &waiter{t: t, ready: make(chan struct{})}
	t.queue = append(t.queue, w)
	c.waiting++
	c.grantLocked()
	granted := w.granted
	c.mu.Unlock()
	if granted {
		return c.releaseFunc(t), nil
	}
	select {
	case <-w.ready:
		return c.releaseFunc(t), nil
	case <-ctx.Done():
		c.mu.Lock()
		if w.granted {
			// Raced a grant against the cancellation: the slot was handed
			// to a caller that is no longer taking it, so put it straight
			// back through the grant path.
			t.running--
			c.free++
			c.grantLocked()
		} else {
			c.dequeueLocked(w)
		}
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// dequeueLocked removes a cancelled, ungranted waiter from its tenant.
func (c *Controller) dequeueLocked(w *waiter) {
	q := w.t.queue
	for i, x := range q {
		if x == w {
			w.t.queue = append(q[:i], q[i+1:]...)
			c.waiting--
			return
		}
	}
}

// grantLocked hands free slots to waiters in stride order: among tenants
// with a waiter and headroom under their concurrency cap, the one with the
// smallest virtual pass goes first; each grant advances the winner's pass
// by its stride (1/weight), so under saturation grant counts converge to
// weight shares. A tenant idle for a while rejoins at the global virtual
// clock rather than its stale pass, so idling banks no credit.
func (c *Controller) grantLocked() {
	for c.free > 0 {
		var best *tenant
		for _, t := range c.tenants {
			if len(t.queue) == 0 {
				continue
			}
			if cap := t.cfg.MaxConcurrent; cap > 0 && t.running >= cap {
				continue
			}
			if best == nil || t.pass < best.pass ||
				(t.pass == best.pass && t.cfg.Name < best.cfg.Name) {
				best = t
			}
		}
		if best == nil {
			return
		}
		start := max(best.pass, c.vclock)
		best.pass = start + best.stride
		c.vclock = start
		w := best.queue[0]
		best.queue = best.queue[1:]
		c.waiting--
		best.running++
		best.admitted++
		c.free--
		w.granted = true
		close(w.ready)
	}
}

// releaseFunc returns the once-only release closure for a granted slot,
// folding the hold duration into the EWMA that PredictWait serves from.
func (c *Controller) releaseFunc(t *tenant) func() {
	start := c.now()
	var once sync.Once
	return func() {
		once.Do(func() {
			held := c.now().Sub(start).Seconds()
			c.mu.Lock()
			const alpha = 0.2
			if c.holdEWMA == 0 {
				c.holdEWMA = held
			} else {
				c.holdEWMA += alpha * (held - c.holdEWMA)
			}
			t.running--
			c.free++
			c.grantLocked()
			c.mu.Unlock()
		})
	}
}

// PredictWait estimates how long a new arrival would wait for a slot:
// the current queue depth spread over the pool, paced by the smoothed
// slot-hold duration. Zero when the controller has no hold history yet —
// callers fall back to their own latency statistics.
func (c *Controller) PredictWait() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.holdEWMA == 0 {
		return 0
	}
	drain := c.holdEWMA * float64(c.waiting+1) / float64(c.slots)
	return time.Duration(drain * float64(time.Second))
}

// TenantSnapshot is one tenant's introspection record.
type TenantSnapshot struct {
	Name        string  `json:"name"`
	Weight      float64 `json:"weight"`
	Running     int     `json:"running"`
	Queued      int     `json:"queued"`
	Admitted    int64   `json:"admitted"`
	QuotaDenied int64   `json:"quotaDenied"`
}

// Snapshot returns per-tenant admission state, sorted by tenant name.
func (c *Controller) Snapshot() []TenantSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TenantSnapshot, 0, len(c.tenants))
	for _, t := range c.tenants {
		out = append(out, TenantSnapshot{
			Name:        t.cfg.Name,
			Weight:      t.cfg.Weight,
			Running:     t.running,
			Queued:      len(t.queue),
			Admitted:    t.admitted,
			QuotaDenied: t.quotaDenied,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// InUse returns the number of currently held slots (introspection).
func (c *Controller) InUse() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slots - c.free
}
