package qos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestParseTenants(t *testing.T) {
	got, err := ParseTenants("gold:weight=3,rate=50,burst=100;bronze:weight=1,max=2; free ")
	if err != nil {
		t.Fatal(err)
	}
	want := []TenantConfig{
		{Name: "gold", Weight: 3, Rate: 50, Burst: 100},
		{Name: "bronze", Weight: 1, MaxConcurrent: 2},
		{Name: "free"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tenants, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tenant %d: got %+v, want %+v", i, got[i], want[i])
		}
	}

	for _, bad := range []string{
		":weight=1",     // no name
		"a;a",           // duplicate
		"a:weight",      // not key=value
		"a:weight=0",    // zero weight
		"a:weight=-1",   // negative
		"a:rate=x",      // not a number
		"a:shinyness=9", // unknown key
	} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("ParseTenants(%q): expected error", bad)
		}
	}

	if got, err := ParseTenants("  ; ;"); err != nil || len(got) != 0 {
		t.Errorf("empty spec: got %v, %v", got, err)
	}
}

// TestTokenBucket drives the bucket with an injected clock: a burst of
// Burst admissions passes, the next is denied with a RetryAfter matching
// the refill rate, and after advancing the clock admission works again.
func TestTokenBucket(t *testing.T) {
	c := NewController(8, []TenantConfig{{Name: "a", Rate: 10, Burst: 3}})
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	ctx := context.Background()
	var releases []func()
	for i := 0; i < 3; i++ {
		rel, err := c.Admit(ctx, "a")
		if err != nil {
			t.Fatalf("admission %d within burst: %v", i, err)
		}
		releases = append(releases, rel)
	}
	_, err := c.Admit(ctx, "a")
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("4th admission: got %v, want QuotaError", err)
	}
	if qe.Tenant != "a" {
		t.Errorf("QuotaError tenant %q", qe.Tenant)
	}
	// Empty bucket refilling at 10/s holds a full token after 100ms.
	if qe.RetryAfter <= 0 || qe.RetryAfter > 150*time.Millisecond {
		t.Errorf("RetryAfter %v, want ~100ms", qe.RetryAfter)
	}

	// Queued work is exempt from the bucket.
	if rel, err := c.AdmitQueued(ctx, "a"); err != nil {
		t.Errorf("AdmitQueued under empty bucket: %v", err)
	} else {
		rel()
	}

	now = now.Add(200 * time.Millisecond) // refills 2 tokens
	rel, err := c.Admit(ctx, "a")
	if err != nil {
		t.Fatalf("admission after refill: %v", err)
	}
	rel()
	for _, rel := range releases {
		rel()
	}

	snap := c.Snapshot()
	if len(snap) != 1 || snap[0].QuotaDenied != 1 {
		t.Errorf("snapshot %+v, want one tenant with QuotaDenied=1", snap)
	}
}

// TestWeightedFairGrants saturates a 1-slot pool with two tenants whose
// queues never drain and counts grants: stride scheduling must split them
// 3:1 within 15% (the acceptance bound; the deterministic schedule is in
// fact exact to ±1).
func TestWeightedFairGrants(t *testing.T) {
	c := NewController(1, []TenantConfig{
		{Name: "gold", Weight: 3},
		{Name: "bronze", Weight: 1},
	})
	ctx := context.Background()

	const total = 400
	counts := map[string]int{}
	var mu sync.Mutex
	granted := 0

	// Occupy the only slot so every worker queues up before the first
	// counted grant: without the barrier, the first scheduled goroutine
	// could race through all of `total` before the other tenant's workers
	// even start, and the test would measure goroutine scheduling, not the
	// stride scheduler.
	blocker, err := c.Admit(ctx, "warmup")
	if err != nil {
		t.Fatal(err)
	}

	// Each tenant keeps 4 admissions pending at all times; every grant
	// immediately releases and re-queues, so both queues stay saturated.
	var wg sync.WaitGroup
	for _, name := range []string{"gold", "bronze"} {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				for {
					rel, err := c.Admit(ctx, name)
					if err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					if granted < total {
						counts[name]++
						granted++
					}
					done := granted >= total
					mu.Unlock()
					rel()
					if done {
						return
					}
				}
			}(name)
		}
	}

	// Release the slot only once both tenants are fully queued.
	deadline := time.Now().Add(5 * time.Second)
	for {
		queued := map[string]int{}
		for _, ts := range c.Snapshot() {
			queued[ts.Name] = ts.Queued
		}
		if queued["gold"] == 4 && queued["bronze"] == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never queued: %+v", queued)
		}
		time.Sleep(time.Millisecond)
	}
	blocker()
	wg.Wait()

	share := float64(counts["gold"]) / float64(counts["gold"]+counts["bronze"])
	if math.Abs(share-0.75) > 0.15*0.75 {
		t.Errorf("gold share %.3f (gold=%d bronze=%d), want 0.75 within 15%%",
			share, counts["gold"], counts["bronze"])
	}
}

// TestPerTenantCap holds a capped tenant at its concurrency ceiling and
// checks that its next waiter stays queued while another tenant still gets
// slots from the same pool.
func TestPerTenantCap(t *testing.T) {
	c := NewController(4, []TenantConfig{{Name: "capped", MaxConcurrent: 1}})
	ctx := context.Background()

	rel1, err := c.Admit(ctx, "capped")
	if err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, err := c.Admit(short, "capped"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second capped admission: got %v, want deadline", err)
	}
	// The pool still has 3 free slots for everyone else.
	rel2, err := c.Admit(ctx, "other")
	if err != nil {
		t.Fatalf("other tenant blocked by capped tenant: %v", err)
	}
	rel2()
	rel1()
	// Cap released: the tenant admits again.
	rel3, err := c.Admit(ctx, "capped")
	if err != nil {
		t.Fatal(err)
	}
	rel3()
}

// TestCancelDequeues cancels a queued waiter and verifies the queue drops
// it (no leak, no phantom grant): after the cancel, releasing the held
// slot must not strand it.
func TestCancelDequeues(t *testing.T) {
	c := NewController(1, nil)
	ctx := context.Background()
	rel, err := c.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() {
		_, err := c.Admit(cctx, "b")
		errc <- err
	}()
	// Wait until b is queued, then cancel it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := c.Snapshot()
		queued := 0
		for _, ts := range snap {
			queued += ts.Queued
		}
		if queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: got %v", err)
	}
	rel()
	// The slot must be free and grantable.
	rel2, err := c.Admit(ctx, "c")
	if err != nil {
		t.Fatal(err)
	}
	rel2()
	if c.InUse() != 0 {
		t.Errorf("InUse %d after all releases, want 0", c.InUse())
	}
}

// TestPredictWait checks the estimate is zero before any hold history and
// positive, scaled by queue depth, afterwards.
func TestPredictWait(t *testing.T) {
	c := NewController(2, nil)
	if d := c.PredictWait(); d != 0 {
		t.Errorf("PredictWait with no history: %v, want 0", d)
	}
	rel, err := c.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	rel()
	d := c.PredictWait()
	if d <= 0 {
		t.Errorf("PredictWait after a 10ms hold: %v, want > 0", d)
	}
	if d > time.Second {
		t.Errorf("PredictWait %v implausibly large for a 10ms hold", d)
	}
}

// TestReleaseIdempotent calls a release twice; the second call must be a
// no-op rather than freeing a phantom slot.
func TestReleaseIdempotent(t *testing.T) {
	c := NewController(1, nil)
	rel, err := c.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel()
	if c.InUse() != 0 {
		t.Fatalf("InUse %d, want 0", c.InUse())
	}
	// Pool must still hold exactly one slot.
	r1, err := c.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.Admit(short, "a"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second slot materialized after double release: %v", err)
	}
	r1()
}

// TestConcurrentChurn hammers the controller from many goroutines across
// tenants (run under -race in CI): every admission must be released, slot
// accounting must balance, and nothing deadlocks.
func TestConcurrentChurn(t *testing.T) {
	c := NewController(4, []TenantConfig{
		{Name: "t0", Weight: 2, MaxConcurrent: 3},
		{Name: "t1", Rate: 1e9, Burst: 1e9}, // effectively unlimited
	})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", g%3)
			for i := 0; i < 200; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				rel, err := c.Admit(ctx, name)
				if err == nil {
					rel()
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()
	if n := c.InUse(); n != 0 {
		t.Fatalf("InUse %d after churn, want 0", n)
	}
}
