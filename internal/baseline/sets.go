package baseline

// Shared slice-based set helpers for the standalone baselines. These
// implementations deliberately avoid the bitset machinery of the main
// engine: they exercise different code and data-structure choices, so that
// agreement between a baseline and the engine is meaningful evidence of
// correctness rather than shared-bug propagation.

import (
	"sort"

	"repro/internal/graph"
)

// plexDegree returns |N(v) ∩ P|.
func plexDegree(g *graph.Graph, P []int, v int) int {
	d := 0
	for _, u := range P {
		if u != v && g.HasEdge(v, u) {
			d++
		}
	}
	return d
}

// saturated returns the members of P whose non-neighbour budget inside P is
// exhausted: d̄_P(u) = |P| - d_P(u) = k, counting u itself.
func saturated(g *graph.Graph, P []int, k int) []int {
	var sat []int
	for _, u := range P {
		if len(P)-plexDegree(g, P, u) == k {
			sat = append(sat, u)
		}
	}
	return sat
}

// canJoin reports whether P ∪ {v} is a k-plex, assuming P already is one
// and v ∉ P. Equivalent to the refinement test of Algorithm 3 lines 2-3:
// v must miss at most k-1 members of P (v itself is the k-th) and must be
// adjacent to every saturated member of P.
func canJoin(g *graph.Graph, P, sat []int, k, v int) bool {
	if len(P)+1-plexDegree(g, P, v) > k {
		return false
	}
	for _, u := range sat {
		if !g.HasEdge(u, v) {
			return false
		}
	}
	return true
}

// refine returns the members v of set with P ∪ {v} a k-plex.
func refine(g *graph.Graph, P, sat, set []int, k int) []int {
	out := set[:0:0] // fresh backing array: callers keep the input
	for _, v := range set {
		if canJoin(g, P, sat, k, v) {
			out = append(out, v)
		}
	}
	return out
}

// isKPlexSet reports whether the vertex set S is a k-plex of g.
func isKPlexSet(g *graph.Graph, S []int, k int) bool {
	for _, u := range S {
		if len(S)-plexDegree(g, S, u) > k {
			return false
		}
	}
	return true
}

// emitSorted appends a sorted copy of P to out.
func emitSorted(out [][]int, P []int) [][]int {
	cp := append([]int(nil), P...)
	sort.Ints(cp)
	return append(out, cp)
}

// removeAt returns set without its i-th element, preserving order, in a
// fresh slice.
func removeAt(set []int, i int) []int {
	out := make([]int, 0, len(set)-1)
	out = append(out, set[:i]...)
	return append(out, set[i+1:]...)
}
