package baseline

// D2KEnumerate is a standalone reimplementation of the D2K approach (Conte
// et al., KDD 2018), the first of the BK-style baselines reviewed in the
// paper's Section 2: decompose the graph into per-seed diameter-2 blocks
// along the degeneracy ordering, then run Bron-Kerbosch with a simple
// collapse check inside each block. It has none of the paper's upper bounds
// or pair rules, and uses plain sorted-slice sets instead of bitsets, so it
// doubles as an independent correctness oracle that scales beyond the naive
// Algorithm-1 enumerator.

import (
	"repro/internal/graph"
)

// D2KEnumerate lists all maximal k-plexes of g with at least q vertices.
// Requires q >= 2k-1 (the diameter-2 property the block decomposition needs);
// it panics otherwise, mirroring the engine's Options.Validate contract.
func D2KEnumerate(g *graph.Graph, k, q int) [][]int {
	if k < 1 || q < 2*k-1 {
		panic("baseline: D2KEnumerate requires k >= 1 and q >= 2k-1")
	}
	cd := graph.Cores(g)
	var out [][]int
	e := &d2k{g: g, k: k, q: q, pos: cd.Pos}
	for i := 0; i < g.N(); i++ {
		seed := int(cd.Order[i])
		C, X := e.block(seed)
		if 1+len(C) < q {
			continue
		}
		out = e.mine(out, []int{seed}, C, X)
	}
	return out
}

type d2k struct {
	g    *graph.Graph
	k, q int
	pos  []int32 // position in the degeneracy ordering
}

// block returns the candidate and exclusive pools of the seed's
// diameter-2 block: C = later 2-hop vertices, X = earlier 2-hop vertices.
// "Later" compares positions in the degeneracy ordering, matching the
// engine's seed decomposition so the two partitions are directly
// comparable in the ablation benches.
func (e *d2k) block(seed int) (C, X []int) {
	dist := make(map[int]int)
	frontier := []int{seed}
	dist[seed] = 0
	for hop := 1; hop <= 2; hop++ {
		var next []int
		for _, v := range frontier {
			for _, u := range e.g.Neighbors(v) {
				if _, ok := dist[int(u)]; !ok {
					dist[int(u)] = hop
					next = append(next, int(u))
				}
			}
		}
		frontier = next
	}
	for v, d := range dist {
		if d == 0 {
			continue
		}
		if e.pos[v] > e.pos[seed] {
			C = append(C, v)
		} else {
			X = append(X, v)
		}
	}
	sortByPos(C, e.pos)
	sortByPos(X, e.pos)
	return C, X
}

// mine is the Bron-Kerbosch recursion with the collapse shortcut: when
// P ∪ C is itself a k-plex the subtree has a single maximal answer.
func (e *d2k) mine(out [][]int, P, C, X []int) [][]int {
	sat := saturated(e.g, P, e.k)
	C = refine(e.g, P, sat, C, e.k)
	X = refine(e.g, P, sat, X, e.k)

	if len(C) == 0 {
		if len(X) == 0 && len(P) >= e.q {
			out = emitSorted(out, P)
		}
		return out
	}

	// Collapse check (the D2K-style shortcut): if P ∪ C is a k-plex, it is
	// the unique maximal superset in this subtree.
	pc := append(append([]int(nil), P...), C...)
	if isKPlexSet(e.g, pc, e.k) {
		if len(pc) >= e.q {
			satPC := saturated(e.g, pc, e.k)
			if len(refine(e.g, pc, satPC, X, e.k)) == 0 {
				out = emitSorted(out, pc)
			}
		}
		return out
	}

	for i := 0; i < len(C); i++ {
		v := C[i]
		P2 := append(append([]int(nil), P...), v)
		out = e.mine(out, P2, C[i+1:], append(X, C[:i]...))
	}
	return out
}

func sortByPos(a []int, pos []int32) {
	// Insertion sort: blocks are small and mostly ordered already.
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && pos[a[j]] > pos[v] {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
