package baseline

// FaPlexenEnumerate is a standalone reimplementation of the FaPlexen /
// CommuPlex branching scheme (Zhou et al., AAAI 2020), the second BK-style
// baseline of the paper's Section 2 and the origin of the Eq (4)-(6)
// branching that the paper's Ours_P variant adopts. It runs over the whole
// graph (no seed decomposition) with plain slice sets, so it is a second
// independent oracle with different decomposition, branching and data
// structures from both the engine and D2KEnumerate.

import (
	"repro/internal/graph"
)

// FaPlexenEnumerate lists all maximal k-plexes of g with at least q
// vertices (q >= 2 required; q >= 2k-1 is NOT required here because the
// algorithm does not rely on the diameter-2 decomposition).
func FaPlexenEnumerate(g *graph.Graph, k, q int) [][]int {
	if k < 1 || q < 1 {
		panic("baseline: FaPlexenEnumerate requires k >= 1 and q >= 1")
	}
	e := &faplexen{g: g, k: k, q: q}
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	return e.mine(nil, nil, all, nil)
}

type faplexen struct {
	g    *graph.Graph
	k, q int
}

func (e *faplexen) mine(out [][]int, P, C, X []int) [][]int {
	// The Eq (5)-(6) branches add several vertices at once, which can
	// overdraw another member's budget; such branches are dead.
	if !isKPlexSet(e.g, P, e.k) {
		return out
	}
	sat := saturated(e.g, P, e.k)
	C = refine(e.g, P, sat, C, e.k)
	X = refine(e.g, P, sat, X, e.k)

	if len(C) == 0 {
		if len(X) == 0 && len(P) >= e.q {
			out = emitSorted(out, P)
		}
		return out
	}

	// Pivot: minimum degree within G[P ∪ C].
	pc := append(append([]int(nil), P...), C...)
	vp, vpInP, minDeg := -1, false, len(pc)
	for _, v := range pc {
		if d := plexDegree(e.g, pc, v); d < minDeg {
			vp, minDeg = v, d
		}
	}
	for _, u := range P {
		if u == vp {
			vpInP = true
			break
		}
	}

	// Collapse: when even the min-degree vertex meets the threshold, P ∪ C
	// is a k-plex and the subtree has at most one maximal answer.
	if minDeg >= len(pc)-e.k {
		if len(pc) >= e.q {
			satPC := saturated(e.g, pc, e.k)
			if len(refine(e.g, pc, satPC, X, e.k)) == 0 {
				out = emitSorted(out, pc)
			}
		}
		return out
	}

	if !vpInP {
		// Binary branching on a C pivot: include vp, then exclude it.
		ci := indexOf(C, vp)
		P2 := append(append([]int(nil), P...), vp)
		out = e.mine(out, P2, removeAt(C, ci), X)
		return e.mine(out, P, removeAt(C, ci), append(append([]int(nil), X...), vp))
	}

	// vp ∈ P: FaPlexen's Eq (4)-(6) multi-way branching over vp's
	// non-neighbours in C, W = {w_1, ..., w_l}, with budget
	// s = sup_P(vp) = k - d̄_P(vp).
	s := e.k - (len(P) - plexDegree(e.g, P, vp))
	var W []int
	for _, v := range C {
		if !e.g.HasEdge(vp, v) {
			W = append(W, v)
		}
	}
	// The collapse check failed with vp having minimum degree, so
	// d̄_{P∪C}(vp) > k, which forces |W| > s >= 0.
	if s < 0 {
		s = 0
	}
	if s >= len(W) {
		s = len(W) - 1
	}

	inW := make(map[int]bool, len(W))
	for _, w := range W {
		inW[w] = true
	}
	cMinusW := make([]int, 0, len(C)-len(W))
	for _, v := range C {
		if !inW[v] {
			cMinusW = append(cMinusW, v)
		}
	}

	// Branch 1 (Eq 4): exclude w_1.
	C2 := append(append([]int(nil), cMinusW...), W[1:]...)
	out = e.mine(out, P, C2, append(append([]int(nil), X...), W[0]))

	// Branches i = 2..s (Eq 5): include w_1..w_{i-1}, exclude w_i.
	for i := 2; i <= s; i++ {
		P2 := append(append([]int(nil), P...), W[:i-1]...)
		C3 := append(append([]int(nil), cMinusW...), W[i:]...)
		X3 := append(append([]int(nil), X...), W[i-1])
		out = e.mine(out, P2, C3, X3)
	}

	// Final branch (Eq 6): include w_1..w_s; the rest of W can never join
	// (vp's budget is spent) and is parked in X, where refinement drops it.
	P2 := append(append([]int(nil), P...), W[:s]...)
	X2 := append(append([]int(nil), X...), W[s+1:]...)
	return e.mine(out, P2, cMinusW, append(X2, W[s]))
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}
