package baseline

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kplex"
)

// canonical renders a result set as a sorted multiset of sorted slices so
// that enumerators with different emission orders can be compared.
func canonical(plexes [][]int) []string {
	keys := make([]string, len(plexes))
	for i, p := range plexes {
		cp := append([]int(nil), p...)
		sort.Ints(cp)
		keys[i] = fmt.Sprint(cp)
	}
	sort.Strings(keys)
	return keys
}

func sameResults(t *testing.T, label string, got, want [][]int) {
	t.Helper()
	g, w := canonical(got), canonical(want)
	if len(g) != len(w) {
		t.Fatalf("%s: got %d plexes, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: result %d differs: got %s, want %s", label, i, g[i], w[i])
		}
	}
}

func randomGNP(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var b graph.Builder
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	g, err := b.Build(n)
	if err != nil {
		panic(err)
	}
	return g
}

func TestD2KMatchesNaiveOnRandomGraphs(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		n := 8 + trial
		g := randomGNP(n, 0.45, int64(trial))
		for _, kq := range [][2]int{{1, 3}, {2, 3}, {2, 4}, {3, 5}} {
			k, q := kq[0], kq[1]
			want := NaiveEnumerate(g, k, q)
			got := D2KEnumerate(g, k, q)
			sameResults(t, fmt.Sprintf("trial %d k=%d q=%d", trial, k, q), got, want)
		}
	}
}

func TestFaPlexenMatchesNaiveOnRandomGraphs(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		n := 8 + trial
		g := randomGNP(n, 0.45, int64(100+trial))
		for _, kq := range [][2]int{{1, 3}, {2, 3}, {2, 4}, {3, 5}} {
			k, q := kq[0], kq[1]
			want := NaiveEnumerate(g, k, q)
			got := FaPlexenEnumerate(g, k, q)
			sameResults(t, fmt.Sprintf("trial %d k=%d q=%d", trial, k, q), got, want)
		}
	}
}

// Three independent implementations (engine, D2K, FaPlexen) must agree on
// graphs large enough that the naive oracle is too slow.
func TestOraclesAgreeWithEngineOnMediumGraphs(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp-60":     randomGNP(60, 0.18, 1),
		"chunglu-80": gen.ChungLu(80, 10, 2.2, 2),
		"planted": gen.Planted(gen.PlantedConfig{
			N: 70, BackgroundP: 0.02, Communities: 5, CommSize: 8,
			DropPerV: 1, Overlap: 2, Seed: 3,
		}),
	}
	for name, g := range graphs {
		for _, kq := range [][2]int{{2, 5}, {3, 6}} {
			k, q := kq[0], kq[1]
			label := fmt.Sprintf("%s k=%d q=%d", name, k, q)

			engine, _, err := enumerateAll(g, k, q)
			if err != nil {
				t.Fatalf("%s: engine: %v", label, err)
			}
			sameResults(t, label+" d2k-vs-engine", D2KEnumerate(g, k, q), engine)
			sameResults(t, label+" faplexen-vs-engine", FaPlexenEnumerate(g, k, q), engine)
		}
	}
}

func enumerateAll(g *graph.Graph, k, q int) ([][]int, kplex.Result, error) {
	var out [][]int
	opts := kplex.NewOptions(k, q)
	opts.OnPlex = func(p []int) { out = append(out, append([]int(nil), p...)) }
	res, err := kplex.Run(context.Background(), g, opts)
	return out, res, err
}

func TestD2KOnPlantedCommunities(t *testing.T) {
	// Each planted community is a (drop+1)-plex of size 10; with a sparse
	// background the enumerator must find at least one plex of size >= 9.
	g := gen.Planted(gen.PlantedConfig{
		N: 60, BackgroundP: 0.01, Communities: 4, CommSize: 10,
		DropPerV: 1, Overlap: 0, Seed: 4,
	})
	plexes := D2KEnumerate(g, 2, 9)
	if len(plexes) == 0 {
		t.Fatal("no k-plexes found on planted communities")
	}
	for _, p := range plexes {
		if !kplex.IsKPlex(g, p, 2) {
			t.Errorf("non-k-plex emitted: %v", p)
		}
		if !kplex.IsMaximalKPlex(g, p, 2) {
			t.Errorf("non-maximal k-plex emitted: %v", p)
		}
	}
}

func TestFaPlexenCliqueCase(t *testing.T) {
	// k=1 reduces to maximal cliques; a complete graph has exactly one.
	var b graph.Builder
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			b.AddEdge(u, v)
		}
	}
	g, _ := b.Build(6)
	got := FaPlexenEnumerate(g, 1, 3)
	if len(got) != 1 || len(got[0]) != 6 {
		t.Fatalf("K6 with k=1 q=3: got %v, want one 6-clique", got)
	}
}

func TestD2KPanicsOnBadParams(t *testing.T) {
	g := randomGNP(5, 0.5, 1)
	for _, kq := range [][2]int{{0, 3}, {3, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d q=%d: expected panic", kq[0], kq[1])
				}
			}()
			D2KEnumerate(g, kq[0], kq[1])
		}()
	}
}

func TestEnumeratorsOnEmptyAndTinyGraphs(t *testing.T) {
	empty, _ := new(graph.Builder).Build(0)
	if got := D2KEnumerate(empty, 2, 3); len(got) != 0 {
		t.Errorf("empty graph: D2K returned %v", got)
	}
	if got := FaPlexenEnumerate(empty, 2, 3); len(got) != 0 {
		t.Errorf("empty graph: FaPlexen returned %v", got)
	}
	single, _ := new(graph.Builder).Build(1)
	if got := FaPlexenEnumerate(single, 1, 1); len(got) != 1 {
		t.Errorf("single vertex, q=1: got %v, want the singleton", got)
	}
}
