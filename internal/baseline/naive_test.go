package baseline

import (
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/kplex"
)

func buildGraph(t *testing.T, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	var b graph.Builder
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sorted(plexes [][]int) [][]int {
	for _, p := range plexes {
		sort.Ints(p)
	}
	sort.Slice(plexes, func(i, j int) bool {
		a, b := plexes[i], plexes[j]
		for x := 0; x < len(a) && x < len(b); x++ {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return len(a) < len(b)
	})
	return plexes
}

func TestNaiveOnTriangleWithPendant(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 attached to 2.
	g := buildGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})

	// k=1 (maximal cliques) with q=3: just the triangle.
	got := sorted(NaiveEnumerate(g, 1, 3))
	if len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("cliques q=3: %v", got)
	}

	// k=2, q=3: {0,1,2,3} is a 2-plex (vertices 0 and 1 miss only vertex 3,
	// vertex 3 misses 0 and 1 — that's 2 missing links + itself = 3 > 2).
	// So the maximal 2-plexes of size >= 3 are {0,1,2}, {0,2,3}, {1,2,3}.
	got = sorted(NaiveEnumerate(g, 2, 3))
	want := [][]int{{0, 1, 2}, {0, 2, 3}, {1, 2, 3}}
	if len(got) != len(want) {
		t.Fatalf("2-plexes: got %v, want %v", got, want)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("2-plexes: got %v, want %v", got, want)
			}
		}
	}
}

func TestNaiveOnCompleteGraph(t *testing.T) {
	// K5: the only maximal k-plex is the whole graph, for any k.
	var edges [][2]int
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	g := buildGraph(t, 5, edges)
	for k := 1; k <= 3; k++ {
		got := NaiveEnumerate(g, k, 3)
		if len(got) != 1 || len(got[0]) != 5 {
			t.Fatalf("k=%d: %v", k, got)
		}
	}
}

func TestNaiveSizeFilter(t *testing.T) {
	g := buildGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	if got := NaiveEnumerate(g, 1, 4); len(got) != 0 {
		t.Fatalf("q=4 on a triangle graph returned %v", got)
	}
}

func TestNaiveDisconnectedKPlex(t *testing.T) {
	// Two disjoint edges: {0,1} ∪ {2,3} is a 2-plex of size 4 (every vertex
	// misses 2 others + itself = 3... that's > 2, so NOT a 2-plex). For
	// k=3 it IS a 3-plex. This pins the self-counting convention.
	g := buildGraph(t, 4, [][2]int{{0, 1}, {2, 3}})
	got := NaiveEnumerate(g, 3, 4)
	if len(got) != 1 || len(got[0]) != 4 {
		t.Fatalf("k=3: %v", got)
	}
	if got := NaiveEnumerate(g, 2, 4); len(got) != 0 {
		t.Fatalf("k=2 should find nothing of size 4, got %v", got)
	}
}

func TestBaselineOptionPresets(t *testing.T) {
	lp := ListPlexOptions(3, 8)
	if err := lp.Validate(); err != nil {
		t.Fatalf("ListPlexOptions invalid: %v", err)
	}
	if lp.UseSubtaskBound || lp.UsePairPruning {
		t.Fatal("ListPlex preset must disable R1/R2")
	}
	fp := FPOptions(3, 8)
	if err := fp.Validate(); err != nil {
		t.Fatalf("FPOptions invalid: %v", err)
	}
	if fp.Partition != kplex.PartitionWhole2Hop {
		t.Fatal("FP preset must use the whole-2-hop partition")
	}
}
