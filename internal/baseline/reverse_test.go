package baseline

import (
	"testing"

	"repro/internal/gen"
)

func TestReverseSearchMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		n := 8 + int(seed)%4
		g := gen.GNP(n, 0.5, 900+seed)
		for _, kq := range []struct{ k, q int }{{1, 1}, {2, 3}, {3, 5}} {
			want := sorted(NaiveEnumerate(g, kq.k, kq.q))
			got, err := ReverseSearchEnumerate(g, kq.k, kq.q, 100000)
			if err != nil {
				t.Fatalf("seed=%d k=%d: %v", seed, kq.k, err)
			}
			if len(got) != len(want) {
				t.Fatalf("seed=%d k=%d q=%d: reverse found %d, naive %d",
					seed, kq.k, kq.q, len(got), len(want))
			}
			for i := range want {
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("seed=%d k=%d q=%d: set %d differs: %v vs %v",
							seed, kq.k, kq.q, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestReverseSearchRejectsBadK(t *testing.T) {
	g := gen.GNP(5, 0.5, 1)
	if _, err := ReverseSearchEnumerate(g, 0, 1, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestReverseSearchSolutionCap(t *testing.T) {
	g := gen.GNP(14, 0.6, 2)
	if _, err := ReverseSearchEnumerate(g, 2, 3, 1); err == nil {
		t.Fatal("cap of 1 not enforced on a graph with many solutions")
	}
}

func TestReverseSearchEmptyGraph(t *testing.T) {
	g := gen.GNP(0, 0, 1)
	got, err := ReverseSearchEnumerate(g, 2, 3, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty graph: %v, %v", got, err)
	}
}
