// Package baseline implements the comparison algorithms of the paper's
// evaluation: a direct Bron-Kerbosch k-plex enumerator (Algorithm 1 of the
// paper, used as a correctness oracle), and option presets that configure
// the shared branch-and-bound engine to behave like ListPlex and FP, the
// two state-of-the-art baselines of Section 7.
package baseline

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/kplex"
)

// NaiveEnumerate runs the textbook Bron-Kerbosch adaptation for k-plexes
// (the paper's Algorithm 1) over the whole graph, without any pruning or
// decomposition. Exponential in n with a large constant: use only on small
// graphs (it is the ground-truth oracle for tests). Results are emitted as
// sorted vertex slices in ascending lexicographic order of discovery; only
// maximal k-plexes with at least q vertices are reported.
func NaiveEnumerate(g *graph.Graph, k, q int) [][]int {
	n := g.N()
	var out [][]int
	var rec func(P, C, X []int)
	rec = func(P, C, X []int) {
		if len(C) == 0 {
			if len(X) == 0 && len(P) >= q {
				cp := append([]int(nil), P...)
				sort.Ints(cp)
				out = append(out, cp)
			}
			return
		}
		// Iterate candidates; each iteration moves the head of C to X.
		C2 := append([]int(nil), C...)
		for i, v := range C2 {
			P2 := append(append([]int(nil), P...), v)
			var C3, X3 []int
			for _, u := range C2[i+1:] {
				if kplex.IsKPlex(g, append(P2, u), k) {
					C3 = append(C3, u)
				}
			}
			for _, u := range X {
				if kplex.IsKPlex(g, append(P2, u), k) {
					X3 = append(X3, u)
				}
			}
			for _, u := range C2[:i] {
				if kplex.IsKPlex(g, append(P2, u), k) {
					X3 = append(X3, u)
				}
			}
			rec(P2, C3, X3)
		}
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	rec(nil, all, nil)
	return out
}

// ListPlexOptions configures the engine as the ListPlex baseline: the same
// sub-task partitioning (ListPlex introduced it), but FaPlexen's branching
// when the pivot is in P, no upper-bound pruning, and no vertex-pair rules
// — the combination Section 2 attributes to ListPlex.
func ListPlexOptions(k, q int) kplex.Options {
	o := kplex.NewOptions(k, q)
	o.Branching = kplex.BranchFaPlexen
	o.UpperBound = kplex.UBNone
	o.UseSubtaskBound = false
	o.UsePairPruning = false
	return o
}

// FPOptions configures the engine as the FP baseline: one task per seed
// over the whole later 2-hop candidate set (the O(γ^|C|) scheme the paper
// improves on), with FP's sort-based upper bound and no pair rules.
func FPOptions(k, q int) kplex.Options {
	o := kplex.NewOptions(k, q)
	o.Partition = kplex.PartitionWhole2Hop
	o.UpperBound = kplex.UBSortFP
	o.UseSubtaskBound = false
	o.UsePairPruning = false
	return o
}
