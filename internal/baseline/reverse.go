package baseline

// Reverse-search enumeration of maximal k-plexes, after Berlowitz, Cohen
// and Kimelfeld (SIGMOD 2015), which the paper reviews in Section 2 as the
// polynomial-delay alternative to Bron-Kerbosch. The solution graph has one
// node per maximal k-plex; from a solution P and a vertex v ∉ P, the
// neighbouring solutions are the maximal completions of {v} together with
// the P-members compatible with v. DFS over this graph from any initial
// solution visits every maximal k-plex.
//
// This implementation trades the paper's polynomial-delay completion
// procedure for an exhaustive one (every maximal completion of the seed is
// a neighbour — a superset of the published neighbour function, so
// reachability is preserved). That makes it exponential per edge and only
// practical on small graphs; it exists as a third independently-derived
// oracle for the test suite, and to confirm the paper's observation that
// reverse search loses to branch-and-bound for exhaustive enumeration.

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/kplex"
)

// ReverseSearchEnumerate lists all maximal k-plexes of g with at least q
// vertices by reverse search. maxSolutions caps the visited-solution count
// as a safety valve (0 = unlimited). Results are sorted lexicographically.
func ReverseSearchEnumerate(g *graph.Graph, k, q, maxSolutions int) ([][]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: k must be >= 1, got %d", k)
	}
	n := g.N()
	if n == 0 {
		return nil, nil
	}

	visited := make(map[string]bool)
	var out [][]int
	var stack [][]int

	push := func(p []int) {
		key := fmt.Sprint(p)
		if visited[key] {
			return
		}
		visited[key] = true
		stack = append(stack, p)
		if len(p) >= q {
			out = append(out, p)
		}
	}

	// Initial solutions: every maximal completion of each singleton whose
	// vertex id is 0 (one seed suffices for connectivity; starting from
	// vertex 0 keeps the traversal deterministic).
	for _, p := range completions(g, []int{0}, k) {
		push(p)
	}

	for len(stack) > 0 {
		if maxSolutions > 0 && len(visited) > maxSolutions {
			return nil, fmt.Errorf("baseline: reverse search exceeded %d solutions", maxSolutions)
		}
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		inP := make(map[int]bool, len(p))
		for _, v := range p {
			inP[v] = true
		}
		for v := 0; v < n; v++ {
			if inP[v] {
				continue
			}
			// Two seed flavours per outside vertex: the published
			// {v} ∪ (compatible part of P), plus the bare singleton {v}.
			// The singleton's exhaustive completion set makes reachability
			// unconditional (every maximal plex contains some vertex, and
			// every vertex is outside some visited solution unless it is
			// in all of them — in which case the compatible seed covers
			// it). This is what makes the implementation oracle-grade at
			// the cost of the published delay bound.
			for _, nb := range completions(g, compatibleSeed(g, p, v, k), k) {
				push(nb)
			}
			for _, nb := range completions(g, []int{v}, k) {
				push(nb)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessIntSliceB(out[i], out[j]) })
	return out, nil
}

// compatibleSeed returns {v} plus a maximal (greedy, in order) subset of P
// that stays a k-plex with v.
func compatibleSeed(g *graph.Graph, p []int, v, k int) []int {
	seed := []int{v}
	for _, u := range p {
		trial := append(seed, u)
		if kplex.IsKPlex(g, trial, k) {
			seed = trial
		}
	}
	return seed
}

// completions returns every maximal k-plex containing set, deduplicated and
// with each result sorted. Exponential; intended for small graphs only.
func completions(g *graph.Graph, set []int, k int) [][]int {
	seen := make(map[string]bool)
	var out [][]int
	var rec func(cur []int)
	rec = func(cur []int) {
		extended := false
		for v := 0; v < g.N(); v++ {
			if contains(cur, v) {
				continue
			}
			trial := append(append([]int(nil), cur...), v)
			if kplex.IsKPlex(g, trial, k) {
				extended = true
				sort.Ints(trial)
				if key := fmt.Sprint(trial); !seen[key] {
					seen[key] = true
					rec(trial)
				}
			}
		}
		if !extended {
			res := append([]int(nil), cur...)
			sort.Ints(res)
			if key := "max" + fmt.Sprint(res); !seen[key] {
				seen[key] = true
				out = append(out, res)
			}
		}
	}
	start := append([]int(nil), set...)
	sort.Ints(start)
	rec(start)
	return out
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func lessIntSliceB(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
