package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the le-inclusive bucketing contract:
// a value exactly on an upper bound lands in that bucket, one epsilon
// above lands in the next, and values beyond the last bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1} { // both <= 0.1
		h.Observe(v)
	}
	h.Observe(0.100001)   // first bucket > 0.1 is le=1
	h.Observe(10)         // exactly the last bound
	h.Observe(10.5)       // beyond: +Inf
	h.Observe(math.NaN()) // dropped

	s := h.Snapshot()
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d: got %d want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	wantSum := 0.05 + 0.1 + 0.100001 + 10 + 10.5
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", s.Sum, wantSum)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(5)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	s := a.Snapshot()
	if got := s.Counts; got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("merged counts = %v", got)
	}
	if s.Count != 3 {
		t.Fatalf("merged count = %d, want 3", s.Count)
	}
	if math.Abs(s.Sum-7.0) > 1e-9 {
		t.Fatalf("merged sum = %g, want 7", s.Sum)
	}

	c := NewHistogram([]float64{1, 3})
	if err := a.Merge(c); err == nil {
		t.Fatal("merge with different bounds must fail")
	}
	d := NewHistogram([]float64{1})
	if err := a.Merge(d); err == nil {
		t.Fatal("merge with different bucket counts must fail")
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines; under -race this doubles as the data-race check, and the
// final snapshot must account for every observation exactly once.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w*perWorker+i) * 1e-5)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d", total, s.Count)
	}
	n := float64(workers * perWorker)
	wantSum := 1e-5 * n * (n - 1) / 2
	if math.Abs(s.Sum-wantSum)/wantSum > 1e-9 {
		t.Fatalf("sum = %g, want %g", s.Sum, wantSum)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
	// The shared layouts must satisfy NewHistogram's ascending check.
	NewHistogram(DefaultLatencyBuckets)
	NewHistogram(FsyncBuckets)
	NewHistogram(LogErrorBuckets)
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram([]float64{0.001, 1})
	h.ObserveDuration(500 * time.Microsecond)
	h.ObserveSince(time.Now().Add(-10 * time.Millisecond))
	s := h.Snapshot()
	if s.Counts[0] != 1 || s.Counts[1] != 1 {
		t.Fatalf("counts = %v", s.Counts)
	}
}
