package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterVec(t *testing.T) {
	v := NewCounterVec()
	v.Add("a", 1)
	v.Add("b", 2)
	v.Add("a", 3)
	snap := v.Snapshot()
	if snap["a"] != 4 || snap["b"] != 2 || len(snap) != 2 {
		t.Fatalf("snapshot %v", snap)
	}
	// Snapshot is a copy.
	snap["a"] = 99
	if v.Snapshot()["a"] != 4 {
		t.Fatal("snapshot aliases internal state")
	}
}

func TestHistogramVec(t *testing.T) {
	v := NewHistogramVec([]float64{1, 10})
	v.Observe("x", 0.5)
	v.Observe("x", 5)
	v.Observe("y", 100)
	snap := v.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("want 2 series, got %d", len(snap))
	}
	if s := snap["x"]; s.Count != 2 || s.Counts[0] != 1 || s.Counts[1] != 1 {
		t.Errorf("series x: %+v", s)
	}
	if s := snap["y"]; s.Count != 1 || s.Counts[2] != 1 {
		t.Errorf("series y overflow bucket: %+v", s)
	}
	if v.With("x") != v.With("x") {
		t.Error("With does not return a stable series")
	}
}

func TestVecConcurrent(t *testing.T) {
	cv := NewCounterVec()
	hv := NewHistogramVec(DefaultLatencyBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			label := string(rune('a' + g%3))
			for i := 0; i < 1000; i++ {
				cv.Add(label, 1)
				hv.Observe(label, 0.001)
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, c := range cv.Snapshot() {
		total += c
	}
	if total != 8000 {
		t.Fatalf("counter total %d, want 8000", total)
	}
	var hTotal int64
	for _, s := range hv.Snapshot() {
		hTotal += s.Count
	}
	if hTotal != 8000 {
		t.Fatalf("histogram total %d, want 8000", hTotal)
	}
}

func TestPromWriterVecs(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.CounterVec("kplexd_tenant_queries_total", "Queries per tenant.", "tenant",
		map[string]int64{"gold": 3, "bro\"nze": 1})
	p.GaugeVec("kplexd_tenant_running", "Running per tenant.", "tenant",
		map[string]int64{"gold": 2})
	h := NewHistogram([]float64{1})
	h.Observe(0.5)
	p.HistogramVec("kplexd_tenant_wait_seconds", "Wait per tenant.", "tenant",
		map[string]HistogramSnapshot{"gold": h.Snapshot()})
	// Empty families are silent.
	p.CounterVec("kplexd_none_total", "Nothing.", "tenant", nil)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP kplexd_tenant_queries_total Queries per tenant.\n",
		"# TYPE kplexd_tenant_queries_total counter\n",
		"kplexd_tenant_queries_total{tenant=\"bro\\\"nze\"} 1\n",
		"kplexd_tenant_queries_total{tenant=\"gold\"} 3\n",
		"kplexd_tenant_running{tenant=\"gold\"} 2\n",
		"kplexd_tenant_wait_seconds_bucket{tenant=\"gold\",le=\"1\"} 1\n",
		"kplexd_tenant_wait_seconds_bucket{tenant=\"gold\",le=\"+Inf\"} 1\n",
		"kplexd_tenant_wait_seconds_count{tenant=\"gold\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "kplexd_none_total") {
		t.Error("empty family emitted metadata")
	}
	// Sorted label order: bro"nze before gold.
	if strings.Index(out, "bro") > strings.Index(out, "gold") {
		t.Error("samples not sorted by label value")
	}
}

func TestEscapeLabelValue(t *testing.T) {
	if got := escapeLabelValue(`a\b"c` + "\nd"); got != `a\\b\"c\nd` {
		t.Fatalf("escaped %q", got)
	}
}
