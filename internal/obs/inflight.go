package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Inflight tracks queries currently executing, backing GET /debug/queries.
// Registration returns a handle whose progress fields are updated with
// atomics, so engine callbacks (per-seed hooks) never contend on the
// registry lock.
type Inflight struct {
	mu      sync.Mutex
	nextID  int64
	entries map[int64]*InflightEntry
}

// NewInflight returns an empty registry.
func NewInflight() *Inflight {
	return &Inflight{entries: make(map[int64]*InflightEntry)}
}

// InflightEntry is one registered in-flight query. Identity fields are
// immutable; progress fields are atomic.
type InflightEntry struct {
	reg *Inflight

	id      int64
	kind    string // query | stream | batch | range
	graph   string
	k, q    int
	mode    string
	traceID string
	started time.Time

	stage       atomic.Pointer[string]
	seedsDone   atomic.Int64
	seedsTotal  atomic.Int64
	predictedUS atomic.Int64 // predicted runtime in microseconds; 0 = no prediction
}

// Register adds an in-flight query and returns its handle. Call Done on
// the handle when the query finishes (any outcome). Register on a nil
// registry returns nil, and all handle methods are nil-safe.
func (f *Inflight) Register(kind, graph string, k, q int, mode, traceID string) *InflightEntry {
	if f == nil {
		return nil
	}
	e := &InflightEntry{
		reg:     f,
		kind:    kind,
		graph:   graph,
		k:       k,
		q:       q,
		mode:    mode,
		traceID: traceID,
		started: time.Now(),
	}
	stage := "admitted"
	e.stage.Store(&stage)
	f.mu.Lock()
	f.nextID++
	e.id = f.nextID
	f.entries[e.id] = e
	f.mu.Unlock()
	return e
}

// SetStage labels the pipeline stage the query is in ("admission",
// "prepare", "enumerate", ...).
func (e *InflightEntry) SetStage(s string) {
	if e == nil {
		return
	}
	e.stage.Store(&s)
}

// SetSeedsTotal records the seed-space size once known (after prepare).
func (e *InflightEntry) SetSeedsTotal(n int64) {
	if e == nil {
		return
	}
	e.seedsTotal.Store(n)
}

// SeedDone increments the completed-seed counter; called from the
// engine's OnSeedDone hook.
func (e *InflightEntry) SeedDone() {
	if e == nil {
		return
	}
	e.seedsDone.Add(1)
}

// SetPredicted records the cost model's runtime prediction.
func (e *InflightEntry) SetPredicted(d time.Duration) {
	if e == nil {
		return
	}
	e.predictedUS.Store(d.Microseconds())
}

// Done removes the entry from the registry.
func (e *InflightEntry) Done() {
	if e == nil {
		return
	}
	e.reg.mu.Lock()
	delete(e.reg.entries, e.id)
	e.reg.mu.Unlock()
}

// QueryInfo is the JSON view of one in-flight query.
type QueryInfo struct {
	ID          int64   `json:"id"`
	Kind        string  `json:"kind"`
	Graph       string  `json:"graph"`
	K           int     `json:"k"`
	Q           int     `json:"q"`
	Mode        string  `json:"mode,omitempty"`
	TraceID     string  `json:"traceId,omitempty"`
	Stage       string  `json:"stage"`
	AgeMS       float64 `json:"ageMs"`
	SeedsDone   int64   `json:"seedsDone"`
	SeedsTotal  int64   `json:"seedsTotal"`
	PredictedMS float64 `json:"predictedMs,omitempty"`
}

// Snapshot returns the in-flight queries, oldest first.
func (f *Inflight) Snapshot() []QueryInfo {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	entries := make([]*InflightEntry, 0, len(f.entries))
	for _, e := range f.entries {
		entries = append(entries, e)
	}
	f.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	out := make([]QueryInfo, 0, len(entries))
	now := time.Now()
	for _, e := range entries {
		out = append(out, QueryInfo{
			ID:          e.id,
			Kind:        e.kind,
			Graph:       e.graph,
			K:           e.k,
			Q:           e.q,
			Mode:        e.mode,
			TraceID:     e.traceID,
			Stage:       *e.stage.Load(),
			AgeMS:       durationMS(now.Sub(e.started)),
			SeedsDone:   e.seedsDone.Load(),
			SeedsTotal:  e.seedsTotal.Load(),
			PredictedMS: float64(e.predictedUS.Load()) / 1e3,
		})
	}
	return out
}
