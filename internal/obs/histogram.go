package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram safe for concurrent Observe. The
// bucket layout is immutable after construction, so observation is two
// atomic adds plus a binary search — no locks on the hot path. Values are
// unitless; latency histograms observe seconds by convention (matching
// the Prometheus _seconds suffix).
type Histogram struct {
	bounds []float64      // ascending upper bounds; implicit +Inf last
	counts []atomic.Int64 // len(bounds)+1; counts[len(bounds)] is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given ascending upper bounds.
// Panics on an empty or unsorted layout — bucket layouts are package-level
// constants, so this is a programming error, not input validation.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: empty histogram bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefaultLatencyBuckets spans 0.5ms .. ~65s in powers of two (18 bounds),
// covering sub-millisecond cache hits through multi-minute enumerations.
var DefaultLatencyBuckets = ExpBuckets(0.0005, 2, 18)

// FsyncBuckets spans 50µs .. ~0.8s: WAL fsyncs sit well under a
// millisecond on local SSDs and blow past 100ms when a device stalls.
var FsyncBuckets = ExpBuckets(0.00005, 2, 14)

// LogErrorBuckets grades the cost model's |ln(predicted/actual)|:
// 0.1 ≈ within 10%, 0.7 ≈ within 2x, 2.3 ≈ within 10x.
var LogErrorBuckets = []float64{0.05, 0.1, 0.2, 0.4, 0.7, 1.2, 1.6, 2.3, 3.2}

// Observe records one value. NaN is dropped (it would poison the sum and
// cannot be bucketed meaningfully).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// First bucket whose upper bound is >= v (Prometheus buckets are
	// le-inclusive); SearchFloat64s finds the first bound > v for exact
	// boundary hits it must include, so search with >=.
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Merge folds other's observations into h. The bucket layouts must be
// identical.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d buckets", len(h.bounds), len(other.bounds))
	}
	for i, b := range h.bounds {
		if b != other.bounds[i] {
			return fmt.Errorf("obs: merging histograms with different bounds at %d: %g vs %g", i, b, other.bounds[i])
		}
	}
	for i := range other.counts {
		h.counts[i].Add(other.counts[i].Load())
	}
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + math.Float64frombits(other.sum.Load()))
		if h.sum.CompareAndSwap(old, next) {
			return nil
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts are
// per-bucket (not cumulative); Counts[len(Bounds)] is the +Inf bucket.
// Count is derived by summing the buckets, so Count and Counts are always
// mutually consistent even when taken mid-Observe (Sum may trail by the
// in-flight observations — acceptable for monitoring).
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Snapshot returns a consistent copy for exposition.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}
