// Package obs is kplexd's dependency-free observability layer: request
// trace spans with a ring-buffered recorder, fixed-bucket latency
// histograms with a spec-compliant Prometheus text writer, an in-flight
// query registry backing /debug/queries, and a rotating slow-query log.
//
// Every type is designed to be threaded through hot paths at near-zero
// cost when disabled: an unsampled request yields a nil *Trace, and all
// Trace/Span/Tracer methods are nil-receiver safe, so call sites never
// branch on "is tracing on".
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpansPerTrace bounds the memory of a single trace. Long-running jobs
// record one span per WAL checkpoint; a runaway producer must not grow a
// ring entry without bound. Spans beyond the cap are counted, not stored.
const maxSpansPerTrace = 512

// SpanData is one finished span. Start is absolute wall-clock time so
// spans recorded on different machines (coordinator and workers) can be
// stitched into one trace; sub-millisecond skew between hosts is accepted
// as-is rather than papered over.
type SpanData struct {
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"durationMs"`
	// Status is "ok", "cancelled" (the client went away) or "failed".
	Status string            `json:"status"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// TraceData is one finished trace as served by GET /debug/traces/{id}.
type TraceData struct {
	ID         string     `json:"id"`
	Name       string     `json:"name"`
	Start      time.Time  `json:"start"`
	DurationMS float64    `json:"durationMs"`
	Spans      []SpanData `json:"spans"`
	// Dropped counts spans discarded beyond maxSpansPerTrace.
	Dropped int `json:"droppedSpans,omitempty"`
}

// Tracer records finished traces into a fixed-capacity ring buffer,
// evicting the oldest entry when full, and samples 1 in every N eligible
// Start calls. The zero of *Tracer (nil) is a valid no-op tracer.
type Tracer struct {
	capacity    int
	sampleEvery int64
	counter     atomic.Int64

	mu    sync.Mutex
	byID  map[string]int // trace id -> index into ring
	ring  []TraceData
	next  int // next ring slot to overwrite
	count int // live entries (<= capacity)
}

// NewTracer returns a tracer keeping the last capacity finished traces
// and sampling one in every sampleEvery Start calls. Non-positive values
// fall back to 256 and 1 (trace everything).
func NewTracer(capacity, sampleEvery int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	if sampleEvery <= 0 {
		sampleEvery = 1
	}
	return &Tracer{
		capacity:    capacity,
		sampleEvery: int64(sampleEvery),
		byID:        make(map[string]int, capacity),
		ring:        make([]TraceData, capacity),
	}
}

// Start begins a new trace if the sampling counter selects this call, and
// returns nil otherwise. A nil result is safe to use: every Trace and
// Span method no-ops on a nil receiver.
func (tr *Tracer) Start(name string) *Trace {
	if tr == nil {
		return nil
	}
	if tr.counter.Add(1)%tr.sampleEvery != 0 {
		return nil
	}
	return tr.StartWithID(NewTraceID(), name)
}

// StartAlways begins a new trace regardless of sampling — used for
// expensive, rare operations (jobs, cluster runs) where every instance is
// worth keeping.
func (tr *Tracer) StartAlways(name string) *Trace {
	if tr == nil {
		return nil
	}
	return tr.StartWithID(NewTraceID(), name)
}

// StartWithID begins a trace under a caller-chosen id — the propagation
// path: a request arriving with a Traceparent header continues the
// upstream trace so the coordinator and its workers agree on one id.
func (tr *Tracer) StartWithID(id, name string) *Trace {
	if tr == nil || id == "" {
		return nil
	}
	return &Trace{
		tr: tr,
		data: TraceData{
			ID:    id,
			Name:  name,
			Start: time.Now(),
		},
	}
}

// Get returns the finished trace with the given id, if still in the ring.
func (tr *Tracer) Get(id string) (TraceData, bool) {
	if tr == nil {
		return TraceData{}, false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	i, ok := tr.byID[id]
	if !ok {
		return TraceData{}, false
	}
	return tr.ring[i], true
}

// Recent returns up to n finished traces, newest first.
func (tr *Tracer) Recent(n int) []TraceData {
	if tr == nil || n <= 0 {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if n > tr.count {
		n = tr.count
	}
	out := make([]TraceData, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, tr.ring[(tr.next-i+tr.capacity)%tr.capacity])
	}
	return out
}

// store commits a finished trace, evicting the oldest entry when full.
func (tr *Tracer) store(td TraceData) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if old := tr.ring[tr.next]; old.ID != "" {
		// Only drop the index if it still points at the slot being
		// recycled — a newer trace may have reused the id (job resume).
		if j, ok := tr.byID[old.ID]; ok && j == tr.next {
			delete(tr.byID, old.ID)
		}
	}
	tr.ring[tr.next] = td
	tr.byID[td.ID] = tr.next
	tr.next = (tr.next + 1) % tr.capacity
	if tr.count < tr.capacity {
		tr.count++
	}
}

// Trace is an in-progress trace. It is safe for concurrent use, and all
// methods no-op on a nil receiver so call sites need no sampling checks.
// A Trace created by NewTrace is detached: it records spans without a
// tracer, for export via Spans() — the cluster-worker side of a stitched
// distributed trace.
type Trace struct {
	tr *Tracer // nil for detached traces

	mu   sync.Mutex
	data TraceData
	done bool
}

// NewTrace returns a detached trace: spans are recorded and can be
// extracted with Spans(), but Finish does not store anything. Cluster
// workers use this to record their share of a coordinator's trace and
// ship the spans back in-band rather than into their own ring (where a
// duplicated trace id would shadow local traces).
func NewTrace(name string) *Trace {
	return &Trace{data: TraceData{ID: NewTraceID(), Name: name, Start: time.Now()}}
}

// ID returns the trace id ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.data.ID
}

// StartSpan begins a span inside the trace. Returns nil (safe) on a nil
// trace.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: time.Now()}
}

// AddSpans grafts externally recorded spans (a worker's share of a
// distributed trace) into this trace.
func (t *Trace) AddSpans(spans []SpanData) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sd := range spans {
		t.addLocked(sd)
	}
}

func (t *Trace) addLocked(sd SpanData) {
	if len(t.data.Spans) >= maxSpansPerTrace {
		t.data.Dropped++
		return
	}
	t.data.Spans = append(t.data.Spans, sd)
}

// Spans returns a copy of the spans recorded so far.
func (t *Trace) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, len(t.data.Spans))
	copy(out, t.data.Spans)
	return out
}

// Finish seals the trace and commits it to the tracer's ring buffer.
// Finishing twice is a no-op, as is finishing a detached or nil trace.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.data.DurationMS = durationMS(time.Since(t.data.Start))
	td := t.data
	// Deep-copy the span slice so post-Finish AddSpans (a straggling
	// speculative lease) cannot alias the stored snapshot.
	td.Spans = make([]SpanData, len(t.data.Spans))
	copy(td.Spans, t.data.Spans)
	tr := t.tr
	t.mu.Unlock()
	if tr != nil {
		tr.store(td)
	}
}

// Span is one in-progress span. All methods no-op on a nil receiver.
type Span struct {
	t     *Trace
	name  string
	start time.Time

	mu    sync.Mutex
	attrs map[string]string
	ended bool
}

// Attr attaches a key/value attribute and returns the span for chaining.
func (s *Span) Attr(k, v string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[k] = v
	s.mu.Unlock()
	return s
}

// End finishes the span with status "ok".
func (s *Span) End() { s.EndStatus("ok") }

// EndErr finishes the span, classifying err: nil is "ok", a cancelled or
// deadline-exceeded context is "cancelled" (the client went away — not a
// server fault), anything else is "failed" with the error as an attr.
func (s *Span) EndErr(err error) {
	switch {
	case err == nil:
		s.EndStatus("ok")
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded),
		strings.Contains(err.Error(), context.Canceled.Error()):
		s.EndStatus("cancelled")
	default:
		s.Attr("error", err.Error())
		s.EndStatus("failed")
	}
}

// EndStatus finishes the span with an explicit status. Ending twice
// records only the first end.
func (s *Span) EndStatus(status string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	sd := SpanData{
		Name:       s.name,
		Start:      s.start,
		DurationMS: durationMS(time.Since(s.start)),
		Status:     status,
		Attrs:      s.attrs,
	}
	s.mu.Unlock()
	t := s.t
	t.mu.Lock()
	t.addLocked(sd)
	t.mu.Unlock()
}

func durationMS(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// TraceparentHeader is the HTTP header carrying trace propagation across
// the coordinator -> worker hop, shaped like W3C traceparent:
// "00-<32 hex trace id>-<16 hex span id>-01".
const TraceparentHeader = "Traceparent"

// NewTraceID returns a 32-hex-digit random trace id.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; fall back to
		// a time-derived id rather than panicking in a hot path.
		now := time.Now().UnixNano()
		for i := 0; i < 8; i++ {
			b[i] = byte(now >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// Traceparent formats a propagation header value for the given trace id.
// An empty id yields "" (callers skip setting the header).
func Traceparent(traceID string) string {
	if traceID == "" {
		return ""
	}
	var span [8]byte
	rand.Read(span[:]) //nolint:errcheck // best-effort; zero span id is still valid
	return "00-" + traceID + "-" + hex.EncodeToString(span[:]) + "-01"
}

// ParseTraceparent extracts the trace id from a propagation header value.
func ParseTraceparent(h string) (string, bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || len(parts[1]) != 32 {
		return "", false
	}
	if _, err := hex.DecodeString(parts[1]); err != nil {
		return "", false
	}
	return parts[1], true
}

type ctxKey struct{}

// ContextWith returns ctx carrying the trace (nil trace returns ctx
// unchanged).
func ContextWith(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
