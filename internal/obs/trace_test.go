package obs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerRecordsSpans(t *testing.T) {
	tr := NewTracer(8, 1)
	tc := tr.Start("query")
	if tc == nil {
		t.Fatal("sampleEvery=1 must trace every request")
	}
	sp := tc.StartSpan("prepare").Attr("graph", "g")
	time.Sleep(time.Millisecond)
	sp.End()
	tc.StartSpan("enumerate").EndErr(nil)
	tc.StartSpan("doomed").EndErr(errors.New("boom"))
	tc.StartSpan("gone").EndErr(context.Canceled)
	tc.Finish()

	td, ok := tr.Get(tc.ID())
	if !ok {
		t.Fatalf("trace %s not in ring", tc.ID())
	}
	if len(td.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(td.Spans))
	}
	byName := map[string]SpanData{}
	for _, s := range td.Spans {
		byName[s.Name] = s
	}
	if s := byName["prepare"]; s.Status != "ok" || s.DurationMS <= 0 || s.Attrs["graph"] != "g" {
		t.Fatalf("prepare span = %+v", s)
	}
	if s := byName["doomed"]; s.Status != "failed" || s.Attrs["error"] != "boom" {
		t.Fatalf("doomed span = %+v", s)
	}
	if s := byName["gone"]; s.Status != "cancelled" {
		t.Fatalf("cancelled span = %+v", s)
	}
	if td.DurationMS <= 0 {
		t.Fatalf("trace duration = %g", td.DurationMS)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(64, 3)
	var sampled int
	for i := 0; i < 30; i++ {
		if tc := tr.Start("q"); tc != nil {
			sampled++
			tc.Finish()
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 30 with sampleEvery=3, want 10", sampled)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(2, 1)
	var ids []string
	for i := 0; i < 3; i++ {
		tc := tr.Start(fmt.Sprintf("t%d", i))
		ids = append(ids, tc.ID())
		tc.Finish()
	}
	if _, ok := tr.Get(ids[0]); ok {
		t.Fatal("oldest trace must be evicted at capacity 2")
	}
	for _, id := range ids[1:] {
		if _, ok := tr.Get(id); !ok {
			t.Fatalf("trace %s evicted too early", id)
		}
	}
	recent := tr.Recent(10)
	if len(recent) != 2 || recent[0].Name != "t2" || recent[1].Name != "t1" {
		t.Fatalf("Recent = %+v", recent)
	}
}

// TestNilSafety pins the zero-cost-when-disabled contract: every method
// chain on a nil tracer/trace/span must be a safe no-op.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tc := tr.Start("q")
	if tc != nil {
		t.Fatal("nil tracer must return nil trace")
	}
	if tc.ID() != "" {
		t.Fatal("nil trace id")
	}
	tc.StartSpan("s").Attr("k", "v").End()
	tc.StartSpan("s").EndErr(errors.New("x"))
	tc.AddSpans([]SpanData{{Name: "w"}})
	tc.Finish()
	if got := tc.Spans(); got != nil {
		t.Fatalf("nil trace spans = %v", got)
	}
	if _, ok := tr.Get("x"); ok {
		t.Fatal("nil tracer Get")
	}
	if tr.Recent(5) != nil {
		t.Fatal("nil tracer Recent")
	}
	if tr.StartAlways("q") != nil || tr.StartWithID("id", "q") != nil {
		t.Fatal("nil tracer StartAlways/StartWithID")
	}

	var f *Inflight
	e := f.Register("query", "g", 2, 6, "count", "")
	e.SetStage("x")
	e.SeedDone()
	e.SetSeedsTotal(5)
	e.SetPredicted(time.Second)
	e.Done()
	if f.Snapshot() != nil {
		t.Fatal("nil inflight snapshot")
	}

	var sl *SlowLog
	sl.Record(map[string]int{"a": 1})
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}

	var h *Histogram
	h.Observe(1) // nil histogram must not panic
}

func TestDetachedTraceGraft(t *testing.T) {
	// Worker side: a detached trace records spans without any ring.
	wt := NewTrace("range")
	wt.StartSpan("enumerate").End()
	wt.Finish()
	spans := wt.Spans()
	if len(spans) != 1 {
		t.Fatalf("detached spans = %d", len(spans))
	}

	// Coordinator side: graft them into a ring-backed trace.
	tr := NewTracer(4, 1)
	job := tr.StartAlways("job")
	job.StartSpan("lease").End()
	job.AddSpans(spans)
	job.Finish()
	td, _ := tr.Get(job.ID())
	if len(td.Spans) != 2 {
		t.Fatalf("stitched spans = %d, want 2", len(td.Spans))
	}
}

func TestTraceSpanCap(t *testing.T) {
	tc := NewTrace("big")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		tc.StartSpan("s").End()
	}
	tc.mu.Lock()
	stored, dropped := len(tc.data.Spans), tc.data.Dropped
	tc.mu.Unlock()
	if stored != maxSpansPerTrace || dropped != 10 {
		t.Fatalf("stored %d dropped %d, want %d/10", stored, dropped, maxSpansPerTrace)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	id := NewTraceID()
	if len(id) != 32 {
		t.Fatalf("trace id %q: want 32 hex chars", id)
	}
	h := Traceparent(id)
	if !strings.HasPrefix(h, "00-"+id+"-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent %q malformed", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != id {
		t.Fatalf("ParseTraceparent(%q) = %q, %v", h, got, ok)
	}
	for _, bad := range []string{"", "00-zz-ff-01", "00-abc-01", "garbage", "00-" + id[:30] + "-0011223344556677-01"} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("ParseTraceparent(%q) accepted", bad)
		}
	}
	if Traceparent("") != "" {
		t.Fatal("empty trace id must produce empty header")
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("empty context must carry no trace")
	}
	if ContextWith(ctx, nil) != ctx {
		t.Fatal("nil trace must not wrap the context")
	}
	tc := NewTrace("x")
	if got := FromContext(ContextWith(ctx, tc)); got != tc {
		t.Fatalf("FromContext = %p, want %p", got, tc)
	}
}

// TestTraceConcurrent drives spans, grafts and a Finish from many
// goroutines; the -race CI job is the real assertion.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTracer(16, 1)
	tc := tr.StartAlways("busy")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := tc.StartSpan("s").Attr("i", fmt.Sprint(i))
				if j%2 == 0 {
					sp.End()
				} else {
					sp.EndErr(context.Canceled)
				}
				tc.AddSpans([]SpanData{{Name: "graft", Status: "ok"}})
			}
		}(i)
	}
	wg.Wait()
	tc.Finish()
	if _, ok := tr.Get(tc.ID()); !ok {
		t.Fatal("trace missing after concurrent use")
	}
}
