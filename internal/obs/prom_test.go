package obs

import (
	"errors"
	"strings"
	"testing"
)

func TestPromWriterCounterGauge(t *testing.T) {
	var sb strings.Builder
	pw := NewPromWriter(&sb)
	pw.Counter("kplexd_queries_total", "Queries served.", 7)
	pw.Gauge("kplexd_cache_entries", "Cached results.", 3)
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	want := "# HELP kplexd_queries_total Queries served.\n" +
		"# TYPE kplexd_queries_total counter\n" +
		"kplexd_queries_total 7\n" +
		"# HELP kplexd_cache_entries Cached results.\n" +
		"# TYPE kplexd_cache_entries gauge\n" +
		"kplexd_cache_entries 3\n"
	if sb.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestPromWriterHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(9)
	var sb strings.Builder
	pw := NewPromWriter(&sb)
	pw.Histogram("kplexd_q_seconds", "Latency.", h.Snapshot())
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	want := "# HELP kplexd_q_seconds Latency.\n" +
		"# TYPE kplexd_q_seconds histogram\n" +
		"kplexd_q_seconds_bucket{le=\"0.5\"} 1\n" +
		"kplexd_q_seconds_bucket{le=\"1\"} 2\n" +
		"kplexd_q_seconds_bucket{le=\"+Inf\"} 3\n" +
		"kplexd_q_seconds_sum 9.9\n" +
		"kplexd_q_seconds_count 3\n"
	if sb.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", sb.String(), want)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errors.New("pipe broke")
}

func TestPromWriterStickyError(t *testing.T) {
	fw := &failWriter{}
	pw := NewPromWriter(fw)
	pw.Counter("a_total", "h", 1)
	pw.Counter("b_total", "h", 2)
	if pw.Err() == nil {
		t.Fatal("expected sticky error")
	}
	if fw.n != 1 {
		t.Fatalf("writer called %d times after first failure, want 1", fw.n)
	}
}
