package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// SlowLog appends structured NDJSON records to a file, rotating it to
// path+".1" (replacing any previous rotation) once it exceeds maxBytes —
// a two-generation cap that bounds disk usage without a log-management
// dependency. A nil *SlowLog is a valid disabled log: Record no-ops.
type SlowLog struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	f        *os.File
	size     int64
}

// NewSlowLog opens (appending) or creates the log file. maxBytes <= 0
// defaults to 8 MiB per generation.
func NewSlowLog(path string, maxBytes int64) (*SlowLog, error) {
	if maxBytes <= 0 {
		maxBytes = 8 << 20
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("slow-query log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("slow-query log: %w", err)
	}
	return &SlowLog{path: path, maxBytes: maxBytes, f: f, size: st.Size()}, nil
}

// Record appends one record as a JSON line. Errors are swallowed: the
// slow-query log is diagnostic output and must never fail a query.
func (sl *SlowLog) Record(v any) {
	if sl == nil {
		return
	}
	line, err := json.Marshal(v)
	if err != nil {
		return
	}
	line = append(line, '\n')
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.f == nil {
		return
	}
	if sl.size+int64(len(line)) > sl.maxBytes {
		sl.rotateLocked()
	}
	if n, err := sl.f.Write(line); err == nil {
		sl.size += int64(n)
	}
}

// rotateLocked moves the current generation to path+".1" and starts a
// fresh file. On any failure the current file keeps growing — losing
// rotation is better than losing the log.
func (sl *SlowLog) rotateLocked() {
	if err := sl.f.Close(); err != nil {
		sl.f = nil
	}
	if err := os.Rename(sl.path, sl.path+".1"); err != nil {
		// Fall through: reopen (possibly the same file) below.
		_ = err
	}
	f, err := os.OpenFile(sl.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		sl.f = nil
		return
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		sl.f = nil
		return
	}
	sl.f = f
	sl.size = st.Size()
}

// Close flushes and closes the log file.
func (sl *SlowLog) Close() error {
	if sl == nil {
		return nil
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.f == nil {
		return nil
	}
	err := sl.f.Close()
	sl.f = nil
	return err
}
