package obs

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestInflightLifecycle(t *testing.T) {
	f := NewInflight()
	a := f.Register("query", "g1", 2, 6, "count", "tid-a")
	b := f.Register("stream", "g2", 3, 8, "", "")
	a.SetStage("enumerate")
	a.SetSeedsTotal(10)
	a.SeedDone()
	a.SeedDone()
	a.SetPredicted(250 * time.Millisecond)

	snap := f.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	// Oldest (lowest id) first.
	if snap[0].Kind != "query" || snap[1].Kind != "stream" {
		t.Fatalf("order: %+v", snap)
	}
	qa := snap[0]
	if qa.Graph != "g1" || qa.K != 2 || qa.Q != 6 || qa.TraceID != "tid-a" {
		t.Fatalf("identity: %+v", qa)
	}
	if qa.Stage != "enumerate" || qa.SeedsDone != 2 || qa.SeedsTotal != 10 {
		t.Fatalf("progress: %+v", qa)
	}
	if qa.PredictedMS != 250 {
		t.Fatalf("predictedMs = %g", qa.PredictedMS)
	}
	if qa.AgeMS < 0 {
		t.Fatalf("ageMs = %g", qa.AgeMS)
	}

	a.Done()
	b.Done()
	if got := f.Snapshot(); len(got) != 0 {
		t.Fatalf("after Done: %+v", got)
	}
}

// TestInflightConcurrent registers/updates/deregisters from many
// goroutines while snapshots are taken; -race is the real check.
func TestInflightConcurrent(t *testing.T) {
	f := NewInflight()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				f.Snapshot()
			}
		}
	}()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				e := f.Register("query", "g", 2, 6, "count", "")
				e.SetStage("enumerate")
				e.SeedDone()
				e.Done()
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()
	if got := f.Snapshot(); len(got) != 0 {
		t.Fatalf("leaked entries: %d", len(got))
	}
}

func TestSlowLogRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.ndjson")
	sl, err := NewSlowLog(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Close()

	rec := map[string]string{"graph": "g", "pad": strings.Repeat("x", 80)}
	for i := 0; i < 10; i++ {
		sl.Record(rec)
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("expected rotated generation: %v", err)
	}
	// Every surviving line must be valid standalone JSON (no torn writes
	// across the rotation boundary).
	for _, p := range []string{path, path + ".1"} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line == "" {
				continue
			}
			if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
				t.Fatalf("%s: torn line %q", p, line)
			}
		}
		if st, _ := os.Stat(p); st.Size() > 256+128 {
			t.Fatalf("%s grew past the cap: %d bytes", p, st.Size())
		}
	}
}

func TestSlowLogUnmarshalableRecord(t *testing.T) {
	dir := t.TempDir()
	sl, err := NewSlowLog(filepath.Join(dir, "s.ndjson"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	sl.Record(make(chan int)) // unmarshalable: silently dropped
	sl.Record(map[string]int{"ok": 1})
	data, _ := os.ReadFile(filepath.Join(dir, "s.ndjson"))
	if got := strings.TrimSpace(string(data)); got != `{"ok":1}` {
		t.Fatalf("log content = %q", got)
	}
}
