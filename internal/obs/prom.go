package obs

import (
	"fmt"
	"io"
)

// PromWriter emits Prometheus text exposition format (version 0.0.4)
// with a # HELP and # TYPE line for every metric family — the single
// funnel all of kplexd's /metrics output goes through, so no series can
// ship without its metadata.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter returns a writer emitting to w. Write errors are sticky:
// the first one is remembered and returned by Err, and later calls
// become no-ops (a scrape client that went away needs no further work).
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *PromWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Counter emits one counter sample. The name must already carry its
// _total suffix (the exposition format requires the suffix on the family
// name itself for counters in text format).
func (p *PromWriter) Counter(name, help string, v int64) {
	p.header(name, help, "counter")
	p.printf("%s %d\n", name, v)
}

// Gauge emits one gauge sample.
func (p *PromWriter) Gauge(name, help string, v int64) {
	p.header(name, help, "gauge")
	p.printf("%s %d\n", name, v)
}

// Histogram emits one histogram family: cumulative le-buckets, the +Inf
// bucket, _sum and _count.
func (p *PromWriter) Histogram(name, help string, s HistogramSnapshot) {
	p.header(name, help, "histogram")
	var cum int64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		p.printf("%s_bucket{le=\"%g\"} %d\n", name, b, cum)
	}
	p.printf("%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	p.printf("%s_sum %g\n", name, s.Sum)
	p.printf("%s_count %d\n", name, s.Count)
}
