package obs

import (
	"fmt"
	"io"
	"sort"
)

// PromWriter emits Prometheus text exposition format (version 0.0.4)
// with a # HELP and # TYPE line for every metric family — the single
// funnel all of kplexd's /metrics output goes through, so no series can
// ship without its metadata.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter returns a writer emitting to w. Write errors are sticky:
// the first one is remembered and returned by Err, and later calls
// become no-ops (a scrape client that went away needs no further work).
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *PromWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Counter emits one counter sample. The name must already carry its
// _total suffix (the exposition format requires the suffix on the family
// name itself for counters in text format).
func (p *PromWriter) Counter(name, help string, v int64) {
	p.header(name, help, "counter")
	p.printf("%s %d\n", name, v)
}

// Gauge emits one gauge sample.
func (p *PromWriter) Gauge(name, help string, v int64) {
	p.header(name, help, "gauge")
	p.printf("%s %d\n", name, v)
}

// Histogram emits one histogram family: cumulative le-buckets, the +Inf
// bucket, _sum and _count.
func (p *PromWriter) Histogram(name, help string, s HistogramSnapshot) {
	p.header(name, help, "histogram")
	var cum int64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		p.printf("%s_bucket{le=\"%g\"} %d\n", name, b, cum)
	}
	p.printf("%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	p.printf("%s_sum %g\n", name, s.Sum)
	p.printf("%s_count %d\n", name, s.Count)
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// sortedKeys returns m's keys in sorted order so exposition output is
// deterministic (scrape-diff friendly, and the tests rely on it).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CounterVec emits one counter family with a sample per label value,
// sorted by value for deterministic output. An empty map emits nothing —
// a family with no series needs no metadata.
func (p *PromWriter) CounterVec(name, help, label string, samples map[string]int64) {
	if len(samples) == 0 {
		return
	}
	p.header(name, help, "counter")
	for _, k := range sortedKeys(samples) {
		p.printf("%s{%s=\"%s\"} %d\n", name, label, escapeLabelValue(k), samples[k])
	}
}

// GaugeVec emits one gauge family with a sample per label value.
func (p *PromWriter) GaugeVec(name, help, label string, samples map[string]int64) {
	if len(samples) == 0 {
		return
	}
	p.header(name, help, "gauge")
	for _, k := range sortedKeys(samples) {
		p.printf("%s{%s=\"%s\"} %d\n", name, label, escapeLabelValue(k), samples[k])
	}
}

// HistogramVec emits one histogram family with a full bucket series per
// label value.
func (p *PromWriter) HistogramVec(name, help, label string, samples map[string]HistogramSnapshot) {
	if len(samples) == 0 {
		return
	}
	p.header(name, help, "histogram")
	for _, k := range sortedKeys(samples) {
		lv := escapeLabelValue(k)
		s := samples[k]
		var cum int64
		for i, b := range s.Bounds {
			cum += s.Counts[i]
			p.printf("%s_bucket{%s=\"%s\",le=\"%g\"} %d\n", name, label, lv, b, cum)
		}
		p.printf("%s_bucket{%s=\"%s\",le=\"+Inf\"} %d\n", name, label, lv, s.Count)
		p.printf("%s_sum{%s=\"%s\"} %g\n", name, label, lv, s.Sum)
		p.printf("%s_count{%s=\"%s\"} %d\n", name, label, lv, s.Count)
	}
}
