package obs

// Labeled metric families: a counter, gauge-style value, or histogram per
// label value (kplexd uses one label — the tenant). Deliberately minimal:
// a mutex-guarded map materializing series on first touch, so an
// unconfigured single-tenant deployment pays one map lookup per event and
// exposes one series.

import "sync"

// CounterVec is a monotonic counter per label value.
type CounterVec struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounterVec returns an empty CounterVec.
func NewCounterVec() *CounterVec {
	return &CounterVec{m: make(map[string]int64)}
}

// Add increments label's series by d.
func (v *CounterVec) Add(label string, d int64) {
	v.mu.Lock()
	v.m[label] += d
	v.mu.Unlock()
}

// Snapshot returns a copy of every series.
func (v *CounterVec) Snapshot() map[string]int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]int64, len(v.m))
	for k, c := range v.m {
		out[k] = c
	}
	return out
}

// HistogramVec is a Histogram per label value, all sharing one bucket
// layout.
type HistogramVec struct {
	mu     sync.Mutex
	bounds []float64
	m      map[string]*Histogram
}

// NewHistogramVec returns an empty HistogramVec over bounds (see
// NewHistogram).
func NewHistogramVec(bounds []float64) *HistogramVec {
	return &HistogramVec{bounds: bounds, m: make(map[string]*Histogram)}
}

// With returns label's histogram, materializing it on first use.
func (v *HistogramVec) With(label string) *Histogram {
	v.mu.Lock()
	h := v.m[label]
	if h == nil {
		h = NewHistogram(v.bounds)
		v.m[label] = h
	}
	v.mu.Unlock()
	return h
}

// Observe records x in label's series.
func (v *HistogramVec) Observe(label string, x float64) {
	v.With(label).Observe(x)
}

// Snapshot returns a point-in-time snapshot of every series.
func (v *HistogramVec) Snapshot() map[string]HistogramSnapshot {
	v.mu.Lock()
	hs := make(map[string]*Histogram, len(v.m))
	for k, h := range v.m {
		hs[k] = h
	}
	v.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(hs))
	for k, h := range hs {
		out[k] = h.Snapshot()
	}
	return out
}
