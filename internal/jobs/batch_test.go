package jobs

// Batch-job tests: a multi-item spec answered through shared traversals
// must report, per item, exactly what a standalone single-query job (and
// the raw engine) reports for that cell — including across crash/resume
// cycles, where the WAL checkpoints the whole per-seed × per-item
// aggregate vector.

import (
	"fmt"
	"strings"
	"testing"
)

// assertItemMatches compares one batch item's result against the engine
// ground truth for its cell.
func assertItemMatches(t *testing.T, item *ItemResult, ref *Aggregate) {
	t.Helper()
	if item.Count != ref.Count {
		t.Errorf("item k=%d q=%d: count = %d, want %d", item.K, item.Q, item.Count, ref.Count)
	}
	if item.MaxSize != ref.MaxSize {
		t.Errorf("item k=%d q=%d: maxSize = %d, want %d", item.K, item.Q, item.MaxSize, ref.MaxSize)
	}
	if item.PlexDigest != ref.PlexDigest() {
		t.Errorf("item k=%d q=%d: plex digest = %s, want %s (result set differs)",
			item.K, item.Q, item.PlexDigest, ref.PlexDigest())
	}
	for s, c := range ref.Histogram {
		if item.Histogram[s] != c {
			t.Errorf("item k=%d q=%d: histogram[%d] = %d, want %d", item.K, item.Q, s, item.Histogram[s], c)
		}
	}
	if len(item.Histogram) != len(ref.Histogram) {
		t.Errorf("item k=%d q=%d: histogram has %d sizes, want %d", item.K, item.Q, len(item.Histogram), len(ref.Histogram))
	}
	if len(item.TopK) != len(ref.TopK) {
		t.Fatalf("item k=%d q=%d: topk has %d entries, want %d", item.K, item.Q, len(item.TopK), len(ref.TopK))
	}
	for i := range ref.TopK {
		for j := range ref.TopK[i] {
			if item.TopK[i][j] != ref.TopK[i][j] {
				t.Fatalf("item k=%d q=%d: topk[%d] = %v, want %v", item.K, item.Q, i, item.TopK[i], ref.TopK[i])
			}
		}
	}
}

// batchSpecCells is the mixed sweep the batch-job tests run: two q cells
// sharing the k=2 traversal plus a k=3 group of its own.
var batchSpecCells = []SpecItem{
	{K: 2, Q: 6, TopN: 5},
	{K: 2, Q: 8, TopN: 3},
	{K: 3, Q: 8, TopN: 5},
}

func TestBatchJobMatchesReference(t *testing.T) {
	dir := t.TempDir()
	m := openTestManager(t, dir, nil)
	defer m.Close()

	man, err := m.Submit(Spec{Graph: "corpus:planted-a", Items: batchSpecCells, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v := waitDone(t, m, man.ID); v.State != StateDone {
		t.Fatalf("final state = %s (error %q), want done", v.State, v.Error)
	}
	res, err := m.Result(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != len(batchSpecCells) {
		t.Fatalf("result has %d items, want %d", len(res.Items), len(batchSpecCells))
	}
	var sum int64
	for i, it := range batchSpecCells {
		ref := refAggregate(t, "corpus:planted-a", it.K, it.Q, it.TopN)
		assertItemMatches(t, &res.Items[i], ref)
		sum += ref.Count
	}
	if res.Count != sum {
		t.Errorf("top-level count = %d, want the per-item sum %d", res.Count, sum)
	}
}

// TestBatchJobCrashResume crashes a batch job mid-run on every scheduler
// and verifies the reopened manager resumes it to per-item results
// identical to an uninterrupted run — the WAL's per-item aggregate vector
// and the global seed-id mapping survive the round trip.
func TestBatchJobCrashResume(t *testing.T) {
	// planted-overlap yields 45 seeds per traversal group (k=2 at q=6 and
	// k=3 at q=8), 90 in total: crashing after 40 interrupts the first
	// group mid-walk, after 60 the second — so resume is exercised both
	// with a partially-skipped first group and with a fully-done group
	// ahead of the interrupted one.
	for _, crashAfter := range []int{40, 60} {
		for _, sched := range []string{"stages", "global-queue", "steal"} {
			crashAfter, sched := crashAfter, sched
			t.Run(fmt.Sprintf("%s/crash%d", sched, crashAfter), func(t *testing.T) {
				dir := t.TempDir()
				m1 := openTestManager(t, dir, func(c *Config) {
					c.CrashAfterSeeds = crashAfter
					c.CheckpointSeeds = 8
				})
				man, err := m1.Submit(Spec{Graph: "corpus:planted-overlap", Items: batchSpecCells, Threads: 3, Scheduler: sched})
				if err != nil {
					t.Fatal(err)
				}
				waitCrashed(t, m1)
				m1.Close()

				m2 := openTestManager(t, dir, nil)
				defer m2.Close()
				v := waitDone(t, m2, man.ID)
				if v.State != StateDone {
					t.Fatalf("resumed job ended %s (error %q), want done", v.State, v.Error)
				}
				if v.Resumes == 0 {
					t.Error("job reports zero resumes after a crash")
				}
				res, err := m2.Result(man.ID)
				if err != nil {
					t.Fatal(err)
				}
				for i, it := range batchSpecCells {
					ref := refAggregate(t, "corpus:planted-overlap", it.K, it.Q, it.TopN)
					assertItemMatches(t, &res.Items[i], ref)
				}
			})
		}
	}
}

// TestBatchJobSubmitValidation pins the spec-level guard rails.
func TestBatchJobSubmitValidation(t *testing.T) {
	dir := t.TempDir()
	m := openTestManager(t, dir, nil)
	defer m.Close()
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"items-plus-single", Spec{Graph: "corpus:planted-a", K: 2, Q: 6, Items: []SpecItem{{K: 2, Q: 6}}}, "items only"},
		{"bad-item-q", Spec{Graph: "corpus:planted-a", Items: []SpecItem{{K: 2, Q: 2}}}, "Q must be"},
		{"bad-item-topn", Spec{Graph: "corpus:planted-a", Items: []SpecItem{{K: 2, Q: 6, TopN: 100000}}}, "topn"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := m.Submit(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Submit err = %v, want mention of %q", err, tc.want)
			}
		})
	}
	// The happy path still validates: one item is a legal batch.
	man, err := m.Submit(Spec{Graph: "corpus:planted-a", Items: []SpecItem{{K: 2, Q: 6}}})
	if err != nil {
		t.Fatal(err)
	}
	if v := waitDone(t, m, man.ID); v.State != StateDone {
		t.Fatalf("1-item batch ended %s (error %q)", v.State, v.Error)
	}
	res, err := m.Result(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	// A 1-item batch is still a batch: a client that submitted a vector
	// reads a vector back (with the default top-k budget applied), and the
	// top-level summary mirrors the lone item.
	if len(res.Items) != 1 {
		t.Fatalf("1-item batch reported %d result items, want 1", len(res.Items))
	}
	ref := refAggregate(t, "corpus:planted-a", 2, 6, 10)
	assertItemMatches(t, &res.Items[0], ref)
	if res.Items[0].TopN != 10 {
		t.Errorf("item topn = %d, want the default 10", res.Items[0].TopN)
	}
	if res.Count != ref.Count || res.MaxSize != ref.MaxSize {
		t.Errorf("top-level summary %d/%d, want %d/%d", res.Count, res.MaxSize, ref.Count, ref.MaxSize)
	}
}
