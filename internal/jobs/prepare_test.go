package jobs

import (
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/kplex"
)

// TestJobUsesPreparedHook pins the prepared-handle wiring: when the host
// supplies Config.Prepare, the runner resolves its prologue there exactly
// once per incarnation (the seed-space check and the enumeration share the
// handle) and the result is identical to the direct path.
func TestJobUsesPreparedHook(t *testing.T) {
	dir := t.TempDir()
	var prepares atomic.Int64
	m := openTestManager(t, dir, func(c *Config) {
		c.Prepare = func(g graph.CSR, digest string, opts kplex.Options) (*kplex.Prepared, error) {
			if digest == "" {
				t.Error("Prepare hook called without a digest")
			}
			prepares.Add(1)
			return kplex.Prepare(g, opts)
		}
	})
	defer m.Close()

	man, err := m.Submit(Spec{Graph: "corpus:planted-a", K: 2, Q: 6, TopN: 5})
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, m, man.ID)
	if v.State != StateDone {
		t.Fatalf("final state = %s (error %q), want done", v.State, v.Error)
	}
	if got := prepares.Load(); got != 1 {
		t.Fatalf("Prepare hook called %d times, want exactly 1 (shared by seed-space check and enumeration)", got)
	}
	res, err := m.Result(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, res, refAggregate(t, "corpus:planted-a", 2, 6, 5))
}
