package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kplex"
)

// testLoader resolves "corpus:<name>" against the builtin corpus.
func testLoader(name string) (graph.CSR, string, func(), error) {
	cg := gen.CorpusGraphByName(strings.TrimPrefix(name, "corpus:"))
	if cg == nil {
		return nil, "", nil, fmt.Errorf("unknown graph %q", name)
	}
	g := cg.Build()
	return g, graph.DigestHex(g), func() {}, nil
}

// refAggregate computes the uninterrupted ground truth for a (graph, k, q,
// topn) cell through the same Aggregate arithmetic the job layer uses.
func refAggregate(t *testing.T, graphName string, k, q, topn int) *Aggregate {
	t.Helper()
	g, _, release, err := testLoader(graphName)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	agg := NewAggregate(topn)
	opts := kplex.NewOptions(k, q)
	opts.OnPlex = func(p []int) { agg.AddPlex(p) }
	res, err := kplex.Run(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	agg.Stats = res.Stats
	return agg
}

func assertMatchesReference(t *testing.T, res *Result, ref *Aggregate) {
	t.Helper()
	if res.Count != ref.Count {
		t.Errorf("count = %d, want %d", res.Count, ref.Count)
	}
	if res.MaxSize != ref.MaxSize {
		t.Errorf("maxSize = %d, want %d", res.MaxSize, ref.MaxSize)
	}
	if res.PlexDigest != ref.PlexDigest() {
		t.Errorf("plex digest = %s, want %s (result set differs)", res.PlexDigest, ref.PlexDigest())
	}
	if len(res.Histogram) != len(ref.Histogram) {
		t.Errorf("histogram has %d sizes, want %d", len(res.Histogram), len(ref.Histogram))
	}
	for s, c := range ref.Histogram {
		if res.Histogram[s] != c {
			t.Errorf("histogram[%d] = %d, want %d", s, res.Histogram[s], c)
		}
	}
	if len(res.TopK) != len(ref.TopK) {
		t.Fatalf("topk has %d entries, want %d", len(res.TopK), len(ref.TopK))
	}
	for i := range ref.TopK {
		if len(res.TopK[i]) != len(ref.TopK[i]) {
			t.Fatalf("topk[%d] has size %d, want %d", i, len(res.TopK[i]), len(ref.TopK[i]))
		}
		for j := range ref.TopK[i] {
			if res.TopK[i][j] != ref.TopK[i][j] {
				t.Fatalf("topk[%d] = %v, want %v", i, res.TopK[i], ref.TopK[i])
			}
		}
	}
	if res.Stats.Emitted != ref.Count {
		t.Errorf("stats.Emitted = %d, want %d", res.Stats.Emitted, ref.Count)
	}
}

func openTestManager(t *testing.T, dir string, mutate func(*Config)) *Manager {
	t.Helper()
	cfg := Config{
		Dir:             dir,
		Load:            testLoader,
		Workers:         1,
		CheckpointSeeds: 4,
		// The corpus graphs enumerate in milliseconds; disable the fsync
		// rate limit so the seed-count trigger fires deterministically.
		MinCheckpointGap: -1,
		DefaultThreads:   2,
		Logf:             t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func waitDone(t *testing.T, m *Manager, id string) *View {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	v, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatalf("waiting for %s: %v", id, err)
	}
	return v
}

func TestJobLifecycle(t *testing.T) {
	dir := t.TempDir()
	m := openTestManager(t, dir, nil)
	defer m.Close()

	man, err := m.Submit(Spec{Graph: "corpus:planted-a", K: 2, Q: 6, TopN: 5})
	if err != nil {
		t.Fatal(err)
	}
	if man.State != StateQueued {
		t.Fatalf("state after submit = %s, want queued", man.State)
	}
	v := waitDone(t, m, man.ID)
	if v.State != StateDone {
		t.Fatalf("final state = %s (error %q), want done", v.State, v.Error)
	}
	if v.SeedsDone != v.TotalSeeds || v.TotalSeeds == 0 {
		t.Fatalf("seedsDone = %d / %d, want all", v.SeedsDone, v.TotalSeeds)
	}
	res, err := m.Result(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, res, refAggregate(t, "corpus:planted-a", 2, 6, 5))

	// The job survives a reopen as a terminal listing with its result.
	m.Close()
	m2 := openTestManager(t, dir, nil)
	defer m2.Close()
	res2, err := m2.Result(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Count != res.Count || res2.PlexDigest != res.PlexDigest {
		t.Fatal("result changed across reopen")
	}
}

func TestSubmitValidation(t *testing.T) {
	m := openTestManager(t, t.TempDir(), nil)
	defer m.Close()
	for _, spec := range []Spec{
		{K: 2, Q: 6},                           // no graph
		{Graph: "g", K: 0, Q: 6},               // bad k
		{Graph: "g", K: 2, Q: 2},               // q < 2k-1
		{Graph: "g", K: 2, Q: 6, TopN: -1},     // bad topn
		{Graph: "g", K: 2, Q: 6, TopN: 100000}, // topn over cap
		{Graph: "g", K: 2, Q: 6, Scheduler: "lifo"},
	} {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("Submit(%+v) accepted", spec)
		}
	}
	if _, err := m.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(unknown) = %v, want ErrNotFound", err)
	}
	if err := m.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel(unknown) = %v, want ErrNotFound", err)
	}
}

// waitCrashed polls until the manager has parked the crashed incarnation:
// at least one checkpoint written and nothing running.
func waitCrashed(t *testing.T, m *Manager) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		c := m.Counters()
		if c.Checkpoints.Load() >= 1 && c.Running.Load() == 0 && c.Queued.Load() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never reached the crash failpoint")
}

// TestCrashResume is the acceptance test: kill a job mid-run after M
// seeds, reopen the manager over the same directory, and require the
// resumed result to be identical (count, top-k, histogram, order-
// independent plex-set digest) to an uninterrupted run — for every
// scheduler.
func TestCrashResume(t *testing.T) {
	const graphName, k, q, topn = "corpus:planted-overlap", 2, 6, 7
	ref := refAggregate(t, graphName, k, q, topn)

	for _, sched := range []string{"stages", "global-queue", "steal"} {
		t.Run(sched, func(t *testing.T) {
			dir := t.TempDir()

			// Incarnation 1: crash after 6 completed seed groups.
			m1 := openTestManager(t, dir, func(c *Config) {
				c.CrashAfterSeeds = 6
				c.CheckpointSeeds = 2
			})
			man, err := m1.Submit(Spec{Graph: graphName, K: k, Q: q, TopN: topn, Scheduler: sched, Threads: 3})
			if err != nil {
				t.Fatal(err)
			}
			waitCrashed(t, m1)
			m1.Close()

			// The directory must show an interrupted, checkpointed job.
			onDisk, err := readManifest(filepath.Join(dir, man.ID))
			if err != nil {
				t.Fatal(err)
			}
			if onDisk.State != StateCheckpointed {
				t.Fatalf("state on disk after crash = %s, want checkpointed", onDisk.State)
			}
			if onDisk.SeedsDone == 0 || onDisk.SeedsDone >= onDisk.TotalSeeds {
				t.Fatalf("crash left %d/%d seeds done; the failpoint must interrupt mid-run", onDisk.SeedsDone, onDisk.TotalSeeds)
			}

			// Incarnation 2: recover and run to completion.
			m2 := openTestManager(t, dir, nil)
			defer m2.Close()
			if got := m2.Counters().Resumed.Load(); got != 1 {
				t.Fatalf("resumed counter = %d, want 1", got)
			}
			v := waitDone(t, m2, man.ID)
			if v.State != StateDone {
				t.Fatalf("resumed job ended %s (error %q), want done", v.State, v.Error)
			}
			if v.Resumes != 1 {
				t.Errorf("manifest resumes = %d, want 1", v.Resumes)
			}
			res, err := m2.Result(man.ID)
			if err != nil {
				t.Fatal(err)
			}
			if res.Resumes != 1 {
				t.Errorf("result resumes = %d, want 1", res.Resumes)
			}
			assertMatchesReference(t, res, ref)
		})
	}
}

// TestShutdownResume interrupts a job with a graceful manager Close (the
// deploy case, not the crash case): the manager flushes a final
// checkpoint, the on-disk state stays non-terminal, and a reopened
// manager must finish the job with results identical to an uninterrupted
// run. This also covers two review-found hazards: seed groups truncated by
// the shutdown cancellation must not be committed as complete, and a
// manager that recovers a job but dies again before re-running it (here:
// while it is parked behind admission) must not lose the checkpoints.
func TestShutdownResume(t *testing.T) {
	const graphName, k, q, topn = "corpus:planted-overlap", 2, 6, 7
	ref := refAggregate(t, graphName, k, q, topn)
	dir := t.TempDir()

	// Incarnation 1: close the manager mid-run.
	started := make(chan struct{}, 8)
	m1 := openTestManager(t, dir, func(c *Config) {
		c.CheckpointSeeds = 2
		load := c.Load
		c.Load = func(name string) (graph.CSR, string, func(), error) {
			select {
			case started <- struct{}{}:
			default:
			}
			return load(name)
		}
	})
	man, err := m1.Submit(Spec{Graph: graphName, K: k, Q: q, TopN: topn, Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	m1.Close()

	onDisk, err := readManifest(filepath.Join(dir, man.ID))
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State.terminal() {
		t.Skipf("job finished before the shutdown landed (state %s); nothing to resume", onDisk.State)
	}

	// Incarnation 2: recover, but die again before the rerun gets past
	// admission. The on-disk state must still be resumable afterwards.
	gate := make(chan struct{})
	m2 := openTestManager(t, dir, func(c *Config) {
		c.Admit = func(ctx context.Context, _ string) (func(), error) {
			select {
			case <-gate:
				return func() {}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	})
	if got := m2.Counters().Resumed.Load(); got != 1 {
		t.Fatalf("incarnation 2 resumed counter = %d, want 1", got)
	}
	time.Sleep(20 * time.Millisecond) // let the worker park in Admit
	m2.Close()
	close(gate)

	// Incarnation 3: run to completion and compare.
	m3 := openTestManager(t, dir, nil)
	defer m3.Close()
	v := waitDone(t, m3, man.ID)
	if v.State != StateDone {
		t.Fatalf("resumed job ended %s (%q), want done", v.State, v.Error)
	}
	res, err := m3.Result(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, res, ref)
}

// TestTornWALTail corrupts the log's tail after a crash; recovery must
// fall back to the last intact checkpoint and still converge to the
// reference result.
func TestTornWALTail(t *testing.T) {
	const graphName, k, q, topn = "corpus:sbm-blocks", 2, 6, 5
	dir := t.TempDir()

	m1 := openTestManager(t, dir, func(c *Config) {
		c.CrashAfterSeeds = 6
		c.CheckpointSeeds = 2
	})
	man, err := m1.Submit(Spec{Graph: graphName, K: k, Q: q, TopN: topn, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitCrashed(t, m1)
	m1.Close()

	walPath := filepath.Join(dir, man.ID, walName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef {\"seq\":999,\"tor"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2 := openTestManager(t, dir, nil)
	defer m2.Close()
	v := waitDone(t, m2, man.ID)
	if v.State != StateDone {
		t.Fatalf("job ended %s (error %q), want done", v.State, v.Error)
	}
	res, err := m2.Result(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, res, refAggregate(t, graphName, k, q, topn))

	// The torn tail must have been cut before the resumed incarnation
	// appended, so a full replay now reads every record — including the
	// post-resume ones — and covers the whole seed space.
	rep, err := replayWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if rep.truncated {
		t.Fatal("resumed WAL still has a corrupt line; the tail was not truncated before appending")
	}
	if len(rep.doneSeeds) != v.TotalSeeds {
		t.Fatalf("final WAL replay covers %d of %d seeds", len(rep.doneSeeds), v.TotalSeeds)
	}
}

func TestCancelQueuedAndDelete(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	m := openTestManager(t, dir, func(c *Config) {
		c.Admit = func(ctx context.Context, _ string) (func(), error) {
			select {
			case <-gate:
				return func() {}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	})
	defer m.Close()

	running, err := m.Submit(Spec{Graph: "corpus:planted-a", K: 2, Q: 6})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(Spec{Graph: "corpus:planted-a", K: 2, Q: 8})
	if err != nil {
		t.Fatal(err)
	}

	// The second job sits in the queue behind the single admission-gated
	// worker; cancelling it must not need the worker at all.
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get(queued.ID); v.State != StateCancelled {
		t.Fatalf("queued job state = %s, want cancelled", v.State)
	}

	// Cancel the admission-blocked job too, then let the gate go.
	if err := m.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, m, running.ID)
	if v.State != StateCancelled {
		t.Fatalf("running job state = %s, want cancelled", v.State)
	}

	// Delete works on terminal jobs only, and removes the directory.
	if err := m.Delete(queued.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, queued.ID)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("job directory survived Delete")
	}
	if _, err := m.Get(queued.ID); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted job still listed")
	}
}

func TestPriorityOrdering(t *testing.T) {
	gate := make(chan struct{})
	parked := make(chan struct{}, 3)
	m := openTestManager(t, t.TempDir(), func(c *Config) {
		c.Admit = func(ctx context.Context, _ string) (func(), error) {
			parked <- struct{}{}
			select {
			case <-gate:
				return func() {}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	})
	defer m.Close()

	blocker, err := m.Submit(Spec{Graph: "corpus:planted-a", K: 2, Q: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick the blocker up (it is the only queued
	// job) before submitting the contenders: otherwise a slow worker
	// wakeup can leave the higher-priority of the two parked in admission
	// while the other is still unsubmitted, inverting the start order the
	// test asserts.
	<-parked
	low, err := m.Submit(Spec{Graph: "corpus:planted-a", K: 2, Q: 7, Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	high, err := m.Submit(Spec{Graph: "corpus:planted-a", K: 2, Q: 8, Priority: 9})
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	for _, id := range []string{blocker.ID, low.ID, high.ID} {
		if v := waitDone(t, m, id); v.State != StateDone {
			t.Fatalf("%s ended %s", id, v.State)
		}
	}
	vLow, _ := m.Get(low.ID)
	vHigh, _ := m.Get(high.ID)
	if !vHigh.StartedAt.Before(vLow.StartedAt) {
		t.Fatalf("priority 9 started %v, after priority 1 at %v", vHigh.StartedAt, vLow.StartedAt)
	}
}

func TestDigestMismatchFailsResume(t *testing.T) {
	dir := t.TempDir()
	which := "corpus:planted-a"
	loader := func(name string) (graph.CSR, string, func(), error) {
		return testLoader(which)
	}
	m1 := openTestManager(t, dir, func(c *Config) {
		c.Load = loader
		c.CrashAfterSeeds = 3
		c.CheckpointSeeds = 1
	})
	man, err := m1.Submit(Spec{Graph: "g", K: 2, Q: 6})
	if err != nil {
		t.Fatal(err)
	}
	waitCrashed(t, m1)
	m1.Close()

	// The "file" now has different content: resuming must refuse rather
	// than merge checkpoints from a different graph.
	which = "corpus:sbm-blocks"
	m2 := openTestManager(t, dir, func(c *Config) { c.Load = loader })
	defer m2.Close()
	v := waitDone(t, m2, man.ID)
	if v.State != StateFailed || !strings.Contains(v.Error, "content changed") {
		t.Fatalf("resume against changed graph ended %s (%q), want failed with digest mismatch", v.State, v.Error)
	}
}

func TestSubscribeSeesTerminalState(t *testing.T) {
	m := openTestManager(t, t.TempDir(), nil)
	defer m.Close()
	man, err := m.Submit(Spec{Graph: "corpus:planted-a", K: 2, Q: 6})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, man.ID)
	// Subscribing after completion must yield the terminal snapshot and a
	// closed channel, not a hang.
	ch, stop, err := m.Subscribe(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	first, ok := <-ch
	if !ok || first.State != StateDone {
		t.Fatalf("first update = %+v (open=%v), want done", first, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after terminal state")
	}
}
