package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"repro/internal/kplex"
)

// Aggregate is the mergeable summary of (part of) an enumeration: the plex
// count, the size histogram, a bounded list of the largest plexes, an
// order-independent digest of the plex set, and the accrued search
// counters. Merging is associative and commutative over disjoint plex
// sets, which is what lets the job layer commit per-seed contributions in
// whatever order the schedulers complete them and still converge to the
// result of an uninterrupted run.
type Aggregate struct {
	Count     int64         `json:"count"`
	MaxSize   int           `json:"maxSize"`
	TopN      int           `json:"topn"`
	TopK      [][]int       `json:"topk,omitempty"` // size desc, then lex asc; len <= TopN
	Histogram map[int]int64 `json:"hist,omitempty"`
	// PlexXor is the hex form of xor. Maintained by seal()/unseal() around
	// serialization; runtime updates go through xor directly.
	PlexXor string      `json:"plexXor,omitempty"`
	Stats   kplex.Stats `json:"stats"`

	xor [sha256.Size]byte
}

// NewAggregate returns an empty aggregate keeping the topN largest plexes.
// The histogram map is allocated lazily: the job layer creates one
// aggregate per seed group, and most groups contribute few (often zero)
// plexes.
func NewAggregate(topN int) *Aggregate {
	return &Aggregate{TopN: topN}
}

// plexLine renders p in the canonical "v1 v2 ...\n" form shared with the
// golden-corpus hashing, so digests are comparable across tooling.
func plexLine(p []int) []byte {
	line := make([]byte, 0, 8*len(p))
	for i, v := range p {
		if i > 0 {
			line = append(line, ' ')
		}
		line = strconv.AppendInt(line, int64(v), 10)
	}
	return append(line, '\n')
}

// AddPlex folds one maximal k-plex into the aggregate. The slice is copied
// if retained, so callers may reuse it (the OnPlexSeed contract).
func (a *Aggregate) AddPlex(p []int) {
	a.Count++
	n := len(p)
	if n > a.MaxSize {
		a.MaxSize = n
	}
	if a.Histogram == nil {
		a.Histogram = make(map[int]int64)
	}
	a.Histogram[n]++
	h := sha256.Sum256(plexLine(p))
	for i := range a.xor {
		a.xor[i] ^= h[i]
	}
	if a.TopN > 0 {
		a.insertTopK(p, false)
	}
}

// plexBefore orders plexes size-descending, then lexicographically
// ascending — the order EnumerateTopK reports and ties never recur in
// (each maximal plex is enumerated exactly once).
func plexBefore(x, y []int) bool {
	if len(x) != len(y) {
		return len(x) > len(y)
	}
	for i := range x {
		if x[i] != y[i] {
			return x[i] < y[i]
		}
	}
	return false
}

// insertTopK places p into the bounded sorted TopK list. owned marks a
// slice the aggregate may keep without copying (merge paths).
func (a *Aggregate) insertTopK(p []int, owned bool) {
	if len(a.TopK) == a.TopN && !plexBefore(p, a.TopK[a.TopN-1]) {
		return
	}
	// Binary search for the insertion point.
	lo, hi := 0, len(a.TopK)
	for lo < hi {
		mid := (lo + hi) / 2
		if plexBefore(a.TopK[mid], p) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if !owned {
		p = append([]int(nil), p...)
	}
	if len(a.TopK) < a.TopN {
		a.TopK = append(a.TopK, nil)
	}
	copy(a.TopK[lo+1:], a.TopK[lo:])
	a.TopK[lo] = p
}

// Merge folds b into a. The two must summarise disjoint plex sets.
func (a *Aggregate) Merge(b *Aggregate) {
	a.Count += b.Count
	if b.MaxSize > a.MaxSize {
		a.MaxSize = b.MaxSize
	}
	if a.Histogram == nil && len(b.Histogram) > 0 {
		a.Histogram = make(map[int]int64, len(b.Histogram))
	}
	for s, c := range b.Histogram {
		a.Histogram[s] += c
	}
	for i := range a.xor {
		a.xor[i] ^= b.xor[i]
	}
	for _, p := range b.TopK {
		a.insertTopK(p, true)
	}
	a.Stats.Add(b.Stats)
}

// seal syncs the serialized digest field from the runtime state; call
// before marshalling.
func (a *Aggregate) seal() {
	a.PlexXor = hex.EncodeToString(a.xor[:])
}

// Seal syncs the serialized digest field from the runtime state, making
// the aggregate safe to marshal. It exists for other packages that ship
// aggregates across process boundaries (the cluster layer's per-range
// snapshots); the WAL seals internally.
func (a *Aggregate) Seal() { a.seal() }

// Unseal restores the runtime digest from the serialized field after
// unmarshalling an aggregate received from another process.
func (a *Aggregate) Unseal() error { return a.unseal() }

// Snapshot returns a sealed deep copy safe to marshal while the original
// keeps mutating.
func (a *Aggregate) Snapshot() *Aggregate { return a.snapshot() }

// unseal restores the runtime digest from the serialized field; call after
// unmarshalling.
func (a *Aggregate) unseal() error {
	if a.PlexXor == "" {
		a.xor = [sha256.Size]byte{}
		return nil
	}
	raw, err := hex.DecodeString(a.PlexXor)
	if err != nil || len(raw) != sha256.Size {
		return fmt.Errorf("jobs: corrupt plex digest %q", a.PlexXor)
	}
	copy(a.xor[:], raw)
	return nil
}

// snapshot returns a sealed deep copy safe to hand to the WAL encoder
// while the original keeps mutating.
func (a *Aggregate) snapshot() *Aggregate {
	cp := &Aggregate{
		Count:   a.Count,
		MaxSize: a.MaxSize,
		TopN:    a.TopN,
		Stats:   a.Stats,
		xor:     a.xor,
	}
	if len(a.TopK) > 0 {
		cp.TopK = make([][]int, len(a.TopK))
		for i, p := range a.TopK {
			cp.TopK[i] = append([]int(nil), p...)
		}
	}
	if len(a.Histogram) > 0 {
		cp.Histogram = make(map[int]int64, len(a.Histogram))
		for s, c := range a.Histogram {
			cp.Histogram[s] = c
		}
	}
	cp.seal()
	return cp
}

// PlexDigest returns the hex order-independent digest of the summarised
// plex set: the XOR of the SHA-256 of each plex's canonical line. Two
// aggregates over the same plex set compare equal regardless of the order
// (or partition) the plexes were added in.
func (a *Aggregate) PlexDigest() string {
	return hex.EncodeToString(a.xor[:])
}
