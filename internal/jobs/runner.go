package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/kplex"
	"repro/internal/obs"
)

// jobRun is the volatile state of one incarnation of a running job. A job
// is a vector of query items answered by one or more shared seed-space
// traversals (see Spec.queries); seed ids are global across the
// traversal groups — group g's local seed s is offsets[g] + s — which is
// what lets one WAL checkpoint the whole per-seed × per-item progress.
type jobRun struct {
	m   *Manager
	j   *job
	wal *wal

	items   []SpecItem
	groups  []kplex.BatchGroup
	offsets []int // group index -> global seed-id offset

	// buffers[seed] accumulates the seed group's contributions until
	// OnSeedDone commits them; indexed by global seed id, so the per-plex
	// hot path is a slice access plus one cold per-seed mutex.
	buffers []seedBuffer

	mu           sync.Mutex
	aggs         []*Aggregate // cumulative per item (incl. resumed); aggs[0].Stats carries the walk counters
	pendingSeeds []int        // committed in memory, not yet in the WAL (global ids)
	seedsDone    int          // committed seeds, incl. resumed ones
	doneThisRun  int
	lastCkpt     time.Time
	lastPublish  time.Time
	started      time.Time
	baseEnumMS   float64 // enumeration time of previous incarnations
	crashed      bool

	trace  *obs.Trace // this incarnation's trace (nil when untraced)
	cancel context.CancelCauseFunc
}

// seedBuffer holds one seed group's uncommitted contributions: one
// aggregate per member of the owning traversal group (positionally
// aligned with that group's Members), allocated lazily — most seed groups
// contribute nothing.
type seedBuffer struct {
	mu   sync.Mutex
	aggs []*Aggregate
}

// plexesLocked sums the committed plex deliveries across items; caller
// holds r.mu. For a single-query job this is exactly the plex count.
func (r *jobRun) plexesLocked() int64 {
	var n int64
	for _, a := range r.aggs {
		n += a.Count
	}
	return n
}

// groupOf locates the traversal group owning a global seed id.
func (r *jobRun) groupOf(seed int) int {
	gi := len(r.offsets) - 1
	for gi > 0 && r.offsets[gi] > seed {
		gi--
	}
	return gi
}

// runJob executes one incarnation of j: load the graph, wire the seed
// hooks, enumerate with the resumed seeds skipped, checkpointing along the
// way, and land in a terminal state — unless the incarnation is
// interrupted (shutdown or the crash failpoint), in which case the durable
// state is left for the next Open to resume.
func (m *Manager) runJob(j *job) {
	// Register the cancel hook before ANY work, in the same critical
	// section that re-checks the state. From here on Manager.Cancel always
	// goes through the context — it can never take the "still queued"
	// branch and mark a job terminal while this worker keeps running it
	// (which would let a Delete remove the directory under the active run).
	runCtx, cancel := context.WithCancelCause(m.ctx)
	defer cancel(nil)
	j.mu.Lock()
	if j.man.State != StateQueued {
		// Cancelled while it sat in the queue.
		j.mu.Unlock()
		return
	}
	j.cancel = cancel
	j.mu.Unlock()

	err := m.runJobInner(j, runCtx, cancel)

	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = nil
	switch {
	case err == nil:
		m.finishLocked(j, StateDone, nil)
	case errors.Is(err, errCrashpoint):
		// Simulated process death: leave the durable state exactly as a
		// crash would. The in-memory job is parked (not re-queued): a real
		// crash takes the process with it, and tests reopen the directory
		// with a fresh manager to exercise recovery.
		m.cfg.Logf("jobs: %s: crash failpoint hit", j.man.ID)
	case errors.Is(err, errShutdown):
		// Manager closing: the final checkpoint was flushed; recovery
		// resumes this job on the next Open.
	case errors.Is(err, errCancelled):
		m.finishLocked(j, StateCancelled, nil)
	default:
		m.finishLocked(j, StateFailed, err)
	}
}

func (m *Manager) runJobInner(j *job, runCtx context.Context, cancel context.CancelCauseFunc) error {
	j.mu.Lock()
	spec := j.man.Spec
	resume := j.resume
	j.resume = nil
	// Pin the trace id with the manifest so a resumed incarnation extends
	// the same trace; it is persisted with the StateRunning write below.
	if j.man.TraceID == "" && m.cfg.Tracer != nil {
		j.man.TraceID = obs.NewTraceID()
	}
	t := m.cfg.Tracer.StartWithID(j.man.TraceID, "job "+j.man.ID)
	j.mu.Unlock()
	defer t.Finish()

	items, groups, err := spec.queries(m.cfg.DefaultThreads)
	if err != nil {
		return err
	}

	prepSpan := t.StartSpan("prepare").Attr("graph", spec.Graph)
	g, digest, release, err := m.cfg.Load(spec.Graph)
	if err != nil {
		prepSpan.EndErr(err)
		return fmt.Errorf("loading graph %q: %w", spec.Graph, err)
	}
	defer release()

	// One prepared prologue per traversal group serves both the seed-space
	// identity check and the enumeration itself; hosts with a prepared
	// cache (kplexd) resolve it there, so resumed incarnations skip the
	// prologues entirely. Group offsets define the job's global seed-id
	// space: group g's local seed s is offsets[g] + s.
	prepared := make([]*kplex.Prepared, len(groups))
	offsets := make([]int, len(groups))
	totalSeeds := 0
	for gi := range groups {
		p, err := m.prepared(g, digest, groups[gi].Cell)
		if err != nil {
			prepSpan.EndErr(err)
			return err
		}
		prepared[gi] = p
		offsets[gi] = totalSeeds
		totalSeeds += p.SeedSpace()
	}
	prepSpan.Attr("seeds", fmt.Sprint(totalSeeds)).End()

	// Pin (or verify) the identity of the decomposition the checkpoints
	// refer to. A changed graph file or seed space makes every persisted
	// seed id meaningless, so resuming would silently corrupt the result.
	j.mu.Lock()
	switch {
	case j.man.Digest == "":
		j.man.Digest = digest
		j.man.TotalSeeds = totalSeeds
	case j.man.Digest != digest:
		j.mu.Unlock()
		return fmt.Errorf("graph %q content changed since the job was checkpointed (digest %s, was %s); delete and resubmit", spec.Graph, digest[:12], j.man.Digest[:12])
	case j.man.TotalSeeds != totalSeeds:
		j.mu.Unlock()
		return fmt.Errorf("seed space changed since the job was checkpointed (%d, was %d); delete and resubmit", totalSeeds, j.man.TotalSeeds)
	}
	j.mu.Unlock()

	// Share the host's enumeration capacity with interactive queries.
	if m.cfg.Admit != nil {
		admitSpan := t.StartSpan("admission")
		releaseSlot, err := m.cfg.Admit(runCtx, spec.Tenant)
		admitSpan.EndErr(err)
		if err != nil {
			return m.interruptCause(runCtx, err)
		}
		defer releaseSlot()
	}

	r := &jobRun{
		m:       m,
		j:       j,
		items:   items,
		groups:  groups,
		offsets: offsets,
		buffers: make([]seedBuffer, totalSeeds),
		aggs:    make([]*Aggregate, len(items)),
		started: time.Now(),
		trace:   t,
		cancel:  cancel,
	}
	for i, it := range items {
		r.aggs[i] = NewAggregate(it.TopN)
	}
	r.lastCkpt = r.started

	// Rebuild the durable state of previous incarnations. The global skip
	// set localises into one per-group set, since each group's engine run
	// speaks its own seed-id space.
	skips := make([]*kplex.SeedSet, len(groups))
	if resume != nil && len(resume.doneSeeds) > 0 {
		for _, s := range resume.doneSeeds {
			if s >= totalSeeds {
				return fmt.Errorf("checkpoint names seed %d outside the %d-seed space; delete and resubmit", s, totalSeeds)
			}
			gi := r.groupOf(s)
			if skips[gi] == nil {
				skips[gi] = &kplex.SeedSet{}
			}
			skips[gi].Add(s - offsets[gi])
		}
		if len(resume.aggs) != len(items) {
			return fmt.Errorf("checkpoint holds %d item aggregates but the spec has %d items; delete and resubmit", len(resume.aggs), len(items))
		}
		r.aggs = resume.aggs
		for i := range r.aggs {
			r.aggs[i].TopN = items[i].TopN
		}
		r.seedsDone = len(resume.doneSeeds)
		r.baseEnumMS = resume.enumMS
	}
	lastSeq := 0
	if resume != nil {
		lastSeq = resume.lastSeq
	}
	r.wal, err = openWAL(filepath.Join(j.dir, walName), lastSeq)
	if err != nil {
		return err
	}
	r.wal.onSync = m.cfg.ObserveFsync
	defer r.wal.Close()

	j.mu.Lock()
	j.man.State = StateRunning
	if resume != nil && r.seedsDone > 0 {
		j.man.State = StateCheckpointed // durable progress exists already
	}
	if j.man.StartedAt.IsZero() {
		j.man.StartedAt = time.Now()
	}
	j.progress = Progress{
		State:      j.man.State,
		SeedsDone:  r.seedsDone,
		TotalSeeds: totalSeeds,
		Plexes:     r.plexesLocked(),
	}
	if err := writeManifest(j.dir, &j.man); err != nil {
		m.cfg.Logf("jobs: %s: %v", j.man.ID, err)
	}
	j.publishLocked()
	j.mu.Unlock()

	// Interval flusher: a job whose seeds complete slowly must still
	// checkpoint every CheckpointInterval.
	flusherDone := make(chan struct{})
	go func() {
		defer close(flusherDone)
		t := time.NewTicker(m.cfg.CheckpointInterval)
		defer t.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-t.C:
				r.mu.Lock()
				if len(r.pendingSeeds) > 0 && time.Since(r.lastCkpt) >= m.cfg.CheckpointInterval {
					r.flushLocked()
				}
				r.mu.Unlock()
			}
		}
	}()

	// Walk the traversal groups one after another; each walk fans its
	// plexes out to the group's members and reports per-seed completion in
	// the global id space.
	var runErr error
	enumSpan := t.StartSpan("enumerate").Attr("groups", fmt.Sprint(len(groups)))
	for gi := range groups {
		opts := groups[gi].Cell
		opts.SkipSeeds = skips[gi]
		gi := gi
		opts.OnPlexSeed = func(seed int, plex []int) { r.onPlex(gi, seed, plex) }
		opts.OnSeedDone = func(seed int, partial kplex.Stats) { r.onSeedDone(gi, seed, partial) }
		if _, runErr = kplex.RunPrepared(runCtx, prepared[gi], opts); runErr != nil {
			break
		}
	}
	enumSpan.EndErr(runErr)
	cancel(nil)
	<-flusherDone

	// Flush whatever completed, whether we finished or were cancelled — a
	// graceful shutdown should cost zero completed seeds. The crash
	// failpoint deliberately skips this so recovery is exercised against
	// lost (completed but never flushed) seed groups, like a real crash.
	r.mu.Lock()
	crashed := r.crashed
	if !crashed {
		r.flushLocked()
	}
	r.mu.Unlock()

	if runErr != nil || crashed {
		return m.interruptCause(runCtx, runErr)
	}

	// Sanity: every seed must have reported (completed groups + resumed).
	if r.seedsDone != totalSeeds {
		return fmt.Errorf("internal accounting error: %d of %d seeds reported done", r.seedsDone, totalSeeds)
	}

	// Feed the host's cost calibrator one clean (features, runtime) pair.
	// Only fresh single-traversal runs qualify: a resumed incarnation's
	// elapsed covers part of the work, and a multi-group batch's elapsed
	// spans several feature vectors.
	if m.cfg.ObserveCost != nil && len(prepared) == 1 && r.baseEnumMS == 0 {
		m.cfg.ObserveCost(prepared[0].CostFeatures(), time.Since(r.started))
	}

	elapsedMS := r.baseEnumMS + float64(time.Since(r.started))/float64(time.Millisecond)

	j.mu.Lock()
	resumes := j.man.Resumes
	j.man.EnumMS = elapsedMS
	// The terminal publish in finishLocked sends j.progress; make it carry
	// the final numbers, not the last throttled snapshot.
	j.progress = Progress{
		State:       StateRunning, // finishLocked sets the terminal state
		SeedsDone:   r.seedsDone,
		TotalSeeds:  totalSeeds,
		Checkpoints: int64(r.wal.seq),
		Plexes:      r.plexesLocked(),
		ElapsedMS:   float64(time.Since(r.started)) / float64(time.Millisecond),
	}
	j.mu.Unlock()

	final := Result{
		Stats:     r.aggs[0].Stats,
		ElapsedMS: elapsedMS,
		Resumes:   resumes,
	}
	if len(spec.Items) == 0 {
		// A single-query spec keeps the original result shape. A batch spec
		// fills Items even when it holds one item — clients that submitted
		// a vector read a vector back.
		a := r.aggs[0]
		final.Count = a.Count
		final.MaxSize = a.MaxSize
		final.TopK = a.TopK
		final.Histogram = a.Histogram
		final.PlexDigest = a.PlexDigest()
	} else {
		for i, a := range r.aggs {
			item := ItemResult{
				K:          items[i].K,
				Q:          items[i].Q,
				TopN:       items[i].TopN,
				Count:      a.Count,
				MaxSize:    a.MaxSize,
				TopK:       a.TopK,
				Histogram:  a.Histogram,
				PlexDigest: a.PlexDigest(),
			}
			if item.TopK == nil {
				item.TopK = [][]int{}
			}
			if item.Histogram == nil {
				item.Histogram = map[int]int64{}
			}
			final.Items = append(final.Items, item)
			final.Count += a.Count
			if a.MaxSize > final.MaxSize {
				final.MaxSize = a.MaxSize
			}
		}
	}
	if final.TopK == nil {
		final.TopK = [][]int{}
	}
	if final.Histogram == nil {
		final.Histogram = map[int]int64{}
	}
	return writeResult(j.dir, &final)
}

// prepared resolves the run prologue through the host's cache when one is
// wired, falling back to a direct Prepare.
func (m *Manager) prepared(g graph.CSR, digest string, opts kplex.Options) (*kplex.Prepared, error) {
	if m.cfg.Prepare != nil {
		return m.cfg.Prepare(g, digest, opts)
	}
	return kplex.Prepare(g, opts)
}

// interruptCause classifies why an incarnation stopped early, preferring
// the recorded cancel cause (crash failpoint, explicit cancel) over the
// generic context error.
func (m *Manager) interruptCause(ctx context.Context, fallback error) error {
	cause := context.Cause(ctx)
	switch {
	case errors.Is(cause, errCrashpoint) || errors.Is(cause, errCancelled):
		return cause
	case m.ctx.Err() != nil:
		return errShutdown
	case fallback != nil:
		return fallback
	default:
		return cause
	}
}

// onPlex buffers one plex into its seed group's pending aggregates: one
// per member of the owning traversal group whose size threshold the plex
// meets (the walk runs at the group's loosest q, so stricter members see
// a filtered view).
func (r *jobRun) onPlex(gi, seed int, plex []int) {
	members := r.groups[gi].Members
	buf := &r.buffers[r.offsets[gi]+seed]
	buf.mu.Lock()
	if buf.aggs == nil {
		buf.aggs = make([]*Aggregate, len(members))
	}
	for pos, item := range members {
		if len(plex) < r.items[item].Q {
			continue
		}
		if buf.aggs[pos] == nil {
			buf.aggs[pos] = NewAggregate(r.items[item].TopN)
		}
		buf.aggs[pos].AddPlex(plex)
	}
	buf.mu.Unlock()
}

// onSeedDone commits a completed seed group to the cumulative per-item
// aggregates and checkpoints when the batch or interval threshold is
// reached.
func (r *jobRun) onSeedDone(gi, seed int, partial kplex.Stats) {
	members := r.groups[gi].Members
	global := r.offsets[gi] + seed
	buf := &r.buffers[global]
	buf.mu.Lock()
	pending := buf.aggs
	buf.aggs = nil
	buf.mu.Unlock()

	r.mu.Lock()
	for pos, a := range pending {
		if a != nil {
			r.aggs[members[pos]].Merge(a)
		}
	}
	r.aggs[0].Stats.Add(partial)
	r.pendingSeeds = append(r.pendingSeeds, global)
	r.seedsDone++
	r.doneThisRun++
	r.m.counters.SeedsDone.Add(1)
	// Seed-count trigger, rate-limited so fast seeds don't turn every
	// batch into an fsync; the interval trigger bounds staleness either
	// way (the ticker goroutine covers jobs whose seeds stop completing).
	gap := time.Since(r.lastCkpt)
	if (len(r.pendingSeeds) >= r.m.cfg.CheckpointSeeds && gap >= r.m.cfg.MinCheckpointGap) ||
		gap >= r.m.cfg.CheckpointInterval {
		r.flushLocked()
	}
	if fp := r.m.cfg.CrashAfterSeeds; fp > 0 && r.doneThisRun >= fp && !r.crashed {
		r.crashed = true
		r.cancel(errCrashpoint)
	}
	publish := time.Since(r.lastPublish) >= 200*time.Millisecond
	var progress Progress
	if publish {
		r.lastPublish = time.Now()
		progress = r.progressLocked()
	}
	r.mu.Unlock()

	if publish {
		r.j.mu.Lock()
		r.j.progress = progress
		r.j.publishLocked()
		r.j.mu.Unlock()
	}
}

// progressLocked snapshots live progress; caller holds r.mu.
func (r *jobRun) progressLocked() Progress {
	elapsed := time.Since(r.started)
	p := Progress{
		State:      StateRunning,
		SeedsDone:  r.seedsDone,
		TotalSeeds: len(r.buffers),
		Plexes:     r.plexesLocked(),
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
	}
	if r.wal.seq > 0 {
		p.State = StateCheckpointed
	}
	p.Checkpoints = int64(r.wal.seq)
	if r.doneThisRun > 0 {
		remaining := len(r.buffers) - r.seedsDone
		perSeed := float64(elapsed) / float64(r.doneThisRun)
		p.ETAMS = perSeed * float64(remaining) / float64(time.Millisecond)
	}
	return p
}

// flushLocked appends a WAL checkpoint covering the pending seeds and
// updates the manifest. Caller holds r.mu. Errors are logged, not fatal:
// the job keeps running and the seeds stay pending for the next flush.
func (r *jobRun) flushLocked() {
	if len(r.pendingSeeds) == 0 {
		return
	}
	enumMS := r.baseEnumMS + float64(time.Since(r.started))/float64(time.Millisecond)
	rec := &walRecord{
		Seeds:  r.pendingSeeds,
		EnumMS: enumMS,
	}
	if len(r.aggs) == 1 {
		// The original single-aggregate format: logs stay replayable by (and
		// byte-compatible with) the pre-batch layout.
		rec.Agg = r.aggs[0].snapshot()
	} else {
		rec.Items = make([]*Aggregate, len(r.aggs))
		for i, a := range r.aggs {
			rec.Items[i] = a.snapshot()
		}
	}
	ckptSpan := r.trace.StartSpan("checkpoint").Attr("seeds", fmt.Sprint(len(r.pendingSeeds)))
	if err := r.wal.append(rec); err != nil {
		ckptSpan.EndErr(err)
		r.m.cfg.Logf("jobs: %s: checkpoint write failed (retrying next flush): %v", r.j.man.ID, err)
		return
	}
	ckptSpan.End()
	r.pendingSeeds = nil
	r.lastCkpt = time.Now()
	r.m.counters.Checkpoints.Add(1)

	j := r.j
	j.mu.Lock()
	first := j.man.State != StateCheckpointed
	j.man.State = StateCheckpointed
	j.man.SeedsDone = r.seedsDone
	j.man.EnumMS = enumMS
	if first {
		// Only the first checkpoint needs the manifest rewrite (the state
		// transition). SeedsDone on disk may go stale after that — recovery
		// derives it from the WAL replay, and live listings read Progress —
		// so steady-state checkpoints cost exactly one fsync, the WAL's.
		if err := writeManifest(j.dir, &j.man); err != nil {
			r.m.cfg.Logf("jobs: %s: %v", j.man.ID, err)
		}
	}
	j.mu.Unlock()
}

// writeResult persists the final answer next to the manifest.
func writeResult(dir string, res *Result) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ".result.tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "result.json")); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}
