package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/kplex"
)

// jobRun is the volatile state of one incarnation of a running job.
type jobRun struct {
	m   *Manager
	j   *job
	wal *wal

	// buffers[seed] accumulates the seed group's contributions until
	// OnSeedDone commits them; indexed by seed id, so the per-plex hot path
	// is a slice access plus one cold per-seed mutex.
	buffers []seedBuffer
	topN    int

	mu           sync.Mutex
	agg          *Aggregate // cumulative over all committed seeds (incl. resumed)
	pendingSeeds []int      // committed in memory, not yet in the WAL
	seedsDone    int        // committed seeds, incl. resumed ones
	doneThisRun  int
	lastCkpt     time.Time
	lastPublish  time.Time
	started      time.Time
	baseEnumMS   float64 // enumeration time of previous incarnations
	crashed      bool

	cancel context.CancelCauseFunc
}

type seedBuffer struct {
	mu  sync.Mutex
	agg *Aggregate
}

// runJob executes one incarnation of j: load the graph, wire the seed
// hooks, enumerate with the resumed seeds skipped, checkpointing along the
// way, and land in a terminal state — unless the incarnation is
// interrupted (shutdown or the crash failpoint), in which case the durable
// state is left for the next Open to resume.
func (m *Manager) runJob(j *job) {
	// Register the cancel hook before ANY work, in the same critical
	// section that re-checks the state. From here on Manager.Cancel always
	// goes through the context — it can never take the "still queued"
	// branch and mark a job terminal while this worker keeps running it
	// (which would let a Delete remove the directory under the active run).
	runCtx, cancel := context.WithCancelCause(m.ctx)
	defer cancel(nil)
	j.mu.Lock()
	if j.man.State != StateQueued {
		// Cancelled while it sat in the queue.
		j.mu.Unlock()
		return
	}
	j.cancel = cancel
	j.mu.Unlock()

	err := m.runJobInner(j, runCtx, cancel)

	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = nil
	switch {
	case err == nil:
		m.finishLocked(j, StateDone, nil)
	case errors.Is(err, errCrashpoint):
		// Simulated process death: leave the durable state exactly as a
		// crash would. The in-memory job is parked (not re-queued): a real
		// crash takes the process with it, and tests reopen the directory
		// with a fresh manager to exercise recovery.
		m.cfg.Logf("jobs: %s: crash failpoint hit", j.man.ID)
	case errors.Is(err, errShutdown):
		// Manager closing: the final checkpoint was flushed; recovery
		// resumes this job on the next Open.
	case errors.Is(err, errCancelled):
		m.finishLocked(j, StateCancelled, nil)
	default:
		m.finishLocked(j, StateFailed, err)
	}
}

func (m *Manager) runJobInner(j *job, runCtx context.Context, cancel context.CancelCauseFunc) error {
	j.mu.Lock()
	spec := j.man.Spec
	resume := j.resume
	j.resume = nil
	j.mu.Unlock()

	opts, err := spec.options(m.cfg.DefaultThreads)
	if err != nil {
		return err
	}

	g, digest, release, err := m.cfg.Load(spec.Graph)
	if err != nil {
		return fmt.Errorf("loading graph %q: %w", spec.Graph, err)
	}
	defer release()

	// One prepared prologue serves both the seed-space identity check and
	// the enumeration itself; hosts with a prepared cache (kplexd) resolve
	// it there, so resumed incarnations skip the prologue entirely.
	prepared, err := m.prepared(g, digest, opts)
	if err != nil {
		return err
	}
	totalSeeds := prepared.SeedSpace()

	// Pin (or verify) the identity of the decomposition the checkpoints
	// refer to. A changed graph file or seed space makes every persisted
	// seed id meaningless, so resuming would silently corrupt the result.
	j.mu.Lock()
	switch {
	case j.man.Digest == "":
		j.man.Digest = digest
		j.man.TotalSeeds = totalSeeds
	case j.man.Digest != digest:
		j.mu.Unlock()
		return fmt.Errorf("graph %q content changed since the job was checkpointed (digest %s, was %s); delete and resubmit", spec.Graph, digest[:12], j.man.Digest[:12])
	case j.man.TotalSeeds != totalSeeds:
		j.mu.Unlock()
		return fmt.Errorf("seed space changed since the job was checkpointed (%d, was %d); delete and resubmit", totalSeeds, j.man.TotalSeeds)
	}
	j.mu.Unlock()

	// Share the host's enumeration capacity with interactive queries.
	if m.cfg.Admit != nil {
		releaseSlot, err := m.cfg.Admit(runCtx)
		if err != nil {
			return m.interruptCause(runCtx, err)
		}
		defer releaseSlot()
	}

	r := &jobRun{
		m:       m,
		j:       j,
		topN:    spec.TopN,
		buffers: make([]seedBuffer, totalSeeds),
		agg:     NewAggregate(spec.TopN),
		started: time.Now(),
		cancel:  cancel,
	}
	r.lastCkpt = r.started

	// Rebuild the durable state of previous incarnations.
	var skip *kplex.SeedSet
	if resume != nil && len(resume.doneSeeds) > 0 {
		skip = kplex.NewSeedSet(resume.doneSeeds...)
		if skip.Max() >= totalSeeds {
			return fmt.Errorf("checkpoint names seed %d outside the %d-seed space; delete and resubmit", skip.Max(), totalSeeds)
		}
		r.agg = resume.agg
		r.agg.TopN = spec.TopN
		r.seedsDone = len(resume.doneSeeds)
		r.baseEnumMS = resume.enumMS
	}
	lastSeq := 0
	if resume != nil {
		lastSeq = resume.lastSeq
	}
	r.wal, err = openWAL(filepath.Join(j.dir, walName), lastSeq)
	if err != nil {
		return err
	}
	defer r.wal.Close()

	j.mu.Lock()
	j.man.State = StateRunning
	if resume != nil && r.seedsDone > 0 {
		j.man.State = StateCheckpointed // durable progress exists already
	}
	if j.man.StartedAt.IsZero() {
		j.man.StartedAt = time.Now()
	}
	j.progress = Progress{
		State:      j.man.State,
		SeedsDone:  r.seedsDone,
		TotalSeeds: totalSeeds,
		Plexes:     r.agg.Count,
	}
	if err := writeManifest(j.dir, &j.man); err != nil {
		m.cfg.Logf("jobs: %s: %v", j.man.ID, err)
	}
	j.publishLocked()
	j.mu.Unlock()

	opts.SkipSeeds = skip
	opts.OnPlexSeed = r.onPlex
	opts.OnSeedDone = r.onSeedDone

	// Interval flusher: a job whose seeds complete slowly must still
	// checkpoint every CheckpointInterval.
	flusherDone := make(chan struct{})
	go func() {
		defer close(flusherDone)
		t := time.NewTicker(m.cfg.CheckpointInterval)
		defer t.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-t.C:
				r.mu.Lock()
				if len(r.pendingSeeds) > 0 && time.Since(r.lastCkpt) >= m.cfg.CheckpointInterval {
					r.flushLocked()
				}
				r.mu.Unlock()
			}
		}
	}()

	_, runErr := kplex.RunPrepared(runCtx, prepared, opts)
	cancel(nil)
	<-flusherDone

	// Flush whatever completed, whether we finished or were cancelled — a
	// graceful shutdown should cost zero completed seeds. The crash
	// failpoint deliberately skips this so recovery is exercised against
	// lost (completed but never flushed) seed groups, like a real crash.
	r.mu.Lock()
	crashed := r.crashed
	if !crashed {
		r.flushLocked()
	}
	r.mu.Unlock()

	if runErr != nil || crashed {
		return m.interruptCause(runCtx, runErr)
	}

	// Sanity: every seed must have reported (completed groups + resumed).
	if r.seedsDone != totalSeeds {
		return fmt.Errorf("internal accounting error: %d of %d seeds reported done", r.seedsDone, totalSeeds)
	}

	elapsedMS := r.baseEnumMS + float64(time.Since(r.started))/float64(time.Millisecond)

	j.mu.Lock()
	resumes := j.man.Resumes
	j.man.EnumMS = elapsedMS
	// The terminal publish in finishLocked sends j.progress; make it carry
	// the final numbers, not the last throttled snapshot.
	j.progress = Progress{
		State:       StateRunning, // finishLocked sets the terminal state
		SeedsDone:   r.seedsDone,
		TotalSeeds:  totalSeeds,
		Checkpoints: int64(r.wal.seq),
		Plexes:      r.agg.Count,
		ElapsedMS:   float64(time.Since(r.started)) / float64(time.Millisecond),
	}
	j.mu.Unlock()

	final := Result{
		Count:      r.agg.Count,
		MaxSize:    r.agg.MaxSize,
		TopK:       r.agg.TopK,
		Histogram:  r.agg.Histogram,
		PlexDigest: r.agg.PlexDigest(),
		Stats:      r.agg.Stats,
		ElapsedMS:  elapsedMS,
		Resumes:    resumes,
	}
	if final.TopK == nil {
		final.TopK = [][]int{}
	}
	if final.Histogram == nil {
		final.Histogram = map[int]int64{}
	}
	return writeResult(j.dir, &final)
}

// prepared resolves the run prologue through the host's cache when one is
// wired, falling back to a direct Prepare.
func (m *Manager) prepared(g *graph.Graph, digest string, opts kplex.Options) (*kplex.Prepared, error) {
	if m.cfg.Prepare != nil {
		return m.cfg.Prepare(g, digest, opts)
	}
	return kplex.Prepare(g, opts)
}

// interruptCause classifies why an incarnation stopped early, preferring
// the recorded cancel cause (crash failpoint, explicit cancel) over the
// generic context error.
func (m *Manager) interruptCause(ctx context.Context, fallback error) error {
	cause := context.Cause(ctx)
	switch {
	case errors.Is(cause, errCrashpoint) || errors.Is(cause, errCancelled):
		return cause
	case m.ctx.Err() != nil:
		return errShutdown
	case fallback != nil:
		return fallback
	default:
		return cause
	}
}

// onPlex buffers one plex into its seed group's pending aggregate.
func (r *jobRun) onPlex(seed int, plex []int) {
	buf := &r.buffers[seed]
	buf.mu.Lock()
	if buf.agg == nil {
		buf.agg = NewAggregate(r.topN)
	}
	buf.agg.AddPlex(plex)
	buf.mu.Unlock()
}

// onSeedDone commits a completed seed group to the cumulative aggregate
// and checkpoints when the batch or interval threshold is reached.
func (r *jobRun) onSeedDone(seed int, partial kplex.Stats) {
	buf := &r.buffers[seed]
	buf.mu.Lock()
	a := buf.agg
	buf.agg = nil
	buf.mu.Unlock()

	r.mu.Lock()
	if a != nil {
		r.agg.Merge(a)
	}
	r.agg.Stats.Add(partial)
	r.pendingSeeds = append(r.pendingSeeds, seed)
	r.seedsDone++
	r.doneThisRun++
	r.m.counters.SeedsDone.Add(1)
	// Seed-count trigger, rate-limited so fast seeds don't turn every
	// batch into an fsync; the interval trigger bounds staleness either
	// way (the ticker goroutine covers jobs whose seeds stop completing).
	gap := time.Since(r.lastCkpt)
	if (len(r.pendingSeeds) >= r.m.cfg.CheckpointSeeds && gap >= r.m.cfg.MinCheckpointGap) ||
		gap >= r.m.cfg.CheckpointInterval {
		r.flushLocked()
	}
	if fp := r.m.cfg.CrashAfterSeeds; fp > 0 && r.doneThisRun >= fp && !r.crashed {
		r.crashed = true
		r.cancel(errCrashpoint)
	}
	publish := time.Since(r.lastPublish) >= 200*time.Millisecond
	var progress Progress
	if publish {
		r.lastPublish = time.Now()
		progress = r.progressLocked()
	}
	r.mu.Unlock()

	if publish {
		r.j.mu.Lock()
		r.j.progress = progress
		r.j.publishLocked()
		r.j.mu.Unlock()
	}
}

// progressLocked snapshots live progress; caller holds r.mu.
func (r *jobRun) progressLocked() Progress {
	elapsed := time.Since(r.started)
	p := Progress{
		State:      StateRunning,
		SeedsDone:  r.seedsDone,
		TotalSeeds: len(r.buffers),
		Plexes:     r.agg.Count,
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
	}
	if r.wal.seq > 0 {
		p.State = StateCheckpointed
	}
	p.Checkpoints = int64(r.wal.seq)
	if r.doneThisRun > 0 {
		remaining := len(r.buffers) - r.seedsDone
		perSeed := float64(elapsed) / float64(r.doneThisRun)
		p.ETAMS = perSeed * float64(remaining) / float64(time.Millisecond)
	}
	return p
}

// flushLocked appends a WAL checkpoint covering the pending seeds and
// updates the manifest. Caller holds r.mu. Errors are logged, not fatal:
// the job keeps running and the seeds stay pending for the next flush.
func (r *jobRun) flushLocked() {
	if len(r.pendingSeeds) == 0 {
		return
	}
	enumMS := r.baseEnumMS + float64(time.Since(r.started))/float64(time.Millisecond)
	rec := &walRecord{
		Seeds:  r.pendingSeeds,
		Agg:    r.agg.snapshot(),
		EnumMS: enumMS,
	}
	if err := r.wal.append(rec); err != nil {
		r.m.cfg.Logf("jobs: %s: checkpoint write failed (retrying next flush): %v", r.j.man.ID, err)
		return
	}
	r.pendingSeeds = nil
	r.lastCkpt = time.Now()
	r.m.counters.Checkpoints.Add(1)

	j := r.j
	j.mu.Lock()
	first := j.man.State != StateCheckpointed
	j.man.State = StateCheckpointed
	j.man.SeedsDone = r.seedsDone
	j.man.EnumMS = enumMS
	if first {
		// Only the first checkpoint needs the manifest rewrite (the state
		// transition). SeedsDone on disk may go stale after that — recovery
		// derives it from the WAL replay, and live listings read Progress —
		// so steady-state checkpoints cost exactly one fsync, the WAL's.
		if err := writeManifest(j.dir, &j.man); err != nil {
			r.m.cfg.Logf("jobs: %s: %v", j.man.ID, err)
		}
	}
	j.mu.Unlock()
}

// writeResult persists the final answer next to the manifest.
func writeResult(dir string, res *Result) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ".result.tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "result.json")); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}
