// Package jobs is the durable asynchronous job subsystem: it turns
// long-running k-plex enumerations into persistent, observable, resumable
// background work. Each job lives in its own directory under the manager's
// jobs dir as a JSON manifest (the state machine: queued → running →
// checkpointed → done/failed/cancelled) plus an append-only WAL of
// fsynced seed-level checkpoints (see wal.go). The engine's seed hooks
// (Options.OnSeedDone / OnPlexSeed / SkipSeeds) make the seed group the
// unit of recovery: contributions are buffered per seed, committed to the
// cumulative aggregate only when the group completes, and flushed to the
// WAL every CheckpointSeeds seeds or CheckpointInterval. A manager opened
// over a directory with interrupted jobs replays their WALs and re-queues
// them with the completed seeds skipped, so a crash or deploy costs at
// most one checkpoint interval of work — never the whole run.
package jobs

import (
	"container/heap"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/kplex"
	"repro/internal/obs"
)

// State is a job's position in the lifecycle. Queued and running are
// volatile; checkpointed means running with durable progress (a manager
// restart resumes it from the WAL rather than from scratch); done, failed
// and cancelled are terminal.
type State string

const (
	StateQueued       State = "queued"
	StateRunning      State = "running"
	StateCheckpointed State = "checkpointed"
	StateDone         State = "done"
	StateFailed       State = "failed"
	StateCancelled    State = "cancelled"
)

// terminal reports whether s is an end state.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Terminal is the exported form of terminal, for the layers that reuse
// this state machine (the cluster coordinator).
func (s State) Terminal() bool { return s.terminal() }

// Spec is what a client submits: the result-defining query plus execution
// knobs. The graph name is resolved by the manager's loader (a kplexd
// registry name or a data-dir path, depending on the host).
//
// A spec is either a single query (K, Q, TopN at the top level) or a
// batch job (Items, with the top-level query fields left zero). A batch
// job answers every item in one run: items with equal k share a single
// seed-space traversal prepared at the group's loosest q (see
// kplex.GroupBatch), and per-seed progress checkpoints the whole item
// vector, so a resumed batch job re-enumerates only the missing seeds of
// each traversal.
type Spec struct {
	Graph     string     `json:"graph"`
	K         int        `json:"k,omitempty"`
	Q         int        `json:"q,omitempty"`
	TopN      int        `json:"topn,omitempty"`      // largest plexes kept (default 10)
	Items     []SpecItem `json:"items,omitempty"`     // batch job: one entry per query
	Threads   int        `json:"threads,omitempty"`   // 0: manager default
	Scheduler string     `json:"scheduler,omitempty"` // "", stages, global-queue, steal
	Priority  int        `json:"priority,omitempty"`  // higher runs first
	Tenant    string     `json:"tenant,omitempty"`    // QoS tenant the job belongs to ("" = default)
}

// SpecItem is one query of a batch job: a (k, q) cell with its own top-k
// budget.
type SpecItem struct {
	K    int `json:"k"`
	Q    int `json:"q"`
	TopN int `json:"topn,omitempty"` // default 10, capped by Config.MaxTopN
}

// resolvedItems returns the job's query items: the batch spec's Items, or
// the single-query fields as a 1-item list. Top-k defaults are applied at
// Submit time, so recovered manifests replay with the budgets they were
// created with.
func (s *Spec) resolvedItems() []SpecItem {
	if len(s.Items) > 0 {
		return s.Items
	}
	return []SpecItem{{K: s.K, Q: s.Q, TopN: s.TopN}}
}

// queries builds the engine configuration of every item and the
// shared-traversal grouping for one incarnation of the job.
func (s *Spec) queries(defaultThreads int) ([]SpecItem, []kplex.BatchGroup, error) {
	items := s.resolvedItems()
	qs := make([]kplex.BatchQuery, len(items))
	for i, it := range items {
		o := kplex.NewOptions(it.K, it.Q)
		o.Threads = s.Threads
		if o.Threads <= 0 {
			o.Threads = defaultThreads
		}
		switch s.Scheduler {
		case "", "stages":
			o.Scheduler = kplex.SchedulerStages
		case "global-queue":
			o.Scheduler = kplex.SchedulerGlobalQueue
		case "steal":
			o.Scheduler = kplex.SchedulerSteal
		default:
			return nil, nil, fmt.Errorf("jobs: unknown scheduler %q", s.Scheduler)
		}
		if o.Threads > 1 {
			// Same straggler-splitting default as the interactive query path.
			o.TaskTimeout = 2 * time.Millisecond
		}
		qs[i] = kplex.BatchQuery{Opts: o}
	}
	groups, err := kplex.GroupBatch(qs)
	if err != nil {
		return nil, nil, err
	}
	return items, groups, nil
}

// Manifest is the durable per-job metadata, rewritten atomically on every
// state transition and checkpoint.
type Manifest struct {
	ID         string    `json:"id"`
	Spec       Spec      `json:"spec"`
	State      State     `json:"state"`
	Digest     string    `json:"digest,omitempty"`     // graph content identity, pinned at first run
	TotalSeeds int       `json:"totalSeeds,omitempty"` // kplex.SeedSpace, pinned at first run
	SeedsDone  int       `json:"seedsDone"`            // durably checkpointed seeds
	Resumes    int       `json:"resumes"`              // interrupted incarnations recovered
	Error      string    `json:"error,omitempty"`
	CreatedAt  time.Time `json:"createdAt"`
	StartedAt  time.Time `json:"startedAt,omitzero"`
	FinishedAt time.Time `json:"finishedAt,omitzero"`
	// EnumMS is cumulative enumeration wall-clock across incarnations.
	EnumMS float64 `json:"enumMs,omitempty"`
	// TraceID names the job's trace in the host's /debug/traces ring.
	// Pinned at first run so resumed incarnations extend one trace id.
	TraceID string `json:"traceId,omitempty"`
}

// Progress is the live view streamed to watchers.
type Progress struct {
	State       State   `json:"state"`
	SeedsDone   int     `json:"seedsDone"` // completed in-memory (≥ durably checkpointed)
	TotalSeeds  int     `json:"totalSeeds"`
	Checkpoints int64   `json:"checkpoints"`
	Plexes      int64   `json:"plexes"`
	ElapsedMS   float64 `json:"elapsedMs"` // this incarnation
	ETAMS       float64 `json:"etaMs,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// Result is the completed job's answer, persisted as result.json. A
// single-query job fills the top-level fields; a batch job additionally
// fills Items (one entry per spec item), with the top-level Count the sum
// and MaxSize the max across items (TopK and Histogram stay empty — each
// item carries its own).
type Result struct {
	Count      int64         `json:"count"`
	MaxSize    int           `json:"maxSize"`
	TopK       [][]int       `json:"topk"`
	Histogram  map[int]int64 `json:"histogram"`
	PlexDigest string        `json:"plexDigest"` // order-independent SHA-256 XOR of the plex set
	Items      []ItemResult  `json:"items,omitempty"`
	Stats      kplex.Stats   `json:"stats"`
	ElapsedMS  float64       `json:"elapsedMs"` // cumulative across incarnations
	Resumes    int           `json:"resumes"`
}

// ItemResult is one batch item's answer, positionally aligned with the
// spec's items.
type ItemResult struct {
	K          int           `json:"k"`
	Q          int           `json:"q"`
	TopN       int           `json:"topn"`
	Count      int64         `json:"count"`
	MaxSize    int           `json:"maxSize"`
	TopK       [][]int       `json:"topk"`
	Histogram  map[int]int64 `json:"histogram"`
	PlexDigest string        `json:"plexDigest"`
}

// View is one job in listings: the manifest plus the live progress.
type View struct {
	Manifest
	Progress Progress `json:"progress"`
}

// GraphLoader resolves a job's graph name. release must be called when the
// run is over (registry-backed hosts use it to unpin the graph).
type GraphLoader func(name string) (g graph.CSR, digest string, release func(), err error)

// Config tunes a Manager. Dir and Load are required.
type Config struct {
	// Dir is the jobs directory; one subdirectory per job.
	Dir string
	// Load resolves graph names (required).
	Load GraphLoader
	// Prepare, when non-nil, resolves the prepared run prologue for a
	// job's graph and options. The host wires this to its prepared-graph
	// cache so a resumed or repeated job skips the O(n+m) prologue (kplexd
	// shares the cache its interactive queries use). When nil, the runner
	// prepares directly — still only once per incarnation, shared between
	// the seed-space check and the enumeration.
	Prepare func(g graph.CSR, digest string, opts kplex.Options) (*kplex.Prepared, error)
	// Workers is the number of concurrent jobs (default 2).
	Workers int
	// CheckpointSeeds flushes a WAL record once this many seeds completed
	// since the last one (default 64), subject to MinCheckpointGap.
	CheckpointSeeds int
	// CheckpointInterval flushes pending seeds at least this often while
	// any completed (default 2s). This is the staleness bound: a crash
	// loses at most roughly this much finished work.
	CheckpointInterval time.Duration
	// MinCheckpointGap rate-limits the seed-count trigger (default 250ms,
	// negative to disable): on jobs whose seeds complete in microseconds,
	// fsyncing every CheckpointSeeds would turn durability into the
	// dominant cost, so batches are only flushed once the gap has passed
	// (the interval trigger still bounds staleness).
	MinCheckpointGap time.Duration
	// DefaultTopN is the top-k size when a spec leaves it zero (default 10).
	DefaultTopN int
	// MaxTopN rejects specs asking for more (default 1000).
	MaxTopN int
	// DefaultThreads is the engine parallelism when a spec leaves it zero
	// (default NumCPU).
	DefaultThreads int
	// Admit, when non-nil, gates each job's enumeration on the host's
	// admission control (kplexd passes its QoS controller, so background
	// jobs and interactive queries share one capacity budget), identified
	// by the submitting tenant. Jobs block until a slot frees rather than
	// being rejected.
	Admit func(ctx context.Context, tenant string) (release func(), err error)
	// TenantWeight, when non-nil, maps a tenant name to its weighted-fair
	// share of the job worker pool: under a backlog, tenants' started-job
	// counts converge to their weight ratios instead of strict FIFO. Nil —
	// or any non-positive return — means weight 1. Priority still orders
	// jobs within one tenant.
	TenantWeight func(tenant string) float64
	// ObserveCost, when non-nil, receives the (prologue features, measured
	// enumeration runtime) pair of each completed single-traversal job that
	// ran start to finish in one incarnation. kplexd wires it to its cost
	// calibrator, so long background runs — precisely the queries the cost
	// model exists to route — keep the predictor honest. Resumed and
	// multi-group runs are excluded: their elapsed time does not belong to
	// any single feature vector.
	ObserveCost func(f kplex.CostFeatures, elapsed time.Duration)
	// Logf receives operational log lines (default: discarded).
	Logf func(format string, args ...any)

	// Tracer, when non-nil, records one trace per job incarnation
	// (admission, prepare, enumerate and checkpoint spans) under the
	// job's stable trace id, retrievable via the host's /debug/traces.
	Tracer *obs.Tracer
	// ObserveFsync, when non-nil, receives the duration of every
	// successful WAL fsync — the feed for a fsync latency histogram.
	ObserveFsync func(d time.Duration)
	// ObserveJob, when non-nil, receives the cumulative enumeration
	// wall-clock of every job that reaches Done.
	ObserveJob func(d time.Duration)

	// CrashAfterSeeds is a test failpoint: when > 0, a running job aborts
	// as if the process had died after completing that many seed groups in
	// this incarnation — no terminal state is written, so a reopened
	// manager must recover it from its last checkpoint.
	CrashAfterSeeds int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.CheckpointSeeds <= 0 {
		c.CheckpointSeeds = 64
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 2 * time.Second
	}
	switch {
	case c.MinCheckpointGap < 0:
		c.MinCheckpointGap = 0
	case c.MinCheckpointGap == 0:
		c.MinCheckpointGap = 250 * time.Millisecond
	}
	if c.MinCheckpointGap > c.CheckpointInterval {
		c.MinCheckpointGap = c.CheckpointInterval
	}
	if c.DefaultTopN <= 0 {
		c.DefaultTopN = 10
	}
	if c.MaxTopN <= 0 {
		c.MaxTopN = 1000
	}
	if c.DefaultThreads <= 0 {
		c.DefaultThreads = runtime.NumCPU()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Counters are the manager's monotonic counters and gauges, exported into
// kplexd's /stats and /metrics.
type Counters struct {
	Submitted   atomic.Int64
	Completed   atomic.Int64
	Failed      atomic.Int64
	Cancelled   atomic.Int64
	Resumed     atomic.Int64 // interrupted jobs recovered at startup
	Checkpoints atomic.Int64 // WAL records fsynced
	SeedsDone   atomic.Int64 // seed groups completed (all jobs, all incarnations)
	Running     atomic.Int64 // gauge
	Queued      atomic.Int64 // gauge
}

// Snapshot returns the counters as a map for JSON/Prometheus encoding.
func (c *Counters) Snapshot() map[string]int64 {
	return map[string]int64{
		"jobs_submitted":   c.Submitted.Load(),
		"jobs_completed":   c.Completed.Load(),
		"jobs_failed":      c.Failed.Load(),
		"jobs_cancelled":   c.Cancelled.Load(),
		"jobs_resumed":     c.Resumed.Load(),
		"jobs_checkpoints": c.Checkpoints.Load(),
		"jobs_seeds_done":  c.SeedsDone.Load(),
		"jobs_running":     c.Running.Load(),
		"jobs_queued":      c.Queued.Load(),
	}
}

// job is the in-memory twin of one job directory.
type job struct {
	dir string

	mu       sync.Mutex
	man      Manifest
	progress Progress
	cancel   context.CancelCauseFunc // non-nil while running
	subs     map[int]chan Progress
	nextSub  int
	resume   *walReplay // recovered durable state awaiting the next run
}

// Manager runs and persists jobs. Create with Open, stop with Close.
type Manager struct {
	cfg  Config
	ctx  context.Context
	stop context.CancelFunc

	mu     sync.Mutex
	cond   *sync.Cond
	jobs   map[string]*job
	queues map[string]*tenantQueue // per-tenant priority heaps, drained weighted-fair
	queued int                     // total jobs across queues
	qclock float64                 // stride scheduler's virtual clock
	closed bool

	wg       sync.WaitGroup
	counters Counters
}

// Sentinel errors mapped to HTTP statuses by the server layer.
var (
	ErrNotFound   = errors.New("job not found")
	ErrNotDone    = errors.New("job has not completed")
	ErrNotActive  = errors.New("job is not active")
	ErrActive     = errors.New("job is still active")
	errCrashpoint = errors.New("jobs: crash failpoint reached")
	errShutdown   = errors.New("jobs: manager shutting down")
	errCancelled  = errors.New("jobs: cancelled by request")
)

// Open creates (or reopens) the manager over cfg.Dir, recovering any jobs
// a previous process left queued or interrupted, and starts the worker
// pool.
func Open(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("jobs: Config.Dir is required")
	}
	if cfg.Load == nil {
		return nil, errors.New("jobs: Config.Load is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{cfg: cfg, jobs: make(map[string]*job), queues: make(map[string]*tenantQueue)}
	m.cond = sync.NewCond(&m.mu)
	m.ctx, m.stop = context.WithCancel(context.Background())
	if err := m.recover(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.workerLoop()
	}
	return m, nil
}

// recover scans the jobs dir and re-queues everything non-terminal.
func (m *Manager) recover() error {
	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		dir := filepath.Join(m.cfg.Dir, ent.Name())
		man, err := readManifest(dir)
		if err != nil {
			m.cfg.Logf("jobs: skipping %s: %v", dir, err)
			continue
		}
		j := &job{dir: dir, man: *man, subs: make(map[int]chan Progress)}
		j.progress = Progress{State: man.State, SeedsDone: man.SeedsDone, TotalSeeds: man.TotalSeeds, Error: man.Error}
		switch man.State {
		case StateDone, StateFailed, StateCancelled:
			// Terminal: index for listings and result retrieval only.
		case StateRunning, StateCheckpointed:
			// Interrupted mid-run: replay the WAL and resume. An empty WAL
			// still counts as a recovered interruption — the incarnation
			// just died before its first checkpoint.
			if !m.wireResume(j) {
				m.jobs[man.ID] = j
				continue
			}
			m.markResumed(j)
			// In-memory only: the on-disk state stays checkpointed/running
			// so that dying again before the rerun starts loses nothing —
			// the next Open simply replays the same WAL. (Persisting
			// "queued" here would make that next Open treat the job as
			// never-run and discard the checkpoints.)
			j.man.State = StateQueued
			j.man.Error = ""
			j.progress = Progress{State: StateQueued, SeedsDone: j.man.SeedsDone, TotalSeeds: j.man.TotalSeeds}
			m.enqueueLocked(j)
		case StateQueued:
			// A fresh job has no WAL; wireResume replays defensively anyway
			// so a dir that somehow pairs a queued manifest with checkpoints
			// (e.g. written by an older manager version) resumes rather than
			// re-enumerating and appending colliding sequence numbers.
			if !m.wireResume(j) {
				m.jobs[man.ID] = j
				continue
			}
			if j.resume != nil {
				m.markResumed(j)
			}
			m.enqueueLocked(j)
		default:
			m.cfg.Logf("jobs: %s: unknown state %q, leaving untouched", man.ID, man.State)
		}
		m.jobs[man.ID] = j
	}
	return nil
}

// wireResume replays j's WAL (if any), repairs a torn tail, and arms the
// in-memory resume state. It reports false — after marking the job failed
// — when the durable state is unusable. Single-threaded recovery context;
// no locks held.
func (m *Manager) wireResume(j *job) bool {
	walPath := filepath.Join(j.dir, walName)
	rep, err := replayWAL(walPath)
	if err != nil {
		m.failRecovered(j, fmt.Errorf("unrecoverable WAL: %w", err))
		return false
	}
	if rep.truncated {
		// Cut the torn tail off now: the next incarnation opens the log
		// with O_APPEND, and writing after a partial line would weld the
		// two into one CRC-failing line that hides every later record from
		// every future replay.
		m.cfg.Logf("jobs: %s: discarding torn WAL tail; resuming from seq %d (%d seeds)", j.man.ID, rep.lastSeq, len(rep.doneSeeds))
		if err := os.Truncate(walPath, rep.validBytes); err != nil {
			m.failRecovered(j, fmt.Errorf("truncating torn WAL tail: %w", err))
			return false
		}
	}
	if rep.lastSeq == 0 {
		return true // nothing durable yet; the rerun starts from scratch
	}
	j.resume = rep
	j.man.SeedsDone = len(rep.doneSeeds)
	j.man.EnumMS = rep.enumMS
	return true
}

// markResumed scores one recovered interruption on the job and the
// manager's counters.
func (m *Manager) markResumed(j *job) {
	j.man.Resumes++
	m.counters.Resumed.Add(1)
}

// failRecovered marks a job that cannot be recovered as failed.
func (m *Manager) failRecovered(j *job, cause error) {
	j.man.State = StateFailed
	j.man.Error = cause.Error()
	j.man.FinishedAt = time.Now()
	j.progress.State = StateFailed
	j.progress.Error = j.man.Error
	if err := writeManifest(j.dir, &j.man); err != nil {
		m.cfg.Logf("jobs: %s: %v", j.man.ID, err)
	}
	m.counters.Failed.Add(1)
}

// Close stops accepting work, interrupts running jobs (they flush a final
// checkpoint, so a subsequent Open resumes them), and waits for the
// workers to exit.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.stop()
	m.cond.Broadcast()
	m.wg.Wait()
}

// Counters exposes the manager's counters.
func (m *Manager) Counters() *Counters { return &m.counters }

// maxSpecItems bounds a batch job's fan-out; like the server's item cap,
// an open submission surface needs a ceiling.
const maxSpecItems = 256

// newJobID returns a fresh collision-resistant id.
func newJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failing means the host is unusable
	}
	return "j" + hex.EncodeToString(b[:])
}

// Submit validates spec, persists a queued job and wakes a worker.
func (m *Manager) Submit(spec Spec) (*Manifest, error) {
	if err := m.normalizeSpec(&spec); err != nil {
		return nil, err
	}
	return m.persistAndEnqueue(spec, nil)
}

// SubmitResumable persists a queued job born with durable progress: the
// server's deadline-partial query path hands over the seeds it completed
// before the deadline plus their merged aggregate, and the job enumerates
// only the remainder — the "resume token" a partial answer carries. The
// progress is written as the job's first WAL record before the job is
// queued, so a crash between submission and the first run loses nothing.
// An empty done-set (or nil aggregate) degenerates to a plain Submit.
func (m *Manager) SubmitResumable(spec Spec, digest string, totalSeeds int, doneSeeds []int, agg *Aggregate, enumMS float64) (*Manifest, error) {
	if len(spec.Items) > 0 {
		return nil, errors.New("jobs: a resumable submission must be a single query")
	}
	if len(doneSeeds) == 0 || agg == nil {
		return m.Submit(spec)
	}
	if digest == "" || totalSeeds <= 0 {
		return nil, errors.New("jobs: a resumable submission needs the graph digest and seed-space size its done-seeds refer to")
	}
	seen := make(map[int]bool, len(doneSeeds))
	for _, s := range doneSeeds {
		if s < 0 || s >= totalSeeds {
			return nil, fmt.Errorf("jobs: done seed %d outside the %d-seed space", s, totalSeeds)
		}
		if seen[s] {
			return nil, fmt.Errorf("jobs: duplicate done seed %d", s)
		}
		seen[s] = true
	}
	if err := m.normalizeSpec(&spec); err != nil {
		return nil, err
	}
	seeds := append([]int(nil), doneSeeds...)
	snap := agg.snapshot() // sealed private copy: the WAL payload and the armed runtime state
	return m.persistAndEnqueue(spec, func(j *job) error {
		w, err := openWAL(filepath.Join(j.dir, walName), 0)
		if err != nil {
			return err
		}
		if err := w.append(&walRecord{Seeds: seeds, Agg: snap, EnumMS: enumMS}); err != nil {
			w.Close() //nolint:errcheck // append already failed
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		m.counters.Checkpoints.Add(1)
		m.counters.SeedsDone.Add(int64(len(seeds)))
		j.man.Digest = digest
		j.man.TotalSeeds = totalSeeds
		j.man.SeedsDone = len(seeds)
		j.man.EnumMS = enumMS
		j.progress.SeedsDone = len(seeds)
		j.progress.TotalSeeds = totalSeeds
		// Arm the runner directly instead of re-reading the record it just
		// wrote; the WAL stays the durable twin for a restart in between.
		j.resume = &walReplay{doneSeeds: seeds, aggs: []*Aggregate{snap}, lastSeq: 1, enumMS: enumMS}
		return nil
	})
}

// normalizeSpec validates spec and applies submission-time defaults (the
// top-k budgets), mutating it in place.
func (m *Manager) normalizeSpec(spec *Spec) error {
	if spec.Graph == "" {
		return errors.New("jobs: graph is required")
	}
	if len(spec.Items) > 0 {
		if spec.K != 0 || spec.Q != 0 || spec.TopN != 0 {
			return errors.New("jobs: a batch spec sets items only; leave the top-level k, q and topn zero")
		}
		if len(spec.Items) > maxSpecItems {
			return fmt.Errorf("jobs: too many items (%d, max %d)", len(spec.Items), maxSpecItems)
		}
		// Default the budgets on a private copy: the caller owns the slice's
		// backing array, and Submit must not write through it.
		spec.Items = append([]SpecItem(nil), spec.Items...)
		for i := range spec.Items {
			it := &spec.Items[i]
			if it.TopN == 0 {
				it.TopN = m.cfg.DefaultTopN
			}
			if it.TopN < 1 || it.TopN > m.cfg.MaxTopN {
				return fmt.Errorf("jobs: item %d: topn must be in [1, %d], got %d", i, m.cfg.MaxTopN, it.TopN)
			}
		}
	} else {
		if spec.TopN == 0 {
			spec.TopN = m.cfg.DefaultTopN
		}
		if spec.TopN < 1 || spec.TopN > m.cfg.MaxTopN {
			return fmt.Errorf("jobs: topn must be in [1, %d], got %d", m.cfg.MaxTopN, spec.TopN)
		}
	}
	if _, _, err := spec.queries(m.cfg.DefaultThreads); err != nil {
		return err
	}
	return nil
}

// persistAndEnqueue creates the job directory, runs init (if any) to lay
// down extra durable state before the manifest, writes the manifest and
// enqueues the job. The job becomes durable before it becomes runnable, so
// a crash between the two leaves a recoverable directory, never a running
// ghost.
func (m *Manager) persistAndEnqueue(spec Spec, init func(j *job) error) (*Manifest, error) {
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return nil, errShutdown
	}

	j := &job{
		man: Manifest{
			ID:        newJobID(),
			Spec:      spec,
			State:     StateQueued,
			CreatedAt: time.Now(),
		},
		subs: make(map[int]chan Progress),
	}
	j.dir = filepath.Join(m.cfg.Dir, j.man.ID)
	j.progress = Progress{State: StateQueued}
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return nil, err
	}
	if init != nil {
		if err := init(j); err != nil {
			os.RemoveAll(j.dir) //nolint:errcheck // best effort on failed init
			return nil, err
		}
	}
	if err := writeManifest(j.dir, &j.man); err != nil {
		return nil, err
	}

	man := j.man // copy before a worker can pop the job and mutate it
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		// Close raced the persistence above: a rejected submission must not
		// leave a durable queued job for the next Open to run as a ghost.
		os.RemoveAll(j.dir) //nolint:errcheck // best effort on shutdown
		return nil, errShutdown
	}
	m.jobs[j.man.ID] = j
	m.enqueueLocked(j)
	m.mu.Unlock()
	m.counters.Submitted.Add(1)
	return &man, nil
}

// enqueueLocked pushes j onto its tenant's queue and signals one worker.
// Caller holds m.mu (or is inside single-threaded recovery).
func (m *Manager) enqueueLocked(j *job) {
	tenant := j.man.Spec.Tenant
	tq := m.queues[tenant]
	if tq == nil {
		tq = &tenantQueue{}
		m.queues[tenant] = tq
	}
	heap.Push(&tq.heap, j)
	m.queued++
	m.counters.Queued.Add(1)
	m.cond.Signal()
}

// popLocked removes and returns the next job to run: the tenant with the
// smallest stride pass among those with queued jobs goes first, its pass
// advancing by 1/weight per started job — so under a backlog, started-job
// counts converge to weight ratios, while a single-tenant deployment
// degenerates to the old priority/FIFO order exactly. Caller holds m.mu
// and has checked m.queued > 0.
func (m *Manager) popLocked() *job {
	var bestName string
	var best *tenantQueue
	for name, tq := range m.queues {
		if tq.heap.Len() == 0 {
			continue
		}
		if best == nil || tq.pass < best.pass || (tq.pass == best.pass && name < bestName) {
			best, bestName = tq, name
		}
	}
	weight := 1.0
	if m.cfg.TenantWeight != nil {
		if w := m.cfg.TenantWeight(bestName); w > 0 {
			weight = w
		}
	}
	// An idle tenant rejoins at the virtual clock rather than its stale
	// pass, so idling banks no credit.
	start := max(best.pass, m.qclock)
	best.pass = start + 1/weight
	m.qclock = start
	m.queued--
	return heap.Pop(&best.heap).(*job)
}

// tenantQueue is one tenant's job backlog plus its stride-scheduling pass.
type tenantQueue struct {
	heap jobQueue
	pass float64
}

// Get returns one job's view.
func (m *Manager) Get(id string) (*View, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	v := &View{Manifest: j.man, Progress: j.progress}
	j.mu.Unlock()
	return v, nil
}

// List returns every known job, newest first.
func (m *Manager) List() []View {
	m.mu.Lock()
	all := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		all = append(all, j)
	}
	m.mu.Unlock()
	out := make([]View, 0, len(all))
	for _, j := range all {
		j.mu.Lock()
		out = append(out, View{Manifest: j.man, Progress: j.progress})
		j.mu.Unlock()
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].CreatedAt.Equal(out[k].CreatedAt) {
			return out[i].CreatedAt.After(out[k].CreatedAt)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Result returns a completed job's answer.
func (m *Manager) Result(id string) (*Result, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	state := j.man.State
	j.mu.Unlock()
	if state != StateDone {
		return nil, fmt.Errorf("%w (state %s)", ErrNotDone, state)
	}
	data, err := os.ReadFile(filepath.Join(j.dir, "result.json"))
	if err != nil {
		return nil, err
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Cancel stops a queued or running job. Terminal jobs return ErrNotActive.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.man.State.terminal():
		return fmt.Errorf("%w (state %s)", ErrNotActive, j.man.State)
	case j.cancel != nil:
		j.cancel(errCancelled)
		return nil
	default:
		// Still queued: mark terminal here; the worker discards it on pop.
		m.finishLocked(j, StateCancelled, nil)
		return nil
	}
}

// Delete removes a terminal job and its directory. Active jobs must be
// cancelled first.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	j.mu.Lock()
	terminal := j.man.State.terminal()
	j.mu.Unlock()
	if !terminal {
		return fmt.Errorf("%w: cancel it first", ErrActive)
	}
	m.mu.Lock()
	delete(m.jobs, id)
	m.mu.Unlock()
	return os.RemoveAll(j.dir)
}

// Subscribe returns a channel of progress updates for the job, starting
// with its current snapshot; the channel is closed once the job reaches a
// terminal state. Call the returned stop function to unsubscribe early.
func (m *Manager) Subscribe(id string) (<-chan Progress, func(), error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, nil, ErrNotFound
	}
	ch := make(chan Progress, 16)
	j.mu.Lock()
	ch <- j.progress
	if j.man.State.terminal() {
		close(ch)
		j.mu.Unlock()
		return ch, func() {}, nil
	}
	idx := j.nextSub
	j.nextSub++
	j.subs[idx] = ch
	j.mu.Unlock()
	stop := func() {
		j.mu.Lock()
		if c, ok := j.subs[idx]; ok {
			delete(j.subs, idx)
			close(c)
		}
		j.mu.Unlock()
	}
	return ch, stop, nil
}

// Wait blocks until the job reaches a terminal state (or ctx is done) and
// returns its final view.
func (m *Manager) Wait(ctx context.Context, id string) (*View, error) {
	ch, stop, err := m.Subscribe(id)
	if err != nil {
		return nil, err
	}
	defer stop()
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case _, ok := <-ch:
			if !ok {
				return m.Get(id)
			}
		}
	}
}

// publishLocked fans the current progress out to subscribers; caller holds
// j.mu. Slow subscribers drop updates rather than blocking the engine.
func (j *job) publishLocked() {
	for _, ch := range j.subs {
		select {
		case ch <- j.progress:
		default:
		}
	}
}

// finishLocked moves j to a terminal state, persists the manifest and
// closes subscriber channels. Caller holds j.mu.
func (m *Manager) finishLocked(j *job, state State, cause error) {
	j.man.State = state
	j.man.FinishedAt = time.Now()
	if cause != nil {
		j.man.Error = cause.Error()
	}
	j.progress.State = state
	j.progress.Error = j.man.Error
	if err := writeManifest(j.dir, &j.man); err != nil {
		m.cfg.Logf("jobs: %s: persisting terminal state: %v", j.man.ID, err)
	}
	j.publishLocked()
	for idx, ch := range j.subs {
		delete(j.subs, idx)
		close(ch)
	}
	switch state {
	case StateDone:
		m.counters.Completed.Add(1)
		if m.cfg.ObserveJob != nil {
			m.cfg.ObserveJob(time.Duration(j.man.EnumMS * float64(time.Millisecond)))
		}
	case StateFailed:
		m.counters.Failed.Add(1)
	case StateCancelled:
		m.counters.Cancelled.Add(1)
	}
}

// workerLoop pops jobs by priority and runs them until Close.
func (m *Manager) workerLoop() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for m.queued == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		j := m.popLocked()
		m.mu.Unlock()
		m.counters.Queued.Add(-1)

		m.counters.Running.Add(1)
		m.runJob(j)
		m.counters.Running.Add(-1)
	}
}

// jobQueue is a priority heap: higher Spec.Priority first, then FIFO.
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, k int) bool {
	if q[i].man.Spec.Priority != q[k].man.Spec.Priority {
		return q[i].man.Spec.Priority > q[k].man.Spec.Priority
	}
	if !q[i].man.CreatedAt.Equal(q[k].man.CreatedAt) {
		return q[i].man.CreatedAt.Before(q[k].man.CreatedAt)
	}
	return q[i].man.ID < q[k].man.ID
}
func (q jobQueue) Swap(i, k int) { q[i], q[k] = q[k], q[i] }
func (q *jobQueue) Push(x any)   { *q = append(*q, x.(*job)) }
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return x
}

// readManifest loads dir/manifest.json.
func readManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("corrupt manifest: %w", err)
	}
	if man.ID == "" {
		return nil, errors.New("manifest has no job id")
	}
	return &man, nil
}

// writeManifest atomically replaces dir/manifest.json (tmp + rename +
// fsync), so a crash mid-write leaves the previous version intact.
func writeManifest(dir string, man *Manifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ".manifest.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "manifest.json")); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory (best effort: not all platforms support it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck
		d.Close()
	}
}
