package jobs

// QoS-facing behavior of the job layer: weighted-fair tenant scheduling of
// the queue, resumable submissions born from a partial answer, and the
// per-incarnation ETA rate (a resumed job must not fold previous
// incarnations' seeds into this run's speed estimate).

import (
	"container/heap"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/kplex"
)

// TestTenantStridePop drives enqueueLocked/popLocked directly: with gold at
// weight 3 and bronze at weight 1, a drained backlog must start gold jobs
// three times as often, and the exact stride order is deterministic.
func TestTenantStridePop(t *testing.T) {
	m := &Manager{
		cfg: Config{TenantWeight: func(tenant string) float64 {
			if tenant == "gold" {
				return 3
			}
			return 1
		}},
		jobs:   make(map[string]*job),
		queues: make(map[string]*tenantQueue),
	}
	m.cond = sync.NewCond(&m.mu)

	mk := func(tenant string, i int) *job {
		return &job{man: Manifest{ID: tenant + string(rune('0'+i)), Spec: Spec{Tenant: tenant}, CreatedAt: time.Unix(int64(i), 0)}}
	}
	m.mu.Lock()
	for i := 0; i < 6; i++ {
		m.enqueueLocked(mk("gold", i))
	}
	for i := 0; i < 2; i++ {
		m.enqueueLocked(mk("bronze", i))
	}
	var order []string
	for m.queued > 0 {
		order = append(order, m.popLocked().man.Spec.Tenant)
	}
	m.mu.Unlock()

	// Both tenants start at pass 0; bronze wins the tie by name, then gold's
	// 1/3 stride packs three starts per bronze start.
	want := []string{"bronze", "gold", "gold", "gold", "bronze", "gold", "gold", "gold"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v", order, want)
		}
	}

	// A lone tenant must drain in plain heap (priority/FIFO) order.
	m.mu.Lock()
	hi := mk("solo", 0)
	hi.man.Spec.Priority = 9
	lo := mk("solo", 1)
	m.enqueueLocked(lo)
	m.enqueueLocked(hi)
	first, second := m.popLocked(), m.popLocked()
	m.mu.Unlock()
	if first != hi || second != lo {
		t.Fatal("single-tenant pop lost the priority order")
	}
	_ = heap.Interface(&jobQueue{}) // the tenant queues still satisfy heap
}

// TestSubmitResumableExactRemainder is the resume-token round trip: build
// the aggregate for an arbitrary subset of seeds (the "completed before
// the deadline" half), hand it to SubmitResumable, and require the job —
// which enumerates only the remainder — to finish with results identical
// to an uninterrupted run.
func TestSubmitResumableExactRemainder(t *testing.T) {
	const graphName, k, q, topn = "corpus:planted-overlap", 2, 6, 7
	ref := refAggregate(t, graphName, k, q, topn)

	g, digest, release, err := testLoader(graphName)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	opts := kplex.NewOptions(k, q)
	p, err := kplex.Prepare(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	total := p.SeedSpace()

	// "Done" seeds: every third one. Aggregate them exactly the way the
	// server's partial path does — a run over only those seeds.
	var done []int
	skip := kplex.NewSeedSet()
	for s := 0; s < total; s++ {
		if s%3 == 0 {
			done = append(done, s)
		} else {
			skip.Add(s)
		}
	}
	agg := NewAggregate(topn)
	var mu sync.Mutex
	opts.OnPlex = func(px []int) {
		mu.Lock()
		agg.AddPlex(px)
		mu.Unlock()
	}
	opts.SkipSeeds = skip
	res, err := kplex.RunPrepared(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	agg.Stats = res.Stats

	m := openTestManager(t, t.TempDir(), nil)
	defer m.Close()
	man, err := m.SubmitResumable(Spec{Graph: graphName, K: k, Q: q, TopN: topn}, digest, total, done, agg, 12.5)
	if err != nil {
		t.Fatal(err)
	}
	if man.SeedsDone != len(done) || man.TotalSeeds != total || man.Digest != digest {
		t.Fatalf("manifest born with seedsDone=%d/%d digest=%q, want %d/%d %q",
			man.SeedsDone, man.TotalSeeds, man.Digest, len(done), total, digest)
	}
	v := waitDone(t, m, man.ID)
	if v.State != StateDone {
		t.Fatalf("resumable job ended %s (%q), want done", v.State, v.Error)
	}
	out, err := m.Result(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, out, ref)
	if out.ElapsedMS < 12.5 {
		t.Errorf("cumulative elapsedMs %.3f lost the handed-over 12.5ms", out.ElapsedMS)
	}
}

func TestSubmitResumableValidation(t *testing.T) {
	m := openTestManager(t, t.TempDir(), nil)
	defer m.Close()
	agg := NewAggregate(5)
	spec := Spec{Graph: "corpus:planted-a", K: 2, Q: 6}
	if _, err := m.SubmitResumable(spec, "", 10, []int{1}, agg, 0); err == nil {
		t.Error("missing digest accepted")
	}
	if _, err := m.SubmitResumable(spec, "d", 10, []int{10}, agg, 0); err == nil {
		t.Error("out-of-range seed accepted")
	}
	if _, err := m.SubmitResumable(spec, "d", 10, []int{3, 3}, agg, 0); err == nil {
		t.Error("duplicate seed accepted")
	}
	if _, err := m.SubmitResumable(Spec{Graph: "g", Items: []SpecItem{{K: 2, Q: 6}}}, "d", 10, []int{1}, agg, 0); err == nil {
		t.Error("batch spec accepted as resumable")
	}
	// No progress degenerates to a plain submission that runs to done.
	man, err := m.SubmitResumable(spec, "", 0, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v := waitDone(t, m, man.ID); v.State != StateDone {
		t.Fatalf("degenerate resumable ended %s", v.State)
	}
}

// TestProgressETAUsesIncarnationRate pins the resume-skew regression: the
// ETA must be computed from seeds completed by THIS incarnation over THIS
// incarnation's elapsed time. A resumed job that inherited 90 of 100 seeds
// and then finished 10 more in 100ms is moving at 10ms/seed — not the
// 1.1ms/seed a naive seedsDone/elapsed division would claim.
func TestProgressETAUsesIncarnationRate(t *testing.T) {
	r := &jobRun{
		wal:         &wal{},
		buffers:     make([]seedBuffer, 110),
		seedsDone:   100, // 90 inherited + 10 this run
		doneThisRun: 10,
		started:     time.Now().Add(-100 * time.Millisecond),
	}
	r.mu.Lock()
	p := r.progressLocked()
	r.mu.Unlock()
	if p.SeedsDone != 100 || p.TotalSeeds != 110 {
		t.Fatalf("progress %d/%d, want 100/110", p.SeedsDone, p.TotalSeeds)
	}
	// 10 remaining at ~10ms/seed ≈ 100ms; the buggy rate would say ~11ms.
	if p.ETAMS < 60 || p.ETAMS > 400 {
		t.Fatalf("ETAMS = %.1f, want ~100 (incarnation rate), not ~11 (lifetime rate)", p.ETAMS)
	}
}
