package jobs

// Replay regression tests for the job WAL's schema guards: records from a
// newer binary, ambiguous single/batch layouts, and arity flips must be
// hard errors — never silent torn-tail truncation, which would resume
// from an older checkpoint underneath durable newer data. Legacy
// unversioned records must keep replaying.

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// sealedAgg builds a small sealed aggregate for hand-written records.
func sealedAgg(seed int) *Aggregate {
	a := NewAggregate(3)
	a.AddPlex([]int{seed, seed + 1, seed + 2})
	return a.snapshot()
}

// writeWALLine appends one correctly CRC-framed line with the payload
// given verbatim, bypassing append()'s version/seq stamping.
func writeWALLine(t *testing.T, path, payload string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "%08x %s\n", crc32.ChecksumIEEE([]byte(payload)), payload); err != nil {
		t.Fatal(err)
	}
}

func TestWALReplayRejectsFutureVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	w, err := openWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(&walRecord{Seeds: []int{0}, Agg: sealedAgg(0)}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	writeWALLine(t, path, fmt.Sprintf(`{"v":%d,"seq":2,"seeds":[1],"agg":{"count":1,"topn":3},"enumMs":1}`, walVersion+1))

	if _, err := replayWAL(path); err == nil {
		t.Fatal("future-version record replayed without error")
	}
}

func TestWALReplayRejectsAggAndItemsTogether(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	writeWALLine(t, path, `{"v":1,"seq":1,"seeds":[0],"agg":{"count":1,"topn":3},"items":[{"count":1,"topn":3}],"enumMs":1}`)

	if _, err := replayWAL(path); err == nil {
		t.Fatal("record with both agg and items replayed without error")
	}
}

func TestWALReplayRejectsArityFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	w, err := openWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(&walRecord{Seeds: []int{0}, Items: []*Aggregate{sealedAgg(0), sealedAgg(10)}}); err != nil {
		t.Fatal(err)
	}
	if err := w.append(&walRecord{Seeds: []int{1}, Items: []*Aggregate{sealedAgg(1)}}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	if _, err := replayWAL(path); err == nil {
		t.Fatal("item-arity flip mid-log replayed without error")
	}
}

func TestWALReplayRejectsRepeatedAndNegativeSeeds(t *testing.T) {
	for name, lines := range map[string][]string{
		"repeated": {
			`{"v":1,"seq":1,"seeds":[4],"agg":{"count":1,"topn":3},"enumMs":1}`,
			`{"v":1,"seq":2,"seeds":[4],"agg":{"count":2,"topn":3},"enumMs":2}`,
		},
		"negative": {
			`{"v":1,"seq":1,"seeds":[-3],"agg":{"count":1,"topn":3},"enumMs":1}`,
		},
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), walName)
			for _, l := range lines {
				writeWALLine(t, path, l)
			}
			if _, err := replayWAL(path); err == nil {
				t.Fatal("corrupt seed list replayed without error")
			}
		})
	}
}

// TestWALReplayAcceptsLegacyUnversionedRecords: logs written before the
// version field existed carry no "v" key and must replay unchanged.
func TestWALReplayAcceptsLegacyUnversionedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	agg := sealedAgg(7)
	writeWALLine(t, path, fmt.Sprintf(`{"seq":1,"seeds":[0,2],"agg":{"count":%d,"maxSize":%d,"topn":%d,"plexXor":%q},"enumMs":5}`,
		agg.Count, agg.MaxSize, agg.TopN, agg.PlexXor))

	rep, err := replayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.truncated || rep.lastSeq != 1 || len(rep.doneSeeds) != 2 {
		t.Fatalf("legacy replay = truncated=%v lastSeq=%d seeds=%v", rep.truncated, rep.lastSeq, rep.doneSeeds)
	}
	if len(rep.aggs) != 1 || rep.aggs[0].PlexDigest() != agg.PlexDigest() {
		t.Fatalf("legacy replay aggregates = %v", rep.aggs)
	}
}

// TestWALVersionRoundTrip: what this binary writes, this binary replays.
func TestWALVersionRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	w, err := openWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.append(&walRecord{Seeds: []int{i}, Agg: sealedAgg(i), EnumMS: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	rep, err := replayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.truncated || rep.lastSeq != 3 || len(rep.doneSeeds) != 3 {
		t.Fatalf("replay = truncated=%v lastSeq=%d seeds=%v", rep.truncated, rep.lastSeq, rep.doneSeeds)
	}
}
