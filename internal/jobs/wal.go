package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
	"time"
)

// The per-job write-ahead log: an append-only NDJSON file in the job
// directory whose records are checkpoints. Each record carries the seed
// groups completed since the previous record and a full snapshot of the
// cumulative aggregate at that point, so replay is "union the seed deltas,
// keep the last aggregate" — the aggregate in record i by construction
// covers exactly the union of seeds in records 1..i. Every line is
// prefixed with a CRC32 of its JSON payload; replay stops at the first
// line that fails the check, which is how a torn tail from a crash mid-
// write degrades into "resume from the previous checkpoint" instead of a
// corrupt job.

const walName = "wal.ndjson"

// walVersion is the schema version stamped on every record this binary
// writes. Replay accepts records up to and including it (older records,
// written before the field existed, carry 0 and mean the original layout);
// a record with a HIGHER version was written by a newer binary over a
// shared job dir — a coordinator and a worker on skewed releases, say —
// and its payload cannot be assumed to merge under these rules, so replay
// rejects the whole log instead of silently mis-merging or truncating
// valid newer data.
const walVersion = 1

// walRecord is one fsynced checkpoint. Single-item jobs persist their one
// cumulative aggregate as Agg (the original format, so logs written before
// batch jobs existed replay unchanged); multi-item batch jobs persist the
// per-item aggregate vector as Items, positionally aligned with the
// spec's items. Seed ids are global across the job's traversal groups
// (group g's local seed s is recorded as offset_g + s).
type walRecord struct {
	Ver   int          `json:"v,omitempty"` // schema version (0: pre-versioned layout)
	Seq   int          `json:"seq"`
	Seeds []int        `json:"seeds"`           // completed since the previous record
	Agg   *Aggregate   `json:"agg,omitempty"`   // cumulative, covering all seeds so far
	Items []*Aggregate `json:"items,omitempty"` // multi-item jobs: one cumulative aggregate per item
	// EnumMS is the cumulative enumeration wall-clock of the job across
	// incarnations up to this checkpoint, for honest elapsed reporting
	// after a resume.
	EnumMS float64 `json:"enumMs"`
}

// wal appends checkpoint records durably.
type wal struct {
	f   *os.File
	seq int
	// onSync, when non-nil, receives the wall-clock duration of each
	// successful fsync — the observability feed for the fsync latency
	// histogram. Failures are not reported: the append error path is the
	// signal there.
	onSync func(d time.Duration)
}

// openWAL opens (creating if needed) the job's log for appending and
// returns it positioned after the existing records.
func openWAL(path string, lastSeq int) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{f: f, seq: lastSeq}, nil
}

// append writes rec with the next sequence number and fsyncs. The record's
// aggregate must already be sealed (see Aggregate.seal). The sequence
// number only advances on success, so a failed append is simply retried at
// the next flush — after truncating back to the pre-append size, because a
// short write would otherwise leave a newline-less partial line that the
// retry welds into one CRC-failing line, hiding every later record from
// replay. (If even the truncate fails the disk is gone; crash recovery's
// torn-tail handling is the remaining backstop.)
func (w *wal) append(rec *walRecord) error {
	rec.Ver = walVersion
	rec.Seq = w.seq + 1
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	st, err := w.f.Stat()
	if err != nil {
		return err
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload)
	if _, err := w.f.WriteString(line); err != nil {
		w.f.Truncate(st.Size()) //nolint:errcheck // best effort, see above
		return err
	}
	syncStart := time.Now()
	if err := w.f.Sync(); err != nil {
		w.f.Truncate(st.Size()) //nolint:errcheck
		return err
	}
	if w.onSync != nil {
		w.onSync(time.Since(syncStart))
	}
	w.seq++
	return nil
}

func (w *wal) Close() error { return w.f.Close() }

// walReplay is the durable state reconstructed from a log.
type walReplay struct {
	doneSeeds  []int
	aggs       []*Aggregate // per-item cumulative aggregates; nil when the log holds no valid record
	lastSeq    int
	enumMS     float64
	truncated  bool  // a torn or corrupt tail was discarded
	validBytes int64 // length of the intact record prefix
}

// replayWAL reads the log at path, verifying each line's checksum and
// stopping at the first damaged one. A missing file is an empty log. A
// final line without its trailing newline is torn even when its CRC
// happens to pass — the record's durability ends at the newline, and
// leaving it in place would let the next O_APPEND incarnation weld its
// first record onto it into one unreadable line.
func replayWAL(path string) (*walReplay, error) {
	rep := &walReplay{}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return rep, nil
	}
	if err != nil {
		return nil, err
	}

	seen := make(map[int]bool)
	rest := data
	for len(rest) > 0 {
		idx := bytes.IndexByte(rest, '\n')
		if idx < 0 {
			rep.truncated = true // unterminated tail
			break
		}
		line := rest[:idx]
		crcHex, payload, ok := strings.Cut(string(line), " ")
		if !ok || len(crcHex) != 8 {
			rep.truncated = true
			break
		}
		var want uint32
		if _, err := fmt.Sscanf(crcHex, "%08x", &want); err != nil {
			rep.truncated = true
			break
		}
		if crc32.ChecksumIEEE([]byte(payload)) != want {
			rep.truncated = true
			break
		}
		var rec walRecord
		if err := json.Unmarshal([]byte(payload), &rec); err != nil || (rec.Agg == nil && len(rec.Items) == 0) {
			rep.truncated = true
			break
		}
		// Version and shape checks are hard errors, not torn-tail
		// truncation: the record passed its CRC, so it is exactly what some
		// binary durably wrote — just not something this binary can merge.
		// Truncating it would silently resume from an older checkpoint and
		// then append colliding sequence numbers after valid newer data.
		if rec.Ver > walVersion {
			return nil, fmt.Errorf("jobs: WAL record %d has schema version %d, but this binary understands at most %d (job dir shared with a newer binary?)", rec.Seq, rec.Ver, walVersion)
		}
		if rec.Agg != nil && len(rec.Items) > 0 {
			return nil, fmt.Errorf("jobs: WAL record %d sets both agg and items; the log mixes single-query and batch layouts", rec.Seq)
		}
		if rec.Seq != rep.lastSeq+1 {
			// A sequence gap means an earlier record was lost; everything
			// after it is unusable.
			rep.truncated = true
			break
		}
		aggs := rec.Items
		if aggs == nil {
			aggs = []*Aggregate{rec.Agg}
		}
		if rep.aggs != nil && len(aggs) != len(rep.aggs) {
			// Checkpoints of one job all describe the same item vector; an
			// arity flip mid-log means records from a different job (or a
			// rewritten spec) were spliced in. Merging across the flip would
			// attribute aggregates to the wrong items.
			return nil, fmt.Errorf("jobs: WAL record %d carries %d item aggregates, earlier records carry %d", rec.Seq, len(aggs), len(rep.aggs))
		}
		unsealOK := true
		for _, a := range aggs {
			if a == nil || a.unseal() != nil {
				unsealOK = false
				break
			}
		}
		if !unsealOK {
			rep.truncated = true
			break
		}
		for _, s := range rec.Seeds {
			if s < 0 || seen[s] {
				return nil, fmt.Errorf("jobs: WAL record %d repeats or corrupts seed %d", rec.Seq, s)
			}
			seen[s] = true
			rep.doneSeeds = append(rep.doneSeeds, s)
		}
		rep.aggs = aggs
		rep.lastSeq = rec.Seq
		rep.enumMS = rec.EnumMS
		rep.validBytes += int64(idx) + 1
		rest = rest[idx+1:]
	}
	return rep, nil
}
