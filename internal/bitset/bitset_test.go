package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) false after Add", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) true after Remove")
	}
	if s.Count() != 7 {
		t.Fatalf("Count = %d, want 7", s.Count())
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("not empty after Clear")
	}
}

func TestFillTrimsTail(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Fatalf("n=%d: Fill count = %d", n, s.Count())
		}
	}
}

func TestNextAndForEach(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 130, 199}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	for i := s.Next(0); i != -1; i = s.Next(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("Next walk = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Next walk = %v, want %v", got, want)
		}
	}
	got = got[:0]
	s.ForEach(func(i int) { got = append(got, i) })
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ForEach = %v, want %v", got, want)
		}
	}
	if s.Next(200) != -1 {
		t.Fatal("Next past capacity should be -1")
	}
	if s.Any() != 3 {
		t.Fatalf("Any = %d, want 3", s.Any())
	}
}

func TestForEachRemoveCurrent(t *testing.T) {
	s := New(128)
	for i := 0; i < 128; i += 3 {
		s.Add(i)
	}
	// Removing the current bit during iteration must still visit all bits.
	visited := 0
	s.ForEach(func(i int) {
		visited++
		s.Remove(i)
	})
	if visited != 43 {
		t.Fatalf("visited %d bits, want 43", visited)
	}
	if !s.Empty() {
		t.Fatal("set should be empty after removing every visited bit")
	}
}

func TestSetAlgebra(t *testing.T) {
	mk := func(bits ...int) *Set {
		s := New(100)
		for _, b := range bits {
			s.Add(b)
		}
		return s
	}
	a := mk(1, 2, 3, 70)
	b := mk(2, 3, 4, 99)

	and := a.Clone()
	and.And(b)
	if got := and.Slice(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("And = %v", got)
	}
	or := a.Clone()
	or.Or(b)
	if or.Count() != 6 {
		t.Fatalf("Or count = %d", or.Count())
	}
	diff := a.Clone()
	diff.AndNot(b)
	if got := diff.Slice(); len(got) != 2 || got[0] != 1 || got[1] != 70 {
		t.Fatalf("AndNot = %v", got)
	}
	if a.IntersectionCount(b) != 2 {
		t.Fatalf("IntersectionCount = %d", a.IntersectionCount(b))
	}
	if a.DifferenceCount(b) != 2 {
		t.Fatalf("DifferenceCount = %d", a.DifferenceCount(b))
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects false")
	}
	if a.Intersects(mk(50, 51)) {
		t.Fatal("Intersects true for disjoint sets")
	}
	if !mk(2, 3).IsSubset(a) {
		t.Fatal("IsSubset false for subset")
	}
	if mk(2, 5).IsSubset(a) {
		t.Fatal("IsSubset true for non-subset")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("Equal false for clone")
	}
	if a.Equal(b) {
		t.Fatal("Equal true for different sets")
	}
}

func TestAndCountInto(t *testing.T) {
	a, b, dst := New(100), New(100), New(100)
	for i := 0; i < 100; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Add(i)
	}
	n := AndCountInto(dst, a, b)
	want := 0
	for i := 0; i < 100; i += 6 {
		want++
	}
	if n != want || dst.Count() != want {
		t.Fatalf("AndCountInto = %d (dst %d), want %d", n, dst.Count(), want)
	}
}

func TestCopyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Copy with mismatched capacity should panic")
		}
	}()
	New(10).Copy(New(20))
}

func TestArena(t *testing.T) {
	a := NewArena(70, 3)
	rows := []*Set{a.New(), a.New(), a.New(), a.New(), a.New()} // 2 overflow
	for i, r := range rows {
		r.Add(i)
		r.Add(69)
	}
	for i, r := range rows {
		if !r.Contains(i) || !r.Contains(69) || r.Count() != 2 {
			t.Fatalf("row %d corrupted: %v", i, r)
		}
		for j := range rows {
			if j != i && j != 69 && r.Contains(j) && j < 69 {
				t.Fatalf("row %d contains foreign bit %d", i, j)
			}
		}
	}
}

// TestQuickAgainstMap property-checks the bitset against a map-based model
// under a random operation sequence.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		s := New(n)
		model := make(map[int]bool)
		for op := 0; op < 500; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Add(i)
				model[i] = true
			case 1:
				s.Remove(i)
				delete(model, i)
			default:
				if s.Contains(i) != model[i] {
					return false
				}
			}
		}
		if s.Count() != len(model) {
			return false
		}
		for i := range model {
			if !s.Contains(i) {
				return false
			}
		}
		ok := true
		s.ForEach(func(i int) {
			if !model[i] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAlgebraLaws property-checks De Morgan-style identities relating
// the counting helpers.
func TestQuickAlgebraLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Add(i)
			}
			if rng.Intn(2) == 0 {
				b.Add(i)
			}
		}
		// |a| = |a∩b| + |a−b|
		if a.Count() != a.IntersectionCount(b)+a.DifferenceCount(b) {
			return false
		}
		// |a∪b| = |a| + |b| − |a∩b|
		u := a.Clone()
		u.Or(b)
		if u.Count() != a.Count()+b.Count()-a.IntersectionCount(b) {
			return false
		}
		// subset ⇔ a−b = ∅
		if a.IsSubset(b) != (a.DifferenceCount(b) == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntersectionCount(b *testing.B) {
	a, c := New(4096), New(4096)
	for i := 0; i < 4096; i += 3 {
		a.Add(i)
	}
	for i := 0; i < 4096; i += 5 {
		c.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.IntersectionCount(c)
	}
}
