// Package bitset provides a dense, fixed-capacity bitset used as the
// adjacency-row representation for seed subgraphs. Seed subgraphs G_i are
// small (|V_i| is bounded by the degeneracy-based analysis in the paper) and
// dense, so a flat []uint64 per vertex gives O(|V_i|/64) set algebra, which
// is what the paper's "adjacency matrix" representation of G_i amounts to.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bitset. The zero value is an empty set with
// capacity 0; use New to create one with room for n bits. Bits at positions
// >= the capacity passed to New must not be set.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set with capacity for bits [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity in bits (not the number of set bits; see Count).
func (s *Set) Len() int { return s.n }

// Words exposes the backing words for read-only iteration by hot loops.
func (s *Set) Words() []uint64 { return s.words }

// Add sets bit i.
func (s *Set) Add(i int) { s.words[i>>6] |= 1 << uint(i&63) }

// Remove clears bit i.
func (s *Set) Remove(i int) { s.words[i>>6] &^= 1 << uint(i&63) }

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool { return s.words[i>>6]&(1<<uint(i&63)) != 0 }

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all bits.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets all bits in [0, Len()).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim clears the unused high bits of the last word so Count and Empty stay
// correct after Fill/FlipAll.
func (s *Set) trim() {
	if r := uint(s.n & 63); r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << r) - 1
	}
}

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// Copy overwrites s with src. The two sets must have equal capacity.
func (s *Set) Copy(src *Set) {
	if s.n != src.n {
		panic("bitset: Copy capacity mismatch")
	}
	copy(s.words, src.words)
}

// And sets s = s ∩ t.
func (s *Set) And(t *Set) {
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// Or sets s = s ∪ t.
func (s *Set) Or(t *Set) {
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// AndNot sets s = s − t.
func (s *Set) AndNot(t *Set) {
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// IntersectionCount returns |s ∩ t| without allocating.
func (s *Set) IntersectionCount(t *Set) int {
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & t.words[i])
	}
	return c
}

// CountUpto returns the number of set bits strictly below position i. Seed
// graphs keep the candidate space in the local-id prefix [0, nv), so a
// vertex's candidate-space degree is adj.CountUpto(nv) — no mask bitset
// needed.
func (s *Set) CountUpto(i int) int {
	if i <= 0 {
		return 0
	}
	if i >= s.n {
		return s.Count()
	}
	c := 0
	for wi := 0; wi < i>>6; wi++ {
		c += bits.OnesCount64(s.words[wi])
	}
	if r := uint(i & 63); r != 0 {
		c += bits.OnesCount64(s.words[i>>6] & ((1 << r) - 1))
	}
	return c
}

// IntersectionCountPrefix returns |s ∩ t| counting only the first w words
// (bits 0..64w-1). Callers that know all relevant bits live in a prefix of
// the domain (e.g. candidate-space bits in a seed graph) use this to skip
// the guaranteed-empty tail.
func (s *Set) IntersectionCountPrefix(t *Set, w int) int {
	if w > len(s.words) {
		w = len(s.words)
	}
	c := 0
	for i := 0; i < w; i++ {
		c += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return c
}

// IsSubsetPrefix reports whether s ⊆ t considering only the first w words.
func (s *Set) IsSubsetPrefix(t *Set, w int) bool {
	if w > len(s.words) {
		w = len(s.words)
	}
	for i := 0; i < w; i++ {
		if s.words[i]&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ t is non-empty.
func (s *Set) Intersects(t *Set) bool {
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// DifferenceCount returns |s − t|.
func (s *Set) DifferenceCount(t *Set) int {
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w &^ t.words[i])
	}
	return c
}

// IsSubset reports whether s ⊆ t.
func (s *Set) IsSubset(t *Set) bool {
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same bits.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// Next returns the smallest set bit >= i, or -1 if none exists.
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i >> 6
	w := s.words[wi] >> uint(i&63)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi<<6 + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// ForEach calls f for every set bit in ascending order. Iteration uses the
// words directly and is safe against f mutating bits at or before the
// current position.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Any returns an arbitrary set bit (the smallest), or -1 if the set is empty.
func (s *Set) Any() int { return s.Next(0) }

// AppendTo appends the positions of all set bits to dst and returns it.
func (s *Set) AppendTo(dst []int) []int {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// Slice returns the set bits as a fresh sorted slice.
func (s *Set) Slice() []int { return s.AppendTo(make([]int, 0, s.Count())) }

// String renders the set as {a, b, c} for debugging and test failure output.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

// AndCountInto stores s ∩ t into dst (which must have the same capacity) and
// returns the size of the intersection. It fuses Copy+And+Count for the hot
// common-neighbour computations in seed-graph pruning.
func AndCountInto(dst, s, t *Set) int {
	c := 0
	for i := range dst.words {
		w := s.words[i] & t.words[i]
		dst.words[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// Arena allocates bitsets of one fixed capacity from contiguous backing
// storage. Seed subgraph adjacency matrices use an arena so that a |V_i|×|V_i|
// matrix is one allocation, improving cache locality during branching (the
// property the paper's stage-based parallel layout is designed around).
//
// An arena is resettable: Reset re-dimensions it for the next seed graph
// while reusing both the word storage and the Set headers, so a warmed-up
// arena hands out rows without touching the heap — the property the
// zero-allocation seed-build pipeline is built on. Rows handed out before a
// Reset alias storage the reset recycles; callers must not Reset an arena
// whose previous rows are still live.
type Arena struct {
	n     int
	wpr   int // words per row
	store []uint64
	sets  []Set // pooled headers, one per handed-out row
	rows  int   // rows handed out since the last Reset
}

// NewArena returns an arena producing bitsets of capacity n, pre-sized for
// rows row bitsets.
func NewArena(n, rows int) *Arena {
	a := &Arena{}
	a.Reset(n, rows)
	return a
}

// Reset re-dimensions the arena for rows bitsets of capacity n, recycling
// the backing storage and headers of previous generations. All words are
// zeroed, so every subsequent New returns an empty set. Allocation happens
// only when the requested footprint exceeds every earlier one.
func (a *Arena) Reset(n, rows int) {
	if n < 0 || rows < 0 {
		panic("bitset: negative arena dimensions")
	}
	wpr := (n + wordBits - 1) / wordBits
	need := wpr * rows
	if cap(a.store) < need {
		a.store = make([]uint64, need)
	} else {
		a.store = a.store[:need]
		clear(a.store)
	}
	if cap(a.sets) < rows {
		a.sets = make([]Set, rows)
	} else {
		a.sets = a.sets[:rows]
	}
	a.n, a.wpr, a.rows = n, wpr, 0
}

// New returns a fresh empty bitset of the arena's capacity. Rows allocated
// within the pre-sized capacity share one backing array; rows beyond it fall
// back to individual allocations (earlier rows remain valid either way).
func (a *Arena) New() *Set {
	if a.rows >= len(a.sets) {
		return &Set{words: make([]uint64, a.wpr), n: a.n}
	}
	off := a.rows * a.wpr
	s := &a.sets[a.rows]
	a.rows++
	*s = Set{words: a.store[off : off+a.wpr : off+a.wpr], n: a.n}
	return s
}
