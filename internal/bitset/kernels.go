package bitset

import "math/bits"

// Row-major word-slice kernels. The Set methods above operate through a
// header indirection per call; the hot loops of the seed pipeline (the
// Corollary-5.2 peel during seed-graph construction, the refine/pivot
// intersections of Branch) instead run on raw []uint64 rows carved out of
// an Arena, so one adjacency matrix is one contiguous allocation and the
// innermost operation is a straight-line AND/popcount sweep — the
// word-parallel formulation of the paper's "adjacency matrix of G_i".
//
// All kernels operate over min(len(a), len(b)) words; callers pass rows
// pre-sliced to the word prefix they care about (e.g. the candidate-space
// prefix of a seed graph). They are the bit-parallel counterparts of the
// merge-based graph.CountCommon / graph.IntersectTo contract: nil and
// empty slices are valid and behave as empty sets, and AndTo tolerates
// dst aliasing either input (word i is read before it is written).

// AndCount returns popcount(a & b), the bit-parallel |a ∩ b|. The 4-way
// unroll keeps the popcounts independent so they pipeline; the tail loop
// covers the last 0-3 words.
func AndCount(a, b []uint64) int {
	n := min(len(a), len(b))
	a, b = a[:n], b[:n]
	c := 0
	i := 0
	for ; i+4 <= n; i += 4 {
		c += bits.OnesCount64(a[i]&b[i]) +
			bits.OnesCount64(a[i+1]&b[i+1]) +
			bits.OnesCount64(a[i+2]&b[i+2]) +
			bits.OnesCount64(a[i+3]&b[i+3])
	}
	for ; i < n; i++ {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

// AndTo stores a & b into dst and returns popcount(a & b). dst must have
// at least min(len(a), len(b)) words; it may alias a or b (each word is
// read before it is written), matching the in-place tolerance documented
// for graph.IntersectTo.
func AndTo(dst, a, b []uint64) int {
	n := min(len(a), len(b))
	a, b = a[:n], b[:n]
	dst = dst[:n]
	c := 0
	for i := 0; i < n; i++ {
		w := a[i] & b[i]
		dst[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// Subset reports whether a ⊆ b over min(len(a), len(b)) words.
func Subset(a, b []uint64) bool {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i]&^b[i] != 0 {
			return false
		}
	}
	return true
}

// Peel runs the Corollary-5.2 style degeneracy peel over a row-major
// adjacency matrix: rows holds n rows of stride words each (row i =
// neighbours of vertex i as a bitset over [0, n)), alive is a stride-word
// bitset of the vertices still in play. Vertices whose surviving-neighbour
// count |row_i ∩ alive| falls below thr are removed, to a fixed point;
// alive is updated in place and the surviving count is returned.
//
// The count is a branchless AND/popcount sweep per row; rounds repeat only
// while the previous round removed something, so the worst case is
// O(n²/64) words per round × O(n) rounds, with dense seed graphs
// converging in 2-3 rounds in practice. A non-positive thr never removes
// anything.
func Peel(rows []uint64, stride, n int, alive []uint64, thr int) int {
	live := AndCount(alive, alive) // popcount via self-AND
	if thr <= 0 || live == 0 {
		return live
	}
	for changed := true; changed; {
		changed = false
		for wi := 0; wi < stride; wi++ {
			w := alive[wi]
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &= w - 1
				i := wi<<6 + b
				if AndCount(rows[i*stride:(i+1)*stride], alive) < thr {
					alive[wi] &^= 1 << uint(b)
					live--
					changed = true
				}
			}
		}
	}
	return live
}

// Rows exposes the arena's contiguous backing words: row i (for i within
// the pre-sized capacity) occupies words [i*WordsPerRow(), (i+1)*
// WordsPerRow()). The matrix kernels (Peel, AndCount over row slices)
// index it directly, skipping the Set header indirection.
func (a *Arena) Rows() []uint64 { return a.store }

// WordsPerRow returns the arena's row stride in 64-bit words.
func (a *Arena) WordsPerRow() int { return a.wpr }
