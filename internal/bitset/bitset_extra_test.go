package bitset

import (
	"strings"
	"testing"
)

func setOf(n int, elems ...int) *Set {
	s := New(n)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

func TestString(t *testing.T) {
	s := setOf(70, 0, 3, 68)
	got := s.String()
	for _, want := range []string{"0", "3", "68"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %s", got, want)
		}
	}
	if empty := New(10).String(); !strings.Contains(empty, "{") {
		t.Errorf("empty String() = %q", empty)
	}
}

func TestDifferenceCount(t *testing.T) {
	a := setOf(100, 1, 2, 3, 64, 65)
	b := setOf(100, 2, 64, 99)
	if got := a.DifferenceCount(b); got != 3 {
		t.Errorf("DifferenceCount = %d, want 3 (elements 1, 3, 65)", got)
	}
	if got := b.DifferenceCount(a); got != 1 {
		t.Errorf("reverse DifferenceCount = %d, want 1 (element 99)", got)
	}
}

func TestIntersectsAndSubset(t *testing.T) {
	a := setOf(130, 5, 100)
	b := setOf(130, 100)
	c := setOf(130, 6, 7)
	if !a.Intersects(b) || a.Intersects(c) {
		t.Error("Intersects wrong")
	}
	if !b.IsSubset(a) || a.IsSubset(b) {
		t.Error("IsSubset wrong")
	}
	if !New(130).IsSubset(a) {
		t.Error("empty set must be a subset of anything")
	}
}

func TestSliceAndWords(t *testing.T) {
	a := setOf(200, 0, 63, 64, 199)
	got := a.Slice()
	want := []int{0, 63, 64, 199}
	if len(got) != len(want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Slice[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if len(a.Words()) != (200+63)/64 {
		t.Errorf("Words() has %d words, want %d", len(a.Words()), (200+63)/64)
	}
	if a.Len() != 200 {
		t.Errorf("Len = %d, want 200", a.Len())
	}
}

func TestEqualSets(t *testing.T) {
	a := setOf(80, 1, 70)
	b := setOf(80, 1, 70)
	if !a.Equal(b) {
		t.Error("identical sets not Equal")
	}
	b.Add(2)
	if a.Equal(b) {
		t.Error("different sets Equal")
	}
}

func TestAnyOnEmpty(t *testing.T) {
	if got := New(64).Any(); got != -1 {
		t.Errorf("Any on empty = %d, want -1", got)
	}
	if got := setOf(64, 63).Any(); got != 63 {
		t.Errorf("Any = %d, want 63", got)
	}
}

func TestIsSubsetPrefixBoundary(t *testing.T) {
	// Bits beyond the prefix must be ignored.
	a := setOf(128, 2, 100) // 100 lives in word 1, outside prefix 1
	b := setOf(128, 2)
	if !a.IsSubsetPrefix(b, 1) {
		t.Error("prefix subset should ignore bits past the prefix")
	}
	if a.IsSubset(b) {
		t.Error("full subset should see bit 100")
	}
}

func TestIntersectionCountPrefixBoundary(t *testing.T) {
	a := setOf(128, 1, 2, 100)
	b := setOf(128, 2, 100)
	if got := a.IntersectionCountPrefix(b, 1); got != 1 {
		t.Errorf("prefix intersection = %d, want 1", got)
	}
	if got := a.IntersectionCount(b); got != 2 {
		t.Errorf("full intersection = %d, want 2", got)
	}
}

func TestAppendToReusesDst(t *testing.T) {
	s := setOf(64, 3, 5)
	buf := make([]int, 0, 8)
	out := s.AppendTo(buf)
	if len(out) != 2 || out[0] != 3 || out[1] != 5 {
		t.Errorf("AppendTo = %v", out)
	}
	out2 := s.AppendTo(out)
	if len(out2) != 4 {
		t.Errorf("AppendTo should append, got %v", out2)
	}
}
