package bitset

import "testing"

func TestCountUpto(t *testing.T) {
	s := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		s.Add(i)
	}
	for _, tc := range []struct{ upto, want int }{
		{0, 0}, {1, 1}, {2, 2}, {63, 2}, {64, 3}, {65, 4}, {66, 5},
		{128, 6}, {129, 7}, {199, 7}, {200, 8}, {500, 8},
	} {
		if got := s.CountUpto(tc.upto); got != tc.want {
			t.Errorf("CountUpto(%d) = %d, want %d", tc.upto, got, tc.want)
		}
	}
	if got := s.CountUpto(-3); got != 0 {
		t.Errorf("CountUpto(-3) = %d, want 0", got)
	}
}

// TestArenaReset pins the recycling contract the seed pipeline depends on:
// after a Reset every row comes back empty, the previous generation's
// words do not leak into the new one, and re-dimensioning within the
// high-water footprint performs no allocation.
func TestArenaReset(t *testing.T) {
	a := NewArena(100, 4)
	r0 := a.New()
	r0.Fill()
	r1 := a.New()
	r1.Add(99)

	a.Reset(70, 3)
	for i := 0; i < 3; i++ {
		row := a.New()
		if row.Len() != 70 {
			t.Fatalf("row %d capacity %d, want 70", i, row.Len())
		}
		if !row.Empty() {
			t.Fatalf("row %d not empty after Reset: %v", i, row)
		}
		row.Add(i) // dirty it for the next generation's check
	}

	// Shrinking and growing within the first generation's footprint must
	// reuse storage; only exceeding it may allocate.
	allocs := testing.AllocsPerRun(100, func() {
		a.Reset(100, 4)
		for i := 0; i < 4; i++ {
			if !a.New().Empty() {
				t.Fatal("recycled row not empty")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("Reset within footprint allocates %.1f objects/op, want 0", allocs)
	}
}

// TestArenaOverflowRows pins the fallback: rows beyond the pre-sized count
// still work (individually allocated), and earlier rows stay valid.
func TestArenaOverflowRows(t *testing.T) {
	a := NewArena(64, 1)
	first := a.New()
	first.Add(3)
	extra := a.New()
	extra.Add(5)
	if !first.Contains(3) || first.Contains(5) {
		t.Fatal("pre-sized row corrupted by overflow row")
	}
	if !extra.Contains(5) {
		t.Fatal("overflow row lost its bit")
	}
}
