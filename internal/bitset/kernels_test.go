package bitset

import (
	"math/bits"
	"math/rand"
	"testing"
)

func randWords(r *rand.Rand, n int) []uint64 {
	w := make([]uint64, n)
	for i := range w {
		w[i] = r.Uint64()
	}
	return w
}

func naiveAndCount(a, b []uint64) int {
	n := min(len(a), len(b))
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

func TestAndCountDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 33, 100} {
		a, b := randWords(r, n), randWords(r, n)
		if got, want := AndCount(a, b), naiveAndCount(a, b); got != want {
			t.Fatalf("AndCount n=%d: got %d want %d", n, got, want)
		}
	}
	// Mismatched lengths truncate to the shorter operand.
	a, b := randWords(r, 10), randWords(r, 4)
	if got, want := AndCount(a, b), naiveAndCount(a, b); got != want {
		t.Fatalf("AndCount mismatched: got %d want %d", got, want)
	}
	if AndCount(nil, a) != 0 || AndCount(a, nil) != 0 || AndCount(nil, nil) != 0 {
		t.Fatal("AndCount with nil operand must be 0")
	}
}

func TestAndTo(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 3, 8, 17, 64} {
		a, b := randWords(r, n), randWords(r, n)
		dst := make([]uint64, n)
		c := AndTo(dst, a, b)
		if want := naiveAndCount(a, b); c != want {
			t.Fatalf("AndTo n=%d count: got %d want %d", n, c, want)
		}
		for i := range dst {
			if dst[i] != a[i]&b[i] {
				t.Fatalf("AndTo n=%d word %d: got %x want %x", n, i, dst[i], a[i]&b[i])
			}
		}
	}
}

func TestAndToAliasing(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a, b := randWords(r, 20), randWords(r, 20)
	want := make([]uint64, 20)
	wc := AndTo(want, a, b)

	// dst aliases a.
	a1 := append([]uint64(nil), a...)
	if c := AndTo(a1, a1, b); c != wc {
		t.Fatalf("AndTo dst=a count: got %d want %d", c, wc)
	}
	for i := range a1 {
		if a1[i] != want[i] {
			t.Fatalf("AndTo dst=a word %d: got %x want %x", i, a1[i], want[i])
		}
	}

	// dst aliases b.
	b1 := append([]uint64(nil), b...)
	if c := AndTo(b1, a, b1); c != wc {
		t.Fatalf("AndTo dst=b count: got %d want %d", c, wc)
	}
	for i := range b1 {
		if b1[i] != want[i] {
			t.Fatalf("AndTo dst=b word %d: got %x want %x", i, b1[i], want[i])
		}
	}
}

func TestSubset(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 5, 16} {
		b := randWords(r, n)
		a := make([]uint64, n)
		for i := range a {
			a[i] = b[i] & r.Uint64() // subset of b by construction
		}
		if !Subset(a, b) {
			t.Fatalf("n=%d: constructed subset rejected", n)
		}
		if n > 0 {
			// Flip a bit that is clear in b.
			for i := range a {
				if free := ^b[i]; free != 0 {
					a[i] |= free & (^free + 1)
					break
				}
			}
			if Subset(a, b) {
				t.Fatalf("n=%d: non-subset accepted", n)
			}
		}
	}
	if !Subset(nil, nil) || !Subset(nil, []uint64{1}) {
		t.Fatal("empty set must be subset of anything")
	}
}

// naivePeel removes vertices with fewer than thr surviving neighbours,
// recomputing all degrees from scratch every round.
func naivePeel(adj [][]bool, alive []bool, thr int) int {
	n := len(adj)
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			d := 0
			for j := 0; j < n; j++ {
				if alive[j] && adj[i][j] {
					d++
				}
			}
			if d < thr {
				alive[i] = false
				changed = true
			}
		}
	}
	c := 0
	for _, a := range alive {
		if a {
			c++
		}
	}
	return c
}

func TestPeelDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(130)
		p := r.Float64()
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < p {
					adj[i][j], adj[j][i] = true, true
				}
			}
		}
		stride := (n + 63) / 64
		rows := make([]uint64, n*stride)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if adj[i][j] {
					rows[i*stride+j>>6] |= 1 << uint(j&63)
				}
			}
		}
		aliveBool := make([]bool, n)
		alive := make([]uint64, stride)
		for i := 0; i < n; i++ {
			if r.Intn(8) != 0 { // mostly alive, some pre-removed
				aliveBool[i] = true
				alive[i>>6] |= 1 << uint(i&63)
			}
		}
		thr := r.Intn(8)

		got := Peel(rows, stride, n, alive, thr)
		want := naivePeel(adj, aliveBool, thr)
		if got != want {
			t.Fatalf("trial %d (n=%d thr=%d): survivors got %d want %d", trial, n, thr, got, want)
		}
		for i := 0; i < n; i++ {
			if aliveBool[i] != (alive[i>>6]&(1<<uint(i&63)) != 0) {
				t.Fatalf("trial %d: vertex %d alive mismatch", trial, i)
			}
		}
	}
}

func TestPeelNonPositiveThreshold(t *testing.T) {
	alive := []uint64{0b1011}
	rows := make([]uint64, 4) // no edges at all
	if got := Peel(rows, 1, 4, alive, 0); got != 3 {
		t.Fatalf("thr=0 must keep everyone: got %d", got)
	}
	if alive[0] != 0b1011 {
		t.Fatalf("thr=0 mutated alive: %b", alive[0])
	}
}

func TestArenaRowsAccessors(t *testing.T) {
	var a Arena
	a.Reset(130, 5)
	if a.WordsPerRow() != 3 {
		t.Fatalf("WordsPerRow: got %d want 3", a.WordsPerRow())
	}
	if len(a.Rows()) < 5*3 {
		t.Fatalf("Rows: got %d words, want >= 15", len(a.Rows()))
	}
	s := a.New()
	s.Add(129)
	// Row 0 of the backing store is the set just carved.
	if a.Rows()[2] != 1<<uint(129-128) {
		t.Fatalf("Rows backing mismatch: %x", a.Rows()[2])
	}
}

func BenchmarkAndCount(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	x, y := randWords(r, 64), randWords(r, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkInt = AndCount(x, y)
	}
}

var sinkInt int
