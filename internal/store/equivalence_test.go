package store

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kplex"
)

// plexSetDigest is an order-independent digest of an enumeration's result
// set: sha256 each sorted plex, XOR the hashes. Delivery order differs
// between schedulers and between backends, so equality of this digest is
// equality of the result sets themselves.
type plexSetDigest struct {
	mu  sync.Mutex
	acc [32]byte
	n   int64
}

func (d *plexSetDigest) add(plex []int) {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	for _, v := range plex {
		w := binary.PutUvarint(buf[:], uint64(v))
		h.Write(buf[:w])
	}
	var one [32]byte
	h.Sum(one[:0])
	d.mu.Lock()
	for i := range d.acc {
		d.acc[i] ^= one[i]
	}
	d.n++
	d.mu.Unlock()
}

func (d *plexSetDigest) hex() string { return hex.EncodeToString(d.acc[:]) }

// TestMmapExecutionEquivalence is the golden grid of this package: for a
// slice of the regression corpus, every (k, q) cell and every scheduler,
// the mmap-backed Reader must produce byte-identical results — count,
// top-k sets and the order-independent plex-set digest — to the in-memory
// graph the file was written from. This is the acceptance property of the
// whole store: the engine cannot tell the backends apart.
func TestMmapExecutionEquivalence(t *testing.T) {
	graphs := []string{"planted-a", "sbm-blocks", "gnp-dense", "chunglu-tail"}
	cells := []struct{ k, q int }{{2, 6}, {3, 8}}
	schedulers := []kplex.SchedulerStyle{
		kplex.SchedulerStages, kplex.SchedulerGlobalQueue, kplex.SchedulerSteal,
	}
	for _, name := range graphs {
		g := gen.CorpusGraphByName(name).Build()
		// A tiny block size and cache force real block churn during the run.
		path := filepath.Join(t.TempDir(), name+".kpg")
		if err := WriteGraphFile(path, g, 64); err != nil {
			t.Fatal(err)
		}
		r, err := OpenFileCache(path, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		for _, cell := range cells {
			for _, sched := range schedulers {
				opts := kplex.Options{
					K: cell.k, Q: cell.q, UseCTCP: true,
					Threads: 4, Scheduler: sched,
				}
				var memSet, mmapSet plexSetDigest
				memOpts, mmapOpts := opts, opts
				memOpts.OnPlex = memSet.add
				mmapOpts.OnPlex = mmapSet.add

				memRes, err := kplex.Run(context.Background(), g, memOpts)
				if err != nil {
					t.Fatal(err)
				}
				mmapRes, err := kplex.Run(context.Background(), r, mmapOpts)
				if err != nil {
					t.Fatal(err)
				}
				tag := name + "/" + sched.String() + "/" + "kq"
				if memRes.Count != mmapRes.Count {
					t.Errorf("%s k=%d q=%d: count mmap=%d mem=%d", tag, cell.k, cell.q, mmapRes.Count, memRes.Count)
				}
				if memSet.hex() != mmapSet.hex() {
					t.Errorf("%s k=%d q=%d: plex-set digest differs (mmap %s, mem %s)",
						tag, cell.k, cell.q, mmapSet.hex()[:16], memSet.hex()[:16])
				}

				memTop, _, err := kplex.EnumerateTopK(context.Background(), g, opts, 5)
				if err != nil {
					t.Fatal(err)
				}
				mmapTop, _, err := kplex.EnumerateTopK(context.Background(), r, opts, 5)
				if err != nil {
					t.Fatal(err)
				}
				if len(memTop) != len(mmapTop) {
					t.Fatalf("%s k=%d q=%d: topk lengths differ", tag, cell.k, cell.q)
				}
				for i := range memTop {
					if len(memTop[i]) != len(mmapTop[i]) {
						t.Errorf("%s k=%d q=%d: topk[%d] sizes differ (%d vs %d)",
							tag, cell.k, cell.q, i, len(mmapTop[i]), len(memTop[i]))
					}
				}
			}
		}
	}
}

// A handle prepared from the mmap backend must equal one prepared in
// memory all the way down to its serialized bytes — the property that
// lets the catalog persist a prologue computed against either backend.
func TestPrepareEquivalentAcrossBackends(t *testing.T) {
	g := gen.CorpusGraphByName("planted-a").Build()
	path := filepath.Join(t.TempDir(), "p.kpg")
	if err := WriteGraphFile(path, g, 32); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	opts := kplex.Options{K: 2, Q: 6, UseCTCP: true}
	pMem, err := kplex.Prepare(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	pMap, err := kplex.Prepare(r, opts)
	if err != nil {
		t.Fatal(err)
	}
	d := graph.Digest(g)
	if string(kplex.MarshalPrepared(pMem, d)) != string(kplex.MarshalPrepared(pMap, d)) {
		t.Fatal("prologues prepared from the two backends serialize differently")
	}
}
