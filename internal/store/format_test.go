package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func writeTestGraph(t *testing.T, g graph.CSR, blockVerts int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.kpg")
	if err := WriteGraphFile(path, g, blockVerts); err != nil {
		t.Fatalf("WriteGraphFile: %v", err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	for _, blockVerts := range []int{1, 7, 64, 4096} {
		g := gen.GNP(300, 0.05, 7)
		path := writeTestGraph(t, g, blockVerts)
		r, err := OpenFile(path)
		if err != nil {
			t.Fatalf("block=%d: OpenFile: %v", blockVerts, err)
		}
		if r.N() != g.N() || r.M() != g.M() {
			t.Fatalf("block=%d: got n=%d m=%d, want n=%d m=%d", blockVerts, r.N(), r.M(), g.N(), g.M())
		}
		if r.MaxDegree() != g.MaxDegree() {
			t.Errorf("block=%d: MaxDegree = %d, want %d", blockVerts, r.MaxDegree(), g.MaxDegree())
		}
		for v := 0; v < g.N(); v++ {
			if got, want := r.Neighbors(v), g.Neighbors(v); !equalRows(got, want) {
				t.Fatalf("block=%d: Neighbors(%d) = %v, want %v", blockVerts, v, got, want)
			}
			if r.Degree(v) != g.Degree(v) {
				t.Fatalf("block=%d: Degree(%d) = %d, want %d", blockVerts, v, r.Degree(v), g.Degree(v))
			}
		}
		if err := r.VerifyDigest(); err != nil {
			t.Errorf("block=%d: VerifyDigest: %v", blockVerts, err)
		}
		r.Close()
	}
}

func equalRows(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The store digest must equal the in-memory graph's canonical digest —
// the interop property every cache key and handshake relies on.
func TestStoredDigestMatchesGraphDigest(t *testing.T) {
	g := gen.ChungLu(500, 9, 2.4, 11)
	r, err := OpenFile(writeTestGraph(t, g, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.StoredDigest() != graph.Digest(g) {
		t.Fatalf("stored digest %x != graph digest %x", r.StoredDigest(), graph.Digest(g))
	}
	if graph.DigestOf(r) != graph.Digest(g) {
		t.Fatalf("DigestOf(reader) rehashed or mismatched")
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		var b graph.Builder
		if n == 2 {
			b.AddEdge(0, 1)
		}
		gg, err := b.Build(n)
		if err != nil {
			t.Fatal(err)
		}
		r, err := OpenFile(writeTestGraph(t, gg, 0))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if r.N() != n || r.M() != gg.M() {
			t.Errorf("n=%d: got n=%d m=%d", n, r.N(), r.M())
		}
		if err := r.VerifyDigest(); err != nil {
			t.Errorf("n=%d: VerifyDigest: %v", n, err)
		}
		r.Close()
	}
}

func TestOpenRejectsTruncated(t *testing.T) {
	g := gen.GNP(100, 0.1, 3)
	path := writeTestGraph(t, g, 16)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{0, 8, headerSize - 1, headerSize, pageSize, len(raw) - 1} {
		if size >= len(raw) {
			continue
		}
		trunc := filepath.Join(t.TempDir(), "t.kpg")
		if err := os.WriteFile(trunc, raw[:size], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenFile(trunc); err == nil {
			t.Errorf("truncation to %d bytes: open succeeded, want error", size)
		}
	}
}

func TestOpenRejectsBadMagic(t *testing.T) {
	path := writeTestGraph(t, gen.GNP(50, 0.1, 3), 0)
	raw, _ := os.ReadFile(path)
	raw[0] ^= 0xff
	bad := filepath.Join(t.TempDir(), "bad.kpg")
	os.WriteFile(bad, raw, 0o644)
	_, err := OpenFile(bad)
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: err = %v, want magic rejection", err)
	}
}

func TestOpenRejectsFutureVersion(t *testing.T) {
	path := writeTestGraph(t, gen.GNP(50, 0.1, 3), 0)
	raw, _ := os.ReadFile(path)
	binary.LittleEndian.PutUint32(raw[8:], Version+1)
	// Re-seal the header CRC so only the version check can fire.
	resealHeader(raw)
	bad := filepath.Join(t.TempDir(), "future.kpg")
	os.WriteFile(bad, raw, 0o644)
	_, err := OpenFile(bad)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: err = %v, want version rejection", err)
	}
}

func TestOpenRejectsHeaderCorruption(t *testing.T) {
	path := writeTestGraph(t, gen.GNP(50, 0.1, 3), 0)
	raw, _ := os.ReadFile(path)
	raw[20] ^= 0x01 // flip a bit in n without re-sealing the CRC
	bad := filepath.Join(t.TempDir(), "crc.kpg")
	os.WriteFile(bad, raw, 0o644)
	if _, err := OpenFile(bad); err == nil {
		t.Fatal("corrupt header accepted, want CRC rejection")
	}
}

func TestVerifyDigestCatchesBlockCorruption(t *testing.T) {
	g := gen.GNP(200, 0.08, 5)
	path := writeTestGraph(t, g, 32)
	raw, _ := os.ReadFile(path)
	r0, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dataOff := r0.Header().DataOff
	r0.Close()
	// Flip a neighbour delta deep in the data region. The header (and its
	// CRC) stay intact, so open still succeeds — only the full verify scan
	// can see it.
	raw[int(dataOff)+10] ^= 0x01
	bad := filepath.Join(t.TempDir(), "blk.kpg")
	os.WriteFile(bad, raw, 0o644)
	r, err := OpenFile(bad)
	if err != nil {
		t.Fatalf("open after data corruption should succeed (header intact): %v", err)
	}
	defer r.Close()
	if err := r.VerifyDigest(); err == nil {
		t.Fatal("VerifyDigest accepted corrupted block data")
	}
}

// resealHeader recomputes the header CRC after a test mutates header
// fields, mirroring Header.encode's trailer.
func resealHeader(raw []byte) {
	binary.LittleEndian.PutUint32(raw[headerSize-4:headerSize],
		crc32.Checksum(raw[:headerSize-4], castagnoli))
}

func TestWriterRejectsBadRows(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		rows [][]int32
	}{
		{"descending", [][]int32{{2, 1}, nil, nil}},
		{"duplicate", [][]int32{{1, 1}, nil, nil}},
		{"out-of-range", [][]int32{{5}, nil, nil}},
		{"self-loop", [][]int32{{0}, nil, nil}},
	}
	for _, tc := range cases {
		w, err := Create(filepath.Join(dir, tc.name+".kpg"), 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		var rowErr error
		for _, row := range tc.rows {
			if rowErr = w.AddRow(row); rowErr != nil {
				break
			}
		}
		w.Abort()
		if rowErr == nil {
			t.Errorf("%s: AddRow accepted an invalid row", tc.name)
		}
	}
}

func TestWriterRejectsAsymmetry(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "asym.kpg"), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddRow([]int32{1}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddRow(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err == nil || !strings.Contains(err.Error(), "symmetric") {
		t.Fatalf("Finish on asymmetric adjacency: err = %v", err)
	}
}

func TestWriterAtomicRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.kpg")
	w, err := Create(path, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("final path exists before Finish")
	}
	w.AddRow([]int32{1}) //nolint:errcheck
	w.AddRow([]int32{0}) //nolint:errcheck
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("final path missing after Finish: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind after Finish")
	}
}

func TestClockCacheEvicts(t *testing.T) {
	g := gen.GNP(256, 0.05, 9)
	r, err := OpenFileCache(writeTestGraph(t, g, 8), 2) // 32 blocks, 2 slots
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Sweep twice; every row must stay correct while blocks churn through
	// the two slots, and slices handed out earlier must stay valid.
	first := r.Neighbors(0)
	firstCopy := append([]int32(nil), first...)
	for pass := 0; pass < 2; pass++ {
		for v := 0; v < g.N(); v++ {
			if !equalRows(r.Neighbors(v), g.Neighbors(v)) {
				t.Fatalf("pass %d: Neighbors(%d) wrong under eviction", pass, v)
			}
		}
	}
	if !equalRows(first, firstCopy) {
		t.Fatal("slice from an evicted block was corrupted")
	}
}

func TestBlockDecodeRejectsCorruption(t *testing.T) {
	// A valid two-vertex block: deg=1 nbr=1 / deg=1 nbr=0 over n=2.
	valid := appendRow(nil, []int32{1})
	valid = appendRow(valid, []int32{0})
	if _, err := decodeBlock(valid, 0, 2, 2); err != nil {
		t.Fatalf("valid block rejected: %v", err)
	}
	cases := map[string][]byte{
		"truncated":      valid[:len(valid)-1],
		"trailing":       append(append([]byte{}, valid...), 0x00),
		"degree-over-n":  {0x05, 0x01, 0x01, 0x00},
		"neighbour-oob":  {0x01, 0x03, 0x01, 0x00},
		"self-loop":      {0x01, 0x00, 0x01, 0x00},
		"dup-neighbour":  {0x02, 0x01, 0x00, 0x01, 0x00},
		"empty-nonempty": {},
	}
	for name, enc := range cases {
		if _, err := decodeBlock(enc, 0, 2, 2); err == nil {
			t.Errorf("%s: corrupt block accepted", name)
		}
	}
}

func TestUseAfterClosePanics(t *testing.T) {
	r, err := OpenFile(writeTestGraph(t, gen.GNP(50, 0.1, 3), 0))
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Neighbors after Close did not panic")
		}
	}()
	r.Neighbors(0)
}

func TestHeaderEncodeDecode(t *testing.T) {
	h := Header{
		Version: Version, Flags: flagDigest, N: 12345, M: 67890,
		BlockVerts: 2048, NumBlocks: 7, IndexOff: pageSize,
		DataOff: 2 * pageSize, DataLen: 999, MaxDeg: 321,
	}
	for i := range h.Digest {
		h.Digest[i] = byte(i)
	}
	enc := h.encode()
	// Pad to a plausible file so the extent checks pass.
	file := make([]byte, h.DataOff+h.DataLen)
	copy(file, enc)
	got, err := decodeHeader(file, uint64(len(file)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Digest[:], h.Digest[:]) || got.N != h.N || got.M != h.M ||
		got.BlockVerts != h.BlockVerts || got.NumBlocks != h.NumBlocks || got.MaxDeg != h.MaxDeg {
		t.Fatalf("decode mismatch: %+v != %+v", got, h)
	}
}
