package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestCatalogRegisterLookupOpen(t *testing.T) {
	dir := t.TempDir()
	g := gen.GNP(120, 0.08, 5)
	if err := WriteGraphFile(filepath.Join(dir, "gnp.kpg"), g, 0); err != nil {
		t.Fatal(err)
	}
	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The untracked file must have been adopted at open.
	e := cat.Lookup("gnp")
	if e == nil {
		t.Fatal("untracked .kpg not adopted at open")
	}
	if e.N != g.N() || e.M != int64(g.M()) || e.Digest != graph.DigestHexOf(g) {
		t.Fatalf("adopted entry %+v does not match source graph", e)
	}
	r, err := cat.OpenGraph("gnp")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if graph.DigestOf(r) != graph.Digest(g) {
		t.Fatal("served graph content differs")
	}
	if cat.Lookup("missing") != nil {
		t.Fatal("Lookup invented an entry")
	}
	if got := cat.List(); len(got) != 1 || got[0].Name != "gnp" {
		t.Fatalf("List = %+v", got)
	}
}

func TestCatalogPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	g := gen.GNP(60, 0.1, 9)
	if err := WriteGraphFile(filepath.Join(dir, "a.kpg"), g, 0); err != nil {
		t.Fatal(err)
	}
	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Register("served-as", "a.kpg"); err != nil {
		t.Fatal(err)
	}
	cat2, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cat2.Lookup("served-as") == nil {
		t.Fatal("registered name lost across reopen")
	}
}

func TestCatalogOpenGraphRejectsSwappedFile(t *testing.T) {
	dir := t.TempDir()
	if err := WriteGraphFile(filepath.Join(dir, "g.kpg"), gen.GNP(80, 0.1, 1), 0); err != nil {
		t.Fatal(err)
	}
	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Swap in a different graph under the same file name.
	if err := WriteGraphFile(filepath.Join(dir, "g.kpg"), gen.GNP(80, 0.1, 2), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.OpenGraph("g"); err == nil {
		t.Fatal("catalog served a file whose digest no longer matches the manifest")
	}
}

func TestCatalogDropsVanishedEntries(t *testing.T) {
	dir := t.TempDir()
	if err := WriteGraphFile(filepath.Join(dir, "gone.kpg"), gen.GNP(40, 0.1, 1), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCatalog(dir); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, "gone.kpg"))
	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Lookup("gone") != nil {
		t.Fatal("entry for a vanished file survived reopen")
	}
}

func TestCatalogIgnoresForeignKpg(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "junk.kpg"), []byte("not a store"), 0o644)
	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatalf("a junk .kpg must not fail catalog open: %v", err)
	}
	if cat.Lookup("junk") != nil {
		t.Fatal("junk file adopted")
	}
}

func TestCatalogPrologues(t *testing.T) {
	cat, err := OpenCatalog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	digest := graph.DigestHexOf(gen.GNP(10, 0.3, 1))
	if raw, err := cat.LoadPrologue(digest, 2, 6, true); err != nil || raw != nil {
		t.Fatalf("empty cell: raw=%v err=%v", raw, err)
	}
	payload := []byte("opaque prologue bytes")
	if err := cat.SavePrologue(digest, 2, 6, true, payload); err != nil {
		t.Fatal(err)
	}
	raw, err := cat.LoadPrologue(digest, 2, 6, true)
	if err != nil || string(raw) != string(payload) {
		t.Fatalf("round trip: raw=%q err=%v", raw, err)
	}
	// Cells are distinct by every key component.
	for _, cell := range [][3]any{{3, 6, true}, {2, 7, true}, {2, 6, false}} {
		if raw, _ := cat.LoadPrologue(digest, cell[0].(int), cell[1].(int), cell[2].(bool)); raw != nil {
			t.Fatalf("cell %v leaked another cell's prologue", cell)
		}
	}
	if err := cat.RemovePrologue(digest, 2, 6, true); err != nil {
		t.Fatal(err)
	}
	if raw, _ := cat.LoadPrologue(digest, 2, 6, true); raw != nil {
		t.Fatal("prologue survived removal")
	}
	// A non-hex digest must be rejected, not become a path component.
	if err := cat.SavePrologue("../escape", 1, 2, false, payload); err == nil {
		t.Fatal("path-escaping digest accepted")
	}
}
