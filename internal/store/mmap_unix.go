//go:build linux || darwin

package store

import (
	"os"
	"syscall"
)

// mapFile maps the whole file read-only. The returned cleanup unmaps it.
// Page-in is handled by the kernel: opening a store file touches only the
// header and (lazily) the index pages, which is what makes cold open O(1)
// regardless of graph size.
func mapFile(f *os.File) ([]byte, func() error, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
