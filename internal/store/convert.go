package store

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"slices"
)

// Streaming edge-list → store conversion. The full graph is never
// materialized: edges are read line by line, buffered as directed arcs in
// a bounded in-memory run, spilled sorted to temp files when the run
// fills, and k-way merged straight into the block Writer. Resident memory
// is O(run size) regardless of edge count — the property that opens the
// toolchain to graphs far larger than RAM.

// ConvertOptions tunes a conversion. The zero value is usable.
type ConvertOptions struct {
	// SortBufArcs is the in-memory run capacity in directed arcs (each
	// undirected input edge contributes two). Default 4Mi arcs = 32 MiB
	// of run buffer; peak RSS tracks this, not m.
	SortBufArcs int
	// BlockVerts is the output block geometry (default DefaultBlockVerts).
	BlockVerts int
	// TmpDir is where spill runs live (default: alongside the output).
	TmpDir string
}

// ConvertInfo summarises a finished conversion.
type ConvertInfo struct {
	N         int    `json:"n"`
	M         int64  `json:"m"`
	Runs      int    `json:"runs"`      // spill runs merged
	InputArcs int64  `json:"inputArcs"` // directed arcs before dedup
	FileBytes int64  `json:"fileBytes"` // finished store file size
	Digest    string `json:"digest"`    // hex content digest (== header digest)
}

const defaultSortBufArcs = 4 << 20

// arc packs a directed edge (src<<32 | dst) so runs sort as plain uint64s.
type arc = uint64

// ConvertEdgeList streams a SNAP-style edge list ("u v" per line, '#'/'%'
// comments, ids need not be contiguous but must be < 2^31) from src into
// a store file at dst. Vertex ids are preserved as given — id gaps become
// isolated vertices — so results over the store report the input's own id
// space, and n is max(id)+1.
func ConvertEdgeList(src io.Reader, dst string, o ConvertOptions) (*ConvertInfo, error) {
	if o.SortBufArcs <= 0 {
		o.SortBufArcs = defaultSortBufArcs
	}
	if o.SortBufArcs < 2 {
		o.SortBufArcs = 2
	}
	tmpDir := o.TmpDir
	if tmpDir == "" {
		tmpDir = "."
		if i := lastSep(dst); i >= 0 {
			tmpDir = dst[:i]
		}
	}
	spill, err := os.MkdirTemp(tmpDir, "kpgsort-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(spill)

	info := &ConvertInfo{}
	buf := make([]arc, 0, o.SortBufArcs)
	var runs []string
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		slices.Sort(buf)
		buf = slices.Compact(buf)
		path := fmt.Sprintf("%s/run-%06d", spill, len(runs))
		if err := writeRun(path, buf); err != nil {
			return err
		}
		runs = append(runs, path)
		buf = buf[:0]
		return nil
	}

	maxID := int64(-1)
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		i := 0
		for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
			i++
		}
		if i == len(line) || line[i] == '#' || line[i] == '%' {
			continue
		}
		u, next, err := parseField(line, i)
		if err != nil {
			return nil, fmt.Errorf("store: line %d: %w", lineNo, err)
		}
		v, _, err := parseField(line, next)
		if err != nil {
			return nil, fmt.Errorf("store: line %d: %w", lineNo, err)
		}
		if u >= 1<<31 || v >= 1<<31 {
			return nil, fmt.Errorf("store: line %d: vertex id beyond the int32 id space", lineNo)
		}
		if u == v {
			continue // self-loop
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		info.InputArcs += 2
		buf = append(buf, arc(u)<<32|arc(v), arc(v)<<32|arc(u))
		if len(buf)+2 > o.SortBufArcs {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: reading edge list: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	info.Runs = len(runs)
	n := int(maxID + 1)

	w, err := Create(dst, n, o.BlockVerts)
	if err != nil {
		return nil, err
	}
	if err := mergeRuns(runs, n, w); err != nil {
		w.Abort()
		return nil, err
	}
	if err := w.Finish(); err != nil {
		return nil, err
	}
	st, err := os.Stat(dst)
	if err != nil {
		return nil, err
	}
	info.N = n
	info.M = int64(w.hdr.M)
	info.FileBytes = st.Size()
	info.Digest = fmt.Sprintf("%x", w.hdr.Digest)
	return info, nil
}

// mergeRuns k-way merges the sorted spill runs, deduplicates across runs,
// and feeds full rows to the Writer in vertex order (emitting empty rows
// for id gaps).
func mergeRuns(runs []string, n int, w *Writer) error {
	h := make(runHeap, 0, len(runs))
	for _, path := range runs {
		rr, err := openRun(path)
		if err != nil {
			closeRuns(h)
			return err
		}
		if rr.next() {
			h = append(h, rr)
		} else if err := rr.close(); err != nil {
			closeRuns(h)
			return err
		}
	}
	heap.Init(&h)

	cur := 0 // next vertex to emit
	var row []int32
	emitThrough := func(v int) error {
		for cur < v {
			if cur == v-1 {
				if err := w.AddRow(row); err != nil {
					return err
				}
				row = row[:0]
			} else if err := w.AddRow(nil); err != nil {
				return err
			}
			cur++
		}
		return nil
	}
	rowSrc := -1 // vertex whose row is currently accumulating

	var last arc
	haveLast := false
	for len(h) > 0 {
		rr := h[0]
		a := rr.cur
		if rr.next() {
			heap.Fix(&h, 0)
		} else {
			if err := rr.close(); err != nil {
				closeRuns(h)
				return err
			}
			heap.Pop(&h)
		}
		if haveLast && a == last {
			continue // duplicate across runs
		}
		last, haveLast = a, true
		src := int(a >> 32)
		dst := int32(a & 0xffffffff)
		if src != rowSrc {
			if rowSrc >= 0 {
				if err := emitThrough(rowSrc + 1); err != nil {
					closeRuns(h)
					return err
				}
			}
			rowSrc = src
		}
		row = append(row, dst)
	}
	if rowSrc >= 0 {
		if err := emitThrough(rowSrc + 1); err != nil {
			return err
		}
	}
	return emitThrough(n)
}

func closeRuns(h runHeap) {
	for _, rr := range h {
		rr.close() //nolint:errcheck // already failing
	}
}

// writeRun spills a sorted, deduplicated arc run as delta-varint uint64s
// — sorted runs delta-compress extremely well, so spill I/O stays a small
// multiple of the final file size.
func writeRun(path string, arcs []arc) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var vb [binary.MaxVarintLen64]byte
	prev := arc(0)
	for _, a := range arcs {
		w := binary.PutUvarint(vb[:], a-prev)
		if _, err := bw.Write(vb[:w]); err != nil {
			f.Close()
			return err
		}
		prev = a
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runReader streams one spill run back in order.
type runReader struct {
	f    *os.File
	br   *bufio.Reader
	prev arc
	cur  arc
}

func openRun(path string) (*runReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &runReader{f: f, br: bufio.NewReaderSize(f, 1<<18)}, nil
}

func (r *runReader) next() bool {
	delta, err := binary.ReadUvarint(r.br)
	if err != nil {
		return false
	}
	r.cur = r.prev + delta
	r.prev = r.cur
	return true
}

func (r *runReader) close() error { return r.f.Close() }

type runHeap []*runReader

func (h runHeap) Len() int           { return len(h) }
func (h runHeap) Less(i, j int) bool { return h[i].cur < h[j].cur }
func (h runHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)        { *h = append(*h, x.(*runReader)) }
func (h *runHeap) Pop() any          { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

func lastSep(path string) int {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return i
		}
	}
	return -1
}

// parseField reads one non-negative integer starting at or after offset i.
func parseField(line []byte, i int) (int64, int, error) {
	for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
		i++
	}
	start := i
	var v int64
	for i < len(line) && line[i] >= '0' && line[i] <= '9' {
		v = v*10 + int64(line[i]-'0')
		if v > 1<<40 {
			return 0, i, fmt.Errorf("integer field too large at column %d", start+1)
		}
		i++
	}
	if i == start {
		return 0, i, fmt.Errorf("expected integer at column %d", start+1)
	}
	return v, i, nil
}
